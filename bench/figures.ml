(* One entry per figure/table of the paper's evaluation (see DESIGN.md
   §4 for the mapping).  Each prints the series the paper plots. *)
module Ir = Mira_mir.Ir
module Machine = Mira_interp.Machine
module C = Mira.Controller
module SP = Mira.Section_planner
module Section = Mira_cache.Section
module Swap = Mira_cache.Swap_section
module Manager = Mira_cache.Manager
module Runtime = Mira_runtime.Runtime
module Pipeline = Mira_passes.Pipeline
module Table = Mira_util.Table
module G = Mira_workloads.Graph_traversal
module D = Mira_workloads.Dataframe
module M = Mira_workloads.Mcf
module Gpt = Mira_workloads.Gpt2
module Wu = Mira_workloads.Workload_util
open Harness

(* Workload scales: large enough to exercise the memory system, small
   enough that the whole suite completes in minutes. *)
let graph_cfg = { G.config_default with G.num_edges = 40_000; num_nodes = 4_000 }
let graph3_cfg = { graph_cfg with G.with_random_array = true; random_array_elems = 40_000 }
let df_cfg = { D.config_default with D.rows = 40_000; groups = 20_000 }
let mcf_cfg = { M.config_default with M.num_nodes = 5_000; num_arcs = 30_000; rounds = 2 }
let gpt_cfg = { Gpt.config_default with Gpt.layers = 6; d_model = 32; seq = 16 }

let gpt_params =
  (* vectorized inference compute (see EXPERIMENTS.md) *)
  { Mira_sim.Params.default with Mira_sim.Params.native_op_ns = 0.05; native_mem_ns = 0.3 }

let ratios_wide = [ 0.15; 0.2; 0.3; 0.5; 0.8; 1.0 ]
let ratios_narrow = [ 0.12; 0.2; 0.3; 0.5 ]

let mira_default o = o
let graph_aifm prog site = max 128 (Wu.elem_gran prog site)

(* --- manual-section runner (deep-dive figures) --------------------------- *)

(* Run a program with hand-specified sections (bypassing the controller)
   so a single knob can be swept in isolation. *)
let run_manual ?(params = Mira_sim.Params.default) ?(nthreads = 1) ~budget
    ~far_capacity ~prog ~plan ~sections () =
  let rt =
    Runtime.create
      Runtime.Config.(
        make ~local_budget:budget ~far_capacity |> with_params params)
  in
  let mgr = Runtime.manager rt in
  let clock = Mira_sim.Clock.create () in
  List.iter
    (fun (cfg, sites) ->
      match Manager.add_section mgr ~clock cfg with
      | Ok _ -> List.iter (fun s -> Manager.assign_site mgr ~site:s ~sec_id:cfg.Section.sec_id) sites
      | Error m -> failwith m)
    sections;
  let compiled =
    Mira_passes.Pipeline.apply prog plan ~params
    |> Mira_passes.Instrument.run_only ~names:[ C.work_function prog ]
  in
  let ms = Runtime.memsys rt in
  let machine = Machine.create ~nthreads ~seed:42 ms compiled in
  let _, work_ns = C.measure_work ms machine in
  (work_ns, rt)

let graph_sites prog = (Wu.site_id prog "edges", Wu.site_id prog "nodes")

let graph_plan prog ~eline ~nline ~prefetch ~evict =
  let e, n = graph_sites prog in
  {
    Pipeline.selected = [ e; n ];
    lines = [ (e, eline); (n, nline) ];
    fuse = true;
    prefetch;
    evict;
    native = true;
    offload = `None;
    instrument = false;
  }

let edge_cfg ?(line = 2048) ?(size = 20 * 2048) () =
  { (Section.config_default ~sec_id:1 ~name:"edges" ~line ~size) with
    Section.structure = Section.Direct; no_meta = true; read_discard = true }

let node_cfg ?(structure = Section.Set_assoc 8) ?(line = 128) ~size () =
  { (Section.config_default ~sec_id:2 ~name:"nodes" ~line ~size) with
    Section.structure }

(* --- Figure 5: graph traversal, 4 systems ------------------------------- *)

let fig5 () =
  let prog = G.build graph_cfg in
  let far = G.far_bytes graph_cfg in
  let ctx = Ctx.make ~far_bytes:far prog in
  sweep ctx ~far_bytes:far ~ratios:ratios_wide
    ~systems:[ Fastswap; Leap; Aifm graph_aifm; Mira_sys mira_default ]
    ~title:"Figure 5: graph traversal, relative performance vs local memory"

(* --- Figure 6: effect of Mira techniques (cumulative) -------------------- *)

(* Every stage keeps the controller's rollback: a stage that cannot
   beat the generic swap configuration honestly reports swap time
   (techniques whose benefit only materializes jointly show up as flat
   segments, which is what actually happens). *)
let ablations =
  [
    ("swap only", fun o -> { o with C.feat_sections = false });
    ( "+sections",
      fun o ->
        { o with C.feat_prefetch = false; feat_evict = false; feat_fusion = false;
                 feat_native = false } );
    ("+prefetch", fun o -> { o with C.feat_evict = false; feat_fusion = false });
    ("+evict hints", fun o -> { o with C.feat_fusion = false });
    ("+batch/native (all)", fun o -> o);
  ]

let cumulative_ablation ~title ~prog ~far ?(params = Mira_sim.Params.default)
    ?(extra = []) ~ratio () =
  Printf.printf "\n### %s\n" title;
  let ctx = Ctx.make ~far_bytes:far prog |> Ctx.with_params params |> Ctx.with_iterations 3 in
  let native =
    match run ctx ~budget:ctx.far_capacity Native with
    | Time t -> t
    | Failed m -> failwith m
  in
  let budget = int_of_float (float_of_int far *. ratio) in
  let t = Table.create ~header:[ "configuration"; "slowdown vs native" ] in
  List.iter
    (fun (name, tweak) ->
      Table.add_row t [ name; cell ~native (run ctx ~budget (Mira_sys tweak)) ])
    (ablations @ extra);
  Table.print t

let fig6 () =
  let prog = G.build graph_cfg in
  cumulative_ablation
    ~title:"Figure 6: effect of Mira techniques (graph traversal, 25% local)"
    ~prog ~far:(G.far_bytes graph_cfg) ~ratio:0.25 ()

(* --- Figures 7/8: cache separation -------------------------------------- *)

let fig7_8 () =
  let prog = G.build graph_cfg in
  let far = G.far_bytes graph_cfg in
  let far_capacity = 4 * far in
  Printf.printf
    "\n### Figure 7: separating cache sections (graph traversal)\n";
  Printf.printf
    "### Figure 8: node-array miss rate, joint vs separated cache\n";
  let e, n = graph_sites prog in
  let t =
    Table.create
      ~header:[ "local memory"; "joint (ms)"; "separated (ms)";
                "joint node miss%"; "separated node miss%" ]
  in
  List.iter
    (fun ratio ->
      let budget = int_of_float (float_of_int far *. ratio) in
      let section_space = max (64 * 1024) (budget - (16 * 4096)) in
      (* prefetch off: this figure isolates the interference between the
         streaming edge array and the randomly-hit node array — the
         mechanism cache separation removes (prefetching, measured in
         Figure 15, would mask the miss rates). *)
      let plan = graph_plan prog ~eline:2048 ~nline:128 ~prefetch:false ~evict:false in
      (* joint: one fully-associative section holds both arrays *)
      let joint_cfg =
        { (Section.config_default ~sec_id:1 ~name:"joint" ~line:128
             ~size:section_space)
          with Section.structure = Section.Full_assoc }
      in
      let joint_ns, joint_rt =
        run_manual ~budget ~far_capacity ~prog ~plan
          ~sections:[ (joint_cfg, [ e; n ]) ] ()
      in
      let joint_stats =
        Section.stats (Option.get (Manager.find_section (Runtime.manager joint_rt) ~id:1))
      in
      (* separated: stream section for edges + set-assoc for nodes *)
      let es = edge_cfg () in
      let ns =
        node_cfg ~size:(max (16 * 1024) (section_space - es.Section.size)) ()
      in
      let sep_ns, sep_rt =
        run_manual ~budget ~far_capacity ~prog ~plan
          ~sections:[ (es, [ e ]); (ns, [ n ]) ] ()
      in
      let sep_stats =
        Section.stats (Option.get (Manager.find_section (Runtime.manager sep_rt) ~id:2))
      in
      let miss_pct (s : Section.stats) =
        100.0 *. float_of_int s.Section.misses
        /. float_of_int (max 1 (s.Section.hits + s.Section.misses))
      in
      Table.add_row t
        [
          Printf.sprintf "%.0f%%" (ratio *. 100.0);
          Printf.sprintf "%.2f" (joint_ns /. 1e6);
          Printf.sprintf "%.2f" (sep_ns /. 1e6);
          Printf.sprintf "%.1f%%" (miss_pct joint_stats);
          Printf.sprintf "%.1f%%" (miss_pct sep_stats);
        ])
    [ 0.3; 0.5; 0.7 ];
  Table.print t

(* --- Figure 9: cache line size ------------------------------------------- *)

let fig9 () =
  let prog = G.build graph_cfg in
  let far = G.far_bytes graph_cfg in
  let far_capacity = 4 * far in
  let budget = far / 3 in
  let e, n = graph_sites prog in
  Printf.printf "\n### Figure 9: cache overhead vs line size (per section)\n";
  let t =
    Table.create ~header:[ "line size"; "edge section (ms)"; "node section (ms)" ]
  in
  List.iter
    (fun line ->
      let plan = graph_plan prog ~eline:line ~nline:128 ~prefetch:true ~evict:true in
      let es = edge_cfg ~line ~size:(20 * line) () in
      let ns = node_cfg ~size:(256 * 1024) () in
      let _, rt =
        run_manual ~budget ~far_capacity ~prog ~plan
          ~sections:[ (es, [ e ]); (ns, [ n ]) ] ()
      in
      let overhead id =
        let s = Section.stats (Option.get (Manager.find_section (Runtime.manager rt) ~id)) in
        (s.Section.hit_ns +. s.Section.miss_ns +. s.Section.stall_ns) /. 1e6
      in
      let edge_ms = overhead 1 in
      (* node line sweep uses the same run grid transposed below *)
      let plan2 =
        graph_plan prog ~eline:2048 ~nline:(min line 1024) ~prefetch:true ~evict:true
      in
      let es2 = edge_cfg () in
      let ns2 = node_cfg ~line:(min line 1024) ~size:(256 * 1024) () in
      let _, rt2 =
        run_manual ~budget ~far_capacity ~prog ~plan:plan2
          ~sections:[ (es2, [ e ]); (ns2, [ n ]) ] ()
      in
      let s2 = Section.stats (Option.get (Manager.find_section (Runtime.manager rt2) ~id:2)) in
      let node_ms = (s2.Section.hit_ns +. s2.Section.miss_ns +. s2.Section.stall_ns) /. 1e6 in
      Table.add_row t
        [ Printf.sprintf "%dB" line; Printf.sprintf "%.2f" edge_ms;
          Printf.sprintf "%.2f" node_ms ])
    [ 128; 256; 512; 1024; 2048; 4096; 8192 ];
  Table.print t

(* --- Figure 10: cache structure ------------------------------------------ *)

let fig10 () =
  let prog = G.build graph_cfg in
  let far = G.far_bytes graph_cfg in
  let far_capacity = 4 * far in
  let e, n = graph_sites prog in
  Printf.printf "\n### Figure 10: node-section structure vs local memory (work ms)\n";
  let structures =
    [ ("direct", Section.Direct); ("set2", Section.Set_assoc 2);
      ("set8", Section.Set_assoc 8); ("full", Section.Full_assoc) ]
  in
  let t = Table.create ~header:("local memory" :: List.map fst structures) in
  List.iter
    (fun ratio ->
      let budget = int_of_float (float_of_int far *. ratio) in
      let row =
        List.map
          (fun (_, structure) ->
            let plan = graph_plan prog ~eline:2048 ~nline:128 ~prefetch:true ~evict:true in
            let es = edge_cfg () in
            let nsize = max (32 * 1024) (budget - es.Section.size - (64 * 4096)) in
            let ns = node_cfg ~structure ~size:nsize () in
            let work_ns, _ =
              run_manual ~budget ~far_capacity ~prog ~plan
                ~sections:[ (es, [ e ]); (ns, [ n ]) ] ()
            in
            Printf.sprintf "%.2f" (work_ns /. 1e6))
          structures
      in
      Table.add_row t (Printf.sprintf "%.0f%%" (ratio *. 100.0) :: row))
    [ 0.2; 0.3; 0.5; 0.8 ];
  Table.print t

(* --- Figures 11/12: section sizing and the ILP --------------------------- *)

let fig11_12 () =
  let prog = G.build graph3_cfg in
  let far = G.far_bytes graph3_cfg in
  let far_capacity = 4 * far in
  let budget = far / 3 in
  let e = Wu.site_id prog "edges"
  and n = Wu.site_id prog "nodes"
  and r = Wu.site_id prog "rnd" in
  let plan =
    {
      Pipeline.selected = [ e; n; r ];
      lines = [ (e, 2048); (n, 128); (r, 8) ];
      fuse = true; prefetch = true; evict = true; native = true;
      offload = `None; instrument = false;
    }
  in
  let es = edge_cfg () in
  let avail = budget - es.Section.size - (32 * 4096) in
  let run_with ~nsize ~rsize =
    let ns = node_cfg ~size:nsize () in
    let rs =
      { (Section.config_default ~sec_id:3 ~name:"rnd" ~line:8 ~size:rsize) with
        Section.structure = Section.Full_assoc }
    in
    run_manual ~budget ~far_capacity ~prog ~plan
      ~sections:[ (es, [ e ]); (ns, [ n ]); (rs, [ r ]) ] ()
  in
  Printf.printf "\n### Figure 11: per-section overhead vs sampled section size\n";
  let t = Table.create ~header:[ "size (% of avail)"; "node section (ms)"; "rnd section (ms)" ] in
  let fractions = [ 0.2; 0.4; 0.6; 0.8 ] in
  let node_curve = ref [] and rnd_curve = ref [] in
  List.iter
    (fun frac ->
      let size = int_of_float (float_of_int avail *. frac) in
      let other = avail - size in
      let _, rt_n = run_with ~nsize:size ~rsize:other in
      let over id rt =
        let s = Section.stats (Option.get (Manager.find_section (Runtime.manager rt) ~id)) in
        (s.Section.hit_ns +. s.Section.miss_ns +. s.Section.stall_ns) /. 1e6
      in
      let node_ms = over 2 rt_n in
      let _, rt_r = run_with ~nsize:other ~rsize:size in
      let rnd_ms = over 3 rt_r in
      node_curve := (size, node_ms) :: !node_curve;
      rnd_curve := (size, rnd_ms) :: !rnd_curve;
      Table.add_row t
        [ Printf.sprintf "%.0f%%" (frac *. 100.0); Printf.sprintf "%.2f" node_ms;
          Printf.sprintf "%.2f" rnd_ms ])
    fractions;
  Table.print t;
  Printf.printf
    "\n### Figure 12: local-memory partitions across sections (work ms)\n";
  let t2 = Table.create ~header:[ "partition (node/rnd)"; "work (ms)" ] in
  let partitions = [ (0.25, 0.75); (0.5, 0.5); (0.75, 0.25) ] in
  let results =
    List.map
      (fun (fn, fr) ->
        let work_ns, _ =
          run_with
            ~nsize:(int_of_float (float_of_int avail *. fn))
            ~rsize:(int_of_float (float_of_int avail *. fr))
        in
        ((fn, fr), work_ns))
      partitions
  in
  List.iter
    (fun ((fn, fr), work_ns) ->
      Table.add_row t2
        [ Printf.sprintf "%.0f%%/%.0f%%" (fn *. 100.0) (fr *. 100.0);
          Printf.sprintf "%.2f" (work_ns /. 1e6) ])
    results;
  (* the ILP choice from the sampled curves *)
  let cands =
    [
      { Mira_cache.Sizing.cand_id = 2; options = Array.of_list !node_curve;
        live_from = 0; live_to = 0 };
      { Mira_cache.Sizing.cand_id = 3; options = Array.of_list !rnd_curve;
        live_from = 0; live_to = 0 };
    ]
  in
  (match Mira_cache.Sizing.solve ~budget:avail cands with
  | Ok { Mira_cache.Sizing.assignment; _ } ->
    let nsize = List.assoc 2 assignment and rsize = List.assoc 3 assignment in
    let work_ns, _ = run_with ~nsize ~rsize in
    Table.add_row t2
      [ Printf.sprintf "ILP: %d%%/%d%%" (100 * nsize / avail) (100 * rsize / avail);
        Printf.sprintf "%.2f" (work_ns /. 1e6) ]
  | Error m -> Table.add_row t2 [ "ILP"; "infeasible: " ^ m ]);
  Table.print t2

(* --- Figure 13/14: the compiled code ------------------------------------- *)

let fig13 () =
  Printf.printf
    "\n### Figure 13/14: graph traversal compiled to remotable/rmem IR\n";
  let prog = G.build { graph_cfg with G.num_edges = 1000; num_nodes = 100 } in
  let e, n = graph_sites prog in
  let plan =
    Pipeline.plan_all ~selected:[ e; n ] ~lines:[ (e, 1024); (n, 128) ]
  in
  let plan = { plan with Pipeline.offload = `None } in
  let compiled = Pipeline.apply prog plan ~params:Mira_sim.Params.default in
  print_endline
    (Mira_mir.Printer.func_to_string (Ir.find_func compiled "work"))

(* --- Figure 15: prefetch + eviction hints vs Leap ------------------------- *)

let fig15 () =
  let prog = G.build graph_cfg in
  let far = G.far_bytes graph_cfg in
  let ctx = Ctx.make ~far_bytes:far prog in
  Printf.printf "\n### Figure 15: prefetching and eviction hints (graph)\n";
  let native =
    match run ctx ~budget:ctx.far_capacity Native with
    | Time t -> t
    | Failed m -> failwith m
  in
  let t =
    Table.create
      ~header:[ "local memory"; "mira no pf/ev"; "mira +prefetch"; "mira +both"; "leap" ]
  in
  List.iter
    (fun ratio ->
      let budget = int_of_float (float_of_int far *. ratio) in
      let cellf tweak = cell ~native (run ctx ~budget (Mira_sys tweak)) in
      Table.add_row t
        [
          Printf.sprintf "%.0f%%" (ratio *. 100.0);
          cellf (fun o ->
              { o with C.feat_prefetch = false; feat_evict = false; always_accept = true });
          cellf (fun o -> { o with C.feat_evict = false; always_accept = true });
          cellf (fun o -> { o with C.always_accept = true });
          cell ~native (run ctx ~budget Leap);
        ])
    [ 0.2; 0.3; 0.5 ];
  Table.print t

(* --- Figures 16/17/18: the three applications ----------------------------- *)

let fig16 () =
  let prog = D.build df_cfg in
  let far = D.far_bytes df_cfg in
  let ctx = Ctx.make ~far_bytes:far prog |> Ctx.with_iterations 4 in
  sweep ctx ~far_bytes:far ~ratios:ratios_wide
    ~systems:[ Fastswap; Leap; Aifm D.aifm_gran; Mira_sys mira_default ]
    ~title:"Figure 16: DataFrame, relative performance vs local memory"

let fig17 () =
  let prog = Gpt.build gpt_cfg in
  let far = Gpt.far_bytes gpt_cfg in
  let ctx =
    Ctx.make ~far_bytes:far prog
    |> Ctx.with_params gpt_params |> Ctx.with_iterations 4
  in
  sweep ctx ~far_bytes:far ~ratios:ratios_narrow
    ~systems:[ Fastswap; Leap; Mira_sys mira_default ]
    ~title:"Figure 17: GPT-2 inference, relative performance vs local memory"

let fig18 () =
  let prog = M.build mcf_cfg in
  let far = M.far_bytes mcf_cfg in
  let ctx = Ctx.make ~far_bytes:far prog in
  sweep ctx ~far_bytes:far ~ratios:ratios_wide
    ~systems:[ Fastswap; Leap; Aifm M.aifm_gran; Mira_sys mira_default ]
    ~title:"Figure 18: MCF, relative performance vs local memory"

(* --- Figures 19/20: runtime and metadata overhead at full memory ---------- *)

let micro_cfg = Mira_workloads.Micro_sum.config_default

let apps () =
  [
    ("micro-sum", Mira_workloads.Micro_sum.build micro_cfg,
     Mira_workloads.Micro_sum.far_bytes micro_cfg, Mira_sim.Params.default);
    ("graph", G.build graph_cfg, G.far_bytes graph_cfg, Mira_sim.Params.default);
    ("dataframe", D.build df_cfg, D.far_bytes df_cfg, Mira_sim.Params.default);
    ("mcf", M.build mcf_cfg, M.far_bytes mcf_cfg, Mira_sim.Params.default);
  ]

let fig19 () =
  Printf.printf
    "\n### Figure 19: run-time overhead at 100%% local memory (vs native)\n";
  let t = Table.create ~header:[ "application"; "mira"; "aifm" ] in
  List.iter
    (fun (name, prog, far, params) ->
      let ctx = Ctx.make ~far_bytes:far prog |> Ctx.with_params params in
      let native =
        match run ctx ~budget:ctx.far_capacity Native with
        | Time v -> v
        | Failed m -> failwith m
      in
      let pct = function
        | Time v -> Printf.sprintf "+%.1f%%" (100.0 *. ((v /. native) -. 1.0))
        | Failed m -> m
      in
      let budget = 2 * far in
      Table.add_row t
        [
          name;
          pct (run ctx ~budget (Mira_sys mira_default));
          pct (run ctx ~budget (Aifm (fun p s -> max 128 (Wu.elem_gran p s))));
        ])
    (apps ());
  Table.print t

let fig20 () =
  Printf.printf "\n### Figure 20: local-memory metadata footprint (KB)\n";
  let t = Table.create ~header:[ "application"; "data (KB)"; "mira meta"; "aifm meta" ] in
  List.iter
    (fun (name, prog, far, params) ->
      let budget = far / 2 in
      let far_capacity = 4 * far in
      (* Mira: swap + a typical pair of sections *)
      let rt =
        Runtime.create
          Runtime.Config.(
            make ~local_budget:budget ~far_capacity |> with_params params)
      in
      let mgr = Runtime.manager rt in
      let clock = Mira_sim.Clock.create () in
      ignore
        (Manager.add_section mgr ~clock
           { (Section.config_default ~sec_id:1 ~name:"a" ~line:2048 ~size:(budget / 8)) with
             Section.no_meta = true });
      ignore
        (Manager.add_section mgr ~clock
           (Section.config_default ~sec_id:2 ~name:"b" ~line:128 ~size:(budget / 4)));
      let mira_meta = Manager.metadata_bytes mgr in
      (* AIFM metadata: run it and ask *)
      let aifm_meta =
        try
          let ms =
            Mira_baselines.Aifm.create ~params
              ~gran:(fun s -> max 64 (Wu.elem_gran prog s))
              ~local_budget:(4 * far) ~far_capacity ()
          in
          let machine = Machine.create ~seed:42 ms prog in
          ignore (Machine.run machine);
          Printf.sprintf "%d" (ms.Mira_runtime.Memsys.metadata_bytes () / 1024)
        with _ -> "OOM"
      in
      Table.add_row t
        [ name; string_of_int (far / 1024); string_of_int (mira_meta / 1024);
          aifm_meta ])
    (apps ());
  Table.print t

(* --- Figure 21: technique deep-dive per application ----------------------- *)

let fig21 () =
  let offload_stage = [ ("+offload", fun o -> { o with C.feat_offload = true }) ] in
  let entries =
    [
      ("graph 25%", G.build graph_cfg, G.far_bytes graph_cfg,
       Mira_sim.Params.default, 0.25, []);
      ("dataframe 15%", D.build df_cfg, D.far_bytes df_cfg,
       Mira_sim.Params.default, 0.15, []);
      ("mcf 12%", M.build mcf_cfg, M.far_bytes mcf_cfg,
       Mira_sim.Params.default, 0.12, offload_stage);
    ]
  in
  List.iter
    (fun (title, prog, far, params, ratio, extra) ->
      cumulative_ablation ~title:("Figure 21: " ^ title) ~prog ~far ~params
        ~extra ~ratio ())
    entries

(* --- Figure 22: selective transmission ------------------------------------ *)

let fig22 () =
  let prog = G.build graph_cfg in
  let far = G.far_bytes graph_cfg in
  let far_capacity = 4 * far in
  let budget = far / 4 in
  let e, n = graph_sites prog in
  Printf.printf
    "\n### Figure 22: selective transmission (node section, 25%% local)\n";
  let t = Table.create ~header:[ "transfer"; "work (ms)"; "net in (KB)" ] in
  List.iter
    (fun (name, payload, side) ->
      let plan = graph_plan prog ~eline:2048 ~nline:128 ~prefetch:true ~evict:true in
      let es = edge_cfg () in
      let ns =
        { (node_cfg ~size:(max (32 * 1024) (budget / 2)) ()) with
          Section.payload; side }
      in
      let work_ns, rt =
        run_manual ~budget ~far_capacity ~prog ~plan
          ~sections:[ (es, [ e ]); (ns, [ n ]) ] ()
      in
      let stats = Mira_sim.Net.stats (Runtime.net rt) in
      Table.add_row t
        [ name; Printf.sprintf "%.2f" (work_ns /. 1e6);
          string_of_int (stats.Mira_sim.Net.bytes_in / 1024) ])
    [
      ("whole 128B line (one-sided)", None, Mira_sim.Net.One_sided);
      ("accessed fields only, 24B (two-sided)", Some 24, Mira_sim.Net.Two_sided);
    ];
  Table.print t

(* --- Figure 23: data-access batching -------------------------------------- *)

let fig23 () =
  let cfg = { df_cfg with D.ops = `Agg_only } in
  let prog = D.build cfg in
  let far = D.far_bytes cfg in
  let ctx = Ctx.make ~far_bytes:far prog in
  Printf.printf "\n### Figure 23: batching (DataFrame avg/min/max job)\n";
  let native =
    match run ctx ~budget:ctx.far_capacity Native with
    | Time t -> t
    | Failed m -> failwith m
  in
  let t =
    Table.create
      ~header:[ "local memory"; "fastswap"; "aifm"; "mira no batching"; "mira batching" ]
  in
  List.iter
    (fun ratio ->
      let budget = int_of_float (float_of_int far *. ratio) in
      Table.add_row t
        [
          Printf.sprintf "%.0f%%" (ratio *. 100.0);
          cell ~native (run ctx ~budget Fastswap);
          cell ~native (run ctx ~budget (Aifm D.aifm_gran));
          cell ~native
            (run ctx ~budget
               (Mira_sys (fun o -> { o with C.feat_fusion = false; always_accept = true })));
          cell ~native
            (run ctx ~budget (Mira_sys (fun o -> { o with C.always_accept = true })));
        ])
    [ 0.1; 0.2; 0.4 ];
  Table.print t

(* --- Figures 24/25: multithreading ---------------------------------------- *)

let thread_sweep ~title ~prog ~far ~params ~ratio ~systems () =
  Printf.printf "\n### %s\n" title;
  let budget = int_of_float (float_of_int far *. ratio) in
  let base_ctx =
    Ctx.make ~far_bytes:far prog
    |> Ctx.with_params params |> Ctx.with_iterations 3
  in
  let native1 =
    match run base_ctx ~budget:base_ctx.far_capacity Native with
    | Time t -> t
    | Failed m -> failwith m
  in
  let t =
    Table.create ~header:("threads" :: List.map system_name systems)
  in
  List.iter
    (fun threads ->
      let ctx = { base_ctx with nthreads = threads } in
      let row =
        List.map
          (fun s ->
            match run ctx ~budget s with
            | Time v -> Printf.sprintf "%.2fx" (native1 /. v)  (* speedup *)
            | Failed m -> m)
          systems
      in
      Table.add_row t (string_of_int threads :: row))
    [ 1; 2; 4; 8 ];
  Printf.printf "cells = speedup vs 1-thread native\n";
  Table.print t

let fig24 () =
  let cfg = { gpt_cfg with Gpt.parallel = true } in
  let prog = Gpt.build cfg in
  thread_sweep
    ~title:"Figure 24: GPT-2 multithreaded scaling (read-only sharing)"
    ~prog ~far:(Gpt.far_bytes cfg) ~params:gpt_params ~ratio:0.3
    ~systems:[ Fastswap; Mira_sys mira_default ]
    ()

let fig25 () =
  let cfg = { df_cfg with D.parallel_filter = true } in
  let prog = D.build cfg in
  thread_sweep
    ~title:"Figure 25: DataFrame filter, writable shared multithreading"
    ~prog ~far:(D.far_bytes cfg) ~params:Mira_sim.Params.default ~ratio:0.2
    ~systems:[ Fastswap; Aifm D.aifm_gran; Mira_sys mira_default ]
    ()

(* --- Tables A/B: analysis scope + profiling overhead ----------------------- *)

let taba () =
  Printf.printf
    "\n### Table A: analysis-scope reduction and compile time (§6.1)\n";
  let t =
    Table.create
      ~header:[ "application"; "functions (selected/total)"; "sites (selected/total)";
                "compile (wall ms)" ]
  in
  List.iter
    (fun (name, prog, far, params) ->
      let opts =
        { (C.options_default ~local_budget:(far / 4) ~far_capacity:(4 * far)) with
          C.params; max_iterations = 2 }
      in
      let compiled = C.optimize opts prog in
      let total_funcs = List.length prog.Ir.p_funcs in
      let total_sites = List.length prog.Ir.p_sites in
      let sel_sites = List.length compiled.C.c_plan.Pipeline.selected in
      (* functions the profiler actually selected: widest Select event *)
      let sel_funcs =
        List.fold_left
          (fun acc d ->
            match d with
            | Mira_telemetry.Decision.Select { functions; _ } ->
              max acc (List.length functions)
            | _ -> acc)
          0 compiled.C.c_log
      in
      (* recompilation wall time for the final plan *)
      let t0 = Unix.gettimeofday () in
      ignore (Pipeline.apply prog compiled.C.c_plan ~params);
      let wall = (Unix.gettimeofday () -. t0) *. 1000.0 in
      Table.add_row t
        [ name;
          Printf.sprintf "%d/%d" (min sel_funcs total_funcs) total_funcs;
          Printf.sprintf "%d/%d" sel_sites total_sites;
          Printf.sprintf "%.1f" wall ])
    (apps ());
  Table.print t

let tabb () =
  Printf.printf "\n### Table B: profiling overhead (instrumented vs not)\n";
  let t = Table.create ~header:[ "application"; "profiling overhead" ] in
  List.iter
    (fun (name, prog, far, params) ->
      let far_capacity = 4 * far in
      let budget = far / 2 in
      let time p =
        let ms =
          Mira_baselines.Fastswap.create ~params ~local_budget:budget ~far_capacity ()
        in
        let machine = Machine.create ~seed:42 ms p in
        ignore (Machine.run machine);
        ms.Mira_runtime.Memsys.elapsed ()
      in
      let plain = time prog in
      let instrumented = time (Mira_passes.Instrument.run prog) in
      Table.add_row t
        [ name;
          Printf.sprintf "+%.4f%%" (100.0 *. ((instrumented /. plain) -. 1.0)) ])
    (apps ());
  Table.print t

(* --- Dataplane: in-flight window, doorbell batching, fault injection ------ *)

let dp_micro_cfg =
  { Mira_workloads.Micro_sum.config_default with
    Mira_workloads.Micro_sum.elems = 60_000; stride = 8 }

(* Sweep the network data plane on a strided scan over the swap cache:
   the 8-page readahead clusters turn into coalesced doorbells when
   batching is on, the window bounds how much of a cluster is in flight,
   and the final row injects 2% loss to show bounded retries instead of
   a hang. *)
let figdp () =
  let title = "Dataplane: window, doorbell batching, fault injection" in
  Printf.printf "\n### %s (strided scan on swap)\n" title;
  let prog = Mira_workloads.Micro_sum.build dp_micro_cfg in
  let far = Mira_workloads.Micro_sum.far_bytes dp_micro_cfg in
  let far_capacity = Mira_util.Misc.round_up (4 * far) 4096 in
  let budget = far / 4 in
  let run_dp dp =
    let rt =
      Runtime.create
        Runtime.Config.(
          make ~local_budget:budget ~far_capacity |> with_dataplane dp)
    in
    let ms = Runtime.memsys rt in
    let measured =
      Mira_passes.Instrument.run_only prog ~names:[ C.work_function prog ]
    in
    let machine = Machine.create ~seed:42 ms measured in
    let _, work_ns = C.measure_work ms machine in
    (work_ns, Mira_sim.Net.stats (Runtime.net rt))
  in
  let t =
    Table.create
      ~header:
        [ "dataplane"; "work (ms)"; "fetch p50 (ns)"; "doorbells";
          "coalesced"; "inflight p95"; "retries"; "timeouts" ]
  in
  let rows = ref [] in
  let record label dp =
    let work_ns, s = run_dp dp in
    let p50 =
      Mira_telemetry.Metrics.hist_percentile s.Mira_sim.Net.lat_fetch 50.0
    in
    let occ95 =
      Mira_telemetry.Metrics.hist_percentile s.Mira_sim.Net.occupancy 95.0
    in
    Table.add_row t
      [ label;
        Printf.sprintf "%.3f" (work_ns /. 1e6);
        Printf.sprintf "%.0f" p50;
        string_of_int s.Mira_sim.Net.doorbells;
        string_of_int s.Mira_sim.Net.coalesced;
        Printf.sprintf "%.1f" occ95;
        string_of_int s.Mira_sim.Net.retries;
        string_of_int s.Mira_sim.Net.timeouts ];
    rows :=
      Mira_telemetry.Json.Obj
        [ ("config", Mira_telemetry.Json.Str label);
          ("work_ms", Mira_telemetry.Json.Float (work_ns /. 1e6));
          ("fetch_p50_ns", Mira_telemetry.Json.Float p50);
          ("doorbells", Mira_telemetry.Json.Int s.Mira_sim.Net.doorbells);
          ("coalesced", Mira_telemetry.Json.Int s.Mira_sim.Net.coalesced);
          ("inflight_p95", Mira_telemetry.Json.Float occ95);
          ("retries", Mira_telemetry.Json.Int s.Mira_sim.Net.retries);
          ("timeouts", Mira_telemetry.Json.Int s.Mira_sim.Net.timeouts) ]
      :: !rows
  in
  let dp = Mira_sim.Net.dp_default in
  record "window=1 (sync)" { dp with Mira_sim.Net.window = 1 };
  record "unbounded, no batching" dp;
  record "window=4 + batching" { dp with Mira_sim.Net.window = 4; coalesce = true };
  record "window=16 + batching" { dp with Mira_sim.Net.window = 16; coalesce = true };
  let fault =
    { Mira_sim.Net.Fault.default with
      Mira_sim.Net.Fault.drop_prob = 0.02; seed = 7 }
  in
  record "window=16 + batching + 2% loss"
    { dp with Mira_sim.Net.window = 16; coalesce = true; fault = Some fault };
  Table.print t;
  match bench_json_dir () with
  | None -> ()
  | Some dir ->
    let doc =
      Mira_telemetry.Json.Obj
        [ ("title", Mira_telemetry.Json.Str title);
          ("far_bytes", Mira_telemetry.Json.Int far);
          ("local_budget_bytes", Mira_telemetry.Json.Int budget);
          ("rows", Mira_telemetry.Json.List (List.rev !rows)) ]
    in
    let path = Filename.concat dir ("BENCH_" ^ slug title ^ ".json") in
    (try
       let oc = open_out path in
       output_string oc (Mira_telemetry.Json.to_string_pretty doc);
       output_char oc '\n';
       close_out oc;
       Printf.printf "[bench json: %s]\n" path
     with Sys_error msg -> Printf.eprintf "[bench json skipped: %s]\n" msg)

(* --- Chaos: node crashes, failover, degraded mode ------------------------ *)

(* The same strided scan under a seeded crash schedule.  Three configs
   per seed: no faults (baseline), a two-node cluster with replication
   (crashes are failovers — bit-identical output, recovery time
   charged), and a single node with replication off (a crash loses
   data; the run completes degraded with lost bytes accounted).  Fully
   deterministic for a fixed seed: run twice, diff the JSON. *)
let figchaos () =
  let title = "chaos" in
  Printf.printf
    "\n### Chaos: crashes, failover, degraded mode (strided scan on swap)\n";
  let prog = Mira_workloads.Micro_sum.build dp_micro_cfg in
  let far = Mira_workloads.Micro_sum.far_bytes dp_micro_cfg in
  let far_capacity = Mira_util.Misc.round_up (4 * far) 4096 in
  let budget = far / 4 in
  let measured =
    Mira_passes.Instrument.run_only prog ~names:[ C.work_function prog ]
  in
  let run_chaos spec =
    let rt =
      Runtime.create
        Runtime.Config.(
          make ~local_budget:budget ~far_capacity |> with_cluster spec)
    in
    let ms = Runtime.memsys rt in
    let machine = Machine.create ~seed:42 ms measured in
    let v, work_ns = C.measure_work ms machine in
    (v, work_ns, rt)
  in
  (* Baseline run (no faults) calibrates the crash horizon: crashes are
     scheduled inside the run, not after it.  Deterministic because the
     baseline itself is. *)
  let _, base_ns, _ = run_chaos Mira_sim.Cluster.spec_default in
  let t =
    Table.create
      ~header:
        [ "config"; "seed"; "work (ms)"; "tput (Mops/s)"; "rec p50 (us)";
          "rec p99 (us)"; "crashes"; "failovers"; "wire (KB)"; "resync (KB)";
          "recon (KB)"; "lost (B)"; "node_down"; "checksum" ]
  in
  let rows = ref [] in
  let record label ~scheme ~overlap seed spec =
    let v, work_ns, rt = run_chaos spec in
    let cl = Mira_sim.Cluster.stats (Runtime.cluster rt) in
    let net = Mira_sim.Net.stats (Runtime.net rt) in
    let rec_p50 =
      Mira_telemetry.Metrics.hist_percentile cl.Mira_sim.Cluster.recovery 50.0
    in
    let rec_p99 =
      Mira_telemetry.Metrics.hist_percentile cl.Mira_sim.Cluster.recovery 99.0
    in
    let tput =
      float_of_int dp_micro_cfg.Mira_workloads.Micro_sum.elems /. (work_ns /. 1e3)
    in
    let lost = Mira_runtime.Runtime.lost_bytes_total rt in
    let checksum = Format.asprintf "%a" Mira_interp.Value.pp v in
    Table.add_row t
      [ label; string_of_int seed;
        Printf.sprintf "%.3f" (work_ns /. 1e6);
        Printf.sprintf "%.2f" tput;
        Printf.sprintf "%.1f" (rec_p50 /. 1e3);
        Printf.sprintf "%.1f" (rec_p99 /. 1e3);
        string_of_int cl.Mira_sim.Cluster.crashes;
        string_of_int cl.Mira_sim.Cluster.failovers;
        string_of_int (cl.Mira_sim.Cluster.replication_bytes / 1024);
        string_of_int (cl.Mira_sim.Cluster.resync_bytes / 1024);
        string_of_int (cl.Mira_sim.Cluster.reconstructed_bytes / 1024);
        string_of_int lost;
        string_of_int net.Mira_sim.Net.node_down;
        checksum ];
    rows :=
      Mira_telemetry.Json.Obj
        [ ("config", Mira_telemetry.Json.Str label);
          ("scheme", Mira_telemetry.Json.Str scheme);
          ("overlap", Mira_telemetry.Json.Bool overlap);
          ("seed", Mira_telemetry.Json.Int seed);
          ("work_ms", Mira_telemetry.Json.Float (work_ns /. 1e6));
          ("throughput_mops", Mira_telemetry.Json.Float tput);
          ("recovery_p50_us", Mira_telemetry.Json.Float (rec_p50 /. 1e3));
          ("recovery_p99_us", Mira_telemetry.Json.Float (rec_p99 /. 1e3));
          ("crashes", Mira_telemetry.Json.Int cl.Mira_sim.Cluster.crashes);
          ("failovers", Mira_telemetry.Json.Int cl.Mira_sim.Cluster.failovers);
          ( "replication_bytes",
            Mira_telemetry.Json.Int cl.Mira_sim.Cluster.replication_bytes );
          ( "bytes_on_wire",
            Mira_telemetry.Json.Int cl.Mira_sim.Cluster.replication_bytes );
          ( "resync_bytes",
            Mira_telemetry.Json.Int cl.Mira_sim.Cluster.resync_bytes );
          ( "reconstructed_bytes",
            Mira_telemetry.Json.Int cl.Mira_sim.Cluster.reconstructed_bytes );
          ("lost_bytes", Mira_telemetry.Json.Int lost);
          ("node_down", Mira_telemetry.Json.Int net.Mira_sim.Net.node_down);
          ("checksum", Mira_telemetry.Json.Str checksum) ]
      :: !rows
  in
  (* Outages at 15% of the baseline run are long enough to straddle
     demand faults, so the degraded rows show real detection latency.
     The sweep crosses redundancy scheme (3-way mirror vs EC(4,2), both
     tolerating two concurrent failures) with outage shape (serialized
     vs genuinely overlapping: the overlap rows pack both crashes into
     the first tenth of the run, so two nodes are down at once and the
     quorum rules — not serial failover — keep the checksum intact). *)
  let horizon_ns = base_ns *. 0.6 and down_ns = base_ns *. 0.15 in
  let schedule ~overlap ~seed ~nodes =
    if overlap then
      Mira_sim.Cluster.schedule_of_seed ~overlap:true ~seed ~nodes ~crashes:2
        ~horizon_ns:(base_ns *. 0.1) ~down_ns:(base_ns *. 0.3)
    else
      Mira_sim.Cluster.schedule_of_seed ~overlap:false ~seed ~nodes ~crashes:2
        ~horizon_ns ~down_ns
  in
  List.iter
    (fun seed ->
      record "no-fault" ~scheme:"1,0" ~overlap:false seed
        Mira_sim.Cluster.spec_default;
      List.iter
        (fun overlap ->
          let tag = if overlap then "overlap" else "serial" in
          record (Printf.sprintf "mirror3 %s" tag) ~scheme:"1,2" ~overlap seed
            (Mira_sim.Cluster.mirror ~nodes:3 ~copies:3
               (schedule ~overlap ~seed ~nodes:3));
          record (Printf.sprintf "ec(4,2) %s" tag) ~scheme:"4,2" ~overlap seed
            (Mira_sim.Cluster.ec ~nodes:6 ~k:4 ~m:2
               (schedule ~overlap ~seed ~nodes:6)))
        [ false; true ];
      record "no-repl crash" ~scheme:"1,0" ~overlap:false seed
        { Mira_sim.Cluster.spec_default with
          Mira_sim.Cluster.schedule =
            Mira_sim.Cluster.schedule_of_seed ~overlap:false ~seed ~nodes:1
              ~crashes:1 ~horizon_ns ~down_ns })
    [ 11; 23 ];
  Table.print t;
  match bench_json_dir () with
  | None -> ()
  | Some dir ->
    let doc =
      Mira_telemetry.Json.Obj
        [ ("title", Mira_telemetry.Json.Str title);
          ("far_bytes", Mira_telemetry.Json.Int far);
          ("local_budget_bytes", Mira_telemetry.Json.Int budget);
          ("rows", Mira_telemetry.Json.List (List.rev !rows)) ]
    in
    let path = Filename.concat dir "BENCH_chaos.json" in
    (try
       let oc = open_out path in
       output_string oc (Mira_telemetry.Json.to_string_pretty doc);
       output_char oc '\n';
       close_out oc;
       Printf.printf "[bench json: %s]\n" path
     with Sys_error msg -> Printf.eprintf "[bench json skipped: %s]\n" msg)

let all_figures =
  [
    ("dataplane", figdp);
    ("chaos", figchaos);
    ("fig5", fig5); ("fig6", fig6); ("fig7", fig7_8); ("fig9", fig9);
    ("fig10", fig10); ("fig11", fig11_12); ("fig13", fig13); ("fig15", fig15);
    ("fig16", fig16); ("fig17", fig17); ("fig18", fig18); ("fig19", fig19);
    ("fig20", fig20); ("fig21", fig21); ("fig22", fig22); ("fig23", fig23);
    ("fig24", fig24); ("fig25", fig25); ("taba", taba); ("tabb", tabb);
  ]
