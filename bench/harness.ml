(* Shared infrastructure for the figure benchmarks: run a workload
   program on any memory system and report the simulated time of its
   measured [work] function, normalized against the native run. *)
module Ir = Mira_mir.Ir
module Machine = Mira_interp.Machine
module Value = Mira_interp.Value
module C = Mira.Controller
module Table = Mira_util.Table
module Json = Mira_telemetry.Json
module Decision = Mira_telemetry.Decision

type system =
  | Native
  | Fastswap
  | Leap
  | Aifm of (Ir.program -> int -> int)  (** granularity per site *)
  | Mira_sys of (C.options -> C.options)  (** option tweak (ablation) *)

let system_name = function
  | Native -> "native"
  | Fastswap -> "fastswap"
  | Leap -> "leap"
  | Aifm _ -> "aifm"
  | Mira_sys _ -> "mira"

type outcome = Time of float | Failed of string

type ctx = {
  params : Mira_sim.Params.t;
  far_capacity : int;
  prog : Ir.program;
  verbose : bool;
  mira_iterations : int;
  nthreads : int;
  tenants : int;
}

(* Benchmark-context builder: [Ctx.make ~far_bytes prog] gives the
   defaults, [with_*] customizes.  Every system a sweep runs receives
   the same context, so a tweak (thread count, tenant count, params)
   applies uniformly. *)
module Ctx = struct
  type t = ctx

  let make ~far_bytes prog =
    {
      params = Mira_sim.Params.default;
      far_capacity = Mira_util.Misc.round_up (4 * far_bytes) 4096;
      prog;
      verbose = false;
      mira_iterations = 4;
      nthreads = 1;
      tenants = 1;
    }

  let with_params params t = { t with params }
  let with_verbose verbose t = { t with verbose }

  let with_iterations mira_iterations t =
    if mira_iterations < 1 then
      invalid_arg "Ctx.with_iterations: must be >= 1";
    { t with mira_iterations }

  let with_nthreads nthreads t =
    if nthreads < 1 then invalid_arg "Ctx.with_nthreads: must be >= 1";
    { t with nthreads }

  let with_tenants tenants t =
    if tenants < 1 then invalid_arg "Ctx.with_tenants: must be >= 1";
    { t with tenants }
end

let measured ctx = Mira_passes.Instrument.run_only ctx.prog ~names:[ C.work_function ctx.prog ]

(* Simulated work time for one system at one local-memory budget;
   for Mira also the (iteration, work_ns) trajectory from the
   controller's decision trace. *)
let run_detail ctx ~budget system =
  let p = ctx.params in
  try
    match system with
    | Native ->
      let ms = Mira_baselines.Native.create ~params:p ~capacity:ctx.far_capacity () in
      let machine = Machine.create ~nthreads:ctx.nthreads ~seed:42 ms (measured ctx) in
      (Time (snd (C.measure_work ms machine)), None)
    | Fastswap ->
      let ms =
        Mira_baselines.Fastswap.create ~params:p ~local_budget:budget
          ~far_capacity:ctx.far_capacity ()
      in
      let machine = Machine.create ~nthreads:ctx.nthreads ~seed:42 ms (measured ctx) in
      (Time (snd (C.measure_work ms machine)), None)
    | Leap ->
      let ms =
        Mira_baselines.Leap.create ~params:p ~local_budget:budget
          ~far_capacity:ctx.far_capacity ()
      in
      let machine = Machine.create ~nthreads:ctx.nthreads ~seed:42 ms (measured ctx) in
      (Time (snd (C.measure_work ms machine)), None)
    | Aifm gran ->
      let ms =
        Mira_baselines.Aifm.create ~params:p ~gran:(gran ctx.prog)
          ~local_budget:budget ~far_capacity:ctx.far_capacity ()
      in
      let machine = Machine.create ~nthreads:ctx.nthreads ~seed:42 ms (measured ctx) in
      (Time (snd (C.measure_work ms machine)), None)
    | Mira_sys tweak ->
      let opts =
        tweak
          { (C.options_default ~local_budget:budget ~far_capacity:ctx.far_capacity) with
            C.params = p;
            max_iterations = ctx.mira_iterations;
            nthreads = ctx.nthreads;
            tenants = ctx.tenants;
            verbose = ctx.verbose }
      in
      let compiled = C.optimize opts ctx.prog in
      let trajectory =
        List.filter_map
          (function
            | Decision.Profile_run { iteration; work_ns } ->
              Some (iteration, work_ns)
            | Decision.Measure { iteration; work_ns; _ } ->
              Some (iteration, work_ns)
            | _ -> None)
          compiled.C.c_log
      in
      (Time (snd (C.run compiled)), Some trajectory)
  with
  | Mira_baselines.Aifm.Oom _ -> (Failed "OOM", None)
  | e -> (Failed (Printexc.to_string e), None)

let run ctx ~budget system = fst (run_detail ctx ~budget system)

let cell ~native = function
  | Time t -> Printf.sprintf "%.2fx" (t /. native)
  | Failed msg -> msg

let cell_ms = function
  | Time t -> Printf.sprintf "%.3f" (t /. 1e6)
  | Failed msg -> msg

(* When MIRA_BENCH_JSON names a directory, every sweep also writes a
   machine-readable BENCH_<slug>.json there (see EXPERIMENTS.md). *)
let bench_json_dir () =
  match Sys.getenv_opt "MIRA_BENCH_JSON" with
  | Some d when d <> "" -> Some d
  | _ -> None

let slug title =
  let b = Buffer.create (String.length title) in
  let last_us = ref true in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | '0' .. '9' ->
        Buffer.add_char b c;
        last_us := false
      | 'A' .. 'Z' ->
        Buffer.add_char b (Char.lowercase_ascii c);
        last_us := false
      | _ ->
        if not !last_us then Buffer.add_char b '_';
        last_us := true)
    title;
  let s = Buffer.contents b in
  if s <> "" && s.[String.length s - 1] = '_' then
    String.sub s 0 (String.length s - 1)
  else s

let outcome_json ~native (outcome, trajectory) name =
  let base =
    match outcome with
    | Time t ->
      [
        ("system", Json.Str name);
        ("work_ms", Json.Float (t /. 1e6));
        ("slowdown_vs_native", Json.Float (t /. native));
      ]
    | Failed msg -> [ ("system", Json.Str name); ("failed", Json.Str msg) ]
  in
  let traj =
    match trajectory with
    | None -> []
    | Some points ->
      [
        ( "iterations",
          Json.List
            (List.map
               (fun (i, ns) ->
                 Json.Obj
                   [ ("iteration", Json.Int i); ("work_ns", Json.Float ns) ])
               points) );
      ]
  in
  Json.Obj (base @ traj)

(* Sweep local-memory ratios for a list of systems; prints relative
   slowdown vs native (1.00x = full-local-memory speed). *)
let sweep ctx ~far_bytes ~ratios ~systems ~title =
  Printf.printf "\n### %s\n" title;
  let native =
    match run ctx ~budget:ctx.far_capacity Native with
    | Time t -> t
    | Failed m -> failwith ("native run failed: " ^ m)
  in
  Printf.printf "native work time: %.3f ms (all cells = slowdown vs native)\n"
    (native /. 1e6);
  let t =
    Table.create ~header:("local memory" :: List.map system_name systems)
  in
  let rows = ref [] in
  List.iter
    (fun ratio ->
      let budget =
        max (10 * 4096) (int_of_float (float_of_int far_bytes *. ratio))
      in
      let outcomes =
        List.map (fun s -> (system_name s, run_detail ctx ~budget s)) systems
      in
      let row =
        Printf.sprintf "%.0f%%" (ratio *. 100.0)
        :: List.map (fun (_, (o, _)) -> cell ~native o) outcomes
      in
      Table.add_row t row;
      rows :=
        Json.Obj
          [
            ("ratio", Json.Float ratio);
            ("local_budget_bytes", Json.Int budget);
            ( "systems",
              Json.List
                (List.map (fun (n, d) -> outcome_json ~native d n) outcomes) );
          ]
        :: !rows)
    ratios;
  Table.print t;
  match bench_json_dir () with
  | None -> ()
  | Some dir ->
    let doc =
      Json.Obj
        [
          ("title", Json.Str title);
          ("native_work_ms", Json.Float (native /. 1e6));
          ("far_bytes", Json.Int far_bytes);
          ("nthreads", Json.Int ctx.nthreads);
          ("rows", Json.List (List.rev !rows));
        ]
    in
    let path = Filename.concat dir ("BENCH_" ^ slug title ^ ".json") in
    (* never lose a finished sweep to an unwritable output directory *)
    (try
       let oc = open_out path in
       output_string oc (Json.to_string_pretty doc);
       output_char oc '\n';
       close_out oc;
       Printf.printf "[bench json: %s]\n" path
     with Sys_error msg -> Printf.eprintf "[bench json skipped: %s]\n" msg)

let checksum_guard ctx ~budget =
  (* every system must compute the same program result *)
  let value system =
    match system with
    | Native ->
      let ms = Mira_baselines.Native.create ~params:ctx.params ~capacity:ctx.far_capacity () in
      Some (Machine.run (Machine.create ~nthreads:ctx.nthreads ~seed:42 ms (measured ctx)))
    | _ -> (
      try
        match system with
        | Fastswap ->
          let ms =
            Mira_baselines.Fastswap.create ~params:ctx.params ~local_budget:budget
              ~far_capacity:ctx.far_capacity ()
          in
          Some (Machine.run (Machine.create ~nthreads:ctx.nthreads ~seed:42 ms (measured ctx)))
        | _ -> None
      with _ -> None)
  in
  match (value Native, value Fastswap) with
  | Some a, Some b when not (Value.equal a b) ->
    failwith "checksum mismatch between systems"
  | _ -> ()
