(* Shared infrastructure for the figure benchmarks: run a workload
   program on any memory system and report the simulated time of its
   measured [work] function, normalized against the native run. *)
module Ir = Mira_mir.Ir
module Machine = Mira_interp.Machine
module Value = Mira_interp.Value
module C = Mira.Controller
module Table = Mira_util.Table

type system =
  | Native
  | Fastswap
  | Leap
  | Aifm of (Ir.program -> int -> int)  (** granularity per site *)
  | Mira_sys of (C.options -> C.options)  (** option tweak (ablation) *)

let system_name = function
  | Native -> "native"
  | Fastswap -> "fastswap"
  | Leap -> "leap"
  | Aifm _ -> "aifm"
  | Mira_sys _ -> "mira"

type outcome = Time of float | Failed of string

type ctx = {
  params : Mira_sim.Params.t;
  far_capacity : int;
  prog : Ir.program;
  verbose : bool;
  mira_iterations : int;
  nthreads : int;
}

let make_ctx ?(params = Mira_sim.Params.default) ?(verbose = false)
    ?(mira_iterations = 4) ?(nthreads = 1) ~far_bytes prog =
  {
    params;
    far_capacity = Mira_util.Misc.round_up (4 * far_bytes) 4096;
    prog;
    verbose;
    mira_iterations;
    nthreads;
  }

let measured ctx = Mira_passes.Instrument.run_only ctx.prog ~names:[ C.work_function ctx.prog ]

(* Simulated work time for one system at one local-memory budget. *)
let run ctx ~budget system =
  let p = ctx.params in
  try
    match system with
    | Native ->
      let ms = Mira_baselines.Native.create ~params:p ~capacity:ctx.far_capacity () in
      let machine = Machine.create ~nthreads:ctx.nthreads ~seed:42 ms (measured ctx) in
      Time (snd (C.measure_work ms machine))
    | Fastswap ->
      let ms =
        Mira_baselines.Fastswap.create ~params:p ~local_budget:budget
          ~far_capacity:ctx.far_capacity ()
      in
      let machine = Machine.create ~nthreads:ctx.nthreads ~seed:42 ms (measured ctx) in
      Time (snd (C.measure_work ms machine))
    | Leap ->
      let ms =
        Mira_baselines.Leap.create ~params:p ~local_budget:budget
          ~far_capacity:ctx.far_capacity ()
      in
      let machine = Machine.create ~nthreads:ctx.nthreads ~seed:42 ms (measured ctx) in
      Time (snd (C.measure_work ms machine))
    | Aifm gran ->
      let ms =
        Mira_baselines.Aifm.create ~params:p ~gran:(gran ctx.prog)
          ~local_budget:budget ~far_capacity:ctx.far_capacity ()
      in
      let machine = Machine.create ~nthreads:ctx.nthreads ~seed:42 ms (measured ctx) in
      Time (snd (C.measure_work ms machine))
    | Mira_sys tweak ->
      let opts =
        tweak
          { (C.options_default ~local_budget:budget ~far_capacity:ctx.far_capacity) with
            C.params = p;
            max_iterations = ctx.mira_iterations;
            nthreads = ctx.nthreads;
            verbose = ctx.verbose }
      in
      let compiled = C.optimize opts ctx.prog in
      Time (snd (C.run compiled))
  with
  | Mira_baselines.Aifm.Oom _ -> Failed "OOM"
  | e -> Failed (Printexc.to_string e)

let cell ~native = function
  | Time t -> Printf.sprintf "%.2fx" (t /. native)
  | Failed msg -> msg

let cell_ms = function
  | Time t -> Printf.sprintf "%.3f" (t /. 1e6)
  | Failed msg -> msg

(* Sweep local-memory ratios for a list of systems; prints relative
   slowdown vs native (1.00x = full-local-memory speed). *)
let sweep ctx ~far_bytes ~ratios ~systems ~title =
  Printf.printf "\n### %s\n" title;
  let native =
    match run ctx ~budget:ctx.far_capacity Native with
    | Time t -> t
    | Failed m -> failwith ("native run failed: " ^ m)
  in
  Printf.printf "native work time: %.3f ms (all cells = slowdown vs native)\n"
    (native /. 1e6);
  let t =
    Table.create ~header:("local memory" :: List.map system_name systems)
  in
  List.iter
    (fun ratio ->
      let budget =
        max (10 * 4096) (int_of_float (float_of_int far_bytes *. ratio))
      in
      let row =
        Printf.sprintf "%.0f%%" (ratio *. 100.0)
        :: List.map (fun s -> cell ~native (run ctx ~budget s)) systems
      in
      Table.add_row t row)
    ratios;
  Table.print t

let checksum_guard ctx ~budget =
  (* every system must compute the same program result *)
  let value system =
    match system with
    | Native ->
      let ms = Mira_baselines.Native.create ~params:ctx.params ~capacity:ctx.far_capacity () in
      Some (Machine.run (Machine.create ~nthreads:ctx.nthreads ~seed:42 ms (measured ctx)))
    | _ -> (
      try
        match system with
        | Fastswap ->
          let ms =
            Mira_baselines.Fastswap.create ~params:ctx.params ~local_budget:budget
              ~far_capacity:ctx.far_capacity ()
          in
          Some (Machine.run (Machine.create ~nthreads:ctx.nthreads ~seed:42 ms (measured ctx)))
        | _ -> None
      with _ -> None)
  in
  match (value Native, value Fastswap) with
  | Some a, Some b when not (Value.equal a b) ->
    failwith "checksum mismatch between systems"
  | _ -> ()
