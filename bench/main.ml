(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md section 4 and EXPERIMENTS.md).

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- --list       # available targets
     dune exec bench/main.exe -- --only fig5  # one figure
     dune exec bench/main.exe -- --only fig5,fig18,micro *)

let targets =
  Figures.all_figures
  @ [
      ("micro", Micro.run);
      ("micro-sweep", Micro.sweep);
      ("serving", Serving.run);
    ]

let usage () =
  print_endline "usage: main.exe [--list | --only <id>[,<id>...]]";
  print_endline "targets:";
  List.iter (fun (name, _) -> Printf.printf "  %s\n" name) targets

let run_target (name, fn) =
  Printf.printf "\n================ %s ================\n%!" name;
  let t0 = Unix.gettimeofday () in
  (try fn () with e ->
     Printf.printf "!! %s failed: %s\n" name (Printexc.to_string e));
  Printf.printf "[%s took %.1f s wall]\n%!" name (Unix.gettimeofday () -. t0)

let () =
  let args = Array.to_list Sys.argv in
  match args with
  | _ :: "--list" :: _ -> usage ()
  | _ :: "--only" :: ids :: _ ->
    let wanted = String.split_on_char ',' ids in
    let known = List.filter (fun (n, _) -> List.mem n wanted) targets in
    if known = [] then usage () else List.iter run_target known
  | [ _ ] ->
    print_endline "Mira reproduction: regenerating all evaluation figures.";
    print_endline "(relative numbers; see EXPERIMENTS.md for the mapping)";
    List.iter run_target targets
  | _ -> usage ()
