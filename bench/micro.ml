(* Bechamel micro-benchmarks of the runtime's real (wall-clock) hot
   paths: cache lookups per structure, the swap fault path, pointer
   encoding, and the value codec.  These measure the simulator itself,
   complementing the simulated-time figures. *)
module Section = Mira_cache.Section
module Swap = Mira_cache.Swap_section
module Rptr = Mira_runtime.Rptr
open Bechamel
open Toolkit

let make_section structure =
  let net = Mira_sim.Net.create Mira_sim.Params.default in
  let far = Mira_sim.Cluster.of_store (Mira_sim.Far_store.create ~capacity:(1 lsl 22)) in
  let clock = Mira_sim.Clock.create () in
  let s =
    Section.create net far
      { (Section.config_default ~sec_id:1 ~name:"b" ~line:256 ~size:(1 lsl 18)) with
        Section.structure }
  in
  (* warm it *)
  for i = 0 to 255 do
    Section.store s ~clock ~addr:(i * 256) ~len:8 (Int64.of_int i)
  done;
  (s, clock)

let bench_section_hit name structure =
  let s, clock = make_section structure in
  let i = ref 0 in
  Test.make ~name (Staged.stage (fun () ->
      i := (!i + 1) land 255;
      ignore (Section.load s ~clock ~addr:(!i * 256) ~len:8)))

let bench_swap_hit =
  let net = Mira_sim.Net.create Mira_sim.Params.default in
  let far = Mira_sim.Cluster.of_store (Mira_sim.Far_store.create ~capacity:(1 lsl 22)) in
  let clock = Mira_sim.Clock.create () in
  let sw =
    Swap.create net far
      { Swap.page = 4096; capacity = 1 lsl 20; side = Mira_sim.Net.One_sided }
  in
  for i = 0 to 127 do
    Swap.store sw ~clock ~addr:(i * 4096) ~len:8 1L
  done;
  let i = ref 0 in
  Test.make ~name:"swap hit path" (Staged.stage (fun () ->
      i := (!i + 1) land 127;
      ignore (Swap.load sw ~clock ~addr:(!i * 4096) ~len:8)))

let bench_rptr =
  let i = ref 0 in
  Test.make ~name:"rptr encode+decode" (Staged.stage (fun () ->
      incr i;
      let v = Rptr.encode ~section:(!i land 0xFF) ~offset:(!i land 0xFFFFF) in
      ignore (Rptr.section v + Rptr.offset v)))

let bench_value_codec =
  let i = ref 0 in
  Test.make ~name:"value encode+decode" (Staged.stage (fun () ->
      incr i;
      let v = Mira_interp.Value.Vint (Int64.of_int !i) in
      let bits = Mira_interp.Value.encode Mira_mir.Types.I64 v in
      ignore (Mira_interp.Value.decode Mira_mir.Types.I64 bits)))

let tests () =
  Test.make_grouped ~name:"runtime hot paths"
    [
      bench_section_hit "section hit (direct)" Section.Direct;
      bench_section_hit "section hit (set8)" (Section.Set_assoc 8);
      bench_section_hit "section hit (full)" Section.Full_assoc;
      bench_swap_hit;
      bench_rptr;
      bench_value_codec;
    ]

(* Deterministic simulated-time sweep: the CI perf-regression gate's
   input.  Unlike [run] (wall clock), every number here is simulated
   time, so two runs with the same build produce byte-identical
   BENCH_micro.json files (set MIRA_BENCH_JSON to collect one). *)
let sweep () =
  let module W = Mira_workloads.Micro_sum in
  let cfg = W.config_default in
  let prog = W.build cfg in
  let far = W.far_bytes cfg in
  let ctx =
    Harness.Ctx.make ~far_bytes:far prog |> Harness.Ctx.with_iterations 3
  in
  Harness.sweep ctx ~far_bytes:far ~ratios:[ 0.2; 0.5 ]
    ~systems:
      [ Harness.Fastswap; Harness.Leap; Harness.Mira_sys (fun o -> o) ]
    ~title:"micro"

let run () =
  Printf.printf "\n### Microbenchmarks: real (wall-clock) runtime hot paths\n%!";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg instances (tests ()) in
  let results =
    List.map (fun i -> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]) i raw) instances
  in
  let results = Analyze.merge (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]) instances results in
  Hashtbl.iter
    (fun _measure tbl ->
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-40s %8.1f ns/op\n" name est
          | _ -> Printf.printf "%-40s (no estimate)\n" name)
        tbl)
    results
