(* Bechamel micro-benchmarks of the runtime's real (wall-clock) hot
   paths: cache lookups per structure, the swap fault path, pointer
   encoding, and the value codec.  These measure the simulator itself,
   complementing the simulated-time figures. *)
module Section = Mira_cache.Section
module Swap = Mira_cache.Swap_section
module Rptr = Mira_runtime.Rptr
open Bechamel
open Toolkit

let make_section structure =
  let net = Mira_sim.Net.create Mira_sim.Params.default in
  let far = Mira_sim.Cluster.of_store (Mira_sim.Far_store.create ~capacity:(1 lsl 22)) in
  let clock = Mira_sim.Clock.create () in
  let s =
    Section.create net far
      { (Section.config_default ~sec_id:1 ~name:"b" ~line:256 ~size:(1 lsl 18)) with
        Section.structure }
  in
  (* warm it *)
  for i = 0 to 255 do
    Section.store s ~clock ~addr:(i * 256) ~len:8 (Int64.of_int i)
  done;
  (s, clock)

let bench_section_hit name structure =
  let s, clock = make_section structure in
  let i = ref 0 in
  Test.make ~name (Staged.stage (fun () ->
      i := (!i + 1) land 255;
      ignore (Section.load s ~clock ~addr:(!i * 256) ~len:8)))

let bench_swap_hit =
  let net = Mira_sim.Net.create Mira_sim.Params.default in
  let far = Mira_sim.Cluster.of_store (Mira_sim.Far_store.create ~capacity:(1 lsl 22)) in
  let clock = Mira_sim.Clock.create () in
  let sw =
    Swap.create net far
      { Swap.page = 4096; capacity = 1 lsl 20; side = Mira_sim.Net.One_sided }
  in
  for i = 0 to 127 do
    Swap.store sw ~clock ~addr:(i * 4096) ~len:8 1L
  done;
  let i = ref 0 in
  Test.make ~name:"swap hit path" (Staged.stage (fun () ->
      i := (!i + 1) land 127;
      ignore (Swap.load sw ~clock ~addr:(!i * 4096) ~len:8)))

let bench_rptr =
  let i = ref 0 in
  Test.make ~name:"rptr encode+decode" (Staged.stage (fun () ->
      incr i;
      let v = Rptr.encode ~section:(!i land 0xFF) ~offset:(!i land 0xFFFFF) in
      ignore (Rptr.section v + Rptr.offset v)))

let bench_value_codec =
  let i = ref 0 in
  Test.make ~name:"value encode+decode" (Staged.stage (fun () ->
      incr i;
      let v = Mira_interp.Value.Vint (Int64.of_int !i) in
      let bits = Mira_interp.Value.encode Mira_mir.Types.I64 v in
      ignore (Mira_interp.Value.decode Mira_mir.Types.I64 bits)))

(* Dispatch-heavy scheduler run: 8 tenants, 25 tasks each, 4 clock
   moves per task — ~1000 dispatches against a ~200-entry event queue.
   This is the engine's hot loop under serving load; before the binary
   heap, every dispatch scanned and rebuilt the whole queue. *)
let bench_sched_dispatch =
  let module Sched = Mira_sim.Sched in
  Test.make ~name:"sched dispatch (8 tenants)" (Staged.stage (fun () ->
      let s = Sched.create () in
      for tenant = 0 to 7 do
        for task = 0 to 24 do
          Sched.spawn s ~tenant (fun () ->
              let c = Sched.clock s ~tenant in
              for k = 1 to 4 do
                Mira_sim.Clock.advance c (float_of_int ((task * 4) + k))
              done)
        done
      done;
      Sched.run s))

(* A bounded in-flight window under heavy backlog: 512 posts against a
   64-slot window, none retiring (the probe time never advances), so
   the in-flight set only grows.  Before the done-at-keyed heaps every
   post re-sorted the whole set to find the admission gate. *)
let bench_net_window =
  let module Net = Mira_sim.Net in
  Test.make ~name:"net saturated window" (Staged.stage (fun () ->
      let dp = { Net.dp_default with Net.window = 64 } in
      let net = Net.create ~dp Mira_sim.Params.default in
      for _ = 1 to 512 do
        ignore
          (Net.submit net ~now:0.0 ~urgent:true ~detached:true
             (Net.Request.read ~side:Mira_sim.Net.One_sided
                ~purpose:Net.Demand 256))
      done;
      ignore (Net.fence net ~now:0.0)))

let tests () =
  Test.make_grouped ~name:"runtime hot paths"
    [
      bench_section_hit "section hit (direct)" Section.Direct;
      bench_section_hit "section hit (set8)" (Section.Set_assoc 8);
      bench_section_hit "section hit (full)" Section.Full_assoc;
      bench_swap_hit;
      bench_rptr;
      bench_value_codec;
      bench_sched_dispatch;
      bench_net_window;
    ]

(* Deterministic simulated-time sweep: the CI perf-regression gate's
   input.  Unlike [run] (wall clock), every number here is simulated
   time, so two runs with the same build produce byte-identical
   BENCH_micro.json files (set MIRA_BENCH_JSON to collect one). *)
let sweep () =
  let module W = Mira_workloads.Micro_sum in
  let cfg = W.config_default in
  let prog = W.build cfg in
  let far = W.far_bytes cfg in
  let ctx =
    Harness.Ctx.make ~far_bytes:far prog |> Harness.Ctx.with_iterations 3
  in
  Harness.sweep ctx ~far_bytes:far ~ratios:[ 0.2; 0.5 ]
    ~systems:
      [ Harness.Fastswap; Harness.Leap; Harness.Mira_sys (fun o -> o) ]
    ~title:"micro"

let run () =
  Printf.printf "\n### Microbenchmarks: real (wall-clock) runtime hot paths\n%!";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg instances (tests ()) in
  let results =
    List.map (fun i -> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]) i raw) instances
  in
  let results = Analyze.merge (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]) instances results in
  Hashtbl.iter
    (fun _measure tbl ->
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-40s %8.1f ns/op\n" name est
          | _ -> Printf.printf "%-40s (no estimate)\n" name)
        tbl)
    results
