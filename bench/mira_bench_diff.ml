(* Perf-regression gate CLI: compare two BENCH_*.json documents
   (written by the bench harness when MIRA_BENCH_JSON is set).

     dune exec bench/mira_bench_diff.exe -- baseline.json candidate.json
     dune exec bench/mira_bench_diff.exe -- --tolerance 0.10 a.json b.json

   Exit 0 when every compared time is within tolerance, 1 on any
   regression, 2 on usage errors / unreadable or malformed input. *)

module Diff = Mira_telemetry.Bench_diff

let run tolerance baseline candidate =
  if not (Float.is_finite tolerance) || tolerance < 0.0 then begin
    Printf.eprintf
      "mira_bench_diff: invalid tolerance %g (need a finite value >= 0)\n"
      tolerance;
    exit 2
  end;
  let load path =
    match Diff.load path with
    | Ok doc -> doc
    | Error msg ->
      Printf.eprintf "mira_bench_diff: %s\n" msg;
      exit 2
  in
  let base = load baseline in
  let cand = load candidate in
  let v = Diff.compare_docs ~tolerance ~baseline:base ~candidate:cand in
  List.iter (fun l -> Printf.printf "note:       %s\n" l) v.Diff.v_notes;
  List.iter (fun l -> Printf.printf "improvement: %s\n" l) v.Diff.v_improvements;
  List.iter (fun l -> Printf.printf "REGRESSION: %s\n" l) v.Diff.v_regressions;
  Printf.printf "%d time pair(s) compared, %d regression(s)\n" v.Diff.v_compared
    (List.length v.Diff.v_regressions);
  if v.Diff.v_regressions <> [] then exit 1

open Cmdliner

let tolerance_arg =
  Arg.(value & opt float 0.05
       & info [ "tolerance" ] ~docv:"FRAC"
           ~doc:"relative slowdown allowed before a time counts as a \
                 regression (e.g. 0.05 = 5%)")

let baseline_arg =
  Arg.(required & pos 0 (some file) None
       & info [] ~docv:"BASELINE" ~doc:"committed BENCH_*.json baseline")

let candidate_arg =
  Arg.(required & pos 1 (some file) None
       & info [] ~docv:"CANDIDATE" ~doc:"freshly generated BENCH_*.json")

let cmd =
  let doc = "compare two bench-harness BENCH_*.json documents" in
  Cmd.v (Cmd.info "mira_bench_diff" ~doc)
    Term.(const run $ tolerance_arg $ baseline_arg $ candidate_arg)

let () =
  match Cmd.eval_value cmd with
  | Ok (`Ok ()) | Ok `Help | Ok `Version -> exit 0
  | Error (`Parse | `Term) -> exit 2
  | Error `Exn -> exit 125
