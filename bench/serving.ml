(* Many-tenant kv serving: tail latency vs tenant count.

   The sweep runs the open-loop [Kv_serving] workload at a fixed
   per-tenant offered load over growing tenant counts, so the shared
   resources (net link bandwidth, far cluster) cross saturation inside
   the sweep — p999 and the SLO-miss fraction blow up where they do in
   the paper's motivation.  Writes BENCH_serving.json (config-keyed
   rows, one [tenants=N] row per count plus a [tenants=N p999] row so
   the perf-regression gate guards the tail, not just the elapsed
   time). *)
module K = Mira_workloads.Kv_serving
module Json = Mira_telemetry.Json
module Table = Mira_util.Table

let tenant_counts = [ 1; 2; 4; 8 ]

(* Swap-like sections (4 KiB lines), uniform keys, small cache ratio:
   high miss-byte rate, so the shared 6.25 B/ns link saturates between
   4 and 8 tenants at a 250 krps per-tenant offered load. *)
let sweep_cfg tenants =
  {
    K.config_default with
    K.tenants;
    requests = 2_500;
    keys = 16_384;
    value_bytes = 64;
    line = 4096;
    local_ratio = 0.125;
    zipf_s = 0.0;
    arrival_ns = 4_000.0;
  }

let run () =
  Printf.printf "\n### Serving: kv tail latency vs tenant count\n";
  let t =
    Table.create
      ~header:
        [
          "tenants"; "krps"; "p50 us"; "p99 us"; "p999 us"; "SLO miss";
          "sat on ms"; "host kevt/s";
        ]
  in
  let rows = ref [] in
  List.iter
    (fun n ->
      let cfg = sweep_cfg n in
      (* Host events/sec: scheduler dispatches per wall-clock second —
         the engine's own speed, printed only (wall time is
         nondeterministic and must never reach BENCH_serving.json). *)
      let rt = Mira_runtime.Runtime.create (K.runtime_config cfg) in
      (* The timeline sampler reads shared state only: the measured
         run (latencies, checksum, report_json) is byte-identical with
         or without it, so attaching it here cannot move the gated
         work_ms/p999 numbers — it only adds the saturation-onset
         column. *)
      let tl = K.Timeline.make () in
      let t0 = Unix.gettimeofday () in
      let r = K.run_on ~timeline:tl rt cfg in
      let wall_s = Unix.gettimeofday () -. t0 in
      let dispatched =
        Mira_sim.Sched.dispatched (Mira_runtime.Runtime.sched rt)
      in
      let kevt_s =
        if wall_s > 0.0 then float_of_int dispatched /. wall_s /. 1e3 else 0.0
      in
      let sat_onset = K.Timeline.saturation_onset_ns tl in
      Table.add_row t
        [
          string_of_int n;
          Printf.sprintf "%.0f" (r.K.throughput_rps /. 1e3);
          Printf.sprintf "%.1f" (r.K.agg_p50_ns /. 1e3);
          Printf.sprintf "%.1f" (r.K.agg_p99_ns /. 1e3);
          Printf.sprintf "%.1f" (r.K.agg_p999_ns /. 1e3);
          Printf.sprintf "%.2f%%" (100.0 *. r.K.agg_slo_miss_frac);
          (match sat_onset with
           | Some ns -> Printf.sprintf "%.2f" (ns /. 1e6)
           | None -> "-");
          Printf.sprintf "%.0f" kevt_s;
        ];
      let key = Printf.sprintf "tenants=%d" n in
      let detail =
        match K.report_json r with Json.Obj fields -> fields | _ -> []
      in
      (* Saturation onset (first window with the wire >= 95% busy on
         this unbounded data plane), from the timeline.  Additive:
         bench_diff reads only config/work_ms, so old and new baselines
         stay mutually comparable. *)
      let detail =
        detail
        @ [
            ( "sat_onset_ms",
              match sat_onset with
              | Some ns -> Json.Float (ns /. 1e6)
              | None -> Json.Null );
          ]
      in
      rows :=
        Json.Obj
          [
            ("config", Json.Str (key ^ " p999"));
            ("work_ms", Json.Float (r.K.agg_p999_ns /. 1e6));
          ]
        :: Json.Obj
             (("config", Json.Str key)
             :: ("work_ms", Json.Float (r.K.elapsed_ns /. 1e6))
             :: detail)
        :: !rows)
    tenant_counts;
  Table.print t;
  match Harness.bench_json_dir () with
  | None -> ()
  | Some dir ->
    let doc =
      Json.Obj
        [ ("title", Json.Str "serving"); ("rows", Json.List (List.rev !rows)) ]
    in
    let path = Filename.concat dir "BENCH_serving.json" in
    (try
       let oc = open_out path in
       output_string oc (Json.to_string_pretty doc);
       output_char oc '\n';
       close_out oc;
       Printf.printf "[bench json: %s]\n" path
     with Sys_error msg -> Printf.eprintf "[bench json skipped: %s]\n" msg)
