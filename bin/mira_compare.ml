(* Command-line driver: run one of the paper's workloads on every
   memory system at a chosen local-memory ratio.

     dune exec bin/mira_compare.exe -- --workload graph --ratio 0.2
     dune exec bin/mira_compare.exe -- -w mcf -r 0.12 -i 4 -v
     dune exec bin/mira_compare.exe -- -w graph --json report.json \
       --trace trace.jsonl *)

module C = Mira.Controller
module Machine = Mira_interp.Machine
module Json = Mira_telemetry.Json
module Trace = Mira_telemetry.Trace

type workload = {
  name : string;
  program : Mira_mir.Ir.program;
  far_bytes : int;
  aifm_gran : Mira_mir.Ir.program -> int -> int;
  params : Mira_sim.Params.t;
}

let workload_of = function
  | "graph" ->
    let module W = Mira_workloads.Graph_traversal in
    let cfg = W.config_default in
    { name = "graph"; program = W.build cfg; far_bytes = W.far_bytes cfg;
      aifm_gran = (fun p s -> max 128 (Mira_workloads.Workload_util.elem_gran p s));
      params = Mira_sim.Params.default }
  | "dataframe" ->
    let module W = Mira_workloads.Dataframe in
    let cfg = W.config_default in
    { name = "dataframe"; program = W.build cfg; far_bytes = W.far_bytes cfg;
      aifm_gran = W.aifm_gran; params = Mira_sim.Params.default }
  | "mcf" ->
    let module W = Mira_workloads.Mcf in
    let cfg = W.config_default in
    { name = "mcf"; program = W.build cfg; far_bytes = W.far_bytes cfg;
      aifm_gran = W.aifm_gran; params = Mira_sim.Params.default }
  | "gpt2" ->
    let module W = Mira_workloads.Gpt2 in
    let cfg = { W.config_default with W.layers = 6; d_model = 32; seq = 16 } in
    { name = "gpt2"; program = W.build cfg; far_bytes = W.far_bytes cfg;
      aifm_gran = W.aifm_gran;
      params =
        { Mira_sim.Params.default with Mira_sim.Params.native_op_ns = 0.05;
          native_mem_ns = 0.3 } }
  | other -> failwith ("unknown workload: " ^ other)

(* CLI validation failures exit 2 with a usage line (never an uncaught
   exception); Cmdliner handles unknown flags/malformed literals, this
   covers well-typed but out-of-range values. *)
let usage_error msg =
  Printf.eprintf "mira_compare: %s\n" msg;
  prerr_endline
    "Usage: mira_compare [-w WORKLOAD] [-r RATIO] [-i N] [-t N] \
     [--tenants N] [OPTION]…\n\
     Try 'mira_compare --help' for more information.";
  exit 2

(* The kv workload is not a MIR program run through the interpreter:
   it drives Mira's runtime directly with N open-loop serving loops
   interleaved on the discrete-event scheduler, and reports tail
   latency against an SLO instead of a systems comparison. *)
let serve_kv ratio tenants requests net_window net_coalesce timeline_out
    verbose json_out trace_out flame_out cpath_out =
  let module K = Mira_workloads.Kv_serving in
  let module Table = Mira_util.Table in
  if not (Float.is_finite ratio) || ratio <= 0.0 || ratio > 1.0 then
    usage_error
      (Printf.sprintf
         "invalid ratio %g (the kv workload caches ratio of its data \
          locally; need a finite value in (0,1])"
         ratio);
  if requests < 1 then
    usage_error (Printf.sprintf "invalid requests %d (need >= 1)" requests);
  let cfg = { K.config_default with K.tenants; requests; local_ratio = ratio } in
  Printf.printf
    "kv: %d tenant(s), %d requests each, %d keys x %d B, %.0f%% cached \
     locally, SLO %.0f us\n\n"
    tenants cfg.K.requests cfg.K.keys cfg.K.value_bytes (ratio *. 100.0)
    (cfg.K.slo_ns /. 1e3);
  if trace_out <> None || cpath_out <> None then Trace.enable ();
  let rt_cfg =
    K.runtime_config cfg
    |> Mira_runtime.Runtime.Config.with_dataplane
         { Mira_sim.Net.dp_default with
           Mira_sim.Net.window = net_window; coalesce = net_coalesce }
  in
  let rt = Mira_runtime.Runtime.create rt_cfg in
  let timeline = Option.map (fun _ -> K.Timeline.make ()) timeline_out in
  let r = K.run_on ?timeline rt cfg in
  (match (timeline_out, timeline) with
   | Some path, Some tl ->
     let lines = K.Timeline.jsonl tl ~rt in
     (try
        let oc = open_out path in
        List.iter
          (fun j ->
            output_string oc (Json.to_string j);
            output_char oc '\n')
          lines;
        close_out oc;
        let sat =
          match K.Timeline.saturation_onset_ns tl with
          | Some ns -> Printf.sprintf "saturation onset %.0f us" (ns /. 1e3)
          | None -> "no saturated window"
        in
        let burn =
          match K.Timeline.first_burn_ns tl with
          | Some ns -> Printf.sprintf "first SLO burn %.0f us" (ns /. 1e3)
          | None -> "no SLO burn"
        in
        Printf.printf "timeline written to %s (%d window(s); %s; %s)\n" path
          (List.length lines - 1)
          sat burn
      with Sys_error msg ->
        Printf.eprintf "error: cannot write timeline: %s\n" msg;
        exit 1)
   | _ -> ());
  let t =
    Table.create
      ~header:[ "tenant"; "p50 us"; "p99 us"; "p999 us"; "SLO miss" ]
  in
  Array.iter
    (fun (tr : K.tenant_report) ->
      Table.add_row t
        [
          string_of_int tr.K.tenant;
          Printf.sprintf "%.1f" (tr.K.p50_ns /. 1e3);
          Printf.sprintf "%.1f" (tr.K.p99_ns /. 1e3);
          Printf.sprintf "%.1f" (tr.K.p999_ns /. 1e3);
          Printf.sprintf "%.2f%%" (100.0 *. tr.K.slo_miss_frac);
        ])
    r.K.per_tenant;
  Table.print t;
  Printf.printf
    "\naggregate: %.0f krps, p50 %.1f us, p99 %.1f us, p999 %.1f us, SLO \
     miss %.2f%%, checksum %016Lx\n"
    (r.K.throughput_rps /. 1e3)
    (r.K.agg_p50_ns /. 1e3)
    (r.K.agg_p99_ns /. 1e3)
    (r.K.agg_p999_ns /. 1e3)
    (100.0 *. r.K.agg_slo_miss_frac)
    r.K.checksum;
  if verbose then begin
    print_newline ();
    print_string (Mira.Report.runtime_stats rt)
  end;
  (match trace_out with
   | Some path ->
     let n = List.length (Trace.events ()) in
     (try
        Trace.write_jsonl path;
        Printf.printf "trace written to %s (%d events, %d dropped)\n" path n
          (Trace.dropped ())
      with Sys_error msg ->
        Printf.eprintf "error: cannot write trace: %s\n" msg)
   | None -> ());
  (match cpath_out with
   | Some path ->
     (* The serving latency histograms join the runtime's registry so
        tail requests decompose alongside the net/cache exemplars. *)
     let reg = Mira.Report.runtime_metrics rt in
     K.publish r reg;
     let evs = Trace.events () in
     let report = Mira_telemetry.Critical_path.report reg evs in
     let folded = Mira_telemetry.Critical_path.folded reg evs in
     (try
        let oc = open_out path in
        output_string oc (Json.to_string_pretty report);
        output_char oc '\n';
        close_out oc;
        let oc = open_out (path ^ ".folded") in
        output_string oc folded;
        close_out oc;
        Printf.printf "critical-path report written to %s (+ %s.folded)\n"
          path path
      with Sys_error msg ->
        Printf.eprintf "error: cannot write critical-path report: %s\n" msg;
        exit 1)
   | None -> ());
  if trace_out <> None || cpath_out <> None then Trace.disable ();
  (match flame_out with
   | Some path ->
     let folded =
       Mira_telemetry.Attribution.folded
         (Mira_runtime.Runtime.attribution rt)
     in
     let frames =
       String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 folded
     in
     (try
        let oc = open_out path in
        output_string oc folded;
        close_out oc;
        Printf.printf "flame stacks written to %s (%d stack(s))\n" path frames
      with Sys_error msg ->
        Printf.eprintf "error: cannot write flame output: %s\n" msg;
        exit 1)
   | None -> ());
  match json_out with
  | None -> ()
  | Some path ->
    let report =
      Json.Obj
        [
          ("workload", Json.Str "kv");
          ("ratio", Json.Float ratio);
          ("serving", K.report_json r);
          ("mira_runtime_stats", Mira.Report.runtime_stats_json rt);
          ("stall_attribution", Mira.Report.attribution_json rt);
        ]
    in
    (try
       let oc = open_out path in
       output_string oc (Json.to_string_pretty report);
       output_char oc '\n';
       close_out oc;
       Printf.printf "report written to %s\n" path
     with Sys_error msg ->
       Printf.eprintf "error: cannot write report: %s\n" msg;
       exit 1)

let compare_systems wname ratio iterations threads tenants requests
    net_window net_coalesce nodes ec timeline_out verbose json_out trace_out
    flame_out cpath_out =
  if not (Float.is_finite ratio) || ratio <= 0.0 then
    usage_error (Printf.sprintf "invalid ratio %g (need a finite value > 0)" ratio);
  if timeline_out <> None && wname <> "kv" then
    usage_error
      (Printf.sprintf
         "--timeline requires the kv workload (the '%s' workload emits no \
          windows; windowed telemetry comes from the serving loops)"
         wname);
  if iterations < 1 then
    usage_error (Printf.sprintf "invalid iterations %d (need >= 1)" iterations);
  if threads < 1 then
    usage_error (Printf.sprintf "invalid threads %d (need >= 1)" threads);
  if tenants < 1 then
    usage_error (Printf.sprintf "invalid tenants %d (need >= 1)" tenants);
  if net_window < 0 then
    usage_error
      (Printf.sprintf "invalid net-window %d (need >= 0; 0 = unbounded)"
         net_window);
  if nodes < 1 then
    usage_error (Printf.sprintf "invalid nodes %d (need >= 1)" nodes);
  let cluster =
    match ec with
    | None ->
      (* --nodes alone: n-way flat mirroring across the cluster. *)
      if nodes = 1 then Mira_sim.Cluster.spec_default
      else Mira_sim.Cluster.mirror ~nodes ~copies:nodes []
    | Some spec_str ->
      let k, m =
        match String.split_on_char ',' spec_str with
        | [ ks; ms ] -> (
          match (int_of_string_opt (String.trim ks),
                 int_of_string_opt (String.trim ms)) with
          | Some k, Some m -> (k, m)
          | _ ->
            usage_error
              (Printf.sprintf "invalid --ec '%s' (expected k,m)" spec_str))
        | _ ->
          usage_error
            (Printf.sprintf "invalid --ec '%s' (expected k,m)" spec_str)
      in
      if k < 1 then
        usage_error (Printf.sprintf "invalid --ec %d,%d (k must be >= 1)" k m);
      if m < 0 then
        usage_error (Printf.sprintf "invalid --ec %d,%d (m must be >= 0)" k m);
      if m > 2 then
        usage_error (Printf.sprintf "invalid --ec %d,%d (m must be <= 2)" k m);
      if k + m > nodes then
        usage_error
          (Printf.sprintf
             "invalid --ec %d,%d with %d node(s) (k + m must be <= nodes)" k m
             nodes);
      if m = 0 && k = 1 && nodes = 1 then Mira_sim.Cluster.spec_default
      else Mira_sim.Cluster.ec ~nodes ~k ~m []
  in
  if wname = "kv" then
    serve_kv ratio tenants requests net_window net_coalesce timeline_out
      verbose json_out trace_out flame_out cpath_out
  else begin
  let w = workload_of wname in
  let far_capacity = 4 * w.far_bytes in
  let budget =
    max (10 * 4096) (int_of_float (float_of_int w.far_bytes *. ratio))
  in
  Printf.printf "%s: %d KB far data, local budget %d KB (%.0f%%), %d thread(s)\n\n"
    w.name (w.far_bytes / 1024) (budget / 1024) (ratio *. 100.0) threads;
  let measured =
    Mira_passes.Instrument.run_only w.program
      ~names:[ C.work_function w.program ]
  in
  let results = ref [] in
  let time name ms =
    let machine = Machine.create ~nthreads:threads ~seed:42 ms measured in
    let v, ns = C.measure_work ms machine in
    Printf.printf "%-10s %12.3f ms   checksum=%s\n%!" name (ns /. 1e6)
      (Format.asprintf "%a" Mira_interp.Value.pp v);
    results := (name, ns) :: !results;
    ns
  in
  let native =
    time "native"
      (Mira_baselines.Native.create ~params:w.params ~capacity:far_capacity ())
  in
  ignore
    (time "fastswap"
       (Mira_baselines.Fastswap.create ~params:w.params ~local_budget:budget
          ~far_capacity ()));
  ignore
    (time "leap"
       (Mira_baselines.Leap.create ~params:w.params ~local_budget:budget
          ~far_capacity ()));
  (try
     ignore
       (time "aifm"
          (Mira_baselines.Aifm.create ~params:w.params ~gran:(w.aifm_gran w.program)
             ~local_budget:budget ~far_capacity ()))
   with Mira_baselines.Aifm.Oom msg -> Printf.printf "%-10s %s\n" "aifm" msg);
  if trace_out <> None || cpath_out <> None then Trace.enable ();
  let dataplane =
    { Mira_sim.Net.dp_default with
      Mira_sim.Net.window = net_window; coalesce = net_coalesce }
  in
  let opts =
    { (C.options_default ~local_budget:budget ~far_capacity) with
      C.params = w.params; max_iterations = iterations; nthreads = threads;
      tenants; dataplane; cluster; verbose;
      placement_candidates =
        (* Non-trivial data planes let the controller search the
           stripe-to-node layout like any other dimension. *)
        (if cluster = Mira_sim.Cluster.spec_default then []
         else [ Mira_sim.Cluster.Flat; Mira_sim.Cluster.Rotate ]) }
  in
  let compiled = C.optimize opts w.program in
  let rt, machine = C.instantiate compiled in
  (* The exemplar histograms live in the fresh measured runtime, so
     when only the critical path is wanted the optimize-phase events
     would merely crowd exemplar spans out of the capped buffer: start
     the trace at the measured run.  An explicit --trace keeps the
     full optimize + run timeline. *)
  if cpath_out <> None && trace_out = None then Trace.enable ();
  let ms = Mira_runtime.Runtime.memsys rt in
  let v, mira = C.measure_work ms machine in
  results := ("mira", mira) :: !results;
  (match trace_out with
   | Some path ->
     let n = List.length (Trace.events ()) in
     (try
        Trace.write_jsonl path;
        Printf.printf "trace written to %s (%d events, %d dropped)\n" path n
          (Trace.dropped ())
      with Sys_error msg ->
        Printf.eprintf "error: cannot write trace: %s\n" msg)
   | None -> ());
  (match cpath_out with
   | Some path ->
     (* Decompose the tail exemplars of every published histogram into
        queue/wire/retry/fill/recovery/local segments; the folded
        companion file is flamegraph.pl-compatible. *)
     let reg = Mira.Report.runtime_metrics rt in
     let evs = Trace.events () in
     let report = Mira_telemetry.Critical_path.report reg evs in
     let folded = Mira_telemetry.Critical_path.folded reg evs in
     (try
        let oc = open_out path in
        output_string oc (Json.to_string_pretty report);
        output_char oc '\n';
        close_out oc;
        let oc = open_out (path ^ ".folded") in
        output_string oc folded;
        close_out oc;
        Printf.printf "critical-path report written to %s (+ %s.folded)\n"
          path path
      with Sys_error msg ->
        Printf.eprintf "error: cannot write critical-path report: %s\n" msg;
        exit 1)
   | None -> ());
  if trace_out <> None || cpath_out <> None then Trace.disable ();
  Printf.printf "%-10s %12.3f ms   checksum=%s  (%.2fx native)\n\n" "mira"
    (mira /. 1e6)
    (Format.asprintf "%a" Mira_interp.Value.pp v)
    (mira /. native);
  print_string (Mira.Report.describe compiled);
  if verbose then begin
    print_newline ();
    print_string (Mira.Report.runtime_stats rt)
  end;
  (match flame_out with
   | Some path ->
     let folded =
       Mira_telemetry.Attribution.folded
         (Mira_runtime.Runtime.attribution rt)
     in
     let frames =
       String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 folded
     in
     (try
        let oc = open_out path in
        output_string oc folded;
        close_out oc;
        Printf.printf "flame stacks written to %s (%d stack(s))\n" path frames
      with Sys_error msg ->
        Printf.eprintf "error: cannot write flame output: %s\n" msg;
        exit 1)
   | None -> ());
  match json_out with
  | None -> ()
  | Some path ->
    let systems =
      List.rev_map
        (fun (name, ns) ->
          Json.Obj
            [
              ("system", Json.Str name);
              ("work_ms", Json.Float (ns /. 1e6));
              ("slowdown_vs_native", Json.Float (ns /. native));
            ])
        !results
    in
    let report =
      Json.Obj
        [
          ("workload", Json.Str w.name);
          ("ratio", Json.Float ratio);
          ("threads", Json.Int threads);
          ("local_budget_bytes", Json.Int budget);
          ("far_bytes", Json.Int w.far_bytes);
          ("systems", Json.List systems);
          ("mira", Mira.Report.to_json compiled);
          ("mira_runtime_stats", Mira.Report.runtime_stats_json rt);
          ("stall_attribution", Mira.Report.attribution_json rt);
        ]
    in
    (try
       let oc = open_out path in
       output_string oc (Json.to_string_pretty report);
       output_char oc '\n';
       close_out oc;
       Printf.printf "report written to %s\n" path
     with Sys_error msg ->
       Printf.eprintf "error: cannot write report: %s\n" msg;
       exit 1)
  end

open Cmdliner

let workload_arg =
  (* An enum conv: an unknown workload is a parse error (usage + exit 2),
     not an uncaught exception deep in the run. *)
  let names = [ "graph"; "dataframe"; "mcf"; "gpt2"; "kv" ] in
  Arg.(value & opt (enum (List.map (fun n -> (n, n)) names)) "graph"
       & info [ "w"; "workload" ]
           ~doc:"graph | dataframe | mcf | gpt2 | kv (kv = many-tenant \
                 serving on the discrete-event scheduler; reports tail \
                 latency instead of a systems comparison)")

let ratio_arg =
  Arg.(value & opt float 0.25
       & info [ "r"; "ratio" ] ~doc:"local memory as a fraction of far data")

let iter_arg =
  Arg.(value & opt int 4 & info [ "i"; "iterations" ] ~doc:"controller iterations")

let threads_arg =
  Arg.(value & opt int 1 & info [ "t"; "threads" ] ~doc:"simulated threads")

let tenants_arg =
  Arg.(value & opt int 1
       & info [ "tenants" ]
           ~doc:"tenant contexts interleaved on the discrete-event \
                 scheduler (the kv workload runs one serving loop per \
                 tenant; 1 = the historical single-tenant mode)")

let requests_arg =
  Arg.(value & opt int Mira_workloads.Kv_serving.config_default.requests
       & info [ "requests" ]
           ~doc:"kv workload: requests per tenant (ignored by the MIR \
                 workloads)")

let net_window_arg =
  Arg.(value & opt int 0
       & info [ "net-window" ]
           ~doc:"bound on in-flight network transfers in Mira's runtime \
                 (0 = unbounded, the legacy synchronous data plane)")

let net_coalesce_arg =
  Arg.(value & flag
       & info [ "net-coalesce" ]
           ~doc:"enable doorbell batching: adjacent same-kind transfers \
                 (e.g. a readahead cluster) merge into one network message")

let nodes_arg =
  Arg.(value & opt int 1
       & info [ "nodes" ]
           ~doc:"far-memory cluster size; without $(b,--ec) the data is \
                 mirrored across all nodes (1 = single node, no \
                 redundancy)")

let ec_arg =
  Arg.(value & opt (some string) None
       & info [ "ec" ] ~docv:"K,M"
           ~doc:"erasure-code the far tier into stripes of $(i,K) data + \
                 $(i,M) parity chunks (requires K+M <= $(b,--nodes); M <= \
                 2); mirroring is the special case K=1")

let timeline_arg =
  Arg.(value & opt (some string) None
       & info [ "timeline" ] ~docv:"FILE"
           ~doc:"kv workload only: write time-resolved telemetry to $(docv) \
                 as JSONL — one object per simulated-time window (per-tenant \
                 latency percentiles and SLO burn, net occupancy and wire \
                 bytes, tenant interference rows, top-K hot keys and miss \
                 sites) plus a trailing summary with the saturation-onset \
                 and first-burn windows; see docs/OBSERVABILITY.md")

let verbose_arg = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"controller log")

let json_arg =
  Arg.(value & opt (some string) None
       & info [ "json" ] ~docv:"FILE"
           ~doc:"write a machine-readable run report (systems, sections, \
                 decision trace, runtime metrics) to $(docv)")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"write a Chrome trace_event-format JSONL trace of the mira \
                 optimization + run (network transfers, cache fetches, \
                 controller phases) to $(docv); see docs/OBSERVABILITY.md")

let flame_arg =
  Arg.(value & opt (some string) None
       & info [ "flame" ] ~docv:"FILE"
           ~doc:"write the mira run's stall-attribution ledger as folded \
                 flame stacks ($(i,fn;site;cause count_ns) per line, \
                 flamegraph.pl-compatible) to $(docv); see \
                 docs/OBSERVABILITY.md")

let cpath_arg =
  Arg.(value & opt (some string) None
       & info [ "critical-path" ] ~docv:"FILE"
           ~doc:"trace the mira run and write a critical-path report to \
                 $(docv): every tail-latency exemplar's span tree decomposed \
                 into queue/wire/retry/fill/recovery/local segments (exact \
                 fixed-point sums), as JSON plus a folded text companion \
                 $(docv).folded; see docs/OBSERVABILITY.md")

let cmd =
  let doc = "compare memory systems on a Mira workload" in
  Cmd.v (Cmd.info "mira_compare" ~doc)
    Term.(const compare_systems $ workload_arg $ ratio_arg $ iter_arg
          $ threads_arg $ tenants_arg $ requests_arg $ net_window_arg
          $ net_coalesce_arg $ nodes_arg $ ec_arg $ timeline_arg $ verbose_arg
          $ json_arg $ trace_arg $ flame_arg $ cpath_arg)

(* Exit 0 on success/help, 2 on any command-line error (Cmdliner has
   already printed the error and usage line to stderr), 125 on an
   internal error. *)
let () =
  match Cmd.eval_value cmd with
  | Ok (`Ok ()) | Ok `Help | Ok `Version -> exit 0
  | Error (`Parse | `Term) -> exit 2
  | Error `Exn -> exit 125
