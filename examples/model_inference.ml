(* Transformer inference with layer-by-layer weight lifetimes (the
   paper's GPT-2 study).  The point of this example is visibility: it
   prints the lifetime phases Mira's analysis derives for each layer's
   weights, and the eviction hints that release a layer's section space
   as soon as its computation finishes.

   Run with:  dune exec examples/model_inference.exe *)

module Gpt = Mira_workloads.Gpt2
module C = Mira.Controller
module Ir = Mira_mir.Ir
module Lifetime = Mira_analysis.Lifetime
module Pattern = Mira_analysis.Pattern
module Machine = Mira_interp.Machine

let () =
  let cfg = { Gpt.config_default with Gpt.layers = 4; d_model = 16; seq = 8 } in
  let prog = Gpt.build cfg in
  let far_bytes = Gpt.far_bytes cfg in
  Printf.printf
    "GPT-2-style model: %d layers, d=%d, seq=%d (%d KB of weights+KV)\n\n"
    cfg.Gpt.layers cfg.Gpt.d_model cfg.Gpt.seq (far_bytes / 1024);

  (* 1. what the lifetime analysis sees in the forward pass *)
  let work = Ir.find_func prog "work" in
  let result =
    Pattern.analyze prog work
      ~param_sites:
        (match
           List.assoc_opt "work"
             (Mira_analysis.Remotable_flow.param_sites_of_program prog)
         with
        | Some b -> b
        | None -> [])
      ~site_of_ty:(Mira_analysis.Remotable_flow.site_of_ty prog)
      ()
  in
  Printf.printf "the forward pass has %d phases (top-level loop nests)\n"
    (Lifetime.phases_count result);
  Printf.printf "weight lifetimes by allocation site:\n";
  List.iter
    (fun (site, iv) ->
      match Ir.find_site prog site with
      | info ->
        let name = info.Ir.si_name in
        if String.length name > 1 && name.[0] = 'w' then
          Printf.printf "  %-10s phases %d..%d\n" name iv.Lifetime.first_phase
            iv.Lifetime.last_phase
      | exception Not_found -> ())
    (Lifetime.site_phases result);

  (* 2. run it out of far memory, small local budget *)
  let far_capacity = 4 * far_bytes in
  let budget = max (12 * 4096) (far_bytes / 4) in
  let params =
    { Mira_sim.Params.default with Mira_sim.Params.native_op_ns = 0.05;
      native_mem_ns = 0.3 }
  in
  let measured = Mira_passes.Instrument.run_only prog ~names:[ "work" ] in
  let time name ms =
    let machine = Machine.create ~seed:3 ms measured in
    let _, ns = C.measure_work ms machine in
    Printf.printf "  %-9s %8.3f ms\n%!" name (ns /. 1e6);
    ns
  in
  Printf.printf "\nrunning at %d%% local memory:\n" (100 * budget / far_bytes);
  let native =
    time "native" (Mira_baselines.Native.create ~params ~capacity:far_capacity ())
  in
  ignore
    (time "fastswap"
       (Mira_baselines.Fastswap.create ~params ~local_budget:budget ~far_capacity ()));
  let opts =
    { (C.options_default ~local_budget:budget ~far_capacity) with
      C.params; max_iterations = 4 }
  in
  let compiled = C.optimize opts prog in
  let _, mira = C.run compiled in
  Printf.printf "  %-9s %8.3f ms  (%.2fx native)\n" "mira" (mira /. 1e6)
    (mira /. native)
