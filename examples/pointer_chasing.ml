(* Pointer-intensive far memory: the MCF vehicle-scheduling kernel.
   Shows the behaviour the paper reports in §6.1: at large local memory
   Mira keeps the generic swap section (its iterative controller rolls
   back section configs that do not pay off); at small local memory it
   switches the node array to a set-associative section with
   pointer-following prefetch — and AIFM's per-element metadata makes it
   fail outright.

   Run with:  dune exec examples/pointer_chasing.exe [ratio] *)

module M = Mira_workloads.Mcf
module C = Mira.Controller
module Machine = Mira_interp.Machine

let run_at ratio =
  let cfg = { M.config_default with M.num_nodes = 6_000; num_arcs = 40_000 } in
  let prog = M.build cfg in
  let far_bytes = M.far_bytes cfg in
  let far_capacity = 4 * far_bytes in
  let budget = int_of_float (float_of_int far_bytes *. ratio) in
  let measured = Mira_passes.Instrument.run_only prog ~names:[ "work" ] in
  let time name ms =
    let machine = Machine.create ~seed:5 ms measured in
    let _, ns = C.measure_work ms machine in
    Printf.printf "  %-9s %10.3f ms\n%!" name (ns /. 1e6);
    ns
  in
  Printf.printf "local memory = %.0f%% of the %d KB graph:\n" (ratio *. 100.0)
    (far_bytes / 1024);
  let native = time "native" (Mira_baselines.Native.create ~capacity:far_capacity ()) in
  ignore (time "fastswap" (Mira_baselines.Fastswap.create ~local_budget:budget ~far_capacity ()));
  ignore (time "leap" (Mira_baselines.Leap.create ~local_budget:budget ~far_capacity ()));
  (try
     ignore
       (time "aifm"
          (Mira_baselines.Aifm.create ~gran:(M.aifm_gran prog) ~local_budget:budget
             ~far_capacity ()))
   with Mira_baselines.Aifm.Oom _ ->
     Printf.printf "  %-9s fails: remoteable-pointer metadata exceeds local memory\n"
       "aifm");
  let opts =
    { (C.options_default ~local_budget:budget ~far_capacity) with
      C.max_iterations = 4 }
  in
  let compiled = C.optimize opts prog in
  let _, mira = C.run compiled in
  Printf.printf "  %-9s %10.3f ms  (%.1fx native; %s)\n\n" "mira" (mira /. 1e6)
    (mira /. native)
    (if compiled.C.c_assignments = [] then
       "kept the generic swap section"
     else
       Printf.sprintf "%d custom section(s)" (List.length compiled.C.c_assignments))

let () =
  match Sys.argv with
  | [| _ |] ->
    run_at 0.7;
    run_at 0.12
  | [| _; r |] -> run_at (float_of_string r)
  | _ -> prerr_endline "usage: pointer_chasing.exe [ratio]"
