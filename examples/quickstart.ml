(* Quickstart: write a program against the IR, run it out of far memory
   on a generic swap cache, then let Mira's iterative controller analyze
   and recompile it — and look at what changed.

   Run with:  dune exec examples/quickstart.exe *)

module B = Mira_mir.Builder
module T = Mira_mir.Types
module Ir = Mira_mir.Ir
module C = Mira.Controller
module Machine = Mira_interp.Machine

(* The paper's introduction example: for (i...) B[A[i]]++ — an indirect
   access pattern no history-based prefetcher can predict, but program
   analysis reads off directly. *)
let build ~n ~buckets =
  let b = B.program "histogram" in
  B.func b "init" [ ("a", T.Ptr T.I64); ("h", T.Ptr T.I64) ] T.Unit
    (fun fb args ->
      match args with
      | [ a; h ] ->
        B.for_ fb ~lo:(B.iconst 0) ~hi:(B.iconst n) (fun i ->
            let v = B.call fb "rand_int" [ B.iconst buckets ] in
            let p = B.gep fb ~base:a ~index:i ~elem:T.I64 () in
            B.store fb T.I64 ~ptr:p ~value:v);
        B.for_ fb ~lo:(B.iconst 0) ~hi:(B.iconst buckets) (fun i ->
            let p = B.gep fb ~base:h ~index:i ~elem:T.I64 () in
            B.store fb T.I64 ~ptr:p ~value:(B.iconst 0))
      | _ -> assert false);
  B.func b "work" [ ("a", T.Ptr T.I64); ("h", T.Ptr T.I64) ] T.Unit
    (fun fb args ->
      match args with
      | [ a; h ] ->
        B.for_ fb ~lo:(B.iconst 0) ~hi:(B.iconst n) (fun i ->
            let p = B.gep fb ~base:a ~index:i ~elem:T.I64 () in
            let v = B.load fb T.I64 p in
            let q = B.gep fb ~base:h ~index:v ~elem:T.I64 () in
            let c = B.load fb T.I64 q in
            B.store fb T.I64 ~ptr:q ~value:(B.bin fb Ir.Add c (B.iconst 1)))
      | _ -> assert false);
  B.func b "main" [] T.I64 (fun fb _ ->
      let a, _ = B.alloc fb ~name:"input" T.I64 (B.iconst n) in
      let h, _ = B.alloc fb ~name:"histogram" T.I64 (B.iconst buckets) in
      ignore (B.call fb "init" [ a; h ]);
      ignore (B.call fb "work" [ a; h ]);
      (* checksum: h[0] + h[buckets/2] *)
      let p0 = B.gep fb ~base:h ~index:(B.iconst 0) ~elem:T.I64 () in
      let v0 = B.load fb T.I64 p0 in
      let p1 = B.gep fb ~base:h ~index:(B.iconst (buckets / 2)) ~elem:T.I64 () in
      let v1 = B.load fb T.I64 p1 in
      B.ret fb (B.bin fb Ir.Add v0 v1));
  B.finish b ~entry:"main"

let () =
  let n = 60_000 and buckets = 20_000 in
  let prog = build ~n ~buckets in
  let far_bytes = 8 * (n + buckets) in
  let far_capacity = 4 * far_bytes in
  let budget = far_bytes / 5 in
  Printf.printf "histogram over %d far-memory elements, local memory = 20%%\n\n" n;

  (* 1. native (everything local) for reference *)
  let native = Mira_baselines.Native.create ~capacity:far_capacity () in
  let nm = Machine.create ~seed:42 native prog in
  let expected, native_ns = C.measure_work native nm in
  Printf.printf "native     : %8.3f ms  result=%s\n" (native_ns /. 1e6)
    (Format.asprintf "%a" Mira_interp.Value.pp expected);

  (* 2. generic swap (what you get with no program knowledge) *)
  let swap =
    Mira_runtime.Runtime.(
      memsys (create (Config.make ~local_budget:budget ~far_capacity)))
  in
  let sm = Machine.create ~seed:42 swap prog in
  let v1, swap_ns = C.measure_work swap sm in
  assert (Mira_interp.Value.equal v1 expected);
  Printf.printf "swap cache : %8.3f ms  (%.1fx native)\n" (swap_ns /. 1e6)
    (swap_ns /. native_ns);

  (* 3. Mira: profile, analyze, configure sections, recompile *)
  let opts =
    { (C.options_default ~local_budget:budget ~far_capacity) with
      C.max_iterations = 4 }
  in
  let compiled = C.optimize opts prog in
  let v2, mira_ns = C.run compiled in
  assert (Mira_interp.Value.equal v2 expected);
  Printf.printf "mira       : %8.3f ms  (%.1fx native, %.1fx over swap)\n\n"
    (mira_ns /. 1e6) (mira_ns /. native_ns) (swap_ns /. mira_ns);

  Printf.printf "what the controller decided:\n";
  List.iter (fun line -> Printf.printf "  %s\n" line) (C.log_strings compiled);

  Printf.printf "\nthe compiled work function (rmem dialect):\n\n%s\n"
    (Mira_mir.Printer.func_to_string (Ir.find_func compiled.C.c_program "work"))
