(* DataFrame analytics out of far memory: the workload the paper's
   evaluation runs (filter + group-by + aggregations over taxi trips),
   compared across FastSwap, AIFM, and Mira at scarce local memory.

   Run with:  dune exec examples/taxi_analytics.exe [local-memory-ratio] *)

module D = Mira_workloads.Dataframe
module C = Mira.Controller
module Machine = Mira_interp.Machine

let () =
  let ratio = try float_of_string Sys.argv.(1) with _ -> 0.15 in
  let cfg = { D.config_default with D.rows = 60_000; groups = 30_000 } in
  let prog = D.build cfg in
  let far_bytes = D.far_bytes cfg in
  let far_capacity = 4 * far_bytes in
  let budget = int_of_float (float_of_int far_bytes *. ratio) in
  Printf.printf
    "taxi trips: %d rows (%d KB of columns + group tables), local = %.0f%%\n\n"
    cfg.D.rows (far_bytes / 1024) (ratio *. 100.0);
  let measured = Mira_passes.Instrument.run_only prog ~names:[ "work" ] in
  let show name ms =
    let machine = Machine.create ~seed:7 ms measured in
    let v, ns = C.measure_work ms machine in
    Printf.printf "%-10s %10.3f ms   checksum=%s\n%!" name (ns /. 1e6)
      (Format.asprintf "%a" Mira_interp.Value.pp v);
    ns
  in
  let native = show "native" (Mira_baselines.Native.create ~capacity:far_capacity ()) in
  let fs =
    show "fastswap"
      (Mira_baselines.Fastswap.create ~local_budget:budget ~far_capacity ())
  in
  (try
     ignore
       (show "aifm"
          (Mira_baselines.Aifm.create ~gran:(D.aifm_gran prog) ~local_budget:budget
             ~far_capacity ()))
   with Mira_baselines.Aifm.Oom msg -> Printf.printf "aifm       %s\n" msg);
  let opts =
    { (C.options_default ~local_budget:budget ~far_capacity) with
      C.max_iterations = 5 }
  in
  let compiled = C.optimize opts prog in
  let _, mira = C.run compiled in
  Printf.printf "%-10s %10.3f ms   (%d profiling iterations)\n\n" "mira"
    (mira /. 1e6) compiled.C.c_iterations;
  Printf.printf "mira is %.1fx of native, %.1fx faster than fastswap\n"
    (mira /. native) (fs /. mira);
  Printf.printf "\ncontroller decisions:\n";
  List.iter
    (fun l -> if String.length l < 100 then Printf.printf "  %s\n" l)
    (C.log_strings compiled)
