type interval = { first_phase : int; last_phase : int }

let rec loop_sites (l : Pattern.loop_info) =
  List.map (fun (a : Pattern.access) -> a.Pattern.a_site) l.Pattern.l_accesses
  @ List.concat_map loop_sites l.Pattern.l_children

let sites_in_phase (r : Pattern.result) i =
  match List.nth_opt r.Pattern.r_loops i with
  | Some l -> List.sort_uniq compare (loop_sites l)
  | None -> []

let phases_count (r : Pattern.result) = max 1 (List.length r.Pattern.r_loops)

let site_phases (r : Pattern.result) =
  let n = List.length r.Pattern.r_loops in
  let table = Hashtbl.create 16 in
  List.iteri
    (fun phase l ->
      List.iter
        (fun site ->
          match Hashtbl.find_opt table site with
          | None -> Hashtbl.replace table site { first_phase = phase; last_phase = phase }
          | Some iv -> Hashtbl.replace table site { iv with last_phase = phase })
        (List.sort_uniq compare (loop_sites l)))
    r.Pattern.r_loops;
  (* Sites accessed but never inside a top-level loop span everything. *)
  List.iter
    (fun site ->
      if not (Hashtbl.mem table site) then
        Hashtbl.replace table site { first_phase = 0; last_phase = max 0 (n - 1) })
    r.Pattern.r_sites;
  Hashtbl.fold (fun site iv acc -> (site, iv) :: acc) table []
  |> List.sort compare

let dead_after r ~phase =
  site_phases r
  |> List.filter (fun (_, iv) -> iv.last_phase = phase)
  |> List.map fst
