(** Lifetime analysis (§4.2 "when to start and end a section").

    Program phases are a function's top-level loops in order (loop 0,
    loop 1, ...).  For each allocation site we compute the first and
    last phase that touches it; after the last phase the site's cached
    data is dead in this scope, so the compiler can insert an
    [EvictSite] hint and the sizing ILP can overlap sections whose
    phase intervals are disjoint (the GPT-2 layer-by-layer pattern). *)

type interval = { first_phase : int; last_phase : int }

val site_phases : Pattern.result -> (int * interval) list
(** Phase interval per site, from a function's pattern analysis.
    Sites touched outside any top-level loop get the full span. *)

val phases_count : Pattern.result -> int
(** Number of phases (top-level loops); at least 1. *)

val sites_in_phase : Pattern.result -> int -> int list
(** Sites touched (transitively) by top-level loop [i]. *)

val dead_after : Pattern.result -> phase:int -> int list
(** Sites whose last phase is [phase] — candidates for eviction hints
    placed right after that loop. *)
