module Ir = Mira_mir.Ir

type score = {
  o_name : string;
  o_compute_weight : float;
  o_far_accesses : float;
  o_sites : int list;
  o_benefit_ns : float;
}

(* Dynamic estimates: ops inside a loop are weighted by its constant trip
   count, or [default_trip] when unknown. *)
let rec weigh_block ~default_trip block =
  List.fold_left
    (fun (ops, accesses) op ->
      let o, a = weigh_op ~default_trip op in
      (ops +. o, accesses +. a))
    (0.0, 0.0) block

and weigh_op ~default_trip op =
  match op with
  | Ir.Load _ | Ir.Store _ -> (1.0, 1.0)
  | Ir.For { lo; hi; step; body; _ } | Ir.ParFor { lo; hi; step; body; _ } ->
    let trip =
      match (lo, hi, step) with
      | Ir.Oint l, Ir.Oint h, Ir.Oint s when Int64.compare s 0L > 0 ->
        Int64.to_float (Int64.div (Int64.sub h l) s)
      | _, _, _ -> float_of_int default_trip
    in
    let ops, accesses = weigh_block ~default_trip body in
    (trip *. (ops +. 1.0), trip *. accesses)
  | Ir.While { cond; body; _ } ->
    let o1, a1 = weigh_block ~default_trip cond in
    let o2, a2 = weigh_block ~default_trip body in
    let trip = float_of_int default_trip in
    (trip *. (o1 +. o2 +. 1.0), trip *. (a1 +. a2))
  | Ir.If { then_; else_; _ } ->
    let o1, a1 = weigh_block ~default_trip then_ in
    let o2, a2 = weigh_block ~default_trip else_ in
    (1.0 +. Float.max o1 o2, Float.max a1 a2)
  | Ir.Bin _ | Ir.Fbin _ | Ir.Cmp _ | Ir.Fcmp _ | Ir.Not _ | Ir.I2f _
  | Ir.F2i _ | Ir.Mov _ | Ir.Alloc _ | Ir.Free _ | Ir.Gep _ | Ir.Call _
  | Ir.Ret _ | Ir.Prefetch _ | Ir.FlushEvict _ | Ir.EvictSite _
  | Ir.ProfEnter _ | Ir.ProfExit _ ->
    (1.0, 0.0)

let analyze program ~params ?(default_trip = 64) ?(miss_rate = 0.5) () =
  let remotable = Remotable_flow.remotable_functions program in
  let sites_by_fn = Remotable_flow.function_sites program in
  List.filter_map
    (fun (name, f) ->
      if not (List.mem name remotable) then None
      else begin
        let compute, far = weigh_block ~default_trip f.Ir.f_body in
        let p = params in
        (* Not offloaded: each far access pays the expected miss cost. *)
        let miss_cost = p.Mira_sim.Params.one_sided_rtt_ns in
        let local_cost = far *. miss_rate *. miss_cost in
        (* Offloaded: compute slows down, far accesses are node-local,
           plus the fixed RPC + flush cost. *)
        let slowdown = p.Mira_sim.Params.remote_compute_slowdown -. 1.0 in
        let remote_cost =
          (compute *. p.Mira_sim.Params.native_op_ns *. slowdown)
          +. p.Mira_sim.Params.rpc_overhead_ns
          +. (2.0 *. p.Mira_sim.Params.two_sided_rtt_ns)
        in
        let benefit = local_cost -. remote_cost in
        Some
          {
            o_name = name;
            o_compute_weight = compute;
            o_far_accesses = far;
            o_sites =
              (match List.assoc_opt name sites_by_fn with
              | Some s -> s
              | None -> []);
            o_benefit_ns = benefit;
          }
      end)
    program.Ir.p_funcs

let should_offload s = s.o_benefit_ns > 0.0
