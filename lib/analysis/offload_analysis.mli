(** Function-offloading selection (§4.8).

    Scores each remotable function by its computation weight versus the
    network traffic its far-memory accesses would generate if executed
    on the compute node.  Offloading wins when the function is
    communication-bound: the far accesses it performs locally-at-the-
    far-node outweigh the slower far-node CPU plus the RPC overhead. *)

type score = {
  o_name : string;
  o_compute_weight : float;  (** dynamic-op estimate (trip-count weighted) *)
  o_far_accesses : float;  (** dynamic far-access estimate *)
  o_sites : int list;  (** sites touched (for the flush barrier) *)
  o_benefit_ns : float;  (** estimated saved ns per call; > 0 = offload *)
}

val analyze :
  Mira_mir.Ir.program ->
  params:Mira_sim.Params.t ->
  ?default_trip:int ->
  ?miss_rate:float ->
  unit ->
  score list
(** Scores for every remotable function.  [miss_rate] estimates the
    fraction of far accesses that would miss the local cache when NOT
    offloaded (default 0.5; profiling refines it in the controller). *)

val should_offload : score -> bool
