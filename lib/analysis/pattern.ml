module Ir = Mira_mir.Ir
module Types = Mira_mir.Types

type gep_shape =
  | Idx_iv
  | Idx_iv_plus of int64
  | Idx_affine of { c0 : int64; terms : (int * int64) list }
  | Idx_loaded of simple_gep
  | Idx_const of int64
  | Idx_other

and simple_gep = {
  g_base : Ir.operand;
  g_elem : Types.ty;
  g_field : int;
  g_site : int;
  g_index : gep_shape;
}

type access = {
  a_site : int;
  a_rw : [ `R | `W ];
  a_ty : Types.ty;
  a_elem : int;
  a_field : int;
  a_stride : int64 option;
  a_indirect_via : int option;
  a_pointer_chase : bool;
  a_gep : simple_gep option;
}

type loop_info = {
  l_iv : Ir.reg;
  l_depth : int;
  l_parallel : bool;
  l_lo : Ir.operand;
  l_hi : Ir.operand;
  l_trip : int option;
  l_body_ops : int;
  l_accesses : access list;
  l_children : loop_info list;
}

type kind =
  | Sequential of int
  | Strided of int
  | Indirect of int
  | Pointer_chase
  | Random

type site_summary = {
  ss_site : int;
  ss_kind : kind;
  ss_reads : int;
  ss_writes : int;
  ss_fields_read : int list;
  ss_fields_written : int list;
  ss_elem : int;
  ss_read_only : bool;
  ss_write_only : bool;
}

type result = {
  r_loops : loop_info list;
  r_summaries : site_summary list;
  r_sites : int list;
  r_unresolved : int;
}

(* --- walker environment -------------------------------------------------- *)

type ptr_info = {
  p_site : int;
  p_off : Scev.t;  (* byte offset within the object, if affine *)
  p_chased : bool;  (* the base pointer was loaded from memory *)
  p_indirect : int option;  (* index values loaded from this site *)
  p_elem : int;  (* element size of the producing gep (bytes) *)
  p_field : int;  (* field offset of the producing gep *)
  p_gep : simple_gep option;  (* reconstructible shape *)
}

type binding =
  | Bnone
  | Bsym of { sym : Scev.t; from_gep : simple_gep option }
  | Bptr of ptr_info

type ctx = {
  site_of_ty : Types.ty -> int option;
  elem_of_site : int -> int;
  env : binding array;
  mutable all_accesses : access list;
  mutable unresolved : int;
  mutable loop : (int * Scev.t) option;  (* innermost For: (depth, iv sym) *)
  mutable depth : int;  (* loop depth including While bodies *)
}

let operand_sym ctx = function
  | Ir.Oint i -> Scev.const i
  | Ir.Obool b -> Scev.const (if b then 1L else 0L)
  | Ir.Ofloat _ | Ir.Ounit -> Scev.Unknown
  | Ir.Oreg r ->
    (match ctx.env.(r) with
    | Bsym { sym; _ } -> sym
    | Bptr _ | Bnone -> Scev.Unknown)

let operand_binding ctx = function
  | Ir.Oreg r -> ctx.env.(r)
  | (Ir.Oint _ | Ir.Ofloat _ | Ir.Obool _ | Ir.Ounit) as o ->
    Bsym { sym = operand_sym ctx o; from_gep = None }

let index_shape ctx index =
  let sym = operand_sym ctx index in
  match Scev.const_value sym with
  | Some c -> Idx_const c
  | None ->
    (match ctx.loop with
    | None ->
      (match operand_binding ctx index with
      | Bsym { from_gep = Some g; _ } -> Idx_loaded g
      | Bsym _ | Bptr _ | Bnone -> Idx_other)
    | Some (_, iv_sym) ->
      if Scev.equal sym iv_sym then Idx_iv
      else begin
        match Scev.const_value (Scev.sub sym iv_sym) with
        | Some c -> Idx_iv_plus c
        | None ->
          (match operand_binding ctx index with
          | Bsym { from_gep = Some g; _ } -> Idx_loaded g
          | Bsym _ | Bptr _ | Bnone ->
            (match sym with
            | Scev.Affine { c0; terms } when terms <> [] -> Idx_affine { c0; terms }
            | Scev.Affine _ | Scev.Loaded _ | Scev.Unknown -> Idx_other))
      end)

let access_of ctx ~rw ~ty (p : ptr_info) =
  let stride =
    match ctx.loop with
    | Some (depth, _) -> Scev.innermost_stride p.p_off ~depth
    | None -> None
  in
  {
    a_site = p.p_site;
    a_rw = rw;
    a_ty = ty;
    a_elem = p.p_elem;
    a_field = p.p_field;
    a_stride = stride;
    a_indirect_via = p.p_indirect;
    a_pointer_chase = p.p_chased;
    a_gep = p.p_gep;
  }

(* --- the walk ------------------------------------------------------------ *)

(* Returns the accesses recorded in the direct body (not nested loops)
   and the loop subtree found in the block. *)
let rec walk_block ctx block : access list * loop_info list =
  List.fold_left
    (fun (accs, loops) op ->
      let a, l = walk_op ctx op in
      (accs @ a, loops @ l))
    ([], []) block

and walk_op ctx op : access list * loop_info list =
  match op with
  | Ir.Bin (r, o, a, b) ->
    let sa = operand_sym ctx a and sb = operand_sym ctx b in
    let sym =
      match o with
      | Ir.Add -> Scev.add sa sb
      | Ir.Sub -> Scev.sub sa sb
      | Ir.Mul -> Scev.mul sa sb
      | Ir.Div | Ir.Rem | Ir.Land | Ir.Lor | Ir.Lxor | Ir.Shl | Ir.Shr ->
        Scev.Unknown
    in
    (* Preserve indirection provenance through simple arithmetic: if one
       operand was loaded from a site and the other is constant, the
       result still indexes "via" that site. *)
    let from_gep =
      match (operand_binding ctx a, operand_binding ctx b) with
      | Bsym { from_gep = Some g; _ }, Bsym { sym = s; _ }
        when Scev.const_value s <> None ->
        Some g
      | Bsym { sym = s; _ }, Bsym { from_gep = Some g; _ }
        when Scev.const_value s <> None ->
        Some g
      | _, _ -> None
    in
    set ctx r (Bsym { sym; from_gep });
    ([], [])
  | Ir.Fbin (r, _, _, _) | Ir.Fcmp (r, _, _, _) | Ir.I2f (r, _) ->
    set_sym ctx r Scev.Unknown;
    ([], [])
  | Ir.Cmp (r, _, _, _) | Ir.Not (r, _) | Ir.F2i (r, _) ->
    set_sym ctx r Scev.Unknown;
    ([], [])
  | Ir.Mov (r, a) ->
    set ctx r (operand_binding ctx a);
    ([], [])
  | Ir.Alloc { dst; site; elem; _ } ->
    set ctx dst
      (Bptr
         {
           p_site = site;
           p_off = Scev.const 0L;
           p_chased = false;
           p_indirect = None;
           p_elem = Types.size_of elem;
           p_field = 0;
           p_gep = None;
         });
    ([], [])
  | Ir.Free _ -> ([], [])
  | Ir.Gep { dst; base; index; elem; field_off } ->
    (match operand_binding ctx base with
    | Bptr p ->
      let elem_bytes = Types.size_of elem in
      let shape = index_shape ctx index in
      let idx_sym = operand_sym ctx index in
      let off, indirect =
        match shape with
        | Idx_loaded g -> (Scev.Unknown, Some g.g_site)
        | Idx_iv | Idx_iv_plus _ | Idx_affine _ | Idx_const _ | Idx_other ->
          ( Scev.add p.p_off
              (Scev.add
                 (Scev.mul idx_sym (Scev.const (Int64.of_int elem_bytes)))
                 (Scev.const (Int64.of_int field_off))),
            p.p_indirect )
      in
      let gep =
        Some
          { g_base = base; g_elem = elem; g_field = field_off;
            g_site = p.p_site; g_index = shape }
      in
      set ctx dst
        (Bptr
           {
             p_site = p.p_site;
             p_off = off;
             p_chased = p.p_chased;
             p_indirect = indirect;
             p_elem = elem_bytes;
             p_field = field_off;
             p_gep = gep;
           })
    | Bsym _ | Bnone -> set ctx dst Bnone);
    ([], [])
  | Ir.Load { dst; ty; ptr; _ } ->
    (match operand_binding ctx ptr with
    | Bptr p when p.p_site >= 0 ->
      let acc = access_of ctx ~rw:`R ~ty p in
      ctx.all_accesses <- acc :: ctx.all_accesses;
      (match ty with
      | Types.Ptr pointee ->
        (* Loaded a pointer: type-based aliasing gives the target site. *)
        let target_site =
          match ctx.site_of_ty pointee with Some s -> s | None -> -1
        in
        set ctx dst
          (Bptr
             {
               p_site = target_site;
               p_off = Scev.Unknown;
               p_chased = true;
               p_indirect = None;
               p_elem = Types.size_of pointee;
               p_field = 0;
               p_gep = None;
             })
      | Types.Unit | Types.Bool | Types.I64 | Types.F64 | Types.Struct _ ->
        set ctx dst (Bsym { sym = Scev.Loaded p.p_site; from_gep = p.p_gep }));
      ([ acc ], [])
    | Bptr _ | Bsym _ | Bnone ->
      ctx.unresolved <- ctx.unresolved + 1;
      set_sym ctx dst Scev.Unknown;
      ([], []))
  | Ir.Store { ty; ptr; _ } ->
    (match operand_binding ctx ptr with
    | Bptr p when p.p_site >= 0 ->
      let acc = access_of ctx ~rw:`W ~ty p in
      ctx.all_accesses <- acc :: ctx.all_accesses;
      ([ acc ], [])
    | Bptr _ | Bsym _ | Bnone ->
      ctx.unresolved <- ctx.unresolved + 1;
      ([], []))
  | Ir.Call { dst; callee; args = _ } ->
    (* Intra-procedural: the callee's effects are summarized separately;
       a returned pointer gets a type-based site if resolvable. *)
    ignore callee;
    set_sym ctx dst Scev.Unknown;
    ([], [])
  | Ir.For { iv; lo; hi; step; body } ->
    ([], [ walk_loop ctx ~iv ~lo ~hi ~step ~body ~parallel:false ])
  | Ir.ParFor { iv; lo; hi; step; body } ->
    ([], [ walk_loop ctx ~iv ~lo ~hi ~step ~body ~parallel:true ])
  | Ir.While { cond; cond_val = _; body } ->
    let saved_loop = ctx.loop in
    let saved_depth = ctx.depth in
    ctx.loop <- None;
    ctx.depth <- ctx.depth + 1;
    let a1, l1 = walk_block ctx cond in
    let a2, l2 = walk_block ctx body in
    ctx.loop <- saved_loop;
    ctx.depth <- saved_depth;
    (a1 @ a2, l1 @ l2)
  | Ir.If { cond = _; then_; else_ } ->
    let a1, l1 = walk_block ctx then_ in
    let a2, l2 = walk_block ctx else_ in
    (a1 @ a2, l1 @ l2)
  | Ir.Ret _ | Ir.Prefetch _ | Ir.FlushEvict _ | Ir.EvictSite _
  | Ir.ProfEnter _ | Ir.ProfExit _ ->
    ([], [])

and walk_loop ctx ~iv ~lo ~hi ~step ~body ~parallel =
  let saved_loop = ctx.loop in
  let saved_depth = ctx.depth in
  let depth = ctx.depth in
  let lo_sym = operand_sym ctx lo in
  let step_sym = operand_sym ctx step in
  let iv_sym = Scev.iv ~depth ~lo:lo_sym ~step:step_sym in
  set_sym ctx iv iv_sym;
  ctx.loop <- Some (depth, iv_sym);
  ctx.depth <- depth + 1;
  let accesses, children = walk_block ctx body in
  ctx.loop <- saved_loop;
  ctx.depth <- saved_depth;
  let trip =
    match
      ( Scev.const_value lo_sym,
        Scev.const_value (operand_sym ctx hi),
        Scev.const_value step_sym )
    with
    | Some l, Some h, Some s when Int64.compare s 0L > 0 ->
      Some
        (Int64.to_int
           (Int64.div (Int64.sub h l) s)
        + (if Int64.rem (Int64.sub h l) s <> 0L then 1 else 0))
    | _, _, _ -> None
  in
  {
    l_iv = iv;
    l_depth = depth;
    l_parallel = parallel;
    l_lo = lo;
    l_hi = hi;
    l_trip = trip;
    l_body_ops = Ir.op_count body;
    l_accesses = accesses;
    l_children = children;
  }

and set ctx r b = ctx.env.(r) <- b
and set_sym ctx r sym = ctx.env.(r) <- Bsym { sym; from_gep = None }

(* --- summaries ----------------------------------------------------------- *)

let summarize accesses =
  let sites = Hashtbl.create 16 in
  List.iter
    (fun a ->
      let existing = try Hashtbl.find sites a.a_site with Not_found -> [] in
      Hashtbl.replace sites a.a_site (a :: existing))
    accesses;
  Hashtbl.fold
    (fun site accs acc ->
      let reads = List.filter (fun a -> a.a_rw = `R) accs in
      let writes = List.filter (fun a -> a.a_rw = `W) accs in
      let fields rw_list =
        List.map (fun a -> a.a_field) rw_list |> List.sort_uniq compare
      in
      let elem =
        List.fold_left (fun m a -> max m a.a_elem) 8 accs
      in
      let kind =
        if List.exists (fun a -> a.a_pointer_chase) accs then Pointer_chase
        else begin
          match List.find_opt (fun a -> a.a_indirect_via <> None) accs with
          | Some a ->
            (match a.a_indirect_via with Some v -> Indirect v | None -> Random)
          | None ->
            let strides =
              List.filter_map (fun a -> a.a_stride) accs
              |> List.map Int64.to_int |> List.sort_uniq compare
              |> List.filter (fun s -> s <> 0)
            in
            (match strides with
            | [] -> Random
            | [ s ] when s > 0 && s <= 2 * elem -> Sequential s
            | [ s ] -> Strided s
            | many ->
              if List.for_all (fun s -> s > 0 && s <= 2 * elem) many then
                Sequential (List.fold_left max 0 many)
              else if List.exists (fun a -> a.a_stride = None) accs then Random
              else Strided (List.fold_left max 0 many))
        end
      in
      {
        ss_site = site;
        ss_kind = kind;
        ss_reads = List.length reads;
        ss_writes = List.length writes;
        ss_fields_read = fields reads;
        ss_fields_written = fields writes;
        ss_elem = elem;
        ss_read_only = writes = [] && reads <> [];
        ss_write_only = reads = [] && writes <> [];
      }
      :: acc)
    sites []
  |> List.sort (fun a b -> compare a.ss_site b.ss_site)

let analyze program func ?(param_sites = []) ~site_of_ty () =
  let elem_of_site site =
    match Ir.find_site program site with
    | info -> Types.size_of info.Ir.si_elem
    | exception Not_found -> 8
  in
  let ctx =
    {
      site_of_ty;
      elem_of_site;
      env = Array.make (max 1 func.Ir.f_nregs) Bnone;
      all_accesses = [];
      unresolved = 0;
      loop = None;
      depth = 0;
    }
  in
  List.iter
    (fun (r, ty) ->
      match ty with
      | Types.Ptr pointee ->
        let site =
          match List.assoc_opt r param_sites with
          | Some s -> s
          | None -> (match site_of_ty pointee with Some s -> s | None -> -1)
        in
        (* Treat the parameter as the object base: absolute offsets may
           be wrong for interior pointers, but stride classification
           only needs offsets relative to the pointer, which are exact. *)
        ctx.env.(r) <-
          Bptr
            {
              p_site = site;
              p_off = Scev.const 0L;
              p_chased = false;
              p_indirect = None;
              p_elem = Types.size_of pointee;
              p_field = 0;
              p_gep = None;
            }
      | Types.Unit | Types.Bool | Types.I64 | Types.F64 | Types.Struct _ ->
        ctx.env.(r) <- Bsym { sym = Scev.Unknown; from_gep = None })
    func.Ir.f_params;
  let _, loops = walk_block ctx func.Ir.f_body in
  let accesses = List.rev ctx.all_accesses in
  let summaries = summarize accesses in
  {
    r_loops = loops;
    r_summaries = summaries;
    r_sites = List.map (fun s -> s.ss_site) summaries;
    r_unresolved = ctx.unresolved;
  }

let summary_for result site =
  List.find_opt (fun s -> s.ss_site = site) result.r_summaries

let kind_to_string = function
  | Sequential s -> Printf.sprintf "sequential(%dB)" s
  | Strided s -> Printf.sprintf "strided(%dB)" s
  | Indirect v -> Printf.sprintf "indirect(via site %d)" v
  | Pointer_chase -> "pointer-chase"
  | Random -> "random"
