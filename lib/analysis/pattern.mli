(** Memory-access pattern analysis (§4.2, §5.2.2).

    Walks a function's structured body with a scalar-evolution
    environment and produces:

    - a {b loop tree} ([loop_info]) with every memory access in each
      loop body, its per-iteration stride, its indirection source
      (for [B[A[i]]] patterns) and a reconstructible [simple_gep] shape
      the prefetching pass uses to materialize future addresses;
    - per-site {b summaries} ([site_summary]) classifying each
      allocation site's access pattern (sequential / strided / indirect
      / pointer-chase / random), read/write mix, and touched fields
      (feeding line size, structure, communication-side and selective
      transmission decisions). *)

type gep_shape =
  | Idx_iv  (** index = the innermost loop's induction variable *)
  | Idx_iv_plus of int64  (** index = iv + constant *)
  | Idx_affine of { c0 : int64; terms : (int * int64) list }
      (** index = c0 + sum of coeff_d * iv_d over loop depths
          (flattened multi-dimensional indexing, e.g. [a[i*k + kk]]) *)
  | Idx_loaded of simple_gep  (** index loaded through this gep *)
  | Idx_const of int64
  | Idx_other

and simple_gep = {
  g_base : Mira_mir.Ir.operand;
  g_elem : Mira_mir.Types.ty;
  g_field : int;
  g_site : int;  (** -1 when unknown *)
  g_index : gep_shape;
}

type access = {
  a_site : int;
  a_rw : [ `R | `W ];
  a_ty : Mira_mir.Types.ty;
  a_elem : int;  (** gep element size in bytes *)
  a_field : int;  (** field offset within the element *)
  a_stride : int64 option;  (** bytes advanced per innermost iteration *)
  a_indirect_via : int option;  (** site whose loaded values form the index *)
  a_pointer_chase : bool;  (** base pointer was itself loaded from memory *)
  a_gep : simple_gep option;
}

type loop_info = {
  l_iv : Mira_mir.Ir.reg;
  l_depth : int;
  l_parallel : bool;
  l_lo : Mira_mir.Ir.operand;
  l_hi : Mira_mir.Ir.operand;
  l_trip : int option;  (** constant trip count if known *)
  l_body_ops : int;
  l_accesses : access list;  (** direct body (incl. ifs, excl. nested loops) *)
  l_children : loop_info list;
}

type kind =
  | Sequential of int  (** stride in bytes *)
  | Strided of int
  | Indirect of int  (** indexed by values loaded from this site *)
  | Pointer_chase
  | Random

type site_summary = {
  ss_site : int;
  ss_kind : kind;
  ss_reads : int;  (** static access count *)
  ss_writes : int;
  ss_fields_read : int list;
  ss_fields_written : int list;
  ss_elem : int;  (** element size in bytes *)
  ss_read_only : bool;
  ss_write_only : bool;
}

type result = {
  r_loops : loop_info list;
  r_summaries : site_summary list;
  r_sites : int list;  (** every site accessed in the function *)
  r_unresolved : int;  (** accesses whose base object could not be
                           resolved (the analysis stays sound by
                           leaving them on the default path) *)
}

val analyze :
  Mira_mir.Ir.program ->
  Mira_mir.Ir.func ->
  ?param_sites:(Mira_mir.Ir.reg * int) list ->
  site_of_ty:(Mira_mir.Types.ty -> int option) ->
  unit ->
  result

val summary_for : result -> int -> site_summary option
val kind_to_string : kind -> string
