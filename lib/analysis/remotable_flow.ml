module Ir = Mira_mir.Ir
module Types = Mira_mir.Types

(* Heap sites only: stack allocations are never remote targets.  Sites
   are "heap" if any Alloc op with that site uses the Heap space; we
   conservatively scan the whole program once. *)
let heap_sites program =
  let heap = Hashtbl.create 16 in
  List.iter
    (fun (_, f) ->
      Ir.iter_ops
        (fun op ->
          match op with
          | Ir.Alloc { site; space = Ir.Heap; _ } -> Hashtbl.replace heap site ()
          | Ir.Alloc _ | Ir.Bin _ | Ir.Fbin _ | Ir.Cmp _ | Ir.Fcmp _ | Ir.Not _
          | Ir.I2f _ | Ir.F2i _ | Ir.Mov _ | Ir.Free _ | Ir.Gep _ | Ir.Load _
          | Ir.Store _ | Ir.Call _ | Ir.For _ | Ir.ParFor _ | Ir.While _
          | Ir.If _ | Ir.Ret _ | Ir.Prefetch _ | Ir.FlushEvict _
          | Ir.EvictSite _ | Ir.ProfEnter _ | Ir.ProfExit _ ->
            ())
        f.Ir.f_body)
    program.Ir.p_funcs;
  heap

let site_of_ty program ty =
  let heap = heap_sites program in
  let matches =
    List.filter
      (fun s -> Hashtbl.mem heap s.Ir.si_id && Types.equal s.Ir.si_elem ty)
      program.Ir.p_sites
  in
  match matches with [ s ] -> Some s.Ir.si_id | [] | _ :: _ :: _ -> None

(* Lightweight per-function register -> site resolution used to read
   call-site argument sites (pre-order walk; sound because the IR is
   statically single-assignment). *)
let reg_sites ~param_sites ~resolver (f : Ir.func) =
  let sites = Array.make (max 1 f.Ir.f_nregs) (-1) in
  let of_operand = function
    | Ir.Oreg r -> sites.(r)
    | Ir.Oint _ | Ir.Ofloat _ | Ir.Obool _ | Ir.Ounit -> -1
  in
  List.iter
    (fun (r, ty) ->
      match List.assoc_opt r param_sites with
      | Some s -> sites.(r) <- s
      | None ->
        (match ty with
        | Types.Ptr pointee ->
          sites.(r) <- (match resolver pointee with Some s -> s | None -> -1)
        | Types.Unit | Types.Bool | Types.I64 | Types.F64 | Types.Struct _ -> ()))
    f.Ir.f_params;
  Ir.iter_ops
    (fun op ->
      match op with
      | Ir.Alloc { dst; site; _ } -> sites.(dst) <- site
      | Ir.Gep { dst; base; _ } -> sites.(dst) <- of_operand base
      | Ir.Mov (dst, src) -> sites.(dst) <- of_operand src
      | Ir.Load { dst; ty = Types.Ptr pointee; _ } ->
        sites.(dst) <- (match resolver pointee with Some s -> s | None -> -1)
      | Ir.Load _ | Ir.Store _ | Ir.Bin _ | Ir.Fbin _ | Ir.Cmp _ | Ir.Fcmp _
      | Ir.Not _ | Ir.I2f _ | Ir.F2i _ | Ir.Free _ | Ir.Call _ | Ir.For _
      | Ir.ParFor _ | Ir.While _ | Ir.If _ | Ir.Ret _ | Ir.Prefetch _
      | Ir.FlushEvict _ | Ir.EvictSite _ | Ir.ProfEnter _ | Ir.ProfExit _ -> ())
    f.Ir.f_body;
  (sites, of_operand)

(* Interprocedural parameter-site bindings: a callee parameter is bound
   to a site when every call site passes a pointer into that site;
   conflicting call sites make it unknown. *)
let param_sites_of_program program =
  let resolver = site_of_ty program in
  let bindings : (string, (Ir.reg * int) list) Hashtbl.t = Hashtbl.create 16 in
  let get name = try Hashtbl.find bindings name with Not_found -> [] in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 4 do
    changed := false;
    incr rounds;
    List.iter
      (fun (caller_name, caller) ->
        let _, of_operand =
          reg_sites ~param_sites:(get caller_name) ~resolver caller
        in
        Ir.iter_ops
          (fun op ->
            match op with
            | Ir.Call { callee; args; _ } ->
              (match List.assoc_opt callee program.Ir.p_funcs with
              | None -> ()
              | Some cf ->
                List.iteri
                  (fun i arg ->
                    match List.nth_opt cf.Ir.f_params i with
                    | Some (preg, Types.Ptr _) ->
                      let s = of_operand arg in
                      let current = get callee in
                      let updated =
                        match List.assoc_opt preg current with
                        | None when s >= 0 -> Some ((preg, s) :: current)
                        | Some old when old <> s && old >= 0 ->
                          (* Conflicting callers: mark ambiguous. *)
                          Some ((preg, -1) :: List.remove_assoc preg current)
                        | None | Some _ -> None
                      in
                      (match updated with
                      | Some b ->
                        Hashtbl.replace bindings callee b;
                        changed := true
                      | None -> ())
                    | Some _ | None -> ())
                  args)
            | Ir.Bin _ | Ir.Fbin _ | Ir.Cmp _ | Ir.Fcmp _ | Ir.Not _ | Ir.I2f _
            | Ir.F2i _ | Ir.Mov _ | Ir.Alloc _ | Ir.Free _ | Ir.Gep _
            | Ir.Load _ | Ir.Store _ | Ir.For _ | Ir.ParFor _ | Ir.While _
            | Ir.If _ | Ir.Ret _ | Ir.Prefetch _ | Ir.FlushEvict _
            | Ir.EvictSite _ | Ir.ProfEnter _ | Ir.ProfExit _ ->
              ())
          caller.Ir.f_body)
      program.Ir.p_funcs
  done;
  List.map (fun (name, _) -> (name, get name)) program.Ir.p_funcs

let analyze_all program =
  let resolver = site_of_ty program in
  let bindings = param_sites_of_program program in
  List.map
    (fun (name, f) ->
      let param_sites =
        match List.assoc_opt name bindings with Some b -> b | None -> []
      in
      (name, Pattern.analyze program f ~param_sites ~site_of_ty:resolver ()))
    program.Ir.p_funcs

let callees f =
  Ir.fold_ops
    (fun acc op ->
      match op with
      | Ir.Call { callee; _ } -> callee :: acc
      | Ir.Bin _ | Ir.Fbin _ | Ir.Cmp _ | Ir.Fcmp _ | Ir.Not _ | Ir.I2f _
      | Ir.F2i _ | Ir.Mov _ | Ir.Alloc _ | Ir.Free _ | Ir.Gep _ | Ir.Load _
      | Ir.Store _ | Ir.For _ | Ir.ParFor _ | Ir.While _ | Ir.If _ | Ir.Ret _
      | Ir.Prefetch _ | Ir.FlushEvict _ | Ir.EvictSite _ | Ir.ProfEnter _
      | Ir.ProfExit _ ->
        acc)
    [] f.Ir.f_body
  |> List.sort_uniq compare

let function_sites program =
  let results = analyze_all program in
  let direct =
    List.map
      (fun (name, (r : Pattern.result)) -> (name, r.Pattern.r_sites))
      results
  in
  (* Close over calls to a fixpoint (call graphs here are small DAGs). *)
  let table = Hashtbl.create 16 in
  List.iter (fun (name, sites) -> Hashtbl.replace table name sites) direct;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (name, f) ->
        let current = try Hashtbl.find table name with Not_found -> [] in
        let from_callees =
          List.concat_map
            (fun callee -> try Hashtbl.find table callee with Not_found -> [])
            (callees f)
        in
        let merged = List.sort_uniq compare (current @ from_callees) in
        if merged <> current then begin
          Hashtbl.replace table name merged;
          changed := true
        end)
      program.Ir.p_funcs
  done;
  List.map
    (fun (name, _) -> (name, try Hashtbl.find table name with Not_found -> []))
    program.Ir.p_funcs

let remotable_functions program =
  let results = analyze_all program in
  let resolved name =
    match List.assoc_opt name results with
    | Some r -> r.Pattern.r_unresolved = 0
    | None -> false
  in
  (* Fixpoint: start with everything locally-clean, remove functions
     calling non-remotable ones. *)
  let remotable = Hashtbl.create 16 in
  List.iter
    (fun (name, f) ->
      (* The entry function stays on the compute node by definition. *)
      if resolved name && not (String.equal name program.Ir.p_entry) then
        Hashtbl.replace remotable name f)
    program.Ir.p_funcs;
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun name f ->
        let bad =
          List.exists
            (fun callee ->
              (not (Hashtbl.mem remotable callee))
              && not (List.mem callee Mira_mir.Verifier.intrinsics))
            (callees f)
        in
        if bad then begin
          Hashtbl.remove remotable name;
          changed := true
        end)
      (Hashtbl.copy remotable)
  done;
  Hashtbl.fold (fun name _ acc -> name :: acc) remotable []
  |> List.sort compare
