(** Remotable-object dataflow (§5.2.1).

    Type-based alias analysis: each allocation site declares an element
    type, so a pointer whose pointee type is allocated at exactly one
    site must point into that site's objects (the paper combines
    SSA-based forward dataflow with type-based aliasing; our structured
    IR keeps the SSA part inside [Pattern]).

    Also computes which functions are {e remotable} — they touch only
    resolvable far objects, their own stack data, and call only other
    remotable functions or intrinsics — and which sites each function
    accesses (transitively), which offloading needs for its
    flush/invalidate barriers. *)

val site_of_ty : Mira_mir.Ir.program -> Mira_mir.Types.ty -> int option
(** The unique heap allocation site with this element type, if any. *)

val function_sites : Mira_mir.Ir.program -> (string * int list) list
(** Per function: all allocation sites accessed, including through
    direct calls (one level of transitive closure to a fixpoint). *)

val remotable_functions : Mira_mir.Ir.program -> string list
(** Functions eligible for far-memory offloading. *)

val param_sites_of_program :
  Mira_mir.Ir.program -> (string * (Mira_mir.Ir.reg * int) list) list
(** Interprocedural parameter-site bindings: parameter registers bound
    to the allocation site every call site passes (conflicts -> -1). *)

val analyze_all :
  Mira_mir.Ir.program -> (string * Pattern.result) list
(** [Pattern.analyze] for every function, with the program's
    type-based site resolver and call-graph parameter bindings. *)
