type t =
  | Affine of { c0 : int64; terms : (int * int64) list }
  | Loaded of int
  | Unknown

let const c = Affine { c0 = c; terms = [] }

let normalize terms =
  terms
  |> List.filter (fun (_, c) -> c <> 0L)
  |> List.sort (fun (d1, _) (d2, _) -> compare d1 d2)

let merge_terms f a b =
  let rec go a b =
    match (a, b) with
    | [], rest -> List.map (fun (d, c) -> (d, f 0L c)) rest
    | rest, [] -> rest
    | (da, ca) :: ra, (db, cb) :: rb ->
      if da = db then (da, f ca cb) :: go ra rb
      else if da < db then (da, ca) :: go ra ((db, cb) :: rb)
      else (db, f 0L cb) :: go ((da, ca) :: ra) rb
  in
  normalize (go a b)

let add a b =
  match (a, b) with
  | Affine x, Affine y ->
    Affine { c0 = Int64.add x.c0 y.c0; terms = merge_terms Int64.add x.terms y.terms }
  | (Loaded _ | Unknown | Affine _), _ -> Unknown

let neg = function
  | Affine { c0; terms } ->
    Affine { c0 = Int64.neg c0; terms = List.map (fun (d, c) -> (d, Int64.neg c)) terms }
  | Loaded _ | Unknown -> Unknown

let sub a b = add a (neg b)

let scale k = function
  | Affine { c0; terms } ->
    Affine
      { c0 = Int64.mul k c0;
        terms = normalize (List.map (fun (d, c) -> (d, Int64.mul k c)) terms) }
  | Loaded _ | Unknown -> Unknown

let const_value = function
  | Affine { c0; terms = [] } -> Some c0
  | Affine _ | Loaded _ | Unknown -> None

let mul a b =
  match (const_value a, const_value b) with
  | Some ka, _ -> scale ka b
  | _, Some kb -> scale kb a
  | None, None -> Unknown

let iv ~depth ~lo ~step =
  let step_c = match const_value step with Some s -> s | None -> 1L in
  let base = match const_value lo with Some c -> c | None -> 0L in
  Affine { c0 = base; terms = [ (depth, step_c) ] }

let coeff t ~depth =
  match t with
  | Affine { terms; _ } ->
    Some (match List.assoc_opt depth terms with Some c -> c | None -> 0L)
  | Loaded _ | Unknown -> None

let innermost_stride = coeff

let depends_on t ~depth =
  match t with
  | Affine { terms; _ } -> List.mem_assoc depth terms
  | Loaded _ -> false
  | Unknown -> true

let pp ppf = function
  | Affine { c0; terms } ->
    Format.fprintf ppf "%Ld" c0;
    List.iter (fun (d, c) -> Format.fprintf ppf " + %Ld*iv%d" c d) terms
  | Loaded site -> Format.fprintf ppf "loaded(site %d)" site
  | Unknown -> Format.pp_print_string ppf "?"

let equal a b =
  match (a, b) with
  | Affine x, Affine y -> x.c0 = y.c0 && x.terms = y.terms
  | Loaded x, Loaded y -> x = y
  | Unknown, Unknown -> true
  | (Affine _ | Loaded _ | Unknown), _ -> false
