(** Scalar evolution: symbolic values as affine functions of the
    enclosing loop induction variables (§5.2.2).

    A symbolic value is either an affine form [c0 + Σ coeff_d * iv_d]
    over loop depths [d], a value loaded from a known allocation site
    (the signature of an indirect access like [B[A[i]]]), or unknown.
    Loop depths are 0-based from the outermost analyzed loop. *)

type t =
  | Affine of { c0 : int64; terms : (int * int64) list }
      (** [terms] maps loop depth -> coefficient; sorted by depth,
          coefficients non-zero. *)
  | Loaded of int  (** value loaded from this allocation site *)
  | Unknown

val const : int64 -> t
val iv : depth:int -> lo:t -> step:t -> t
(** The symbolic value of an induction variable given symbolic bounds:
    [lo + step*k] becomes [Affine] when [lo]/[step] are constants. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
(** Product; affine only when one side is a constant. *)

val neg : t -> t

val const_value : t -> int64 option
(** [Some c] iff the value is the constant [c]. *)

val coeff : t -> depth:int -> int64 option
(** Coefficient of [iv_depth]; [Some 0] for affine forms that do not
    mention it, [None] for non-affine values. *)

val innermost_stride : t -> depth:int -> int64 option
(** Alias of [coeff] with the intent "bytes advanced per iteration of
    the loop at [depth]". *)

val depends_on : t -> depth:int -> bool
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
