module Sim = Mira_sim
module Rt = Mira_runtime

exception Oom of string

type entry = {
  e_key : int;  (* granule index = addr / gran, with gran per site *)
  e_site : int;
  e_bytes : int;
  e_data : Bytes.t;
  mutable e_dirty : bool;
  mutable e_ref : bool;
}

type t = {
  params : Sim.Params.t;
  net : Sim.Net.t;
  far : Sim.Far_store.t;
  far_space : Sim.Remote_alloc.t;
  local_store : Sim.Far_store.t;
  local_space : Sim.Remote_alloc.t;
  clocks : (int, Sim.Clock.t) Hashtbl.t;
  gran : int -> int;
  site_gran : (int, int) Hashtbl.t;  (* remembered per site *)
  cache : (int * int, entry) Hashtbl.t;  (* (site, granule) -> entry *)
  fifo : (int * int) Queue.t;  (* second-chance eviction order *)
  ranges : (int, int * int * int) Hashtbl.t;
      (* user addr -> (alloc base, alloc len, user len), both spaces *)
  mutable used_bytes : int;
  mutable meta_bytes : int;
  budget : int;
  profile : Rt.Profile.t;
}

let clock t tid =
  match Hashtbl.find_opt t.clocks tid with
  | Some c -> c
  | None ->
    let c = Sim.Clock.create () in
    Hashtbl.replace t.clocks tid c;
    c

let granule t site =
  match Hashtbl.find_opt t.site_gran site with
  | Some g -> g
  | None ->
    let g = max 8 (Mira_util.Misc.round_up (t.gran site) 8) in
    Hashtbl.replace t.site_gran site g;
    g

let available t = t.budget - t.meta_bytes

let writeback t ~clock:c entry =
  if entry.e_dirty then begin
    let base = entry.e_key * entry.e_bytes in
    Sim.Far_store.write t.far ~addr:base ~len:entry.e_bytes ~src:entry.e_data
      ~src_off:0;
    (* Fire-and-forget writeback: detached, so no completion to reap. *)
    let sqe =
      Sim.Net.submit t.net ~now:(Sim.Clock.now c) ~detached:true
        (Sim.Net.Request.write ~side:Sim.Net.Two_sided
           ~purpose:Sim.Net.Writeback entry.e_bytes)
    in
    Sim.Clock.advance c sqe.Sim.Net.issue_cpu_ns;
    entry.e_dirty <- false
  end

let evict_until t ~clock:c need =
  (* Second-chance FIFO over cached granules. *)
  let guard = ref (2 * (Queue.length t.fifo + 1)) in
  while t.used_bytes + need > available t && not (Queue.is_empty t.fifo) && !guard > 0 do
    decr guard;
    let key = Queue.pop t.fifo in
    match Hashtbl.find_opt t.cache key with
    | None -> ()
    | Some entry ->
      if entry.e_ref then begin
        entry.e_ref <- false;
        Queue.push key t.fifo
      end
      else begin
        writeback t ~clock:c entry;
        Hashtbl.remove t.cache key;
        t.used_bytes <- t.used_bytes - entry.e_bytes
      end
  done;
  if t.used_bytes + need > available t then
    raise
      (Oom
         (Printf.sprintf
            "AIFM: granule of %d B cannot fit (metadata %d B of %d B budget)"
            need t.meta_bytes t.budget))

let ensure t ~tid ~site ~addr =
  let c = clock t tid in
  let g = granule t site in
  let key = (site, addr / g) in
  match Hashtbl.find_opt t.cache key with
  | Some entry ->
    entry.e_ref <- true;
    entry
  | None ->
    evict_until t ~clock:c g;
    let now = Sim.Clock.now c in
    let sqe =
      Sim.Net.submit t.net ~now ~urgent:true
        (Sim.Net.Request.read ~side:Sim.Net.Two_sided ~purpose:Sim.Net.Demand g)
    in
    Sim.Clock.advance c sqe.Sim.Net.issue_cpu_ns;
    let comp = Sim.Net.await t.net ~now ~id:sqe.Sim.Net.id in
    ignore (Sim.Clock.wait_until c comp.Sim.Net.done_at);
    let data = Bytes.make g '\000' in
    Sim.Far_store.read t.far ~addr:(addr / g * g) ~len:g ~dst:data ~dst_off:0;
    let entry =
      { e_key = addr / g; e_site = site; e_bytes = g; e_data = data;
        e_dirty = false; e_ref = true }
    in
    Hashtbl.replace t.cache key entry;
    Queue.push key t.fifo;
    t.used_bytes <- t.used_bytes + g;
    entry

let create ?(params = Sim.Params.default) ?gran ~local_budget ~far_capacity () =
  let t =
    {
      params;
      net = Sim.Net.create params;
      far = Sim.Far_store.create ~capacity:far_capacity;
      far_space = Sim.Remote_alloc.create ~base:64 ~limit:far_capacity;
      local_store = Sim.Far_store.create ~capacity:far_capacity;
      local_space = Sim.Remote_alloc.create ~base:64 ~limit:far_capacity;
      clocks = Hashtbl.create 8;
      gran = (match gran with Some f -> f | None -> fun _ -> 8);
      site_gran = Hashtbl.create 16;
      cache = Hashtbl.create 1024;
      fifo = Queue.create ();
      ranges = Hashtbl.create 64;
      used_bytes = 0;
      meta_bytes = 0;
      budget = local_budget;
      profile = Rt.Profile.create ();
    }
  in
  let deref ~tid =
    let c = clock t tid in
    Sim.Clock.advance c
      (t.params.Sim.Params.aifm_deref_ns +. t.params.Sim.Params.native_mem_ns)
  in
  let load ~tid ~(ptr : Rt.Memsys.ptr) ~len ~native:_ =
    match ptr.Rt.Memsys.space with
    | Rt.Memsys.Local ->
      Sim.Clock.advance (clock t tid) t.params.Sim.Params.native_mem_ns;
      Sim.Far_store.read_le t.local_store ~addr:ptr.Rt.Memsys.addr ~len
    | Rt.Memsys.Far ->
      deref ~tid;
      let entry = ensure t ~tid ~site:ptr.Rt.Memsys.site ~addr:ptr.Rt.Memsys.addr in
      let off = ptr.Rt.Memsys.addr mod entry.e_bytes in
      Mira_util.Bytes_le.get entry.e_data ~off ~len
  in
  let store ~tid ~(ptr : Rt.Memsys.ptr) ~len ~native:_ ~value =
    match ptr.Rt.Memsys.space with
    | Rt.Memsys.Local ->
      Sim.Clock.advance (clock t tid) t.params.Sim.Params.native_mem_ns;
      Sim.Far_store.write_le t.local_store ~addr:ptr.Rt.Memsys.addr ~len value
    | Rt.Memsys.Far ->
      deref ~tid;
      let entry = ensure t ~tid ~site:ptr.Rt.Memsys.site ~addr:ptr.Rt.Memsys.addr in
      let off = ptr.Rt.Memsys.addr mod entry.e_bytes in
      Mira_util.Bytes_le.set entry.e_data ~off ~len value;
      entry.e_dirty <- true
  in
  {
    Rt.Memsys.name = "aifm";
    alloc =
      (fun ~tid ~site ~bytes ~heap ->
        let c = clock t tid in
        Sim.Clock.advance c t.params.Sim.Params.native_op_ns;
        if heap then begin
          let g = granule t site in
          let rounded = Mira_util.Misc.round_up bytes g in
          (* Over-allocate so the user range can start on a granule
             boundary (granule keys are global far addresses / g). *)
          let alloc_len = rounded + g in
          let base = Sim.Remote_alloc.alloc t.far_space alloc_len in
          let addr = Mira_util.Misc.round_up base g in
          Hashtbl.replace t.ranges addr (base, alloc_len, rounded);
          let granules = rounded / g in
          t.meta_bytes <-
            t.meta_bytes
            + (granules * t.params.Sim.Params.aifm_elem_meta_bytes)
            + t.params.Sim.Params.aifm_obj_meta_bytes;
          if t.meta_bytes >= t.budget then
            raise
              (Oom
                 (Printf.sprintf
                    "AIFM: remoteable-pointer metadata (%d B) exceeds local \
                     memory (%d B)"
                    t.meta_bytes t.budget));
          Rt.Profile.add_alloc t.profile ~site ~bytes;
          { Rt.Memsys.space = Rt.Memsys.Far; addr; site }
        end
        else begin
          let addr = Sim.Remote_alloc.alloc t.local_space bytes in
          Hashtbl.replace t.ranges addr (addr, bytes, bytes);
          { Rt.Memsys.space = Rt.Memsys.Local; addr; site }
        end);
    free =
      (fun ~tid ~ptr ->
        Sim.Clock.advance (clock t tid) t.params.Sim.Params.native_op_ns;
        match Hashtbl.find_opt t.ranges ptr.Rt.Memsys.addr with
        | None -> ()
        | Some (base, alloc_len, len) ->
          Hashtbl.remove t.ranges ptr.Rt.Memsys.addr;
          (match ptr.Rt.Memsys.space with
          | Rt.Memsys.Far ->
            let g = granule t ptr.Rt.Memsys.site in
            let granules = len / g in
            t.meta_bytes <-
              t.meta_bytes
              - (granules * t.params.Sim.Params.aifm_elem_meta_bytes)
              - t.params.Sim.Params.aifm_obj_meta_bytes;
            (* Drop cached granules of the object. *)
            for k = ptr.Rt.Memsys.addr / g to (ptr.Rt.Memsys.addr + len - 1) / g do
              match Hashtbl.find_opt t.cache (ptr.Rt.Memsys.site, k) with
              | None -> ()
              | Some entry ->
                Hashtbl.remove t.cache (ptr.Rt.Memsys.site, k);
                t.used_bytes <- t.used_bytes - entry.e_bytes
            done;
            Sim.Remote_alloc.free t.far_space ~addr:base ~len:alloc_len
          | Rt.Memsys.Local ->
            Sim.Remote_alloc.free t.local_space ~addr:base ~len:alloc_len));
    load;
    store;
    prefetch = (fun ~tid:_ ~ptr:_ ~len:_ -> ());
    flush_evict = (fun ~tid:_ ~ptr:_ ~len:_ -> ());
    evict_site = (fun ~tid:_ ~site:_ -> ());
    flush_sites = (fun ~tid:_ ~sites:_ -> ());
    discard_sites = (fun ~tid:_ ~sites:_ -> ());
    clock = (fun ~tid -> clock t tid);
    op_cost = (fun ~tid ns -> Sim.Clock.advance (clock t tid) ns);
    enter =
      (fun ~tid name ->
        Rt.Profile.enter t.profile ~tid ~now:(Sim.Clock.now (clock t tid)) name);
    exit_ =
      (fun ~tid name ->
        Rt.Profile.exit_ t.profile ~tid ~now:(Sim.Clock.now (clock t tid)) name);
    offload_begin = (fun ~tid:_ -> ());
    offload_end = (fun ~tid:_ -> ());
    set_nthreads = (fun _ -> ());
    profile = t.profile;
    net = t.net;
    attribution = Mira_telemetry.Attribution.create ();
    metadata_bytes = (fun () -> t.meta_bytes);
    reset_timing =
      (fun () ->
        Hashtbl.iter (fun _ c -> Sim.Clock.reset c) t.clocks;
        Sim.Net.reset_stats t.net;
        Sim.Net.reset_link t.net;
        Rt.Profile.reset t.profile);
    elapsed =
      (fun () ->
        Hashtbl.fold (fun _ c acc -> Float.max acc (Sim.Clock.now c)) t.clocks 0.0);
  }
