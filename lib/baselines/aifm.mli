(** AIFM baseline (Ruan et al., OSDI'20): application-integrated far
    memory via a library of remoteable pointers.

    The model captures the three properties the paper's comparisons
    rest on:

    - {b per-dereference runtime cost}: every access to a remoteable
      object goes through a smart-pointer dereference (hot-path check,
      scope bookkeeping), charged at [aifm_deref_ns] even on hits;
    - {b always-resident metadata}: each remoteable granule carries
      metadata that lives in local memory whether or not the data is
      cached, shrinking the usable cache ([aifm_elem_meta_bytes] per
      granule + [aifm_obj_meta_bytes] per object) — with fine-grained
      granules (MCF's array library) this makes AIFM fail outright when
      local memory is scarce, as in the paper's Figure 18;
    - {b object-granularity transfer} over two-sided communication: no
      page-amplification, but also no program-guided prefetching.

    The granularity of each allocation site defaults to its element
    size (AIFM's array library); workloads with chunked AIFM libraries
    (DataFrame vectors) override it via [gran]. *)

exception Oom of string
(** Raised when remoteable-pointer metadata alone exceeds local memory
    (AIFM "fails to execute", §6.1). *)

val create :
  ?params:Mira_sim.Params.t ->
  ?gran:(int -> int) ->
  local_budget:int -> far_capacity:int -> unit -> Mira_runtime.Memsys.t
(** [gran site] is the caching granule in bytes for [site]'s objects;
    allocations are rounded up to it. *)
