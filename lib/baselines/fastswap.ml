module Sim = Mira_sim
module Rt = Mira_runtime
module Cache = Mira_cache

let readahead_pages = 8

let create ?(params = Sim.Params.default) ~local_budget ~far_capacity () =
  let cfg =
    Rt.Runtime.Config.(
      make ~local_budget ~far_capacity |> with_params params)
  in
  let rt = Rt.Runtime.create cfg in
  let swap = Cache.Manager.swap (Rt.Runtime.manager rt) in
  (* Linux cluster readahead: pull in the rest of the 8-page cluster. *)
  Cache.Swap_section.set_readahead swap (fun pno ->
      List.init (readahead_pages - 1) (fun i -> pno + i + 1));
  let ms = Rt.Runtime.memsys rt in
  {
    ms with
    Rt.Memsys.name = "fastswap";
    set_nthreads =
      (fun n ->
        ms.Rt.Memsys.set_nthreads n;
        let extra = params.Sim.Params.swap_lock_ns *. float_of_int (max 0 (n - 1)) in
        Cache.Swap_section.set_extra_fault_ns swap extra);
  }
