(** FastSwap baseline (Amaro et al., EuroSys'20).

    An optimized kernel swap system for far memory: everything is paged
    through the 4 KB swap cache, with Linux-style cluster readahead
    (fetch the next pages of the faulting cluster) and a global LRU.
    Page-table/swap-lock serialization across threads is modelled with
    an extra per-fault cost proportional to the thread count, which is
    the scalability bottleneck the paper's Figures 24/25 exercise. *)

val readahead_pages : int
(** Cluster readahead width (Linux default: 8). *)

val create :
  ?params:Mira_sim.Params.t -> local_budget:int -> far_capacity:int -> unit ->
  Mira_runtime.Memsys.t
