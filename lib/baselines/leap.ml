module Sim = Mira_sim
module Rt = Mira_runtime
module Cache = Mira_cache

let window_size = 32
let max_prefetch = 8
let extra_fault_cost_ns = 800.0

type trend_state = {
  mutable history : int list;  (* recent fault pages, newest first *)
  mutable depth : int;  (* current adaptive prefetch depth *)
}

(* Boyer-Moore majority vote over successive deltas of the window. *)
let majority_delta history =
  let rec deltas acc = function
    | a :: (b :: _ as rest) -> deltas ((a - b) :: acc) rest
    | _ -> acc
  in
  let ds = deltas [] history in
  match ds with
  | [] -> None
  | _ ->
    let candidate, _ =
      List.fold_left
        (fun (cand, count) d ->
          if count = 0 then (d, 1)
          else if d = cand then (cand, count + 1)
          else (cand, count - 1))
        (0, 0) ds
    in
    let votes = List.length (List.filter (fun d -> d = candidate) ds) in
    if candidate <> 0 && 2 * votes > List.length ds then Some candidate else None

let create ?(params = Sim.Params.default) ~local_budget ~far_capacity () =
  let cfg =
    Rt.Runtime.Config.(
      make ~local_budget ~far_capacity |> with_params params)
  in
  let rt = Rt.Runtime.create cfg in
  let swap = Cache.Manager.swap (Rt.Runtime.manager rt) in
  Cache.Swap_section.set_extra_fault_ns swap extra_fault_cost_ns;
  let state = { history = []; depth = 1 } in
  Cache.Swap_section.set_readahead swap (fun pno ->
      state.history <- pno :: state.history;
      (match List.filteri (fun i _ -> i < window_size) state.history with
      | trimmed -> state.history <- trimmed);
      match majority_delta state.history with
      | None ->
        (* No trend: shrink the window like Leap's controller. *)
        state.depth <- max 1 (state.depth / 2);
        []
      | Some delta ->
        (* A fault despite an active trend means the previous prefetch
           was insufficient or wrong; grow cautiously. *)
        state.depth <- min max_prefetch (state.depth * 2);
        List.init state.depth (fun i -> pno + (delta * (i + 1))));
  let ms = Rt.Runtime.memsys rt in
  {
    ms with
    Rt.Memsys.name = "leap";
    set_nthreads =
      (fun n ->
        ms.Rt.Memsys.set_nthreads n;
        let extra =
          extra_fault_cost_ns
          +. (params.Sim.Params.swap_lock_ns *. float_of_int (max 0 (n - 1)))
        in
        Cache.Swap_section.set_extra_fault_ns swap extra);
  }
