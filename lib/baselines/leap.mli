(** Leap baseline (Al Maruf & Chowdhury, ATC'20).

    Linux swap plus majority-trend prefetching: a sliding window of
    recent fault page numbers votes (Boyer-Moore majority) on the
    dominant stride; when a trend exists, Leap prefetches along it with
    an adaptive window that grows on useful prefetches and shrinks on
    useless ones.  Like the paper's Leap, it captures one global trend
    and therefore mispredicts interleaved per-object patterns.

    Leap's data path is slightly slower than FastSwap's (the paper
    observes FastSwap's more efficient Linux implementation); this is
    modelled by a small extra per-fault cost. *)

val window_size : int
(** Fault-history window (default 32). *)

val max_prefetch : int
(** Maximum prefetch depth (default 8). *)

val extra_fault_cost_ns : float
(** Data-path penalty vs FastSwap per fault. *)

val majority_delta : int list -> int option
(** Boyer-Moore majority vote over the successive deltas of a fault
    history (newest first); [None] when no stride wins a majority.
    Exposed for testing. *)

val create :
  ?params:Mira_sim.Params.t -> local_budget:int -> far_capacity:int -> unit ->
  Mira_runtime.Memsys.t
