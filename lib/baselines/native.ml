module Sim = Mira_sim
module Rt = Mira_runtime

type t = {
  params : Sim.Params.t;
  net : Sim.Net.t;
  store : Sim.Far_store.t;
  space : Sim.Remote_alloc.t;
  clocks : (int, Sim.Clock.t) Hashtbl.t;
  ranges : (int, int) Hashtbl.t;  (* addr -> len, for free *)
  profile : Rt.Profile.t;
}

let clock t tid =
  match Hashtbl.find_opt t.clocks tid with
  | Some c -> c
  | None ->
    let c = Sim.Clock.create () in
    Hashtbl.replace t.clocks tid c;
    c

let create ?(params = Sim.Params.default) ~capacity () =
  let t =
    {
      params;
      net = Sim.Net.create params;
      store = Sim.Far_store.create ~capacity;
      space = Sim.Remote_alloc.create ~base:64 ~limit:capacity;
      clocks = Hashtbl.create 8;
      ranges = Hashtbl.create 64;
      profile = Rt.Profile.create ();
    }
  in
  let mem ~tid = clock t tid in
  let native ~tid = Sim.Clock.advance (mem ~tid) t.params.Sim.Params.native_mem_ns in
  {
    Rt.Memsys.name = "native";
    alloc =
      (fun ~tid ~site ~bytes ~heap:_ ->
        Sim.Clock.advance (mem ~tid) t.params.Sim.Params.native_op_ns;
        let addr = Sim.Remote_alloc.alloc t.space bytes in
        Hashtbl.replace t.ranges addr bytes;
        Rt.Profile.add_alloc t.profile ~site ~bytes;
        { Rt.Memsys.space = Rt.Memsys.Local; addr; site });
    free =
      (fun ~tid ~ptr ->
        Sim.Clock.advance (mem ~tid) t.params.Sim.Params.native_op_ns;
        match Hashtbl.find_opt t.ranges ptr.Rt.Memsys.addr with
        | None -> ()
        | Some len ->
          Hashtbl.remove t.ranges ptr.Rt.Memsys.addr;
          Sim.Remote_alloc.free t.space ~addr:ptr.Rt.Memsys.addr ~len);
    load =
      (fun ~tid ~ptr ~len ~native:_ ->
        native ~tid;
        Sim.Far_store.read_le t.store ~addr:ptr.Rt.Memsys.addr ~len);
    store =
      (fun ~tid ~ptr ~len ~native:_ ~value ->
        native ~tid;
        Sim.Far_store.write_le t.store ~addr:ptr.Rt.Memsys.addr ~len value);
    prefetch = (fun ~tid:_ ~ptr:_ ~len:_ -> ());
    flush_evict = (fun ~tid:_ ~ptr:_ ~len:_ -> ());
    evict_site = (fun ~tid:_ ~site:_ -> ());
    flush_sites = (fun ~tid:_ ~sites:_ -> ());
    discard_sites = (fun ~tid:_ ~sites:_ -> ());
    clock = (fun ~tid -> mem ~tid);
    op_cost = (fun ~tid ns -> Sim.Clock.advance (mem ~tid) ns);
    enter =
      (fun ~tid name ->
        Rt.Profile.enter t.profile ~tid ~now:(Sim.Clock.now (mem ~tid)) name);
    exit_ =
      (fun ~tid name ->
        Rt.Profile.exit_ t.profile ~tid ~now:(Sim.Clock.now (mem ~tid)) name);
    offload_begin = (fun ~tid:_ -> ());
    offload_end = (fun ~tid:_ -> ());
    set_nthreads = (fun _ -> ());
    profile = t.profile;
    net = t.net;
    attribution = Mira_telemetry.Attribution.create ();
    metadata_bytes = (fun () -> 0);
    reset_timing =
      (fun () ->
        Hashtbl.iter (fun _ c -> Sim.Clock.reset c) t.clocks;
        Sim.Net.reset_stats t.net;
        Sim.Net.reset_link t.net;
        Rt.Profile.reset t.profile);
    elapsed =
      (fun () -> Hashtbl.fold (fun _ c acc -> Float.max acc (Sim.Clock.now c)) t.clocks 0.0);
  }
