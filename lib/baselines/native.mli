(** Native baseline: the whole workload fits in local memory.

    Every figure in the paper normalizes to this configuration ("full
    local memory, no far memory").  All allocations are local and all
    accesses cost a native memory access. *)

val create :
  ?params:Mira_sim.Params.t -> capacity:int -> unit -> Mira_runtime.Memsys.t
(** [capacity] bounds the local address space. *)
