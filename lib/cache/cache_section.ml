(** The shared contract of a local cache over far memory.

    Both cache flavours — the compiler-configured [Section] and the
    page-granularity [Swap_section] — implement [OPS]: lookup
    (load/store), insertion via prefetch, writeback/flush, discard,
    teardown, and telemetry publication.  [Manager] and [Runtime]
    dispatch through a packed [handle], so nothing above the cache
    layer special-cases the swap section any more: "no section assigned"
    simply routes to the swap handle. *)

module type OPS = sig
  type t

  val kind : string
  (** ["section"] or ["swap"]; used for diagnostics. *)

  val load : t -> clock:Mira_sim.Clock.t -> addr:int -> len:int -> int64
  val store : t -> clock:Mira_sim.Clock.t -> addr:int -> len:int -> int64 -> unit

  val load_native : t -> clock:Mira_sim.Clock.t -> addr:int -> len:int -> int64
  (** Compiler-proved-resident access; implementations without a native
      fast path fall back to [load]. *)

  val store_native :
    t -> clock:Mira_sim.Clock.t -> addr:int -> len:int -> int64 -> unit

  val prefetch_range : t -> clock:Mira_sim.Clock.t -> addr:int -> len:int -> unit
  (** Asynchronously insert all lines/pages covering the range. *)

  val evict_hint : t -> clock:Mira_sim.Clock.t -> addr:int -> len:int -> unit
  (** Write back covered dirty data asynchronously and mark it a
      preferred eviction victim. *)

  val flush_range : t -> clock:Mira_sim.Clock.t -> addr:int -> len:int -> unit
  (** Synchronous writeback (without eviction) of covered dirty data. *)

  val discard_range : t -> addr:int -> len:int -> unit
  (** Drop covered data {e without} writing it back. *)

  val flush_all : t -> clock:Mira_sim.Clock.t -> unit
  (** Asynchronously re-issue writebacks for {e all} still-dirty data,
      without evicting anything.  The failover recovery path: after the
      primary far node crashes, every dirty line must reach the new
      primary again. *)

  val drop_all : t -> clock:Mira_sim.Clock.t -> unit
  (** End of lifetime: write back dirty data and empty the cache. *)

  val publish : t -> Mira_telemetry.Metrics.t -> unit
  val reset_stats : t -> unit
  val metadata_bytes : t -> int

  val counters : t -> int * int
  (** (hits, misses-or-faults) snapshot for profiler attribution. *)
end

type handle = Handle : (module OPS with type t = 'a) * 'a -> handle

(* Dispatch helpers so call sites read like method calls. *)

let kind (Handle ((module M), _)) = M.kind
let load (Handle ((module M), s)) ~clock ~addr ~len = M.load s ~clock ~addr ~len

let store (Handle ((module M), s)) ~clock ~addr ~len v =
  M.store s ~clock ~addr ~len v

let load_native (Handle ((module M), s)) ~clock ~addr ~len =
  M.load_native s ~clock ~addr ~len

let store_native (Handle ((module M), s)) ~clock ~addr ~len v =
  M.store_native s ~clock ~addr ~len v

let prefetch_range (Handle ((module M), s)) ~clock ~addr ~len =
  M.prefetch_range s ~clock ~addr ~len

let evict_hint (Handle ((module M), s)) ~clock ~addr ~len =
  M.evict_hint s ~clock ~addr ~len

let flush_range (Handle ((module M), s)) ~clock ~addr ~len =
  M.flush_range s ~clock ~addr ~len

let discard_range (Handle ((module M), s)) ~addr ~len =
  M.discard_range s ~addr ~len

let flush_all (Handle ((module M), s)) ~clock = M.flush_all s ~clock
let drop_all (Handle ((module M), s)) ~clock = M.drop_all s ~clock
let publish (Handle ((module M), s)) reg = M.publish s reg
let reset_stats (Handle ((module M), s)) = M.reset_stats s
let metadata_bytes (Handle ((module M), s)) = M.metadata_bytes s
let counters (Handle ((module M), s)) = M.counters s
