type t = {
  net : Mira_sim.Net.t;
  cluster : Mira_sim.Cluster.t;
  budget : int;
  page : int;
  swap : Swap_section.t;
  swap_h : Cache_section.handle;
  sections : (int, Section.t) Hashtbl.t;
  site_to_section : (int, int) Hashtbl.t;
  mutable section_bytes : int;
  mutable attribution : Mira_telemetry.Attribution.t option;
  mutable recovering : bool;
      (* Reconfiguration guard: [add_section]/[end_section] must not
         interleave with failover recovery (a crash mid-[end_section]
         would race the rebudget against recovery writebacks). *)
}

let create net cluster ~budget ~page ~side =
  assert (budget >= page);
  let swap =
    Swap_section.create net cluster { Swap_section.page; capacity = budget; side }
  in
  {
    net;
    cluster;
    budget;
    page;
    swap;
    swap_h = Swap_section.handle swap;
    sections = Hashtbl.create 16;
    site_to_section = Hashtbl.create 16;
    section_bytes = 0;
    attribution = None;
    recovering = false;
  }

let budget t = t.budget
let swap t = t.swap
let swap_handle t = t.swap_h
let net t = t.net
let cluster t = t.cluster
let far t = Mira_sim.Cluster.primary t.cluster

let swap_capacity t = max t.page (t.budget - t.section_bytes)

let set_attribution t a =
  t.attribution <- Some a;
  Swap_section.set_attribution t.swap a;
  Hashtbl.iter (fun _ s -> Section.set_attribution s a) t.sections

let charge t cause ns =
  match t.attribution with
  | None -> ()
  | Some a -> Mira_telemetry.Attribution.charge a cause ns

let sections t =
  Hashtbl.fold (fun _ s acc -> s :: acc) t.sections []
  |> List.sort (fun a b ->
         compare (Section.config a).Section.sec_id (Section.config b).Section.sec_id)

let handles t = List.map Section.handle (sections t) @ [ t.swap_h ]

(* Process any cluster crash/recovery events due by now.  Called at
   every reconfiguration point (and by the runtime's access path), so
   incidents are handled before the cache or budget state changes —
   reconfiguration is effectively paused during recovery. *)
let check_cluster t ~clock =
  let now = Mira_sim.Clock.now clock in
  if Mira_sim.Cluster.next_event_at t.cluster <= now && not t.recovering then begin
    t.recovering <- true;
    let incidents = Mira_sim.Cluster.poll t.cluster ~now in
    List.iter
      (fun incident ->
        match incident with
        | Mira_sim.Cluster.Failover { failed; epoch; down; _ } ->
          (* Requests in flight to the dead node fail now (epoch fence);
             still-dirty lines are re-issued — reads of the dead node's
             chunks will reconstruct from survivors — and the writeback
             fence is waited out; recovery time is simulated time,
             charged to the run.  Traffic aimed at the dead node while
             it is down stalls on its per-node outage window. *)
          let start = Mira_sim.Clock.now clock in
          ignore (Mira_sim.Net.fail_inflight t.net ~now:start);
          let until =
            Mira_sim.Cluster.node_down_until t.cluster ~node:failed
          in
          if until > start then
            Mira_sim.Net.set_node_down t.net ~node:failed ~until;
          List.iter (fun h -> Cache_section.flush_all h ~clock) (handles t);
          let done_at =
            Mira_sim.Net.fence ~dir:Mira_sim.Net.Request.Write t.net
              ~now:(Mira_sim.Clock.now clock)
          in
          let stall =
            Mira_sim.Clock.wait_event clock ~ev:Mira_sim.Clock.Fence done_at
          in
          charge t Mira_telemetry.Attribution.Failover_recovery stall;
          let recovery_ns = Mira_sim.Clock.now clock -. start in
          Mira_sim.Cluster.observe_recovery t.cluster recovery_ns;
          (if Mira_telemetry.Trace.enabled () then begin
             (* Recovery runs inside the access that tripped the epoch
                check, so the span nests under the ambient deref when
                there is one; otherwise it roots its own trace. *)
             let module Tr = Mira_telemetry.Trace in
             let trace, parent =
               match Tr.current_ctx () with
               | Some c -> (c.Tr.sc_trace, c.Tr.sc_span)
               | None -> (Tr.new_trace (), 0)
             in
             let span = Tr.new_span () in
             Tr.begin_span ~name:"failover" ~cat:"cluster" ~lane:"cluster"
               ~ts_ns:start ~trace ~span ~parent
               ~args:
                 [
                   ("failed_node", Mira_telemetry.Json.Int failed);
                   ("serving_node",
                    Mira_telemetry.Json.Int
                      (Mira_sim.Cluster.serving_node t.cluster));
                   ("epoch", Mira_telemetry.Json.Int epoch);
                   ("down", Mira_telemetry.Json.Int down);
                 ]
               ();
             Tr.end_span ~name:"failover" ~cat:"cluster" ~lane:"cluster"
               ~ts_ns:(start +. recovery_ns) ~trace ~span ()
           end)
        | Mira_sim.Cluster.Data_lost { node; lost_bytes; epoch; down; _ } ->
          (* Past quorum: in-flight requests fail, and until enough
             nodes return every post completes [Node_down] after the
             detection timer.  The run continues degraded; the runtime
             drains [take_lost_extents] for per-object accounting. *)
          ignore (Mira_sim.Net.fail_inflight t.net ~now:(Mira_sim.Clock.now clock));
          let until = Mira_sim.Cluster.down_until t.cluster in
          if until > now then Mira_sim.Net.set_down t.net ~until;
          if Mira_telemetry.Trace.enabled () then
            Mira_telemetry.Trace.instant ~name:"degraded" ~cat:"cluster"
              ~lane:"cluster"
              ~ts_ns:(Mira_sim.Clock.now clock)
              ~args:
                [
                  ("node", Mira_telemetry.Json.Int node);
                  ("lost_bytes", Mira_telemetry.Json.Int lost_bytes);
                  ("epoch", Mira_telemetry.Json.Int epoch);
                  ("down", Mira_telemetry.Json.Int down);
                ]
              ()
        | Mira_sim.Cluster.Recovered { node; resync_bytes; whole; _ } ->
          (* Rebuild traffic rides the data plane asynchronously: the
             returning node is repopulated by decoding survivors
             without stalling the application. *)
          if resync_bytes > 0 then begin
            let req =
              Mira_sim.Net.Request.write ~node ~side:Mira_sim.Net.One_sided
                ~purpose:Mira_sim.Net.Writeback resync_bytes
            in
            let sqe =
              Mira_sim.Net.submit t.net ~now:(Mira_sim.Clock.now clock)
                ~detached:true req
            in
            Mira_sim.Clock.advance clock sqe.Mira_sim.Net.issue_cpu_ns
          end;
          if Mira_telemetry.Trace.enabled () then
            Mira_telemetry.Trace.instant ~name:"node-recovered" ~cat:"cluster"
              ~lane:"cluster"
              ~ts_ns:(Mira_sim.Clock.now clock)
              ~args:
                [
                  ("node", Mira_telemetry.Json.Int node);
                  ("resync_bytes", Mira_telemetry.Json.Int resync_bytes);
                  ("whole", Mira_telemetry.Json.Bool whole);
                ]
              ())
      incidents;
    t.recovering <- false
  end

let add_section t ~clock (cfg : Section.config) =
  check_cluster t ~clock;
  if Hashtbl.mem t.sections cfg.Section.sec_id then
    Error (Printf.sprintf "section %d already exists" cfg.Section.sec_id)
  else if t.section_bytes + cfg.Section.size > t.budget - t.page then
    Error
      (Printf.sprintf "section %d (%d B) exceeds local budget (%d B used of %d)"
         cfg.Section.sec_id cfg.Section.size t.section_bytes t.budget)
  else begin
    let section = Section.create t.net t.cluster cfg in
    (match t.attribution with
    | Some a -> Section.set_attribution section a
    | None -> ());
    Hashtbl.replace t.sections cfg.Section.sec_id section;
    t.section_bytes <- t.section_bytes + cfg.Section.size;
    Swap_section.resize t.swap ~capacity:(swap_capacity t) ~clock;
    Ok section
  end

let end_section t ~clock ~id =
  (* Handle any pending failover first: a crash during [end_section]
     must not interleave recovery writebacks with the rebudget below. *)
  check_cluster t ~clock;
  match Hashtbl.find_opt t.sections id with
  | None -> ()
  | Some section ->
    Section.drop_all section ~clock;
    (* Writeback-ordering barrier: the section's bytes are about to be
       rebudgeted to swap, so its (asynchronous) final writebacks must
       land before anything reuses the far ranges.  Only write traffic
       is fenced — in-flight prefetches of other sections may overlap. *)
    let now = Mira_sim.Clock.now clock in
    let done_at =
      Mira_sim.Net.fence ~dir:Mira_sim.Net.Request.Write t.net ~now
    in
    let stall =
      Mira_sim.Clock.wait_event clock ~ev:Mira_sim.Clock.Fence done_at
    in
    charge t Mira_telemetry.Attribution.Reconfig stall;
    t.section_bytes <- t.section_bytes - (Section.config section).Section.size;
    Hashtbl.remove t.sections id;
    let orphans =
      Hashtbl.fold
        (fun site sec acc -> if sec = id then site :: acc else acc)
        t.site_to_section []
    in
    List.iter (Hashtbl.remove t.site_to_section) orphans;
    Swap_section.resize t.swap ~capacity:(swap_capacity t) ~clock

let find_section t ~id = Hashtbl.find_opt t.sections id

let assign_site t ~site ~sec_id =
  if not (Hashtbl.mem t.sections sec_id) then
    invalid_arg (Printf.sprintf "Manager.assign_site: no section %d" sec_id);
  Hashtbl.replace t.site_to_section site sec_id

let unassign_site t ~site = Hashtbl.remove t.site_to_section site

let route t ~site =
  match Hashtbl.find_opt t.site_to_section site with
  | None -> None
  | Some id -> Hashtbl.find_opt t.sections id

let route_handle t ~site =
  match route t ~site with
  | Some section -> Section.handle section
  | None -> t.swap_h

let metadata_bytes t =
  List.fold_left
    (fun acc h -> acc + Cache_section.metadata_bytes h)
    0 (handles t)

let drop_all t ~clock =
  List.iter (fun h -> Cache_section.drop_all h ~clock) (handles t)

let reset_stats t = List.iter Cache_section.reset_stats (handles t)

let publish t reg =
  List.iter (fun h -> Cache_section.publish h reg) (handles t);
  Mira_sim.Cluster.publish t.cluster reg;
  Mira_telemetry.Metrics.set_gauge reg "cache.metadata_bytes"
    (float_of_int (metadata_bytes t));
  Mira_telemetry.Metrics.set_counter reg "cache.section_bytes" t.section_bytes
