type t = {
  net : Mira_sim.Net.t;
  far : Mira_sim.Far_store.t;
  budget : int;
  page : int;
  swap : Swap_section.t;
  swap_h : Cache_section.handle;
  sections : (int, Section.t) Hashtbl.t;
  site_to_section : (int, int) Hashtbl.t;
  mutable section_bytes : int;
}

let create net far ~budget ~page ~side =
  assert (budget >= page);
  let swap = Swap_section.create net far { Swap_section.page; capacity = budget; side } in
  {
    net;
    far;
    budget;
    page;
    swap;
    swap_h = Swap_section.handle swap;
    sections = Hashtbl.create 16;
    site_to_section = Hashtbl.create 16;
    section_bytes = 0;
  }

let budget t = t.budget
let swap t = t.swap
let swap_handle t = t.swap_h
let net t = t.net
let far t = t.far

let swap_capacity t = max t.page (t.budget - t.section_bytes)

let add_section t ~clock (cfg : Section.config) =
  if Hashtbl.mem t.sections cfg.Section.sec_id then
    Error (Printf.sprintf "section %d already exists" cfg.Section.sec_id)
  else if t.section_bytes + cfg.Section.size > t.budget - t.page then
    Error
      (Printf.sprintf "section %d (%d B) exceeds local budget (%d B used of %d)"
         cfg.Section.sec_id cfg.Section.size t.section_bytes t.budget)
  else begin
    let section = Section.create t.net t.far cfg in
    Hashtbl.replace t.sections cfg.Section.sec_id section;
    t.section_bytes <- t.section_bytes + cfg.Section.size;
    Swap_section.resize t.swap ~capacity:(swap_capacity t) ~clock;
    Ok section
  end

let end_section t ~clock ~id =
  match Hashtbl.find_opt t.sections id with
  | None -> ()
  | Some section ->
    Section.drop_all section ~clock;
    (* Writeback-ordering barrier: the section's bytes are about to be
       rebudgeted to swap, so its (asynchronous) final writebacks must
       land before anything reuses the far ranges.  Only write traffic
       is fenced — in-flight prefetches of other sections may overlap. *)
    let now = Mira_sim.Clock.now clock in
    let done_at =
      Mira_sim.Net.fence ~dir:Mira_sim.Net.Request.Write t.net ~now
    in
    ignore (Mira_sim.Clock.wait_until clock done_at);
    t.section_bytes <- t.section_bytes - (Section.config section).Section.size;
    Hashtbl.remove t.sections id;
    let orphans =
      Hashtbl.fold
        (fun site sec acc -> if sec = id then site :: acc else acc)
        t.site_to_section []
    in
    List.iter (Hashtbl.remove t.site_to_section) orphans;
    Swap_section.resize t.swap ~capacity:(swap_capacity t) ~clock

let find_section t ~id = Hashtbl.find_opt t.sections id

let sections t =
  Hashtbl.fold (fun _ s acc -> s :: acc) t.sections []
  |> List.sort (fun a b ->
         compare (Section.config a).Section.sec_id (Section.config b).Section.sec_id)

let assign_site t ~site ~sec_id =
  if not (Hashtbl.mem t.sections sec_id) then
    invalid_arg (Printf.sprintf "Manager.assign_site: no section %d" sec_id);
  Hashtbl.replace t.site_to_section site sec_id

let unassign_site t ~site = Hashtbl.remove t.site_to_section site

let route t ~site =
  match Hashtbl.find_opt t.site_to_section site with
  | None -> None
  | Some id -> Hashtbl.find_opt t.sections id

let route_handle t ~site =
  match route t ~site with
  | Some section -> Section.handle section
  | None -> t.swap_h

let handles t = List.map Section.handle (sections t) @ [ t.swap_h ]

let metadata_bytes t =
  List.fold_left
    (fun acc h -> acc + Cache_section.metadata_bytes h)
    0 (handles t)

let drop_all t ~clock =
  List.iter (fun h -> Cache_section.drop_all h ~clock) (handles t)

let reset_stats t = List.iter Cache_section.reset_stats (handles t)

let publish t reg =
  List.iter (fun h -> Cache_section.publish h reg) (handles t);
  Mira_telemetry.Metrics.set_gauge reg "cache.metadata_bytes"
    (float_of_int (metadata_bytes t));
  Mira_telemetry.Metrics.set_counter reg "cache.section_bytes" t.section_bytes
