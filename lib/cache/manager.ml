type t = {
  net : Mira_sim.Net.t;
  far : Mira_sim.Far_store.t;
  budget : int;
  page : int;
  swap : Swap_section.t;
  sections : (int, Section.t) Hashtbl.t;
  site_to_section : (int, int) Hashtbl.t;
  mutable section_bytes : int;
}

let create net far ~budget ~page ~side =
  assert (budget >= page);
  let swap = Swap_section.create net far { Swap_section.page; capacity = budget; side } in
  {
    net;
    far;
    budget;
    page;
    swap;
    sections = Hashtbl.create 16;
    site_to_section = Hashtbl.create 16;
    section_bytes = 0;
  }

let budget t = t.budget
let swap t = t.swap
let net t = t.net
let far t = t.far

let swap_capacity t = max t.page (t.budget - t.section_bytes)

let add_section t ~clock (cfg : Section.config) =
  if Hashtbl.mem t.sections cfg.Section.sec_id then
    Error (Printf.sprintf "section %d already exists" cfg.Section.sec_id)
  else if t.section_bytes + cfg.Section.size > t.budget - t.page then
    Error
      (Printf.sprintf "section %d (%d B) exceeds local budget (%d B used of %d)"
         cfg.Section.sec_id cfg.Section.size t.section_bytes t.budget)
  else begin
    let section = Section.create t.net t.far cfg in
    Hashtbl.replace t.sections cfg.Section.sec_id section;
    t.section_bytes <- t.section_bytes + cfg.Section.size;
    Swap_section.resize t.swap ~capacity:(swap_capacity t) ~clock;
    Ok section
  end

let end_section t ~clock ~id =
  match Hashtbl.find_opt t.sections id with
  | None -> ()
  | Some section ->
    Section.drop_all section ~clock;
    t.section_bytes <- t.section_bytes - (Section.config section).Section.size;
    Hashtbl.remove t.sections id;
    let orphans =
      Hashtbl.fold
        (fun site sec acc -> if sec = id then site :: acc else acc)
        t.site_to_section []
    in
    List.iter (Hashtbl.remove t.site_to_section) orphans;
    Swap_section.resize t.swap ~capacity:(swap_capacity t) ~clock

let find_section t ~id = Hashtbl.find_opt t.sections id

let sections t =
  Hashtbl.fold (fun _ s acc -> s :: acc) t.sections []
  |> List.sort (fun a b ->
         compare (Section.config a).Section.sec_id (Section.config b).Section.sec_id)

let assign_site t ~site ~sec_id =
  if not (Hashtbl.mem t.sections sec_id) then
    invalid_arg (Printf.sprintf "Manager.assign_site: no section %d" sec_id);
  Hashtbl.replace t.site_to_section site sec_id

let unassign_site t ~site = Hashtbl.remove t.site_to_section site

let route t ~site =
  match Hashtbl.find_opt t.site_to_section site with
  | None -> None
  | Some id -> Hashtbl.find_opt t.sections id

let metadata_bytes t =
  Hashtbl.fold
    (fun _ s acc -> acc + Section.metadata_bytes s)
    t.sections
    (Swap_section.metadata_bytes t.swap)

let drop_all t ~clock =
  Hashtbl.iter (fun _ s -> Section.drop_all s ~clock) t.sections;
  Swap_section.drop_all t.swap ~clock

let reset_stats t =
  Hashtbl.iter (fun _ s -> Section.reset_stats s) t.sections;
  Swap_section.reset_stats t.swap

let publish t reg =
  List.iter (fun s -> Section.publish s reg) (sections t);
  Swap_section.publish t.swap reg;
  Mira_telemetry.Metrics.set_gauge reg "cache.metadata_bytes"
    (float_of_int (metadata_bytes t));
  Mira_telemetry.Metrics.set_counter reg "cache.section_bytes" t.section_bytes
