(** The local-memory cache manager.

    Owns the swap section plus every live custom section, routes
    allocation sites to sections, and enforces the local-memory budget:
    creating a section takes bytes away from the swap section, ending a
    section (when analysis says its lifetime is over, §4.1/§6.2) gives
    them back.  One section may serve several sites (similar patterns
    grouped together); a site not assigned anywhere runs on swap. *)

type t

val create : Mira_sim.Net.t -> Mira_sim.Cluster.t -> budget:int -> page:int -> side:Mira_sim.Net.side -> t
(** The whole budget initially backs the swap section (the paper's
    initial, swap-everything configuration). *)

val budget : t -> int
val swap : t -> Swap_section.t

val swap_handle : t -> Cache_section.handle
(** The swap section packed behind the uniform cache contract. *)

val net : t -> Mira_sim.Net.t

val cluster : t -> Mira_sim.Cluster.t

val far : t -> Mira_sim.Far_store.t
(** The cluster's current primary store (changes on failover). *)

val set_attribution : t -> Mira_telemetry.Attribution.t -> unit
(** Route all cache-layer stalls into the given ledger: the swap
    section, every live section, every section created later, plus the
    manager's own failover-recovery and reconfiguration fence waits. *)

val check_cluster : t -> clock:Mira_sim.Clock.t -> unit
(** Process cluster crash/recovery events due by now.  On failover:
    fail in-flight requests ([Net.fail_inflight], the epoch fence),
    re-issue writebacks for every still-dirty line/page ([flush_all]),
    and wait out a write fence — the elapsed simulated time is the
    recovery time recorded in [node.recovery_ns].  On a primary loss
    with no replica: fail in-flight requests and declare the outage to
    the network ([Net.set_down]); the run continues degraded.  Called
    automatically at every reconfiguration point ([add_section],
    [end_section]) so recovery never interleaves with a rebudget, and
    by the runtime's access path. *)

val add_section :
  t -> clock:Mira_sim.Clock.t -> Section.config -> (Section.t, string) result
(** Carve a new section out of the swap section's budget.  Fails if the
    remaining swap space would drop below one page, or the id exists. *)

val end_section : t -> clock:Mira_sim.Clock.t -> id:int -> unit
(** Write back, drop, and return the section's bytes to the swap
    section.  A write [Net.fence] is waited out before the bytes are
    rebudgeted, so the section's final (asynchronous) writebacks are
    ordered before any reuse of the far ranges.  Site assignments to it
    are removed.  No-op if absent. *)

val find_section : t -> id:int -> Section.t option
val sections : t -> Section.t list

val assign_site : t -> site:int -> sec_id:int -> unit
(** Route an allocation site to a section.  Raises [Invalid_argument]
    if the section does not exist. *)

val unassign_site : t -> site:int -> unit

val route : t -> site:int -> Section.t option
(** [None] means the swap section handles this site. *)

val route_handle : t -> site:int -> Cache_section.handle
(** Uniform routing: the assigned section's handle, or the swap
    section's when the site has none.  Callers no longer special-case
    swap. *)

val handles : t -> Cache_section.handle list
(** Every live cache in id order, swap last. *)

val metadata_bytes : t -> int
(** Total local-memory metadata of swap + sections. *)

val drop_all : t -> clock:Mira_sim.Clock.t -> unit
(** Empty every section and the swap cache (between runs). *)

val reset_stats : t -> unit

val publish : t -> Mira_telemetry.Metrics.t -> unit
(** Export every live section's stats, the swap section's, and the
    manager-level gauges ([cache.*]). *)
