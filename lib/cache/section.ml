type structure = Direct | Set_assoc of int | Full_assoc

type config = {
  sec_id : int;
  sec_name : string;
  line : int;
  size : int;
  structure : structure;
  side : Mira_sim.Net.side;
  payload : int option;
  no_meta : bool;
  write_no_fetch : bool;
  read_discard : bool;
}

let config_default ~sec_id ~name ~line ~size =
  {
    sec_id;
    sec_name = name;
    line;
    size;
    structure = Full_assoc;
    side = Mira_sim.Net.One_sided;
    payload = None;
    no_meta = false;
    write_no_fetch = false;
    read_discard = false;
  }

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable late_prefetch : int;
  mutable evictions : int;
  mutable hinted_evictions : int;
  mutable writebacks : int;
  mutable hit_ns : float;
  mutable miss_ns : float;
  mutable stall_ns : float;
  mutable bytes_fetched : int;
  lat_fetch : Mira_telemetry.Metrics.hist;
}

let fresh_stats () =
  {
    hits = 0;
    misses = 0;
    late_prefetch = 0;
    evictions = 0;
    hinted_evictions = 0;
    writebacks = 0;
    hit_ns = 0.0;
    miss_ns = 0.0;
    stall_ns = 0.0;
    bytes_fetched = 0;
    lat_fetch = Mira_telemetry.Metrics.hist_create ();
  }

type line_state = {
  mutable tag : int;  (* line index in far address space; -1 = empty *)
  mutable dirty : bool;
  mutable ready_at : float;
  mutable evictable : bool;
  mutable pinned : bool;
  mutable refbit : bool;
  mutable last_use : float;
  data : Bytes.t;
}

type t = {
  cfg : config;
  net : Mira_sim.Net.t;
  far : Mira_sim.Cluster.t;
  lines : line_state array;
  table : (int, int) Hashtbl.t;  (* full-assoc: tag -> slot *)
  mutable free_slots : int list;  (* full-assoc only *)
  mutable hand : int;  (* CLOCK sweep position, full-assoc *)
  mutable evict_hints : int list;  (* slots hinted evictable, full-assoc *)
  mutable used : int;
  stats : stats;
  mutable attribution : Mira_telemetry.Attribution.t option;
}

let create net far cfg =
  assert (cfg.line >= 8 && cfg.line mod 8 = 0);
  assert (cfg.size >= cfg.line);
  let nslots =
    match cfg.structure with
    | Direct | Full_assoc -> max 1 (cfg.size / cfg.line)
    | Set_assoc k ->
      assert (k >= 1);
      let slots = max k (cfg.size / cfg.line) in
      slots / k * k
  in
  let fresh_line () =
    {
      tag = -1;
      dirty = false;
      ready_at = 0.0;
      evictable = false;
      pinned = false;
      refbit = false;
      last_use = 0.0;
      data = Bytes.make cfg.line '\000';
    }
  in
  {
    cfg;
    net;
    far;
    lines = Array.init nslots (fun _ -> fresh_line ());
    table = Hashtbl.create (max 16 nslots);
    free_slots = List.init nslots (fun i -> i);
    hand = 0;
    evict_hints = [];
    used = 0;
    stats = fresh_stats ();
    attribution = None;
  }

let config t = t.cfg
let stats t = t.stats
let set_attribution t a = t.attribution <- Some a

let charge_stall t cause stall =
  match t.attribution with
  | None -> ()
  | Some a ->
    Mira_telemetry.Attribution.charge a ~section:t.cfg.sec_name cause stall

let charge_split t (c : Mira_sim.Net.completion) stall =
  match t.attribution with
  | None -> ()
  | Some a ->
    Mira_telemetry.Attribution.charge_parts a ~section:t.cfg.sec_name
      ~holders:c.Mira_sim.Net.holders
      (Mira_telemetry.Attribution.split_stall ~stall
         ~wire_ns:c.Mira_sim.Net.wire_ns ~queue_ns:c.Mira_sim.Net.queue_ns
         ~retry_ns:c.Mira_sim.Net.retry_ns)

let reset_stats t =
  let d = t.stats in
  d.hits <- 0;
  d.misses <- 0;
  d.late_prefetch <- 0;
  d.evictions <- 0;
  d.hinted_evictions <- 0;
  d.writebacks <- 0;
  d.hit_ns <- 0.0;
  d.miss_ns <- 0.0;
  d.stall_ns <- 0.0;
  d.bytes_fetched <- 0;
  Mira_telemetry.Metrics.hist_reset d.lat_fetch

let publish t reg =
  let m = Mira_telemetry.Metrics.set_counter reg in
  let g = Mira_telemetry.Metrics.set_gauge reg in
  let s = t.stats in
  let p name = Printf.sprintf "section.%s.%s" t.cfg.sec_name name in
  m (p "hits") s.hits;
  m (p "misses") s.misses;
  m (p "late_prefetch") s.late_prefetch;
  m (p "evictions") s.evictions;
  m (p "hinted_evictions") s.hinted_evictions;
  m (p "writebacks") s.writebacks;
  m (p "bytes_fetched") s.bytes_fetched;
  g (p "hit_ns") s.hit_ns;
  g (p "miss_ns") s.miss_ns;
  g (p "stall_ns") s.stall_ns;
  Mira_telemetry.Metrics.set_hist reg (p "fetch_latency") s.lat_fetch

let lines_total t = Array.length t.lines
let lines_used t = t.used

(* Per-line runtime metadata: tag + flags + ready time + LRU stamp + a
   table entry for associative structures.  The paper's point (§4.4) is
   that compiler-controlled sections need none of it. *)
let metadata_bytes t =
  if t.cfg.no_meta then 0
  else begin
    let per_line =
      match t.cfg.structure with
      | Direct -> 24
      | Set_assoc _ -> 32
      | Full_assoc -> 48
    in
    per_line * Array.length t.lines
  end

let params t = Mira_sim.Net.params t.net

let lookup_cost t =
  let p = params t in
  match t.cfg.structure with
  | Direct -> p.Mira_sim.Params.hit_direct_ns
  | Set_assoc _ -> p.Mira_sim.Params.hit_set_ns
  | Full_assoc -> p.Mira_sim.Params.hit_full_ns

let line_of_addr t addr = addr / t.cfg.line

(* --- slot lookup ------------------------------------------------------- *)

let find_slot t tag =
  match t.cfg.structure with
  | Direct ->
    let slot = tag mod Array.length t.lines in
    if t.lines.(slot).tag = tag then Some slot else None
  | Set_assoc k ->
    let nsets = Array.length t.lines / k in
    let set = tag mod nsets in
    let rec scan i =
      if i >= k then None
      else begin
        let slot = (set * k) + i in
        if t.lines.(slot).tag = tag then Some slot else scan (i + 1)
      end
    in
    scan 0
  | Full_assoc -> Hashtbl.find_opt t.table tag

(* --- victim selection --------------------------------------------------- *)

(* Post one line writeback on the data plane.  [sync] posts urgently
   and blocks on the completion; otherwise it is fire-and-forget
   (detached: accounted and fenced, but never reaped).  When the
   cluster is replicating, the backup's copy rides a second detached
   write — asynchronous even for sync flushes, and mergeable with the
   primary writeback under doorbell batching. *)
(* Causal context for a child request of the access currently being
   executed.  [flow] children (detached writebacks, prefetches) link
   with flow arrows only; synchronous children nest under the ambient
   span. *)
let child_ctx ~flow =
  if Mira_telemetry.Trace.enabled () then
    match Mira_telemetry.Trace.current_ctx () with
    | Some c -> Some { c with Mira_telemetry.Trace.sc_flow = flow }
    | None -> None
  else None

let post_writeback t ~clock ~base ~sync =
  let node = Mira_sim.Cluster.node_of_addr t.far ~addr:base in
  let req ~flow =
    Mira_sim.Net.Request.write ~node ?ctx:(child_ctx ~flow) ~side:t.cfg.side
      ~purpose:Mira_sim.Net.Writeback t.cfg.line
  in
  let now = Mira_sim.Clock.now clock in
  if sync then begin
    let sq = Mira_sim.Net.submit t.net ~now ~urgent:true (req ~flow:false) in
    Mira_sim.Clock.advance clock sq.Mira_sim.Net.issue_cpu_ns;
    let c = Mira_sim.Net.await t.net ~now ~id:sq.Mira_sim.Net.id in
    let stall =
      Mira_sim.Clock.wait_event clock
        ~ev:(Mira_sim.Clock.Net_completion sq.Mira_sim.Net.id)
        c.Mira_sim.Net.done_at
    in
    charge_stall t Mira_telemetry.Attribution.Writeback stall
  end
  else begin
    let sq = Mira_sim.Net.submit t.net ~now ~detached:true (req ~flow:true) in
    Mira_sim.Clock.advance clock sq.Mira_sim.Net.issue_cpu_ns
  end;
  (* Parity/copy fan-out: one detached write per live parity row, sized
     to the scheme's true bytes-on-wire for this line (a mirror pays a
     full copy per replica; EC pays the touched chunk union per row). *)
  List.iter
    (fun (rnode, bytes) ->
      let now = Mira_sim.Clock.now clock in
      let sq =
        Mira_sim.Net.submit t.net ~now ~detached:true
          (Mira_sim.Net.Request.write ~node:rnode ?ctx:(child_ctx ~flow:true)
             ~side:t.cfg.side ~purpose:Mira_sim.Net.Writeback bytes)
      in
      Mira_sim.Clock.advance clock sq.Mira_sim.Net.issue_cpu_ns)
    (Mira_sim.Cluster.replica_payloads t.far ~addr:base ~len:t.cfg.line);
  (* If the data chunk's node was down, the write had to decode the old
     contents from survivors; that extra read traffic rides detached
     (the writeback itself is not blocked on it). *)
  let rb = Mira_sim.Cluster.take_reconstruction t.far in
  if rb > 0 then begin
    let now = Mira_sim.Clock.now clock in
    let sq =
      Mira_sim.Net.submit t.net ~now ~detached:true
        (Mira_sim.Net.Request.read
           ~node:(Mira_sim.Cluster.serving_node t.far)
           ?ctx:(child_ctx ~flow:true) ~side:t.cfg.side
           ~purpose:Mira_sim.Net.Demand rb)
    in
    Mira_sim.Clock.advance clock sq.Mira_sim.Net.issue_cpu_ns
  end

(* read_discard is a cost hint for clean lines; dirty data must always
   reach the far store or it would be lost. *)
let writeback_victim t ~clock line =
  if line.dirty then begin
    let base = line.tag * t.cfg.line in
    Mira_sim.Cluster.write t.far ~addr:base ~len:t.cfg.line ~src:line.data ~src_off:0;
    post_writeback t ~clock ~base ~sync:false;
    t.stats.writebacks <- t.stats.writebacks + 1
  end;
  line.dirty <- false

let release_slot t ~clock slot =
  let line = t.lines.(slot) in
  if line.tag >= 0 then begin
    writeback_victim t ~clock line;
    (match t.cfg.structure with
    | Full_assoc -> Hashtbl.remove t.table line.tag
    | Direct | Set_assoc _ -> ());
    if line.evictable then t.stats.hinted_evictions <- t.stats.hinted_evictions + 1;
    t.stats.evictions <- t.stats.evictions + 1;
    line.tag <- -1;
    line.evictable <- false;
    line.pinned <- false;
    line.refbit <- false;
    t.used <- t.used - 1
  end

let pick_victim_full t =
  (* Hinted-evictable slots first, then CLOCK over the rest. *)
  let rec from_hints = function
    | [] ->
      t.evict_hints <- [];
      None
    | slot :: rest ->
      let line = t.lines.(slot) in
      if line.tag >= 0 && line.evictable && not line.pinned then begin
        t.evict_hints <- rest;
        Some slot
      end
      else from_hints rest
  in
  match from_hints t.evict_hints with
  | Some slot -> slot
  | None ->
    let n = Array.length t.lines in
    let rec sweep budget =
      let slot = t.hand in
      t.hand <- (t.hand + 1) mod n;
      let line = t.lines.(slot) in
      if budget = 0 then slot
      else if line.pinned then sweep (budget - 1)
      else if line.refbit then begin
        line.refbit <- false;
        sweep (budget - 1)
      end
      else slot
    in
    sweep (2 * n)

let pick_victim_set t tag k =
  let nsets = Array.length t.lines / k in
  let set = tag mod nsets in
  let best = ref (set * k) in
  let best_score = ref infinity in
  for i = 0 to k - 1 do
    let slot = (set * k) + i in
    let line = t.lines.(slot) in
    let score =
      if line.tag < 0 then neg_infinity
      else if line.pinned then infinity
      else if line.evictable then -1.0
      else line.last_use
    in
    if score < !best_score then begin
      best := slot;
      best_score := score
    end
  done;
  !best

let allocate_slot t ~clock tag =
  match t.cfg.structure with
  | Direct ->
    let slot = tag mod Array.length t.lines in
    release_slot t ~clock slot;
    slot
  | Set_assoc k ->
    let slot = pick_victim_set t tag k in
    release_slot t ~clock slot;
    slot
  | Full_assoc ->
    (match t.free_slots with
    | slot :: rest ->
      t.free_slots <- rest;
      slot
    | [] ->
      let slot = pick_victim_full t in
      release_slot t ~clock slot;
      slot)

(* A fill that had to erasure-decode (its data node down, group within
   quorum) read k survivor chunk ranges instead of one: model the
   extra (k-1)*c bytes as an urgent demand read and charge the wait to
   the [Reconstruct] attribution cause. *)
let charge_reconstruction t ~clock =
  let rb = Mira_sim.Cluster.take_reconstruction t.far in
  if rb > 0 then begin
    let now = Mira_sim.Clock.now clock in
    let sq =
      Mira_sim.Net.submit t.net ~now ~urgent:true
        (Mira_sim.Net.Request.read
           ~node:(Mira_sim.Cluster.serving_node t.far)
           ?ctx:(child_ctx ~flow:false) ~side:t.cfg.side
           ~purpose:Mira_sim.Net.Demand rb)
    in
    Mira_sim.Clock.advance clock sq.Mira_sim.Net.issue_cpu_ns;
    let c = Mira_sim.Net.await t.net ~now ~id:sq.Mira_sim.Net.id in
    let stall =
      Mira_sim.Clock.wait_event clock
        ~ev:(Mira_sim.Clock.Net_completion sq.Mira_sim.Net.id)
        c.Mira_sim.Net.done_at
    in
    charge_stall t Mira_telemetry.Attribution.Reconstruct stall;
    if Mira_telemetry.Trace.enabled () then
      Mira_telemetry.Trace.complete ~name:"reconstruct" ~cat:"cluster"
        ~lane:(Mira_sim.Cluster.service_lane t.far) ~ts_ns:now
        ~dur_ns:(Mira_sim.Clock.now clock -. now)
        ~args:[ ("bytes", Mira_telemetry.Json.Int rb) ]
        ()
  end

let install t ~clock ~tag ~ready_at =
  let slot = allocate_slot t ~clock tag in
  let line = t.lines.(slot) in
  let base = tag * t.cfg.line in
  Mira_sim.Cluster.read t.far ~addr:base ~len:t.cfg.line ~dst:line.data ~dst_off:0;
  charge_reconstruction t ~clock;
  line.tag <- tag;
  line.dirty <- false;
  line.ready_at <- ready_at;
  line.evictable <- false;
  line.pinned <- false;
  line.refbit <- true;
  line.last_use <- Mira_sim.Clock.now clock;
  (match t.cfg.structure with
  | Full_assoc -> Hashtbl.replace t.table tag slot
  | Direct | Set_assoc _ -> ());
  t.used <- t.used + 1;
  slot

(* --- access paths ------------------------------------------------------- *)

let payload_bytes t = match t.cfg.payload with Some b -> b | None -> t.cfg.line

let touch t ~clock slot =
  let line = t.lines.(slot) in
  line.refbit <- true;
  line.last_use <- Mira_sim.Clock.now clock;
  (* Re-using a line cancels a pending eviction hint. *)
  line.evictable <- false

let wait_ready t ~clock line =
  let stall =
    Mira_sim.Clock.wait_event clock ~ev:Mira_sim.Clock.Cache_fill line.ready_at
  in
  if stall > 0.0 then begin
    t.stats.late_prefetch <- t.stats.late_prefetch + 1;
    t.stats.stall_ns <- t.stats.stall_ns +. stall;
    (* A late prefetch is still waiting on the wire. *)
    charge_stall t Mira_telemetry.Attribution.Demand_wire stall;
    if Mira_telemetry.Trace.enabled () then
      match Mira_telemetry.Trace.current_ctx () with
      | Some ctx ->
        let module Tr = Mira_telemetry.Trace in
        let span = Tr.new_span () in
        let lane = "section:" ^ t.cfg.sec_name in
        let now = Mira_sim.Clock.now clock in
        Tr.begin_span ~name:"late-prefetch" ~cat:"cache" ~lane
          ~ts_ns:(now -. stall) ~trace:ctx.Tr.sc_trace ~span
          ~parent:ctx.Tr.sc_span ();
        Tr.end_span ~name:"late-prefetch" ~cat:"cache" ~lane ~ts_ns:now
          ~trace:ctx.Tr.sc_trace ~span ()
      | None -> ()
  end

(* Ensure the line covering [addr] is resident; returns its slot.
   [for_write_no_fetch] skips the network fetch on a miss. *)
let ensure t ~clock ~addr ~for_write =
  let p = params t in
  let tag = line_of_addr t addr in
  match find_slot t tag with
  | Some slot ->
    t.stats.hits <- t.stats.hits + 1;
    let cost = if t.cfg.no_meta then 0.0 else lookup_cost t in
    Mira_sim.Clock.advance clock cost;
    t.stats.hit_ns <- t.stats.hit_ns +. cost;
    wait_ready t ~clock t.lines.(slot);
    touch t ~clock slot;
    slot
  | None ->
    t.stats.misses <- t.stats.misses + 1;
    let start = Mira_sim.Clock.now clock in
    (* The fill span: child of the ambient deref (or a root of its own
       trace when the access above is not instrumented).  The demand
       request below carries this context so its net member span nests
       under the fill. *)
    let fill =
      if Mira_telemetry.Trace.enabled () then begin
        let module Tr = Mira_telemetry.Trace in
        let trace, parent, site =
          match Tr.current_ctx () with
          | Some c -> (c.Tr.sc_trace, c.Tr.sc_span, c.Tr.sc_site)
          | None -> (Tr.new_trace (), 0, -1)
        in
        Some (trace, parent, Tr.new_span (), site)
      end
      else None
    in
    let fill_ctx =
      Option.map
        (fun (trace, _, span, site) ->
          {
            Mira_telemetry.Trace.sc_trace = trace;
            sc_span = span;
            sc_site = site;
            sc_lane = "section:" ^ t.cfg.sec_name;
            sc_flow = false;
          })
        fill
    in
    let cost = if t.cfg.no_meta then 0.0 else lookup_cost t in
    Mira_sim.Clock.advance clock cost;
    let slot =
      if for_write && t.cfg.write_no_fetch then begin
        (* No fetch: the store covers the whole line (or the compiler
           proved full coverage before any read); local bookkeeping only. *)
        Mira_sim.Clock.advance clock p.Mira_sim.Params.evict_check_ns;
        install t ~clock ~tag ~ready_at:(Mira_sim.Clock.now clock)
      end
      else begin
        (* Demand miss: the fast synchronous path — an urgent
           submission followed by a blocking await.  A [Timed_out]
           completion (faults enabled, retries exhausted) still
           installs: [done_at] already charges every retry and the
           final timeout, so the run degrades instead of hanging. *)
        let now = Mira_sim.Clock.now clock in
        let sq =
          Mira_sim.Net.submit t.net ~now ~urgent:true
            (Mira_sim.Net.Request.read
               ~node:(Mira_sim.Cluster.node_of_addr t.far ~addr:(tag * t.cfg.line))
               ?ctx:fill_ctx ~side:t.cfg.side
               ~purpose:Mira_sim.Net.Demand (payload_bytes t))
        in
        Mira_sim.Clock.advance clock sq.Mira_sim.Net.issue_cpu_ns;
        let c = Mira_sim.Net.await t.net ~now ~id:sq.Mira_sim.Net.id in
        let slot = install t ~clock ~tag ~ready_at:c.Mira_sim.Net.done_at in
        let stall =
          Mira_sim.Clock.wait_event clock ~ev:Mira_sim.Clock.Cache_fill
            c.Mira_sim.Net.done_at
        in
        charge_split t c stall;
        t.stats.bytes_fetched <- t.stats.bytes_fetched + payload_bytes t;
        slot
      end
    in
    let miss_ns = Mira_sim.Clock.now clock -. start in
    t.stats.miss_ns <- t.stats.miss_ns +. miss_ns;
    let fill_trace =
      match fill with Some (trace, _, _, _) -> trace | None -> 0
    in
    Mira_telemetry.Metrics.hist_observe ~trace:fill_trace t.stats.lat_fetch
      miss_ns;
    (match fill with
    | Some (trace, parent, span, _) ->
      let module Tr = Mira_telemetry.Trace in
      let lane = "section:" ^ t.cfg.sec_name in
      Tr.begin_span ~name:"demand-fetch" ~cat:"cache" ~lane ~ts_ns:start ~trace
        ~span ~parent
        ~args:[ ("addr", Mira_telemetry.Json.Int addr) ]
        ();
      Tr.end_span ~name:"demand-fetch" ~cat:"cache" ~lane
        ~ts_ns:(start +. miss_ns) ~trace ~span ();
      (* Which physical node served the fill (changes at failover). *)
      Tr.instant ~name:"serve" ~cat:"cluster"
        ~lane:(Mira_sim.Cluster.service_lane t.far) ~ts_ns:(start +. miss_ns)
        ~args:
          [
            ("trace", Mira_telemetry.Json.Int trace);
            ("span", Mira_telemetry.Json.Int span);
          ]
        ()
    | None -> ());
    touch t ~clock slot;
    slot

let check_span t ~addr ~len =
  assert (len > 0 && len <= 8);
  assert (addr / t.cfg.line = (addr + len - 1) / t.cfg.line)

(* Scalar access straight into the line buffer — no staging blit.  The
   line itself is filled/written back by a single boundary copy against
   the cluster store (install / writeback). *)
let read_slot t slot ~addr ~len =
  let line = t.lines.(slot) in
  let off = addr mod t.cfg.line in
  Mira_util.Bytes_le.get line.data ~off ~len

let write_slot t slot ~addr ~len v =
  let line = t.lines.(slot) in
  let off = addr mod t.cfg.line in
  Mira_util.Bytes_le.set line.data ~off ~len v;
  line.dirty <- true

let load t ~clock ~addr ~len =
  check_span t ~addr ~len;
  let slot = ensure t ~clock ~addr ~for_write:false in
  Mira_sim.Clock.advance clock (params t).Mira_sim.Params.native_mem_ns;
  read_slot t slot ~addr ~len

let store t ~clock ~addr ~len v =
  check_span t ~addr ~len;
  let slot = ensure t ~clock ~addr ~for_write:true in
  Mira_sim.Clock.advance clock (params t).Mira_sim.Params.native_mem_ns;
  write_slot t slot ~addr ~len v

(* Compiler-proved resident: native cost.  If the proof fails at run
   time (e.g. an over-eager pass), fall back to the full path so data
   stays correct — the only penalty is that the access is charged like
   a normal one. *)
let load_native t ~clock ~addr ~len =
  check_span t ~addr ~len;
  let tag = line_of_addr t addr in
  match find_slot t tag with
  | Some slot ->
    wait_ready t ~clock t.lines.(slot);
    Mira_sim.Clock.advance clock (params t).Mira_sim.Params.native_mem_ns;
    t.stats.hits <- t.stats.hits + 1;
    read_slot t slot ~addr ~len
  | None -> load t ~clock ~addr ~len

let store_native t ~clock ~addr ~len v =
  check_span t ~addr ~len;
  let tag = line_of_addr t addr in
  match find_slot t tag with
  | Some slot ->
    wait_ready t ~clock t.lines.(slot);
    Mira_sim.Clock.advance clock (params t).Mira_sim.Params.native_mem_ns;
    t.stats.hits <- t.stats.hits + 1;
    write_slot t slot ~addr ~len v
  | None -> store t ~clock ~addr ~len v

let iter_tags t ~addr ~len fn =
  let first = line_of_addr t addr in
  let last = line_of_addr t (addr + len - 1) in
  for tag = first to last do
    fn tag
  done

let prefetch_req ?ctx t ~tag =
  Mira_sim.Net.Request.read
    ~node:(Mira_sim.Cluster.node_of_addr t.far ~addr:(tag * t.cfg.line))
    ?ctx ~side:t.cfg.side ~purpose:Mira_sim.Net.Prefetch (payload_bytes t)

(* Tag is worth prefetching: inside the far address space (loop
   preambles may over-prefetch near object ends) and not resident. *)
let want_prefetch t tag =
  ((tag + 1) * t.cfg.line) <= Mira_sim.Cluster.capacity t.far
  && find_slot t tag = None

let prefetch t ~clock ~addr ~len =
  (* Prefetches are asynchronous with respect to the access that
     triggered them: flow-linked, never nested. *)
  let ctx = child_ctx ~flow:true in
  if not (Mira_sim.Net.dataplane t.net).Mira_sim.Net.coalesce then
    (* Per-line posting, identical in timing to the synchronous model:
       each line pays its own doorbell and round trip. *)
    iter_tags t ~addr ~len (fun tag ->
        if want_prefetch t tag then begin
          let now = Mira_sim.Clock.now clock in
          let sq = Mira_sim.Net.submit t.net ~now (prefetch_req ?ctx t ~tag) in
          Mira_sim.Clock.advance clock sq.Mira_sim.Net.issue_cpu_ns;
          t.stats.bytes_fetched <- t.stats.bytes_fetched + payload_bytes t;
          let c = Mira_sim.Net.await t.net ~now ~id:sq.Mira_sim.Net.id in
          ignore (install t ~clock ~tag ~ready_at:c.Mira_sim.Net.done_at)
        end)
  else begin
    (* Batched doorbell: submit every absent line, ring once, then
       install each line with the completion time of the (single,
       coalesced) transfer it rode on. *)
    let sqes = ref [] in
    iter_tags t ~addr ~len (fun tag ->
        if want_prefetch t tag then begin
          let sq =
            Mira_sim.Net.submit t.net ~now:(Mira_sim.Clock.now clock)
              (prefetch_req ?ctx t ~tag)
          in
          Mira_sim.Clock.advance clock sq.Mira_sim.Net.issue_cpu_ns;
          t.stats.bytes_fetched <- t.stats.bytes_fetched + payload_bytes t;
          sqes := (tag, sq.Mira_sim.Net.id) :: !sqes
        end);
    Mira_sim.Net.ring t.net ~now:(Mira_sim.Clock.now clock);
    List.iter
      (fun (tag, id) ->
        let c = Mira_sim.Net.await t.net ~now:(Mira_sim.Clock.now clock) ~id in
        if find_slot t tag = None then
          ignore (install t ~clock ~tag ~ready_at:c.Mira_sim.Net.done_at))
      (List.rev !sqes)
  end

let flush_slot t ~clock slot ~sync =
  let line = t.lines.(slot) in
  if line.dirty then begin
    let base = line.tag * t.cfg.line in
    Mira_sim.Cluster.write t.far ~addr:base ~len:t.cfg.line ~src:line.data ~src_off:0;
    post_writeback t ~clock ~base ~sync;
    line.dirty <- false;
    t.stats.writebacks <- t.stats.writebacks + 1
  end

let flush_evict t ~clock ~addr ~len =
  iter_tags t ~addr ~len (fun tag ->
      match find_slot t tag with
      | None -> ()
      | Some slot ->
        Mira_sim.Clock.advance clock (params t).Mira_sim.Params.evict_check_ns;
        flush_slot t ~clock slot ~sync:false;
        let line = t.lines.(slot) in
        line.evictable <- true;
        (match t.cfg.structure with
        | Full_assoc -> t.evict_hints <- slot :: t.evict_hints
        | Direct | Set_assoc _ -> ()))

let mark_dont_evict t ~addr ~len ~pinned =
  iter_tags t ~addr ~len (fun tag ->
      match find_slot t tag with
      | None -> ()
      | Some slot -> t.lines.(slot).pinned <- pinned)

let flush_range t ~clock ~addr ~len =
  iter_tags t ~addr ~len (fun tag ->
      match find_slot t tag with
      | None -> ()
      | Some slot -> flush_slot t ~clock slot ~sync:true)

(* Failover recovery: every still-dirty line is re-issued to the (new)
   primary asynchronously, without evicting anything.  Clean lines need
   nothing — their last writeback was replicated before the crash. *)
let flush_all t ~clock =
  Array.iteri
    (fun slot line ->
      if line.tag >= 0 && line.dirty then flush_slot t ~clock slot ~sync:false)
    t.lines

let drop_all t ~clock =
  Array.iteri
    (fun slot line -> if line.tag >= 0 then release_slot t ~clock slot)
    t.lines;
  Hashtbl.reset t.table;
  t.free_slots <- List.init (Array.length t.lines) (fun i -> i);
  t.evict_hints <- [];
  t.hand <- 0

let discard_range t ~addr ~len =
  iter_tags t ~addr ~len (fun tag ->
      match find_slot t tag with
      | None -> ()
      | Some slot ->
        let line = t.lines.(slot) in
        line.dirty <- false;
        (* Not an eviction in the statistical sense: bypass release_slot
           counters by clearing in place. *)
        (match t.cfg.structure with
        | Full_assoc ->
          Hashtbl.remove t.table line.tag;
          t.free_slots <- slot :: t.free_slots
        | Direct | Set_assoc _ -> ());
        line.tag <- -1;
        line.evictable <- false;
        line.pinned <- false;
        line.refbit <- false;
        t.used <- t.used - 1)

let resident t ~addr = find_slot t (line_of_addr t addr) <> None

(* --- shared cache contract ---------------------------------------------- *)

module Ops : Cache_section.OPS with type t = t = struct
  type nonrec t = t

  let kind = "section"
  let load = load
  let store = store
  let load_native = load_native
  let store_native = store_native
  let prefetch_range = prefetch
  let evict_hint = flush_evict
  let flush_range = flush_range
  let discard_range = discard_range
  let flush_all = flush_all
  let drop_all = drop_all
  let publish = publish
  let reset_stats = reset_stats
  let metadata_bytes = metadata_bytes
  let counters t = (t.stats.hits, t.stats.misses)
end

let handle t = Cache_section.Handle ((module Ops), t)
