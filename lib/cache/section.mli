(** One configurable cache section (§4.2-§4.5 of the paper).

    A section caches line-sized ranges of far memory in local DRAM.
    Its configuration — line size, capacity, structure, communication
    side, transferred payload (selective transmission), and the
    metadata-free mode — is produced by Mira's analysis/profiling
    pipeline; baselines use fixed configurations.

    Sections move real bytes between the [Far_store] and per-line local
    buffers, so system-wide data correctness is testable.  All timing
    goes through the caller's [Clock]; misses block on the simulated
    network, prefetched lines carry a [ready_at] and late accesses
    stall until the data has "arrived". *)

type structure = Direct | Set_assoc of int | Full_assoc

type config = {
  sec_id : int;
  sec_name : string;
  line : int;  (** line size in bytes, multiple of 8 *)
  size : int;  (** capacity in bytes (>= line) *)
  structure : structure;
  side : Mira_sim.Net.side;
  payload : int option;  (** bytes actually transferred per line fetch;
                             [None] = whole line (one-sided needs whole) *)
  no_meta : bool;  (** compiler fully controls the lifetime: hits cost a
                       native access, no per-line runtime metadata *)
  write_no_fetch : bool;  (** write-only pattern: store misses allocate
                              without fetching the old line contents *)
  read_discard : bool;  (** read-only pattern hint: lines are expected
                            clean, so eviction is free (dirty lines are
                            still written back — correctness first) *)
}

val config_default : sec_id:int -> name:string -> line:int -> size:int -> config
(** Fully-associative, one-sided, whole-line payload, all optimizations
    off. *)

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable late_prefetch : int;  (** hits that stalled on an in-flight line *)
  mutable evictions : int;
  mutable hinted_evictions : int;  (** victims chosen via eviction hints *)
  mutable writebacks : int;
  mutable hit_ns : float;  (** runtime overhead spent on the hit path *)
  mutable miss_ns : float;  (** blocking time spent on misses *)
  mutable stall_ns : float;  (** time waiting for in-flight prefetches *)
  mutable bytes_fetched : int;
  lat_fetch : Mira_telemetry.Metrics.hist;
      (** per-demand-miss blocking latency distribution *)
}

type t

val create : Mira_sim.Net.t -> Mira_sim.Cluster.t -> config -> t
val config : t -> config
val stats : t -> stats
val reset_stats : t -> unit

val publish : t -> Mira_telemetry.Metrics.t -> unit
(** Export this section's statistics under [section.<name>.*]. *)

val set_attribution : t -> Mira_telemetry.Attribution.t -> unit
(** Route this section's stalls (demand misses, late prefetches,
    synchronous writeback backpressure) into the given ledger, tagged
    with the section name.  Off (no charges) until set. *)

val lines_total : t -> int
val lines_used : t -> int

val metadata_bytes : t -> int
(** Local-memory metadata footprint (0 in [no_meta] mode). *)

val load : t -> clock:Mira_sim.Clock.t -> addr:int -> len:int -> int64
(** Read [len] (1..8) bytes at far address [addr]; must not straddle a
    line boundary.  Advances the clock by lookup/miss/stall costs. *)

val store : t -> clock:Mira_sim.Clock.t -> addr:int -> len:int -> int64 -> unit

val load_native : t -> clock:Mira_sim.Clock.t -> addr:int -> len:int -> int64
(** Compiler-proved resident access: native cost, no lookup.  Falls back
    to the full path if the line is (unexpectedly) absent, so data is
    always correct even if the proof was wrong. *)

val store_native : t -> clock:Mira_sim.Clock.t -> addr:int -> len:int -> int64 -> unit

val prefetch : t -> clock:Mira_sim.Clock.t -> addr:int -> len:int -> unit
(** Asynchronously fetch all lines covering [addr, addr+len); only the
    message-posting CPU cost hits the clock. *)

val flush_evict : t -> clock:Mira_sim.Clock.t -> addr:int -> len:int -> unit
(** Eviction hint: asynchronously write back covered dirty lines and
    mark them evictable. *)

val mark_dont_evict : t -> addr:int -> len:int -> pinned:bool -> unit
(** Pin/unpin lines (shared-section multithreading support, §4.6). *)

val flush_all : t -> clock:Mira_sim.Clock.t -> unit
(** Failover recovery: asynchronously re-issue writebacks for all
    still-dirty lines without evicting anything, so the new primary
    receives every byte the crashed node lost. *)

val drop_all : t -> clock:Mira_sim.Clock.t -> unit
(** End of section lifetime: write back dirty lines (asynchronously)
    and empty the section. *)

val flush_range : t -> clock:Mira_sim.Clock.t -> addr:int -> len:int -> unit
(** Synchronous write-back (without eviction) of covered dirty lines;
    used before offloaded calls so the far node sees current data. *)

val discard_range : t -> addr:int -> len:int -> unit
(** Drop covered lines {e without} writing them back — used after an
    offloaded function mutated far memory, so stale lines must not
    overwrite it.  Callers flush first ([flush_range]). *)

val resident : t -> addr:int -> bool
(** True if the line covering [addr] is present (testing hook). *)

module Ops : Cache_section.OPS with type t = t
(** The shared cache contract ([prefetch_range] = [prefetch],
    [evict_hint] = [flush_evict]). *)

val handle : t -> Cache_section.handle
(** Pack this section behind the uniform dispatch handle. *)
