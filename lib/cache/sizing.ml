type candidate = {
  cand_id : int;
  options : (int * float) array;
  live_from : int;
  live_to : int;
}

type solution = { assignment : (int * int) list; total_overhead : float }

let phases candidates =
  List.fold_left (fun acc c -> max acc c.live_to) 0 candidates + 1

let feasible ~budget ~usage = Array.for_all (fun u -> u <= budget) usage

let add_usage usage c size sign =
  for phase = c.live_from to c.live_to do
    usage.(phase) <- usage.(phase) + (sign * size)
  done

let solve_brute ~budget candidates =
  let nphases = phases candidates in
  let usage = Array.make nphases 0 in
  let best = ref None in
  let rec go acc total = function
    | [] ->
      if feasible ~budget ~usage then begin
        match !best with
        | Some (_, best_total) when best_total <= total -> ()
        | _ -> best := Some (List.rev acc, total)
      end
    | c :: rest ->
      Array.iter
        (fun (size, overhead) ->
          add_usage usage c size 1;
          go ((c.cand_id, size) :: acc) (total +. overhead) rest;
          add_usage usage c size (-1))
        c.options
  in
  go [] 0.0 candidates;
  match !best with
  | Some (assignment, total_overhead) -> Ok { assignment; total_overhead }
  | None -> Error "no feasible section size assignment fits the budget"

(* Branch and bound: identical search ordered by overhead with a
   lower-bound prune (sum of per-candidate minima of the remainder). *)
let solve ~budget candidates =
  let nphases = phases candidates in
  let usage = Array.make nphases 0 in
  let sorted_opts c =
    let opts = Array.copy c.options in
    Array.sort (fun (_, a) (_, b) -> compare a b) opts;
    opts
  in
  let cands = List.map (fun c -> (c, sorted_opts c)) candidates in
  let rec min_rest = function
    | [] -> 0.0
    | (_, opts) :: rest ->
      (if Array.length opts = 0 then 0.0 else snd opts.(0)) +. min_rest rest
  in
  let best_total = ref infinity in
  let best = ref None in
  let rec go acc total = function
    | [] ->
      if total < !best_total then begin
        best_total := total;
        best := Some (List.rev acc)
      end
    | ((c, opts) :: rest : (candidate * (int * float) array) list) ->
      if total +. min_rest ((c, opts) :: rest) >= !best_total then ()
      else
        Array.iter
          (fun (size, overhead) ->
            add_usage usage c size 1;
            (* Sizes are non-negative, so an already-exceeded phase can
               only stay exceeded: prune infeasible prefixes. *)
            if feasible ~budget ~usage then
              go ((c.cand_id, size) :: acc) (total +. overhead) rest;
            add_usage usage c size (-1))
          opts
  in
  go [] 0.0 cands;
  match !best with
  | Some assignment ->
    (* Restore input order for a stable API. *)
    let in_order =
      List.map
        (fun c -> (c.cand_id, List.assoc c.cand_id assignment))
        candidates
    in
    Ok { assignment = in_order; total_overhead = !best_total }
  | None -> Error "no feasible section size assignment fits the budget"

let interpolate curve size =
  let n = Array.length curve in
  if n = 0 then invalid_arg "Sizing.interpolate: empty curve";
  let sorted = Array.copy curve in
  Array.sort (fun (a, _) (b, _) -> compare a b) sorted;
  let smallest, s_ov = sorted.(0) in
  let largest, l_ov = sorted.(n - 1) in
  if size <= smallest then s_ov
  else if size >= largest then l_ov
  else begin
    let rec seg i =
      let x1, y1 = sorted.(i) in
      let x2, y2 = sorted.(i + 1) in
      if size <= x2 then
        y1 +. ((y2 -. y1) *. float_of_int (size - x1) /. float_of_int (x2 - x1))
      else seg (i + 1)
    in
    seg 0
  end
