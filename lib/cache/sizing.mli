(** Cache-section size selection (§4.3).

    Each candidate section has a sampled size→overhead curve (from
    profiling runs at a few sizes) and a lifetime interval in abstract
    program phases.  We minimize total overhead subject to: at every
    phase, the sizes of the sections live in that phase sum to at most
    the budget.  The paper formulates this as an ILP; our instances are
    tiny (a handful of sections × a handful of sampled sizes), so an
    exact branch-and-bound enumeration finds the same optimum and is
    verified against brute force in the tests. *)

type candidate = {
  cand_id : int;
  options : (int * float) array;  (** (size in bytes, overhead score) *)
  live_from : int;  (** first phase (inclusive) in which the section is live *)
  live_to : int;  (** last phase (inclusive) *)
}

type solution = { assignment : (int * int) list; total_overhead : float }
(** [(cand_id, chosen size)] pairs, in input order. *)

val solve : budget:int -> candidate list -> (solution, string) result
(** Optimal assignment, or [Error] if no combination fits the budget. *)

val solve_brute : budget:int -> candidate list -> (solution, string) result
(** Plain exhaustive enumeration (test oracle for [solve]). *)

val interpolate : (int * float) array -> int -> float
(** Piecewise-linear interpolation of a sampled curve at a size (clamped
    to the sampled range); used to predict overheads between samples. *)
