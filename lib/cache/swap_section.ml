type config = { page : int; capacity : int; side : Mira_sim.Net.side }

type stats = {
  mutable hits : int;
  mutable faults : int;
  mutable readahead_pages : int;
  mutable late_readahead : int;
  mutable evictions : int;
  mutable writebacks : int;
  mutable fault_ns : float;
  mutable stall_ns : float;
  mutable bytes_fetched : int;
  lat_fault : Mira_telemetry.Metrics.hist;
}

let fresh_stats () =
  {
    hits = 0;
    faults = 0;
    readahead_pages = 0;
    late_readahead = 0;
    evictions = 0;
    writebacks = 0;
    fault_ns = 0.0;
    stall_ns = 0.0;
    bytes_fetched = 0;
    lat_fault = Mira_telemetry.Metrics.hist_create ();
  }

type page_state = {
  mutable pno : int;  (* page number; -1 = free *)
  mutable dirty : bool;
  mutable ready_at : float;
  mutable refbit : bool;
  mutable evict_first : bool;
  data : Bytes.t;
}

type t = {
  mutable cfg : config;
  net : Mira_sim.Net.t;
  far : Mira_sim.Cluster.t;
  mutable frames : page_state array;
  table : (int, int) Hashtbl.t;  (* page number -> frame *)
  mutable free_frames : int list;
  mutable hand : int;
  mutable used : int;
  mutable readahead : int -> int list;
  mutable extra_fault_ns : float;
  mutable hint_count : int;  (* pages currently marked evict-first *)
  stats : stats;
  mutable attribution : Mira_telemetry.Attribution.t option;
}

let frame_make page = { pno = -1; dirty = false; ready_at = 0.0; refbit = false;
                        evict_first = false; data = Bytes.make page '\000' }

let create net far cfg =
  assert (cfg.page >= 8 && cfg.capacity >= cfg.page);
  let nframes = max 1 (cfg.capacity / cfg.page) in
  {
    cfg;
    net;
    far;
    frames = Array.init nframes (fun _ -> frame_make cfg.page);
    table = Hashtbl.create (max 16 nframes);
    free_frames = List.init nframes (fun i -> i);
    hand = 0;
    used = 0;
    readahead = (fun _ -> []);
    extra_fault_ns = 0.0;
    hint_count = 0;
    stats = fresh_stats ();
    attribution = None;
  }

let stats t = t.stats
let set_attribution t a = t.attribution <- Some a

let charge_stall t cause stall =
  match t.attribution with
  | None -> ()
  | Some a -> Mira_telemetry.Attribution.charge a ~section:"swap" cause stall

let charge_split t (c : Mira_sim.Net.completion) stall =
  match t.attribution with
  | None -> ()
  | Some a ->
    Mira_telemetry.Attribution.charge_parts a ~section:"swap"
      ~holders:c.Mira_sim.Net.holders
      (Mira_telemetry.Attribution.split_stall ~stall
         ~wire_ns:c.Mira_sim.Net.wire_ns ~queue_ns:c.Mira_sim.Net.queue_ns
         ~retry_ns:c.Mira_sim.Net.retry_ns)

let reset_stats t =
  let d = t.stats in
  d.hits <- 0;
  d.faults <- 0;
  d.readahead_pages <- 0;
  d.late_readahead <- 0;
  d.evictions <- 0;
  d.writebacks <- 0;
  d.fault_ns <- 0.0;
  d.stall_ns <- 0.0;
  d.bytes_fetched <- 0;
  Mira_telemetry.Metrics.hist_reset d.lat_fault

let publish t reg =
  let m = Mira_telemetry.Metrics.set_counter reg in
  let g = Mira_telemetry.Metrics.set_gauge reg in
  let s = t.stats in
  m "swap.hits" s.hits;
  m "swap.faults" s.faults;
  m "swap.readahead_pages" s.readahead_pages;
  m "swap.late_readahead" s.late_readahead;
  m "swap.evictions" s.evictions;
  m "swap.writebacks" s.writebacks;
  m "swap.bytes_fetched" s.bytes_fetched;
  m "swap.capacity_bytes" t.cfg.capacity;
  g "swap.fault_ns" s.fault_ns;
  g "swap.stall_ns" s.stall_ns;
  Mira_telemetry.Metrics.set_hist reg "swap.fault_latency" s.lat_fault

let config t = t.cfg
let set_readahead t f = t.readahead <- f
let set_extra_fault_ns t ns = t.extra_fault_ns <- ns
let capacity_bytes t = t.cfg.capacity
let pages_used t = t.used
let params t = Mira_sim.Net.params t.net

(* Per-page metadata: a PTE-like entry plus LRU state (~32 B). *)
let metadata_bytes t = 32 * Array.length t.frames

(* Causal context for a child request of the access currently being
   executed; [flow] children (detached writebacks, readahead) link
   with flow arrows only. *)
let child_ctx ~flow =
  if Mira_telemetry.Trace.enabled () then
    match Mira_telemetry.Trace.current_ctx () with
    | Some c -> Some { c with Mira_telemetry.Trace.sc_flow = flow }
    | None -> None
  else None

let writeback t ~clock frame ~sync =
  if frame.dirty then begin
    let base = frame.pno * t.cfg.page in
    Mira_sim.Cluster.write t.far ~addr:base ~len:t.cfg.page ~src:frame.data ~src_off:0;
    let node = Mira_sim.Cluster.node_of_addr t.far ~addr:base in
    let req ~flow =
      Mira_sim.Net.Request.write ~node ?ctx:(child_ctx ~flow) ~side:t.cfg.side
        ~purpose:Mira_sim.Net.Writeback t.cfg.page
    in
    let now = Mira_sim.Clock.now clock in
    if sync then begin
      let x = Mira_sim.Net.submit t.net ~now ~urgent:true (req ~flow:false) in
      Mira_sim.Clock.advance clock x.Mira_sim.Net.issue_cpu_ns;
      let c = Mira_sim.Net.await t.net ~now ~id:x.Mira_sim.Net.id in
      let stall =
        Mira_sim.Clock.wait_event clock
          ~ev:(Mira_sim.Clock.Net_completion x.Mira_sim.Net.id)
          c.Mira_sim.Net.done_at
      in
      charge_stall t Mira_telemetry.Attribution.Writeback stall
    end
    else begin
      let x = Mira_sim.Net.submit t.net ~now ~detached:true (req ~flow:true) in
      Mira_sim.Clock.advance clock x.Mira_sim.Net.issue_cpu_ns
    end;
    (* Redundancy fan-out: each live parity row's update (a full copy
       for mirrors, the touched chunk union for EC) rides an
       asynchronous, batchable message — durability is eventual,
       consistency is the cluster's eager parity above. *)
    List.iter
      (fun (rnode, bytes) ->
        let now = Mira_sim.Clock.now clock in
        let x =
          Mira_sim.Net.submit t.net ~now ~detached:true
            (Mira_sim.Net.Request.write ~node:rnode
               ?ctx:(child_ctx ~flow:true) ~side:t.cfg.side
               ~purpose:Mira_sim.Net.Writeback bytes)
        in
        Mira_sim.Clock.advance clock x.Mira_sim.Net.issue_cpu_ns)
      (Mira_sim.Cluster.replica_payloads t.far ~addr:base ~len:t.cfg.page);
    (* A write landing on a down data node decoded the old contents
       from survivors; that read traffic rides detached. *)
    let rb = Mira_sim.Cluster.take_reconstruction t.far in
    if rb > 0 then begin
      let now = Mira_sim.Clock.now clock in
      let x =
        Mira_sim.Net.submit t.net ~now ~detached:true
          (Mira_sim.Net.Request.read
             ~node:(Mira_sim.Cluster.serving_node t.far)
             ?ctx:(child_ctx ~flow:true) ~side:t.cfg.side
             ~purpose:Mira_sim.Net.Demand rb)
      in
      Mira_sim.Clock.advance clock x.Mira_sim.Net.issue_cpu_ns
    end;
    frame.dirty <- false;
    t.stats.writebacks <- t.stats.writebacks + 1
  end

let release_frame t ~clock idx =
  let frame = t.frames.(idx) in
  if frame.pno >= 0 then begin
    writeback t ~clock frame ~sync:false;
    Hashtbl.remove t.table frame.pno;
    frame.pno <- -1;
    frame.refbit <- false;
    if frame.evict_first then t.hint_count <- t.hint_count - 1;
    frame.evict_first <- false;
    t.stats.evictions <- t.stats.evictions + 1;
    t.used <- t.used - 1
  end

let pick_victim t =
  let n = Array.length t.frames in
  (* Evict-first pages (hinted) win; otherwise CLOCK. *)
  let rec hinted i =
    if i >= n then None
    else if t.frames.(i).pno >= 0 && t.frames.(i).evict_first then Some i
    else hinted (i + 1)
  in
  match (if t.hint_count > 0 then hinted 0 else None) with
  | Some i -> i
  | None ->
    let rec sweep budget =
      let idx = t.hand in
      t.hand <- (t.hand + 1) mod n;
      let frame = t.frames.(idx) in
      if budget = 0 then idx
      else if frame.refbit then begin
        frame.refbit <- false;
        sweep (budget - 1)
      end
      else idx
    in
    sweep (2 * n)

let allocate_frame t ~clock =
  match t.free_frames with
  | idx :: rest ->
    t.free_frames <- rest;
    idx
  | [] ->
    let idx = pick_victim t in
    release_frame t ~clock idx;
    idx

(* A fill that had to erasure-decode (its data node down, group within
   quorum) read k survivor chunk ranges instead of one: model the
   extra (k-1)*c bytes as an urgent demand read and charge the wait to
   the [Reconstruct] attribution cause. *)
let charge_reconstruction t ~clock =
  let rb = Mira_sim.Cluster.take_reconstruction t.far in
  if rb > 0 then begin
    let now = Mira_sim.Clock.now clock in
    let x =
      Mira_sim.Net.submit t.net ~now ~urgent:true
        (Mira_sim.Net.Request.read
           ~node:(Mira_sim.Cluster.serving_node t.far)
           ?ctx:(child_ctx ~flow:false) ~side:t.cfg.side
           ~purpose:Mira_sim.Net.Demand rb)
    in
    Mira_sim.Clock.advance clock x.Mira_sim.Net.issue_cpu_ns;
    let c = Mira_sim.Net.await t.net ~now ~id:x.Mira_sim.Net.id in
    let stall =
      Mira_sim.Clock.wait_event clock
        ~ev:(Mira_sim.Clock.Net_completion x.Mira_sim.Net.id)
        c.Mira_sim.Net.done_at
    in
    charge_stall t Mira_telemetry.Attribution.Reconstruct stall;
    if Mira_telemetry.Trace.enabled () then
      Mira_telemetry.Trace.complete ~name:"reconstruct" ~cat:"cluster"
        ~lane:(Mira_sim.Cluster.service_lane t.far) ~ts_ns:now
        ~dur_ns:(Mira_sim.Clock.now clock -. now)
        ~args:[ ("bytes", Mira_telemetry.Json.Int rb) ]
        ()
  end

let install t ~clock ~pno ~ready_at =
  let idx = allocate_frame t ~clock in
  let frame = t.frames.(idx) in
  Mira_sim.Cluster.read t.far ~addr:(pno * t.cfg.page) ~len:t.cfg.page ~dst:frame.data
    ~dst_off:0;
  charge_reconstruction t ~clock;
  frame.pno <- pno;
  frame.dirty <- false;
  frame.ready_at <- ready_at;
  frame.refbit <- true;
  frame.evict_first <- false;
  Hashtbl.replace t.table pno idx;
  t.used <- t.used + 1;
  idx

let prefetch_req ?ctx t ~page =
  Mira_sim.Net.Request.read
    ~node:(Mira_sim.Cluster.node_of_addr t.far ~addr:(page * t.cfg.page))
    ?ctx ~side:t.cfg.side ~purpose:Mira_sim.Net.Prefetch t.cfg.page

let prefetch_page t ~clock ~page =
  if not (Hashtbl.mem t.table page) then begin
    let ctx = child_ctx ~flow:true in
    let now = Mira_sim.Clock.now clock in
    let x = Mira_sim.Net.submit t.net ~now (prefetch_req ?ctx t ~page) in
    Mira_sim.Clock.advance clock x.Mira_sim.Net.issue_cpu_ns;
    t.stats.bytes_fetched <- t.stats.bytes_fetched + t.cfg.page;
    t.stats.readahead_pages <- t.stats.readahead_pages + 1;
    let c = Mira_sim.Net.await t.net ~now ~id:x.Mira_sim.Net.id in
    ignore (install t ~clock ~pno:page ~ready_at:c.Mira_sim.Net.done_at)
  end

(* Readahead cluster: with doorbell batching enabled the whole cluster
   is submitted first and posted as one coalesced message; otherwise
   each page posts (and pays) its own doorbell, exactly like the
   synchronous model. *)
let prefetch_cluster t ~clock pages =
  if not (Mira_sim.Net.dataplane t.net).Mira_sim.Net.coalesce then
    List.iter (fun page -> prefetch_page t ~clock ~page) pages
  else begin
    let pages = List.filter (fun p -> not (Hashtbl.mem t.table p)) pages in
    let ctx = child_ctx ~flow:true in
    let sqes =
      List.map
        (fun page ->
          let x =
            Mira_sim.Net.submit t.net ~now:(Mira_sim.Clock.now clock)
              (prefetch_req ?ctx t ~page)
          in
          Mira_sim.Clock.advance clock x.Mira_sim.Net.issue_cpu_ns;
          t.stats.bytes_fetched <- t.stats.bytes_fetched + t.cfg.page;
          t.stats.readahead_pages <- t.stats.readahead_pages + 1;
          (page, x.Mira_sim.Net.id))
        pages
    in
    Mira_sim.Net.ring t.net ~now:(Mira_sim.Clock.now clock);
    List.iter
      (fun (page, id) ->
        let c = Mira_sim.Net.await t.net ~now:(Mira_sim.Clock.now clock) ~id in
        if not (Hashtbl.mem t.table page) then
          ignore (install t ~clock ~pno:page ~ready_at:c.Mira_sim.Net.done_at))
      sqes
  end

let fault t ~clock ~pno =
  let p = params t in
  let start = Mira_sim.Clock.now clock in
  (* The fill span of this fault: child of the ambient deref, or a
     root of its own trace when the access above is untraced. *)
  let fill =
    if Mira_telemetry.Trace.enabled () then begin
      let module Tr = Mira_telemetry.Trace in
      let trace, parent, site =
        match Tr.current_ctx () with
        | Some c -> (c.Tr.sc_trace, c.Tr.sc_span, c.Tr.sc_site)
        | None -> (Tr.new_trace (), 0, -1)
      in
      Some (trace, parent, Tr.new_span (), site)
    end
    else None
  in
  let fill_ctx =
    Option.map
      (fun (trace, _, span, site) ->
        {
          Mira_telemetry.Trace.sc_trace = trace;
          sc_span = span;
          sc_site = site;
          sc_lane = "swap";
          sc_flow = false;
        })
      fill
  in
  t.stats.faults <- t.stats.faults + 1;
  Mira_sim.Clock.advance clock (p.Mira_sim.Params.page_fault_ns +. t.extra_fault_ns);
  let now = Mira_sim.Clock.now clock in
  let x =
    Mira_sim.Net.submit t.net ~now ~urgent:true
      (Mira_sim.Net.Request.read
         ~node:(Mira_sim.Cluster.node_of_addr t.far ~addr:(pno * t.cfg.page))
         ?ctx:fill_ctx ~side:t.cfg.side ~purpose:Mira_sim.Net.Demand
         t.cfg.page)
  in
  Mira_sim.Clock.advance clock x.Mira_sim.Net.issue_cpu_ns;
  let c = Mira_sim.Net.await t.net ~now ~id:x.Mira_sim.Net.id in
  let idx = install t ~clock ~pno ~ready_at:c.Mira_sim.Net.done_at in
  let stall =
    Mira_sim.Clock.wait_event clock ~ev:Mira_sim.Clock.Cache_fill
      c.Mira_sim.Net.done_at
  in
  charge_split t c stall;
  t.stats.bytes_fetched <- t.stats.bytes_fetched + t.cfg.page;
  (* Readahead decided while the demand page is in flight; the cluster
     rides one coalesced doorbell when batching is enabled. *)
  prefetch_cluster t ~clock
    (List.filter (fun extra -> extra >= 0 && extra <> pno) (t.readahead pno));
  let this_fault_ns = Mira_sim.Clock.now clock -. start in
  t.stats.fault_ns <- t.stats.fault_ns +. this_fault_ns;
  let fill_trace =
    match fill with Some (trace, _, _, _) -> trace | None -> 0
  in
  Mira_telemetry.Metrics.hist_observe ~trace:fill_trace t.stats.lat_fault
    this_fault_ns;
  (match fill with
  | Some (trace, parent, span, _) ->
    let module Tr = Mira_telemetry.Trace in
    Tr.begin_span ~name:"page-fault" ~cat:"cache" ~lane:"swap" ~ts_ns:start
      ~trace ~span ~parent
      ~args:[ ("page", Mira_telemetry.Json.Int pno) ]
      ();
    Tr.end_span ~name:"page-fault" ~cat:"cache" ~lane:"swap"
      ~ts_ns:(start +. this_fault_ns) ~trace ~span ();
    Tr.instant ~name:"serve" ~cat:"cluster"
      ~lane:(Mira_sim.Cluster.service_lane t.far)
      ~ts_ns:(start +. this_fault_ns)
      ~args:
        [
          ("trace", Mira_telemetry.Json.Int trace);
          ("span", Mira_telemetry.Json.Int span);
        ]
      ()
  | None -> ());
  (* With very small frame pools the readahead itself may have evicted
     the demand page; reinstall so the caller's frame is valid (a real
     kernel locks the faulting page instead — no extra cost charged). *)
  if t.frames.(idx).pno = pno then idx
  else begin
    match Hashtbl.find_opt t.table pno with
    | Some idx' -> idx'
    | None -> install t ~clock ~pno ~ready_at:(Mira_sim.Clock.now clock)
  end

let ensure t ~clock ~pno =
  match Hashtbl.find_opt t.table pno with
  | Some idx ->
    let frame = t.frames.(idx) in
    t.stats.hits <- t.stats.hits + 1;
    let stall =
      Mira_sim.Clock.wait_event clock ~ev:Mira_sim.Clock.Cache_fill
        frame.ready_at
    in
    if stall > 0.0 then begin
      t.stats.late_readahead <- t.stats.late_readahead + 1;
      t.stats.stall_ns <- t.stats.stall_ns +. stall;
      (* Late readahead: still waiting on the wire. *)
      charge_stall t Mira_telemetry.Attribution.Demand_wire stall;
      if Mira_telemetry.Trace.enabled () then
        match Mira_telemetry.Trace.current_ctx () with
        | Some ctx ->
          let module Tr = Mira_telemetry.Trace in
          let span = Tr.new_span () in
          let now = Mira_sim.Clock.now clock in
          Tr.begin_span ~name:"late-readahead" ~cat:"cache" ~lane:"swap"
            ~ts_ns:(now -. stall) ~trace:ctx.Tr.sc_trace ~span
            ~parent:ctx.Tr.sc_span ();
          Tr.end_span ~name:"late-readahead" ~cat:"cache" ~lane:"swap"
            ~ts_ns:now ~trace:ctx.Tr.sc_trace ~span ()
        | None -> ()
    end;
    frame.refbit <- true;
    if frame.evict_first then begin
      t.hint_count <- t.hint_count - 1;
      frame.evict_first <- false
    end;
    idx
  | None -> fault t ~clock ~pno

let check_span t ~addr ~len =
  assert (len > 0 && len <= 8);
  assert (addr / t.cfg.page = (addr + len - 1) / t.cfg.page)

let load t ~clock ~addr ~len =
  check_span t ~addr ~len;
  let idx = ensure t ~clock ~pno:(addr / t.cfg.page) in
  Mira_sim.Clock.advance clock (params t).Mira_sim.Params.native_mem_ns;
  let frame = t.frames.(idx) in
  (* straight out of the frame: no staging blit *)
  Mira_util.Bytes_le.get frame.data ~off:(addr mod t.cfg.page) ~len

let store t ~clock ~addr ~len v =
  check_span t ~addr ~len;
  let idx = ensure t ~clock ~pno:(addr / t.cfg.page) in
  Mira_sim.Clock.advance clock (params t).Mira_sim.Params.native_mem_ns;
  let frame = t.frames.(idx) in
  Mira_util.Bytes_le.set frame.data ~off:(addr mod t.cfg.page) ~len v;
  frame.dirty <- true

let iter_pages t ~addr ~len fn =
  let first = addr / t.cfg.page in
  let last = (addr + len - 1) / t.cfg.page in
  for pno = first to last do
    fn pno
  done

let evict_hint t ~clock ~addr ~len =
  iter_pages t ~addr ~len (fun pno ->
      match Hashtbl.find_opt t.table pno with
      | None -> ()
      | Some idx ->
        let frame = t.frames.(idx) in
        writeback t ~clock frame ~sync:false;
        if not frame.evict_first then begin
          frame.evict_first <- true;
          t.hint_count <- t.hint_count + 1
        end)

let flush_range t ~clock ~addr ~len =
  iter_pages t ~addr ~len (fun pno ->
      match Hashtbl.find_opt t.table pno with
      | None -> ()
      | Some idx -> writeback t ~clock t.frames.(idx) ~sync:true)

let discard_range t ~addr ~len =
  iter_pages t ~addr ~len (fun pno ->
      match Hashtbl.find_opt t.table pno with
      | None -> ()
      | Some idx ->
        let frame = t.frames.(idx) in
        frame.dirty <- false;
        Hashtbl.remove t.table pno;
        frame.pno <- -1;
        frame.refbit <- false;
        if frame.evict_first then t.hint_count <- t.hint_count - 1;
        frame.evict_first <- false;
        t.free_frames <- idx :: t.free_frames;
        t.used <- t.used - 1)

(* Failover recovery: re-issue writebacks for all still-dirty pages
   without evicting them (see Section.flush_all). *)
let flush_all t ~clock =
  Array.iter
    (fun frame -> if frame.pno >= 0 && frame.dirty then writeback t ~clock frame ~sync:false)
    t.frames

let drop_all t ~clock =
  Array.iteri (fun idx frame -> if frame.pno >= 0 then release_frame t ~clock idx)
    t.frames;
  Hashtbl.reset t.table;
  t.free_frames <- List.init (Array.length t.frames) (fun i -> i);
  t.hand <- 0

let resize t ~capacity ~clock =
  assert (capacity >= t.cfg.page);
  let nframes = max 1 (capacity / t.cfg.page) in
  let old = t.frames in
  (* Evict everything, reallocate the frame pool, and let demand paging
     repopulate: simple and only used at (re)configuration points. *)
  Array.iteri (fun idx frame -> if frame.pno >= 0 then release_frame t ~clock idx) old;
  Hashtbl.reset t.table;
  t.frames <- Array.init nframes (fun _ -> frame_make t.cfg.page);
  t.free_frames <- List.init nframes (fun i -> i);
  t.hand <- 0;
  t.used <- 0;
  t.cfg <- { t.cfg with capacity }

let resident t ~addr = Hashtbl.mem t.table (addr / t.cfg.page)

let prefetch_range t ~clock ~addr ~len =
  let first = addr / t.cfg.page in
  let last = (addr + len - 1) / t.cfg.page in
  prefetch_cluster t ~clock (List.init (last - first + 1) (fun i -> first + i))

(* --- shared cache contract ---------------------------------------------- *)

module Ops : Cache_section.OPS with type t = t = struct
  type nonrec t = t

  let kind = "swap"
  let load = load
  let store = store

  (* No compiler-proved fast path for the swap cache: a "native" access
     still goes through the page table. *)
  let load_native = load
  let store_native = store
  let prefetch_range = prefetch_range
  let evict_hint = evict_hint
  let flush_range = flush_range
  let discard_range = discard_range
  let flush_all = flush_all
  let drop_all = drop_all
  let publish = publish
  let reset_stats = reset_stats
  let metadata_bytes = metadata_bytes
  let counters t = (t.stats.hits, t.stats.faults)
end

let handle t = Cache_section.Handle ((module Ops), t)
