(** The generic page-granularity swap cache (§5.3).

    Backs everything Mira has not (yet) placed in a custom section, and
    serves as the whole-memory cache for the FastSwap and Leap
    baselines.  Pages are 4 KB (configurable), hits cost a native
    access (the page is MMU-mapped), faults pay the kernel fault path
    plus a page transfer, and eviction follows a global approximate LRU
    (CLOCK).  A pluggable readahead policy receives each faulting page
    number and returns extra pages to prefetch — identity for Mira's
    plain swap, Linux-style cluster readahead for FastSwap, and the
    majority-trend prefetcher for Leap ([Mira_baselines.Leap]).

    A configurable [extra_fault_ns] models cross-thread serialization
    on the kernel swap lock (used by the multithreading figures). *)

type config = {
  page : int;  (** page size in bytes *)
  capacity : int;  (** resident-set budget in bytes *)
  side : Mira_sim.Net.side;
}

type stats = {
  mutable hits : int;
  mutable faults : int;
  mutable readahead_pages : int;
  mutable late_readahead : int;
  mutable evictions : int;
  mutable writebacks : int;
  mutable fault_ns : float;
  mutable stall_ns : float;
  mutable bytes_fetched : int;
  lat_fault : Mira_telemetry.Metrics.hist;
      (** per-fault blocking latency distribution *)
}

type t

val create : Mira_sim.Net.t -> Mira_sim.Cluster.t -> config -> t
val stats : t -> stats
val reset_stats : t -> unit
val config : t -> config

val publish : t -> Mira_telemetry.Metrics.t -> unit
(** Export the swap section's statistics under [swap.*]. *)

val set_attribution : t -> Mira_telemetry.Attribution.t -> unit
(** Route fault, late-readahead, and synchronous-writeback stalls into
    the given ledger under section ["swap"].  Off until set. *)

val set_readahead : t -> (int -> int list) -> unit
(** Install a readahead policy: fault page -> pages to prefetch. *)

val set_extra_fault_ns : t -> float -> unit
(** Extra serialization cost charged per fault (lock contention). *)

val resize : t -> capacity:int -> clock:Mira_sim.Clock.t -> unit
(** Change the resident budget; shrinking evicts pages immediately. *)

val capacity_bytes : t -> int
val pages_used : t -> int

val load : t -> clock:Mira_sim.Clock.t -> addr:int -> len:int -> int64
val store : t -> clock:Mira_sim.Clock.t -> addr:int -> len:int -> int64 -> unit

val prefetch_page : t -> clock:Mira_sim.Clock.t -> page:int -> unit
(** Asynchronous page fetch (used by Mira's swap-section prefetch hints
    and by readahead policies). *)

val prefetch_cluster : t -> clock:Mira_sim.Clock.t -> int list -> unit
(** Prefetch a list of pages; with doorbell batching enabled the whole
    cluster is posted as one coalesced message. *)

val prefetch_range : t -> clock:Mira_sim.Clock.t -> addr:int -> len:int -> unit
(** [prefetch_cluster] over the pages covering [addr, addr+len). *)

val evict_hint : t -> clock:Mira_sim.Clock.t -> addr:int -> len:int -> unit
(** Mark covered pages evict-first and write them back asynchronously. *)

val flush_range : t -> clock:Mira_sim.Clock.t -> addr:int -> len:int -> unit
(** Synchronous write-back of covered dirty pages (offload support). *)

val discard_range : t -> addr:int -> len:int -> unit
(** Drop covered pages without write-back (post-offload invalidation). *)

val flush_all : t -> clock:Mira_sim.Clock.t -> unit
(** Failover recovery: asynchronously re-issue writebacks for all
    still-dirty pages without evicting them. *)

val drop_all : t -> clock:Mira_sim.Clock.t -> unit
val resident : t -> addr:int -> bool
val metadata_bytes : t -> int

module Ops : Cache_section.OPS with type t = t
(** The shared cache contract; [load_native]/[store_native] fall back
    to the page-table path. *)

val handle : t -> Cache_section.handle
(** Pack the swap section behind the uniform dispatch handle. *)
