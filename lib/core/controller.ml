module Ir = Mira_mir.Ir
module Params = Mira_sim.Params
module Section = Mira_cache.Section
module Sizing = Mira_cache.Sizing
module Manager = Mira_cache.Manager
module Runtime = Mira_runtime.Runtime
module Profile = Mira_runtime.Profile
module Machine = Mira_interp.Machine
module Value = Mira_interp.Value
module Pattern = Mira_analysis.Pattern
module Lifetime = Mira_analysis.Lifetime
module Pipeline = Mira_passes.Pipeline
module Instrument = Mira_passes.Instrument
module Decision = Mira_telemetry.Decision
module Trace = Mira_telemetry.Trace
module Log = Mira_telemetry.Log

type options = {
  params : Params.t;
  local_budget : int;
  far_capacity : int;
  dataplane : Mira_sim.Net.dp_config;
  cluster : Mira_sim.Cluster.spec;
  placement_candidates : Mira_sim.Cluster.placement list;
  max_iterations : int;
  size_samples : float list;
  nthreads : int;
  tenants : int;
  seed : int;
  feat_sections : bool;
  feat_prefetch : bool;
  feat_evict : bool;
  feat_fusion : bool;
  feat_native : bool;
  feat_offload : bool;
  always_accept : bool;
  verbose : bool;
}

let options_default ~local_budget ~far_capacity =
  {
    params = Params.default;
    local_budget;
    far_capacity;
    dataplane = Mira_sim.Net.dp_default;
    cluster = Mira_sim.Cluster.spec_default;
    placement_candidates = [];
    max_iterations = 3;
    size_samples = [ 0.15; 0.35; 0.7 ];
    nthreads = 1;
    tenants = 1;
    seed = 42;
    feat_sections = true;
    feat_prefetch = true;
    feat_evict = true;
    feat_fusion = true;
    feat_native = true;
    feat_offload = false;
    always_accept = false;
    verbose = false;
  }

type assignment = { a_spec : Section_planner.spec; a_size : int }

type compiled = {
  c_program : Ir.program;
  c_original : Ir.program;
  c_plan : Pipeline.plan;
  c_assignments : assignment list;
  c_options : options;
  c_iterations : int;
  c_work_ns : float;
  c_log : Decision.t list;
}

let log_strings c = List.map Decision.render c.c_log

let work_function (p : Ir.program) =
  if List.mem_assoc "work" p.Ir.p_funcs then "work" else p.Ir.p_entry

(* --- running one configuration ------------------------------------------ *)

let make_runtime opts =
  Runtime.create
    Runtime.Config.(
      make ~local_budget:opts.local_budget ~far_capacity:opts.far_capacity
      |> with_params opts.params
      |> with_page opts.params.Params.page_size
      |> with_local_capacity (max opts.far_capacity (1 lsl 20))
      |> with_dataplane opts.dataplane
      |> with_cluster opts.cluster
      |> with_tenants opts.tenants)

(* Apply section assignments to a fresh runtime.  Read-only sections are
   split per-thread when running multithreaded (§4.6); shared writable
   sections are forced fully-associative. *)
let apply_assignments opts rt assignments =
  let mgr = Runtime.manager rt in
  let clock = Mira_sim.Clock.create () in
  let next_id = ref 0 in
  let fresh_id () =
    incr next_id;
    !next_id
  in
  List.iter
    (fun { a_spec; a_size } ->
      let base_cfg = a_spec.Section_planner.sp_cfg in
      let multi = opts.nthreads > 1 in
      if multi && a_spec.Section_planner.sp_private_ok then begin
        let per = max base_cfg.Section.line (a_size / opts.nthreads) in
        let ids =
          Array.init opts.nthreads (fun _ ->
              let id = fresh_id () in
              let cfg =
                { base_cfg with
                  Section.sec_id = id;
                  sec_name = Printf.sprintf "%s.t%d" base_cfg.Section.sec_name id;
                  size = per }
              in
              match Manager.add_section mgr ~clock cfg with
              | Ok _ -> id
              | Error msg -> failwith msg)
        in
        List.iter
          (fun site -> Runtime.set_private_sections rt ~site ~sec_ids:ids)
          a_spec.Section_planner.sp_sites
      end
      else begin
        let structure =
          if multi then Section.Full_assoc else base_cfg.Section.structure
        in
        let id = fresh_id () in
        let cfg =
          { base_cfg with Section.sec_id = id; size = a_size; structure }
        in
        match Manager.add_section mgr ~clock cfg with
        | Ok _ ->
          List.iter
            (fun site -> Manager.assign_site mgr ~site ~sec_id:id)
            a_spec.Section_planner.sp_sites
        | Error msg -> failwith msg
      end)
    assignments

let measure_work ms machine =
  let result = Machine.run machine in
  let stats = Profile.fn_stats ms.Mira_runtime.Memsys.profile in
  let work_ns =
    match List.assoc_opt "work" stats with
    | Some s -> s.Profile.total_ns
    | None -> ms.Mira_runtime.Memsys.elapsed ()
  in
  (result, work_ns)

(* Evaluate a (program, assignments) pair on a fresh runtime; the
   program must already carry the instrumentation it needs. *)
let eval opts program assignments =
  let rt = make_runtime opts in
  apply_assignments opts rt assignments;
  let ms = Runtime.memsys rt in
  let machine =
    Machine.create ~nthreads:opts.nthreads ~seed:opts.seed
      ~honor_offload:opts.feat_offload ms program
  in
  let result, work_ns = measure_work ms machine in
  (result, work_ns, rt)

(* --- analysis aggregation ------------------------------------------------ *)

let heap_sites program =
  Ir.fold_ops
    (fun acc op ->
      match op with
      | Ir.Alloc { site; space = Ir.Heap; _ } -> site :: acc
      | Ir.Alloc _ | Ir.Bin _ | Ir.Fbin _ | Ir.Cmp _ | Ir.Fcmp _ | Ir.Not _
      | Ir.I2f _ | Ir.F2i _ | Ir.Mov _ | Ir.Free _ | Ir.Gep _ | Ir.Load _
      | Ir.Store _ | Ir.Call _ | Ir.For _ | Ir.ParFor _ | Ir.While _ | Ir.If _
      | Ir.Ret _ | Ir.Prefetch _ | Ir.FlushEvict _ | Ir.EvictSite _
      | Ir.ProfEnter _ | Ir.ProfExit _ ->
        acc)
    []
    (List.concat_map (fun (_, f) -> f.Ir.f_body) program.Ir.p_funcs)
  |> List.sort_uniq compare

(* Merge a site's per-function summaries: the section must serve the
   most demanding pattern the site ever exhibits (a sequential scan
   still works in an element-line associative section, but a random
   update stream in a big-line direct section is disastrous), and the
   read/write flags must hold across every scope. *)
let demand_rank = function
  | Pattern.Pointer_chase -> 4
  | Pattern.Indirect _ -> 3
  | Pattern.Random -> 2
  | Pattern.Strided _ -> 1
  | Pattern.Sequential _ -> 0

let summarize_sites program ~within sites =
  let per_fn =
    Mira_analysis.Remotable_flow.analyze_all program
    |> List.filter (fun (fn, _) -> List.mem fn within)
  in
  List.filter_map
    (fun site ->
      let candidates =
        List.filter_map
          (fun (_fn, (r : Pattern.result)) ->
            match Pattern.summary_for r site with
            | Some ss ->
              let interval =
                match List.assoc_opt site (Lifetime.site_phases r) with
                | Some iv -> (iv.Lifetime.first_phase, iv.Lifetime.last_phase)
                | None -> (0, 0)
              in
              Some (ss, interval)
            | None -> None)
          per_fn
      in
      match candidates with
      | [] -> None
      | (first, iv0) :: rest ->
        let merged =
          List.fold_left
            (fun ((acc : Pattern.site_summary), iv) ((ss : Pattern.site_summary), iv') ->
              let kind =
                if demand_rank ss.Pattern.ss_kind > demand_rank acc.Pattern.ss_kind
                then ss.Pattern.ss_kind
                else acc.Pattern.ss_kind
              in
              ( {
                  acc with
                  Pattern.ss_kind = kind;
                  ss_reads = acc.Pattern.ss_reads + ss.Pattern.ss_reads;
                  ss_writes = acc.Pattern.ss_writes + ss.Pattern.ss_writes;
                  ss_fields_read =
                    List.sort_uniq compare
                      (acc.Pattern.ss_fields_read @ ss.Pattern.ss_fields_read);
                  ss_fields_written =
                    List.sort_uniq compare
                      (acc.Pattern.ss_fields_written @ ss.Pattern.ss_fields_written);
                  ss_elem = max acc.Pattern.ss_elem ss.Pattern.ss_elem;
                  ss_read_only = acc.Pattern.ss_read_only && ss.Pattern.ss_read_only;
                  ss_write_only =
                    acc.Pattern.ss_write_only && ss.Pattern.ss_write_only;
                },
                (min (fst iv) (fst iv'), max (snd iv) (snd iv')) ))
            (first, iv0) rest
        in
        Some merged)
    sites

(* --- sizing --------------------------------------------------------------- *)

let size_specs opts specs ~build_plan ~iter =
  let page = opts.params.Params.page_size in
  let budget = opts.local_budget in
  let body_ops_hint = 64 in
  let seq, nonseq =
    List.partition (fun s -> s.Section_planner.sp_seq) specs
  in
  let seq_assignments =
    List.map
      (fun s ->
        let line = s.Section_planner.sp_cfg.Section.line in
        let window =
          Section_planner.seq_section_bytes ~params:opts.params ~line
            ~body_ops:body_ops_hint
        in
        (* Small streamed-and-reused objects become fully resident: the
           section holds the whole group, so re-scans never refetch. *)
        let total =
          Mira_util.Misc.round_up
            (max line s.Section_planner.sp_total_bytes) line
        in
        let size = if total <= 2 * window then total else window in
        { a_spec = s; a_size = max s.Section_planner.sp_min_size size })
      seq
  in
  (* Cap the sequential sections' share of the budget: a third when
     other sections still need sampling room, most of it otherwise. *)
  let reserve = max (2 * page) (budget / 16) in
  let seq_cap = if nonseq = [] then max page (budget - reserve) else budget / 3 in
  let seq_total = List.fold_left (fun a x -> a + x.a_size) 0 seq_assignments in
  let seq_assignments =
    if seq_total > seq_cap then begin
      let scale = float_of_int seq_cap /. float_of_int seq_total in
      List.map
        (fun a ->
          let line = a.a_spec.Section_planner.sp_cfg.Section.line in
          let scaled =
            Mira_util.Misc.round_up
              (max a.a_spec.Section_planner.sp_min_size
                 (int_of_float (float_of_int a.a_size *. scale)))
              line
          in
          { a with a_size = scaled })
        seq_assignments
    end
    else seq_assignments
  in
  let seq_total = List.fold_left (fun a x -> a + x.a_size) 0 seq_assignments in
  let avail = budget - seq_total - reserve in
  if nonseq = [] then (seq_assignments, [])
  else begin
    (* Sample each non-sequential section's overhead at a few sizes by
       actually running the program (others at an equal share). *)
    let k = List.length nonseq in
    let equal_share = max page (avail / max 1 k) in
    let sample_logs = ref [] in
    let candidates =
      List.mapi
        (fun idx spec ->
          let resident =
            Mira_util.Misc.round_up
              (max spec.Section_planner.sp_min_size
                 spec.Section_planner.sp_total_bytes)
              spec.Section_planner.sp_cfg.Section.line
          in
          let sample_sizes =
            (if resident <= avail then [ resident ] else [])
            @ List.map
                (fun frac ->
                  Mira_util.Misc.round_up
                    (max spec.Section_planner.sp_min_size
                       (int_of_float (float_of_int avail *. frac)))
                    spec.Section_planner.sp_cfg.Section.line)
                opts.size_samples
            |> List.sort_uniq compare
          in
          let options =
            List.filter_map
              (fun size ->
                if size > avail then None
                else begin
                  let assignments =
                    seq_assignments
                    @ List.mapi
                        (fun j s ->
                          {
                            a_spec = s;
                            a_size =
                              (if j = idx then size
                               else
                                 max s.Section_planner.sp_min_size
                                   (min equal_share (avail - size) / max 1 (k - 1)));
                          })
                        nonseq
                  in
                  match
                    eval opts (build_plan ()) assignments
                  with
                  | _, work_ns, _ ->
                    sample_logs :=
                      Decision.Size_sample
                        {
                          iteration = iter;
                          sec_id = spec.Section_planner.sp_cfg.Section.sec_id;
                          size;
                          work_ns;
                        }
                      :: !sample_logs;
                    Some (size, work_ns)
                  | exception _ -> None
                end)
              sample_sizes
          in
          {
            Sizing.cand_id = spec.Section_planner.sp_cfg.Section.sec_id;
            options = Array.of_list options;
            live_from = fst spec.Section_planner.sp_interval;
            live_to = snd spec.Section_planner.sp_interval;
          })
        nonseq
    in
    let ilp_assignment =
      match Sizing.solve ~budget:avail (List.filter (fun c -> Array.length c.Sizing.options > 0) candidates) with
      | Ok solution ->
        List.map
          (fun spec ->
            let size =
              match
                List.assoc_opt spec.Section_planner.sp_cfg.Section.sec_id
                  solution.Sizing.assignment
              with
              | Some s -> s
              | None -> max spec.Section_planner.sp_min_size (avail / max 1 k)
            in
            { a_spec = spec; a_size = size })
          nonseq
      | Error _ ->
        List.map
          (fun spec ->
            { a_spec = spec;
              a_size = max spec.Section_planner.sp_min_size (avail / max 1 k) })
          nonseq
    in
    (* Per-spec sampling treats sections independently; also try two
       joint allocations (space proportional to object size, and
       resident-greedy by profiled overhead) and keep whichever measures
       best — phase-disjoint specs may share bytes, checked per phase. *)
    let phases_max assignment =
      let top =
        List.fold_left
          (fun acc a -> max acc (snd a.a_spec.Section_planner.sp_interval))
          0 assignment
      in
      let worst = ref 0 in
      for ph = 0 to top do
        let u =
          List.fold_left
            (fun acc a ->
              let lo, hi = a.a_spec.Section_planner.sp_interval in
              if lo <= ph && ph <= hi then acc + a.a_size else acc)
            0 assignment
        in
        worst := max !worst u
      done;
      !worst
    in
    let clamp_spec spec size =
      let line = spec.Section_planner.sp_cfg.Section.line in
      let resident =
        Mira_util.Misc.round_up
          (max spec.Section_planner.sp_min_size spec.Section_planner.sp_total_bytes)
          line
      in
      Mira_util.Misc.round_up
        (Mira_util.Misc.clamp ~lo:spec.Section_planner.sp_min_size ~hi:resident size)
        line
    in
    let total_all =
      List.fold_left (fun acc s -> acc + s.Section_planner.sp_total_bytes) 0 nonseq
    in
    let proportional =
      List.map
        (fun spec ->
          let share =
            avail * spec.Section_planner.sp_total_bytes / max 1 total_all
          in
          { a_spec = spec; a_size = clamp_spec spec share })
        nonseq
    in
    let resident_greedy =
      (* Everything resident, relying on phase disjointness for space. *)
      List.map
        (fun spec -> { a_spec = spec; a_size = clamp_spec spec max_int })
        nonseq
    in
    let feasible assignment = phases_max assignment <= avail in
    let joint_candidates =
      List.filter feasible [ proportional; resident_greedy ]
    in
    let measure assignment =
      match eval opts (build_plan ()) (seq_assignments @ assignment) with
      | _, work_ns, _ -> work_ns
      | exception _ -> infinity
    in
    let best_joint =
      List.fold_left
        (fun (best_t, best_a) cand ->
          let t = measure cand in
          sample_logs :=
            Decision.Joint_sample { iteration = iter; work_ns = t }
            :: !sample_logs;
          if t < best_t then (t, cand) else (best_t, best_a))
        (infinity, ilp_assignment) joint_candidates
    in
    let assignments =
      let ilp_t = measure ilp_assignment in
      if fst best_joint < ilp_t then snd best_joint else ilp_assignment
    in
    (seq_assignments @ assignments, List.rev !sample_logs)
  end

(* --- the iterative loop --------------------------------------------------- *)

let build_plan_for opts assignments ~instrument =
  let selected =
    List.concat_map (fun a -> a.a_spec.Section_planner.sp_sites) assignments
  in
  let lines =
    List.concat_map
      (fun a ->
        List.map
          (fun site -> (site, a.a_spec.Section_planner.sp_cfg.Section.line))
          a.a_spec.Section_planner.sp_sites)
      assignments
  in
  let read_only_all =
    List.for_all
      (fun a -> a.a_spec.Section_planner.sp_cfg.Section.read_discard)
      assignments
  in
  {
    Pipeline.selected;
    lines;
    fuse = opts.feat_fusion;
    prefetch = opts.feat_prefetch;
    evict = opts.feat_evict && (opts.nthreads = 1 || read_only_all);
    native = opts.feat_native;
    offload = (if opts.feat_offload then `Auto else `None);
    instrument;
  }

let optimize opts original =
  Log.set_level (if opts.verbose then Log.Info else Log.Quiet);
  let log = ref [] in
  (* Controller phases happen in host time, which the simulation never
     sees; to still give them a trace lane we lay them out on a
     synthetic sequence clock: consecutive fixed-width spans, in
     decision order.  docs/OBSERVABILITY.md explains the convention. *)
  let seq = ref 0.0 in
  let phase name =
    if Trace.enabled () then begin
      Trace.complete ~name ~cat:"controller" ~lane:"controller" ~ts_ns:!seq
        ~dur_ns:1000.0 ();
      seq := !seq +. 1000.0
    end
  in
  let decide d =
    log := d :: !log;
    Log.info "%s" (Decision.render d);
    if Trace.enabled () then
      Trace.instant ~name:(Decision.name d) ~cat:"controller"
        ~lane:"controller" ~ts_ns:!seq
        ~args:[ ("detail", Decision.to_json d) ]
        ()
  in
  (* Iteration 0: generic swap, fully instrumented. *)
  phase "profile";
  let prog0 = Instrument.run original in
  let _, base_ns, rt0 = eval opts prog0 [] in
  decide (Decision.Profile_run { iteration = 0; work_ns = base_ns });
  (* Placement axis: how stripes map to cluster nodes is searched like
     section sizing — measure the instrumented baseline under each
     candidate layout and keep the fastest one for every subsequent
     compile and the final runtime. *)
  let opts =
    match opts.placement_candidates with
    | [] -> opts
    | cands ->
      phase "placement";
      let scored =
        List.map
          (fun pl ->
            let o =
              { opts with
                cluster =
                  { opts.cluster with Mira_sim.Cluster.placement = pl } }
            in
            let _, ns, _ = eval o prog0 [] in
            decide
              (Decision.Placement_sample
                 {
                   iteration = 0;
                   placement = Mira_sim.Cluster.placement_name pl;
                   work_ns = ns;
                 });
            (ns, o))
          cands
      in
      let _, best_o =
        List.fold_left
          (fun (bn, bo) (n, o) -> if n < bn then (n, o) else (bn, bo))
          (List.hd scored) (List.tl scored)
      in
      best_o
  in
  let profile0 = Runtime.profile rt0 in
  let heap = heap_sites original in
  (* Scope selection to the measured function's dynamic call tree:
     initialization code is not part of what the paper (or we) report. *)
  let allowed_functions =
    let rec close acc name =
      if List.mem name acc then acc
      else begin
        match List.assoc_opt name original.Ir.p_funcs with
        | None -> acc
        | Some f ->
          Ir.fold_ops
            (fun acc op ->
              match op with
              | Ir.Call { callee; _ } -> close acc callee
              | Ir.Bin _ | Ir.Fbin _ | Ir.Cmp _ | Ir.Fcmp _ | Ir.Not _
              | Ir.I2f _ | Ir.F2i _ | Ir.Mov _ | Ir.Alloc _ | Ir.Free _
              | Ir.Gep _ | Ir.Load _ | Ir.Store _ | Ir.For _ | Ir.ParFor _
              | Ir.While _ | Ir.If _ | Ir.Ret _ | Ir.Prefetch _
              | Ir.FlushEvict _ | Ir.EvictSite _ | Ir.ProfEnter _
              | Ir.ProfExit _ ->
                acc)
            (name :: acc) f.Ir.f_body
      end
    in
    close [] (work_function original)
  in
  let best = ref (base_ns, prog0, [], Pipeline.plan_default, 0) in
  let profile = ref profile0 in
  let continue_ = ref opts.feat_sections in
  let i = ref 0 in
  while !continue_ && !i < opts.max_iterations do
    incr i;
    let frac = 0.1 *. float_of_int !i in
    let funcs =
      Profile.top_functions !profile ~frac:1.0
      |> List.filter (fun f -> List.mem f allowed_functions)
      |> (fun fs ->
           let n = List.length fs in
           let keep =
             Mira_util.Misc.clamp ~lo:1 ~hi:(max 1 n)
               (int_of_float (ceil (frac *. float_of_int n)))
           in
           List.filteri (fun i _ -> i < keep) fs)
    in
    let sites =
      Profile.largest_sites !profile ~frac:(2.0 *. frac) ~among:funcs
      |> List.filter (fun s -> List.mem s heap)
    in
    phase "select";
    decide (Decision.Select { iteration = !i; functions = funcs; sites });
    if sites = [] then continue_ := false
    else begin
      phase "analyze";
      let summaries = summarize_sites original ~within:allowed_functions sites in
      List.iter
        (fun ((ss : Pattern.site_summary), _) ->
          decide
            (Decision.Analyze
               {
                 iteration = !i;
                 site = ss.Pattern.ss_site;
                 pattern = Pattern.kind_to_string ss.Pattern.ss_kind;
                 elem = ss.Pattern.ss_elem;
                 read_only = ss.Pattern.ss_read_only;
                 write_only = ss.Pattern.ss_write_only;
               }))
        summaries;
      let site_bytes site =
        match List.assoc_opt site (Profile.site_stats !profile) with
        | Some st -> st.Profile.alloc_bytes
        | None -> 0
      in
      phase "plan";
      let specs =
        Section_planner.plan ~params:opts.params ~summaries ~site_bytes
          ~first_id:1
      in
      let build_plan () =
        (* Program used during size sampling: compiled for these specs
           with minimal sizes (instrumented so `work` is measured). *)
        let tentative =
          List.map (fun s -> { a_spec = s; a_size = s.Section_planner.sp_min_size }) specs
        in
        Mira_passes.Pipeline.apply original
          (build_plan_for opts tentative ~instrument:true)
          ~params:opts.params
      in
      phase "size";
      let assignments, sample_log =
        size_specs opts specs ~build_plan ~iter:!i
      in
      List.iter decide sample_log;
      List.iter
        (fun a ->
          let cfg = a.a_spec.Section_planner.sp_cfg in
          decide
            (Decision.Plan_section
               {
                 iteration = !i;
                 name = cfg.Section.sec_name;
                 line = cfg.Section.line;
                 size = a.a_size;
                 structure =
                   (match cfg.Section.structure with
                   | Section.Direct -> "direct"
                   | Section.Set_assoc k -> Printf.sprintf "set%d" k
                   | Section.Full_assoc -> "full");
                 sites = a.a_spec.Section_planner.sp_sites;
               }))
        assignments;
      phase "compile";
      let plan = build_plan_for opts assignments ~instrument:true in
      let prog = Mira_passes.Pipeline.apply original plan ~params:opts.params in
      match eval opts prog assignments with
      | _, work_ns, rt ->
        let best_ns, _, _, _, _ = !best in
        decide
          (Decision.Measure { iteration = !i; work_ns; best_ns });
        if work_ns < best_ns || opts.always_accept then begin
          phase "accept";
          decide (Decision.Accept { iteration = !i; work_ns });
          best := (work_ns, prog, assignments, plan, !i);
          profile := Runtime.profile rt;
          if work_ns > 0.98 *. best_ns && not opts.always_accept then
            continue_ := false
        end
        else begin
          (* Roll back to the previous configuration but keep iterating
             with a wider selection (§4.1). *)
          phase "rollback";
          decide (Decision.Rollback { iteration = !i; reason = "regression" })
        end
      | exception e ->
        phase "rollback";
        decide
          (Decision.Rollback
             {
               iteration = !i;
               reason = Printf.sprintf "failed (%s)" (Printexc.to_string e);
             })
    end
  done;
  let best_ns, _, assignments, plan, iters = !best in
  (* Final compilation: no profiling except the measured work function. *)
  let final_plan = { plan with Pipeline.instrument = false } in
  let final_prog =
    Mira_passes.Pipeline.apply original final_plan ~params:opts.params
    |> Instrument.run_only ~names:[ work_function original ]
  in
  {
    c_program = final_prog;
    c_original = original;
    c_plan = final_plan;
    c_assignments = assignments;
    c_options = opts;
    c_iterations = iters;
    c_work_ns = best_ns;
    c_log = List.rev !log;
  }

let instantiate compiled =
  let opts = compiled.c_options in
  let rt = make_runtime opts in
  apply_assignments opts rt compiled.c_assignments;
  let machine =
    Machine.create ~nthreads:opts.nthreads ~seed:opts.seed
      ~honor_offload:opts.feat_offload (Runtime.memsys rt) compiled.c_program
  in
  (rt, machine)

let run compiled =
  let rt, machine = instantiate compiled in
  let result, work_ns = measure_work (Runtime.memsys rt) machine in
  (result, work_ns)
