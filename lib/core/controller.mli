(** The iterative optimization controller (§3, Figure 1).

    Starting from the swap-everything configuration, each iteration:
    profiles a run, picks the top-N% highest-cache-overhead functions
    (N grows 10%, 20%, ... per iteration) and the largest objects they
    touch, analyzes their access patterns, plans cache sections
    ([Section_planner]), sizes them (sampled profiling + the
    [Mira_cache.Sizing] ILP), compiles the program against the plan
    ([Mira_passes.Pipeline]), and keeps the result only if it actually
    improved — otherwise it rolls back (§4.1).  Iteration stops at the
    configured limit or when the gain falls under 2%. *)

type options = {
  params : Mira_sim.Params.t;
  local_budget : int;
  far_capacity : int;
  dataplane : Mira_sim.Net.dp_config;
      (** network data-plane settings for every runtime the controller
          creates (window, doorbell batching, fault injection) *)
  cluster : Mira_sim.Cluster.spec;
      (** far-memory cluster topology and crash schedule for every
          runtime the controller creates *)
  placement_candidates : Mira_sim.Cluster.placement list;
      (** data-plane layouts to sample during optimization (searched
          like section sizes; the fastest wins and is carried into the
          final runtime).  Empty (the default) keeps [cluster]'s own
          placement with no extra measurement runs. *)
  max_iterations : int;
  size_samples : float list;  (** budget fractions sampled for non-
                                  sequential sections *)
  nthreads : int;
  tenants : int;
      (** tenant contexts on every runtime the controller creates
          ([Mira_runtime.Runtime.Config.with_tenants]); 1 = the
          historical single-tenant mode *)
  seed : int;
  feat_sections : bool;  (** ablation toggles (Figures 6/15/21/23) *)
  feat_prefetch : bool;
  feat_evict : bool;
  feat_fusion : bool;
  feat_native : bool;
  feat_offload : bool;
  always_accept : bool;  (** keep the last configuration even if it
                             regressed (ablation studies / debugging) *)
  verbose : bool;
}

val options_default : local_budget:int -> far_capacity:int -> options

type assignment = { a_spec : Section_planner.spec; a_size : int }

type compiled = {
  c_program : Mira_mir.Ir.program;  (** final program, [work] instrumented *)
  c_original : Mira_mir.Ir.program;
  c_plan : Mira_passes.Pipeline.plan;
  c_assignments : assignment list;
  c_options : options;
  c_iterations : int;  (** profiling-optimization rounds executed *)
  c_work_ns : float;  (** best measured work time during optimization *)
  c_log : Mira_telemetry.Decision.t list;  (** decision trace, oldest first *)
}

val log_strings : compiled -> string list
(** [c_log] rendered as the classic human-readable log lines
    ([Mira_telemetry.Decision.render]), oldest first. *)

val optimize : options -> Mira_mir.Ir.program -> compiled
(** Run the full iterative flow. *)

val instantiate :
  compiled -> Mira_runtime.Runtime.t * Mira_interp.Machine.t
(** Fresh runtime with the compiled section configuration applied, and
    a machine ready to run the compiled program. *)

val run : compiled -> Mira_interp.Value.t * float
(** Execute on a fresh instantiation; returns the program result and
    the measured simulated time of [work] (ns). *)

val measure_work :
  Mira_runtime.Memsys.t -> Mira_interp.Machine.t -> Mira_interp.Value.t * float
(** Run a machine's entry and return (result, work-function time).
    Used by benches to time baselines identically. *)

val work_function : Mira_mir.Ir.program -> string
(** The measured function: ["work"] when defined, else the entry. *)
