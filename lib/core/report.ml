module Section = Mira_cache.Section
module Swap = Mira_cache.Swap_section
module Manager = Mira_cache.Manager
module Runtime = Mira_runtime.Runtime
module Pipeline = Mira_passes.Pipeline

let structure_name = function
  | Section.Direct -> "direct"
  | Section.Set_assoc k -> Printf.sprintf "set-assoc(%d)" k
  | Section.Full_assoc -> "full-assoc"

let side_name = function
  | Mira_sim.Net.One_sided -> "one-sided"
  | Mira_sim.Net.Two_sided -> "two-sided"

let flags (cfg : Section.config) =
  List.filter_map
    (fun (cond, name) -> if cond then Some name else None)
    [
      (cfg.Section.no_meta, "no-meta");
      (cfg.Section.write_no_fetch, "write-no-fetch");
      (cfg.Section.read_discard, "read-discard");
    ]

let describe (c : Controller.compiled) =
  let buf = Buffer.create 512 in
  let plan = c.Controller.c_plan in
  Buffer.add_string buf
    (Printf.sprintf "compiled after %d iteration(s); best work time %.3f ms\n"
       c.Controller.c_iterations
       (c.Controller.c_work_ns /. 1e6));
  let opt_names =
    List.filter_map
      (fun (on, name) -> if on then Some name else None)
      [
        (plan.Pipeline.fuse, "batching");
        (plan.Pipeline.prefetch, "prefetch");
        (plan.Pipeline.evict, "evict-hints");
        (plan.Pipeline.native, "native-deref");
        (plan.Pipeline.offload <> `None, "offload");
      ]
  in
  Buffer.add_string buf
    (Printf.sprintf "optimizations: %s\n"
       (if opt_names = [] then "(none)" else String.concat ", " opt_names));
  if c.Controller.c_assignments = [] then
    Buffer.add_string buf "sections: none (generic swap configuration)\n"
  else begin
    Buffer.add_string buf "sections:\n";
    List.iter
      (fun (a : Controller.assignment) ->
        let cfg = a.Controller.a_spec.Section_planner.sp_cfg in
        Buffer.add_string buf
          (Printf.sprintf "  %-8s %-12s line=%-5dB size=%-6dKB %-10s [%s]  sites={%s}\n"
             cfg.Section.sec_name
             (structure_name cfg.Section.structure)
             cfg.Section.line
             (a.Controller.a_size / 1024)
             (side_name cfg.Section.side)
             (String.concat "," (flags cfg))
             (String.concat ","
                (List.map string_of_int a.Controller.a_spec.Section_planner.sp_sites))))
      c.Controller.c_assignments
  end;
  Buffer.contents buf

module Json = Mira_telemetry.Json
module Metrics = Mira_telemetry.Metrics

let to_json (c : Controller.compiled) =
  let plan = c.Controller.c_plan in
  let opts = c.Controller.c_options in
  let optimizations =
    List.filter_map
      (fun (on, name) -> if on then Some (Json.Str name) else None)
      [
        (plan.Pipeline.fuse, "batching");
        (plan.Pipeline.prefetch, "prefetch");
        (plan.Pipeline.evict, "evict-hints");
        (plan.Pipeline.native, "native-deref");
        (plan.Pipeline.offload <> `None, "offload");
      ]
  in
  let sections =
    List.map
      (fun (a : Controller.assignment) ->
        let cfg = a.Controller.a_spec.Section_planner.sp_cfg in
        Json.Obj
          [
            ("name", Json.Str cfg.Section.sec_name);
            ("structure", Json.Str (structure_name cfg.Section.structure));
            ("line_bytes", Json.Int cfg.Section.line);
            ("size_bytes", Json.Int a.Controller.a_size);
            ("side", Json.Str (side_name cfg.Section.side));
            ("flags", Json.List (List.map (fun f -> Json.Str f) (flags cfg)));
            ( "sites",
              Json.List
                (List.map
                   (fun s -> Json.Int s)
                   a.Controller.a_spec.Section_planner.sp_sites) );
          ])
      c.Controller.c_assignments
  in
  Json.Obj
    [
      ("iterations", Json.Int c.Controller.c_iterations);
      ("work_ns", Json.Float c.Controller.c_work_ns);
      ("optimizations", Json.List optimizations);
      ("sections", Json.List sections);
      ( "options",
        Json.Obj
          [
            ("local_budget", Json.Int opts.Controller.local_budget);
            ("far_capacity", Json.Int opts.Controller.far_capacity);
            ("max_iterations", Json.Int opts.Controller.max_iterations);
            ("nthreads", Json.Int opts.Controller.nthreads);
            ("seed", Json.Int opts.Controller.seed);
          ] );
      ( "decisions",
        Json.List
          (List.map Mira_telemetry.Decision.to_json c.Controller.c_log) );
    ]

let runtime_metrics rt =
  let reg = Metrics.create () in
  Runtime.publish rt reg;
  reg

module Attribution = Mira_telemetry.Attribution

let attribution_json rt =
  let attr = Runtime.attribution rt in
  (match Attribution.check attr with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Report.attribution_json: " ^ msg));
  Attribution.to_json attr

let runtime_stats_json rt = Metrics.to_json (runtime_metrics rt)

let runtime_stats rt =
  let buf = Buffer.create 512 in
  let mgr = Runtime.manager rt in
  List.iter
    (fun s ->
      let st = Section.stats s in
      let cfg = Section.config s in
      Buffer.add_string buf
        (Printf.sprintf
           "section %-8s hits=%-9d misses=%-7d late-pf=%-5d evictions=%-7d \
            (hinted %d) writebacks=%-7d hit=%.2fms miss=%.2fms stall=%.2fms\n"
           cfg.Section.sec_name st.Section.hits st.Section.misses
           st.Section.late_prefetch st.Section.evictions
           st.Section.hinted_evictions st.Section.writebacks
           (st.Section.hit_ns /. 1e6) (st.Section.miss_ns /. 1e6)
           (st.Section.stall_ns /. 1e6)))
    (Manager.sections mgr);
  let sw = Swap.stats (Manager.swap mgr) in
  Buffer.add_string buf
    (Printf.sprintf
       "swap     cap=%dKB hits=%d faults=%d readahead=%d late=%d fault=%.2fms \
        stall=%.2fms\n"
       (Swap.capacity_bytes (Manager.swap mgr) / 1024)
       sw.Swap.hits sw.Swap.faults sw.Swap.readahead_pages sw.Swap.late_readahead
       (sw.Swap.fault_ns /. 1e6) (sw.Swap.stall_ns /. 1e6));
  let net = Mira_sim.Net.stats (Runtime.net rt) in
  Buffer.add_string buf
    (Printf.sprintf
       "network  msgs=%d in=%dKB out=%dKB (demand=%dKB prefetch=%dKB \
        writeback=%dKB rpc=%dKB)\n"
       net.Mira_sim.Net.msg_count
       (net.Mira_sim.Net.bytes_in / 1024)
       (net.Mira_sim.Net.bytes_out / 1024)
       (net.Mira_sim.Net.bytes_demand / 1024)
       (net.Mira_sim.Net.bytes_prefetch / 1024)
       (net.Mira_sim.Net.bytes_writeback / 1024)
       (net.Mira_sim.Net.bytes_rpc / 1024));
  let attr = Runtime.attribution rt in
  let total = Attribution.total_ns attr in
  if total > 0.0 then begin
    (match Attribution.check attr with
    | Ok () -> ()
    | Error msg ->
      Buffer.add_string buf (Printf.sprintf "stall    LEDGER AUDIT FAILED: %s\n" msg));
    Buffer.add_string buf
      (Printf.sprintf "stall    total=%.2fms (clock stall %.2fms)\n" (total /. 1e6)
         (Runtime.clock_stall_ns rt /. 1e6));
    List.iter
      (fun (cause, ns) ->
        if ns > 0.0 then
          Buffer.add_string buf
            (Printf.sprintf "  %-17s %10.2fms  %5.1f%%\n"
               (Attribution.cause_name cause) (ns /. 1e6) (100.0 *. ns /. total)))
      (Attribution.by_cause attr)
  end;
  let cl = Mira_sim.Cluster.stats (Runtime.cluster rt) in
  if
    cl.Mira_sim.Cluster.crashes > 0
    || cl.Mira_sim.Cluster.replication_bytes > 0
  then begin
    Buffer.add_string buf
      (Printf.sprintf
         "cluster  crashes=%d failovers=%d replicated=%dKB resync=%dKB \
          lost=%dB node_down=%d\n"
         cl.Mira_sim.Cluster.crashes cl.Mira_sim.Cluster.failovers
         (cl.Mira_sim.Cluster.replication_bytes / 1024)
         (cl.Mira_sim.Cluster.resync_bytes / 1024)
         cl.Mira_sim.Cluster.lost_bytes net.Mira_sim.Net.node_down);
    let k, m = Mira_sim.Cluster.scheme (Runtime.cluster rt) in
    Buffer.add_string buf
      (Printf.sprintf "scheme   ec=(%d,%d) reconstructions=%d decoded=%dKB\n" k
         m cl.Mira_sim.Cluster.reconstructions
         (cl.Mira_sim.Cluster.reconstructed_bytes / 1024));
    if Mira_sim.Cluster.degraded (Runtime.cluster rt) then begin
      Buffer.add_string buf "degraded mode: far data lost; per-object bytes:\n";
      List.iter
        (fun (site, bytes) ->
          Buffer.add_string buf
            (Printf.sprintf "  site %-4d lost=%dB\n" site bytes))
        (Runtime.lost_bytes_by_site rt)
    end
  end;
  Buffer.contents buf
