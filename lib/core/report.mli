(** Human-readable summaries of a compiled Mira configuration:
    the planned sections, the compilation plan, and per-run cache /
    network statistics.  Used by the CLI and the examples. *)

val describe : Controller.compiled -> string
(** Multi-line description: iterations, work time, one line per
    section (name, structure, line, size, flags, sites), and the
    enabled optimizations. *)

val runtime_stats : Mira_runtime.Runtime.t -> string
(** Post-run statistics: per-section hits/misses/evictions and
    hit/miss/stall time, swap-section behaviour, and network traffic
    by purpose. *)

val to_json : Controller.compiled -> Mira_telemetry.Json.t
(** Machine-readable report: iterations, best work time, enabled
    optimizations, planned sections, key options, and the full typed
    decision trace.  Schema in docs/OBSERVABILITY.md. *)

val runtime_metrics : Mira_runtime.Runtime.t -> Mira_telemetry.Metrics.t
(** Fresh registry with every runtime/cache/network metric published
    ([Mira_runtime.Runtime.publish]). *)

val runtime_stats_json : Mira_runtime.Runtime.t -> Mira_telemetry.Json.t
(** [runtime_metrics] rendered as one JSON object keyed by metric name
    (including [net.fetch_latency] percentiles). *)

val attribution_json : Mira_runtime.Runtime.t -> Mira_telemetry.Json.t
(** The stall-attribution ledger ([Mira_runtime.Runtime.attribution])
    rendered as JSON: total, per-cause, per-section, per-site and
    per-function breakdowns.  Audits the ledger first and raises
    [Invalid_argument] if the double-entry check fails (a publisher
    charged a cell without the running total — a bug, never expected
    in a release build). *)
