(** Human-readable summaries of a compiled Mira configuration:
    the planned sections, the compilation plan, and per-run cache /
    network statistics.  Used by the CLI and the examples. *)

val describe : Controller.compiled -> string
(** Multi-line description: iterations, work time, one line per
    section (name, structure, line, size, flags, sites), and the
    enabled optimizations. *)

val runtime_stats : Mira_runtime.Runtime.t -> string
(** Post-run statistics: per-section hits/misses/evictions and
    hit/miss/stall time, swap-section behaviour, and network traffic
    by purpose. *)
