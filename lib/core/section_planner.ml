module Pattern = Mira_analysis.Pattern
module Section = Mira_cache.Section
module Params = Mira_sim.Params
module Misc = Mira_util.Misc

(* Sequential line size: cover many elements per dereference, but stay
   within what the network moves efficiently — beyond ~bandwidth*RTT/8
   the per-line transfer time dominates the latency it amortizes
   (Figure 9 flattens around 2 KB on a 50 Gbps / 3 µs link). *)
let seq_line_bytes ~params ~elem =
  let p = params in
  let network_sweet =
    p.Params.bandwidth_bytes_per_ns *. p.Params.one_sided_rtt_ns /. 8.0
  in
  let cap = Misc.clamp ~lo:256 ~hi:8192 (int_of_float network_sweet) in
  let line = Misc.next_pow2 cap / 2 in
  Misc.round_up (max 256 line) (max 8 elem)

(* Random/indirect line: exactly one element (avoid amplification). *)
let elem_line_bytes ~elem = Misc.round_up (max 8 elem) 8

let seq_section_bytes ~params ~line ~body_ops =
  (* Enough lines to cover the in-flight prefetch window twice. *)
  let iter_ns =
    (float_of_int (max 1 body_ops) *. params.Params.native_op_ns)
    +. (2.0 *. params.Params.native_mem_ns)
  in
  let dist = int_of_float (ceil (params.Params.one_sided_rtt_ns /. iter_ns)) in
  let lines = Misc.clamp ~lo:16 ~hi:4096 (4 * Misc.divide_ceil (dist * 8) line + 16) in
  lines * line

type spec = {
  sp_sites : int list;
  sp_cfg : Section.config;
  sp_seq : bool;
  sp_min_size : int;
  sp_total_bytes : int;
  sp_private_ok : bool;
  sp_interval : int * int;
}

(* The per-site configuration decision; sites deciding identically (and
   with overlapping lifetimes) are grouped into one section. *)
type decision = {
  d_line : int;
  d_structure : Section.structure;
  d_side : Mira_sim.Net.side;
  d_payload : int option;
  d_no_meta : bool;
  d_write_no_fetch : bool;
  d_read_discard : bool;
  d_seq : bool;
}

let decide ~params (ss : Pattern.site_summary) =
  let elem = ss.Pattern.ss_elem in
  let fields_touched =
    List.sort_uniq compare (ss.Pattern.ss_fields_read @ ss.Pattern.ss_fields_written)
  in
  (* Selective transmission applies when a strict subset of an element's
     fields is touched; each field slot is 8 bytes in this IR. *)
  let touched_bytes = 8 * List.length fields_touched in
  let partial = elem > 8 && touched_bytes < elem / 2 in
  let seq_kind =
    match ss.Pattern.ss_kind with
    | Pattern.Sequential _ | Pattern.Strided _ -> true
    | Pattern.Indirect _ | Pattern.Pointer_chase | Pattern.Random -> false
  in
  let line =
    if seq_kind then seq_line_bytes ~params ~elem else elem_line_bytes ~elem
  in
  let structure =
    match ss.Pattern.ss_kind with
    | Pattern.Sequential _ | Pattern.Strided _ -> Section.Direct
    | Pattern.Indirect _ | Pattern.Pointer_chase -> Section.Set_assoc 8
    | Pattern.Random -> Section.Full_assoc
  in
  let side, payload =
    if partial && not seq_kind then (Mira_sim.Net.Two_sided, Some touched_bytes)
    else (Mira_sim.Net.One_sided, None)
  in
  (* Sequential read-only / write-only groups are true streams whose
     size saturates at the prefetch window; sequential read-write
     buffers are re-scanned (GPT's activations), so their size matters
     and must be sampled like the non-sequential sections. *)
  let streaming =
    seq_kind && (ss.Pattern.ss_read_only || ss.Pattern.ss_write_only)
  in
  {
    d_line = line;
    d_structure = structure;
    d_side = side;
    d_payload = payload;
    d_no_meta = seq_kind;
    (* Fetch-free stores are safe when streaming writes cover whole
       lines before any read, or unconditionally when the line is a
       single 8-byte slot (every store covers its entire line). *)
    d_write_no_fetch = (ss.Pattern.ss_write_only && seq_kind) || line <= 8;
    d_read_discard = ss.Pattern.ss_read_only;
    d_seq = streaming;
  }

let overlap (a1, a2) (b1, b2) = a1 <= b2 && b1 <= a2

let plan ~params ~summaries ~site_bytes ~first_id =
  let decided =
    List.map
      (fun ((ss : Pattern.site_summary), interval) ->
        (ss, interval, decide ~params ss))
      summaries
  in
  (* Grouping: streaming sections (pure read or write streams) merge by
     configuration alone — phased streams (GPT-2's per-layer weights)
     time-multiplex one small window naturally.  Non-streaming sections
     occupy space for their whole lifetime, so only lifetime-overlapping
     sites merge; disjoint ones stay separate and the sizing ILP lets
     them share the same bytes at different phases. *)
  let groups : (decision * (int * int) * int list) list ref = ref [] in
  List.iter
    (fun ((ss : Pattern.site_summary), interval, d) ->
      let mergeable iv' =
        if d.d_seq then true else overlap iv' interval
      in
      let rec place = function
        | [] -> [ (d, interval, [ ss.Pattern.ss_site ]) ]
        | (d', iv', sites) :: rest when d' = d && mergeable iv' ->
          let merged =
            (min (fst iv') (fst interval), max (snd iv') (snd interval))
          in
          (d', merged, ss.Pattern.ss_site :: sites) :: rest
        | g :: rest -> g :: place rest
      in
      groups := place !groups)
    decided;
  List.mapi
    (fun i (d, interval, sites) ->
      let sec_id = first_id + i in
      let name = Printf.sprintf "sec%d" sec_id in
      let min_size =
        match d.d_structure with
        | Section.Set_assoc k -> k * d.d_line
        | Section.Direct | Section.Full_assoc -> 4 * d.d_line
      in
      let total =
        List.fold_left (fun acc site -> acc + site_bytes site) 0 sites
      in
      {
        sp_sites = List.rev sites;
        sp_cfg =
          {
            Section.sec_id;
            sec_name = name;
            line = d.d_line;
            size = min_size;  (* overwritten by the sizer *)
            structure = d.d_structure;
            side = d.d_side;
            payload = d.d_payload;
            no_meta = d.d_no_meta;
            write_no_fetch = d.d_write_no_fetch;
            read_discard = d.d_read_discard;
          };
        sp_seq = d.d_seq;
        sp_min_size = min_size;
        sp_total_bytes = total;
        sp_private_ok =
          (match d.d_read_discard with true -> true | false -> false);
        sp_interval = interval;
      })
    (List.rev !groups)
