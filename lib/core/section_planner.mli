(** Decides cache-section configurations from analysis + profiling
    (§4.2): line size, structure, communication side, selective-
    transmission payload, and the read/write/no-metadata flags.

    The rules implement the paper's reasoning:
    - line size: no larger than the access granularity for random/
      indirect patterns (avoid amplification); as large as the network
      transmits efficiently for sequential ones (big lines amortize the
      per-line dereference);
    - structure: direct-mapped for sequential/strided (no conflicts),
      set-associative when a locality set exists (indirect / pointer
      chase), fully-associative otherwise;
    - side: one-sided when whole elements are consumed, two-sided with
      a fields-only payload when the scope touches a strict subset of
      fields (selective transmission, §4.5/§4.7);
    - flags: read-only sections drop lines without write-back,
      write-only sequential sections skip fetch-on-write, and
      fully-compiler-controlled sequential sections run metadata-free. *)

type spec = {
  sp_sites : int list;  (** sites grouped into this section *)
  sp_cfg : Mira_cache.Section.config;  (** [size] filled by the sizer *)
  sp_seq : bool;  (** sequential/strided: size is a small constant *)
  sp_min_size : int;  (** smallest useful size in bytes *)
  sp_total_bytes : int;  (** combined allocated bytes of the sites *)
  sp_private_ok : bool;  (** read-only: may be split per-thread *)
  sp_interval : int * int;  (** lifetime phases (from, to) *)
}

val plan :
  params:Mira_sim.Params.t ->
  summaries:(Mira_analysis.Pattern.site_summary * (int * int)) list ->
  site_bytes:(int -> int) ->
  first_id:int ->
  spec list
(** One spec per pattern group; sites with equal configuration
    decisions share a section.  [summaries] pairs each selected site's
    summary with its lifetime interval. *)

val seq_line_bytes : params:Mira_sim.Params.t -> elem:int -> int
(** The sequential-section line size rule (exposed for Figure 9). *)

val seq_section_bytes :
  params:Mira_sim.Params.t -> line:int -> body_ops:int -> int
(** Size needed to hold the prefetch window of a streaming section. *)
