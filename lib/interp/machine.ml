module Ir = Mira_mir.Ir
module Types = Mira_mir.Types
module Memsys = Mira_runtime.Memsys
module Sim = Mira_sim

exception Return of Value.t

type t = {
  ms : Memsys.t;
  program : Ir.program;
  nthreads : int;
  honor_offload : bool;
  prng : Mira_util.Prng.t;
  mutable ops : int;
  mutable par_depth : int;
}

type frame = {
  regs : Value.t array;
  mutable stack_allocs : Value.t list;  (* stack pointers to free on exit *)
}

let create ?(nthreads = 1) ?(seed = 42) ?(honor_offload = true) ms program =
  Mira_mir.Verifier.verify_exn program;
  {
    ms;
    program;
    nthreads = max 1 nthreads;
    honor_offload;
    prng = Mira_util.Prng.create seed;
    ops = 0;
    par_depth = 0;
  }

let memsys t = t.ms
let nthreads t = t.nthreads
let ops_executed t = t.ops

let params t = Sim.Net.params t.ms.Memsys.net

let operand frame = function
  | Ir.Oreg r -> frame.regs.(r)
  | Ir.Oint i -> Value.Vint i
  | Ir.Ofloat f -> Value.Vfloat f
  | Ir.Obool b -> Value.Vbool b
  | Ir.Ounit -> Value.Vunit

let int_binop op a b =
  let open Int64 in
  match op with
  | Ir.Add -> add a b
  | Ir.Sub -> sub a b
  | Ir.Mul -> mul a b
  | Ir.Div -> if b = 0L then failwith "division by zero" else div a b
  | Ir.Rem -> if b = 0L then failwith "remainder by zero" else rem a b
  | Ir.Land -> logand a b
  | Ir.Lor -> logor a b
  | Ir.Lxor -> logxor a b
  | Ir.Shl -> shift_left a (to_int b land 63)
  | Ir.Shr -> shift_right_logical a (to_int b land 63)

let float_binop op a b =
  match op with
  | Ir.Fadd -> a +. b
  | Ir.Fsub -> a -. b
  | Ir.Fmul -> a *. b
  | Ir.Fdiv -> a /. b

let cmp_int op a b =
  let c = Int64.compare a b in
  match op with
  | Ir.Eq -> c = 0
  | Ir.Ne -> c <> 0
  | Ir.Lt -> c < 0
  | Ir.Le -> c <= 0
  | Ir.Gt -> c > 0
  | Ir.Ge -> c >= 0

let cmp_float op a b =
  match op with
  | Ir.Eq -> a = b
  | Ir.Ne -> a <> b
  | Ir.Lt -> a < b
  | Ir.Le -> a <= b
  | Ir.Gt -> a > b
  | Ir.Ge -> a >= b

let intrinsic t name args =
  match (name, args) with
  | "rand_int", [ bound ] ->
    let b = Int64.to_int (Value.as_int bound) in
    if b <= 0 then Value.Vint 0L
    else Value.Vint (Int64.of_int (Mira_util.Prng.int t.prng b))
  | "exp", [ x ] -> Value.Vfloat (exp (Value.as_float x))
  | "sqrt", [ x ] -> Value.Vfloat (sqrt (Value.as_float x))
  | "tanh", [ x ] -> Value.Vfloat (tanh (Value.as_float x))
  | "log", [ x ] -> Value.Vfloat (log (Value.as_float x))
  | "fabs", [ x ] -> Value.Vfloat (abs_float (Value.as_float x))
  | _ ->
    failwith (Printf.sprintf "unknown intrinsic %s or bad arity" name)

let load_len ty = match ty with Types.Unit -> 0 | _ -> 8

let shift_ptr (p : Memsys.ptr) delta =
  { p with Memsys.addr = p.Memsys.addr + delta }

let rec exec_block t ~tid frame block = List.iter (exec_op t ~tid frame) block

and exec_op t ~tid frame op =
  t.ops <- t.ops + 1;
  let p = params t in
  let charge ns = t.ms.Memsys.op_cost ~tid ns in
  charge p.Sim.Params.native_op_ns;
  match op with
  | Ir.Bin (r, o, a, b) ->
    frame.regs.(r) <-
      Value.Vint (int_binop o (Value.as_int (operand frame a)) (Value.as_int (operand frame b)))
  | Ir.Fbin (r, o, a, b) ->
    frame.regs.(r) <-
      Value.Vfloat
        (float_binop o (Value.as_float (operand frame a)) (Value.as_float (operand frame b)))
  | Ir.Cmp (r, o, a, b) ->
    frame.regs.(r) <-
      Value.Vbool (cmp_int o (Value.as_int (operand frame a)) (Value.as_int (operand frame b)))
  | Ir.Fcmp (r, o, a, b) ->
    frame.regs.(r) <-
      Value.Vbool
        (cmp_float o (Value.as_float (operand frame a)) (Value.as_float (operand frame b)))
  | Ir.Not (r, a) -> frame.regs.(r) <- Value.Vbool (not (Value.as_bool (operand frame a)))
  | Ir.I2f (r, a) -> frame.regs.(r) <- Value.Vfloat (Int64.to_float (Value.as_int (operand frame a)))
  | Ir.F2i (r, a) -> frame.regs.(r) <- Value.Vint (Int64.of_float (Value.as_float (operand frame a)))
  | Ir.Mov (r, a) -> frame.regs.(r) <- operand frame a
  | Ir.Alloc { dst; site; elem; count; space } ->
    let n = Int64.to_int (Value.as_int (operand frame count)) in
    let bytes = max 8 (n * Types.size_of elem) in
    let heap = match space with Ir.Heap -> true | Ir.Stack -> false in
    let ptr = t.ms.Memsys.alloc ~tid ~site ~bytes ~heap in
    let v = Value.Vptr ptr in
    if not heap then frame.stack_allocs <- v :: frame.stack_allocs;
    frame.regs.(dst) <- v
  | Ir.Free { ptr; site = _ } ->
    t.ms.Memsys.free ~tid ~ptr:(Value.as_ptr (operand frame ptr))
  | Ir.Gep { dst; base; index; elem; field_off } ->
    let bp = Value.as_ptr (operand frame base) in
    let idx = Int64.to_int (Value.as_int (operand frame index)) in
    frame.regs.(dst) <-
      Value.Vptr (shift_ptr bp ((idx * Types.size_of elem) + field_off))
  | Ir.Load { dst; ty; ptr; meta } ->
    let pv = Value.as_ptr (operand frame ptr) in
    let len = load_len ty in
    if len = 0 then frame.regs.(dst) <- Value.Vunit
    else begin
      let bits = t.ms.Memsys.load ~tid ~ptr:pv ~len ~native:meta.Ir.am_native in
      frame.regs.(dst) <- Value.decode ty bits
    end
  | Ir.Store { ty; ptr; value; meta } ->
    let pv = Value.as_ptr (operand frame ptr) in
    let len = load_len ty in
    if len > 0 then begin
      let bits = Value.encode ty (operand frame value) in
      t.ms.Memsys.store ~tid ~ptr:pv ~len ~native:meta.Ir.am_native ~value:bits
    end
  | Ir.Call { dst; callee; args } ->
    let argv = List.map (operand frame) args in
    frame.regs.(dst) <- do_call t ~tid callee argv
  | Ir.For { iv; lo; hi; step; body } ->
    let lo = Value.as_int (operand frame lo) in
    let hi = Value.as_int (operand frame hi) in
    let step = Value.as_int (operand frame step) in
    let i = ref lo in
    while Int64.compare !i hi < 0 do
      frame.regs.(iv) <- Value.Vint !i;
      exec_block t ~tid frame body;
      charge p.Sim.Params.native_op_ns;
      i := Int64.add !i step
    done
  | Ir.ParFor { iv; lo; hi; step; body } ->
    exec_parfor t ~tid frame ~iv ~lo ~hi ~step ~body
  | Ir.While { cond; cond_val; body } ->
    let continue_ = ref true in
    while !continue_ do
      exec_block t ~tid frame cond;
      if Value.as_bool (operand frame cond_val) then begin
        exec_block t ~tid frame body;
        charge p.Sim.Params.native_op_ns
      end
      else continue_ := false
    done
  | Ir.If { cond; then_; else_ } ->
    if Value.as_bool (operand frame cond) then exec_block t ~tid frame then_
    else exec_block t ~tid frame else_
  | Ir.Ret v -> raise (Return (operand frame v))
  | Ir.Prefetch { ptr; len; meta = _ } ->
    let pv = operand frame ptr in
    if not (Value.is_null pv) then
      t.ms.Memsys.prefetch ~tid ~ptr:(Value.as_ptr pv) ~len
  | Ir.FlushEvict { ptr; len; meta = _ } ->
    let pv = operand frame ptr in
    if not (Value.is_null pv) then
      t.ms.Memsys.flush_evict ~tid ~ptr:(Value.as_ptr pv) ~len
  | Ir.EvictSite site -> t.ms.Memsys.evict_site ~tid ~site
  | Ir.ProfEnter name ->
    charge p.Sim.Params.prof_event_ns;
    t.ms.Memsys.enter ~tid name
  | Ir.ProfExit name ->
    charge p.Sim.Params.prof_event_ns;
    t.ms.Memsys.exit_ ~tid name

and exec_parfor t ~tid frame ~iv ~lo ~hi ~step ~body =
  let lo = Value.as_int (operand frame lo) in
  let hi = Value.as_int (operand frame hi) in
  let step = Value.as_int (operand frame step) in
  let total = Int64.to_int (Int64.div (Int64.sub hi lo) step) in
  let nthreads = if t.par_depth > 0 || tid <> 0 then 1 else t.nthreads in
  if nthreads = 1 || total <= 1 then begin
    (* Sequential fallback (nested parallelism or tiny trip count). *)
    let i = ref lo in
    while Int64.compare !i hi < 0 do
      frame.regs.(iv) <- Value.Vint !i;
      exec_block t ~tid frame body;
      i := Int64.add !i step
    done
  end
  else begin
    t.par_depth <- t.par_depth + 1;
    t.ms.Memsys.set_nthreads nthreads;
    let fork_time = Sim.Clock.now (t.ms.Memsys.clock ~tid) in
    let chunk = (total + nthreads - 1) / nthreads in
    let max_end = ref fork_time in
    for worker = 0 to nthreads - 1 do
      let wtid = worker in
      let clock = t.ms.Memsys.clock ~tid:wtid in
      ignore (Sim.Clock.wait_until clock fork_time);
      let first = worker * chunk in
      let last = min total (first + chunk) in
      let wframe = { regs = Array.copy frame.regs; stack_allocs = [] } in
      for k = first to last - 1 do
        let i = Int64.add lo (Int64.mul (Int64.of_int k) step) in
        wframe.regs.(iv) <- Value.Vint i;
        exec_block t ~tid:wtid wframe body
      done;
      List.iter
        (fun v -> t.ms.Memsys.free ~tid:wtid ~ptr:(Value.as_ptr v))
        wframe.stack_allocs;
      max_end := Float.max !max_end (Sim.Clock.now clock)
    done;
    (* Join: every participating clock advances to the barrier. *)
    for worker = 0 to nthreads - 1 do
      ignore (Sim.Clock.wait_until (t.ms.Memsys.clock ~tid:worker) !max_end)
    done;
    ignore (Sim.Clock.wait_until (t.ms.Memsys.clock ~tid) !max_end);
    t.ms.Memsys.set_nthreads 1;
    t.par_depth <- t.par_depth - 1
  end

and do_call t ~tid callee argv =
  match Ir.find_func t.program callee with
  | exception Not_found -> intrinsic t callee argv
  | f ->
    if List.length argv <> List.length f.Ir.f_params then
      failwith (Printf.sprintf "call @%s: arity mismatch" callee);
    let p = params t in
    let charge ns = t.ms.Memsys.op_cost ~tid ns in
    charge p.Sim.Params.native_op_ns;
    let frame = { regs = Array.make (max 1 f.Ir.f_nregs) Value.Vunit; stack_allocs = [] } in
    List.iteri (fun i (r, _) -> frame.regs.(r) <- List.nth argv i) f.Ir.f_params;
    let offloaded = f.Ir.f_offloaded && t.honor_offload in
    let run_body () =
      match exec_block t ~tid frame f.Ir.f_body with
      | () -> Value.Vunit
      | exception Return v -> v
    in
    let result =
      if not offloaded then run_body ()
      else begin
        (* §4.8: flush accessed sites, ship arguments, execute on the far
           node, ship the result back, invalidate stale cached lines. *)
        let attr = t.ms.Memsys.attribution in
        Mira_telemetry.Attribution.set_context attr ~fn:callee ~site:(-1);
        t.ms.Memsys.flush_sites ~tid ~sites:f.Ir.f_offload_sites;
        let clock = t.ms.Memsys.clock ~tid in
        let args_bytes = 8 * List.length argv in
        let call_cost =
          Sim.Rpc.issue t.ms.Memsys.net ~now:(Sim.Clock.now clock) ~args_bytes
        in
        Sim.Clock.advance clock p.Sim.Params.msg_cpu_ns;
        let stall = Sim.Clock.wait_until clock call_cost.Sim.Rpc.send_done_at in
        (* The issue wait covers the pre-RPC write fence first, then the
           argument ship on the wire. *)
        let fence_part =
          Float.min stall (Float.max 0.0 call_cost.Sim.Rpc.fence_wait_ns)
        in
        Mira_telemetry.Attribution.charge attr Mira_telemetry.Attribution.Fence
          fence_part;
        Mira_telemetry.Attribution.charge attr
          Mira_telemetry.Attribution.Demand_wire (stall -. fence_part);
        t.ms.Memsys.offload_begin ~tid;
        let v = run_body () in
        t.ms.Memsys.offload_end ~tid;
        let done_at =
          Sim.Rpc.complete t.ms.Memsys.net ~body_done_at:(Sim.Clock.now clock)
            ~ret_bytes:8
        in
        Mira_telemetry.Attribution.set_context attr ~fn:callee ~site:(-1);
        Mira_telemetry.Attribution.charge attr
          Mira_telemetry.Attribution.Demand_wire
          (Sim.Clock.wait_until clock done_at);
        t.ms.Memsys.discard_sites ~tid ~sites:f.Ir.f_offload_sites;
        v
      end
    in
    List.iter
      (fun v -> t.ms.Memsys.free ~tid ~ptr:(Value.as_ptr v))
      frame.stack_allocs;
    result

let call t name argv = do_call t ~tid:0 name argv

let run t = call t t.program.Ir.p_entry []

let run_timed t =
  let before = t.ms.Memsys.elapsed () in
  let v = run t in
  (v, t.ms.Memsys.elapsed () -. before)
