(** The IR interpreter with simulated-time cost accounting.

    Executes a verified program against any [Mira_runtime.Memsys.t]
    (Mira's runtime or a baseline).  Every op advances the current
    thread's simulated clock; loads/stores move real data through the
    memory system; [ParFor] partitions iterations over the configured
    number of simulated threads with fork/join clock semantics;
    offloaded functions run in far-node mode behind an RPC.

    The machine is deterministic given its seed (the [rand_int]
    intrinsic is the only source of randomness). *)

type t

val create :
  ?nthreads:int -> ?seed:int -> ?honor_offload:bool ->
  Mira_runtime.Memsys.t -> Mira_mir.Ir.program -> t
(** [honor_offload] (default true) lets benchmarks disable offloading
    for ablation without recompiling. *)

val memsys : t -> Mira_runtime.Memsys.t
val nthreads : t -> int

val call : t -> string -> Value.t list -> Value.t
(** Invoke a function by name.  Raises [Failure] on arity mismatch or
    runtime type errors. *)

val run : t -> Value.t
(** Invoke the entry function with no arguments. *)

val run_timed : t -> Value.t * float
(** [run] plus the total elapsed simulated nanoseconds (max over all
    thread clocks) consumed by the call. *)

val ops_executed : t -> int
(** Dynamic op count since creation (sanity metric for tests). *)
