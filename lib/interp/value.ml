module Memsys = Mira_runtime.Memsys
module Types = Mira_mir.Types

type t =
  | Vunit
  | Vbool of bool
  | Vint of int64
  | Vfloat of float
  | Vptr of Memsys.ptr

let null = Vptr { Memsys.space = Memsys.Local; addr = 0; site = -1 }

let is_null = function
  | Vptr p -> p.Memsys.addr = 0
  | Vint 0L -> true
  | Vunit | Vbool _ | Vint _ | Vfloat _ -> false

let addr_mask = 0xFFFF_FFFF_FFFFL

let ptr_bits (p : Memsys.ptr) =
  let space_bit = match p.Memsys.space with Memsys.Local -> 0L | Memsys.Far -> 1L in
  let site_bits = Int64.of_int ((p.Memsys.site + 1) land 0x7FFF) in
  Int64.logor
    (Int64.shift_left space_bit 63)
    (Int64.logor
       (Int64.shift_left site_bits 48)
       (Int64.logand (Int64.of_int p.Memsys.addr) addr_mask))

let bits_ptr bits =
  let space =
    if Int64.shift_right_logical bits 63 = 1L then Memsys.Far else Memsys.Local
  in
  let site = Int64.to_int (Int64.logand (Int64.shift_right_logical bits 48) 0x7FFFL) - 1 in
  let addr = Int64.to_int (Int64.logand bits addr_mask) in
  { Memsys.space; addr; site }

let encode ty v =
  match (ty, v) with
  | _, Vint i when Types.equal ty Types.F64 -> Int64.bits_of_float (Int64.to_float i)
  | Types.F64, Vfloat f -> Int64.bits_of_float f
  | Types.F64, _ -> invalid_arg "Value.encode: expected float"
  | (Types.I64 | Types.Bool), Vint i -> i
  | (Types.I64 | Types.Bool), Vbool b -> if b then 1L else 0L
  | (Types.I64 | Types.Bool), Vptr p -> ptr_bits p
  | (Types.I64 | Types.Bool), Vfloat f -> Int64.of_float f
  | Types.Ptr _, Vptr p -> ptr_bits p
  | Types.Ptr _, Vint 0L -> 0L
  | Types.Ptr _, Vint i -> i  (* pre-serialized pointer bits *)
  | Types.Ptr _, _ -> invalid_arg "Value.encode: expected pointer"
  | (Types.Unit | Types.Struct _), _ ->
    invalid_arg "Value.encode: cannot store unit/struct directly"
  | (Types.I64 | Types.Bool), Vunit -> invalid_arg "Value.encode: unit"

let decode ty bits =
  match ty with
  | Types.I64 -> Vint bits
  | Types.Bool -> Vbool (bits <> 0L)
  | Types.F64 -> Vfloat (Int64.float_of_bits bits)
  | Types.Ptr _ -> Vptr (bits_ptr bits)
  | Types.Unit -> Vunit
  | Types.Struct _ -> invalid_arg "Value.decode: struct loads must be per-field"

let as_int = function
  | Vint i -> i
  | Vbool b -> if b then 1L else 0L
  | Vptr p -> ptr_bits p
  | Vfloat f -> Int64.of_float f
  | Vunit -> invalid_arg "Value.as_int: unit"

let as_float = function
  | Vfloat f -> f
  | Vint i -> Int64.to_float i
  | Vbool _ | Vptr _ | Vunit -> invalid_arg "Value.as_float"

let as_bool = function
  | Vbool b -> b
  | Vint i -> i <> 0L
  | Vfloat _ | Vptr _ | Vunit -> invalid_arg "Value.as_bool"

let as_ptr = function
  | Vptr p -> p
  | Vint 0L -> { Memsys.space = Memsys.Local; addr = 0; site = -1 }
  | Vint bits -> bits_ptr bits
  | Vbool _ | Vfloat _ | Vunit -> invalid_arg "Value.as_ptr"

let pp ppf = function
  | Vunit -> Format.pp_print_string ppf "()"
  | Vbool b -> Format.pp_print_bool ppf b
  | Vint i -> Format.fprintf ppf "%Ld" i
  | Vfloat f -> Format.fprintf ppf "%g" f
  | Vptr p ->
    let space = match p.Memsys.space with Memsys.Local -> "local" | Memsys.Far -> "far" in
    Format.fprintf ppf "<%s:%d@%d>" space p.Memsys.site p.Memsys.addr

let equal a b =
  match (a, b) with
  | Vunit, Vunit -> true
  | Vbool x, Vbool y -> x = y
  | Vint x, Vint y -> Int64.equal x y
  | Vfloat x, Vfloat y -> x = y
  | Vptr x, Vptr y -> x = y
  | (Vunit | Vbool _ | Vint _ | Vfloat _ | Vptr _), _ -> false
