(** Run-time values of the interpreter, and their 8-byte memory encoding.

    Pointers are serialized into 64 bits when stored to memory:
    bit 63 = address space (0 local / 1 far), bits 48-62 = allocation
    site + 1 (so the null pointer is all-zero), bits 0-47 = address.
    This is a simulator device distinct from the paper's runtime
    encoding, which is modelled by [Mira_runtime.Rptr]. *)

type t =
  | Vunit
  | Vbool of bool
  | Vint of int64
  | Vfloat of float
  | Vptr of Mira_runtime.Memsys.ptr

val null : t
(** The null pointer (local, address 0). *)

val is_null : t -> bool

val ptr_bits : Mira_runtime.Memsys.ptr -> int64
(** The 64-bit serialization described above. *)

val bits_ptr : int64 -> Mira_runtime.Memsys.ptr
(** Inverse of [ptr_bits]. *)

val encode : Mira_mir.Types.ty -> t -> int64
(** Encode a value for storage as the given type.  Ints and bools
    coerce freely; integer 0 coerces to the null pointer.  Raises
    [Invalid_argument] on impossible coercions. *)

val decode : Mira_mir.Types.ty -> int64 -> t
(** Decode 8 stored bytes as the given type. *)

val as_int : t -> int64
(** Integer view: ints as-is, bools 0/1, pointers via their serialized
    bits (so equality and null tests work), floats truncated. *)

val as_float : t -> float
val as_bool : t -> bool

val as_ptr : t -> Mira_runtime.Memsys.ptr
(** Raises [Invalid_argument] if the value is not a pointer; integer 0
    converts to the null pointer. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
