type t = {
  pb_name : string;
  mutable pb_funcs : (string * Ir.func) list;  (* reverse order *)
  mutable pb_sites : Ir.site_info list;  (* reverse order *)
  mutable pb_next_site : int;
}

type fb = {
  parent : t;
  mutable next_reg : int;
  mutable blocks : Ir.op list list;  (* stack; each block reversed *)
}

let program name = { pb_name = name; pb_funcs = []; pb_sites = []; pb_next_site = 0 }

let fresh fb =
  let r = fb.next_reg in
  fb.next_reg <- r + 1;
  r

let emit fb op =
  match fb.blocks with
  | top :: rest -> fb.blocks <- (op :: top) :: rest
  | [] -> invalid_arg "Builder.emit: no open block"

let push_block fb = fb.blocks <- [] :: fb.blocks

let pop_block fb =
  match fb.blocks with
  | top :: rest ->
    fb.blocks <- rest;
    List.rev top
  | [] -> invalid_arg "Builder.pop_block: no open block"

let def1 fb make =
  let r = fresh fb in
  emit fb (make r);
  Ir.Oreg r

let bin fb op a b = def1 fb (fun r -> Ir.Bin (r, op, a, b))
let fbin fb op a b = def1 fb (fun r -> Ir.Fbin (r, op, a, b))
let cmp fb op a b = def1 fb (fun r -> Ir.Cmp (r, op, a, b))
let fcmp fb op a b = def1 fb (fun r -> Ir.Fcmp (r, op, a, b))
let not_ fb a = def1 fb (fun r -> Ir.Not (r, a))
let i2f fb a = def1 fb (fun r -> Ir.I2f (r, a))
let f2i fb a = def1 fb (fun r -> Ir.F2i (r, a))
let mov fb a = def1 fb (fun r -> Ir.Mov (r, a))

let fresh_site parent ~name ~elem =
  let id = parent.pb_next_site in
  parent.pb_next_site <- id + 1;
  parent.pb_sites <-
    { Ir.si_id = id; si_name = name; si_elem = elem } :: parent.pb_sites;
  id

let alloc fb ~name ?(space = Ir.Heap) elem count =
  let site = fresh_site fb.parent ~name ~elem in
  let ptr = def1 fb (fun dst -> Ir.Alloc { dst; site; elem; count; space }) in
  (ptr, site)

let free fb ptr ~site = emit fb (Ir.Free { ptr; site })

let gep fb ~base ~index ~elem ?(field_off = 0) () =
  def1 fb (fun dst -> Ir.Gep { dst; base; index; elem; field_off })

let field_ptr fb ~base ~index ~def ~field =
  let field_off = Types.field_offset def field in
  gep fb ~base ~index ~elem:(Types.Struct def) ~field_off ()

let load fb ty ptr =
  def1 fb (fun dst -> Ir.Load { dst; ty; ptr; meta = Ir.meta_default })

let store fb ty ~ptr ~value =
  emit fb (Ir.Store { ty; ptr; value; meta = Ir.meta_default })

let call fb callee args = def1 fb (fun dst -> Ir.Call { dst; callee; args })

let loop_common fb ~lo ~hi ?(step = Ir.Oint 1L) build ~parallel =
  let iv = fresh fb in
  push_block fb;
  build (Ir.Oreg iv);
  let body = pop_block fb in
  if parallel then emit fb (Ir.ParFor { iv; lo; hi; step; body })
  else emit fb (Ir.For { iv; lo; hi; step; body })

let for_ fb ~lo ~hi ?step build = loop_common fb ~lo ~hi ?step build ~parallel:false
let par_for fb ~lo ~hi ?step build = loop_common fb ~lo ~hi ?step build ~parallel:true

let while_ fb ~cond ~body =
  push_block fb;
  let cond_val = cond () in
  let cond_block = pop_block fb in
  push_block fb;
  body ();
  let body_block = pop_block fb in
  emit fb (Ir.While { cond = cond_block; cond_val; body = body_block })

let if_ fb cond then_build ?(else_ = fun () -> ()) () =
  push_block fb;
  then_build ();
  let then_ = pop_block fb in
  push_block fb;
  else_ ();
  let else_ = pop_block fb in
  emit fb (Ir.If { cond; then_; else_ })

let ret fb v = emit fb (Ir.Ret v)

let iconst n = Ir.Oint (Int64.of_int n)

let ends_with_ret body =
  match List.rev body with Ir.Ret _ :: _ -> true | _ -> false

let func parent name params ret_ty build =
  let fb = { parent; next_reg = 0; blocks = [] } in
  let param_regs = List.map (fun (_, ty) -> (fresh fb, ty)) params in
  push_block fb;
  build fb (List.map (fun (r, _) -> Ir.Oreg r) param_regs);
  let body = pop_block fb in
  let body = if ends_with_ret body then body else body @ [ Ir.Ret Ir.Ounit ] in
  let f =
    {
      Ir.f_name = name;
      f_params = param_regs;
      f_ret = ret_ty;
      f_body = body;
      f_nregs = fb.next_reg;
      f_remotable = false;
      f_offloaded = false;
      f_offload_sites = [];
    }
  in
  parent.pb_funcs <- (name, f) :: parent.pb_funcs

let finish parent ~entry =
  let funcs = List.rev parent.pb_funcs in
  if not (List.mem_assoc entry funcs) then
    invalid_arg (Printf.sprintf "Builder.finish: entry %S not defined" entry);
  {
    Ir.p_name = parent.pb_name;
    p_funcs = funcs;
    p_entry = entry;
    p_sites = List.rev parent.pb_sites;
  }
