(** Convenience construction of IR programs.

    A [t] accumulates functions and allocation sites; an [fb] builds one
    function body with a stack of nested blocks so structured control
    flow reads naturally:

    {[
      let b = Builder.program "graph" in
      Builder.func b "main" [] Types.I64 (fun fb _params ->
          let edges, _site = Builder.alloc fb ~name:"edges" edge_ty n in
          Builder.for_ fb ~lo:(Oint 0L) ~hi:n (fun i ->
              let p = Builder.gep fb ~base:edges ~index:i ~elem:edge_ty () in
              ignore (Builder.load fb Types.I64 p));
          Builder.ret fb (Oint 0L));
      Builder.finish b ~entry:"main"
    ]} *)

type t
type fb

val program : string -> t
(** Fresh program builder. *)

val func :
  t -> string -> (string * Types.ty) list -> Types.ty -> (fb -> Ir.operand list -> unit) -> unit
(** [func b name params ret build] defines a function; [build] receives
    operands for the parameters in order.  Bodies without an explicit
    trailing [ret] get [Ret Ounit] appended. *)

val finish : t -> entry:string -> Ir.program
(** Close the program.  Raises [Invalid_argument] if [entry] is absent. *)

(** {1 Inside a function body} *)

val fresh : fb -> Ir.reg
val emit : fb -> Ir.op -> unit

val bin : fb -> Ir.binop -> Ir.operand -> Ir.operand -> Ir.operand
val fbin : fb -> Ir.fbinop -> Ir.operand -> Ir.operand -> Ir.operand
val cmp : fb -> Ir.cmpop -> Ir.operand -> Ir.operand -> Ir.operand
val fcmp : fb -> Ir.cmpop -> Ir.operand -> Ir.operand -> Ir.operand
val not_ : fb -> Ir.operand -> Ir.operand
val i2f : fb -> Ir.operand -> Ir.operand
val f2i : fb -> Ir.operand -> Ir.operand
val mov : fb -> Ir.operand -> Ir.operand

val alloc :
  fb -> name:string -> ?space:Ir.space -> Types.ty -> Ir.operand -> Ir.operand * int
(** [alloc fb ~name elem count] emits a heap (default) or stack
    allocation of [count * size_of elem] bytes and returns the pointer
    operand together with the allocation-site id. *)

val free : fb -> Ir.operand -> site:int -> unit

val gep :
  fb -> base:Ir.operand -> index:Ir.operand -> elem:Types.ty -> ?field_off:int ->
  unit -> Ir.operand

val field_ptr :
  fb -> base:Ir.operand -> index:Ir.operand -> def:Types.struct_def -> field:string ->
  Ir.operand
(** Pointer to [base[index].field]. *)

val load : fb -> Types.ty -> Ir.operand -> Ir.operand
val store : fb -> Types.ty -> ptr:Ir.operand -> value:Ir.operand -> unit
val call : fb -> string -> Ir.operand list -> Ir.operand

val for_ :
  fb -> lo:Ir.operand -> hi:Ir.operand -> ?step:Ir.operand -> (Ir.operand -> unit) -> unit

val par_for :
  fb -> lo:Ir.operand -> hi:Ir.operand -> ?step:Ir.operand -> (Ir.operand -> unit) -> unit

val while_ : fb -> cond:(unit -> Ir.operand) -> body:(unit -> unit) -> unit

val if_ : fb -> Ir.operand -> (unit -> unit) -> ?else_:(unit -> unit) -> unit -> unit

val ret : fb -> Ir.operand -> unit

val iconst : int -> Ir.operand
(** [Oint (Int64.of_int n)]. *)
