type reg = int

type operand =
  | Oreg of reg
  | Oint of int64
  | Ofloat of float
  | Obool of bool
  | Ounit

type binop = Add | Sub | Mul | Div | Rem | Land | Lor | Lxor | Shl | Shr
type fbinop = Fadd | Fsub | Fmul | Fdiv
type cmpop = Eq | Ne | Lt | Le | Gt | Ge

type space = Heap | Stack

type access_meta = { am_site : int; am_remote : bool; am_native : bool }

let meta_default = { am_site = -1; am_remote = false; am_native = false }

type op =
  | Bin of reg * binop * operand * operand
  | Fbin of reg * fbinop * operand * operand
  | Cmp of reg * cmpop * operand * operand
  | Fcmp of reg * cmpop * operand * operand
  | Not of reg * operand
  | I2f of reg * operand
  | F2i of reg * operand
  | Mov of reg * operand
  | Alloc of { dst : reg; site : int; elem : Types.ty; count : operand; space : space }
  | Free of { ptr : operand; site : int }
  | Gep of { dst : reg; base : operand; index : operand; elem : Types.ty; field_off : int }
  | Load of { dst : reg; ty : Types.ty; ptr : operand; meta : access_meta }
  | Store of { ty : Types.ty; ptr : operand; value : operand; meta : access_meta }
  | Call of { dst : reg; callee : string; args : operand list }
  | For of { iv : reg; lo : operand; hi : operand; step : operand; body : block }
  | ParFor of { iv : reg; lo : operand; hi : operand; step : operand; body : block }
  | While of { cond : block; cond_val : operand; body : block }
  | If of { cond : operand; then_ : block; else_ : block }
  | Ret of operand
  | Prefetch of { ptr : operand; len : int; meta : access_meta }
  | FlushEvict of { ptr : operand; len : int; meta : access_meta }
  | EvictSite of int
  | ProfEnter of string
  | ProfExit of string

and block = op list

type func = {
  f_name : string;
  f_params : (reg * Types.ty) list;
  f_ret : Types.ty;
  f_body : block;
  f_nregs : int;
  f_remotable : bool;
  f_offloaded : bool;
  f_offload_sites : int list;
}

type site_info = { si_id : int; si_name : string; si_elem : Types.ty }

type program = {
  p_name : string;
  p_funcs : (string * func) list;
  p_entry : string;
  p_sites : site_info list;
}

let find_func p name = List.assoc name p.p_funcs

let find_site p id =
  match List.find_opt (fun s -> s.si_id = id) p.p_sites with
  | Some s -> s
  | None -> raise Not_found

let replace_func p f =
  {
    p with
    p_funcs =
      List.map
        (fun (name, g) -> if String.equal name f.f_name then (name, f) else (name, g))
        p.p_funcs;
  }

let map_blocks fn f = { f with f_body = fn f.f_body }

let block_of = function
  | For { body; _ } | ParFor { body; _ } -> [ body ]
  | While { cond; body; _ } -> [ cond; body ]
  | If { then_; else_; _ } -> [ then_; else_ ]
  | Bin _ | Fbin _ | Cmp _ | Fcmp _ | Not _ | I2f _ | F2i _ | Mov _ | Alloc _
  | Free _ | Gep _ | Load _ | Store _ | Call _ | Ret _ | Prefetch _
  | FlushEvict _ | EvictSite _ | ProfEnter _ | ProfExit _ ->
    []

let rec map_ops fn block = List.map (map_op fn) block

and map_op fn op =
  let op =
    match op with
    | For f -> For { f with body = map_ops fn f.body }
    | ParFor f -> ParFor { f with body = map_ops fn f.body }
    | While w -> While { w with cond = map_ops fn w.cond; body = map_ops fn w.body }
    | If i -> If { i with then_ = map_ops fn i.then_; else_ = map_ops fn i.else_ }
    | Bin _ | Fbin _ | Cmp _ | Fcmp _ | Not _ | I2f _ | F2i _ | Mov _ | Alloc _
    | Free _ | Gep _ | Load _ | Store _ | Call _ | Ret _ | Prefetch _
    | FlushEvict _ | EvictSite _ | ProfEnter _ | ProfExit _ ->
      op
  in
  fn op

let rec iter_ops fn block = List.iter (iter_op fn) block

and iter_op fn op =
  fn op;
  List.iter (iter_ops fn) (block_of op)

let fold_ops fn init block =
  let acc = ref init in
  iter_ops (fun op -> acc := fn !acc op) block;
  !acc

let op_count block = fold_ops (fun n _ -> n + 1) 0 block

let rec expand_ops fn block = List.concat_map (expand_op fn) block

and expand_op fn op =
  let op =
    match op with
    | For f -> For { f with body = expand_ops fn f.body }
    | ParFor f -> ParFor { f with body = expand_ops fn f.body }
    | While w ->
      While { w with cond = expand_ops fn w.cond; body = expand_ops fn w.body }
    | If i ->
      If { i with then_ = expand_ops fn i.then_; else_ = expand_ops fn i.else_ }
    | Bin _ | Fbin _ | Cmp _ | Fcmp _ | Not _ | I2f _ | F2i _ | Mov _ | Alloc _
    | Free _ | Gep _ | Load _ | Store _ | Call _ | Ret _ | Prefetch _
    | FlushEvict _ | EvictSite _ | ProfEnter _ | ProfExit _ ->
      op
  in
  fn op
