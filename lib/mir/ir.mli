(** The Mira intermediate representation.

    Structured control flow (MLIR [scf]-style [For]/[While]/[If]
    regions, no raw CFG), SSA-ish virtual registers, typed memory
    operations, and two far-memory dialects:

    - the {e remotable} dialect marks allocations/functions that may
      live in (or be offloaded to) far memory; here it appears as the
      [site] on [Alloc] plus [f_remotable]/[f_offloaded] on functions;
    - the {e rmem} dialect is the explicit far-memory operations the
      compiler introduces: [Prefetch], [PrefetchIndirect], [FlushEvict],
      and the [access_meta] annotations on [Load]/[Store] that record
      the section routing and the dereference-to-native proof.

    Programs built by the front end contain none of the rmem dialect;
    the passes in [Mira_passes] introduce it. *)

type reg = int
(** Virtual register, numbered per function from 0. *)

type operand =
  | Oreg of reg
  | Oint of int64
  | Ofloat of float
  | Obool of bool
  | Ounit

type binop = Add | Sub | Mul | Div | Rem | Land | Lor | Lxor | Shl | Shr
type fbinop = Fadd | Fsub | Fmul | Fdiv
type cmpop = Eq | Ne | Lt | Le | Gt | Ge

type space =
  | Heap  (** candidate for far memory *)
  | Stack  (** always local: stack data never goes to far memory *)

type access_meta = {
  am_site : int;  (** allocation site of the base object; -1 = unknown *)
  am_remote : bool;  (** converted to an rmem (remote) operation *)
  am_native : bool;  (** proved residency: compile to a native load *)
}
(** Annotation the conversion and optimization passes attach to memory
    operations.  [am_remote = false] means the access runs on whatever
    the default path is (native for local objects, swap section for
    far ones). *)

val meta_default : access_meta

type op =
  | Bin of reg * binop * operand * operand
  | Fbin of reg * fbinop * operand * operand
  | Cmp of reg * cmpop * operand * operand
  | Fcmp of reg * cmpop * operand * operand
  | Not of reg * operand
  | I2f of reg * operand
  | F2i of reg * operand
  | Mov of reg * operand
  | Alloc of { dst : reg; site : int; elem : Types.ty; count : operand; space : space }
      (** [dst = alloc count x elem]; [site] is the allocation site id,
          unique program-wide, used for placement decisions. *)
  | Free of { ptr : operand; site : int }
  | Gep of { dst : reg; base : operand; index : operand; elem : Types.ty; field_off : int }
      (** [dst = base + index * size_of elem + field_off]. *)
  | Load of { dst : reg; ty : Types.ty; ptr : operand; meta : access_meta }
  | Store of { ty : Types.ty; ptr : operand; value : operand; meta : access_meta }
  | Call of { dst : reg; callee : string; args : operand list }
  | For of { iv : reg; lo : operand; hi : operand; step : operand; body : block }
      (** [for iv = lo; iv < hi; iv += step].  [step] must be positive. *)
  | ParFor of { iv : reg; lo : operand; hi : operand; step : operand; body : block }
      (** Parallel loop: iterations are partitioned over the machine's
          simulated threads. *)
  | While of { cond : block; cond_val : operand; body : block }
      (** Evaluate [cond]; continue while [cond_val] is true. *)
  | If of { cond : operand; then_ : block; else_ : block }
  | Ret of operand
  (* --- rmem dialect --- *)
  | Prefetch of { ptr : operand; len : int; meta : access_meta }
      (** Asynchronous fetch of [len] bytes at [ptr] into the section. *)
  | FlushEvict of { ptr : operand; len : int; meta : access_meta }
      (** Eviction hint: asynchronously write back and mark evictable. *)
  | EvictSite of int
      (** Lifetime hint: all cached data of a site is dead in this scope
          — write back asynchronously and mark evict-first. *)
  | ProfEnter of string
  | ProfExit of string

and block = op list

type func = {
  f_name : string;
  f_params : (reg * Types.ty) list;
  f_ret : Types.ty;
  f_body : block;
  f_nregs : int;  (** registers are numbered [0 .. f_nregs-1] *)
  f_remotable : bool;  (** eligible for offloading (analysis result) *)
  f_offloaded : bool;  (** offloading decision (pass result) *)
  f_offload_sites : int list;  (** sites the offloaded body accesses: the
                                   caller flushes them before and
                                   invalidates them after the RPC *)
}

type site_info = { si_id : int; si_name : string; si_elem : Types.ty }
(** Program-wide allocation-site table entry. *)

type program = {
  p_name : string;
  p_funcs : (string * func) list;  (** definition order preserved *)
  p_entry : string;
  p_sites : site_info list;
}

val find_func : program -> string -> func
(** Raises [Not_found]. *)

val find_site : program -> int -> site_info
(** Raises [Not_found]. *)

val replace_func : program -> func -> program
(** Replace the same-named function. *)

val map_blocks : (block -> block) -> func -> func
(** Apply a block transformation to the body (top level only; the
    transformation is responsible for recursing if it needs to). *)

val map_ops : (op -> op) -> block -> block
(** Structure-preserving deep map over every op in a block, applied
    bottom-up (children first). *)

val iter_ops : (op -> unit) -> block -> unit
(** Deep iteration over every op, outer-to-inner. *)

val fold_ops : ('a -> op -> 'a) -> 'a -> block -> 'a
(** Deep left fold over every op, outer-to-inner. *)

val op_count : block -> int
(** Number of ops, deep. *)

val expand_ops : (op -> op list) -> block -> block
(** Like [map_ops] but each op may be rewritten to a sequence
    (children first). *)

val block_of : op -> block list
(** Immediate child blocks of an op (loop/if bodies). *)
