let pp_operand ppf = function
  | Ir.Oreg r -> Format.fprintf ppf "%%%d" r
  | Ir.Oint i -> Format.fprintf ppf "%Ld" i
  | Ir.Ofloat f -> Format.fprintf ppf "%g" f
  | Ir.Obool b -> Format.fprintf ppf "%b" b
  | Ir.Ounit -> Format.pp_print_string ppf "()"

let binop_name = function
  | Ir.Add -> "addi"
  | Ir.Sub -> "subi"
  | Ir.Mul -> "muli"
  | Ir.Div -> "divi"
  | Ir.Rem -> "remi"
  | Ir.Land -> "andi"
  | Ir.Lor -> "ori"
  | Ir.Lxor -> "xori"
  | Ir.Shl -> "shli"
  | Ir.Shr -> "shri"

let fbinop_name = function
  | Ir.Fadd -> "addf"
  | Ir.Fsub -> "subf"
  | Ir.Fmul -> "mulf"
  | Ir.Fdiv -> "divf"

let cmpop_name = function
  | Ir.Eq -> "eq"
  | Ir.Ne -> "ne"
  | Ir.Lt -> "lt"
  | Ir.Le -> "le"
  | Ir.Gt -> "gt"
  | Ir.Ge -> "ge"

let mem_dialect (meta : Ir.access_meta) base =
  if meta.Ir.am_native then "rmem." ^ base ^ ".native"
  else if meta.Ir.am_remote then "rmem." ^ base
  else "memref." ^ base

let pp_site ppf (meta : Ir.access_meta) =
  if meta.Ir.am_site >= 0 then Format.fprintf ppf " {site = %d}" meta.Ir.am_site

let rec pp_op_at indent ppf op =
  let pad = String.make indent ' ' in
  match op with
  | Ir.Bin (r, o, a, b) ->
    Format.fprintf ppf "%s%%%d = arith.%s %a, %a" pad r (binop_name o) pp_operand
      a pp_operand b
  | Ir.Fbin (r, o, a, b) ->
    Format.fprintf ppf "%s%%%d = arith.%s %a, %a" pad r (fbinop_name o)
      pp_operand a pp_operand b
  | Ir.Cmp (r, o, a, b) ->
    Format.fprintf ppf "%s%%%d = arith.cmpi %s, %a, %a" pad r (cmpop_name o)
      pp_operand a pp_operand b
  | Ir.Fcmp (r, o, a, b) ->
    Format.fprintf ppf "%s%%%d = arith.cmpf %s, %a, %a" pad r (cmpop_name o)
      pp_operand a pp_operand b
  | Ir.Not (r, a) -> Format.fprintf ppf "%s%%%d = arith.not %a" pad r pp_operand a
  | Ir.I2f (r, a) ->
    Format.fprintf ppf "%s%%%d = arith.sitofp %a" pad r pp_operand a
  | Ir.F2i (r, a) ->
    Format.fprintf ppf "%s%%%d = arith.fptosi %a" pad r pp_operand a
  | Ir.Mov (r, a) -> Format.fprintf ppf "%s%%%d = arith.mov %a" pad r pp_operand a
  | Ir.Alloc { dst; site; elem; count; space } ->
    let dialect =
      match space with Ir.Heap -> "remotable.alloc" | Ir.Stack -> "memref.alloca"
    in
    Format.fprintf ppf "%s%%%d = %s %a x %a {site = %d}" pad dst dialect
      pp_operand count Types.pp elem site
  | Ir.Free { ptr; site } ->
    Format.fprintf ppf "%sremotable.free %a {site = %d}" pad pp_operand ptr site
  | Ir.Gep { dst; base; index; elem; field_off } ->
    Format.fprintf ppf "%s%%%d = memref.gep %a[%a] : %a +%d" pad dst pp_operand
      base pp_operand index Types.pp elem field_off
  | Ir.Load { dst; ty; ptr; meta } ->
    Format.fprintf ppf "%s%%%d = %s %a : %a%a" pad dst (mem_dialect meta "load")
      pp_operand ptr Types.pp ty pp_site meta
  | Ir.Store { ty; ptr; value; meta } ->
    Format.fprintf ppf "%s%s %a, %a : %a%a" pad (mem_dialect meta "store")
      pp_operand value pp_operand ptr Types.pp ty pp_site meta
  | Ir.Call { dst; callee; args } ->
    Format.fprintf ppf "%s%%%d = func.call @%s(%a)" pad dst callee
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         pp_operand)
      args
  | Ir.For { iv; lo; hi; step; body } ->
    Format.fprintf ppf "%sscf.for %%%d = %a to %a step %a {@\n%a@\n%s}" pad iv
      pp_operand lo pp_operand hi pp_operand step
      (pp_block_at (indent + 2))
      body pad
  | Ir.ParFor { iv; lo; hi; step; body } ->
    Format.fprintf ppf "%sscf.parallel %%%d = %a to %a step %a {@\n%a@\n%s}" pad
      iv pp_operand lo pp_operand hi pp_operand step
      (pp_block_at (indent + 2))
      body pad
  | Ir.While { cond; cond_val; body } ->
    Format.fprintf ppf "%sscf.while {@\n%a@\n%s  yield %a@\n%s} do {@\n%a@\n%s}"
      pad
      (pp_block_at (indent + 2))
      cond pad pp_operand cond_val pad
      (pp_block_at (indent + 2))
      body pad
  | Ir.If { cond; then_; else_ } ->
    if else_ = [] then
      Format.fprintf ppf "%sscf.if %a {@\n%a@\n%s}" pad pp_operand cond
        (pp_block_at (indent + 2))
        then_ pad
    else
      Format.fprintf ppf "%sscf.if %a {@\n%a@\n%s} else {@\n%a@\n%s}" pad
        pp_operand cond
        (pp_block_at (indent + 2))
        then_ pad
        (pp_block_at (indent + 2))
        else_ pad
  | Ir.Ret v -> Format.fprintf ppf "%sfunc.return %a" pad pp_operand v
  | Ir.Prefetch { ptr; len; meta } ->
    Format.fprintf ppf "%srmem.prefetch %a, %d%a" pad pp_operand ptr len pp_site
      meta
  | Ir.FlushEvict { ptr; len; meta } ->
    Format.fprintf ppf "%srmem.flush_evict %a, %d%a" pad pp_operand ptr len
      pp_site meta
  | Ir.EvictSite site ->
    Format.fprintf ppf "%srmem.evict_site {site = %d}" pad site
  | Ir.ProfEnter name -> Format.fprintf ppf "%sprof.enter @%s" pad name
  | Ir.ProfExit name -> Format.fprintf ppf "%sprof.exit @%s" pad name

and pp_block_at indent ppf block =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "\n")
    (pp_op_at indent) ppf block

let pp_op ppf op = pp_op_at 0 ppf op
let pp_block ppf block = pp_block_at 0 ppf block

let pp_func ppf (f : Ir.func) =
  let attr =
    match (f.Ir.f_remotable, f.Ir.f_offloaded) with
    | _, true -> " attributes {remotable, offloaded}"
    | true, false -> " attributes {remotable}"
    | false, false -> ""
  in
  Format.fprintf ppf "func.func @%s(%a) -> %a%s {@\n%a@\n}" f.Ir.f_name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (r, ty) -> Format.fprintf ppf "%%%d: %a" r Types.pp ty))
    f.Ir.f_params Types.pp f.Ir.f_ret attr (pp_block_at 2) f.Ir.f_body

let pp_program ppf (p : Ir.program) =
  Format.fprintf ppf "module @%s {@\n" p.Ir.p_name;
  List.iter (fun (_, f) -> Format.fprintf ppf "%a@\n" pp_func f) p.Ir.p_funcs;
  Format.fprintf ppf "}"

let func_to_string f = Format.asprintf "%a" pp_func f
let program_to_string p = Format.asprintf "%a" pp_program p
