(** MLIR-flavoured textual rendering of IR programs.

    Used by tests, by the [fig13] bench target (which reproduces the
    paper's converted/optimized code listings), and for debugging.
    Operations carrying [am_remote] render in the [rmem] dialect;
    heap allocations render as [remotable.alloc]. *)

val pp_operand : Format.formatter -> Ir.operand -> unit
val pp_op : Format.formatter -> Ir.op -> unit
val pp_block : Format.formatter -> Ir.block -> unit
val pp_func : Format.formatter -> Ir.func -> unit
val pp_program : Format.formatter -> Ir.program -> unit

val func_to_string : Ir.func -> string
val program_to_string : Ir.program -> string
