type ty =
  | Unit
  | Bool
  | I64
  | F64
  | Ptr of ty
  | Struct of struct_def

and struct_def = { s_name : string; s_fields : (string * ty) list }

let rec size_of = function
  | Unit -> 0
  | Bool | I64 | F64 | Ptr _ -> 8
  | Struct { s_fields; _ } ->
    List.fold_left (fun acc (_, ty) -> acc + size_of ty) 0 s_fields

let field_offset def name =
  let rec go off = function
    | [] -> raise Not_found
    | (f, ty) :: rest -> if String.equal f name then off else go (off + size_of ty) rest
  in
  go 0 def.s_fields

let field_ty def name =
  match List.assoc_opt name def.s_fields with
  | Some ty -> ty
  | None -> raise Not_found

let field_index def name =
  let rec go i = function
    | [] -> raise Not_found
    | (f, _) :: rest -> if String.equal f name then i else go (i + 1) rest
  in
  go 0 def.s_fields

let struct_ name fields = Struct { s_name = name; s_fields = fields }

let rec pp ppf = function
  | Unit -> Format.pp_print_string ppf "unit"
  | Bool -> Format.pp_print_string ppf "i1"
  | I64 -> Format.pp_print_string ppf "i64"
  | F64 -> Format.pp_print_string ppf "f64"
  | Ptr ty -> Format.fprintf ppf "ptr<%a>" pp ty
  | Struct { s_name; _ } -> Format.fprintf ppf "struct.%s" s_name

let to_string ty = Format.asprintf "%a" pp ty

(* Structs compare nominally (by name): recursive types like linked
   nodes would make a structural comparison diverge. *)
let rec equal a b =
  match (a, b) with
  | Unit, Unit | Bool, Bool | I64, I64 | F64, F64 -> true
  | Ptr a, Ptr b -> equal a b
  | Struct a, Struct b -> String.equal a.s_name b.s_name
  | (Unit | Bool | I64 | F64 | Ptr _ | Struct _), _ -> false
