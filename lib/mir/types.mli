(** Types of the Mira IR.

    The IR is a structured, MLIR-flavoured representation: values are
    64-bit integers, 64-bit floats, booleans, unit, or typed pointers;
    aggregates are structs with named fields and arrays accessed through
    pointer arithmetic ([Ir.Gep]).  All scalar slots occupy 8 bytes so
    that layout questions (cache line contents, selective transmission
    of fields) stay byte-accurate but simple. *)

type ty =
  | Unit
  | Bool
  | I64
  | F64
  | Ptr of ty
  | Struct of struct_def

and struct_def = { s_name : string; s_fields : (string * ty) list }

val size_of : ty -> int
(** Byte size: scalars and pointers are 8 bytes, unit is 0, structs are
    the sum of their field sizes (all fields 8-byte aligned). *)

val field_offset : struct_def -> string -> int
(** Byte offset of a named field.  Raises [Not_found]. *)

val field_ty : struct_def -> string -> ty
(** Type of a named field.  Raises [Not_found]. *)

val field_index : struct_def -> string -> int
(** Positional index of a named field.  Raises [Not_found]. *)

val struct_ : string -> (string * ty) list -> ty
(** Convenience constructor. *)

val pp : Format.formatter -> ty -> unit
(** MLIR-ish rendering: [i64], [f64], [ptr<i64>], [struct.edge]. *)

val to_string : ty -> string

val equal : ty -> ty -> bool
(** Structural on scalars/pointers; {e nominal} on structs (recursive
    struct types are permitted, e.g. linked nodes). *)
