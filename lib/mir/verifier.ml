let intrinsics = [ "rand_int"; "exp"; "sqrt"; "tanh"; "log"; "fabs" ]

type ctx = {
  program : Ir.program;
  func : Ir.func;
  mutable defined : bool array;  (* currently-in-scope definitions *)
  mutable assigned : bool array;  (* ever defined (single-assignment check) *)
  mutable errors : string list;
}

let error ctx fmt =
  Format.kasprintf
    (fun msg ->
      ctx.errors <- Printf.sprintf "%s: %s" ctx.func.Ir.f_name msg :: ctx.errors)
    fmt

let check_use ctx = function
  | Ir.Oreg r ->
    if r < 0 || r >= ctx.func.Ir.f_nregs then error ctx "use of %%%d out of bounds" r
    else if not ctx.defined.(r) then error ctx "use of %%%d before definition" r
  | Ir.Oint _ | Ir.Ofloat _ | Ir.Obool _ | Ir.Ounit -> ()

let check_def ctx r =
  if r < 0 || r >= ctx.func.Ir.f_nregs then
    error ctx "definition of %%%d out of bounds" r
  else begin
    if ctx.assigned.(r) then error ctx "register %%%d assigned twice" r;
    ctx.assigned.(r) <- true;
    ctx.defined.(r) <- true
  end

let check_step ctx = function
  | Ir.Oint n when Int64.compare n 0L <= 0 ->
    error ctx "loop step must be a positive constant, got %Ld" n
  | Ir.Oint _ -> ()
  | Ir.Oreg _ as o -> check_use ctx o
  | Ir.Ofloat _ | Ir.Obool _ | Ir.Ounit -> error ctx "loop step must be an integer"

let check_callee ctx callee =
  if
    (not (List.mem_assoc callee ctx.program.Ir.p_funcs))
    && not (List.mem callee intrinsics)
  then error ctx "call to undefined function @%s" callee

let check_site ctx site =
  match Ir.find_site ctx.program site with
  | _ -> ()
  | exception Not_found -> error ctx "allocation site %d not in site table" site

(* Walk a block; definitions made inside a nested region go out of scope
   when the region ends (loop-carried values are not modelled). *)
let rec check_block ctx block = List.iter (check_op ctx) block

and scoped ctx f =
  let saved = Array.copy ctx.defined in
  f ();
  ctx.defined <- saved

and check_op ctx op =
  match op with
  | Ir.Bin (r, _, a, b)
  | Ir.Fbin (r, _, a, b)
  | Ir.Cmp (r, _, a, b)
  | Ir.Fcmp (r, _, a, b) ->
    check_use ctx a;
    check_use ctx b;
    check_def ctx r
  | Ir.Not (r, a) | Ir.I2f (r, a) | Ir.F2i (r, a) | Ir.Mov (r, a) ->
    check_use ctx a;
    check_def ctx r
  | Ir.Alloc { dst; site; count; _ } ->
    check_use ctx count;
    check_site ctx site;
    check_def ctx dst
  | Ir.Free { ptr; site } ->
    check_use ctx ptr;
    check_site ctx site
  | Ir.Gep { dst; base; index; _ } ->
    check_use ctx base;
    check_use ctx index;
    check_def ctx dst
  | Ir.Load { dst; ptr; _ } ->
    check_use ctx ptr;
    check_def ctx dst
  | Ir.Store { ptr; value; _ } ->
    check_use ctx ptr;
    check_use ctx value
  | Ir.Call { dst; callee; args } ->
    List.iter (check_use ctx) args;
    check_callee ctx callee;
    check_def ctx dst
  | Ir.For { iv; lo; hi; step; body } | Ir.ParFor { iv; lo; hi; step; body } ->
    check_use ctx lo;
    check_use ctx hi;
    check_step ctx step;
    scoped ctx (fun () ->
        check_def ctx iv;
        check_block ctx body)
  | Ir.While { cond; cond_val; body } ->
    scoped ctx (fun () ->
        check_block ctx cond;
        check_use ctx cond_val;
        check_block ctx body)
  | Ir.If { cond; then_; else_ } ->
    check_use ctx cond;
    scoped ctx (fun () -> check_block ctx then_);
    scoped ctx (fun () -> check_block ctx else_)
  | Ir.Ret v -> check_use ctx v
  | Ir.Prefetch { ptr; len; _ } | Ir.FlushEvict { ptr; len; _ } ->
    check_use ctx ptr;
    if len <= 0 then error ctx "rmem op with non-positive length %d" len
  | Ir.EvictSite site -> check_site ctx site
  | Ir.ProfEnter _ | Ir.ProfExit _ -> ()

let check_func program (f : Ir.func) =
  let ctx =
    {
      program;
      func = f;
      defined = Array.make (max f.Ir.f_nregs 1) false;
      assigned = Array.make (max f.Ir.f_nregs 1) false;
      errors = [];
    }
  in
  List.iter
    (fun (r, _) ->
      if r < 0 || r >= f.Ir.f_nregs then
        error ctx "parameter register %%%d out of bounds" r
      else begin
        ctx.assigned.(r) <- true;
        ctx.defined.(r) <- true
      end)
    f.Ir.f_params;
  check_block ctx f.Ir.f_body;
  ctx.errors

let verify program =
  let errors =
    List.concat_map (fun (_, f) -> check_func program f) program.Ir.p_funcs
  in
  let errors =
    if List.mem_assoc program.Ir.p_entry program.Ir.p_funcs then errors
    else Printf.sprintf "entry function @%s not defined" program.Ir.p_entry :: errors
  in
  match errors with [] -> Ok () | es -> Error (List.rev es)

let verify_exn program =
  match verify program with
  | Ok () -> ()
  | Error es -> failwith (String.concat "; " es)
