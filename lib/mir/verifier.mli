(** Structural well-formedness checks for IR programs.

    Checks, per function: single assignment of registers, uses
    dominated by definitions under structured scoping, register bounds,
    resolvable callees (defined functions or known intrinsics), and
    positive constant loop steps; per program: entry point presence and
    allocation sites declared in the site table.

    The interpreter assumes a verified program; workload constructors
    and passes are tested to always produce verifying IR. *)

val intrinsics : string list
(** Callees the interpreter provides natively: random numbers and float
    math ("rand_int", "exp", "sqrt", "tanh", "log", "fabs"). *)

val verify : Ir.program -> (unit, string list) result
(** [Ok ()] or [Error messages] listing every violation found. *)

val verify_exn : Ir.program -> unit
(** Raises [Failure] with the joined messages. *)
