module Ir = Mira_mir.Ir

let defined_regs block =
  let defs = Hashtbl.create 32 in
  Ir.iter_ops
    (fun op ->
      let add r = Hashtbl.replace defs r () in
      match op with
      | Ir.Bin (r, _, _, _) | Ir.Fbin (r, _, _, _) | Ir.Cmp (r, _, _, _)
      | Ir.Fcmp (r, _, _, _) | Ir.Not (r, _) | Ir.I2f (r, _) | Ir.F2i (r, _)
      | Ir.Mov (r, _) ->
        add r
      | Ir.Alloc { dst; _ } | Ir.Gep { dst; _ } | Ir.Load { dst; _ }
      | Ir.Call { dst; _ } ->
        add dst
      | Ir.For { iv; _ } | Ir.ParFor { iv; _ } -> add iv
      | Ir.Store _ | Ir.Free _ | Ir.While _ | Ir.If _ | Ir.Ret _
      | Ir.Prefetch _ | Ir.FlushEvict _ | Ir.EvictSite _ | Ir.ProfEnter _
      | Ir.ProfExit _ ->
        ())
    block;
  defs

let operand_defined_in defs = function
  | Ir.Oreg r -> Hashtbl.mem defs r
  | Ir.Oint _ | Ir.Ofloat _ | Ir.Obool _ | Ir.Ounit -> false
