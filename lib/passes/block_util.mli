(** Small block-level helpers shared by the rewriting passes. *)

val defined_regs : Mira_mir.Ir.block -> (Mira_mir.Ir.reg, unit) Hashtbl.t
(** All registers defined anywhere inside the block (deep). *)

val operand_defined_in :
  (Mira_mir.Ir.reg, unit) Hashtbl.t -> Mira_mir.Ir.operand -> bool
