module Ir = Mira_mir.Ir

let convert_func program bindings selected (f : Ir.func) =
  let param_sites =
    match List.assoc_opt f.Ir.f_name bindings with Some b -> b | None -> []
  in
  let sm = Site_map.build ~param_sites program f in
  let meta_for ptr (old : Ir.access_meta) =
    let site = Site_map.site_of_operand sm ptr in
    if site >= 0 && List.mem site selected then
      { old with Ir.am_site = site; am_remote = true }
    else old
  in
  let body =
    Ir.map_ops
      (fun op ->
        match op with
        | Ir.Load ({ ptr; meta; _ } as l) -> Ir.Load { l with meta = meta_for ptr meta }
        | Ir.Store ({ ptr; meta; _ } as s) -> Ir.Store { s with meta = meta_for ptr meta }
        | Ir.Bin _ | Ir.Fbin _ | Ir.Cmp _ | Ir.Fcmp _ | Ir.Not _ | Ir.I2f _
        | Ir.F2i _ | Ir.Mov _ | Ir.Alloc _ | Ir.Free _ | Ir.Gep _ | Ir.Call _
        | Ir.For _ | Ir.ParFor _ | Ir.While _ | Ir.If _ | Ir.Ret _
        | Ir.Prefetch _ | Ir.FlushEvict _ | Ir.EvictSite _ | Ir.ProfEnter _
        | Ir.ProfExit _ ->
          op)
      f.Ir.f_body
  in
  { f with Ir.f_body = body }

let run program ~selected =
  let bindings = Mira_analysis.Remotable_flow.param_sites_of_program program in
  {
    program with
    Ir.p_funcs =
      List.map
        (fun (name, f) -> (name, convert_func program bindings selected f))
        program.Ir.p_funcs;
  }
