(** Conversion to remote operations (§4.4, §5.2.1).

    Rewrites memory operations whose base object belongs to a selected
    allocation site into the rmem dialect: their [access_meta] gets
    [am_remote = true] and the resolved [am_site], which routes them to
    the site's cache section at run time.  Unselected (or unresolvable)
    accesses keep the default swap path — the analysis trades
    completeness for soundness. *)

val run : Mira_mir.Ir.program -> selected:int list -> Mira_mir.Ir.program
