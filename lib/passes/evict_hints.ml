module Ir = Mira_mir.Ir
module Pattern = Mira_analysis.Pattern
module Lifetime = Mira_analysis.Lifetime

(* Far enough behind that prefetched-but-unused lines are not flushed,
   close enough that dead lines free space promptly. *)
let behind_distance ~line ~elem = (2 * line / max 1 elem) + 8

type ctx = {
  line_of : int -> int option;
  mutable next_reg : int;
  loop_table : (Ir.reg, Pattern.loop_info) Hashtbl.t;
}

let fresh ctx =
  let r = ctx.next_reg in
  ctx.next_reg <- r + 1;
  r

let rec index_loops ctx (loops : Pattern.loop_info list) =
  List.iter
    (fun l ->
      Hashtbl.replace ctx.loop_table l.Pattern.l_iv l;
      index_loops ctx l.Pattern.l_children)
    loops

let remote_meta site = { Ir.am_site = site; am_remote = true; am_native = false }

let flush_snippet ctx ~iv ~lo ~(g : Pattern.simple_gep) ~line ~dist =
  let d = fresh ctx in
  let cmp = fresh ctx in
  let p = fresh ctx in
  [
    Ir.Bin (d, Ir.Sub, Ir.Oreg iv, Ir.Oint (Int64.of_int dist));
    Ir.Cmp (cmp, Ir.Ge, Ir.Oreg d, lo);
    Ir.If
      {
        cond = Ir.Oreg cmp;
        then_ =
          [
            Ir.Gep
              {
                dst = p;
                base = g.Pattern.g_base;
                index = Ir.Oreg d;
                elem = g.Pattern.g_elem;
                field_off = 0;
              };
            Ir.FlushEvict
              { ptr = Ir.Oreg p; len = line; meta = remote_meta g.Pattern.g_site };
          ];
        else_ = [];
      };
  ]

let defined_regs = Block_util.defined_regs

let snippets_for_loop ctx (l : Pattern.loop_info) ~streaming ~lo body =
  let defs = defined_regs body in
  let seen = Hashtbl.create 8 in
  List.concat_map
    (fun (a : Pattern.access) ->
      match (a.Pattern.a_gep, ctx.line_of a.Pattern.a_site) with
      | Some g, Some line when streaming a.Pattern.a_site ->
        let key = (g.Pattern.g_site, g.Pattern.g_base) in
        (match (g.Pattern.g_index, Hashtbl.mem seen key) with
        | (Pattern.Idx_iv | Pattern.Idx_iv_plus _), false
          when not
                 (match g.Pattern.g_base with
                 | Ir.Oreg r -> Hashtbl.mem defs r
                 | Ir.Oint _ | Ir.Ofloat _ | Ir.Obool _ | Ir.Ounit -> true) ->
          Hashtbl.replace seen key ();
          let dist = behind_distance ~line ~elem:a.Pattern.a_elem in
          flush_snippet ctx ~iv:l.Pattern.l_iv ~lo ~g ~line ~dist
        | _, _ -> [])
      | Some _, Some _ | _, _ -> [])
    l.Pattern.l_accesses

let rec rewrite_block ctx ~streaming block =
  List.map (rewrite_op ctx ~streaming) block

and rewrite_op ctx ~streaming op =
  match op with
  | Ir.For ({ iv; lo; body; _ } as f) ->
    let body = rewrite_block ctx ~streaming body in
    let snippets =
      match Hashtbl.find_opt ctx.loop_table iv with
      | Some l when l.Pattern.l_children = [] ->
        snippets_for_loop ctx l ~streaming ~lo body
      | Some _ | None -> []
    in
    Ir.For { f with body = snippets @ body }
  | Ir.ParFor ({ iv; lo; body; _ } as f) ->
    let body = rewrite_block ctx ~streaming body in
    let snippets =
      match Hashtbl.find_opt ctx.loop_table iv with
      | Some l when l.Pattern.l_children = [] ->
        snippets_for_loop ctx l ~streaming ~lo body
      | Some _ | None -> []
    in
    Ir.ParFor { f with body = snippets @ body }
  | Ir.While w ->
    Ir.While
      { w with
        cond = rewrite_block ctx ~streaming w.cond;
        body = rewrite_block ctx ~streaming w.body }
  | Ir.If i ->
    Ir.If
      { i with
        then_ = rewrite_block ctx ~streaming i.then_;
        else_ = rewrite_block ctx ~streaming i.else_ }
  | Ir.Bin _ | Ir.Fbin _ | Ir.Cmp _ | Ir.Fcmp _ | Ir.Not _ | Ir.I2f _
  | Ir.F2i _ | Ir.Mov _ | Ir.Alloc _ | Ir.Free _ | Ir.Gep _ | Ir.Load _
  | Ir.Store _ | Ir.Call _ | Ir.Ret _ | Ir.Prefetch _ | Ir.FlushEvict _
  | Ir.EvictSite _ | Ir.ProfEnter _ | Ir.ProfExit _ ->
    op

(* Insert EvictSite after the last top-level loop touching each site. *)
let insert_lifetime_ends result line_of body =
  let dead_by_phase =
    List.init (Lifetime.phases_count result) (fun phase ->
        Lifetime.dead_after result ~phase
        |> List.filter (fun site -> line_of site <> None))
  in
  let nphases = List.length dead_by_phase in
  let phase = ref (-1) in
  List.concat_map
    (fun op ->
      match op with
      | Ir.For _ | Ir.ParFor _ ->
        incr phase;
        (* Only end lifetimes strictly before the function's last phase:
           function exit handles the rest naturally. *)
        if !phase < nphases - 1 then
          op :: List.map (fun s -> Ir.EvictSite s) (List.nth dead_by_phase !phase)
        else [ op ]
      | Ir.Bin _ | Ir.Fbin _ | Ir.Cmp _ | Ir.Fcmp _ | Ir.Not _ | Ir.I2f _
      | Ir.F2i _ | Ir.Mov _ | Ir.Alloc _ | Ir.Free _ | Ir.Gep _ | Ir.Load _
      | Ir.Store _ | Ir.Call _ | Ir.While _ | Ir.If _ | Ir.Ret _
      | Ir.Prefetch _ | Ir.FlushEvict _ | Ir.EvictSite _ | Ir.ProfEnter _
      | Ir.ProfExit _ ->
        [ op ])
    body

let run_func program bindings ~line_of (f : Ir.func) =
  let site_of_ty = Mira_analysis.Remotable_flow.site_of_ty program in
  let param_sites =
    match List.assoc_opt f.Ir.f_name bindings with Some b -> b | None -> []
  in
  let result = Pattern.analyze program f ~param_sites ~site_of_ty () in
  (* Flush-behind only pays off for data this function streams through
     once; a re-scanned read-write buffer would be written back and
     refetched over and over. *)
  let streaming site =
    match Pattern.summary_for result site with
    | Some ss -> ss.Pattern.ss_read_only || ss.Pattern.ss_write_only
    | None -> false
  in
  let ctx = { line_of; next_reg = f.Ir.f_nregs; loop_table = Hashtbl.create 16 } in
  index_loops ctx result.Pattern.r_loops;
  let body = rewrite_block ctx ~streaming f.Ir.f_body in
  let body = insert_lifetime_ends result line_of body in
  { f with Ir.f_body = body; f_nregs = ctx.next_reg }

let run program ~line_of =
  let bindings = Mira_analysis.Remotable_flow.param_sites_of_program program in
  {
    program with
    Ir.p_funcs =
      List.map
        (fun (name, f) -> (name, run_func program bindings ~line_of f))
        program.Ir.p_funcs;
  }
