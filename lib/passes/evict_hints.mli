(** Eviction hints (§4.5) and lifetime-driven section endings.

    Two transformations:

    - {b streaming flush-behind}: in a loop walking a sectioned site
      sequentially, asynchronously flush the line [D] iterations behind
      the current position and mark it evictable — the data will not be
      touched again, so it becomes the preferred victim and its
      write-back happens off the critical path;
    - {b lifetime endings}: after the last top-level loop that touches
      a site (per [Mira_analysis.Lifetime]), insert [EvictSite] so all
      of the site's cached data is released for other sections — the
      behaviour that lets GPT-2 run layer-by-layer in a sliver of local
      memory. *)

val run :
  Mira_mir.Ir.program ->
  line_of:(int -> int option) ->
  Mira_mir.Ir.program

val behind_distance : line:int -> elem:int -> int
(** Iterations of lag before flushing (exposed for tests). *)
