module Ir = Mira_mir.Ir

let same_operand a b =
  match (a, b) with
  | Ir.Oreg x, Ir.Oreg y -> x = y
  | Ir.Oint x, Ir.Oint y -> Int64.equal x y
  | Ir.Obool x, Ir.Obool y -> x = y
  | Ir.Ofloat x, Ir.Ofloat y -> x = y
  | Ir.Ounit, Ir.Ounit -> true
  | (Ir.Oreg _ | Ir.Oint _ | Ir.Obool _ | Ir.Ofloat _ | Ir.Ounit), _ -> false

(* Effects of a loop body: (sites read, sites written), and whether it
   contains constructs that block fusion. *)
let body_effects sm body =
  let reads = Hashtbl.create 8 in
  let writes = Hashtbl.create 8 in
  let blocked = ref false in
  Ir.iter_ops
    (fun op ->
      match op with
      | Ir.Load { ptr; _ } ->
        let site = Site_map.site_of_operand sm ptr in
        if site >= 0 then Hashtbl.replace reads site () else blocked := true
      | Ir.Store { ptr; _ } ->
        let site = Site_map.site_of_operand sm ptr in
        if site >= 0 then Hashtbl.replace writes site () else blocked := true
      | Ir.Call _ | Ir.While _ | Ir.ParFor _ | Ir.Alloc _ | Ir.Free _
      | Ir.Ret _ | Ir.EvictSite _ ->
        blocked := true
      | Ir.Bin _ | Ir.Fbin _ | Ir.Cmp _ | Ir.Fcmp _ | Ir.Not _ | Ir.I2f _
      | Ir.F2i _ | Ir.Mov _ | Ir.Gep _ | Ir.For _ | Ir.If _ | Ir.Prefetch _
      | Ir.FlushEvict _ | Ir.ProfEnter _ | Ir.ProfExit _ ->
        ())
    body;
  (reads, writes, !blocked)

let hashtbl_keys h = Hashtbl.fold (fun k () acc -> k :: acc) h []

let independent (r1, w1) (r2, w2) =
  let disjoint a b = List.for_all (fun k -> not (Hashtbl.mem b k)) (hashtbl_keys a) in
  (* No write-read, read-write, or write-write overlap across bodies.
     (Same-index elementwise accesses would actually be safe, but the
     conservative rule suffices for the batching the paper exercises.) *)
  disjoint w1 r2 && disjoint w1 w2 && disjoint r1 w2

let fusable_loops sm op1 op2 =
  match (op1, op2) with
  | ( Ir.For { lo = lo1; hi = hi1; step = s1; body = b1; _ },
      Ir.For { lo = lo2; hi = hi2; step = s2; body = b2; _ } ) ->
    same_operand lo1 lo2 && same_operand hi1 hi2 && same_operand s1 s2
    &&
    let r1, w1, blocked1 = body_effects sm b1 in
    let r2, w2, blocked2 = body_effects sm b2 in
    (not blocked1) && (not blocked2) && independent (r1, w1) (r2, w2)
  | _, _ -> false

let fuse op1 op2 =
  match (op1, op2) with
  | Ir.For f1, Ir.For f2 ->
    (* The second loop's iv becomes an alias of the first's. *)
    let alias = Ir.Mov (f2.iv, Ir.Oreg f1.iv) in
    Ir.For { f1 with body = f1.body @ (alias :: f2.body) }
  | _, _ -> invalid_arg "Fusion.fuse: not For loops"

(* One fusion sweep over a block; returns the block and whether anything
   changed. *)
let rec sweep sm block =
  match block with
  | op1 :: op2 :: rest when fusable_loops sm op1 op2 ->
    let fused, _ = sweep sm (fuse op1 op2 :: rest) in
    (fused, true)
  | op :: rest ->
    let op, c1 = sweep_op sm op in
    let rest, c2 = sweep sm rest in
    (op :: rest, c1 || c2)
  | [] -> ([], false)

and sweep_op sm op =
  match op with
  | Ir.For f ->
    let body, c = sweep sm f.body in
    (Ir.For { f with body }, c)
  | Ir.ParFor f ->
    let body, c = sweep sm f.body in
    (Ir.ParFor { f with body }, c)
  | Ir.While w ->
    let cond, c1 = sweep sm w.cond in
    let body, c2 = sweep sm w.body in
    (Ir.While { w with cond; body }, c1 || c2)
  | Ir.If i ->
    let then_, c1 = sweep sm i.then_ in
    let else_, c2 = sweep sm i.else_ in
    (Ir.If { i with then_; else_ }, c1 || c2)
  | Ir.Bin _ | Ir.Fbin _ | Ir.Cmp _ | Ir.Fcmp _ | Ir.Not _ | Ir.I2f _
  | Ir.F2i _ | Ir.Mov _ | Ir.Alloc _ | Ir.Free _ | Ir.Gep _ | Ir.Load _
  | Ir.Store _ | Ir.Call _ | Ir.Ret _ | Ir.Prefetch _ | Ir.FlushEvict _
  | Ir.EvictSite _ | Ir.ProfEnter _ | Ir.ProfExit _ ->
    (op, false)

let run_func program bindings (f : Ir.func) =
  let param_sites =
    match List.assoc_opt f.Ir.f_name bindings with Some b -> b | None -> []
  in
  let sm = Site_map.build ~param_sites program f in
  let rec fixpoint body n =
    if n = 0 then body
    else begin
      let body', changed = sweep sm body in
      if changed then fixpoint body' (n - 1) else body'
    end
  in
  { f with Ir.f_body = fixpoint f.Ir.f_body 8 }

let run program =
  let bindings = Mira_analysis.Remotable_flow.param_sites_of_program program in
  {
    program with
    Ir.p_funcs =
      List.map
        (fun (name, f) -> (name, run_func program bindings f))
        program.Ir.p_funcs;
  }

let fusable program func op1 op2 =
  let sm = Site_map.build program func in
  fusable_loops sm op1 op2
