(** Data-access batching via loop fusion (§4.5).

    Adjacent loops with identical bounds whose bodies are independent
    (no site written by one and touched by the other, no calls or
    nested parallelism) are fused so that their far-memory accesses
    batch: one pass over the fused loop touches all arrays in the same
    window, turning k separate scans (each with its own cold misses)
    into one scan that fetches every array once — the paper's
    avg/min/max DataFrame example (Figure 23). *)

val run : Mira_mir.Ir.program -> Mira_mir.Ir.program

val fusable :
  Mira_mir.Ir.program -> Mira_mir.Ir.func -> Mira_mir.Ir.op -> Mira_mir.Ir.op -> bool
(** Exposed for tests: whether two loop ops can fuse. *)
