module Ir = Mira_mir.Ir

let instrument_func (f : Ir.func) =
  let name = f.Ir.f_name in
  let body =
    Ir.expand_ops
      (fun op ->
        match op with
        | Ir.Ret _ -> [ Ir.ProfExit name; op ]
        | Ir.Bin _ | Ir.Fbin _ | Ir.Cmp _ | Ir.Fcmp _ | Ir.Not _ | Ir.I2f _
        | Ir.F2i _ | Ir.Mov _ | Ir.Alloc _ | Ir.Free _ | Ir.Gep _ | Ir.Load _
        | Ir.Store _ | Ir.Call _ | Ir.For _ | Ir.ParFor _ | Ir.While _
        | Ir.If _ | Ir.Prefetch _ | Ir.FlushEvict _ | Ir.EvictSite _
        | Ir.ProfEnter _ | Ir.ProfExit _ ->
          [ op ])
      f.Ir.f_body
  in
  { f with Ir.f_body = Ir.ProfEnter name :: body }

let already_instrumented (f : Ir.func) =
  match f.Ir.f_body with Ir.ProfEnter _ :: _ -> true | _ -> false

let run (p : Ir.program) =
  {
    p with
    Ir.p_funcs =
      List.map
        (fun (name, f) ->
          (name, if already_instrumented f then f else instrument_func f))
        p.Ir.p_funcs;
  }

let run_only program ~names =
  {
    program with
    Ir.p_funcs =
      List.map
        (fun (name, f) ->
          if List.mem name names && not (already_instrumented f) then
            (name, instrument_func f)
          else (name, f))
        program.Ir.p_funcs;
  }

let strip_func (f : Ir.func) =
  let body =
    Ir.expand_ops
      (fun op ->
        match op with
        | Ir.ProfEnter _ | Ir.ProfExit _ -> []
        | Ir.Bin _ | Ir.Fbin _ | Ir.Cmp _ | Ir.Fcmp _ | Ir.Not _ | Ir.I2f _
        | Ir.F2i _ | Ir.Mov _ | Ir.Alloc _ | Ir.Free _ | Ir.Gep _ | Ir.Load _
        | Ir.Store _ | Ir.Call _ | Ir.For _ | Ir.ParFor _ | Ir.While _
        | Ir.If _ | Ir.Ret _ | Ir.Prefetch _ | Ir.FlushEvict _ | Ir.EvictSite _ ->
          [ op ])
      f.Ir.f_body
  in
  { f with Ir.f_body = body }

let strip (p : Ir.program) =
  { p with Ir.p_funcs = List.map (fun (name, f) -> (name, strip_func f)) p.Ir.p_funcs }
