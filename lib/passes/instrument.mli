(** Profiling instrumentation (§4.1).

    Wraps every function body in [ProfEnter]/[ProfExit] events.  The
    events are coarse (function level) so the run-time cost is the
    0.4-0.7% the paper reports, not per-access tracing. *)

val run : Mira_mir.Ir.program -> Mira_mir.Ir.program

val run_only :
  Mira_mir.Ir.program -> names:string list -> Mira_mir.Ir.program
(** Instrument only the named functions (used to time the measured
    "work" function uniformly across all systems). *)

val strip : Mira_mir.Ir.program -> Mira_mir.Ir.program
(** Remove all profiling events (for final, non-profiled compilations). *)
