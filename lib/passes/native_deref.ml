module Ir = Mira_mir.Ir
module Types = Mira_mir.Types

(* Key identifying "the same element": the gep's base and index
   operands.  Two geps with equal base+index but different field
   offsets address the same element, hence (line permitting) the same
   cache line. *)
type key = Ir.operand * Ir.operand

let mark_block program bindings line_of (f : Ir.func) =
  let param_sites =
    match List.assoc_opt f.Ir.f_name bindings with Some b -> b | None -> []
  in
  let sm = Site_map.build ~param_sites program f in
  let elem_fits site elem_bytes =
    match line_of site with Some line -> elem_bytes <= line | None -> false
  in
  (* Walk one block linearly, tracking the elements already dereferenced
     in this block instance.  Nested loops/whiles start fresh scopes
     (their bodies re-execute); ifs inherit a copy (branches execute at
     most once within the instance, but marking inside a branch based on
     a leader outside it is sound since the leader dominates). *)
  let rec go (seen : (key, unit) Hashtbl.t) block =
    List.map (go_op seen) block
  and go_op seen op =
    match op with
    | Ir.Load ({ ptr = Ir.Oreg r; meta; _ } as l) when meta.Ir.am_remote ->
      (match Site_map.gep_parts sm r with
      | Some (base, index, elem, _field) when elem_fits meta.Ir.am_site (Types.size_of elem) ->
        let key = (base, index) in
        if Hashtbl.mem seen key then
          Ir.Load { l with meta = { meta with Ir.am_native = true } }
        else begin
          Hashtbl.replace seen key ();
          op
        end
      | Some _ | None -> op)
    | Ir.Store ({ ptr = Ir.Oreg r; meta; _ } as s) when meta.Ir.am_remote ->
      (match Site_map.gep_parts sm r with
      | Some (base, index, elem, _field) when elem_fits meta.Ir.am_site (Types.size_of elem) ->
        let key = (base, index) in
        if Hashtbl.mem seen key then
          Ir.Store { s with meta = { meta with Ir.am_native = true } }
        else begin
          Hashtbl.replace seen key ();
          op
        end
      | Some _ | None -> op)
    | Ir.For fo -> Ir.For { fo with body = go (Hashtbl.create 8) fo.body }
    | Ir.ParFor fo -> Ir.ParFor { fo with body = go (Hashtbl.create 8) fo.body }
    | Ir.While w ->
      Ir.While
        { w with
          cond = go (Hashtbl.create 8) w.cond;
          body = go (Hashtbl.create 8) w.body }
    | Ir.If i ->
      Ir.If
        { i with
          then_ = go (Hashtbl.copy seen) i.then_;
          else_ = go (Hashtbl.copy seen) i.else_ }
    | Ir.Load _ | Ir.Store _ | Ir.Bin _ | Ir.Fbin _ | Ir.Cmp _ | Ir.Fcmp _
    | Ir.Not _ | Ir.I2f _ | Ir.F2i _ | Ir.Mov _ | Ir.Alloc _ | Ir.Free _
    | Ir.Gep _ | Ir.Call _ | Ir.Ret _ | Ir.Prefetch _ | Ir.FlushEvict _
    | Ir.EvictSite _ | Ir.ProfEnter _ | Ir.ProfExit _ ->
      op
  in
  { f with Ir.f_body = go (Hashtbl.create 8) f.Ir.f_body }

let run program ~line_of =
  let bindings = Mira_analysis.Remotable_flow.param_sites_of_program program in
  {
    program with
    Ir.p_funcs =
      List.map
        (fun (name, f) -> (name, mark_block program bindings line_of f))
        program.Ir.p_funcs;
  }
