(** Dereference-to-native-load conversion (§4.4).

    Within one straight-line scope (a loop body or block), the second
    and later accesses to the {e same element} of a sectioned object
    (same base pointer, same index operand) are guaranteed to hit the
    line the first access brought in — provided the element fits in the
    section's line and no conflicting access intervenes.  Those
    accesses are marked [am_native]: the runtime skips the cache lookup
    entirely and performs a plain memory access.

    The run-time [load_native] path still falls back to a full lookup
    if the line is absent, so even a wrong proof cannot corrupt data —
    it only costs performance (see [Mira_cache.Section]). *)

val run :
  Mira_mir.Ir.program ->
  line_of:(int -> int option) ->
  Mira_mir.Ir.program
