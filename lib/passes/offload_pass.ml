module Ir = Mira_mir.Ir
module Offload = Mira_analysis.Offload_analysis

let mark_remotable program =
  let remotable = Mira_analysis.Remotable_flow.remotable_functions program in
  {
    program with
    Ir.p_funcs =
      List.map
        (fun (name, f) ->
          (name, { f with Ir.f_remotable = List.mem name remotable }))
        program.Ir.p_funcs;
  }

let run program ?explicit ~params () =
  let program = mark_remotable program in
  let scores = Offload.analyze program ~params () in
  let chosen =
    match explicit with
    | Some names -> names
    | None ->
      List.filter_map
        (fun s -> if Offload.should_offload s then Some s.Offload.o_name else None)
        scores
  in
  let sites_of name =
    match List.find_opt (fun s -> String.equal s.Offload.o_name name) scores with
    | Some s -> s.Offload.o_sites
    | None -> []
  in
  {
    program with
    Ir.p_funcs =
      List.map
        (fun (name, f) ->
          if List.mem name chosen && f.Ir.f_remotable then
            (name, { f with Ir.f_offloaded = true; f_offload_sites = sites_of name })
          else (name, f))
        program.Ir.p_funcs;
  }
