(** Function offloading (§4.8): marks the functions chosen by
    [Mira_analysis.Offload_analysis] as offloaded and records the
    allocation sites the caller must flush before / invalidate after
    the RPC. *)

val run :
  Mira_mir.Ir.program ->
  ?explicit:string list ->
  params:Mira_sim.Params.t ->
  unit ->
  Mira_mir.Ir.program
(** With [explicit], offload exactly those functions (they must be
    remotable); otherwise offload every function whose analysis
    benefit is positive. *)

val mark_remotable : Mira_mir.Ir.program -> Mira_mir.Ir.program
(** Only set [f_remotable] flags (no offloading decision). *)
