type plan = {
  selected : int list;
  lines : (int * int) list;
  fuse : bool;
  prefetch : bool;
  evict : bool;
  native : bool;
  offload : [ `None | `Auto | `Only of string list ];
  instrument : bool;
}

let plan_default =
  {
    selected = [];
    lines = [];
    fuse = false;
    prefetch = false;
    evict = false;
    native = false;
    offload = `None;
    instrument = false;
  }

let plan_all ~selected ~lines =
  {
    selected;
    lines;
    fuse = true;
    prefetch = true;
    evict = true;
    native = true;
    offload = `Auto;
    instrument = false;
  }

let apply program plan ~params =
  let line_of site = List.assoc_opt site plan.lines in
  let program = Instrument.strip program in
  let program = if plan.fuse then Fusion.run program else program in
  let program = Convert_remote.run program ~selected:plan.selected in
  let program =
    if plan.prefetch then Prefetch_pass.run program ~params ~line_of else program
  in
  let program =
    if plan.evict then Evict_hints.run program ~line_of else program
  in
  let program =
    if plan.native then Native_deref.run program ~line_of else program
  in
  let program =
    match plan.offload with
    | `None -> program
    | `Auto -> Offload_pass.run program ~params ()
    | `Only names -> Offload_pass.run program ~explicit:names ~params ()
  in
  let program = if plan.instrument then Instrument.run program else program in
  Mira_mir.Verifier.verify_exn program;
  program
