(** The compilation pipeline: applies the Mira passes in the order the
    controller's plan dictates.

    Order matters: fusion first (it changes loop structure the other
    passes analyze), then conversion to the rmem dialect, prefetching
    and eviction hints (which need the rmem metas and section line
    sizes), dereference-to-native last (it sees the final access
    sequence), offloading, and finally optional instrumentation for the
    next profiling run. *)

type plan = {
  selected : int list;  (** sites converted to remote (sectioned) *)
  lines : (int * int) list;  (** site -> section line size in bytes *)
  fuse : bool;
  prefetch : bool;
  evict : bool;
  native : bool;
  offload : [ `None | `Auto | `Only of string list ];
  instrument : bool;
}

val plan_default : plan
(** Everything off, nothing selected. *)

val plan_all : selected:int list -> lines:(int * int) list -> plan
(** All optimizations on, auto offloading, no instrumentation. *)

val apply :
  Mira_mir.Ir.program -> plan -> params:Mira_sim.Params.t -> Mira_mir.Ir.program
(** The result is re-verified; raises [Failure] if a pass produced
    malformed IR (a pass bug, not a user error). *)
