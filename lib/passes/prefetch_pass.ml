module Ir = Mira_mir.Ir
module Types = Mira_mir.Types
module Pattern = Mira_analysis.Pattern

let distance_iters ~params ~body_ops =
  let p = params in
  (* Estimated cost of one iteration: its ops plus a couple of cache
     hits (hits in compiler-controlled sections cost a native access). *)
  let iter_ns =
    (float_of_int (max 1 body_ops) *. p.Mira_sim.Params.native_op_ns)
    +. (2.0 *. p.Mira_sim.Params.native_mem_ns)
  in
  let d = ceil (p.Mira_sim.Params.one_sided_rtt_ns /. iter_ns) in
  Mira_util.Misc.clamp ~lo:1 ~hi:8192 (int_of_float d)

type ctx = {
  program : Ir.program;
  params : Mira_sim.Params.t;
  line_of : int -> int option;
  site_count : int -> int64 option;  (* constant element count of a site *)
  mutable next_reg : int;
  loop_table : (Ir.reg, Pattern.loop_info) Hashtbl.t;
}

let fresh ctx =
  let r = ctx.next_reg in
  ctx.next_reg <- r + 1;
  r

let rec index_loops ctx (loops : Pattern.loop_info list) =
  List.iter
    (fun l ->
      Hashtbl.replace ctx.loop_table l.Pattern.l_iv l;
      index_loops ctx l.Pattern.l_children)
    loops

let defined_regs = Block_util.defined_regs
let operand_defined_in = Block_util.operand_defined_in

let remote_meta site = { Ir.am_site = site; am_remote = true; am_native = false }

(* Build the guarded prefetch snippet for one access group, gated to
   fire once per half-line of progress (strength reduction). *)
let sequential_snippet ctx ~iv ~hi ~step ~dist ~(g : Pattern.simple_gep) ~line =
  let c = match g.Pattern.g_index with Pattern.Idx_iv_plus c -> c | _ -> 0L in
  let offset = Int64.add (Int64.mul (Int64.of_int dist) step) c in
  let elem = Mira_mir.Types.size_of g.Pattern.g_elem in
  let gate =
    Mira_util.Misc.next_pow2
      (max 1 (line / max 1 (elem * Int64.to_int (max 1L step)) / 2))
  in
  let d = fresh ctx in
  let cmp = fresh ctx in
  let p = fresh ctx in
  let body =
    [
      Ir.Bin (d, Ir.Add, Ir.Oreg iv, Ir.Oint offset);
      Ir.Cmp (cmp, Ir.Lt, Ir.Oreg d, hi);
      Ir.If
        {
          cond = Ir.Oreg cmp;
          then_ =
            [
              Ir.Gep
                {
                  dst = p;
                  base = g.Pattern.g_base;
                  index = Ir.Oreg d;
                  elem = g.Pattern.g_elem;
                  field_off = 0;
                };
              Ir.Prefetch
                { ptr = Ir.Oreg p; len = line; meta = remote_meta g.Pattern.g_site };
            ];
          else_ = [];
        };
    ]
  in
  if gate <= 1 then body
  else begin
    let m = fresh ctx in
    let z = fresh ctx in
    [
      Ir.Bin (m, Ir.Land, Ir.Oreg iv, Ir.Oint (Int64.of_int (gate - 1)));
      Ir.Cmp (z, Ir.Eq, Ir.Oreg m, Ir.Oint 0L);
      Ir.If { cond = Ir.Oreg z; then_ = body; else_ = [] };
    ]
  end

let indirect_snippet ctx ~iv ~hi ~step ~dist ~(outer : Pattern.simple_gep)
    ~(inner : Pattern.simple_gep) ~line =
  let c = match inner.Pattern.g_index with Pattern.Idx_iv_plus c -> c | _ -> 0L in
  let offset = Int64.add (Int64.mul (Int64.of_int dist) step) c in
  let d = fresh ctx in
  let cmp = fresh ctx in
  let pa = fresh ctx in
  let tv = fresh ctx in
  let pb = fresh ctx in
  [
    Ir.Bin (d, Ir.Add, Ir.Oreg iv, Ir.Oint offset);
    Ir.Cmp (cmp, Ir.Lt, Ir.Oreg d, hi);
    Ir.If
      {
        cond = Ir.Oreg cmp;
        then_ =
          [
            Ir.Gep
              {
                dst = pa;
                base = inner.Pattern.g_base;
                index = Ir.Oreg d;
                elem = inner.Pattern.g_elem;
                field_off = inner.Pattern.g_field;
              };
            Ir.Load
              {
                dst = tv;
                ty = Types.I64;
                ptr = Ir.Oreg pa;
                meta = remote_meta inner.Pattern.g_site;
              };
            Ir.Gep
              {
                dst = pb;
                base = outer.Pattern.g_base;
                index = Ir.Oreg tv;
                elem = outer.Pattern.g_elem;
                field_off = 0;
              };
            Ir.Prefetch
              {
                ptr = Ir.Oreg pb;
                len = line;
                meta = remote_meta outer.Pattern.g_site;
              };
          ];
        else_ = [];
      };
  ]

(* Flattened multi-dimensional index (a[i*k + kk]): rebuild the affine
   form from the in-scope induction variables and prefetch [dist]
   innermost iterations ahead, guarded by the object's element count. *)
let affine_snippet ctx ~ivs ~depth ~dist ~c0 ~terms ~count ~(g : Pattern.simple_gep)
    ~line =
  let s_inner = match List.assoc_opt depth terms with Some s -> s | None -> 1L in
  (* Gate the (hot) snippet to once per half-line of progress: the
     strength reduction a real compiler would apply. *)
  let elem = Mira_mir.Types.size_of g.Pattern.g_elem in
  let gate =
    Mira_util.Misc.next_pow2
      (max 1 (line / max 1 (elem * Int64.to_int (max 1L s_inner)) / 2))
  in
  let acc = ref (Ir.Oint (Int64.add c0 (Int64.mul (Int64.of_int dist) s_inner))) in
  let ops = ref [] in
  List.iter
    (fun (d, coeff) ->
      match List.assoc_opt d ivs with
      | Some iv_reg ->
        let t = fresh ctx in
        ops := Ir.Bin (t, Ir.Mul, Ir.Oreg iv_reg, Ir.Oint coeff) :: !ops;
        let a = fresh ctx in
        ops := Ir.Bin (a, Ir.Add, !acc, Ir.Oreg t) :: !ops;
        acc := Ir.Oreg a
      | None -> ())
    terms;
  let cmp = fresh ctx in
  let p = fresh ctx in
  let body =
    List.rev !ops
    @ [
        Ir.Cmp (cmp, Ir.Lt, !acc, Ir.Oint count);
        Ir.If
          {
            cond = Ir.Oreg cmp;
            then_ =
              [
                Ir.Gep
                  {
                    dst = p;
                    base = g.Pattern.g_base;
                    index = !acc;
                    elem = g.Pattern.g_elem;
                    field_off = 0;
                  };
                Ir.Prefetch
                  { ptr = Ir.Oreg p; len = line;
                    meta = remote_meta g.Pattern.g_site };
              ];
            else_ = [];
          };
      ]
  in
  if gate <= 1 then body
  else begin
    match List.assoc_opt depth ivs with
    | None -> body
    | Some iv_reg ->
      let m = fresh ctx in
      let z = fresh ctx in
      [
        Ir.Bin (m, Ir.Land, Ir.Oreg iv_reg, Ir.Oint (Int64.of_int (gate - 1)));
        Ir.Cmp (z, Ir.Eq, Ir.Oreg m, Ir.Oint 0L);
        Ir.If { cond = Ir.Oreg z; then_ = body; else_ = [] };
      ]
  end

(* Loop preamble: prefetch the first window of a streaming access
   before the loop starts, so the loop's opening iterations do not
   demand-miss while the in-loop prefetcher ramps up. *)
let preamble_len ~dist ~stride_elems ~elem ~line =
  let bytes = dist * Int64.to_int (max 1L stride_elems) * elem in
  Mira_util.Misc.round_up (Mira_util.Misc.clamp ~lo:line ~hi:32768 bytes) line

let preamble_for_group ctx ~ivs ~depth ~lo ~dist ~(g : Pattern.simple_gep) ~line =
  let elem = Mira_mir.Types.size_of g.Pattern.g_elem in
  match g.Pattern.g_index with
  | Pattern.Idx_iv | Pattern.Idx_iv_plus _ ->
    let p = fresh ctx in
    let len = preamble_len ~dist ~stride_elems:1L ~elem ~line in
    [
      Ir.Gep
        { dst = p; base = g.Pattern.g_base; index = lo; elem = g.Pattern.g_elem;
          field_off = 0 };
      Ir.Prefetch { ptr = Ir.Oreg p; len; meta = remote_meta g.Pattern.g_site };
    ]
  | Pattern.Idx_affine { c0; terms } ->
    (* Start index with the inner iv at its lower bound (constant only). *)
    let lo_c = match lo with Ir.Oint c -> Some c | _ -> None in
    let s_inner = match List.assoc_opt depth terms with Some s -> s | None -> 1L in
    (match lo_c with
    | None -> []
    | Some lo_c ->
      let outer_ok =
        List.for_all (fun (d, _) -> d = depth || List.mem_assoc d ivs) terms
      in
      if not outer_ok then []
      else begin
        let acc = ref (Ir.Oint (Int64.add c0 (Int64.mul lo_c s_inner))) in
        let ops = ref [] in
        List.iter
          (fun (d, coeff) ->
            if d <> depth then begin
              match List.assoc_opt d ivs with
              | Some iv_reg ->
                let t = fresh ctx in
                ops := Ir.Bin (t, Ir.Mul, Ir.Oreg iv_reg, Ir.Oint coeff) :: !ops;
                let a = fresh ctx in
                ops := Ir.Bin (a, Ir.Add, !acc, Ir.Oreg t) :: !ops;
                acc := Ir.Oreg a
              | None -> ()
            end)
          terms;
        let p = fresh ctx in
        let len = preamble_len ~dist ~stride_elems:s_inner ~elem ~line in
        List.rev !ops
        @ [
            Ir.Gep
              { dst = p; base = g.Pattern.g_base; index = !acc;
                elem = g.Pattern.g_elem; field_off = 0 };
            Ir.Prefetch
              { ptr = Ir.Oreg p; len; meta = remote_meta g.Pattern.g_site };
          ]
      end)
  | Pattern.Idx_loaded _ | Pattern.Idx_const _ | Pattern.Idx_other -> []

(* Deduplicate prefetch targets within a loop: one per
   (site, base operand, index class). *)
let group_key (g : Pattern.simple_gep) =
  let idx_class =
    match g.Pattern.g_index with
    | Pattern.Idx_iv | Pattern.Idx_iv_plus _ | Pattern.Idx_affine _ -> `Seq
    | Pattern.Idx_loaded inner -> `Ind (inner.Pattern.g_base, inner.Pattern.g_field)
    | Pattern.Idx_const _ | Pattern.Idx_other -> `Other
  in
  (g.Pattern.g_site, g.Pattern.g_base, idx_class)

(* Returns (preamble ops emitted before the loop, snippets for the
   body start). *)
let snippets_for_loop ctx (l : Pattern.loop_info) ~ivs ~lo ~hi ~step body =
  let defs = defined_regs body in
  let step_c = match step with Ir.Oint s -> s | _ -> 1L in
  let dist = distance_iters ~params:ctx.params ~body_ops:l.Pattern.l_body_ops in
  let preambles = ref [] in
  let seen = Hashtbl.create 8 in
  let snippets = List.concat_map
    (fun (a : Pattern.access) ->
      match (a.Pattern.a_gep, ctx.line_of a.Pattern.a_site) with
      | Some g, Some line when not (Hashtbl.mem seen (group_key g)) ->
        Hashtbl.replace seen (group_key g) ();
        if operand_defined_in defs g.Pattern.g_base then []
        else begin
          match g.Pattern.g_index with
          | Pattern.Idx_iv | Pattern.Idx_iv_plus _ ->
            preambles :=
              preamble_for_group ctx ~ivs ~depth:l.Pattern.l_depth ~lo ~dist ~g
                ~line
              :: !preambles;
            sequential_snippet ctx ~iv:l.Pattern.l_iv ~hi ~step:step_c ~dist ~g
              ~line
          | Pattern.Idx_affine { c0; terms } ->
            (* Needs every referenced iv in scope and a constant object
               size to guard against running past the allocation. *)
            (match ctx.site_count g.Pattern.g_site with
            | Some count
              when List.for_all (fun (d, _) -> List.mem_assoc d ivs) terms ->
              preambles :=
                preamble_for_group ctx ~ivs ~depth:l.Pattern.l_depth ~lo ~dist
                  ~g ~line
                :: !preambles;
              affine_snippet ctx ~ivs ~depth:l.Pattern.l_depth ~dist ~c0 ~terms
                ~count ~g ~line
            | Some _ | None -> [])
          | Pattern.Idx_loaded inner ->
            (match
               ( inner.Pattern.g_index,
                 ctx.line_of inner.Pattern.g_site,
                 operand_defined_in defs inner.Pattern.g_base )
             with
            | (Pattern.Idx_iv | Pattern.Idx_iv_plus _), Some _, false ->
              indirect_snippet ctx ~iv:l.Pattern.l_iv ~hi ~step:step_c ~dist
                ~outer:g ~inner ~line
            | _, _, _ -> [])
          | Pattern.Idx_const _ | Pattern.Idx_other -> []
        end
      | _, _ -> [])
    l.Pattern.l_accesses
  in
  (List.rev !preambles, snippets)

(* Pointer-chase: prefetch the target of a freshly loaded remote pointer. *)
let chase_expansion ctx op =
  match op with
  | Ir.Load { dst; ty = Types.Ptr pointee; meta; _ }
    when meta.Ir.am_remote ->
    let target =
      match Mira_analysis.Remotable_flow.site_of_ty ctx.program pointee with
      | Some s -> s
      | None -> -1
    in
    (match (target >= 0, ctx.line_of target) with
    | true, Some line ->
      [ op; Ir.Prefetch { ptr = Ir.Oreg dst; len = line; meta = remote_meta target } ]
    | _, _ -> [ op ])
  | Ir.Bin _ | Ir.Fbin _ | Ir.Cmp _ | Ir.Fcmp _ | Ir.Not _ | Ir.I2f _
  | Ir.F2i _ | Ir.Mov _ | Ir.Alloc _ | Ir.Free _ | Ir.Gep _ | Ir.Load _
  | Ir.Store _ | Ir.Call _ | Ir.For _ | Ir.ParFor _ | Ir.While _ | Ir.If _
  | Ir.Ret _ | Ir.Prefetch _ | Ir.FlushEvict _ | Ir.EvictSite _
  | Ir.ProfEnter _ | Ir.ProfExit _ ->
    [ op ]

let rec rewrite_block ctx ~ivs block =
  List.concat_map (rewrite_op ctx ~ivs) block

and rewrite_op ctx ~ivs op =
  match op with
  | Ir.For ({ iv; lo; hi; step; body; _ } as f) ->
    let ivs' = (List.length ivs, iv) :: ivs in
    let body = rewrite_block ctx ~ivs:ivs' body in
    let preamble, snippets =
      match Hashtbl.find_opt ctx.loop_table iv with
      | Some l when l.Pattern.l_children = [] ->
        (* Innermost loops only: outer loops' accesses repeat per inner
           trip and would spam duplicate prefetches. *)
        snippets_for_loop ctx l ~ivs:ivs' ~lo ~hi ~step body
      | Some _ | None -> ([], [])
    in
    List.concat preamble @ [ Ir.For { f with body = snippets @ body } ]
  | Ir.ParFor ({ iv; lo; hi; step; body; _ } as f) ->
    let ivs' = (List.length ivs, iv) :: ivs in
    let body = rewrite_block ctx ~ivs:ivs' body in
    let preamble, snippets =
      match Hashtbl.find_opt ctx.loop_table iv with
      | Some l when l.Pattern.l_children = [] ->
        snippets_for_loop ctx l ~ivs:ivs' ~lo ~hi ~step body
      | Some _ | None -> ([], [])
    in
    List.concat preamble @ [ Ir.ParFor { f with body = snippets @ body } ]
  | Ir.While w ->
    [ Ir.While
        { w with
          cond = rewrite_block ctx ~ivs w.cond;
          body = rewrite_block ctx ~ivs w.body } ]
  | Ir.If i ->
    [ Ir.If
        { i with
          then_ = rewrite_block ctx ~ivs i.then_;
          else_ = rewrite_block ctx ~ivs i.else_ } ]
  | Ir.Bin _ | Ir.Fbin _ | Ir.Cmp _ | Ir.Fcmp _ | Ir.Not _ | Ir.I2f _
  | Ir.F2i _ | Ir.Mov _ | Ir.Alloc _ | Ir.Free _ | Ir.Gep _ | Ir.Load _
  | Ir.Store _ | Ir.Call _ | Ir.Ret _ | Ir.Prefetch _ | Ir.FlushEvict _
  | Ir.EvictSite _ | Ir.ProfEnter _ | Ir.ProfExit _ ->
    [ op ]

(* Constant element counts per allocation site (program-wide scan). *)
let site_counts program =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun (_, f) ->
      Ir.iter_ops
        (fun op ->
          match op with
          | Ir.Alloc { site; count = Ir.Oint n; _ } ->
            (match Hashtbl.find_opt counts site with
            | Some (Some m) when m <> n -> Hashtbl.replace counts site None
            | Some _ -> ()
            | None -> Hashtbl.replace counts site (Some n))
          | Ir.Alloc { site; _ } -> Hashtbl.replace counts site None
          | Ir.Bin _ | Ir.Fbin _ | Ir.Cmp _ | Ir.Fcmp _ | Ir.Not _ | Ir.I2f _
          | Ir.F2i _ | Ir.Mov _ | Ir.Free _ | Ir.Gep _ | Ir.Load _ | Ir.Store _
          | Ir.Call _ | Ir.For _ | Ir.ParFor _ | Ir.While _ | Ir.If _ | Ir.Ret _
          | Ir.Prefetch _ | Ir.FlushEvict _ | Ir.EvictSite _ | Ir.ProfEnter _
          | Ir.ProfExit _ ->
            ())
        f.Ir.f_body)
    program.Ir.p_funcs;
  fun site -> Option.join (Hashtbl.find_opt counts site)

let run_func program bindings ~params ~line_of ~site_count (f : Ir.func) =
  let site_of_ty = Mira_analysis.Remotable_flow.site_of_ty program in
  let param_sites =
    match List.assoc_opt f.Ir.f_name bindings with Some b -> b | None -> []
  in
  let result = Pattern.analyze program f ~param_sites ~site_of_ty () in
  let ctx =
    {
      program;
      params;
      line_of;
      site_count;
      next_reg = f.Ir.f_nregs;
      loop_table = Hashtbl.create 16;
    }
  in
  index_loops ctx result.Pattern.r_loops;
  let body = rewrite_block ctx ~ivs:[] f.Ir.f_body in
  let body = Ir.expand_ops (chase_expansion ctx) body in
  { f with Ir.f_body = body; f_nregs = ctx.next_reg }

let run program ~params ~line_of =
  let bindings = Mira_analysis.Remotable_flow.param_sites_of_program program in
  let site_count = site_counts program in
  {
    program with
    Ir.p_funcs =
      List.map
        (fun (name, f) ->
          (name, run_func program bindings ~params ~line_of ~site_count f))
        program.Ir.p_funcs;
  }
