(** Adaptive prefetch insertion (§4.5).

    Three program-guided prefetch shapes, all inserted as explicit rmem
    ops with bounds guards:

    - {b sequential/strided}: in a loop indexing a sectioned site with
      the induction variable, prefetch the line that iteration
      [i + D] will touch, where [D] is chosen so the fetch completes
      one network round trip before it is needed (estimated from the
      loop body's compute cost and the measured RTT);
    - {b indirect} ([B[A[i]]]): load [A[i+D]] (itself sequential, hence
      cheap) and prefetch [B] at that index — the paper's introduction
      example, impossible for history-based prefetchers;
    - {b pointer chase}: after loading a pointer field from a sectioned
      object, immediately prefetch its target (one-step lookahead used
      for MCF-style traversals).

    Only accesses already converted to the rmem dialect (selected
    sites with a cache section) are prefetched. *)

val run :
  Mira_mir.Ir.program ->
  params:Mira_sim.Params.t ->
  line_of:(int -> int option) ->
  Mira_mir.Ir.program
(** [line_of site] is the section line size for sectioned sites. *)

val distance_iters :
  params:Mira_sim.Params.t -> body_ops:int -> int
(** Iterations of lookahead needed to hide one RTT (exposed for tests). *)
