module Ir = Mira_mir.Ir
module Types = Mira_mir.Types

type t = {
  sites : int array;
  chased_flags : bool array;
  geps : (Ir.operand * Ir.operand * Types.ty * int) option array;
}

let build ?(param_sites = []) program func =
  let n = max 1 func.Ir.f_nregs in
  let t =
    { sites = Array.make n (-1);
      chased_flags = Array.make n false;
      geps = Array.make n None }
  in
  let site_of_ty = Mira_analysis.Remotable_flow.site_of_ty program in
  let of_operand = function
    | Ir.Oreg r -> t.sites.(r)
    | Ir.Oint _ | Ir.Ofloat _ | Ir.Obool _ | Ir.Ounit -> -1
  in
  List.iter
    (fun (r, ty) ->
      match List.assoc_opt r param_sites with
      | Some s -> t.sites.(r) <- s
      | None ->
        (match ty with
        | Types.Ptr pointee ->
          t.sites.(r) <- (match site_of_ty pointee with Some s -> s | None -> -1)
        | Types.Unit | Types.Bool | Types.I64 | Types.F64 | Types.Struct _ -> ()))
    func.Ir.f_params;
  Ir.iter_ops
    (fun op ->
      match op with
      | Ir.Alloc { dst; site; _ } -> t.sites.(dst) <- site
      | Ir.Gep { dst; base; index; elem; field_off } ->
        t.sites.(dst) <- of_operand base;
        t.geps.(dst) <- Some (base, index, elem, field_off);
        (match base with
        | Ir.Oreg b -> t.chased_flags.(dst) <- t.chased_flags.(b)
        | Ir.Oint _ | Ir.Ofloat _ | Ir.Obool _ | Ir.Ounit -> ())
      | Ir.Mov (dst, src) ->
        t.sites.(dst) <- of_operand src;
        (match src with
        | Ir.Oreg s -> t.chased_flags.(dst) <- t.chased_flags.(s)
        | Ir.Oint _ | Ir.Ofloat _ | Ir.Obool _ | Ir.Ounit -> ())
      | Ir.Load { dst; ty = Types.Ptr pointee; _ } ->
        t.sites.(dst) <- (match site_of_ty pointee with Some s -> s | None -> -1);
        t.chased_flags.(dst) <- true
      | Ir.Load _ | Ir.Store _ | Ir.Bin _ | Ir.Fbin _ | Ir.Cmp _ | Ir.Fcmp _
      | Ir.Not _ | Ir.I2f _ | Ir.F2i _ | Ir.Free _ | Ir.Call _ | Ir.For _
      | Ir.ParFor _ | Ir.While _ | Ir.If _ | Ir.Ret _ | Ir.Prefetch _
      | Ir.FlushEvict _ | Ir.EvictSite _ | Ir.ProfEnter _ | Ir.ProfExit _ -> ())
    func.Ir.f_body;
  t

let site_of_reg t r = t.sites.(r)
let chased t r = t.chased_flags.(r)

let site_of_operand t = function
  | Ir.Oreg r -> t.sites.(r)
  | Ir.Oint _ | Ir.Ofloat _ | Ir.Obool _ | Ir.Ounit -> -1

let gep_parts t r = t.geps.(r)
