(** Per-function register -> allocation-site resolution.

    Because the IR is statically single-assignment, each register has
    exactly one defining op, so a single pre-order walk resolves every
    pointer register to its base allocation site: [Alloc] introduces a
    site, [Gep]/[Mov] propagate it, and a [Load] of pointer type
    resolves through type-based aliasing ([Remotable_flow.site_of_ty]).
    Registers holding pointers loaded from memory are flagged "chased".

    This is the workhorse used by the conversion and optimization
    passes to decide which memory operations touch which objects. *)

type t

val build :
  ?param_sites:(Mira_mir.Ir.reg * int) list ->
  Mira_mir.Ir.program -> Mira_mir.Ir.func -> t
(** [param_sites] binds parameter registers to allocation sites
    (computed interprocedurally by [Mira_analysis.Remotable_flow]). *)

val site_of_reg : t -> Mira_mir.Ir.reg -> int
(** -1 when unknown. *)

val chased : t -> Mira_mir.Ir.reg -> bool

val site_of_operand : t -> Mira_mir.Ir.operand -> int

val gep_parts :
  t -> Mira_mir.Ir.reg ->
  (Mira_mir.Ir.operand * Mira_mir.Ir.operand * Mira_mir.Types.ty * int) option
(** For a register defined by [Gep]: (base, index, elem, field_off). *)
