type range = { addr : int; len : int }

type t = {
  remote : Mira_sim.Remote_alloc.t;
  chunk : int;
  mutable buffer : range list;  (* address-ordered, coalesced *)
  mutable buffered : int;
  mutable refills : int;
}

let align8 n = (n + 7) land lnot 7

let create remote ~chunk =
  assert (chunk > 0);
  { remote; chunk; buffer = []; buffered = 0; refills = 0 }

let insert_range buffer { addr; len } =
  let rec insert = function
    | [] -> [ { addr; len } ]
    | r :: rest when addr + len < r.addr -> { addr; len } :: r :: rest
    | r :: rest when addr + len = r.addr -> { addr; len = len + r.len } :: rest
    | r :: rest when r.addr + r.len = addr ->
      (match { addr = r.addr; len = r.len + len } :: rest with
      | m :: (r2 :: rest2 as tail) ->
        if m.addr + m.len = r2.addr then { m with len = m.len + r2.len } :: rest2
        else m :: tail
      | merged -> merged)
    | r :: rest -> r :: insert rest
  in
  insert buffer

let try_take t len =
  let rec take acc = function
    | [] -> None
    | r :: rest when r.len >= len ->
      let remainder =
        if r.len = len then rest else { addr = r.addr + len; len = r.len - len } :: rest
      in
      Some (r.addr, List.rev_append acc remainder)
    | r :: rest -> take (r :: acc) rest
  in
  take [] t.buffer

let alloc t len =
  let len = align8 (max 8 len) in
  match try_take t len with
  | Some (addr, buffer) ->
    t.buffer <- buffer;
    t.buffered <- t.buffered - len;
    (addr, false)
  | None ->
    (* Refill in big chunks; fall back to the exact size when the far
       address space cannot serve a whole chunk. *)
    let grab, base =
      let want = max t.chunk len in
      match Mira_sim.Remote_alloc.alloc t.remote want with
      | base -> (want, base)
      | exception Out_of_memory -> (len, Mira_sim.Remote_alloc.alloc t.remote len)
    in
    t.refills <- t.refills + 1;
    t.buffer <- insert_range t.buffer { addr = base; len = grab };
    t.buffered <- t.buffered + grab;
    (match try_take t len with
    | Some (addr, buffer) ->
      t.buffer <- buffer;
      t.buffered <- t.buffered - len;
      (addr, true)
    | None -> assert false)

let free t ~addr ~len =
  let len = align8 (max 8 len) in
  t.buffer <- insert_range t.buffer { addr; len };
  t.buffered <- t.buffered + len

let refills t = t.refills
let buffered_bytes t = t.buffered
