(** Local-node allocator for far-memory addresses (§5.2.1).

    Works like a user-level malloc: it buffers address ranges obtained
    in large chunks from the far node's [Mira_sim.Remote_alloc] and
    serves [remotable.alloc] from the buffer, so most allocations need
    no network round trip.  The number of refills is observable (each
    refill costs one RPC to the far node, charged by the runtime). *)

type t

val create : Mira_sim.Remote_alloc.t -> chunk:int -> t
(** [chunk] is the minimum range requested from the remote allocator. *)

val alloc : t -> int -> int * bool
(** [alloc t len] returns an 8-byte aligned far address and whether a
    remote refill was needed (so the caller can charge the RPC). *)

val free : t -> addr:int -> len:int -> unit
(** Return a range to the local buffer. *)

val refills : t -> int
val buffered_bytes : t -> int
