type space = Local | Far

type ptr = { space : space; addr : int; site : int }

type t = {
  name : string;
  alloc : tid:int -> site:int -> bytes:int -> heap:bool -> ptr;
  free : tid:int -> ptr:ptr -> unit;
  load : tid:int -> ptr:ptr -> len:int -> native:bool -> int64;
  store : tid:int -> ptr:ptr -> len:int -> native:bool -> value:int64 -> unit;
  prefetch : tid:int -> ptr:ptr -> len:int -> unit;
  flush_evict : tid:int -> ptr:ptr -> len:int -> unit;
  evict_site : tid:int -> site:int -> unit;
  flush_sites : tid:int -> sites:int list -> unit;
  discard_sites : tid:int -> sites:int list -> unit;
  clock : tid:int -> Mira_sim.Clock.t;
  op_cost : tid:int -> float -> unit;
  enter : tid:int -> string -> unit;
  exit_ : tid:int -> string -> unit;
  offload_begin : tid:int -> unit;
  offload_end : tid:int -> unit;
  set_nthreads : int -> unit;
  profile : Profile.t;
  net : Mira_sim.Net.t;
  attribution : Mira_telemetry.Attribution.t;
  metadata_bytes : unit -> int;
  reset_timing : unit -> unit;
  elapsed : unit -> float;
}

let thread_clock t tid = t.clock ~tid
