(** The memory-system interface executed programs run against.

    The interpreter ([Mira_interp.Machine]) is generic over this record:
    Mira's section-based runtime ([Runtime]), the native baseline, and
    the FastSwap / Leap / AIFM baselines ([Mira_baselines]) all provide
    one.  Every call both moves real data and advances the calling
    thread's simulated clock according to the cost model. *)

type space =
  | Local  (** local DRAM: stack allocations, or everything for native *)
  | Far  (** far-memory address space, cached by the local runtime *)

type ptr = { space : space; addr : int; site : int }
(** [site] is the allocation site the pointed-to object came from
    (-1 when unknown); runtimes use it to route accesses to cache
    sections, mirroring the paper's section-id-carrying pointers. *)

type t = {
  name : string;
  alloc : tid:int -> site:int -> bytes:int -> heap:bool -> ptr;
  free : tid:int -> ptr:ptr -> unit;
  load : tid:int -> ptr:ptr -> len:int -> native:bool -> int64;
      (** [native] = the compiler proved residency (§4.4). *)
  store : tid:int -> ptr:ptr -> len:int -> native:bool -> value:int64 -> unit;
  prefetch : tid:int -> ptr:ptr -> len:int -> unit;
  flush_evict : tid:int -> ptr:ptr -> len:int -> unit;
  evict_site : tid:int -> site:int -> unit;
  flush_sites : tid:int -> sites:int list -> unit;
      (** Synchronous write-back of all cached data of the given sites
          (executed before an offloaded call). *)
  discard_sites : tid:int -> sites:int list -> unit;
      (** Invalidate cached data of the given sites without write-back
          (executed after an offloaded call mutated far memory). *)
  clock : tid:int -> Mira_sim.Clock.t;
  op_cost : tid:int -> float -> unit;
      (** Charge compute time (scaled if the thread runs offloaded). *)
  enter : tid:int -> string -> unit;  (** profiling: function entry *)
  exit_ : tid:int -> string -> unit;
  offload_begin : tid:int -> unit;
      (** Switch the thread to far-node execution: far accesses become
          node-local, compute slows down. *)
  offload_end : tid:int -> unit;
  set_nthreads : int -> unit;
      (** Announce the thread count of the next parallel region (lets
          runtimes model lock contention and split per-thread sections). *)
  profile : Profile.t;
  net : Mira_sim.Net.t;
  attribution : Mira_telemetry.Attribution.t;
      (** The stall-attribution ledger for this memory system; the
          interpreter charges offload RPC waits into it, the runtime
          everything else.  Baselines carry their own (mostly idle)
          ledger. *)
  metadata_bytes : unit -> int;
  reset_timing : unit -> unit;
      (** Zero clocks, network and cache statistics — keep data (used to
          exclude initialization from measurements). *)
  elapsed : unit -> float;
      (** Max over all thread clocks (total simulated runtime so far). *)
}

val thread_clock : t -> int -> Mira_sim.Clock.t
(** [clock] with the argument applied (convenience). *)
