type fn_stat = {
  mutable calls : int;
  mutable total_ns : float;
  mutable runtime_ns : float;
  mutable hits : int;
  mutable misses : int;
}

type site_stat = {
  mutable alloc_bytes : int;
  mutable allocs : int;
  mutable overhead_ns : float;
}

type frame = { fr_name : string; fr_enter : float }

type t = {
  funcs : (string, fn_stat) Hashtbl.t;
  sites : (int, site_stat) Hashtbl.t;
  touched : (string * int, unit) Hashtbl.t;  (* (function, site) pairs *)
  stacks : (int, frame list ref) Hashtbl.t;  (* per-thread call stacks *)
  mutable strict : bool;  (* raise on mismatched enter/exit *)
}

let create () =
  {
    funcs = Hashtbl.create 32;
    sites = Hashtbl.create 32;
    touched = Hashtbl.create 64;
    stacks = Hashtbl.create 8;
    strict = false;
  }

let set_strict t on = t.strict <- on

let fn_stat t name =
  match Hashtbl.find_opt t.funcs name with
  | Some s -> s
  | None ->
    let s = { calls = 0; total_ns = 0.0; runtime_ns = 0.0; hits = 0; misses = 0 } in
    Hashtbl.replace t.funcs name s;
    s

let site_stat t site =
  match Hashtbl.find_opt t.sites site with
  | Some s -> s
  | None ->
    let s = { alloc_bytes = 0; allocs = 0; overhead_ns = 0.0 } in
    Hashtbl.replace t.sites site s;
    s

let stack t tid =
  match Hashtbl.find_opt t.stacks tid with
  | Some s -> s
  | None ->
    let s = ref [] in
    Hashtbl.replace t.stacks tid s;
    s

let enter t ~tid ~now name =
  let st = stack t tid in
  st := { fr_name = name; fr_enter = now } :: !st;
  (fn_stat t name).calls <- (fn_stat t name).calls + 1

exception Mismatched_exit of { name : string; tid : int; stack : string list }

let exit_ t ~tid ~now name =
  let st = stack t tid in
  let on_stack = List.exists (fun fr -> String.equal fr.fr_name name) !st in
  let mismatched =
    match !st with
    | top :: _ when String.equal top.fr_name name -> false
    | _ -> true
  in
  if t.strict && mismatched then
    raise
      (Mismatched_exit
         { name; tid; stack = List.map (fun fr -> fr.fr_name) !st });
  if not on_stack then
    (* An exit with no matching enter: drop it rather than unwinding
       unrelated frames. *)
    ()
  else begin
    (* Pop to the matching frame, closing (and charging) every skipped
       frame as if it exited now — an unmatched inner enter must not
       leak open frames that would misattribute all later time. *)
    let rec pop = function
      | [] -> []
      | frame :: rest ->
        let s = fn_stat t frame.fr_name in
        s.total_ns <- s.total_ns +. (now -. frame.fr_enter);
        if String.equal frame.fr_name name then rest else pop rest
    in
    st := pop !st
  end

let current t ~tid =
  match !(stack t tid) with [] -> None | fr :: _ -> Some fr.fr_name

let iter_stack t tid fn = List.iter (fun fr -> fn fr.fr_name) !(stack t tid)

let add_runtime t ~tid ~ns =
  iter_stack t tid (fun name ->
      let s = fn_stat t name in
      s.runtime_ns <- s.runtime_ns +. ns)

let add_event t ~tid ~hit =
  iter_stack t tid (fun name ->
      let s = fn_stat t name in
      if hit then s.hits <- s.hits + 1 else s.misses <- s.misses + 1)

let add_site_overhead t ~site ~ns =
  let s = site_stat t site in
  s.overhead_ns <- s.overhead_ns +. ns

let add_alloc t ~site ~bytes =
  let s = site_stat t site in
  s.alloc_bytes <- s.alloc_bytes + bytes;
  s.allocs <- s.allocs + 1

let touch t ~tid ~site =
  iter_stack t tid (fun name ->
      if not (Hashtbl.mem t.touched (name, site)) then
        Hashtbl.replace t.touched (name, site) ())

let fn_stats t = Hashtbl.fold (fun name s acc -> (name, s) :: acc) t.funcs []
let site_stats t = Hashtbl.fold (fun site s acc -> (site, s) :: acc) t.sites []

let overhead_ratio s =
  let rest = s.total_ns -. s.runtime_ns in
  if rest <= 0.0 then infinity else s.runtime_ns /. rest

(* How many of [n] candidates a fraction keeps (at least one). *)
let frac_count ~frac n =
  Mira_util.Misc.clamp ~lo:1 ~hi:n (int_of_float (ceil (frac *. float_of_int n)))

(* The first [k] elements of a stable sort by [cmp], without sorting
   all n: a bounded heap of the best k seen so far, ordered worst-first
   over (element, input index) so ties resolve exactly like the stable
   sort did — O(n log k) instead of O(n log n) + a filteri walk. *)
let stable_top_k ~cmp k items =
  if k <= 0 then []
  else begin
    let worse (a, ia) (b, ib) =
      let c = cmp a b in
      c > 0 || (c = 0 && ia >= ib)
    in
    let heap = Mira_util.Min_heap.create ~le:worse in
    List.iteri
      (fun i x ->
        Mira_util.Min_heap.push heap (x, i);
        if Mira_util.Min_heap.length heap > k then
          ignore (Mira_util.Min_heap.pop heap))
      items;
    let rec drain acc =
      match Mira_util.Min_heap.pop heap with
      | None -> acc
      | Some (x, _) -> drain (x :: acc)
    in
    drain []
  end

(* Rank by absolute time lost to the runtime, tie-broken by the
   overhead ratio: with handfuls of functions the absolute measure is
   more robust than the paper's pure ratio (a tiny all-miss helper can
   out-rank the function that actually dominates execution). *)
let top_functions t ~frac =
  let items =
    fn_stats t |> List.filter (fun (_, s) -> s.runtime_ns > 0.0)
  in
  match items with
  | [] -> []
  | _ ->
    stable_top_k
      ~cmp:(fun (_, a) (_, b) ->
        match compare b.runtime_ns a.runtime_ns with
        | 0 -> compare (overhead_ratio b) (overhead_ratio a)
        | c -> c)
      (frac_count ~frac (List.length items))
      items
    |> List.map fst

let sites_of_function t name =
  Hashtbl.fold
    (fun (fn, site) () acc -> if String.equal fn name then site :: acc else acc)
    t.touched []
  |> List.sort_uniq compare

(* The paper picks the largest objects; we rank by the profiled
   runtime overhead each site actually caused (size as a tie-break) —
   the same profiling-guided spirit, robust to small-but-hot objects. *)
let largest_sites t ~frac ~among =
  let candidates =
    List.concat_map (sites_of_function t) among
    |> List.sort_uniq compare
    |> List.map (fun site ->
           let st = site_stat t site in
           (site, (st.overhead_ns, st.alloc_bytes)))
  in
  match candidates with
  | [] -> []
  | _ ->
    stable_top_k
      ~cmp:(fun (_, a) (_, b) -> compare b a)
      (frac_count ~frac (List.length candidates))
      candidates
    |> List.map fst

let reset t =
  Hashtbl.reset t.funcs;
  Hashtbl.reset t.sites;
  Hashtbl.reset t.touched;
  Hashtbl.reset t.stacks
