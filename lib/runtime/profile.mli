(** Run-time profiling counters (§4.1).

    Mira's compiler instruments functions with enter/exit events and
    the runtime attributes every nanosecond it spends (cache lookups,
    misses, evictions, stalls) to the functions currently on the
    per-thread call stack — inclusively, because selecting a function
    for analysis implicitly selects its callees.  Allocation sites
    record their total allocated bytes so the controller can pick the
    largest objects.  All times are simulated nanoseconds. *)

type fn_stat = {
  mutable calls : int;
  mutable total_ns : float;  (** inclusive wall (simulated) time *)
  mutable runtime_ns : float;  (** inclusive time in the far-memory runtime *)
  mutable hits : int;
  mutable misses : int;
}

type site_stat = {
  mutable alloc_bytes : int;
  mutable allocs : int;
  mutable overhead_ns : float;  (** runtime time attributable to this site *)
}

type t

val create : unit -> t

exception Mismatched_exit of { name : string; tid : int; stack : string list }

val set_strict : t -> bool -> unit
(** In strict mode (tests), [exit_] for a function that is not the top
    of [tid]'s stack raises [Mismatched_exit].  Off by default: runs
    recover gracefully instead (see [exit_]). *)

val enter : t -> tid:int -> now:float -> string -> unit

val exit_ : t -> tid:int -> now:float -> string -> unit
(** Pop [name]'s frame and charge its inclusive time.  On a mismatched
    exit (non-strict mode): if [name] is on the stack but not on top,
    intermediate frames are closed and charged as if they exited now;
    if [name] is not on the stack at all, the exit is dropped and the
    stack is left untouched. *)

val current : t -> tid:int -> string option
(** The innermost open frame on [tid]'s stack, if any. *)

val add_runtime : t -> tid:int -> ns:float -> unit
(** Attribute runtime-overhead time to every function on [tid]'s stack. *)

val add_event : t -> tid:int -> hit:bool -> unit
(** Count a cache hit or miss against the stack's functions. *)

val add_alloc : t -> site:int -> bytes:int -> unit

val add_site_overhead : t -> site:int -> ns:float -> unit

val touch : t -> tid:int -> site:int -> unit
(** Record that the current function(s) accessed [site]. *)

val fn_stats : t -> (string * fn_stat) list
val site_stats : t -> (int * site_stat) list

val overhead_ratio : fn_stat -> float
(** Runtime time over remaining execution time (the paper's "cache
    performance overhead"). *)

val top_functions : t -> frac:float -> string list
(** The ceil(frac * n) functions with the highest overhead ratio. *)

val largest_sites : t -> frac:float -> among:string list -> int list
(** The ceil(frac * n) costliest (then largest) allocation sites
    touched by [among]. *)

val sites_of_function : t -> string -> int list

val reset : t -> unit
(** Clear every counter and stack. *)
