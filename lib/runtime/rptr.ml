let local_section = 0
let max_section = 0xFFFF
let max_offset = (1 lsl 48) - 1

let encode ~section ~offset =
  if section < 0 || section > max_section then
    invalid_arg (Printf.sprintf "Rptr.encode: section %d out of range" section);
  if offset < 0 || offset > max_offset then
    invalid_arg (Printf.sprintf "Rptr.encode: offset %d out of range" offset);
  Int64.logor
    (Int64.shift_left (Int64.of_int section) 48)
    (Int64.of_int offset)

let section v = Int64.to_int (Int64.shift_right_logical v 48) land 0xFFFF
let offset v = Int64.to_int (Int64.logand v 0xFFFF_FFFF_FFFFL)
let is_local v = section v = local_section
let encode_local addr = encode ~section:local_section ~offset:addr
