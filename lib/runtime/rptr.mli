(** Remote-pointer encoding (§5.2.1).

    A dereferenced rmem pointer carries a 16-bit cache-section id in the
    high bits and a 48-bit offset in the low bits.  Section id 0 is the
    reserved dummy section meaning "this is a local pointer": its
    offset is interpreted as a plain local virtual address, which makes
    pointers that may target either local or remotable objects work
    with a single dereference path. *)

val local_section : int
(** The reserved id 0. *)

val max_section : int
(** 2^16 - 1. *)

val max_offset : int
(** 2^48 - 1. *)

val encode : section:int -> offset:int -> int64
(** Raises [Invalid_argument] if either component is out of range. *)

val section : int64 -> int
val offset : int64 -> int

val is_local : int64 -> bool
(** True iff the section id is 0. *)

val encode_local : int -> int64
(** Encode a local virtual address (section 0). *)
