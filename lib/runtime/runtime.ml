module Sim = Mira_sim
module Cache = Mira_cache

type config = {
  params : Sim.Params.t;
  local_budget : int;
  far_capacity : int;
  local_capacity : int;
  page : int;
  swap_side : Sim.Net.side;
  alloc_chunk : int;
  swap_readahead : int;
      (* Linux-style cluster readahead width of the swap section (the
         initial configuration behaves like an optimized kernel swap) *)
  dataplane : Sim.Net.dp_config;
  cluster : Sim.Cluster.spec;
  tenants : int;
      (* independent app contexts interleaving on the discrete-event
         scheduler; 1 = the historical serialized single-tenant mode *)
}

module Config = struct
  type nonrec t = config

  let make ~local_budget ~far_capacity =
    {
      params = Sim.Params.default;
      local_budget;
      far_capacity;
      local_capacity = max far_capacity (64 * 1024);
      page = Sim.Params.default.Sim.Params.page_size;
      swap_side = Sim.Net.One_sided;
      alloc_chunk = 1 lsl 20;
      swap_readahead = 8;
      dataplane = Sim.Net.dp_default;
      cluster = Sim.Cluster.spec_default;
      tenants = 1;
    }

  let with_params params c = { c with params }
  let with_page page c = { c with page }
  let with_swap_side swap_side c = { c with swap_side }
  let with_readahead swap_readahead c = { c with swap_readahead }
  let with_local_capacity local_capacity c = { c with local_capacity }
  let with_alloc_chunk alloc_chunk c = { c with alloc_chunk }
  let with_dataplane dataplane c = { c with dataplane }
  let with_cluster cluster c = { c with cluster }

  let with_tenants tenants c =
    if tenants < 1 then
      invalid_arg (Printf.sprintf "Config.with_tenants: %d (need >= 1)" tenants);
    { c with tenants }
end

(* Per-site registry of live allocation ranges.  Iteration order is
   observable (it fixes flush/evict/discard submission order and the
   lost-byte scan, and thereby simulated time), so the old newest-first
   cons list survives as a doubly-linked list — while an address index
   makes release O(1), where [free] used to [List.assoc_opt] and then
   rebuild the whole list. *)
module Regions = struct
  type node = {
    addr : int;
    len : int;
    mutable prev : node option;
    mutable next : node option;
  }

  type t = { mutable head : node option; index : (int, node) Hashtbl.t }

  let create () = { head = None; index = Hashtbl.create 8 }

  let add t ~addr ~len =
    let n = { addr; len; prev = None; next = t.head } in
    (match t.head with Some h -> h.prev <- Some n | None -> ());
    t.head <- Some n;
    Hashtbl.replace t.index addr n

  let find_len t ~addr =
    Option.map (fun n -> n.len) (Hashtbl.find_opt t.index addr)

  let remove t ~addr =
    match Hashtbl.find_opt t.index addr with
    | None -> ()
    | Some n ->
      Hashtbl.remove t.index addr;
      (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
      (match n.next with Some s -> s.prev <- n.prev | None -> ())

  let iter f t =
    let rec go = function
      | None -> ()
      | Some n ->
        f n.addr n.len;
        go n.next
    in
    go t.head

  let to_list t =
    let rec go acc = function
      | None -> List.rev acc
      | Some n -> go ((n.addr, n.len) :: acc) n.next
    in
    go [] t.head
end

type t = {
  cfg : config;
  net : Sim.Net.t;
  cluster : Sim.Cluster.t;
  manager : Cache.Manager.t;
  local_store : Sim.Far_store.t;
  local_space : Sim.Remote_alloc.t;
  remote_space : Sim.Remote_alloc.t;
  local_alloc : Local_alloc.t;
  sched : Sim.Sched.t;
  clocks : (int, Sim.Clock.t) Hashtbl.t;
  offload_depth : (int, int ref) Hashtbl.t;
  site_ranges : (int, Regions.t) Hashtbl.t;
  private_sections : (int, int array) Hashtbl.t;  (* site -> per-tid sec ids *)
  lost_bytes : (int, int) Hashtbl.t;  (* site -> far bytes lost to crashes *)
  profile : Profile.t;
  attribution : Mira_telemetry.Attribution.t;
  miss_sites : Mira_telemetry.Sketch.t;
      (* hot miss sites across the whole run (Space-Saving top-K),
         sampled per window by the timeline exporter *)
  mutable nthreads : int;
}

(* Address 0 is reserved as the null pointer in both spaces.  Far
   allocations start page-aligned and are rounded up to whole pages so
   that no two objects ever share a swap page or a section line: the
   swap cache and the sections would otherwise hold incoherent copies
   of the overlap (a dirty page write-back could clobber a neighbour
   object cached elsewhere). *)
let space_base = 4096
let local_base = 64

let create cfg =
  let net = Sim.Net.create ~dp:cfg.dataplane cfg.params in
  let cluster = Sim.Cluster.create ~capacity:cfg.far_capacity cfg.cluster in
  let manager =
    Cache.Manager.create net cluster ~budget:cfg.local_budget ~page:cfg.page
      ~side:cfg.swap_side
  in
  let remote_space =
    Sim.Remote_alloc.create ~base:space_base ~limit:cfg.far_capacity
  in
  if cfg.swap_readahead > 1 then
    Cache.Swap_section.set_readahead (Cache.Manager.swap manager) (fun pno ->
        List.init (cfg.swap_readahead - 1) (fun i -> pno + i + 1));
  let attribution = Mira_telemetry.Attribution.create () in
  Cache.Manager.set_attribution manager attribution;
  (* Every Queueing nanosecond the ledger charges flows on into the
     net's tenant interference matrix — same guard, same fixed-point
     amount — so matrix rows equal queue-stall buckets exactly. *)
  Mira_telemetry.Attribution.set_queue_sink attribution (fun ~tenant ~holders fp ->
      Sim.Net.record_interference net ~tenant ~holders fp);
  let sched = Sim.Sched.create () in
  (* The attribution context and the net's tenant stamp are ambient
     process state like the trace context: snapshot them when a task
     parks and reinstall on resume, or a resumed tenant's stalls would
     be charged under whatever context the previously-running tenant
     left behind. *)
  Sim.Sched.add_tls sched (fun () ->
      let fn, site = Mira_telemetry.Attribution.context attribution in
      let attr_tn = Mira_telemetry.Attribution.context_tenant attribution in
      let net_tn = Sim.Net.tenant net in
      fun () ->
        Mira_telemetry.Attribution.set_context attribution ~fn ~site;
        Mira_telemetry.Attribution.set_tenant attribution attr_tn;
        Sim.Net.set_tenant net net_tn);
  {
    cfg;
    net;
    cluster;
    manager;
    local_store = Sim.Far_store.create ~capacity:cfg.local_capacity;
    local_space = Sim.Remote_alloc.create ~base:local_base ~limit:cfg.local_capacity;
    remote_space;
    local_alloc = Local_alloc.create remote_space ~chunk:cfg.alloc_chunk;
    sched;
    clocks = Hashtbl.create 8;
    offload_depth = Hashtbl.create 8;
    site_ranges = Hashtbl.create 32;
    private_sections = Hashtbl.create 8;
    lost_bytes = Hashtbl.create 8;
    profile = Profile.create ();
    attribution;
    miss_sites = Mira_telemetry.Sketch.create ~k:16;
    nthreads = 1;
  }

let manager t = t.manager
let net t = t.net
let attribution t = t.attribution
let miss_sites t = t.miss_sites
let cluster t = t.cluster
let far_store t = Sim.Cluster.primary t.cluster
let profile t = t.profile
let params t = t.cfg.params

(* Every thread/tenant clock is a view over the runtime's scheduler;
   free-running (yield hook inert) until tasks are spawned on
   [sched t] and [Sched.run] dispatches more than one of them. *)
let clock t tid =
  match Hashtbl.find_opt t.clocks tid with
  | Some c -> c
  | None ->
    let c = Sim.Sched.clock t.sched ~tenant:tid in
    Hashtbl.replace t.clocks tid c;
    c

let sched t = t.sched
let tenants t = t.cfg.tenants

let offload_ref t tid =
  match Hashtbl.find_opt t.offload_depth tid with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.replace t.offload_depth tid r;
    r

let offloaded t tid = !(offload_ref t tid) > 0

let set_private_sections t ~site ~sec_ids =
  assert (Array.length sec_ids > 0);
  Hashtbl.replace t.private_sections site sec_ids

let clear_private_sections t = Hashtbl.reset t.private_sections

let route t ~tid ~site =
  match Hashtbl.find_opt t.private_sections site with
  | Some sec_ids ->
    let idx = min tid (Array.length sec_ids - 1) in
    Cache.Manager.find_section t.manager ~id:sec_ids.(idx)
  | None -> Cache.Manager.route t.manager ~site

(* Uniform dispatch: every access path below goes through a packed
   [Cache_section.handle], so the swap section is no longer a special
   case — an unrouted site simply resolves to the swap handle. *)
let route_h t ~tid ~site =
  match route t ~tid ~site with
  | Some section -> Cache.Section.handle section
  | None -> Cache.Manager.swap_handle t.manager

let regions_of t site =
  match Hashtbl.find_opt t.site_ranges site with
  | Some r -> r
  | None ->
    let r = Regions.create () in
    Hashtbl.replace t.site_ranges site r;
    r

let site_ranges t ~site = Regions.to_list (regions_of t site)
let live_far_bytes t = Sim.Remote_alloc.live_bytes t.remote_space

(* Key subsequent ledger charges under the innermost profiled function
   and the site being accessed; set before any code that may stall
   (including cluster failover handling, so a crash surfacing during an
   access is attributed to the access that observed it). *)
let set_attr_context t ~tid ~site =
  let fn =
    Option.value ~default:"(runtime)" (Profile.current t.profile ~tid)
  in
  Mira_telemetry.Attribution.set_context t.attribution ~fn ~site;
  Mira_telemetry.Attribution.set_tenant t.attribution tid;
  Sim.Net.set_tenant t.net tid

(* Root span of one far access.  Trace and span ids are minted up
   front and installed as the ambient context so any child span (cache
   fill, net member, failover recovery) can attach to it; the b/e pair
   itself is emitted retroactively, and only when a child span was
   actually created — trace volume stays proportional to interesting
   events (misses, stalls, recoveries), not to every hit.

   When a request-scoped context is already ambient (a serving
   workload wrapped this access in a per-request span), the access
   joins that trace and nests under the request span instead of
   becoming its own root — that is how the critical-path tooling
   decomposes whole tail requests.  In every pre-existing flow the
   ambient context here is [None], so nothing changes. *)
let begin_access ~tid ~site ~clock:c =
  if not (Mira_telemetry.Trace.enabled ()) then None
  else begin
    let module Tr = Mira_telemetry.Trace in
    let saved = Tr.current_ctx () in
    let trace =
      match saved with
      | Some ctx when not ctx.Tr.sc_flow -> ctx.Tr.sc_trace
      | _ -> Tr.new_trace ()
    in
    let span = Tr.new_span () in
    let stall0 = Sim.Clock.stalled_ns c in
    Tr.set_ctx
      (Some
         {
           Tr.sc_trace = trace;
           sc_span = span;
           sc_site = site;
           sc_lane = "runtime";
           sc_flow = false;
         });
    Some (saved, trace, span, stall0, tid, site, Sim.Clock.now c)
  end

let end_access ~kind ~clock:c st =
  match st with
  | None -> ()
  | Some (saved, trace, span, stall0, tid, site, t0) ->
    let module Tr = Mira_telemetry.Trace in
    Tr.set_ctx saved;
    (* Emission condition: did this access stall its own clock?  Every
       child span (demand fill, late prefetch, member reap, recovery)
       is minted while the access waits, so the per-clock stall delta
       marks "has children" exactly — unlike the global span counter,
       which other tenants advance while this task is parked on the
       scheduler. *)
    if Sim.Clock.stalled_ns c > stall0 then begin
      let parent =
        match saved with
        | Some ctx when not ctx.Tr.sc_flow -> ctx.Tr.sc_span
        | _ -> 0
      in
      Tr.begin_span ~parent ~name:kind ~cat:"runtime" ~lane:"runtime"
        ~ts_ns:t0 ~trace ~span
        ~args:
          [
            ("site", Mira_telemetry.Json.Int site);
            ("tid", Mira_telemetry.Json.Int tid);
          ]
        ();
      Tr.end_span ~name:kind ~cat:"runtime" ~lane:"runtime"
        ~ts_ns:(Sim.Clock.now c) ~trace ~span ()
    end

(* --- allocation --------------------------------------------------------- *)

let alloc t ~tid ~site ~bytes ~heap =
  let c = clock t tid in
  let p = t.cfg.params in
  Sim.Clock.advance c p.Sim.Params.native_op_ns;
  if heap then begin
    let bytes = Mira_util.Misc.round_up bytes t.cfg.page in
    let addr, refilled = Local_alloc.alloc t.local_alloc bytes in
    if refilled then begin
      (* One RPC to the far node's allocator: an urgent (unbatched)
         two-sided read, awaited synchronously. *)
      let root = begin_access ~tid ~site ~clock:c in
      let rpc_ctx =
        Option.map
          (fun (_, trace, span, _, _, _, _) ->
            {
              Mira_telemetry.Trace.sc_trace = trace;
              sc_span = span;
              sc_site = site;
              sc_lane = "runtime";
              sc_flow = false;
            })
          root
      in
      let now = Sim.Clock.now c in
      let sqe =
        Sim.Net.submit t.net ~now ~urgent:true
          (Sim.Net.Request.read ?ctx:rpc_ctx ~side:Sim.Net.Two_sided
             ~purpose:Sim.Net.Rpc 16)
      in
      Sim.Clock.advance c sqe.Sim.Net.issue_cpu_ns;
      let comp = Sim.Net.await t.net ~now ~id:sqe.Sim.Net.id in
      let stall =
        Sim.Clock.wait_event c
          ~ev:(Sim.Clock.Net_completion sqe.Sim.Net.id)
          comp.Sim.Net.done_at
      in
      set_attr_context t ~tid ~site;
      Mira_telemetry.Attribution.charge_parts t.attribution
        ~holders:comp.Sim.Net.holders
        (Mira_telemetry.Attribution.split_stall ~stall
           ~wire_ns:comp.Sim.Net.wire_ns ~queue_ns:comp.Sim.Net.queue_ns
           ~retry_ns:comp.Sim.Net.retry_ns);
      end_access ~kind:"alloc-refill" ~clock:c root
    end;
    Regions.add (regions_of t site) ~addr ~len:bytes;
    Profile.add_alloc t.profile ~site ~bytes;
    { Memsys.space = Memsys.Far; addr; site }
  end
  else begin
    let addr = Sim.Remote_alloc.alloc t.local_space bytes in
    Regions.add (regions_of t site) ~addr ~len:bytes;
    Profile.add_alloc t.profile ~site ~bytes;
    { Memsys.space = Memsys.Local; addr; site }
  end

let free t ~tid ~(ptr : Memsys.ptr) =
  let c = clock t tid in
  Sim.Clock.advance c t.cfg.params.Sim.Params.native_op_ns;
  match ptr.Memsys.space with
  | Memsys.Local ->
    (* Local (stack) allocations are recorded in the site ranges too. *)
    let r = regions_of t ptr.Memsys.site in
    (match Regions.find_len r ~addr:ptr.Memsys.addr with
    | None -> ()
    | Some len ->
      Regions.remove r ~addr:ptr.Memsys.addr;
      Sim.Remote_alloc.free t.local_space ~addr:ptr.Memsys.addr ~len)
  | Memsys.Far ->
    let r = regions_of t ptr.Memsys.site in
    (match Regions.find_len r ~addr:ptr.Memsys.addr with
    | None -> ()
    | Some len ->
      Regions.remove r ~addr:ptr.Memsys.addr;
      (* Drop any cached lines (no write-back needed: object is dead). *)
      Cache.Cache_section.discard_range
        (route_h t ~tid ~site:ptr.Memsys.site)
        ~addr:ptr.Memsys.addr ~len;
      Local_alloc.free t.local_alloc ~addr:ptr.Memsys.addr ~len)

(* --- data access -------------------------------------------------------- *)

let local_load t ~clock:c ~addr ~len =
  Sim.Clock.advance c t.cfg.params.Sim.Params.native_mem_ns;
  Sim.Far_store.read_le t.local_store ~addr ~len

let local_store_v t ~clock:c ~addr ~len v =
  Sim.Clock.advance c t.cfg.params.Sim.Params.native_mem_ns;
  Sim.Far_store.write_le t.local_store ~addr ~len v

(* Far-node-local access while executing an offloaded function.  If
   the access lands on a down node and decodes from survivors, the
   extra reads stay on the far-side fabric: drain the reconstruction
   debt so it is not billed to the compute link later (the cluster's
   ec.* stats still count it). *)
let offload_load t ~clock:c ~addr ~len =
  let p = t.cfg.params in
  Sim.Clock.advance c (p.Sim.Params.native_mem_ns *. p.Sim.Params.remote_compute_slowdown);
  let v = Sim.Cluster.read_le t.cluster ~addr ~len in
  ignore (Sim.Cluster.take_reconstruction t.cluster);
  v

let offload_store t ~clock:c ~addr ~len v =
  let p = t.cfg.params in
  Sim.Clock.advance c (p.Sim.Params.native_mem_ns *. p.Sim.Params.remote_compute_slowdown);
  Sim.Cluster.write_le t.cluster ~addr ~len v;
  ignore (Sim.Cluster.take_reconstruction t.cluster)

(* Per-object data-loss accounting: wiped far extents (a primary crash
   with no surviving replica) are intersected with the live allocation
   ranges of every site, so the report can say {e which} objects lost
   {e how many} bytes instead of the run raising. *)
let account_lost t =
  match Sim.Cluster.take_lost_extents t.cluster with
  | [] -> ()
  | extents ->
    Hashtbl.iter
      (fun site ranges ->
        Regions.iter
          (fun addr len ->
            List.iter
              (fun (ea, el) ->
                let lo = max addr ea and hi = min (addr + len) (ea + el) in
                if hi > lo then
                  let cur =
                    Option.value ~default:0 (Hashtbl.find_opt t.lost_bytes site)
                  in
                  Hashtbl.replace t.lost_bytes site (cur + (hi - lo)))
              extents)
          ranges)
      t.site_ranges

(* The cluster sync hook on the access fast path: O(1) when no
   crash/recovery is due ([next_event_at] guard inside
   [Manager.check_cluster]). *)
let sync_cluster t ~clock:c =
  if Sim.Cluster.next_event_at t.cluster <= Sim.Clock.now c then begin
    Cache.Manager.check_cluster t.manager ~clock:c;
    account_lost t
  end

let attribute t ~tid ~site ~before ~after ~hits_before ~misses_before ~hits ~misses =
  let native = t.cfg.params.Sim.Params.native_mem_ns in
  let overhead = Float.max 0.0 (after -. before -. native) in
  if overhead > 0.0 then begin
    Profile.add_runtime t.profile ~tid ~ns:overhead;
    Profile.add_site_overhead t.profile ~site ~ns:overhead
  end;
  if hits > hits_before then Profile.add_event t.profile ~tid ~hit:true;
  if misses > misses_before then begin
    Profile.add_event t.profile ~tid ~hit:false;
    Mira_telemetry.Sketch.touch t.miss_sites
      ~weight:(Int64.of_int (misses - misses_before))
      (Printf.sprintf "site%d" site)
  end

let load t ~tid ~(ptr : Memsys.ptr) ~len ~native =
  let c = clock t tid in
  match ptr.Memsys.space with
  | Memsys.Local -> local_load t ~clock:c ~addr:ptr.Memsys.addr ~len
  | Memsys.Far ->
    if offloaded t tid then offload_load t ~clock:c ~addr:ptr.Memsys.addr ~len
    else begin
      set_attr_context t ~tid ~site:ptr.Memsys.site;
      let root = begin_access ~tid ~site:ptr.Memsys.site ~clock:c in
      sync_cluster t ~clock:c;
      Profile.touch t.profile ~tid ~site:ptr.Memsys.site;
      let before = Sim.Clock.now c in
      let h = route_h t ~tid ~site:ptr.Memsys.site in
      let hb, mb = Cache.Cache_section.counters h in
      let v =
        if native then
          Cache.Cache_section.load_native h ~clock:c ~addr:ptr.Memsys.addr ~len
        else Cache.Cache_section.load h ~clock:c ~addr:ptr.Memsys.addr ~len
      in
      let hits, misses = Cache.Cache_section.counters h in
      attribute t ~tid ~site:ptr.Memsys.site ~before ~after:(Sim.Clock.now c)
        ~hits_before:hb ~misses_before:mb ~hits ~misses;
      end_access ~kind:"load" ~clock:c root;
      v
    end

let store t ~tid ~(ptr : Memsys.ptr) ~len ~native ~value =
  let c = clock t tid in
  match ptr.Memsys.space with
  | Memsys.Local -> local_store_v t ~clock:c ~addr:ptr.Memsys.addr ~len value
  | Memsys.Far ->
    if offloaded t tid then offload_store t ~clock:c ~addr:ptr.Memsys.addr ~len value
    else begin
      set_attr_context t ~tid ~site:ptr.Memsys.site;
      let root = begin_access ~tid ~site:ptr.Memsys.site ~clock:c in
      sync_cluster t ~clock:c;
      Profile.touch t.profile ~tid ~site:ptr.Memsys.site;
      let before = Sim.Clock.now c in
      let h = route_h t ~tid ~site:ptr.Memsys.site in
      let hb, mb = Cache.Cache_section.counters h in
      if native then
        Cache.Cache_section.store_native h ~clock:c ~addr:ptr.Memsys.addr ~len value
      else Cache.Cache_section.store h ~clock:c ~addr:ptr.Memsys.addr ~len value;
      let hits, misses = Cache.Cache_section.counters h in
      attribute t ~tid ~site:ptr.Memsys.site ~before ~after:(Sim.Clock.now c)
        ~hits_before:hb ~misses_before:mb ~hits ~misses;
      end_access ~kind:"store" ~clock:c root
    end

let prefetch t ~tid ~(ptr : Memsys.ptr) ~len =
  match ptr.Memsys.space with
  | Memsys.Local -> ()
  | Memsys.Far ->
    if not (offloaded t tid) then begin
      let c = clock t tid in
      Cache.Cache_section.prefetch_range
        (route_h t ~tid ~site:ptr.Memsys.site)
        ~clock:c ~addr:ptr.Memsys.addr ~len
    end

let flush_evict t ~tid ~(ptr : Memsys.ptr) ~len =
  match ptr.Memsys.space with
  | Memsys.Local -> ()
  | Memsys.Far ->
    if not (offloaded t tid) then begin
      let c = clock t tid in
      Cache.Cache_section.evict_hint
        (route_h t ~tid ~site:ptr.Memsys.site)
        ~clock:c ~addr:ptr.Memsys.addr ~len
    end

let iter_site_ranges t ~tid ~sites fn =
  List.iter
    (fun site ->
      Regions.iter
        (fun addr len -> fn ~site ~addr ~len ~handle:(route_h t ~tid ~site))
        (regions_of t site))
    sites

let evict_site t ~tid ~site =
  let c = clock t tid in
  let h = route_h t ~tid ~site in
  Regions.iter
    (fun addr len -> Cache.Cache_section.evict_hint h ~clock:c ~addr ~len)
    (regions_of t site)

let flush_sites t ~tid ~sites =
  let c = clock t tid in
  iter_site_ranges t ~tid ~sites (fun ~site:_ ~addr ~len ~handle ->
      Cache.Cache_section.flush_range handle ~clock:c ~addr ~len)

let discard_sites t ~tid ~sites =
  iter_site_ranges t ~tid ~sites (fun ~site:_ ~addr ~len ~handle ->
      Cache.Cache_section.discard_range handle ~addr ~len)

(* --- misc --------------------------------------------------------------- *)

let op_cost t ~tid ns =
  let c = clock t tid in
  let scaled =
    if offloaded t tid then ns *. t.cfg.params.Sim.Params.remote_compute_slowdown
    else ns
  in
  Sim.Clock.advance c scaled

let reset_timing t =
  Hashtbl.iter (fun _ c -> Sim.Clock.reset c) t.clocks;
  Sim.Sched.reset_stats t.sched;
  Sim.Net.reset_stats t.net;
  Sim.Net.reset_link t.net;
  Cache.Manager.reset_stats t.manager;
  Profile.reset t.profile;
  Mira_telemetry.Attribution.reset t.attribution;
  Mira_telemetry.Sketch.reset t.miss_sites

let elapsed t =
  Hashtbl.fold (fun _ c acc -> Float.max acc (Sim.Clock.now c)) t.clocks 0.0

(* The audit-side stall total: what the thread clocks actually spent in
   [wait_until].  The attribution ledger's total can only be <= this
   (application-level synchronization — parallel-region joins — also
   stalls clocks but is not far-memory time). *)
let clock_stall_ns t =
  Hashtbl.fold (fun _ c acc -> acc +. Sim.Clock.stalled_ns c) t.clocks 0.0

(* Pull-model telemetry: flatten the whole runtime's statistics —
   network, swap, every live section, allocator and profiler gauges —
   into a metrics registry for machine-readable reports. *)
let lost_bytes_total t =
  account_lost t;
  Hashtbl.fold (fun _ n acc -> acc + n) t.lost_bytes 0

let lost_bytes_by_site t =
  account_lost t;
  Hashtbl.fold (fun site n acc -> (site, n) :: acc) t.lost_bytes []
  |> List.sort compare

let publish t reg =
  Sim.Net.publish t.net reg;
  Cache.Manager.publish t.manager reg;
  Mira_telemetry.Metrics.set_counter reg "runtime.live_far_bytes"
    (Sim.Remote_alloc.live_bytes t.remote_space);
  Mira_telemetry.Metrics.set_counter reg "runtime.nthreads" t.nthreads;
  Mira_telemetry.Metrics.set_counter reg "runtime.tenants" t.cfg.tenants;
  Sim.Sched.publish t.sched reg;
  Mira_telemetry.Metrics.set_gauge reg "runtime.elapsed_ns" (elapsed t);
  Mira_telemetry.Metrics.set_counter reg "runtime.lost_bytes" (lost_bytes_total t);
  Mira_telemetry.Metrics.set_counter reg "runtime.degraded"
    (if Sim.Cluster.degraded t.cluster then 1 else 0);
  List.iter
    (fun (site, n) ->
      Mira_telemetry.Metrics.set_counter reg
        (Printf.sprintf "runtime.lost_bytes.site%d" site)
        n)
    (lost_bytes_by_site t);
  Mira_telemetry.Metrics.set_gauge reg "runtime.stall_ns"
    (Mira_telemetry.Attribution.total_ns t.attribution);
  Mira_telemetry.Metrics.set_gauge reg "runtime.clock_stall_ns"
    (clock_stall_ns t);
  Mira_telemetry.Attribution.publish t.attribution reg

let memsys t =
  {
    Memsys.name = "mira";
    alloc = (fun ~tid ~site ~bytes ~heap -> alloc t ~tid ~site ~bytes ~heap);
    free = (fun ~tid ~ptr -> free t ~tid ~ptr);
    load = (fun ~tid ~ptr ~len ~native -> load t ~tid ~ptr ~len ~native);
    store = (fun ~tid ~ptr ~len ~native ~value -> store t ~tid ~ptr ~len ~native ~value);
    prefetch = (fun ~tid ~ptr ~len -> prefetch t ~tid ~ptr ~len);
    flush_evict = (fun ~tid ~ptr ~len -> flush_evict t ~tid ~ptr ~len);
    evict_site = (fun ~tid ~site -> evict_site t ~tid ~site);
    flush_sites = (fun ~tid ~sites -> flush_sites t ~tid ~sites);
    discard_sites = (fun ~tid ~sites -> discard_sites t ~tid ~sites);
    clock = (fun ~tid -> clock t tid);
    op_cost = (fun ~tid ns -> op_cost t ~tid ns);
    enter =
      (fun ~tid name ->
        Profile.enter t.profile ~tid ~now:(Sim.Clock.now (clock t tid)) name);
    exit_ =
      (fun ~tid name ->
        Profile.exit_ t.profile ~tid ~now:(Sim.Clock.now (clock t tid)) name);
    offload_begin = (fun ~tid -> incr (offload_ref t tid));
    offload_end =
      (fun ~tid ->
        let r = offload_ref t tid in
        if !r > 0 then decr r);
    set_nthreads = (fun n -> t.nthreads <- max 1 n);
    profile = t.profile;
    net = t.net;
    attribution = t.attribution;
    metadata_bytes = (fun () -> Cache.Manager.metadata_bytes t.manager);
    reset_timing = (fun () -> reset_timing t);
    elapsed = (fun () -> elapsed t);
  }
