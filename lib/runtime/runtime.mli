(** Mira's local-node runtime: the section-based memory system.

    Combines the cache manager (swap section + custom sections), the
    two-level allocator (remote allocator on the far node, buffering
    local allocator here), per-thread simulated clocks, offloaded
    execution mode, and the profiler, and exposes it all as a
    [Memsys.t] for the interpreter.

    Configuration (which sections exist, which allocation sites route
    where, per-thread private sections) is applied from outside by the
    iterative controller in [Mira].  A freshly created runtime has only
    the swap section — the paper's initial swap-everything setup. *)

type config = {
  params : Mira_sim.Params.t;
  local_budget : int;  (** local DRAM available for caching far data *)
  far_capacity : int;  (** far-memory address-space size *)
  local_capacity : int;  (** local heap/stack space (not the cache) *)
  page : int;  (** swap-section page size *)
  swap_side : Mira_sim.Net.side;
  alloc_chunk : int;  (** local allocator refill granularity *)
  swap_readahead : int;  (** cluster readahead width of the swap section
                             (Mira's initial config matches an optimized
                             kernel swap); 0/1 disables *)
  dataplane : Mira_sim.Net.dp_config;
      (** network data-plane configuration: in-flight window, doorbell
          batching, fault injection ([Mira_sim.Net.dp_default] =
          legacy synchronous behaviour) *)
  cluster : Mira_sim.Cluster.spec;
      (** far-memory cluster: node count, replication factor, crash
          schedule ([Mira_sim.Cluster.spec_default] = one node, no
          replication, no crashes — the pre-cluster system) *)
  tenants : int;
      (** independent app contexts interleaving on the runtime's
          discrete-event scheduler ([sched]); 1 (the default) is the
          historical serialized single-tenant mode and is bit-identical
          to it *)
}

(** Builder for [config]: [Config.make ~local_budget ~far_capacity]
    gives the defaults (one-sided swap, 8-page readahead, legacy data
    plane); pipe through [with_*] to customize:

    {[ Config.make ~local_budget ~far_capacity
       |> Config.with_page 4096
       |> Config.with_readahead 0
       |> Config.with_dataplane { Mira_sim.Net.dp_default with window = 8 } ]} *)
module Config : sig
  type t = config

  val make : local_budget:int -> far_capacity:int -> t
  val with_params : Mira_sim.Params.t -> t -> t
  val with_page : int -> t -> t
  val with_swap_side : Mira_sim.Net.side -> t -> t
  val with_readahead : int -> t -> t
  val with_local_capacity : int -> t -> t
  val with_alloc_chunk : int -> t -> t
  val with_dataplane : Mira_sim.Net.dp_config -> t -> t
  val with_cluster : Mira_sim.Cluster.spec -> t -> t

  val with_tenants : int -> t -> t
  (** Number of tenant contexts (>= 1; raises [Invalid_argument]
      otherwise).  Workloads spawn one task per tenant on [sched]. *)
end

type t

val create : config -> t

val manager : t -> Mira_cache.Manager.t
val net : t -> Mira_sim.Net.t

val cluster : t -> Mira_sim.Cluster.t

val far_store : t -> Mira_sim.Far_store.t
(** The cluster's current primary store (changes on failover). *)

val profile : t -> Profile.t
val params : t -> Mira_sim.Params.t

val sched : t -> Mira_sim.Sched.t
(** The runtime's discrete-event scheduler.  Every per-thread/tenant
    clock handed out by this runtime is a view over it; spawn one task
    per tenant and [Mira_sim.Sched.run] to interleave them on
    simulated time (see docs/CONCURRENCY.md). *)

val tenants : t -> int
(** The configured tenant count ([Config.with_tenants]). *)

val attribution : t -> Mira_telemetry.Attribution.t
(** The runtime's stall-attribution ledger.  Wired into every stall
    site at [create] time (sections, swap, manager fences, alloc RPCs,
    offload RPC waits via [Memsys.attribution]); [reset_timing] clears
    it alongside the other statistics.  Its queue sink feeds the net's
    tenant {!Mira_sim.Net.Interference} matrix, and the scheduler
    carries the attribution context (and the net's tenant stamp)
    across task parks via a TLS hook, so multi-tenant charges land
    under the tenant that actually stalled. *)

val miss_sites : t -> Mira_telemetry.Sketch.t
(** Hot miss sites across the run: a Space-Saving top-K over
    ["site<N>"] keys, touched on every recorded demand miss and
    cleared by [reset_timing].  Sampled per window by the timeline
    exporter. *)

val clock_stall_ns : t -> float
(** Sum of [Mira_sim.Clock.stalled_ns] over all thread clocks — the
    audit-side total the ledger is checked against.  Published as
    [runtime.clock_stall_ns]; the ledger total is [runtime.stall_ns]. *)

val memsys : t -> Memsys.t
(** The interface the interpreter executes against. *)

val set_private_sections : t -> site:int -> sec_ids:int array -> unit
(** Route [site] to per-thread sections: thread [i] uses
    [sec_ids.(min i (len-1))] (read-only multithreading, §4.6). *)

val clear_private_sections : t -> unit

val site_ranges : t -> site:int -> (int * int) list
(** Live far-memory [(addr, len)] ranges allocated at [site]. *)

val live_far_bytes : t -> int

val lost_bytes_total : t -> int
(** Far bytes wiped by node crashes with no surviving replica, restricted
    to this run's live object ranges (degraded-mode accounting). *)

val lost_bytes_by_site : t -> (int * int) list
(** Per-allocation-site lost-byte accounting, sorted by site id. *)

val publish : t -> Mira_telemetry.Metrics.t -> unit
(** Export the runtime's statistics — network counters and latency
    histograms, per-section and swap cache stats, allocator gauges,
    cluster failure counters — into a metrics registry ([net.*],
    [section.*], [swap.*], [cache.*], [node.*], [replication.*],
    [runtime.*], incl. [runtime.lost_bytes] and [runtime.degraded]),
    plus the stall ledger ([runtime.stall_ns],
    [runtime.clock_stall_ns], per-cause [stall.<cause>_ns]). *)
