type t = { mutable now : float }

let create () = { now = 0.0 }
let now t = t.now

let advance t dt =
  assert (dt >= 0.0);
  t.now <- t.now +. dt

let wait_until t deadline =
  if deadline > t.now then begin
    let stall = deadline -. t.now in
    t.now <- deadline;
    stall
  end
  else 0.0

let reset t = t.now <- 0.0
