type event =
  | Net_completion of int
  | Cache_fill
  | Fence
  | Timer

let event_name = function
  | Net_completion _ -> "net_completion"
  | Cache_fill -> "cache_fill"
  | Fence -> "fence"
  | Timer -> "timer"

type t = {
  mutable now : float;
  mutable stalled : float;
  mutable observer : (event -> float -> unit) option;
}

let create () = { now = 0.0; stalled = 0.0; observer = None }
let now t = t.now
let set_observer t obs = t.observer <- obs

let notify t ev =
  match t.observer with None -> () | Some f -> f ev t.now

(* A NaN delta fails every comparison and a negative-zero delta passes
   [>= 0.0], so both used to slip through the old [assert] and could
   poison the monotonic time base (and with it every ledger audit).
   Reject them loudly instead.  [%h] renders the exact bit pattern. *)
let check_delta fn dt =
  if not (dt >= 0.0) || (dt = 0.0 && 1.0 /. dt < 0.0) then
    invalid_arg (Printf.sprintf "Clock.%s: invalid time delta %h ns" fn dt)

let advance t dt =
  check_delta "advance" dt;
  if dt > 0.0 then begin
    t.now <- t.now +. dt;
    notify t Timer
  end

let wait_event t ~ev deadline =
  if deadline > t.now then begin
    let stall = deadline -. t.now in
    t.now <- deadline;
    t.stalled <- t.stalled +. stall;
    notify t ev;
    stall
  end
  else 0.0

let wait_until ?(ev = Timer) t deadline = wait_event t ~ev deadline

let stalled_ns t = t.stalled

let reset t =
  t.now <- 0.0;
  t.stalled <- 0.0
