type t = { mutable now : float; mutable stalled : float }

let create () = { now = 0.0; stalled = 0.0 }
let now t = t.now

let advance t dt =
  assert (dt >= 0.0);
  t.now <- t.now +. dt

let wait_until t deadline =
  if deadline > t.now then begin
    let stall = deadline -. t.now in
    t.now <- deadline;
    t.stalled <- t.stalled +. stall;
    stall
  end
  else 0.0

let stalled_ns t = t.stalled

let reset t =
  t.now <- 0.0;
  t.stalled <- 0.0
