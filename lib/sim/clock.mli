(** Simulated time.

    One clock per executing thread.  Time is a float number of
    nanoseconds since simulation start; it only moves forward. *)

type t

val create : unit -> t
(** A clock at time 0. *)

val now : t -> float
(** Current simulated time in nanoseconds. *)

val advance : t -> float -> unit
(** [advance t dt] moves time forward by [dt] ns. [dt] must be >= 0. *)

val wait_until : t -> float -> float
(** [wait_until t deadline] advances to [deadline] if it is in the
    future and returns the stall time (0 if the deadline has passed). *)

val stalled_ns : t -> float
(** Total time this clock has spent in [wait_until] stalls since
    creation or the last [reset] — the audit-side total the stall
    attribution ledger is checked against. *)

val reset : t -> unit
(** Set time back to 0 and clear the stall accumulator (between
    independent runs). *)
