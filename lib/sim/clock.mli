(** Simulated time.

    One clock per executing tenant/thread.  Time is a float number of
    nanoseconds since simulation start; it only moves forward.

    A clock is either free-running (the historical behaviour: the
    single serialized app thread owns time) or a {e per-tenant view}
    over the discrete-event scheduler ([Sched]): the scheduler installs
    an {!set_observer} hook, and every time this clock moves forward
    the owning task yields so other tenants with earlier clocks run
    first.  The float arithmetic below is byte-for-byte the same in
    both modes — a one-tenant scheduled run is bit-identical to the
    pre-scheduler serialized clock.

    The scheduler orders clocks on an int64 fixed-point key in units of
    2{^-16} ns ("ticks", the same fixed point as the attribution
    ledger); the float here remains the source of truth for all time
    arithmetic, ticks are only an exact total order for the event
    queue. *)

type event =
  | Net_completion of int
      (** blocked awaiting the network completion with this sqe id *)
  | Cache_fill  (** blocked on a cache-line/page fill (incl. late prefetch) *)
  | Fence  (** blocked draining a write fence / ordering barrier *)
  | Timer  (** plain time passage: compute, arrival timers, backoff *)
(** Why a clock moved: the typed blocking events tasks suspend on.
    Purely informational for free-running clocks; the scheduler counts
    and exposes them per kind. *)

val event_name : event -> string

type t

val create : unit -> t
(** A free-running clock at time 0. *)

val now : t -> float
(** Current simulated time in nanoseconds. *)

val advance : t -> float -> unit
(** [advance t dt] moves time forward by [dt] ns.  Raises
    [Invalid_argument] when [dt] is NaN, negative, or negative zero —
    deltas that would silently poison the monotonic time base the
    stall-attribution ledger audits against. *)

val wait_until : ?ev:event -> t -> float -> float
(** [wait_until t deadline] advances to [deadline] if it is in the
    future and returns the stall time (0 if the deadline has passed).
    [ev] (default [Timer]) names what the caller is blocked on; under
    the scheduler it is the typed event the task suspends on. *)

val wait_event : t -> ev:event -> float -> float
(** [wait_until] with a mandatory event kind (the migrated data-path
    call sites: net completions, cache fills, fences). *)

val stalled_ns : t -> float
(** Total time this clock has spent in [wait_until] stalls since
    creation or the last [reset] — the audit-side total the stall
    attribution ledger is checked against. *)

val reset : t -> unit
(** Set time back to 0 and clear the stall accumulator (between
    independent runs).  The scheduler hook, if any, is kept. *)

val set_observer : t -> (event -> float -> unit) option -> unit
(** Install (or clear) the movement hook: called with the event kind
    and the new [now] after every forward move.  Reserved for [Sched]
    — the hook is how a tenant task yields; user code should never
    need it. *)
