module Metrics = Mira_telemetry.Metrics

type placement = Flat | Rotate

let placement_name = function Flat -> "flat" | Rotate -> "rotate"

let placement_of_name = function
  | "flat" -> Some Flat
  | "rotate" -> Some Rotate
  | _ -> None

type event = { ev_node : int; ev_at : float; ev_down_for : float }

type spec = {
  nodes : int;
  k : int;
  m : int;
  chunk : int;
  placement : placement;
  schedule : event list;
}

let spec_default =
  { nodes = 1; k = 1; m = 0; chunk = 4096; placement = Flat; schedule = [] }

let mirror ~nodes ~copies schedule =
  { nodes; k = 1; m = copies - 1; chunk = 4096; placement = Flat; schedule }

let ec ?(chunk = 1024) ?(placement = Rotate) ~nodes ~k ~m schedule =
  { nodes; k; m; chunk; placement; schedule }

let validate_spec s =
  let bad fmt = Printf.ksprintf invalid_arg fmt in
  if s.nodes < 1 then bad "Cluster: nodes must be >= 1 (got %d)" s.nodes;
  if s.k < 1 then bad "Cluster: k must be >= 1 (got %d)" s.k;
  if s.k > 32 then bad "Cluster: k must be <= 32 (got %d)" s.k;
  if s.m < 0 || s.m > 2 then bad "Cluster: m must be 0, 1 or 2 (got %d)" s.m;
  if s.k + s.m > s.nodes then
    bad "Cluster: scheme (%d,%d) needs %d nodes but the cluster has %d" s.k s.m
      (s.k + s.m) s.nodes;
  if s.chunk < 8 || s.chunk mod 8 <> 0 then
    bad "Cluster: chunk must be a positive multiple of 8 (got %d)" s.chunk;
  List.iter
    (fun e ->
      if e.ev_node < 0 || e.ev_node >= s.nodes then
        bad "Cluster: crash event names node %d of %d" e.ev_node s.nodes;
      if not (Float.is_finite e.ev_at) || e.ev_at < 0.0 then
        bad "Cluster: crash time must be finite and >= 0 (got %g)" e.ev_at;
      if not (Float.is_finite e.ev_down_for) || e.ev_down_for <= 0.0 then
        bad "Cluster: outage length must be finite and > 0 (got %g)"
          e.ev_down_for)
    s.schedule

(* Same splitmix64 finalizer as [Net.Fault]: purely functional, so a
   seed fully determines the schedule. *)
let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 33)) 0xff51afd7ed558ccdL in
  let z = mul (logxor z (shift_right_logical z 33)) 0xc4ceb9fe1a85ec53L in
  logxor z (shift_right_logical z 33)

let u01 ~seed ~k ~salt =
  let open Int64 in
  let z = mix (add (of_int seed) 0x9E3779B97F4A7C15L) in
  let z = mix (logxor z (of_int ((k * 0x10001) + salt))) in
  to_float (shift_right_logical z 11) /. 9007199254740992.0

let schedule_of_seed ~overlap ~seed ~nodes ~crashes ~horizon_ns ~down_ns =
  let bad fmt = Printf.ksprintf invalid_arg fmt in
  if nodes < 1 then bad "Cluster.schedule_of_seed: nodes must be >= 1 (got %d)" nodes;
  if crashes < 0 then
    bad "Cluster.schedule_of_seed: crashes must be >= 0 (got %d)" crashes;
  if not (Float.is_finite horizon_ns) || horizon_ns <= 0.0 then
    bad "Cluster.schedule_of_seed: horizon must be finite and > 0 (got %g)"
      horizon_ns;
  if not (Float.is_finite down_ns) || down_ns <= 0.0 then
    bad "Cluster.schedule_of_seed: outage length must be finite and > 0 (got %g)"
      down_ns;
  let raw =
    List.init crashes (fun k ->
        {
          ev_node = int_of_float (u01 ~seed ~k ~salt:1 *. float_of_int nodes) mod nodes;
          ev_at = u01 ~seed ~k ~salt:2 *. horizon_ns;
          ev_down_for = down_ns *. (0.5 +. u01 ~seed ~k ~salt:3);
        })
    |> List.sort (fun a b -> compare a.ev_at b.ev_at)
  in
  if overlap then
    (* Keep the raw times: outages genuinely overlap, so several nodes
       can be down at once — the regime the quorum rules exist for. *)
    raw
  else begin
    (* Serialize outages: a crash never lands while another node is
       still down (or just back), so at most one node is ever down. *)
    let gap = 0.1 *. down_ns in
    let _, serialized =
      List.fold_left
        (fun (free_at, acc) e ->
          let at = Float.max e.ev_at free_at in
          (at +. e.ev_down_for +. gap, { e with ev_at = at } :: acc))
        (0.0, []) raw
    in
    List.rev serialized
  end

type incident =
  | Failover of { at : float; failed : int; epoch : int; down : int }
  | Data_lost of { at : float; node : int; lost_bytes : int; epoch : int;
                   down : int }
  | Recovered of { at : float; node : int; resync_bytes : int; whole : bool }

type stats = {
  mutable crashes : int;
  mutable failovers : int;
  mutable replication_bytes : int;
  mutable resync_bytes : int;
  mutable lost_bytes : int;
  mutable reconstructions : int;
  mutable reconstructed_bytes : int;
  recovery : Metrics.hist;
}

let empty_stats () =
  {
    crashes = 0;
    failovers = 0;
    replication_bytes = 0;
    resync_bytes = 0;
    lost_bytes = 0;
    reconstructions = 0;
    reconstructed_bytes = 0;
    recovery = Metrics.hist_create ();
  }

(* --- GF(2^8) arithmetic ---------------------------------------------------

   The second parity row is a Reed-Solomon row Q = sum g^j * d_j over
   GF(2^8) with the AES-adjacent polynomial 0x11d: pure table-driven
   integer math, so decode results are bit-exact on every platform.
   Row 0 is plain XOR (all coefficients 1); with k = 1 both rows
   degenerate to full copies, which is exactly mirroring. *)

let gf_exp = Array.make 512 1
let gf_log = Array.make 256 0

let () =
  let x = ref 1 in
  for i = 0 to 254 do
    gf_exp.(i) <- !x;
    gf_log.(!x) <- i;
    x := !x lsl 1;
    if !x land 0x100 <> 0 then x := !x lxor 0x11d
  done;
  for i = 255 to 511 do
    gf_exp.(i) <- gf_exp.(i - 255)
  done

let gf_inv a = gf_exp.(255 - gf_log.(a))

(* Parity coefficient of data slot [j] in row [r]. *)
let coeff r j = if r = 0 then 1 else gf_exp.(j mod 255)

(* dst ^= src (byte-wise). *)
let xor_into ~src ~src_off ~dst ~dst_off ~len =
  for i = 0 to len - 1 do
    Bytes.unsafe_set dst (dst_off + i)
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get dst (dst_off + i))
         lxor Char.code (Bytes.unsafe_get src (src_off + i))))
  done

(* dst ^= c * src over GF(2^8). *)
let gf_madd ~c ~src ~src_off ~dst ~dst_off ~len =
  if c = 1 then xor_into ~src ~src_off ~dst ~dst_off ~len
  else if c <> 0 then begin
    let lc = gf_log.(c) in
    for i = 0 to len - 1 do
      let b = Char.code (Bytes.unsafe_get src (src_off + i)) in
      if b <> 0 then
        Bytes.unsafe_set dst (dst_off + i)
          (Char.unsafe_chr
             (Char.code (Bytes.unsafe_get dst (dst_off + i))
             lxor gf_exp.(lc + gf_log.(b))))
    done
  end

(* buf *= c in place. *)
let gf_scale ~c buf ~len =
  if c <> 1 then begin
    let lc = gf_log.(c) in
    for i = 0 to len - 1 do
      let b = Char.code (Bytes.unsafe_get buf i) in
      if b <> 0 then
        Bytes.unsafe_set buf i (Char.unsafe_chr gf_exp.(lc + gf_log.(b)))
    done
  end

(* --- cluster state -------------------------------------------------------- *)

type node = {
  store : Far_store.t;
  mutable up : bool;
  mutable up_at : float;  (* recovery time while down *)
  mutable served_bytes : int;  (* data-plane bytes read/written on this node *)
}

type t = {
  spec : spec;
  cap : int;  (* logical capacity *)
  trivial : bool;  (* 1 node, (1,0) scheme: transparent pass-through *)
  nodes : node array;
  mutable epoch : int;
  mutable down_count : int;
  mutable crash_q : event list;  (* pending crashes, sorted by time *)
  mutable recover_q : (float * int) list;  (* pending recoveries, sorted *)
  mutable next_at : float;
  mutable lost : (int * int) list;  (* lost logical extents, newest first *)
  mutable degraded : bool;
  mutable hw : int;  (* logical high-water size (non-trivial clusters) *)
  mutable recon_pending : int;  (* undrained extra survivor bytes from decode *)
  stats : stats;
}

let refresh_next t =
  let a = match t.crash_q with e :: _ -> e.ev_at | [] -> infinity in
  let b = match t.recover_q with (at, _) :: _ -> at | [] -> infinity in
  t.next_at <- Float.min a b

let make_of_nodes spec ~cap nodes =
  let t =
    {
      spec;
      cap;
      trivial = spec.nodes = 1 && spec.k = 1 && spec.m = 0;
      nodes;
      epoch = 0;
      down_count = 0;
      crash_q = List.sort (fun a b -> compare a.ev_at b.ev_at) spec.schedule;
      recover_q = [];
      next_at = infinity;
      lost = [];
      degraded = false;
      hw = 0;
      recon_pending = 0;
      stats = empty_stats ();
    }
  in
  refresh_next t;
  t

let create ~capacity spec =
  validate_spec spec;
  (* Each node holds one [chunk]-sized slice per stripe, so its store
     is the logical capacity scaled by chunk/stripe (rounded up). *)
  let stripe = spec.k * spec.chunk in
  let node_cap =
    max spec.chunk (((capacity + stripe - 1) / stripe) * spec.chunk)
  in
  make_of_nodes spec ~cap:capacity
    (Array.init spec.nodes (fun _ ->
         {
           store = Far_store.create ~capacity:node_cap;
           up = true;
           up_at = 0.0;
           served_bytes = 0;
         }))

let of_store store =
  make_of_nodes spec_default ~cap:(Far_store.capacity store)
    [| { store; up = true; up_at = 0.0; served_bytes = 0 } |]

let spec t = t.spec
let capacity t = t.cap
let scheme t = (t.spec.k, t.spec.m)
let primary t = t.nodes.(0).store
let epoch t = t.epoch
let degraded t = t.degraded
let stats t = t.stats
let redundant t = t.spec.m >= 1
let down_count t = t.down_count

let serving_node t =
  let rec go i = if i >= Array.length t.nodes then 0 else if t.nodes.(i).up then i else go (i + 1) in
  go 0

(* Trace lane of the lowest live node, so fill spans can mark which
   physical node satisfied them (the lane changes across outages). *)
let service_lane t = Printf.sprintf "node%d" (serving_node t)

let node_down_until t ~node =
  let n = t.nodes.(node) in
  if n.up then 0.0 else n.up_at

let down_until t =
  if t.down_count <= t.spec.m then 0.0
  else begin
    (* The instant the down count falls back to m: the
       (down_count - m)-th earliest pending recovery. *)
    let ups =
      Array.to_list t.nodes
      |> List.filter_map (fun n -> if n.up then None else Some n.up_at)
      |> List.sort compare
    in
    List.nth ups (t.down_count - t.spec.m - 1)
  end

let next_event_at t = t.next_at

let take_lost_extents t =
  let l = List.rev t.lost in
  t.lost <- [];
  l

let take_reconstruction t =
  let n = t.recon_pending in
  t.recon_pending <- 0;
  n

let observe_recovery t ns = Metrics.hist_observe t.stats.recovery ns

(* --- stripe geometry ------------------------------------------------------ *)

let stripe_bytes t = t.spec.k * t.spec.chunk

let node_of_slot t ~stripe ~slot =
  match t.spec.placement with
  | Flat -> slot
  | Rotate -> (stripe + slot) mod t.spec.nodes

let slot_of_node t ~stripe ~node =
  let width = t.spec.k + t.spec.m in
  match t.spec.placement with
  | Flat -> if node < width then Some node else None
  | Rotate ->
    let j = (node - stripe) mod t.spec.nodes in
    let j = if j < 0 then j + t.spec.nodes else j in
    if j < width then Some j else None

let node_of_addr t ~addr =
  if t.trivial then 0
  else begin
    let sb = stripe_bytes t in
    let stripe = addr / sb in
    node_of_slot t ~stripe ~slot:(addr mod sb / t.spec.chunk)
  end

let group_down t ~stripe =
  let c = ref 0 in
  for j = 0 to t.spec.k + t.spec.m - 1 do
    if not t.nodes.(node_of_slot t ~stripe ~slot:j).up then incr c
  done;
  !c

let logical_size t = if t.trivial then Far_store.size t.nodes.(0).store else t.hw
let size t = logical_size t

let ensure_cap t limit =
  if limit > t.cap then
    failwith
      (Printf.sprintf "Cluster: access at %d exceeds capacity %d" limit t.cap);
  if limit > t.hw then t.hw <- limit

(* Walk the chunk pieces covering [addr, addr+len): calls
   [f ~stripe ~slot ~off ~clen ~lpos] with the intra-chunk offset and
   the piece's position relative to [addr]. *)
let iter_pieces t ~addr ~len f =
  let chunk = t.spec.chunk in
  let sb = stripe_bytes t in
  let pos = ref addr in
  let stop = addr + len in
  while !pos < stop do
    let stripe = !pos / sb in
    let within = !pos mod sb in
    let slot = within / chunk in
    let off = within mod chunk in
    let clen = min (chunk - off) (stop - !pos) in
    f ~stripe ~slot ~off ~clen ~lpos:(!pos - addr);
    pos := !pos + clen
  done

(* --- decode --------------------------------------------------------------- *)

(* Decode the [off, off+clen) range of data slot [jm] of [stripe] from
   any k survivors: each live parity row yields one syndrome equation
   over the missing data slots (at most m unknowns; the caller
   guarantees the group is within quorum).  One unknown is solved from
   any single row; two unknowns from the XOR/RS pair, RAID-6 style. *)
let decode_data t ~account ~stripe ~jm ~off ~clen ~dst ~dst_off =
  let k = t.spec.k and m = t.spec.m and chunk = t.spec.chunk in
  let la = (stripe * chunk) + off in
  let missing = ref [] in
  for j = k - 1 downto 0 do
    if not t.nodes.(node_of_slot t ~stripe ~slot:j).up then
      missing := j :: !missing
  done;
  let rows = ref [] in
  for r = m - 1 downto 0 do
    if t.nodes.(node_of_slot t ~stripe ~slot:(k + r)).up then rows := r :: !rows
  done;
  let read_slot slot buf =
    let nd = t.nodes.(node_of_slot t ~stripe ~slot) in
    Far_store.read nd.store ~addr:la ~len:clen ~dst:buf ~dst_off:0;
    nd.served_bytes <- nd.served_bytes + clen
  in
  let tmp = Bytes.create clen in
  (* Syndrome of row r: parity xor (live data terms)
     = sum over missing slots of coeff(r,j) * d_j. *)
  let syndrome r =
    let acc = Bytes.create clen in
    read_slot (k + r) acc;
    for j = 0 to k - 1 do
      if t.nodes.(node_of_slot t ~stripe ~slot:j).up then begin
        read_slot j tmp;
        gf_madd ~c:(coeff r j) ~src:tmp ~src_off:0 ~dst:acc ~dst_off:0 ~len:clen
      end
    done;
    acc
  in
  (match (!missing, !rows) with
  | [ j1 ], r :: _ ->
    assert (j1 = jm);
    let s = syndrome r in
    gf_scale ~c:(gf_inv (coeff r j1)) s ~len:clen;
    Bytes.blit s 0 dst dst_off clen
  | [ j1; j2 ], [ 0; 1 ] ->
    (* s0 = d1 + d2, s1 = g^j1 d1 + g^j2 d2
       => d1 = (g^j2 s0 + s1) / (g^j1 + g^j2), d2 = s0 + d1. *)
    let s0 = syndrome 0 and s1 = syndrome 1 in
    let d1 = Bytes.make clen '\000' in
    gf_madd ~c:(coeff 1 j2) ~src:s0 ~src_off:0 ~dst:d1 ~dst_off:0 ~len:clen;
    xor_into ~src:s1 ~src_off:0 ~dst:d1 ~dst_off:0 ~len:clen;
    gf_scale ~c:(gf_inv (coeff 1 j1 lxor coeff 1 j2)) d1 ~len:clen;
    if jm = j1 then Bytes.blit d1 0 dst dst_off clen
    else begin
      xor_into ~src:d1 ~src_off:0 ~dst:s0 ~dst_off:0 ~len:clen;
      Bytes.blit s0 0 dst dst_off clen
    end
  | _ -> invalid_arg "Cluster.decode: stripe group past quorum");
  if account then begin
    (* Reconstructing c bytes reads k chunk ranges instead of one:
       (k-1)*c extra survivor bytes, drained by the cache layer. *)
    t.recon_pending <- t.recon_pending + ((k - 1) * clen);
    t.stats.reconstructions <- t.stats.reconstructions + 1;
    t.stats.reconstructed_bytes <- t.stats.reconstructed_bytes + clen
  end

(* --- data plane ----------------------------------------------------------- *)

let read t ~addr ~len ~dst ~dst_off =
  if t.trivial then Far_store.read t.nodes.(0).store ~addr ~len ~dst ~dst_off
  else begin
    ensure_cap t (addr + len);
    iter_pieces t ~addr ~len (fun ~stripe ~slot ~off ~clen ~lpos ->
        let nd = t.nodes.(node_of_slot t ~stripe ~slot) in
        let la = (stripe * t.spec.chunk) + off in
        if nd.up then begin
          Far_store.read nd.store ~addr:la ~len:clen ~dst
            ~dst_off:(dst_off + lpos);
          nd.served_bytes <- nd.served_bytes + clen
        end
        else if group_down t ~stripe <= t.spec.m then
          decode_data t ~account:true ~stripe ~jm:slot ~off ~clen ~dst
            ~dst_off:(dst_off + lpos)
        else
          (* Past quorum the decoded value is gone: the (wiped +
             post-crash-buffered) store contents are the truth — lost
             ranges read as zeros, writes made during the outage are
             delivered. *)
          Far_store.read nd.store ~addr:la ~len:clen ~dst
            ~dst_off:(dst_off + lpos))
  end

(* Per-parity-row bytes-on-wire of a write: for every touched stripe,
   the union of the touched intra-chunk intervals (a full-stripe write
   costs chunk = len/k per row; a single-chunk write costs its length
   on every row).  Rows whose parity node is down cost nothing. *)
let row_wire_bytes t ~addr ~len =
  if t.trivial || t.spec.m = 0 || len = 0 then [||]
  else begin
    let k = t.spec.k and chunk = t.spec.chunk in
    let sb = stripe_bytes t in
    let rows = Array.make t.spec.m 0 in
    let pos = ref addr in
    let stop = addr + len in
    while !pos < stop do
      let stripe = !pos / sb in
      let e = min stop ((stripe + 1) * sb) in
      let a = !pos - (stripe * sb) and b = e - (stripe * sb) in
      let j0 = a / chunk and j1 = (b - 1) / chunk in
      let lo = a mod chunk and hi = ((b - 1) mod chunk) + 1 in
      let u =
        if j0 = j1 then hi - lo
        else if j1 > j0 + 1 || hi >= lo then chunk
        else chunk - lo + hi
      in
      for r = 0 to t.spec.m - 1 do
        if t.nodes.(node_of_slot t ~stripe ~slot:(k + r)).up then
          rows.(r) <- rows.(r) + u
      done;
      pos := e
    done;
    rows
  end

let replica_payloads t ~addr ~len =
  let rows = row_wire_bytes t ~addr ~len in
  let k = t.spec.k in
  let stripe = if t.trivial then 0 else addr / stripe_bytes t in
  Array.to_list rows
  |> List.mapi (fun r bytes ->
         (node_of_slot t ~stripe ~slot:(k + r), bytes))
  |> List.filter (fun (_, bytes) -> bytes > 0)

(* Fold a data-chunk delta into every live parity chunk of the stripe. *)
let fold_delta t ~stripe ~slot ~off ~clen ~delta =
  let k = t.spec.k and chunk = t.spec.chunk in
  let la = (stripe * chunk) + off in
  for r = 0 to t.spec.m - 1 do
    let pn = t.nodes.(node_of_slot t ~stripe ~slot:(k + r)) in
    if pn.up then begin
      let p = Bytes.create clen in
      Far_store.read pn.store ~addr:la ~len:clen ~dst:p ~dst_off:0;
      gf_madd ~c:(coeff r slot) ~src:delta ~src_off:0 ~dst:p ~dst_off:0
        ~len:clen;
      Far_store.write pn.store ~addr:la ~len:clen ~src:p ~src_off:0
    end
  done

let write t ~addr ~len ~src ~src_off =
  if t.trivial then Far_store.write t.nodes.(0).store ~addr ~len ~src ~src_off
  else begin
    ensure_cap t (addr + len);
    iter_pieces t ~addr ~len (fun ~stripe ~slot ~off ~clen ~lpos ->
        let nd = t.nodes.(node_of_slot t ~stripe ~slot) in
        let la = (stripe * t.spec.chunk) + off in
        if t.spec.m = 0 then
          Far_store.write nd.store ~addr:la ~len:clen ~src
            ~src_off:(src_off + lpos)
        else begin
          (* Incremental parity: delta = old xor new, folded into every
             live parity row.  The old value of a down chunk within
             quorum is decoded from survivors; past quorum the store
             contents are already the truth. *)
          let old = Bytes.create clen in
          if nd.up then
            Far_store.read nd.store ~addr:la ~len:clen ~dst:old ~dst_off:0
          else if group_down t ~stripe <= t.spec.m then
            decode_data t ~account:true ~stripe ~jm:slot ~off ~clen ~dst:old
              ~dst_off:0
          else Far_store.read nd.store ~addr:la ~len:clen ~dst:old ~dst_off:0;
          xor_into ~src ~src_off:(src_off + lpos) ~dst:old ~dst_off:0 ~len:clen;
          Far_store.write nd.store ~addr:la ~len:clen ~src
            ~src_off:(src_off + lpos);
          fold_delta t ~stripe ~slot ~off ~clen ~delta:old
        end;
        if nd.up then nd.served_bytes <- nd.served_bytes + clen);
    let rows = row_wire_bytes t ~addr ~len in
    Array.iter
      (fun b -> t.stats.replication_bytes <- t.stats.replication_bytes + b)
      rows
  end

let read_le t ~addr ~len =
  if t.trivial then Far_store.read_le t.nodes.(0).store ~addr ~len
  else begin
    let b = Bytes.create len in
    read t ~addr ~len ~dst:b ~dst_off:0;
    Mira_util.Bytes_le.get b ~off:0 ~len
  end

let write_le t ~addr ~len v =
  if t.trivial then Far_store.write_le t.nodes.(0).store ~addr ~len v
  else begin
    let b = Bytes.create len in
    Mira_util.Bytes_le.set b ~off:0 ~len v;
    write t ~addr ~len ~src:b ~src_off:0
  end

let read_i64 t ~addr =
  if t.trivial then Far_store.read_i64 t.nodes.(0).store ~addr
  else read_le t ~addr ~len:8

let write_i64 t ~addr v =
  if t.trivial then Far_store.write_i64 t.nodes.(0).store ~addr v
  else write_le t ~addr ~len:8 v

let blit_within t ~src ~dst ~len =
  if t.trivial then Far_store.blit_within t.nodes.(0).store ~src ~dst ~len
  else begin
    let buf = Bytes.create (min len 65536) in
    let rec go off =
      if off < len then begin
        let n = min (Bytes.length buf) (len - off) in
        read t ~addr:(src + off) ~len:n ~dst:buf ~dst_off:0;
        write t ~addr:(dst + off) ~len:n ~src:buf ~src_off:0;
        go (off + n)
      end
    in
    if len > 0 then go 0
  end

(* --- crash / recovery ----------------------------------------------------- *)

let nstripes_touched t =
  let sb = stripe_bytes t in
  (logical_size t + sb - 1) / sb

let add_lost t (a, l) =
  match t.lost with
  | (pa, pl) :: rest when pa + pl = a -> t.lost <- (pa, pl + l) :: rest
  | _ -> t.lost <- (a, l) :: t.lost

(* Recompute every live parity chunk of [stripe] from the data stores
   (used after a past-quorum wipe, when incremental deltas can no
   longer bridge to the lost contents). *)
let recompute_parity t ~stripe ~hw =
  let k = t.spec.k and chunk = t.spec.chunk in
  let ulen = min chunk (max 0 (hw - (stripe * stripe_bytes t))) in
  if ulen > 0 then begin
    let tmp = Bytes.create ulen in
    for r = 0 to t.spec.m - 1 do
      let pn = t.nodes.(node_of_slot t ~stripe ~slot:(k + r)) in
      if pn.up then begin
        let acc = Bytes.make ulen '\000' in
        for j = 0 to k - 1 do
          let dn = t.nodes.(node_of_slot t ~stripe ~slot:j) in
          Far_store.read dn.store ~addr:(stripe * chunk) ~len:ulen ~dst:tmp
            ~dst_off:0;
          gf_madd ~c:(coeff r j) ~src:tmp ~src_off:0 ~dst:acc ~dst_off:0
            ~len:ulen
        done;
        Far_store.write pn.store ~addr:(stripe * chunk) ~len:ulen ~src:acc
          ~src_off:0
      end
    done
  end

let crash t (e : event) =
  let x = e.ev_node in
  let n = t.nodes.(x) in
  t.stats.crashes <- t.stats.crashes + 1;
  if not n.up then begin
    (* Already down: the outage just stretches. *)
    n.up_at <- Float.max n.up_at (e.ev_at +. e.ev_down_for);
    t.recover_q <-
      List.sort compare
        ((n.up_at, x) :: List.filter (fun (_, i) -> i <> x) t.recover_q);
    None
  end
  else begin
    let k = t.spec.k and m = t.spec.m and chunk = t.spec.chunk in
    let sb = stripe_bytes t in
    let hw = logical_size t in
    (* Pass 1, store still intact: find the stripe groups this crash
       pushes past quorum, and materialize the still-decodable phantom
       chunks of already-down group mates into their stores — after
       the wipe they can never be decoded again, and the stores become
       the direct-mode truth. *)
    let over = ref [] in
    let saved = t.recon_pending in
    for s = nstripes_touched t - 1 downto 0 do
      if slot_of_node t ~stripe:s ~node:x <> None then begin
        let down_before = group_down t ~stripe:s in
        if down_before + 1 > m then begin
          over := s :: !over;
          if down_before <= m && down_before > 0 then
            for j = 0 to k - 1 do
              let peer = t.nodes.(node_of_slot t ~stripe:s ~slot:j) in
              if not peer.up then begin
                let clen = min chunk (max 0 (hw - ((s * sb) + (j * chunk)))) in
                if clen > 0 then begin
                  let buf = Bytes.create clen in
                  decode_data t ~account:false ~stripe:s ~jm:j ~off:0 ~clen
                    ~dst:buf ~dst_off:0;
                  Far_store.write peer.store ~addr:(s * chunk) ~len:clen
                    ~src:buf ~src_off:0
                end
              end
            done
        end
      end
    done;
    t.recon_pending <- saved;
    (* The crash proper: wipe the store, mark the node down, bump the
       fencing epoch (requests in flight to it are stale). *)
    Far_store.clear n.store;
    n.up <- false;
    n.up_at <- e.ev_at +. e.ev_down_for;
    t.down_count <- t.down_count + 1;
    t.recover_q <- List.sort compare ((n.up_at, x) :: t.recover_q);
    t.epoch <- t.epoch + 1;
    (* Pass 2: in every past-quorum group the crashed node's data
       chunks are unrecoverable — account the exact logical extents
       and recompute surviving parity over the zeroed chunks so the
       group stays self-consistent. *)
    let lost_here = ref 0 in
    List.iter
      (fun s ->
        (match slot_of_node t ~stripe:s ~node:x with
        | Some j when j < k ->
          let base = (s * sb) + (j * chunk) in
          let clen = min chunk (max 0 (hw - base)) in
          if clen > 0 then begin
            lost_here := !lost_here + clen;
            add_lost t (base, clen)
          end
        | _ -> ());
        recompute_parity t ~stripe:s ~hw)
      !over;
    if !over <> [] then begin
      t.degraded <- true;
      t.stats.lost_bytes <- t.stats.lost_bytes + !lost_here;
      Some
        (Data_lost
           { at = e.ev_at; node = x; lost_bytes = !lost_here; epoch = t.epoch;
             down = t.down_count })
    end
    else begin
      t.stats.failovers <- t.stats.failovers + 1;
      Some
        (Failover
           { at = e.ev_at; failed = x; epoch = t.epoch; down = t.down_count })
    end
  end

let recover t ~at idx =
  let n = t.nodes.(idx) in
  let k = t.spec.k and m = t.spec.m and chunk = t.spec.chunk in
  let sb = stripe_bytes t in
  let hw = logical_size t in
  let rebuilt = ref 0 in
  let saved = t.recon_pending in
  (* Rebuild the returning node's chunks from survivors (this node is
     still counted as down, so decode never sources its stale store).
     Past-quorum groups need no rebuild: their stores are the truth. *)
  for s = 0 to nstripes_touched t - 1 do
    match slot_of_node t ~stripe:s ~node:idx with
    | None -> ()
    | Some j when j < k ->
      let base = (s * sb) + (j * chunk) in
      let clen = min chunk (max 0 (hw - base)) in
      if clen > 0 && group_down t ~stripe:s <= m then begin
        let buf = Bytes.create clen in
        decode_data t ~account:false ~stripe:s ~jm:j ~off:0 ~clen ~dst:buf
          ~dst_off:0;
        Far_store.write n.store ~addr:(s * chunk) ~len:clen ~src:buf ~src_off:0;
        rebuilt := !rebuilt + clen
      end
    | Some j ->
      let ulen = min chunk (max 0 (hw - (s * sb))) in
      if ulen > 0 then begin
        let r = j - k in
        let acc = Bytes.make ulen '\000' in
        let tmp = Bytes.create ulen in
        for i = 0 to k - 1 do
          let dn = t.nodes.(node_of_slot t ~stripe:s ~slot:i) in
          if (not dn.up) && group_down t ~stripe:s <= m then
            decode_data t ~account:false ~stripe:s ~jm:i ~off:0 ~clen:ulen
              ~dst:tmp ~dst_off:0
          else
            Far_store.read dn.store ~addr:(s * chunk) ~len:ulen ~dst:tmp
              ~dst_off:0;
          gf_madd ~c:(coeff r i) ~src:tmp ~src_off:0 ~dst:acc ~dst_off:0
            ~len:ulen
        done;
        Far_store.write n.store ~addr:(s * chunk) ~len:ulen ~src:acc ~src_off:0;
        rebuilt := !rebuilt + ulen
      end
  done;
  t.recon_pending <- saved;
  n.up <- true;
  t.down_count <- t.down_count - 1;
  if !rebuilt > 0 then begin
    t.stats.resync_bytes <- t.stats.resync_bytes + !rebuilt;
    t.stats.replication_bytes <- t.stats.replication_bytes + !rebuilt
  end;
  Recovered { at; node = idx; resync_bytes = !rebuilt; whole = t.down_count = 0 }

let poll t ~now =
  let incidents = ref [] in
  let rec drain () =
    if t.next_at <= now then begin
      let next_crash = match t.crash_q with e :: _ -> e.ev_at | [] -> infinity in
      let next_recover =
        match t.recover_q with (at, _) :: _ -> at | [] -> infinity
      in
      (* Recoveries first on ties, so back-to-back outages behave. *)
      if next_recover <= next_crash then begin
        match t.recover_q with
        | (at, idx) :: rest ->
          t.recover_q <- rest;
          incidents := recover t ~at idx :: !incidents
        | [] -> ()
      end
      else begin
        match t.crash_q with
        | e :: rest ->
          t.crash_q <- rest;
          (match crash t e with
          | Some inc -> incidents := inc :: !incidents
          | None -> ())
        | [] -> ()
      end;
      refresh_next t;
      drain ()
    end
  in
  drain ();
  List.rev !incidents

let publish t reg =
  let s = t.stats in
  Metrics.set_counter reg "node.crashes" s.crashes;
  Metrics.set_counter reg "node.failovers" s.failovers;
  Metrics.set_counter reg "node.lost_bytes" s.lost_bytes;
  Metrics.set_counter reg "node.epoch" t.epoch;
  Metrics.set_counter reg "node.down" t.down_count;
  Metrics.set_hist reg "node.recovery_ns" s.recovery;
  Metrics.set_counter reg "replication.bytes" s.replication_bytes;
  Metrics.set_counter reg "replication.resync_bytes" s.resync_bytes;
  if not t.trivial then begin
    Metrics.set_counter reg "ec.k" t.spec.k;
    Metrics.set_counter reg "ec.m" t.spec.m;
    Metrics.set_counter reg "ec.chunk" t.spec.chunk;
    Metrics.set_counter reg "ec.reconstructions" s.reconstructions;
    Metrics.set_counter reg "ec.reconstructed_bytes" s.reconstructed_bytes;
    Array.iteri
      (fun i n ->
        Metrics.set_counter reg
          (Printf.sprintf "ec.node%d.served_bytes" i)
          n.served_bytes)
      t.nodes
  end

let clear t =
  Array.iter
    (fun n ->
      Far_store.clear n.store;
      n.served_bytes <- 0)
    t.nodes;
  t.lost <- [];
  t.degraded <- false;
  t.hw <- 0;
  t.recon_pending <- 0;
  let s = t.stats in
  s.crashes <- 0;
  s.failovers <- 0;
  s.replication_bytes <- 0;
  s.resync_bytes <- 0;
  s.lost_bytes <- 0;
  s.reconstructions <- 0;
  s.reconstructed_bytes <- 0;
  Metrics.hist_reset s.recovery
