module Metrics = Mira_telemetry.Metrics

type event = { ev_node : int; ev_at : float; ev_down_for : float }

type spec = { nodes : int; replication : int; schedule : event list }

let spec_default = { nodes = 1; replication = 1; schedule = [] }

let validate_spec s =
  let bad fmt = Printf.ksprintf invalid_arg fmt in
  if s.nodes < 1 then bad "Cluster: nodes must be >= 1 (got %d)" s.nodes;
  if s.replication < 1 then
    bad "Cluster: replication must be >= 1 (got %d)" s.replication;
  if s.replication > s.nodes then
    bad "Cluster: replication %d exceeds node count %d" s.replication s.nodes;
  List.iter
    (fun e ->
      if e.ev_node < 0 || e.ev_node >= s.nodes then
        bad "Cluster: crash event names node %d of %d" e.ev_node s.nodes;
      if Float.is_nan e.ev_at || e.ev_at < 0.0 then
        bad "Cluster: crash time must be >= 0 (got %g)" e.ev_at;
      if Float.is_nan e.ev_down_for || e.ev_down_for <= 0.0 then
        bad "Cluster: outage length must be > 0 (got %g)" e.ev_down_for)
    s.schedule

(* Same splitmix64 finalizer as [Net.Fault]: purely functional, so a
   seed fully determines the schedule. *)
let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 33)) 0xff51afd7ed558ccdL in
  let z = mul (logxor z (shift_right_logical z 33)) 0xc4ceb9fe1a85ec53L in
  logxor z (shift_right_logical z 33)

let u01 ~seed ~k ~salt =
  let open Int64 in
  let z = mix (add (of_int seed) 0x9E3779B97F4A7C15L) in
  let z = mix (logxor z (of_int ((k * 0x10001) + salt))) in
  to_float (shift_right_logical z 11) /. 9007199254740992.0

let schedule_of_seed ~seed ~nodes ~crashes ~horizon_ns ~down_ns =
  assert (nodes >= 1 && crashes >= 0 && horizon_ns > 0.0 && down_ns > 0.0);
  let raw =
    List.init crashes (fun k ->
        {
          ev_node = int_of_float (u01 ~seed ~k ~salt:1 *. float_of_int nodes) mod nodes;
          ev_at = u01 ~seed ~k ~salt:2 *. horizon_ns;
          ev_down_for = down_ns *. (0.5 +. u01 ~seed ~k ~salt:3);
        })
    |> List.sort (fun a b -> compare a.ev_at b.ev_at)
  in
  (* Serialize outages: a crash never lands while another node is still
     down (or just back), so one in-sync replica always survives. *)
  let gap = 0.1 *. down_ns in
  let _, serialized =
    List.fold_left
      (fun (free_at, acc) e ->
        let at = Float.max e.ev_at free_at in
        (at +. e.ev_down_for +. gap, { e with ev_at = at } :: acc))
      (0.0, []) raw
  in
  List.rev serialized

type incident =
  | Failover of { at : float; failed : int; new_primary : int; epoch : int }
  | Primary_lost of { at : float; node : int; lost_bytes : int; epoch : int }
  | Backup_lost of { at : float; node : int }
  | Recovered of { at : float; node : int; resync_bytes : int; now_backup : bool }

type stats = {
  mutable crashes : int;
  mutable failovers : int;
  mutable replication_bytes : int;
  mutable resync_bytes : int;
  mutable lost_bytes : int;
  recovery : Metrics.hist;
}

let empty_stats () =
  {
    crashes = 0;
    failovers = 0;
    replication_bytes = 0;
    resync_bytes = 0;
    lost_bytes = 0;
    recovery = Metrics.hist_create ();
  }

type node = {
  store : Far_store.t;
  mutable up : bool;
  mutable up_at : float;  (* recovery time while down *)
  mutable in_sync : bool;  (* holds a full replica of the primary *)
}

type t = {
  spec : spec;
  nodes : node array;
  mutable primary : int;
  mutable backup : int;  (* -1 = none *)
  mutable epoch : int;
  mutable crash_q : event list;  (* pending crashes, sorted by time *)
  mutable recover_q : (float * int) list;  (* pending recoveries, sorted *)
  mutable next_at : float;
  mutable lost : (int * int) list;  (* wiped extents not yet drained *)
  mutable degraded : bool;
  stats : stats;
}

let refresh_next t =
  let a = match t.crash_q with e :: _ -> e.ev_at | [] -> infinity in
  let b = match t.recover_q with (at, _) :: _ -> at | [] -> infinity in
  t.next_at <- Float.min a b

let make_of_nodes spec nodes =
  let t =
    {
      spec;
      nodes;
      primary = 0;
      backup = (if spec.replication >= 2 && spec.nodes >= 2 then 1 else -1);
      epoch = 0;
      crash_q =
        List.sort (fun a b -> compare a.ev_at b.ev_at) spec.schedule;
      recover_q = [];
      next_at = infinity;
      lost = [];
      degraded = false;
      stats = empty_stats ();
    }
  in
  refresh_next t;
  t

let create ~capacity spec =
  validate_spec spec;
  make_of_nodes spec
    (Array.init spec.nodes (fun _ ->
         {
           store = Far_store.create ~capacity;
           up = true;
           up_at = 0.0;
           in_sync = true;
         }))

let of_store store =
  make_of_nodes spec_default
    [| { store; up = true; up_at = 0.0; in_sync = true } |]

let spec t = t.spec
let capacity t = Far_store.capacity t.nodes.(t.primary).store
let primary t = t.nodes.(t.primary).store
let primary_index t = t.primary

(* Trace lane of the node currently serving requests, so fill spans
   can mark which physical node satisfied them (the lane changes
   across failovers). *)
let service_lane t = Printf.sprintf "node%d" t.primary

let epoch t = t.epoch
let degraded t = t.degraded
let stats t = t.stats

let replicated t =
  t.spec.replication >= 2 && t.backup >= 0
  && t.nodes.(t.backup).up && t.nodes.(t.backup).in_sync

let down_until t =
  let p = t.nodes.(t.primary) in
  if p.up then 0.0 else p.up_at

let next_event_at t = t.next_at
let take_lost_extents t =
  let l = List.rev t.lost in
  t.lost <- [];
  l

let observe_recovery t ns = Metrics.hist_observe t.stats.recovery ns

(* Bulk copy of the primary's touched extent into a returning node. *)
let copy_store ~src ~dst =
  let n = Far_store.size src in
  if n > 0 then begin
    let buf = Bytes.create (min n 65536) in
    let rec go off =
      if off < n then begin
        let len = min (Bytes.length buf) (n - off) in
        Far_store.read src ~addr:off ~len ~dst:buf ~dst_off:0;
        Far_store.write dst ~addr:off ~len ~src:buf ~src_off:0;
        go (off + len)
      end
    in
    go 0
  end;
  n

let crash t (e : event) =
  let n = t.nodes.(e.ev_node) in
  t.stats.crashes <- t.stats.crashes + 1;
  if not n.up then begin
    (* Already down: the outage just stretches. *)
    n.up_at <- Float.max n.up_at (e.ev_at +. e.ev_down_for);
    t.recover_q <-
      List.sort compare
        ((n.up_at, e.ev_node)
        :: List.filter (fun (_, i) -> i <> e.ev_node) t.recover_q);
    None
  end
  else begin
    let wiped = Far_store.size n.store in
    Far_store.clear n.store;
    n.up <- false;
    n.up_at <- e.ev_at +. e.ev_down_for;
    n.in_sync <- false;
    t.recover_q <- List.sort compare ((n.up_at, e.ev_node) :: t.recover_q);
    if e.ev_node = t.primary then begin
      t.epoch <- t.epoch + 1;
      if replicated t then begin
        (* Failover: promote the in-sync backup; no data lost. *)
        let promoted = t.backup in
        t.primary <- promoted;
        t.backup <- -1;
        t.stats.failovers <- t.stats.failovers + 1;
        Some (Failover { at = e.ev_at; failed = e.ev_node;
                         new_primary = promoted; epoch = t.epoch })
      end
      else begin
        (* No surviving copy: the wiped extent is gone.  The node keeps
           the primary role; writes during the outage are treated as
           buffered and delivered, reads of the wiped extent see zeros. *)
        t.degraded <- true;
        t.stats.lost_bytes <- t.stats.lost_bytes + wiped;
        if wiped > 0 then t.lost <- (0, wiped) :: t.lost;
        Some (Primary_lost { at = e.ev_at; node = e.ev_node;
                             lost_bytes = wiped; epoch = t.epoch })
      end
    end
    else if e.ev_node = t.backup then begin
      t.backup <- -1;
      Some (Backup_lost { at = e.ev_at; node = e.ev_node })
    end
    else None
  end

let recover t ~at node_idx =
  let n = t.nodes.(node_idx) in
  n.up <- true;
  if t.spec.replication >= 2 && t.backup < 0 && node_idx <> t.primary then begin
    (* Resync from the primary and rejoin as backup. *)
    let copied = copy_store ~src:t.nodes.(t.primary).store ~dst:n.store in
    n.in_sync <- true;
    t.backup <- node_idx;
    t.stats.resync_bytes <- t.stats.resync_bytes + copied;
    t.stats.replication_bytes <- t.stats.replication_bytes + copied;
    Recovered { at; node = node_idx; resync_bytes = copied; now_backup = true }
  end
  else begin
    (* A solo primary (or a spare) coming back empty: nothing to copy
       from, it just resumes serving. *)
    if node_idx = t.primary then n.in_sync <- true;
    Recovered { at; node = node_idx; resync_bytes = 0; now_backup = false }
  end

let poll t ~now =
  let incidents = ref [] in
  let rec drain () =
    if t.next_at <= now then begin
      let next_crash = match t.crash_q with e :: _ -> e.ev_at | [] -> infinity in
      let next_recover =
        match t.recover_q with (at, _) :: _ -> at | [] -> infinity
      in
      (* Recoveries first on ties, so back-to-back outages behave. *)
      if next_recover <= next_crash then begin
        match t.recover_q with
        | (at, idx) :: rest ->
          t.recover_q <- rest;
          incidents := recover t ~at idx :: !incidents
        | [] -> ()
      end
      else begin
        match t.crash_q with
        | e :: rest ->
          t.crash_q <- rest;
          (match crash t e with
          | Some inc -> incidents := inc :: !incidents
          | None -> ())
        | [] -> ()
      end;
      refresh_next t;
      drain ()
    end
  in
  drain ();
  List.rev !incidents

let publish t reg =
  let s = t.stats in
  Metrics.set_counter reg "node.crashes" s.crashes;
  Metrics.set_counter reg "node.failovers" s.failovers;
  Metrics.set_counter reg "node.lost_bytes" s.lost_bytes;
  Metrics.set_counter reg "node.epoch" t.epoch;
  Metrics.set_hist reg "node.recovery_ns" s.recovery;
  Metrics.set_counter reg "replication.bytes" s.replication_bytes;
  Metrics.set_counter reg "replication.resync_bytes" s.resync_bytes

(* --- data plane ---------------------------------------------------------- *)

let read t ~addr ~len ~dst ~dst_off =
  Far_store.read t.nodes.(t.primary).store ~addr ~len ~dst ~dst_off

let write t ~addr ~len ~src ~src_off =
  Far_store.write t.nodes.(t.primary).store ~addr ~len ~src ~src_off;
  if replicated t then begin
    Far_store.write t.nodes.(t.backup).store ~addr ~len ~src ~src_off;
    t.stats.replication_bytes <- t.stats.replication_bytes + len
  end

let read_le t ~addr ~len = Far_store.read_le t.nodes.(t.primary).store ~addr ~len

let write_le t ~addr ~len v =
  Far_store.write_le t.nodes.(t.primary).store ~addr ~len v;
  if replicated t then begin
    Far_store.write_le t.nodes.(t.backup).store ~addr ~len v;
    t.stats.replication_bytes <- t.stats.replication_bytes + len
  end

let read_i64 t ~addr = Far_store.read_i64 t.nodes.(t.primary).store ~addr

let write_i64 t ~addr v =
  Far_store.write_i64 t.nodes.(t.primary).store ~addr v;
  if replicated t then begin
    Far_store.write_i64 t.nodes.(t.backup).store ~addr v;
    t.stats.replication_bytes <- t.stats.replication_bytes + 8
  end

let blit_within t ~src ~dst ~len =
  Far_store.blit_within t.nodes.(t.primary).store ~src ~dst ~len;
  if replicated t then begin
    Far_store.blit_within t.nodes.(t.backup).store ~src ~dst ~len;
    t.stats.replication_bytes <- t.stats.replication_bytes + len
  end

let size t = Far_store.size t.nodes.(t.primary).store

let clear t =
  Array.iter (fun n -> Far_store.clear n.store) t.nodes;
  t.lost <- []
