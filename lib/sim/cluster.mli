(** A small far-memory cluster: N [Far_store.t] nodes behind a striped
    (k, m) erasure-coded data plane, a deterministic crash/recovery
    schedule, and epoch numbers that fence out requests from before a
    node loss.

    The cluster is the failure domain the rest of the stack programs
    against.  Logical far addresses are split into stripes of [k] data
    chunks of [chunk] bytes each, extended with [m] parity chunks (XOR
    for the first parity row, a GF(2^8) Reed-Solomon row for the
    second — all integer math, fully deterministic).  A placement map
    assigns the k+m chunks of every stripe to distinct nodes; r-way
    mirroring is the degenerate scheme (k = 1, m = r-1), where every
    parity chunk is a byte-identical copy.

    Quorum rule per stripe group: as long as at most [m] of a group's
    nodes are down, every read decodes to the exact written bytes —
    output is bit-identical to a fault-free run.  Reads from a down
    node reconstruct from any k survivors (the extra survivor traffic
    is drained via [take_reconstruction] so the cache layer can charge
    it); writes update the surviving parity chunks incrementally.  When
    a crash pushes a group past m concurrent failures, the chunks whose
    only copies lived on down nodes are gone: the cluster enters
    degraded mode, the exact logical extents are reported via
    [take_lost_extents], and surviving parity is recomputed over the
    zeroed chunks so later reads and recoveries stay consistent.

    Like [Net], the cluster is deterministic: the schedule is explicit
    data ([schedule_of_seed] derives one from a seed, optionally with
    genuinely overlapping outages), so a fixed seed reproduces the
    exact same crashes, reconstructions, and losses.  With
    [spec_default] (one node, k = 1, m = 0, empty schedule) every
    operation is a transparent pass-through to a single [Far_store.t] —
    bit-identical to the pre-cluster system. *)

type placement =
  | Flat  (** chunk slot j of every stripe lives on node j *)
  | Rotate
      (** chunk slot j of stripe s lives on node (s + j) mod nodes:
          spreads hot sections (and the parity write load) across the
          cluster *)

val placement_name : placement -> string
val placement_of_name : string -> placement option

type event = {
  ev_node : int;  (** which node crashes *)
  ev_at : float;  (** simulated time of the crash *)
  ev_down_for : float;  (** outage length; the node recovers (empty) after *)
}

type spec = {
  nodes : int;  (** cluster size, >= 1 *)
  k : int;  (** data chunks per stripe, >= 1 *)
  m : int;  (** parity chunks per stripe, 0-2; k + m <= nodes *)
  chunk : int;  (** chunk size in bytes, a positive multiple of 8 *)
  placement : placement;
  schedule : event list;  (** crash schedule, any order *)
}

val spec_default : spec
(** One node, k = 1, m = 0 (no redundancy), no crashes: the
    pre-cluster system. *)

val mirror : nodes:int -> copies:int -> event list -> spec
(** [copies]-way mirroring as the (1, copies-1) scheme on a flat
    placement: node 0 holds the data, nodes 1..copies-1 full replicas. *)

val ec : ?chunk:int -> ?placement:placement -> nodes:int -> k:int -> m:int ->
  event list -> spec
(** A (k, m) erasure-coded spec (default chunk 1024, rotating
    placement). *)

val validate_spec : spec -> unit
(** Raises [Invalid_argument] on a malformed spec: [nodes < 1],
    [k < 1], [m] outside [0, 2], [k + m > nodes], a chunk size that is
    not a positive multiple of 8, an event naming a node outside
    [0, nodes), or a crash time / outage length that is negative,
    non-positive or non-finite (NaN and [infinity] are rejected). *)

val schedule_of_seed :
  overlap:bool -> seed:int -> nodes:int -> crashes:int -> horizon_ns:float ->
  down_ns:float -> event list
(** A deterministic schedule of [crashes] single-node outages derived
    from [seed]: crash times spread over [horizon_ns], outages around
    [down_ns] (0.5x-1.5x).  With [~overlap:false] outages are
    serialized — each crash starts only after the previous node has
    recovered, so at most one node is ever down.  With [~overlap:true]
    the raw crash times are kept, so outages genuinely overlap and up
    to [crashes] nodes can be down at once — the regime the quorum
    rules exist for.  Raises [Invalid_argument] (not [assert], so the
    checks survive release builds) on [nodes < 1], [crashes < 0], or a
    non-finite/non-positive horizon or outage length. *)

type incident =
  | Failover of { at : float; failed : int; epoch : int; down : int }
      (** a node crashed but every stripe group still has at least k
          live chunks (<= m of its nodes down): requests in flight to
          the dead node must be fenced (the epoch was bumped) and
          dirty lines re-issued; reads of its chunks reconstruct from
          survivors.  [down] is the cluster-wide down-node count. *)
  | Data_lost of { at : float; node : int; lost_bytes : int; epoch : int;
                   down : int }
      (** the crash pushed at least one stripe group past m concurrent
          failures: [lost_bytes] of far data (the crashed node's data
          chunks in those groups) are unrecoverable; degraded mode *)
  | Recovered of { at : float; node : int; resync_bytes : int; whole : bool }
      (** a node came back: its chunks were rebuilt from survivors
          ([resync_bytes] decoded and copied); [whole] when no node
          remains down *)

type stats = {
  mutable crashes : int;
  mutable failovers : int;  (** quorum-holding crashes survived via fencing *)
  mutable replication_bytes : int;
      (** true redundancy bytes-on-wire: parity/copy updates (per
          parity row, the union of touched chunk intervals per stripe)
          plus rebuild traffic *)
  mutable resync_bytes : int;  (** bytes rebuilt onto returning nodes *)
  mutable lost_bytes : int;  (** bytes wiped with no surviving copy *)
  mutable reconstructions : int;
      (** degraded chunk ranges served by decoding survivors *)
  mutable reconstructed_bytes : int;
  recovery : Mira_telemetry.Metrics.hist;
      (** per-failover recovery time observed by the cache manager *)
}

type t

val create : capacity:int -> spec -> t
(** Fresh empty stores ([capacity] bytes of logical far memory).
    Raises [Invalid_argument] on a malformed spec (see
    [validate_spec]). *)

val of_store : Far_store.t -> t
(** Wrap an existing single store as a one-node, redundancy-off
    cluster: every data operation is a pass-through, [poll] never
    returns incidents.  For tests and benches that own a [Far_store.t]. *)

val spec : t -> spec
val capacity : t -> int

val scheme : t -> int * int
(** The (k, m) pair. *)

val primary : t -> Far_store.t
(** Node 0's physical store.  Only a faithful view of the logical data
    for trivial (pass-through) clusters and for up-to-date flat
    mirrors, where node-local and logical addresses coincide. *)

val serving_node : t -> int
(** Lowest-numbered live node (0 when every node is down). *)

val service_lane : t -> string
(** Trace lane name ["node<serving_node>"]; changes across outages so
    fill spans record which physical node satisfied them. *)

val node_of_addr : t -> addr:int -> int
(** The node holding the data chunk that [addr] falls in — the target
    of demand traffic for that address. *)

val node_down_until : t -> node:int -> float
(** The node's recovery time while it is down; [0.0] when up. *)

val epoch : t -> int
(** Bumped on every node crash; requests in flight under an older
    epoch are stale and must be fenced. *)

val redundant : t -> bool
(** The scheme carries parity (m >= 1): writebacks owe extra wire
    traffic (see [replica_payloads]). *)

val degraded : t -> bool
(** Sticky: far data has been lost at some point in this run. *)

val down_count : t -> int

val down_until : t -> float
(** When more than m nodes are concurrently down (quorum may be
    broken), the time at which enough nodes have recovered to bring
    the count back to m; [0.0] while the down count is within the
    scheme's tolerance. *)

val next_event_at : t -> float
(** Time of the next scheduled crash or recovery; [infinity] when the
    schedule is exhausted.  The O(1) guard callers use to keep [poll]
    off the access fast path. *)

val poll : t -> now:float -> incident list
(** Process every crash/recovery due at or before [now], in time
    order, and return the resulting incidents (oldest first).  The
    caller (the cache manager) is responsible for fencing the network
    and re-issuing writebacks; the cluster only moves its own state. *)

val take_lost_extents : t -> (int * int) list
(** Logical far [(addr, len)] extents lost past quorum since the last
    call (drained, adjacent extents coalesced).  The runtime intersects
    these with live object ranges for per-object lost-byte
    accounting. *)

val take_reconstruction : t -> int
(** Extra survivor bytes read by decode since the last call (drained):
    reconstructing a chunk range of c bytes reads k ranges instead of
    one, so each reconstruction adds (k-1)*c.  The cache layer models
    this as demand traffic and charges the stall to the [reconstruct]
    attribution cause. *)

val replica_payloads : t -> addr:int -> len:int -> (int * int) list
(** The extra remote writes a writeback of [addr, addr+len) owes under
    the scheme: one [(node, bytes)] per live parity row, where [bytes]
    is the per-stripe union of touched chunk intervals (so a
    full-stripe write costs len/k per row, and a mirror write costs
    len per copy).  Empty when m = 0.  [Cluster.write] adds the same
    byte counts to [stats.replication_bytes]. *)

val stats : t -> stats

val observe_recovery : t -> float -> unit
(** Record one failover's recovery time (ns) into the histogram. *)

val publish : t -> Mira_telemetry.Metrics.t -> unit
(** Export under [node.*] / [replication.*] / [ec.*]: [node.crashes],
    [node.failovers], [node.lost_bytes], [node.epoch], [node.down],
    [node.recovery_ns] (histogram), [replication.bytes],
    [replication.resync_bytes]; for non-trivial clusters also [ec.k],
    [ec.m], [ec.chunk], [ec.reconstructions],
    [ec.reconstructed_bytes], and per-node [ec.node<N>.served_bytes]. *)

(** {1 Data plane}

    Same contract as [Far_store]: reads return the exact logical bytes
    (decoding from survivors when the owning node is down and its
    group is within quorum), writes land on the data chunk's node and
    fold the delta into every live parity chunk. *)

val read : t -> addr:int -> len:int -> dst:Bytes.t -> dst_off:int -> unit
val write : t -> addr:int -> len:int -> src:Bytes.t -> src_off:int -> unit
val read_le : t -> addr:int -> len:int -> int64
val write_le : t -> addr:int -> len:int -> int64 -> unit
val read_i64 : t -> addr:int -> int64
val write_i64 : t -> addr:int -> int64 -> unit
val blit_within : t -> src:int -> dst:int -> len:int -> unit
val size : t -> int

val clear : t -> unit
(** Reset between runs: zero every store, drain pending lost extents
    and reconstruction debt, clear the sticky [degraded] flag and all
    per-run [stats] (including the recovery histogram).  Node up/down
    state, the epoch, and the remaining schedule are untouched. *)
