(** A small far-memory cluster: N [Far_store.t] nodes behind a
    primary/backup placement, a deterministic crash/recovery schedule,
    and epoch numbers that fence out requests from before a failover.

    The cluster is the failure domain the rest of the stack programs
    against.  Reads are served by the current primary; writes land on
    the primary and, when replication is on and a backup is live and in
    sync, on the backup too (the cache layer additionally models the
    replica's network traffic).  A crash wipes the node's store — every
    byte whose only copy lived there is gone — and schedules a recovery
    [down_for] nanoseconds later.  What happens next depends on
    placement:

    - crashed backup: the primary keeps serving; the cluster is
      under-replicated until the node returns and is resynced;
    - crashed primary with a live, in-sync backup: failover — the
      backup is promoted, the epoch is bumped (stale in-flight requests
      must be fenced by the caller, see [Net.fail_inflight]);
    - crashed primary with no live replica: data loss — the run
      continues in degraded mode; the wiped extent is reported via
      [take_lost_extents] so the runtime can account lost bytes per
      object instead of raising.

    Like [Net], the cluster is deterministic: the schedule is explicit
    data ([schedule_of_seed] derives one from a seed), so a fixed seed
    reproduces the exact same crashes, failovers, and losses.  With
    [spec_default] (one node, no replication, empty schedule) every
    operation is a transparent pass-through to a single [Far_store.t] —
    bit-identical to the pre-cluster system. *)

type event = {
  ev_node : int;  (** which node crashes *)
  ev_at : float;  (** simulated time of the crash *)
  ev_down_for : float;  (** outage length; the node recovers (empty) after *)
}

type spec = {
  nodes : int;  (** cluster size, >= 1 *)
  replication : int;  (** copies to maintain: 1 = replication off, 2 = primary+backup *)
  schedule : event list;  (** crash schedule, any order *)
}

val spec_default : spec
(** One node, replication off, no crashes: the pre-cluster system. *)

val validate_spec : spec -> unit
(** Raises [Invalid_argument] on a malformed spec: [nodes < 1],
    [replication < 1], [replication > nodes], an event naming a node
    outside [0, nodes), a negative/NaN crash time, or a non-positive
    outage length. *)

val schedule_of_seed :
  seed:int -> nodes:int -> crashes:int -> horizon_ns:float -> down_ns:float ->
  event list
(** A deterministic schedule of [crashes] single-node outages derived
    from [seed]: crash times spread over [horizon_ns], outages around
    [down_ns] (0.5x-1.5x).  Outages never overlap — each crash starts
    after the previous node has recovered — so with replication 2 a
    live in-sync replica exists at every crash and no data is ever
    lost (the property the bit-identity test leans on). *)

type incident =
  | Failover of { at : float; failed : int; new_primary : int; epoch : int }
      (** the primary crashed; its in-sync backup was promoted *)
  | Primary_lost of { at : float; node : int; lost_bytes : int; epoch : int }
      (** the primary crashed with no live replica: [lost_bytes] of
          far data (its touched extent) are gone; degraded mode *)
  | Backup_lost of { at : float; node : int }
      (** the backup crashed; under-replicated until it resyncs *)
  | Recovered of { at : float; node : int; resync_bytes : int; now_backup : bool }
      (** a node came back; if [now_backup], it was resynced from the
          primary ([resync_bytes] copied) and replication is whole again *)

type stats = {
  mutable crashes : int;
  mutable failovers : int;
  mutable replication_bytes : int;  (** bytes mirrored to the backup, incl. resync *)
  mutable resync_bytes : int;  (** bytes copied to returning nodes *)
  mutable lost_bytes : int;  (** bytes wiped with no surviving copy *)
  recovery : Mira_telemetry.Metrics.hist;
      (** per-failover recovery time observed by the cache manager *)
}

type t

val create : capacity:int -> spec -> t
(** Fresh empty stores.  Raises [Invalid_argument] on a malformed spec
    (see [validate_spec]). *)

val of_store : Far_store.t -> t
(** Wrap an existing single store as a one-node, replication-off
    cluster: every data operation is a pass-through, [poll] never
    returns incidents.  For tests and benches that own a [Far_store.t]. *)

val spec : t -> spec
val capacity : t -> int

val primary : t -> Far_store.t
(** The store currently serving reads (changes on failover). *)

val primary_index : t -> int

val service_lane : t -> string
(** Trace lane name of the node currently serving requests
    (["node<primary_index>"]); changes across failovers so fill spans
    record which physical node satisfied them. *)

val epoch : t -> int
(** Bumped on every primary crash; requests in flight under an older
    epoch are stale and must be fenced. *)

val replicated : t -> bool
(** Replication is on and a live, in-sync backup exists right now —
    writes are being mirrored (and the cache layer should model the
    replica's network traffic). *)

val degraded : t -> bool
(** Sticky: far data has been lost at some point in this run. *)

val down_until : t -> float
(** If the serving primary is currently down with no failover target
    (degraded outage), the time it comes back; [0.0] otherwise. *)

val next_event_at : t -> float
(** Time of the next scheduled crash or recovery; [infinity] when the
    schedule is exhausted.  The O(1) guard callers use to keep [poll]
    off the access fast path. *)

val poll : t -> now:float -> incident list
(** Process every crash/recovery due at or before [now], in time
    order, and return the resulting incidents (oldest first).  The
    caller (the cache manager) is responsible for fencing the network
    and re-issuing writebacks; the cluster only moves its own state. *)

val take_lost_extents : t -> (int * int) list
(** Far [(addr, len)] extents wiped with no surviving copy since the
    last call (drained).  The runtime intersects these with live object
    ranges for per-object lost-byte accounting. *)

val stats : t -> stats

val observe_recovery : t -> float -> unit
(** Record one failover's recovery time (ns) into the histogram. *)

val publish : t -> Mira_telemetry.Metrics.t -> unit
(** Export under [node.*] / [replication.*]: [node.crashes],
    [node.failovers], [node.lost_bytes], [node.epoch],
    [node.recovery_ns] (histogram), [replication.bytes],
    [replication.resync_bytes]. *)

(** {1 Data plane}

    Same contract as [Far_store]; reads hit the current primary, writes
    are mirrored to the live in-sync backup when replication is on. *)

val read : t -> addr:int -> len:int -> dst:Bytes.t -> dst_off:int -> unit
val write : t -> addr:int -> len:int -> src:Bytes.t -> src_off:int -> unit
val read_le : t -> addr:int -> len:int -> int64
(** Staging-free little-endian scalar read from the primary (see
    {!Far_store.read_le}). *)

val write_le : t -> addr:int -> len:int -> int64 -> unit
(** Staging-free little-endian scalar write, mirrored to the backup
    (with replication-byte accounting) when replication is on. *)

val read_i64 : t -> addr:int -> int64
val write_i64 : t -> addr:int -> int64 -> unit
val blit_within : t -> src:int -> dst:int -> len:int -> unit
val size : t -> int
val clear : t -> unit
(** Clear every store and drain pending lost extents (between runs);
    placement, epoch, and the remaining schedule are untouched. *)
