type t = { capacity : int; mutable data : Bytes.t; mutable size : int }

let initial_chunk = 1 lsl 16

let create ~capacity =
  assert (capacity > 0);
  { capacity; data = Bytes.make (min initial_chunk capacity) '\000'; size = 0 }

let capacity t = t.capacity
let size t = t.size

let ensure t limit =
  if limit > t.capacity then
    failwith
      (Printf.sprintf "Far_store: access at %d exceeds capacity %d" limit
         t.capacity);
  let cur = Bytes.length t.data in
  if limit > cur then begin
    let target = min t.capacity (max limit (cur * 2)) in
    let grown = Bytes.make target '\000' in
    Bytes.blit t.data 0 grown 0 cur;
    t.data <- grown
  end;
  if limit > t.size then t.size <- limit

let read t ~addr ~len ~dst ~dst_off =
  assert (addr >= 0 && len >= 0);
  ensure t (addr + len);
  Bytes.blit t.data addr dst dst_off len

let write t ~addr ~len ~src ~src_off =
  assert (addr >= 0 && len >= 0);
  ensure t (addr + len);
  Bytes.blit src src_off t.data addr len

(* Scalar access straight into the backing bytes: the value crosses the
   store boundary exactly once, no staging buffer. *)
let read_le t ~addr ~len =
  assert (addr >= 0 && len > 0 && len <= 8);
  ensure t (addr + len);
  Mira_util.Bytes_le.get t.data ~off:addr ~len

let write_le t ~addr ~len v =
  assert (addr >= 0 && len > 0 && len <= 8);
  ensure t (addr + len);
  Mira_util.Bytes_le.set t.data ~off:addr ~len v

let read_i64 t ~addr =
  ensure t (addr + 8);
  Bytes.get_int64_le t.data addr

let write_i64 t ~addr v =
  ensure t (addr + 8);
  Bytes.set_int64_le t.data addr v

let blit_within t ~src ~dst ~len =
  ensure t (src + len);
  ensure t (dst + len);
  Bytes.blit t.data src t.data dst len

let clear t =
  Bytes.fill t.data 0 (Bytes.length t.data) '\000';
  t.size <- 0
