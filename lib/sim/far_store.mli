(** Byte-addressable backing store of the far-memory node.

    Holds the authoritative copy of every far-memory object.  The local
    cache sections copy line-sized ranges in and out of this store, so
    data correctness of the whole system is checkable against a flat
    reference memory (see the property tests). Grows on demand up to a
    fixed capacity. *)

type t

val create : capacity:int -> t
(** Empty store that may grow up to [capacity] bytes. *)

val capacity : t -> int

val size : t -> int
(** Bytes currently materialized (high-water of touched addresses). *)

val read : t -> addr:int -> len:int -> dst:Bytes.t -> dst_off:int -> unit
(** Copy [len] bytes at far address [addr] into [dst] at [dst_off]. *)

val write : t -> addr:int -> len:int -> src:Bytes.t -> src_off:int -> unit
(** Copy [len] bytes from [src] at [src_off] to far address [addr]. *)

val read_le : t -> addr:int -> len:int -> int64
(** Little-endian scalar read of the [len] (1-8) bytes at [addr],
    zero-extended — one copy at the store boundary, no staging
    buffer. *)

val write_le : t -> addr:int -> len:int -> int64 -> unit
(** Little-endian scalar write of the value's [len] low bytes. *)

val read_i64 : t -> addr:int -> int64
val write_i64 : t -> addr:int -> int64 -> unit

val blit_within : t -> src:int -> dst:int -> len:int -> unit
(** Far-node-local copy (used by offloaded functions). *)

val clear : t -> unit
(** Zero the touched region and reset the size (between runs). *)
