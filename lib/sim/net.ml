type side = One_sided | Two_sided
type purpose = Demand | Prefetch | Writeback | Rpc

type xfer = { issue_cpu_ns : float; done_at : float }

type stats = {
  mutable msg_count : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable bytes_demand : int;
  mutable bytes_prefetch : int;
  mutable bytes_writeback : int;
  mutable bytes_rpc : int;
}

type t = { params : Params.t; mutable link_free_at : float; stats : stats }

let empty_stats () =
  {
    msg_count = 0;
    bytes_in = 0;
    bytes_out = 0;
    bytes_demand = 0;
    bytes_prefetch = 0;
    bytes_writeback = 0;
    bytes_rpc = 0;
  }

let create params = { params; link_free_at = 0.0; stats = empty_stats () }
let params t = t.params
let stats t = t.stats

let reset_stats t =
  let s = t.stats in
  s.msg_count <- 0;
  s.bytes_in <- 0;
  s.bytes_out <- 0;
  s.bytes_demand <- 0;
  s.bytes_prefetch <- 0;
  s.bytes_writeback <- 0;
  s.bytes_rpc <- 0

let reset_link t = t.link_free_at <- 0.0

let record t ~purpose ~inbound bytes =
  let s = t.stats in
  s.msg_count <- s.msg_count + 1;
  if inbound then s.bytes_in <- s.bytes_in + bytes
  else s.bytes_out <- s.bytes_out + bytes;
  match purpose with
  | Demand -> s.bytes_demand <- s.bytes_demand + bytes
  | Prefetch -> s.bytes_prefetch <- s.bytes_prefetch + bytes
  | Writeback -> s.bytes_writeback <- s.bytes_writeback + bytes
  | Rpc -> s.bytes_rpc <- s.bytes_rpc + bytes

(* Shared transfer model: the payload occupies the link for
   [bytes / bandwidth] starting when the link is free; completion adds the
   side-dependent latency and, for two-sided, the far-node copy. *)
let transfer t ~side ~purpose ~now ~bytes ~inbound ~async =
  let p = t.params in
  let wire = float_of_int bytes /. p.Params.bandwidth_bytes_per_ns in
  let start = Float.max now t.link_free_at in
  t.link_free_at <- start +. wire;
  let latency, extra =
    match side with
    | One_sided -> (p.Params.one_sided_rtt_ns, 0.0)
    | Two_sided ->
      ( p.Params.two_sided_rtt_ns,
        p.Params.remote_copy_ns_per_byte *. float_of_int bytes )
  in
  record t ~purpose ~inbound bytes;
  let issue_cpu_ns =
    if async then p.Params.async_post_ns else p.Params.msg_cpu_ns
  in
  { issue_cpu_ns; done_at = start +. wire +. latency +. extra }

let fetch t ?(async = false) ~side ~purpose ~now ~bytes () =
  transfer t ~side ~purpose ~now ~bytes ~inbound:true ~async

let push t ?(async = true) ~side ~purpose ~now ~bytes () =
  transfer t ~side ~purpose ~now ~bytes ~inbound:false ~async
