module Metrics = Mira_telemetry.Metrics
module Trace = Mira_telemetry.Trace

type side = One_sided | Two_sided
type purpose = Demand | Prefetch | Writeback | Rpc

let purpose_name = function
  | Demand -> "demand"
  | Prefetch -> "prefetch"
  | Writeback -> "writeback"
  | Rpc -> "rpc"

type xfer = { issue_cpu_ns : float; done_at : float }

type stats = {
  mutable msg_count : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable bytes_demand : int;
  mutable bytes_prefetch : int;
  mutable bytes_writeback : int;
  mutable bytes_rpc : int;
  lat_fetch : Metrics.hist;
  lat_rtt : Metrics.hist;
}

type t = { params : Params.t; mutable link_free_at : float; stats : stats }

let empty_stats () =
  {
    msg_count = 0;
    bytes_in = 0;
    bytes_out = 0;
    bytes_demand = 0;
    bytes_prefetch = 0;
    bytes_writeback = 0;
    bytes_rpc = 0;
    lat_fetch = Metrics.hist_create ();
    lat_rtt = Metrics.hist_create ();
  }

let create params = { params; link_free_at = 0.0; stats = empty_stats () }
let params t = t.params
let stats t = t.stats

let reset_stats t =
  let s = t.stats in
  s.msg_count <- 0;
  s.bytes_in <- 0;
  s.bytes_out <- 0;
  s.bytes_demand <- 0;
  s.bytes_prefetch <- 0;
  s.bytes_writeback <- 0;
  s.bytes_rpc <- 0;
  Metrics.hist_reset s.lat_fetch;
  Metrics.hist_reset s.lat_rtt

let reset_link t = t.link_free_at <- 0.0

let publish t reg =
  let s = t.stats in
  Metrics.set_counter reg "net.msg_count" s.msg_count;
  Metrics.set_counter reg "net.bytes_in" s.bytes_in;
  Metrics.set_counter reg "net.bytes_out" s.bytes_out;
  Metrics.set_counter reg "net.bytes_demand" s.bytes_demand;
  Metrics.set_counter reg "net.bytes_prefetch" s.bytes_prefetch;
  Metrics.set_counter reg "net.bytes_writeback" s.bytes_writeback;
  Metrics.set_counter reg "net.bytes_rpc" s.bytes_rpc;
  Metrics.set_hist reg "net.fetch_latency" s.lat_fetch;
  Metrics.set_hist reg "net.rtt" s.lat_rtt

let record t ~purpose ~inbound bytes =
  let s = t.stats in
  s.msg_count <- s.msg_count + 1;
  if inbound then s.bytes_in <- s.bytes_in + bytes
  else s.bytes_out <- s.bytes_out + bytes;
  match purpose with
  | Demand -> s.bytes_demand <- s.bytes_demand + bytes
  | Prefetch -> s.bytes_prefetch <- s.bytes_prefetch + bytes
  | Writeback -> s.bytes_writeback <- s.bytes_writeback + bytes
  | Rpc -> s.bytes_rpc <- s.bytes_rpc + bytes

(* Shared transfer model: the payload occupies the link for
   [bytes / bandwidth] starting when the link is free; completion adds the
   side-dependent latency and, for two-sided, the far-node copy. *)
let transfer t ~side ~purpose ~now ~bytes ~inbound ~async =
  let p = t.params in
  let wire = float_of_int bytes /. p.Params.bandwidth_bytes_per_ns in
  let start = Float.max now t.link_free_at in
  t.link_free_at <- start +. wire;
  let latency, extra =
    match side with
    | One_sided -> (p.Params.one_sided_rtt_ns, 0.0)
    | Two_sided ->
      ( p.Params.two_sided_rtt_ns,
        p.Params.remote_copy_ns_per_byte *. float_of_int bytes )
  in
  record t ~purpose ~inbound bytes;
  let issue_cpu_ns =
    if async then p.Params.async_post_ns else p.Params.msg_cpu_ns
  in
  let done_at = start +. wire +. latency +. extra in
  (* Host-side telemetry only: the latency histograms and optional trace
     span never advance any simulated clock. *)
  Metrics.hist_observe t.stats.lat_rtt (done_at -. start);
  if inbound then Metrics.hist_observe t.stats.lat_fetch (done_at -. now);
  if Trace.enabled () then
    Trace.complete ~name:(purpose_name purpose) ~cat:"net" ~lane:"net"
      ~ts_ns:now ~dur_ns:(done_at -. now)
      ~args:
        [
          ("bytes", Mira_telemetry.Json.Int bytes);
          ( "side",
            Mira_telemetry.Json.Str
              (match side with One_sided -> "one-sided" | Two_sided -> "two-sided") );
          ("inbound", Mira_telemetry.Json.Bool inbound);
          ("queue_ns", Mira_telemetry.Json.Float (start -. now));
        ]
      ();
  { issue_cpu_ns; done_at }

let fetch t ?(async = false) ~side ~purpose ~now ~bytes () =
  transfer t ~side ~purpose ~now ~bytes ~inbound:true ~async

let push t ?(async = true) ~side ~purpose ~now ~bytes () =
  transfer t ~side ~purpose ~now ~bytes ~inbound:false ~async
