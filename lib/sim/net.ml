module Metrics = Mira_telemetry.Metrics
module Trace = Mira_telemetry.Trace

type side = One_sided | Two_sided
type purpose = Demand | Prefetch | Writeback | Rpc

let purpose_name = function
  | Demand -> "demand"
  | Prefetch -> "prefetch"
  | Writeback -> "writeback"
  | Rpc -> "rpc"

module Request = struct
  type dir = Read | Write

  type t = {
    dir : dir;
    side : side;
    purpose : purpose;
    bytes : int;
    node : int;
        (* far node the transfer targets; per-node outage windows
           ([set_node_down]) only stall requests aimed at that node *)
    deadline_ns : float option;
    ctx : Trace.span_ctx option;
        (* causal origin: rides through submit/ring/post/poll/await so
           the reaped completion can be attributed to its access *)
  }

  let make ?(node = 0) ?deadline_ns ?ctx ~dir ~side ~purpose bytes =
    assert (bytes > 0);
    { dir; side; purpose; bytes; node; deadline_ns; ctx }

  let read ?node ?deadline_ns ?ctx ~side ~purpose bytes =
    make ?node ?deadline_ns ?ctx ~dir:Read ~side ~purpose bytes

  let write ?node ?deadline_ns ?ctx ~side ~purpose bytes =
    make ?node ?deadline_ns ?ctx ~dir:Write ~side ~purpose bytes
end

let ctx_trace (req : Request.t) =
  match req.Request.ctx with Some c -> c.Trace.sc_trace | None -> 0

module Fault = struct
  type t = {
    seed : int;
    drop_prob : float;
    delay_prob : float;
    delay_ns : float;
    timeout_ns : float;
    backoff_ns : float;
    max_retries : int;
  }

  let default =
    {
      seed = 1;
      drop_prob = 0.0;
      delay_prob = 0.0;
      delay_ns = 0.0;
      timeout_ns = 50_000.0;
      backoff_ns = 2_000.0;
      max_retries = 3;
    }

  (* Reject configurations that would make the retry machinery silently
     misbehave (NaN probabilities never compare true, a zero timeout
     spins, a negative backoff travels back in time). *)
  let validate f =
    let bad fmt = Printf.ksprintf invalid_arg fmt in
    let check_prob name p =
      if Float.is_nan p || p < 0.0 || p > 1.0 then
        bad "Net.Fault: %s must be a probability in [0, 1] (got %g)" name p
    in
    check_prob "drop_prob" f.drop_prob;
    check_prob "delay_prob" f.delay_prob;
    if Float.is_nan f.delay_ns || f.delay_ns < 0.0 then
      bad "Net.Fault: delay_ns must be >= 0 (got %g)" f.delay_ns;
    if Float.is_nan f.timeout_ns || f.timeout_ns <= 0.0 then
      bad "Net.Fault: timeout_ns must be > 0 (got %g)" f.timeout_ns;
    if Float.is_nan f.backoff_ns || f.backoff_ns <= 0.0 then
      bad "Net.Fault: backoff_ns must be > 0 (got %g)" f.backoff_ns;
    if f.max_retries < 0 then
      bad "Net.Fault: max_retries must be >= 0 (got %d)" f.max_retries

  (* Deterministic per-(seed, request, attempt, salt) uniform sample:
     splitmix64-style finalizer, purely functional so a fixed seed
     reproduces the exact same fault schedule on every run. *)
  let mix z =
    let open Int64 in
    let z = mul (logxor z (shift_right_logical z 33)) 0xff51afd7ed558ccdL in
    let z = mul (logxor z (shift_right_logical z 33)) 0xc4ceb9fe1a85ec53L in
    logxor z (shift_right_logical z 33)

  let u01 t ~id ~attempt ~salt =
    let open Int64 in
    let z = mix (add (of_int t.seed) 0x9E3779B97F4A7C15L) in
    let z = mix (logxor z (of_int id)) in
    let z = mix (logxor z (of_int ((attempt * 0x10001) + salt))) in
    to_float (shift_right_logical z 11) /. 9007199254740992.0
end

type dp_config = {
  window : int;
  coalesce : bool;
  coalesce_limit : int;
  fault : Fault.t option;
}

let dp_default = { window = 0; coalesce = false; coalesce_limit = 16; fault = None }

type status = Done | Timed_out | Node_down

type completion = {
  id : int;
  req : Request.t;
  submitted_at : float;
  posted_at : float;
  done_at : float;
  attempts : int;
  status : status;
  coalesced : bool;
  wire_ns : float;  (* successful attempt's wire + propagation time *)
  queue_ns : float;  (* batching + window gating + link queueing *)
  retry_ns : float;  (* loss-detection timeouts + retransmit backoff *)
  holders : (int * int) list;
      (* (tenant, in-flight slots) held when this post found the window
         full — the tenants the queue stall is charged against in the
         interference matrix; empty when the window never gated *)
}

type sqe = { id : int; issue_cpu_ns : float }

let status_name = function
  | Done -> "done"
  | Timed_out -> "timed_out"
  | Node_down -> "node_down"

(* One per-member causal span, emitted when the completion's final
   timing is known: at reap time (poll/await) for reapable requests —
   after any [fail_inflight] retargeting — and at post time for
   detached ones.  The span covers submitted_at..done_at on the net
   lane; a flow arrow links it back to the requesting span's lane.
   Synchronous requests nest under the requester ([parent]); [sc_flow]
   contexts (prefetch, detached writeback) are flow-linked only so the
   parent-containment invariant stays strict. *)
let emit_member_span (c : completion) =
  if Trace.enabled () then
    match c.req.Request.ctx with
    | None -> ()
    | Some ctx ->
      let module J = Mira_telemetry.Json in
      let span = Trace.new_span () in
      let parent = if ctx.Trace.sc_flow then 0 else ctx.Trace.sc_span in
      let name = purpose_name c.req.Request.purpose in
      let trace = ctx.Trace.sc_trace in
      let args =
        [
          ("bytes", J.Int c.req.Request.bytes);
          ("status", J.Str (status_name c.status));
          ("attempts", J.Int c.attempts);
          ("coalesced", J.Bool c.coalesced);
          ("queue_ns", J.Float c.queue_ns);
          ("wire_ns", J.Float c.wire_ns);
          ("retry_ns", J.Float c.retry_ns);
        ]
      in
      Trace.flow_start ~name ~cat:"net" ~lane:ctx.Trace.sc_lane
        ~ts_ns:c.submitted_at ~trace ~id:span ();
      Trace.begin_span ~name ~cat:"net" ~lane:"net" ~ts_ns:c.submitted_at
        ~trace ~span ~parent ~args ();
      Trace.flow_end ~name ~cat:"net" ~lane:"net" ~ts_ns:c.submitted_at ~trace
        ~id:span ();
      Trace.end_span ~name ~cat:"net" ~lane:"net" ~ts_ns:c.done_at ~trace ~span
        ()

type stats = {
  mutable msg_count : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable bytes_demand : int;
  mutable bytes_prefetch : int;
  mutable bytes_writeback : int;
  mutable bytes_rpc : int;
  mutable doorbells : int;
  mutable coalesced : int;
  mutable retries : int;
  mutable timeouts : int;
  mutable node_down : int;
  lat_fetch : Metrics.hist;
  lat_rtt : Metrics.hist;
  lat_attempt : Metrics.hist;
  occupancy : Metrics.hist;
}

(* One un-rung doorbell batch: same-kind submissions buffered in
   submission order (members kept newest-first). *)
type batch = {
  key : Request.dir * side * purpose * int;  (* ... * target node *)
  mutable members : (int * Request.t * float * bool * int) list;
      (* id, request, submitted_at, detached, submitting tenant *)
}

module Heap = Mira_util.Min_heap

(* Heap orderings.  [le_done]/[le_gate] tolerate ties (tie order is
   irrelevant: retirement, counting and fencing are set operations);
   the completion index is made strict by the unique id so [poll]'s
   reap order is exactly the old [(done_at, id)] sort. *)
let le_done (a, _, _) (b, _, _) = (a : float) <= b
let le_gate (a : float) b = a <= b

let le_cq (d1, i1) (d2, i2) =
  (d1 : float) < d2 || (d1 = d2 && (i1 : int) <= i2)

(* --- tenant interference matrix ------------------------------------------ *)

(* Who made whom wait on the in-flight window.  Every [Queueing]
   nanosecond the attribution ledger charges to a tenant is forwarded
   here (via the ledger's queue sink) in the ledger's own fixed point,
   split pro-rata across the tenants that held window slots when the
   stalled request was posted.  Because the split is exact in int64 —
   remainder to the last holder — and a chargeback with no recorded
   holders self-charges, each waiter row sums to exactly that tenant's
   queue-stall ledger bucket, by construction rather than by sampling. *)
module Interference = struct
  type t = {
    cells : (int * int, int64 ref) Hashtbl.t;  (* (waiter, holder) -> fp *)
    row_totals : (int, int64 ref) Hashtbl.t;  (* waiter -> fp *)
  }

  let create () = { cells = Hashtbl.create 16; row_totals = Hashtbl.create 8 }

  let bump tbl key fp =
    match Hashtbl.find_opt tbl key with
    | Some cell -> cell := Int64.add !cell fp
    | None -> Hashtbl.replace tbl key (ref fp)

  (* Charge [fp] (ledger fixed point, > 0) of tenant [tenant]'s queue
     stall against [holders] = [(tenant, slots)] pairs.  Pro-rata by
     slot count with the division remainder going to the last holder in
     the given (tenant-sorted) order; no holders = a self-charge (link
     backlog or doorbell batching, not window contention). *)
  let record t ~tenant ~holders fp =
    if fp > 0L then begin
      bump t.row_totals tenant fp;
      match holders with
      | [] -> bump t.cells (tenant, tenant) fp
      | holders ->
        let slots =
          List.fold_left (fun a (_, n) -> a + n) 0 holders |> Int64.of_int
        in
        let rec go spent = function
          | [] -> ()
          | [ (h, _) ] -> bump t.cells (tenant, h) (Int64.sub fp spent)
          | (h, n) :: rest ->
            let share = Int64.div (Int64.mul fp (Int64.of_int n)) slots in
            bump t.cells (tenant, h) share;
            go (Int64.add spent share) rest
        in
        go 0L holders
    end

  let row_fp t ~tenant =
    match Hashtbl.find_opt t.row_totals tenant with Some r -> !r | None -> 0L

  let rows t =
    Hashtbl.fold (fun w r acc -> (w, !r) :: acc) t.row_totals []
    |> List.sort compare

  let cells t =
    Hashtbl.fold (fun (w, h) r acc -> (w, h, !r) :: acc) t.cells []
    |> List.sort compare

  let reset t =
    Hashtbl.reset t.cells;
    Hashtbl.reset t.row_totals

  let tenant_label tn = if tn < 0 then "-" else Printf.sprintf "t%d" tn

  let to_json t =
    let module J = Mira_telemetry.Json in
    J.Obj
      (List.map
         (fun (w, row) ->
           let row_cells =
             List.filter_map
               (fun (w', h, fp) ->
                 if w' = w then
                   Some (tenant_label h, J.Str (Int64.to_string fp))
                 else None)
               (cells t)
           in
           ( tenant_label w,
             J.Obj
               (("total_fp", J.Str (Int64.to_string row)) :: row_cells) ))
         (rows t))
end

type t = {
  params : Params.t;
  mutable dp : dp_config;
  mutable link_free_at : float;
  mutable next_id : int;
  inflight : (float * Request.dir * int) Heap.t;
      (* (done_at, dir, tenant) of every posted message not yet
         known-complete, min-keyed by done_at so retirement pops
         instead of filtering; the tenant stamp feeds window-holder
         snapshots for the interference matrix *)
  window_q : float Heap.t;
      (* the largest min(n, window) in-flight done_ats (maintained only
         when a window is configured).  Invariant: every in-flight
         done_at outside this heap is <= its minimum, so the window
         gate is its O(1) peek — see gate_time *)
  cq_tbl : (int, completion) Hashtbl.t;
      (* unreaped completions by id (authoritative; await is O(1)) *)
  cq_idx : (float * int) Heap.t;
      (* reap index over cq_tbl keyed (done_at, id); entries whose id
         has been reaped by [await] are stale and skipped by [poll] *)
  mutable pending : batch option;
  mutable down_until : float;
      (* far node unreachable until this instant: messages posted before
         it fail with [Node_down] after the loss-detection timer *)
  node_down_until : (int, float) Hashtbl.t;
      (* per-node outage windows: only requests targeting that node
         stall; the global [down_until] applies to every request *)
  stats : stats;
  mutable cur_tenant : int;
      (* tenant on whose behalf the next submit runs (-1 = unbound);
         ambient state saved/restored across task parks via the
         scheduler's TLS hooks *)
  interference : Interference.t;
}

let empty_stats () =
  {
    msg_count = 0;
    bytes_in = 0;
    bytes_out = 0;
    bytes_demand = 0;
    bytes_prefetch = 0;
    bytes_writeback = 0;
    bytes_rpc = 0;
    doorbells = 0;
    coalesced = 0;
    retries = 0;
    timeouts = 0;
    node_down = 0;
    lat_fetch = Metrics.hist_create ();
    lat_rtt = Metrics.hist_create ();
    lat_attempt = Metrics.hist_create ();
    occupancy = Metrics.hist_create ();
  }

let create ?(dp = dp_default) params =
  (match dp.fault with Some f -> Fault.validate f | None -> ());
  {
    params;
    dp;
    link_free_at = 0.0;
    next_id = 0;
    inflight = Heap.create ~le:le_done;
    window_q = Heap.create ~le:le_gate;
    cq_tbl = Hashtbl.create 64;
    cq_idx = Heap.create ~le:le_cq;
    pending = None;
    down_until = 0.0;
    node_down_until = Hashtbl.create 8;
    stats = empty_stats ();
    cur_tenant = -1;
    interference = Interference.create ();
  }

let params t = t.params
let stats t = t.stats
let dataplane t = t.dp
let set_tenant t tenant = t.cur_tenant <- tenant
let tenant t = t.cur_tenant
let interference t = t.interference

let record_interference t ~tenant ~holders fp =
  Interference.record t.interference ~tenant ~holders fp

(* Rebuild [window_q] as the largest min(n, window) in-flight done_ats
   (bounded-heap selection: push, then drop the minimum on overflow).
   Needed whenever [window] changes out from under live traffic. *)
let rebuild_window t =
  Heap.clear t.window_q;
  let w = t.dp.window in
  if w > 0 then
    Heap.iter
      (fun (d, _, _) ->
        Heap.push t.window_q d;
        if Heap.length t.window_q > w then ignore (Heap.pop t.window_q))
      t.inflight

let set_dataplane t dp =
  (match dp.fault with Some f -> Fault.validate f | None -> ());
  t.dp <- dp;
  rebuild_window t

let reset_stats t =
  let s = t.stats in
  s.msg_count <- 0;
  s.bytes_in <- 0;
  s.bytes_out <- 0;
  s.bytes_demand <- 0;
  s.bytes_prefetch <- 0;
  s.bytes_writeback <- 0;
  s.bytes_rpc <- 0;
  s.doorbells <- 0;
  s.coalesced <- 0;
  s.retries <- 0;
  s.timeouts <- 0;
  s.node_down <- 0;
  Metrics.hist_reset s.lat_fetch;
  Metrics.hist_reset s.lat_rtt;
  Metrics.hist_reset s.lat_attempt;
  Metrics.hist_reset s.occupancy;
  Interference.reset t.interference;
  t.cur_tenant <- -1

let reset_link t =
  t.link_free_at <- 0.0;
  t.next_id <- 0;
  Heap.clear t.inflight;
  Heap.clear t.window_q;
  Hashtbl.reset t.cq_tbl;
  Heap.clear t.cq_idx;
  t.pending <- None;
  t.down_until <- 0.0;
  Hashtbl.reset t.node_down_until

let publish t reg =
  let s = t.stats in
  Metrics.set_counter reg "net.msg_count" s.msg_count;
  Metrics.set_counter reg "net.bytes_in" s.bytes_in;
  Metrics.set_counter reg "net.bytes_out" s.bytes_out;
  Metrics.set_counter reg "net.bytes_demand" s.bytes_demand;
  Metrics.set_counter reg "net.bytes_prefetch" s.bytes_prefetch;
  Metrics.set_counter reg "net.bytes_writeback" s.bytes_writeback;
  Metrics.set_counter reg "net.bytes_rpc" s.bytes_rpc;
  Metrics.set_counter reg "net.doorbells" s.doorbells;
  Metrics.set_counter reg "net.coalesced" s.coalesced;
  Metrics.set_counter reg "net.retries" s.retries;
  Metrics.set_counter reg "net.timeouts" s.timeouts;
  Metrics.set_counter reg "net.node_down" s.node_down;
  Metrics.set_hist reg "net.fetch_latency" s.lat_fetch;
  Metrics.set_hist reg "net.rtt" s.lat_rtt;
  Metrics.set_hist reg "net.attempt_latency" s.lat_attempt;
  Metrics.set_hist reg "net.inflight" s.occupancy

let record t ~purpose ~inbound bytes =
  let s = t.stats in
  s.msg_count <- s.msg_count + 1;
  if inbound then s.bytes_in <- s.bytes_in + bytes
  else s.bytes_out <- s.bytes_out + bytes;
  match purpose with
  | Demand -> s.bytes_demand <- s.bytes_demand + bytes
  | Prefetch -> s.bytes_prefetch <- s.bytes_prefetch + bytes
  | Writeback -> s.bytes_writeback <- s.bytes_writeback + bytes
  | Rpc -> s.bytes_rpc <- s.bytes_rpc + bytes

(* --- in-flight window ---------------------------------------------------- *)

(* Drop every in-flight entry that has landed by [now] — O(log n) per
   retired entry instead of rebuilding a list.  [window_q] stays the
   top-min(n, window) of what remains: if it loses any member here,
   that member was its minimum's side of [now], and every done_at
   outside [window_q] is <= that minimum, so those are all retired by
   the same call. *)
let retire t ~now =
  let rec drop () =
    match Heap.peek t.inflight with
    | Some (d, _, _) when d <= now ->
      ignore (Heap.pop t.inflight);
      drop ()
    | _ -> ()
  in
  drop ();
  let rec drop_gate () =
    match Heap.peek t.window_q with
    | Some d when d <= now ->
      ignore (Heap.pop t.window_q);
      drop_gate ()
    | _ -> ()
  in
  drop_gate ()

(* Non-destructive by design: tests and telemetry probe arbitrary
   (including past) instants, so this counts rather than retires. *)
let in_flight t ~now =
  Heap.fold (fun n (d, _, _) -> if d > now then n + 1 else n) 0 t.inflight

(* Who holds window slots right now: the in-flight population grouped
   as tenant-sorted [(tenant, slots)] pairs.  Callers retire first, so
   every heap entry is live. *)
let holders_snapshot t =
  let counts = Hashtbl.create 8 in
  Heap.iter
    (fun (_, _, tn) ->
      Hashtbl.replace counts tn
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts tn)))
    t.inflight;
  Hashtbl.fold (fun tn n acc -> (tn, n) :: acc) counts [] |> List.sort compare

(* Track a newly posted message.  The bounded push keeps [window_q] the
   largest min(n, window) live done_ats, so the admission gate below
   never sorts. *)
let add_inflight t ~done_at ~dir ~tenant =
  Heap.push t.inflight (done_at, dir, tenant);
  let w = t.dp.window in
  if w > 0 then begin
    Heap.push t.window_q done_at;
    if Heap.length t.window_q > w then ignore (Heap.pop t.window_q)
  end

(* Earliest time a new message may start when the window is full: the
   moment the in-flight population drops below [window] — i.e. the
   window-th largest live done_at, which is exactly [window_q]'s O(1)
   peek.  Callers retire first, so everything in the heap is live. *)
let gate_time t ~now =
  let w = t.dp.window in
  if w <= 0 || Heap.length t.window_q < w then now
  else match Heap.peek t.window_q with Some d -> d | None -> now

let enqueue_completion t (c : completion) =
  Hashtbl.replace t.cq_tbl c.id c;
  Heap.push t.cq_idx (c.done_at, c.id)

(* --- posting ------------------------------------------------------------- *)

(* One wire attempt of a whole message: occupies the link for the
   payload's serialization time (even if the message is then lost). *)
let wire_attempt t ~start ~bytes ~side ~purpose ~inbound =
  let p = t.params in
  let wire = float_of_int bytes /. p.Params.bandwidth_bytes_per_ns in
  let s = Float.max start t.link_free_at in
  t.link_free_at <- s +. wire;
  let latency, extra =
    match side with
    | One_sided -> (p.Params.one_sided_rtt_ns, 0.0)
    | Two_sided ->
      ( p.Params.two_sided_rtt_ns,
        p.Params.remote_copy_ns_per_byte *. float_of_int bytes )
  in
  record t ~purpose ~inbound bytes;
  (s, s +. wire +. latency +. extra)

(* Run the (possibly retried) attempt sequence for one posted message.
   Returns (first wire start, final done_at/detect time, attempts,
   status, wire_ns, retry_ns): [wire_ns] is the successful attempt's
   start-to-done span (0 on timeout), [retry_ns] the accumulated
   loss-detection windows and retransmission backoffs of failed
   attempts — the pieces the attribution ledger charges per cause. *)
let run_attempts t ~id ~posted_at ~bytes ~side ~purpose ~inbound ~deadline =
  let s = t.stats in
  match t.dp.fault with
  | None ->
    let start, done_at =
      wire_attempt t ~start:posted_at ~bytes ~side ~purpose ~inbound
    in
    Metrics.hist_observe s.lat_attempt (done_at -. posted_at);
    (start, done_at, 1, Done, done_at -. start, 0.0)
  | Some f ->
    let timeout = match deadline with Some d -> d | None -> f.Fault.timeout_ns in
    let rec go ~issue_at ~attempt ~first_start ~retry_ns =
      let start, done_at =
        wire_attempt t ~start:issue_at ~bytes ~side ~purpose ~inbound
      in
      let first_start =
        match first_start with Some v -> Some v | None -> Some start
      in
      let dropped = Fault.u01 f ~id ~attempt ~salt:1 < f.Fault.drop_prob in
      if not dropped then begin
        let delay =
          if
            f.Fault.delay_prob > 0.0
            && Fault.u01 f ~id ~attempt ~salt:2 < f.Fault.delay_prob
          then f.Fault.delay_ns
          else 0.0
        in
        let done_at = done_at +. delay in
        Metrics.hist_observe s.lat_attempt (done_at -. issue_at);
        (Option.get first_start, done_at, attempt, Done, done_at -. start, retry_ns)
      end
      else begin
        Metrics.hist_observe s.lat_attempt timeout;
        let detect = issue_at +. timeout in
        if attempt > f.Fault.max_retries then begin
          s.timeouts <- s.timeouts + 1;
          (Option.get first_start, detect, attempt, Timed_out, 0.0,
           retry_ns +. timeout)
        end
        else begin
          s.retries <- s.retries + 1;
          let backoff =
            f.Fault.backoff_ns *. (2.0 ** float_of_int (attempt - 1))
          in
          go ~issue_at:(detect +. backoff) ~attempt:(attempt + 1) ~first_start
            ~retry_ns:(retry_ns +. timeout +. backoff)
        end
      end
    in
    go ~issue_at:posted_at ~attempt:1 ~first_start:None ~retry_ns:0.0

(* The loss-detection latency for a message sent into a dead node: the
   requester's timer when faults are configured, one round trip
   otherwise. *)
let detect_ns t =
  match t.dp.fault with
  | Some f -> f.Fault.timeout_ns
  | None -> t.params.Params.one_sided_rtt_ns

(* Post one message (a single request, or a coalesced batch given in
   submission order) at time [now]. *)
let post t ~now members =
  let members = List.rev members in
  let (id0, (r0 : Request.t), _, _, t0) = List.hd members in
  let n = List.length members in
  let bytes = List.fold_left (fun a (_, (r : Request.t), _, _, _) -> a + r.Request.bytes) 0 members in
  let inbound = r0.Request.dir = Request.Read in
  retire t ~now;
  let gate = gate_time t ~now in
  let issue_at = Float.max now gate in
  (* Snapshot the window holders only when the window actually gated
     this post — these tenants are who the resulting queue stall gets
     charged against in the interference matrix. *)
  let holders =
    if t.dp.window > 0 && gate > now then holders_snapshot t else []
  in
  let down_until =
    Float.max t.down_until
      (match Hashtbl.find_opt t.node_down_until r0.Request.node with
      | Some u -> u
      | None -> 0.0)
  in
  if issue_at < down_until then begin
    (* Far node down with no failover target: the message never touches
       the wire; the requester detects the failure after its loss
       timer.  Not a [Timed_out] — nothing was dropped, the node is
       gone — and no bytes are accounted. *)
    let done_at = issue_at +. detect_ns t in
    add_inflight t ~done_at ~dir:r0.Request.dir ~tenant:t0;
    let s = t.stats in
    s.doorbells <- s.doorbells + 1;
    s.node_down <- s.node_down + n;
    if Trace.enabled () then
      Trace.complete ~name:(purpose_name r0.Request.purpose) ~cat:"net"
        ~lane:"net" ~ts_ns:now ~dur_ns:(done_at -. now)
        ~args:[ ("node_down", Mira_telemetry.Json.Bool true);
                ("bytes", Mira_telemetry.Json.Int bytes) ]
        ();
    List.iter
      (fun (id, req, submitted_at, detached, _) ->
        (* Outage: no wire time; the loss-detection timer is charged
           as retry, time buffered before the post as queueing. *)
        let c =
          { id; req; submitted_at; posted_at = now; done_at; attempts = 1;
            status = Node_down; coalesced = n > 1;
            wire_ns = 0.0; retry_ns = detect_ns t;
            queue_ns = Float.max 0.0 (issue_at -. submitted_at);
            holders }
        in
        if detached then emit_member_span c else enqueue_completion t c)
      members
  end
  else begin
  let start, done_at, attempts, status, wire_ns, retry_ns =
    run_attempts t ~id:id0 ~posted_at:issue_at ~bytes ~side:r0.Request.side
      ~purpose:r0.Request.purpose ~inbound ~deadline:r0.Request.deadline_ns
  in
  add_inflight t ~done_at ~dir:r0.Request.dir ~tenant:t0;
  let s = t.stats in
  s.doorbells <- s.doorbells + 1;
  if n > 1 then s.coalesced <- s.coalesced + (n - 1);
  Metrics.hist_observe s.occupancy (float_of_int (Heap.length t.inflight));
  if status = Done then Metrics.hist_observe s.lat_rtt (done_at -. start);
  if inbound && status = Done then
    Metrics.hist_observe ~trace:(ctx_trace r0) s.lat_fetch (done_at -. now);
  (* Host-side telemetry only: histograms and the optional trace span
     never advance any simulated clock. *)
  if Trace.enabled () then begin
    let base_args =
      [
        ("bytes", Mira_telemetry.Json.Int bytes);
        ( "side",
          Mira_telemetry.Json.Str
            (match r0.Request.side with
            | One_sided -> "one-sided"
            | Two_sided -> "two-sided") );
        ("inbound", Mira_telemetry.Json.Bool inbound);
        ("queue_ns", Mira_telemetry.Json.Float (start -. now));
      ]
    in
    let extra_args =
      (if n > 1 then [ ("coalesced", Mira_telemetry.Json.Int n) ] else [])
      @ (if attempts > 1 then [ ("attempts", Mira_telemetry.Json.Int attempts) ]
         else [])
      @
      if status = Timed_out then [ ("timed_out", Mira_telemetry.Json.Bool true) ]
      else []
    in
    Trace.complete ~name:(purpose_name r0.Request.purpose) ~cat:"net" ~lane:"net"
      ~ts_ns:now ~dur_ns:(done_at -. now) ~args:(base_args @ extra_args) ()
  end;
  List.iter
    (fun (id, req, submitted_at, detached, _) ->
      (* Telescoping: done_at - submitted_at = queueing (doorbell
         batching + window gating + link backlog) + retry windows +
         the successful attempt's wire span, so the queueing residual
         is exact per member. *)
      let c =
        {
          id;
          req;
          submitted_at;
          posted_at = now;
          done_at;
          attempts;
          status;
          coalesced = n > 1;
          wire_ns;
          retry_ns;
          queue_ns =
            Float.max 0.0 (done_at -. submitted_at -. wire_ns -. retry_ns);
          holders;
        }
      in
      if detached then emit_member_span c else enqueue_completion t c)
    members
  end

let ring t ~now =
  match t.pending with
  | None -> ()
  | Some b ->
    t.pending <- None;
    post t ~now b.members

let submit t ~now ?(urgent = false) ?(detached = false) (req : Request.t) =
  let id = t.next_id in
  t.next_id <- id + 1;
  let tn = t.cur_tenant in
  let p = t.params in
  if urgent then begin
    ring t ~now;
    post t ~now [ (id, req, now, detached, tn) ];
    { id; issue_cpu_ns = p.Params.msg_cpu_ns }
  end
  else if not t.dp.coalesce then begin
    ring t ~now;
    post t ~now [ (id, req, now, detached, tn) ];
    { id; issue_cpu_ns = p.Params.async_post_ns }
  end
  else begin
    let key =
      (req.Request.dir, req.Request.side, req.Request.purpose, req.Request.node)
    in
    match t.pending with
    | Some b when b.key = key && List.length b.members < t.dp.coalesce_limit ->
      b.members <- (id, req, now, detached, tn) :: b.members;
      { id; issue_cpu_ns = 0.0 }
    | Some _ ->
      ring t ~now;
      t.pending <- Some { key; members = [ (id, req, now, detached, tn) ] };
      { id; issue_cpu_ns = p.Params.async_post_ns }
    | None ->
      t.pending <- Some { key; members = [ (id, req, now, detached, tn) ] };
      { id; issue_cpu_ns = p.Params.async_post_ns }
  end

(* --- completion queue ---------------------------------------------------- *)

(* The reap index pops in (done_at, id) order — the exact order the old
   partition+sort produced.  Entries whose id is gone from the table
   were reaped by [await]; they are skipped and discarded here. *)
let poll t ~now =
  ring t ~now;
  let rec drain acc =
    match Heap.peek t.cq_idx with
    | Some (d, id) when d <= now -> (
      ignore (Heap.pop t.cq_idx);
      match Hashtbl.find_opt t.cq_tbl id with
      | Some c ->
        Hashtbl.remove t.cq_tbl id;
        drain (c :: acc)
      | None -> drain acc)
    | _ -> List.rev acc
  in
  let ready = drain [] in
  List.iter emit_member_span ready;
  ready

let await t ~now ~id =
  ring t ~now;
  match Hashtbl.find_opt t.cq_tbl id with
  | Some c ->
    Hashtbl.remove t.cq_tbl id;
    (* The (done_at, id) index entry goes stale; poll skips it. *)
    emit_member_span c;
    c
  | None -> invalid_arg "Net.await: unknown or detached request id"

let fence ?dir t ~now =
  ring t ~now;
  Heap.fold
    (fun acc (done_at, d, _) ->
      match dir with
      | Some want when d <> want -> acc
      | _ -> Float.max acc done_at)
    now t.inflight

(* --- node failures -------------------------------------------------------- *)

(* The far node crashed at [now]: every transfer still in flight is
   gone.  Unreaped completions that had not landed yet become
   [Node_down] immediately (failure detection is the crash notification
   itself — the cluster's epoch bump — not a per-request timer), the
   in-flight window drains, and the wire is idle again.  Returns the
   number of reapable requests failed. *)
let fail_inflight t ~now =
  ring t ~now;
  let retargeted =
    Hashtbl.fold
      (fun _ (c : completion) acc ->
        if c.done_at > now && c.status = Done then c :: acc else acc)
      t.cq_tbl []
    (* newest-first: the order the old completion list was walked in,
       so the retarget instants land in the trace identically *)
    |> List.sort (fun (a : completion) (b : completion) -> Int.compare b.id a.id)
  in
  List.iter
    (fun (c : completion) ->
      (* The member span itself is emitted at reap time and will
         show the retargeted done_at; the instant marks where the
         epoch bump cut it short. *)
      if Trace.enabled () then
        Trace.instant ~name:"retarget" ~cat:"net" ~lane:"net" ~ts_ns:now
          ~args:
            [
              ("id", Mira_telemetry.Json.Int c.id);
              ("trace", Mira_telemetry.Json.Int (ctx_trace c.req));
            ]
          ();
      Hashtbl.replace t.cq_tbl c.id { c with status = Node_down; done_at = now })
    retargeted;
  let failed = List.length retargeted in
  if failed > 0 then begin
    (* Retargeting moved done_at keys: rebuild the reap index (rare
       crash path; poll order must follow the new keys). *)
    Heap.clear t.cq_idx;
    Hashtbl.iter (fun id (c : completion) -> Heap.push t.cq_idx (c.done_at, id)) t.cq_tbl
  end;
  (* Clamping down to [now] is monotone, so both heaps keep their
     invariants in place — no re-heapify. *)
  Heap.map_monotone
    (fun (d, dir, tn) -> ((if d > now then now else d), dir, tn))
    t.inflight;
  Heap.map_monotone (fun d -> if d > now then now else d) t.window_q;
  if t.link_free_at > now then t.link_free_at <- now;
  t.stats.node_down <- t.stats.node_down + failed;
  failed

(* Declare the far node unreachable until [until]: messages posted
   before that instant complete as [Node_down] after the loss-detection
   timer instead of transferring.  Used for degraded outages where no
   failover target exists. *)
let set_down t ~until = t.down_until <- Float.max t.down_until until

(* Declare a single far node unreachable until [until]: only messages
   targeting it ([Request.node]) stall; traffic to live nodes flows. *)
let set_node_down t ~node ~until =
  let cur =
    match Hashtbl.find_opt t.node_down_until node with
    | Some u -> u
    | None -> 0.0
  in
  Hashtbl.replace t.node_down_until node (Float.max cur until)

