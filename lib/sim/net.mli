(** Analytical RDMA-like network between the compute node and the
    far-memory node, redesigned as an {e asynchronous data plane}.

    Callers build typed requests ([Request.t]), post them to a
    submission queue ([submit]), and reap typed completions from a
    completion queue ([poll] / [await]).  The data plane adds three
    orthogonal mechanisms on top of the original analytical link model:

    - a {b bounded in-flight window}: at most [window] transfers may be
      outstanding at any simulated instant; excess requests wait for a
      completion slot before they touch the wire (window [0] =
      unbounded, the legacy behaviour);
    - {b doorbell batching}: with [coalesce] on, adjacent
      same-direction/side/purpose submissions merge into one posted
      message (a single doorbell ring, a single round trip carrying the
      combined payload) — subsequent members of a batch cost zero local
      CPU to post;
    - {b fault injection}: a seeded, deterministic drop/delay model
      with per-request timeouts, bounded retries and exponential
      backoff, so transfers degrade gracefully (and observably) instead
      of hanging the simulation.

    The timing model underneath is unchanged: a fixed round-trip
    latency per message, payload serialization on a shared link of
    finite bandwidth (concurrent transfers overlap latency but queue on
    the wire), and local CPU time per posted doorbell.  Two-sided
    messages pay a higher base latency plus a per-byte far-node copy
    but may carry exactly the bytes requested.

    With the default configuration ([dp_default]: unbounded window, no
    coalescing, no faults) the data plane is bit-identical to the
    original blocking fetch/push model.  The synchronous veneers that
    survived the redesign as a transition aid are gone: every caller —
    the cache sections, the swap section, [Rpc], the baselines, the
    tests — posts typed requests with [submit] and reaps completions
    with [await]/[poll].  A blocking read is simply
    [submit ~urgent:true] + [await] + a clock wait until [done_at]. *)

type side = One_sided | Two_sided

type purpose = Demand | Prefetch | Writeback | Rpc
(** Why the transfer happened; kept per-purpose in the statistics so
    the amplification and traffic figures can be produced. *)

val purpose_name : purpose -> string

(** {1 Requests} *)

module Request : sig
  type dir = Read | Write  (** [Read] = far->local, [Write] = local->far *)

  type t = {
    dir : dir;
    side : side;
    purpose : purpose;
    bytes : int;
    node : int;
        (** far node the transfer targets (default 0); per-node outage
            windows ([set_node_down]) only stall requests aimed at that
            node, and batching never coalesces across nodes *)
    deadline_ns : float option;
        (** per-request loss-detection timer; [None] uses the fault
            model's [timeout_ns].  Ignored when no faults are
            configured. *)
    ctx : Mira_telemetry.Trace.span_ctx option;
        (** causal span context of the access that issued the request;
            rides through submit/ring/post/poll/await (including
            retries, coalescing and [fail_inflight] retargeting) so the
            reaped completion emits a member span tied to its trace.
            [None] (the default) emits nothing. *)
  }

  val read :
    ?node:int -> ?deadline_ns:float -> ?ctx:Mira_telemetry.Trace.span_ctx ->
    side:side -> purpose:purpose -> int -> t
  (** [read ~side ~purpose bytes] — an inbound transfer request. *)

  val write :
    ?node:int -> ?deadline_ns:float -> ?ctx:Mira_telemetry.Trace.span_ctx ->
    side:side -> purpose:purpose -> int -> t
  (** [write ~side ~purpose bytes] — an outbound transfer request. *)
end

(** {1 Fault injection} *)

module Fault : sig
  type t = {
    seed : int;  (** RNG seed; same seed => same drops/delays *)
    drop_prob : float;  (** probability an attempt is lost on the wire *)
    delay_prob : float;  (** probability a surviving attempt is delayed *)
    delay_ns : float;  (** extra latency charged when delayed *)
    timeout_ns : float;  (** default loss-detection timer per attempt *)
    backoff_ns : float;
        (** base retry backoff; attempt [k] (1-based) waits
            [backoff_ns * 2^(k-1)] after its timeout fires *)
    max_retries : int;  (** retries after the first attempt *)
  }

  val default : t
  (** No drops or delays, but sane timeout/backoff/retry settings to
      tweak from ([timeout_ns = 50_000], [backoff_ns = 2_000],
      [max_retries = 3]). *)

  val validate : t -> unit
  (** Raises [Invalid_argument] with a descriptive message when the
      configuration is unusable: NaN or out-of-range probabilities,
      negative [delay_ns], non-positive [timeout_ns]/[backoff_ns], or
      [max_retries < 0].  Called by [create] and [set_dataplane]. *)
end

type dp_config = {
  window : int;  (** max in-flight posted messages; [0] = unbounded *)
  coalesce : bool;  (** doorbell batching of adjacent submissions *)
  coalesce_limit : int;  (** max requests merged into one message *)
  fault : Fault.t option;  (** [None] = perfectly reliable link *)
}

val dp_default : dp_config
(** Unbounded window, no coalescing, no faults: bit-identical to the
    pre-dataplane synchronous model. *)

(** {1 Completions} *)

type status =
  | Done  (** data transferred (possibly after retries) *)
  | Timed_out
      (** dropped on every attempt; the requester gave up cleanly after
          [max_retries] retries.  [done_at] is the final detection
          time. *)
  | Node_down
      (** the far node crashed: the request was in flight when the node
          died ([fail_inflight]) or was posted during a declared outage
          ([set_down]).  Never conflated with [Timed_out] — a timeout
          is a lossy link with a live node; [Node_down] is a dead
          node.  [done_at] is the failure-detection time. *)

type completion = {
  id : int;
  req : Request.t;
  submitted_at : float;  (** when [submit] accepted the request *)
  posted_at : float;  (** when its doorbell rang (>= submitted_at) *)
  done_at : float;  (** completion (or final failure-detection) time *)
  attempts : int;  (** 1 + retries actually performed *)
  status : status;
  coalesced : bool;  (** rode a shared doorbell with other requests *)
  wire_ns : float;
      (** the successful attempt's start-to-done span (wire occupancy +
          propagation + any fault-injected delay); [0] on failure *)
  queue_ns : float;
      (** time queued before the successful attempt: doorbell
          batching, in-flight window gating, and link backlog *)
  retry_ns : float;
      (** loss-detection timeouts plus retransmission backoff of
          failed attempts.  The three parts telescope exactly:
          [wire_ns + queue_ns + retry_ns = done_at - submitted_at]
          (for [Node_down], [retry_ns] is the detection timer). *)
  holders : (int * int) list;
      (** [(tenant, in-flight slots)] held when this post found the
          in-flight window full, tenant-sorted; empty when the window
          never gated the post.  The queue stall observed at the await
          site is charged pro-rata against these tenants in the
          {!Interference} matrix. *)
}

type sqe = {
  id : int;  (** completion-queue key for [await] *)
  issue_cpu_ns : float;
      (** local CPU consumed posting (0 when merged into an already-open
          batch; the caller advances its clock by this) *)
}

(** {1 Statistics} *)

type stats = {
  mutable msg_count : int;  (** posted wire messages (incl. retries) *)
  mutable bytes_in : int;  (** far -> local *)
  mutable bytes_out : int;  (** local -> far *)
  mutable bytes_demand : int;
  mutable bytes_prefetch : int;
  mutable bytes_writeback : int;
  mutable bytes_rpc : int;
  mutable doorbells : int;  (** doorbell rings (coalesced batches = 1) *)
  mutable coalesced : int;  (** requests that rode a shared doorbell *)
  mutable retries : int;  (** retransmissions after a detected loss *)
  mutable timeouts : int;  (** requests failed after bounded retries *)
  mutable node_down : int;  (** requests failed by a far-node crash
                                (never counted as timeouts) *)
  lat_fetch : Mira_telemetry.Metrics.hist;
      (** caller-observed latency (incl. link queueing and retries) of
          inbound transfers *)
  lat_rtt : Mira_telemetry.Metrics.hist;
      (** pure wire+latency round trip, excl. queueing, all transfers *)
  lat_attempt : Mira_telemetry.Metrics.hist;
      (** per-attempt latency (timeouts contribute the timer value) *)
  occupancy : Mira_telemetry.Metrics.hist;
      (** in-flight window occupancy sampled at each doorbell *)
}

type t

val create : ?dp:dp_config -> Params.t -> t
val params : t -> Params.t
val stats : t -> stats
val reset_stats : t -> unit

val dataplane : t -> dp_config
val set_dataplane : t -> dp_config -> unit
(** Reconfigure window/batching/faults.  Takes effect for subsequent
    submissions; callers normally set this once before a run. *)

val publish : t -> Mira_telemetry.Metrics.t -> unit
(** Export counters and latency histograms under [net.*] (including
    [net.inflight], [net.coalesced], [net.retries], [net.timeouts]). *)

(** {1 The asynchronous data plane} *)

val submit : t -> now:float -> ?urgent:bool -> ?detached:bool -> Request.t -> sqe
(** Post a request to the submission queue.

    [urgent] (default false) bypasses batching, posts immediately, and
    pays the full synchronous doorbell cost ([msg_cpu_ns]) — the fast
    synchronous path for blocking demand misses.  Non-urgent requests
    pay the batched doorbell cost ([async_post_ns]) and, when
    coalescing is enabled, may merge with adjacent same-kind requests
    (merged members cost zero CPU to post).

    [detached] (default false) marks a fire-and-forget request: it is
    fully accounted (statistics, link occupancy, [fence]) but produces
    no completion-queue entry, so callers that never reap (asynchronous
    writebacks) cannot leak completions.

    A pending batch is posted — its doorbell rings — when a different
    kind of request is submitted, when it reaches [coalesce_limit],
    or on [ring]/[poll]/[await]/[fence]. *)

val ring : t -> now:float -> unit
(** Ring the doorbell: post any pending batch at time [now].  No-op if
    nothing is pending. *)

val poll : t -> now:float -> completion list
(** Drain completions with [done_at <= now], oldest first (ties by
    submission order).  Rings the doorbell first. *)

val await : t -> now:float -> id:int -> completion
(** Reap the completion for [id] regardless of its [done_at] — the
    blocking path: the caller then advances its clock to [done_at].
    Rings the doorbell first.  Raises [Invalid_argument] for unknown or
    detached ids. *)

val fence : ?dir:Request.dir -> t -> now:float -> float
(** Time at which every transfer submitted so far (restricted to
    direction [dir] if given) has completed; at least [now].  Rings the
    doorbell first.  [fence ~dir:Write] is the writeback flush barrier
    used before RPCs and section teardown. *)

val in_flight : t -> now:float -> int
(** Posted messages not yet complete at [now] (testing/telemetry). *)

(** {1 Tenant interference} *)

val set_tenant : t -> int -> unit
(** Stamp subsequent submissions with this tenant id ([-1] = unbound,
    the initial state).  Ambient state: the runtime sets it on task
    switch (and registers a scheduler TLS hook so it survives parks). *)

val tenant : t -> int

(** Who made whom wait on the in-flight window.  Cells are
    [(waiter, holder) -> int64] in the attribution ledger's fixed point
    (2{^-16} ns): every [Queueing] nanosecond the ledger charges to a
    tenant is forwarded here via the ledger's queue sink and split
    pro-rata (exact int64, remainder to the last holder) across the
    tenants that held window slots when the stalled request was
    posted; a stall with no recorded holders (link backlog, doorbell
    batching — not window contention) self-charges.  Each waiter row
    therefore sums to {e exactly} that tenant's queue-stall ledger
    bucket ([Attribution.tenant_cause_fp ~tenant Queueing]), by
    construction. *)
module Interference : sig
  type t

  val record : t -> tenant:int -> holders:(int * int) list -> int64 -> unit
  (** Charge [fp] fixed-point units of [tenant]'s queue stall against
      [holders]; non-positive amounts are ignored. *)

  val row_fp : t -> tenant:int -> int64
  (** Total fixed-point queue stall recorded for one waiter. *)

  val rows : t -> (int * int64) list
  (** [(waiter, total_fp)], tenant-sorted. *)

  val cells : t -> (int * int * int64) list
  (** [(waiter, holder, fp)], sorted. *)

  val reset : t -> unit
  val to_json : t -> Mira_telemetry.Json.t
  (** Rows keyed ["t<N>"] (["-"] = unbound), each an object of
      [total_fp] plus per-holder fixed-point cells, all as decimal
      strings (int64-exact). *)
end

val interference : t -> Interference.t
val record_interference : t -> tenant:int -> holders:(int * int) list -> int64 -> unit
(** The queue-sink entry point ([Interference.record] on this net's
    matrix); wired to [Attribution.set_queue_sink] by the runtime.
    Reset by [reset_stats] (with the rest of the counters), not by
    [reset_link]. *)

(** {1 Node failures} *)

val fail_inflight : t -> now:float -> int
(** The far node crashed at [now]: every transfer still in flight
    fails immediately.  Unreaped completions that had not landed become
    [Node_down] with [done_at = now] (crash detection is the failover
    notification, not a per-request timer), the in-flight window
    drains, and the link goes idle.  Rings the doorbell first.  Returns
    the number of reapable requests failed; [net.node_down] counts
    them, never [net.timeouts]. *)

val set_down : t -> until:float -> unit
(** Declare the far node unreachable until [until] (a degraded outage
    with no failover target): messages posted before that instant
    complete as [Node_down] after the loss-detection timer (the fault
    model's [timeout_ns], or one RTT without faults) without touching
    the wire. *)

val set_node_down : t -> node:int -> until:float -> unit
(** Same as [set_down], scoped to one far node: only messages whose
    [Request.node] targets it stall; traffic to live nodes is
    unaffected.  Windows for distinct nodes are independent and
    cleared by [reset_link]. *)

val reset_link : t -> unit
(** Forget link occupancy and all queue state (between independent
    simulated runs). *)
