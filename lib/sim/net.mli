(** Analytical RDMA-like network between the compute node and the
    far-memory node.

    The model charges a fixed round-trip latency per message, serializes
    payloads on a shared link of finite bandwidth (so concurrent
    prefetches overlap latency but queue on the wire), and charges local
    CPU time for posting each message.  Two-sided messages additionally
    pay a higher base latency plus a per-byte copy on the far node, but
    may carry exactly the bytes requested (no line/page rounding), which
    is what Mira's selective transmission exploits. *)

type side = One_sided | Two_sided

type purpose = Demand | Prefetch | Writeback | Rpc
(** Why the transfer happened; kept per-purpose in the statistics so
    the amplification and traffic figures can be produced. *)

val purpose_name : purpose -> string

type xfer = {
  issue_cpu_ns : float;  (** local CPU time consumed posting the message *)
  done_at : float;  (** absolute simulated time of completion *)
}

type stats = {
  mutable msg_count : int;
  mutable bytes_in : int;  (** far -> local *)
  mutable bytes_out : int;  (** local -> far *)
  mutable bytes_demand : int;
  mutable bytes_prefetch : int;
  mutable bytes_writeback : int;
  mutable bytes_rpc : int;
  lat_fetch : Mira_telemetry.Metrics.hist;
      (** caller-observed latency (incl. link queueing) of inbound
          transfers *)
  lat_rtt : Mira_telemetry.Metrics.hist;
      (** pure wire+latency round trip, excl. queueing, all transfers *)
}

type t

val create : Params.t -> t
val params : t -> Params.t
val stats : t -> stats
val reset_stats : t -> unit

val publish : t -> Mira_telemetry.Metrics.t -> unit
(** Export counters and latency histograms under [net.*]. *)

val fetch :
  t -> ?async:bool -> side:side -> purpose:purpose -> now:float -> bytes:int ->
  unit -> xfer
(** Read [bytes] from far memory.  The caller advances its clock by
    [issue_cpu_ns] immediately and, if the access is blocking, waits
    until [done_at].  [async] (default false) posts at the batched
    doorbell cost. *)

val push :
  t -> ?async:bool -> side:side -> purpose:purpose -> now:float -> bytes:int ->
  unit -> xfer
(** Write [bytes] to far memory (used for writeback and RPC argument
    shipping); fire-and-forget by default ([async] default true), so
    callers only pay [issue_cpu_ns] unless they need completion
    (e.g. flush-before-RPC). *)

val reset_link : t -> unit
(** Forget link occupancy (between independent simulated runs). *)
