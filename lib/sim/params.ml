type t = {
  native_op_ns : float;
  native_mem_ns : float;
  hit_direct_ns : float;
  hit_set_ns : float;
  hit_full_ns : float;
  one_sided_rtt_ns : float;
  two_sided_rtt_ns : float;
  bandwidth_bytes_per_ns : float;
  msg_cpu_ns : float;
  async_post_ns : float;
  remote_copy_ns_per_byte : float;
  page_fault_ns : float;
  page_size : int;
  aifm_deref_ns : float;
  aifm_elem_meta_bytes : int;
  aifm_obj_meta_bytes : int;
  remote_compute_slowdown : float;
  rpc_overhead_ns : float;
  evict_check_ns : float;
  prof_event_ns : float;
  swap_lock_ns : float;
}

let default =
  {
    native_op_ns = 1.0;
    native_mem_ns = 2.0;
    hit_direct_ns = 10.0;
    hit_set_ns = 18.0;
    hit_full_ns = 45.0;
    one_sided_rtt_ns = 3_000.0;
    two_sided_rtt_ns = 3_600.0;
    bandwidth_bytes_per_ns = 6.25;
    msg_cpu_ns = 300.0;
    async_post_ns = 50.0;
    remote_copy_ns_per_byte = 0.05;
    page_fault_ns = 8_000.0;
    page_size = 4096;
    aifm_deref_ns = 35.0;
    aifm_elem_meta_bytes = 16;
    aifm_obj_meta_bytes = 64;
    remote_compute_slowdown = 2.5;
    rpc_overhead_ns = 5_000.0;
    evict_check_ns = 4.0;
    prof_event_ns = 15.0;
    swap_lock_ns = 1_500.0;
  }

let hit_overhead_ns t structure =
  match structure with
  | `Direct -> t.hit_direct_ns
  | `Set -> t.hit_set_ns
  | `Full -> t.hit_full_ns

let pp ppf t =
  Format.fprintf ppf
    "native_op=%.1fns native_mem=%.1fns hit(direct/set/full)=%.0f/%.0f/%.0fns@\n\
     rtt(1s/2s)=%.0f/%.0fns bw=%.2fB/ns msg_cpu=%.0fns remote_copy=%.3fns/B@\n\
     page_fault=%.0fns page=%dB aifm(deref=%.0fns elem_meta=%dB obj_meta=%dB)@\n\
     remote_slowdown=%.1fx rpc=%.0fns evict_check=%.1fns"
    t.native_op_ns t.native_mem_ns t.hit_direct_ns t.hit_set_ns t.hit_full_ns
    t.one_sided_rtt_ns t.two_sided_rtt_ns t.bandwidth_bytes_per_ns t.msg_cpu_ns
    t.remote_copy_ns_per_byte t.page_fault_ns t.page_size t.aifm_deref_ns
    t.aifm_elem_meta_bytes t.aifm_obj_meta_bytes t.remote_compute_slowdown
    t.rpc_overhead_ns t.evict_check_ns;
  Format.fprintf ppf "@\nprof_event=%.1fns swap_lock=%.0fns" t.prof_event_ns
    t.swap_lock_ns
