(** Cost model for the simulated far-memory environment.

    Every simulated nanosecond in the repository comes from one of the
    fields below.  The defaults approximate the paper's testbed: two
    Xeon nodes connected by 50 Gbps InfiniBand (FDR CX-3), a Linux swap
    fault path of a few microseconds, and an ARM-class far-memory
    processor.  All figure harnesses may override individual fields;
    EXPERIMENTS.md records the values actually used. *)

type t = {
  native_op_ns : float;  (** cost of one IR op executed natively *)
  native_mem_ns : float;  (** native (local-DRAM) memory access *)
  hit_direct_ns : float;  (** cache-section hit overhead, direct-mapped *)
  hit_set_ns : float;  (** hit overhead, set-associative *)
  hit_full_ns : float;  (** hit overhead, fully-associative *)
  one_sided_rtt_ns : float;  (** one-sided RDMA round-trip latency *)
  two_sided_rtt_ns : float;  (** two-sided (RPC-style) round-trip latency *)
  bandwidth_bytes_per_ns : float;  (** link bandwidth (6.25 = 50 Gbps) *)
  msg_cpu_ns : float;  (** local CPU cost to post/process one blocking message *)
  async_post_ns : float;  (** CPU cost to post one asynchronous message
                              (prefetch/write-back); cheaper than
                              [msg_cpu_ns] because the runtime batches
                              doorbells for async work (§4.5) *)
  remote_copy_ns_per_byte : float;  (** far-node copy cost for two-sided msgs *)
  page_fault_ns : float;  (** swap fault handling cost excluding transfer *)
  page_size : int;  (** swap page size in bytes *)
  aifm_deref_ns : float;  (** AIFM per-dereference runtime cost (hit) *)
  aifm_elem_meta_bytes : int;  (** AIFM metadata per array element *)
  aifm_obj_meta_bytes : int;  (** AIFM metadata per remotable object *)
  remote_compute_slowdown : float;  (** far-node CPU slowdown factor *)
  rpc_overhead_ns : float;  (** fixed cost of an offload RPC *)
  evict_check_ns : float;  (** cost to test/maintain eviction metadata *)
  prof_event_ns : float;  (** cost of one instrumented profiling event *)
  swap_lock_ns : float;  (** per-contending-thread swap-lock serialization *)
}

val default : t
(** The defaults documented in DESIGN.md §5. *)

val hit_overhead_ns : t -> [ `Direct | `Set | `Full ] -> float
(** Hit overhead for the given cache structure. *)

val pp : Format.formatter -> t -> unit
(** Render all fields, one per line. *)
