type range = { addr : int; len : int }

type t = {
  base : int;
  limit : int;
  mutable free_list : range list;  (* address-ordered, coalesced *)
  live : (int, int) Hashtbl.t;  (* addr -> len *)
  mutable live_bytes : int;
  mutable high_water : int;
}

let align8 n = (n + 7) land lnot 7

let create ~base ~limit =
  assert (base >= 0 && limit > base);
  {
    base;
    limit;
    free_list = [ { addr = base; len = limit - base } ];
    live = Hashtbl.create 64;
    live_bytes = 0;
    high_water = 0;
  }

let alloc t len =
  assert (len > 0);
  let len = align8 len in
  (* First fit over the address-ordered free list. *)
  let rec take acc = function
    | [] -> raise Out_of_memory
    | r :: rest when r.len >= len ->
      let remainder =
        if r.len = len then rest
        else { addr = r.addr + len; len = r.len - len } :: rest
      in
      (r.addr, List.rev_append acc remainder)
    | r :: rest -> take (r :: acc) rest
  in
  let addr, free_list = take [] t.free_list in
  t.free_list <- free_list;
  Hashtbl.replace t.live addr len;
  t.live_bytes <- t.live_bytes + len;
  if t.live_bytes > t.high_water then t.high_water <- t.live_bytes;
  addr

let free t ~addr ~len =
  let len = align8 len in
  (match Hashtbl.find_opt t.live addr with
  | Some l when l = len -> Hashtbl.remove t.live addr
  | Some l ->
    invalid_arg
      (Printf.sprintf "Remote_alloc.free: %d has length %d, freed with %d" addr
         l len)
  | None -> invalid_arg (Printf.sprintf "Remote_alloc.free: %d not live" addr));
  t.live_bytes <- t.live_bytes - len;
  (* Insert in address order, coalescing with neighbours. *)
  let rec insert = function
    | [] -> [ { addr; len } ]
    | r :: rest when addr + len < r.addr -> { addr; len } :: r :: rest
    | r :: rest when addr + len = r.addr ->
      { addr; len = len + r.len } :: rest
    | r :: rest when r.addr + r.len = addr ->
      (match insert_merged { addr = r.addr; len = r.len + len } rest with
      | merged -> merged)
    | r :: rest when r.addr + r.len <= addr -> r :: insert rest
    | _ -> invalid_arg "Remote_alloc.free: range overlaps free space"
  and insert_merged m = function
    | r :: rest when m.addr + m.len = r.addr ->
      { m with len = m.len + r.len } :: rest
    | rest -> m :: rest
  in
  t.free_list <- insert t.free_list

let live_bytes t = t.live_bytes
let high_water t = t.high_water

let check_no_overlap t =
  let ranges =
    Hashtbl.fold (fun addr len acc -> (addr, len) :: acc) t.live []
  in
  let sorted = List.sort compare ranges in
  let rec ok = function
    | (a1, l1) :: ((a2, _) :: _ as rest) -> a1 + l1 <= a2 && ok rest
    | _ -> true
  in
  ok sorted
