(** Low-level allocator of far-memory virtual addresses.

    Plays the role of the paper's "remote allocator" (§5.2.1): it owns
    the far node's address space and hands out ranges; the local-node
    allocator ([Mira_runtime.Local_alloc]) buffers ranges obtained from
    here.  First-fit with address-ordered free-list coalescing. *)

type t

val create : base:int -> limit:int -> t
(** Manage addresses in [\[base, limit)]. *)

val alloc : t -> int -> int
(** [alloc t len] returns the base address of a fresh [len]-byte range,
    8-byte aligned.  Raises [Out_of_memory] when the space is exhausted. *)

val free : t -> addr:int -> len:int -> unit
(** Return a range.  Freeing an address that was not allocated, or
    double-freeing, raises [Invalid_argument]. *)

val live_bytes : t -> int
(** Bytes currently allocated. *)

val high_water : t -> int
(** Maximum of [live_bytes] ever observed. *)

val check_no_overlap : t -> bool
(** Debug/property hook: true iff live ranges are pairwise disjoint. *)
