type call_cost = {
  send_done_at : float;
  overhead_ns : float;
  fence_wait_ns : float;
}

(* Argument shipping is ordered after every outstanding writeback: the
   far node must observe current data before it runs the offloaded
   body.  The old API left that to caller discipline ([push] defaults
   to fire-and-forget); the data-plane [fence] makes it explicit. *)
let issue net ~now ~args_bytes =
  let p = Net.params net in
  let barrier = Net.fence ~dir:Net.Request.Write net ~now in
  let sq =
    Net.submit net ~now:barrier ~urgent:true
      (Net.Request.write ~side:Net.Two_sided ~purpose:Net.Rpc args_bytes)
  in
  let c = Net.await net ~now:barrier ~id:sq.Net.id in
  let fence_wait_ns = barrier -. now in
  {
    send_done_at = c.Net.done_at +. p.Params.rpc_overhead_ns;
    overhead_ns = sq.Net.issue_cpu_ns +. p.Params.rpc_overhead_ns +. fence_wait_ns;
    fence_wait_ns;
  }

let complete net ~body_done_at ~ret_bytes =
  let sq =
    Net.submit net ~now:body_done_at ~urgent:true
      (Net.Request.read ~side:Net.Two_sided ~purpose:Net.Rpc ret_bytes)
  in
  let c = Net.await net ~now:body_done_at ~id:sq.Net.id in
  c.Net.done_at
