type call_cost = { send_done_at : float; overhead_ns : float }

let issue net ~now ~args_bytes =
  let p = Net.params net in
  let x =
    Net.push net ~async:false ~side:Net.Two_sided ~purpose:Net.Rpc ~now
      ~bytes:args_bytes ()
  in
  {
    send_done_at = x.Net.done_at +. p.Params.rpc_overhead_ns;
    overhead_ns = x.Net.issue_cpu_ns +. p.Params.rpc_overhead_ns;
  }

let complete net ~body_done_at ~ret_bytes =
  let x =
    Net.fetch net ~side:Net.Two_sided ~purpose:Net.Rpc ~now:body_done_at
      ~bytes:ret_bytes ()
  in
  x.Net.done_at
