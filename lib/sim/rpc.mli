(** Offload RPC transport (compute node -> far-memory node).

    Implements the cost side of §4.8: an offloaded call ships its
    arguments, runs the body on the (slower) far-node CPU, and ships the
    return value back.  The body's execution time is supplied by the
    caller (the interpreter runs the function with far-node cost mode);
    this module accounts for the transport. *)

type call_cost = {
  send_done_at : float;  (** when the far node may start executing *)
  overhead_ns : float;  (** fixed + transfer cost excluding the body *)
  fence_wait_ns : float;
      (** time spent waiting on the writeback fence before the
          arguments could ship (0 when nothing was outstanding) *)
}

val issue : Net.t -> now:float -> args_bytes:int -> call_cost
(** Begin an offloaded call at [now].  Issues a [Net.fence ~dir:Write]
    first: argument shipping is ordered after every outstanding
    writeback, so the far node never observes stale data because a
    fire-and-forget flush was still in flight. *)

val complete : Net.t -> body_done_at:float -> ret_bytes:int -> float
(** Ship the return value; result is the absolute completion time the
    local caller waits for. *)
