(* Deterministic discrete-event scheduler: N tenant tasks interleave
   on simulated time.

   Each tenant owns a [Clock] attached to this scheduler.  Whenever a
   task moves its clock forward (compute, a typed blocking event), the
   clock's observer performs the [Yield] effect: the task's
   continuation is parked in the event queue keyed by

       (time in int64 ticks, tenant id, submission seqno)

   and the globally earliest task resumes.  Shared resources (the
   section cache, the net in-flight window, the far cluster) therefore
   always observe calls in nondecreasing simulated-time order, and the
   interleaving is a pure function of the clocks — two runs with the
   same seeds replay byte-identically.

   Time keys are int64 fixed point in units of 2^-16 ns (the
   attribution ledger's tick), an exact total order even when two
   float timestamps differ below float printing precision.  The floats
   inside [Clock] remain the source of truth for all arithmetic: with
   a single live task the observer never fires, so a 1-tenant
   scheduled run is bit-identical to the pre-scheduler serialized
   clock. *)

type event = Clock.event =
  | Net_completion of int
  | Cache_fill
  | Fence
  | Timer

let ticks_per_ns = 65536.0
let ticks_of_ns ns = Int64.of_float (Float.round (ns *. ticks_per_ns))
let ns_of_ticks t = Int64.to_float t /. ticks_per_ns

type resume =
  | Start of (unit -> unit)
  | Resume of (unit, unit) Effect.Deep.continuation

(* [ctx] is the task's ambient trace context, captured when the task
   parks and reinstalled when it resumes: [Trace.set_ctx] is process
   state, so without the save/restore a resumed tenant would inherit
   whatever request span the previously-running tenant left ambient
   and child spans would attach to the wrong trace. *)
type entry = {
  at : int64;
  tenant : int;
  seq : int;
  resume : resume;
  ctx : Mira_telemetry.Trace.span_ctx option;
  tls : (unit -> unit) list;  (* restore thunks from the TLS hooks *)
}

(* Strict total order: earliest tick first, ties by tenant id, then by
   submission order.  Determinism depends on nothing else.  The seqno
   is globally unique, so this is a strict total order over entries —
   which is exactly why the event queue can be a binary heap: with no
   ties, heap pop order coincides with the old scan-for-min order. *)
let entry_before a b =
  a.at < b.at
  || (a.at = b.at && (a.tenant < b.tenant || (a.tenant = b.tenant && a.seq < b.seq)))

type t = {
  queue : entry Mira_util.Min_heap.t;  (* ordered by [entry_before] *)
  mutable seq : int;
  mutable live : int;  (* spawned tasks that have not returned *)
  mutable running : bool;
  mutable dispatched : int;
  clocks : (int, Clock.t) Hashtbl.t;
  blocks : (string, int) Hashtbl.t;  (* yields per event kind *)
  mutable tls_hooks : (unit -> unit -> unit) list;  (* newest first *)
}

type _ Effect.t += Yield : { at : int64; ev : event } -> unit Effect.t

let create () =
  {
    queue = Mira_util.Min_heap.create ~le:entry_before;
    seq = 0;
    live = 0;
    running = false;
    dispatched = 0;
    clocks = Hashtbl.create 8;
    blocks = Hashtbl.create 8;
    tls_hooks = [];
  }

let tenants t = Hashtbl.length t.clocks
let live t = t.live

(* Ambient process state beyond the trace context (attribution fn/site,
   the net's current tenant) needs the same park/resume save-restore
   discipline; components register a save hook that snapshots their
   state and returns the matching restore thunk. *)
let add_tls t hook = t.tls_hooks <- hook :: t.tls_hooks

let save_tls t = List.map (fun hook -> hook ()) t.tls_hooks
let restore_tls entry = List.iter (fun restore -> restore ()) entry.tls

let clock t ~tenant =
  match Hashtbl.find_opt t.clocks tenant with
  | Some c -> c
  | None ->
    let c = Clock.create () in
    (* The yield point: only fires while the scheduler loop is live and
       more than one task could be affected by the move — so clocks
       handed out before [run], after it returns, or in a 1-tenant run
       behave exactly like free-running clocks. *)
    Clock.set_observer c
      (Some
         (fun ev now ->
           if t.running && t.live > 1 then
             Effect.perform (Yield { at = ticks_of_ns now; ev })));
    Hashtbl.replace t.clocks tenant c;
    c

let push t entry = Mira_util.Min_heap.push t.queue entry

let next_seq t =
  t.seq <- t.seq + 1;
  t.seq

let spawn ?at_ns t ~tenant f =
  let at =
    match at_ns with
    | Some ns -> ticks_of_ns ns
    | None -> ticks_of_ns (Clock.now (clock t ~tenant))
  in
  t.live <- t.live + 1;
  push t { at; tenant; seq = next_seq t; resume = Start f; ctx = None; tls = [] }

let pop_earliest t = Mira_util.Min_heap.pop t.queue

let count_block t ev =
  let k = Clock.event_name ev in
  Hashtbl.replace t.blocks k
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.blocks k))

let run t =
  if t.running then invalid_arg "Sched.run: already running";
  t.running <- true;
  let handler tenant =
    {
      Effect.Deep.retc = (fun () -> t.live <- t.live - 1);
      exnc =
        (fun e ->
          t.running <- false;
          raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield { at; ev } ->
            Some
              (fun (k : (a, _) Effect.Deep.continuation) ->
                count_block t ev;
                push t
                  {
                    at;
                    tenant;
                    seq = next_seq t;
                    resume = Resume k;
                    ctx = Mira_telemetry.Trace.current_ctx ();
                    tls = save_tls t;
                  })
          | _ -> None);
    }
  in
  let rec loop () =
    match pop_earliest t with
    | None -> ()
    | Some e ->
      t.dispatched <- t.dispatched + 1;
      Mira_telemetry.Trace.set_ctx e.ctx;
      restore_tls e;
      (match e.resume with
      | Start f -> Effect.Deep.match_with f () (handler e.tenant)
      | Resume k -> Effect.Deep.continue k ());
      loop ()
  in
  loop ();
  Mira_telemetry.Trace.set_ctx None;
  t.running <- false

let dispatched t = t.dispatched

let block_counts t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.blocks []
  |> List.sort compare

let elapsed_ns t =
  Hashtbl.fold (fun _ c acc -> Float.max acc (Clock.now c)) t.clocks 0.0

let publish t reg =
  Mira_telemetry.Metrics.set_counter reg "sched.tenants" (tenants t);
  Mira_telemetry.Metrics.set_counter reg "sched.dispatched" t.dispatched;
  List.iter
    (fun (k, v) ->
      Mira_telemetry.Metrics.set_counter reg (Printf.sprintf "sched.block.%s" k) v)
    (block_counts t)

let reset_stats t =
  t.dispatched <- 0;
  Hashtbl.reset t.blocks

let reset t =
  if t.running then invalid_arg "Sched.reset: scheduler is running";
  Mira_util.Min_heap.clear t.queue;
  t.seq <- 0;
  t.live <- 0;
  t.dispatched <- 0;
  Hashtbl.reset t.blocks;
  Hashtbl.iter (fun _ c -> Clock.reset c) t.clocks
