(** Deterministic discrete-event scheduler: the time API for
    many-tenant simulation.

    [Sched] replaces "one app thread on one serialized clock" with N
    tenant contexts running as resumable tasks.  Each tenant owns a
    {!Clock.t} that is a {e view} over this scheduler: whenever a task
    moves its clock forward — compute time, or blocking on a typed
    event (net completion, cache-line fill, fence, arrival timer) — it
    yields, and the task with the globally earliest clock resumes.
    Tenants thereby contend for the shared section cache, the net
    in-flight window, and the far cluster in exact simulated-time
    order.

    {b Determinism.}  Parked tasks are ordered by the triple
    [(time, tenant id, seqno)] where time is int64 fixed point in
    units of 2{^-16} ns (the attribution ledger's tick — see
    [Clock.advance]'s validation) and seqno is the global submission
    counter.  The interleaving is a pure function of the tasks' clock
    movements, so identical seeds replay byte-identically.

    {b Single-tenant identity.}  With at most one live task the clocks
    never yield and all float time arithmetic is untouched: a 1-tenant
    scheduled run is bit-identical to the pre-scheduler serialized
    clock. *)

type event = Clock.event =
  | Net_completion of int
  | Cache_fill
  | Fence
  | Timer

val ticks_per_ns : float
(** 65536 — the fixed-point scale: 1 tick = 2{^-16} ns. *)

val ticks_of_ns : float -> int64
(** Nearest-tick conversion used for event-queue ordering keys. *)

val ns_of_ticks : int64 -> float

type t

val create : unit -> t

val clock : t -> tenant:int -> Clock.t
(** The tenant's clock view, created and attached on first use.
    Clocks handed out before {!run} (setup), after it returns, or in a
    run with a single live task behave exactly like free-running
    clocks. *)

val tenants : t -> int
(** Number of tenant clocks created so far. *)

val live : t -> int
(** Spawned tasks that have not yet returned.  A telemetry sampler
    task loops while [live t > 1] — i.e. while any task other than
    itself is still running. *)

val add_tls : t -> (unit -> unit -> unit) -> unit
(** Register a task-local-state hook.  The trace context is already
    saved when a task parks and reinstalled when it resumes; any other
    ambient process state (attribution context, the net's current
    tenant) needs the same discipline.  On park, each hook is called
    to snapshot its state and return the matching restore thunk; on
    resume the thunks run after the trace context is reinstalled.
    Freshly started tasks restore nothing — they establish their own
    context. *)

val spawn : ?at_ns:float -> t -> tenant:int -> (unit -> unit) -> unit
(** Register a task for [tenant], runnable at [at_ns] (default: the
    tenant clock's current time).  Tasks may spawn further tasks while
    running. *)

val run : t -> unit
(** Dispatch until no task is runnable.  Raises [Invalid_argument] on
    re-entry.  Exceptions escaping a task abort the run and propagate. *)

val dispatched : t -> int
(** Total dispatches (task starts + resumes) — a determinism
    fingerprint for tests. *)

val block_counts : t -> (string * int) list
(** Yields per typed-event kind ([cache_fill], [fence],
    [net_completion], [timer]), sorted by name. *)

val elapsed_ns : t -> float
(** Max over all tenant clocks. *)

val publish : t -> Mira_telemetry.Metrics.t -> unit
(** Export [sched.tenants], [sched.dispatched] and per-kind
    [sched.block.<event>] counters. *)

val reset_stats : t -> unit
(** Zero [dispatched] and the per-kind block counters without touching
    clocks or parked tasks (the runtime's [reset_timing] hook). *)

val reset : t -> unit
(** Drop parked tasks and counters and reset every tenant clock to 0
    (between independent runs).  Raises [Invalid_argument] while
    running. *)
