(* Cross-layer stall attribution: every simulated nanosecond a thread
   spends stalled on far memory is charged to exactly one cause bucket
   and to the (function, alloc site, section, tenant) it happened under.

   Conservation is the design center.  Floating-point addition is not
   associative, so deriving "total" and "per-bucket" sums from floats
   in different fold orders would leave ulp-sized unattributed
   remainders.  The ledger therefore stores fixed-point integers
   (2^-16 ns units, ~15 fs resolution, 2^47 ns ≈ 39 simulated hours of
   headroom): integer addition is associative, so the per-cause totals,
   the per-key cells, and the online grand total agree bit-exactly no
   matter the iteration order.  [check] is a double-entry audit — every
   charge adds to one cell, one per-cause running total, and the grand
   total, and a dropped or duplicated cell update (a context-key
   aliasing bug, a reset bug) shows up as a non-zero remainder in a
   {e named} bucket. *)

type cause =
  | Demand_wire
  | Queueing
  | Retry
  | Fence
  | Writeback
  | Failover_recovery
  | Reconfig
  | Reconstruct

let causes =
  [ Demand_wire; Queueing; Retry; Fence; Writeback; Failover_recovery; Reconfig;
    Reconstruct ]

let cause_name = function
  | Demand_wire -> "demand_wire"
  | Queueing -> "queueing"
  | Retry -> "retry"
  | Fence -> "fence"
  | Writeback -> "writeback"
  | Failover_recovery -> "failover_recovery"
  | Reconfig -> "reconfig"
  | Reconstruct -> "reconstruct"

let cause_index = function
  | Demand_wire -> 0
  | Queueing -> 1
  | Retry -> 2
  | Fence -> 3
  | Writeback -> 4
  | Failover_recovery -> 5
  | Reconfig -> 6
  | Reconstruct -> 7

let ncauses = 8
let cause_of_index i = List.nth causes i

(* 2^16 fixed-point units per nanosecond. *)
let fp_scale = 65536.0

let fp_of_ns ns = Int64.of_float (ns *. fp_scale)
let ns_of_fp fp = Int64.to_float fp /. fp_scale

(* [k_tenant] is deliberately the last field: cells that used to be one
   per (fn, site, section, cause) may now split per tenant, but the
   polymorphic-compare sort in [fold] keeps those splits adjacent, so
   every grouped view ([by_section], [by_site], [by_function], the
   folded flame stacks) emits labels in exactly the pre-tenant order. *)
type key = {
  k_fn : string;  (* innermost profiled function, "(runtime)" if none *)
  k_site : int;  (* allocation site, -1 when not site-bound *)
  k_section : string;  (* cache section name, "-" outside any section *)
  k_cause : int;
  k_tenant : int;  (* tenant context, -1 when not tenant-bound *)
}

type t = {
  cells : (key, int64 ref) Hashtbl.t;
  mutable total : int64;  (* online double-entry mirror of the cells *)
  cause_fp : int64 array;  (* online per-cause mirror, for named audits *)
  mutable enabled : bool;
  mutable ctx_fn : string;
  mutable ctx_site : int;
  mutable ctx_tenant : int;
  mutable queue_sink :
    (tenant:int -> holders:(int * int) list -> int64 -> unit) option;
      (* invoked with the exact fixed-point amount of every [Queueing]
         charge — the hook the net interference matrix hangs off, so
         matrix rows sum to the ledger's queue-stall buckets by
         construction.  Survives [reset]. *)
}

let no_fn = "(runtime)"
let no_section = "-"

let create () =
  {
    cells = Hashtbl.create 64;
    total = 0L;
    cause_fp = Array.make ncauses 0L;
    enabled = true;
    ctx_fn = no_fn;
    ctx_site = -1;
    ctx_tenant = -1;
    queue_sink = None;
  }

let set_enabled t on = t.enabled <- on
let enabled t = t.enabled

let set_context t ~fn ~site =
  t.ctx_fn <- fn;
  t.ctx_site <- site

let set_tenant t tenant = t.ctx_tenant <- tenant

let clear_context t =
  t.ctx_fn <- no_fn;
  t.ctx_site <- -1;
  t.ctx_tenant <- -1

let context t = (t.ctx_fn, t.ctx_site)
let context_tenant t = t.ctx_tenant

let set_queue_sink t sink = t.queue_sink <- Some sink

let reset t =
  Hashtbl.reset t.cells;
  t.total <- 0L;
  Array.fill t.cause_fp 0 ncauses 0L;
  t.ctx_fn <- no_fn;
  t.ctx_site <- -1;
  t.ctx_tenant <- -1

let add_cell t key fp =
  (match Hashtbl.find_opt t.cells key with
  | Some cell -> cell := Int64.add !cell fp
  | None -> Hashtbl.replace t.cells key (ref fp));
  t.cause_fp.(key.k_cause) <- Int64.add t.cause_fp.(key.k_cause) fp;
  t.total <- Int64.add t.total fp

let queueing_index = cause_index Queueing

let charge t ?(section = no_section) ?(holders = []) cause ns =
  if t.enabled && ns > 0.0 then begin
    let fp = fp_of_ns ns in
    if fp > 0L then begin
      let idx = cause_index cause in
      add_cell t
        { k_fn = t.ctx_fn; k_site = t.ctx_site; k_section = section;
          k_cause = idx; k_tenant = t.ctx_tenant }
        fp;
      (* Same guard, same fixed-point amount: whatever lands in the
         queueing bucket is exactly what the sink sees. *)
      if idx = queueing_index then
        match t.queue_sink with
        | Some sink -> sink ~tenant:t.ctx_tenant ~holders fp
        | None -> ()
    end
  end

let charge_parts t ?section ?holders parts =
  List.iter (fun (cause, ns) -> charge t ?section ?holders cause ns) parts

(* Split a measured stall over the completion's latency components,
   tail-first: the stall is the final [stall] ns of the request's
   latency interval, whose tail is the successful attempt's wire time,
   preceded by retry windows, preceded by queueing.  Residual
   subtraction keeps the parts summing exactly to [stall]. *)
let split_stall ~stall ~wire_ns ~queue_ns ~retry_ns =
  ignore queue_ns;
  if stall <= 0.0 then []
  else begin
    let wire = Float.min stall (Float.max 0.0 wire_ns) in
    let rem = stall -. wire in
    let retry = Float.min rem (Float.max 0.0 retry_ns) in
    let queue = rem -. retry in
    [ (Demand_wire, wire); (Retry, retry); (Queueing, queue) ]
  end

(* Test hook: unbalance the online totals without touching any cell, so
   the audit-failure path (unreachable through [charge]) can be
   exercised and its error message pinned. *)
let unbalance_for_test t cause fp =
  t.cause_fp.(cause_index cause) <- Int64.add t.cause_fp.(cause_index cause) fp;
  t.total <- Int64.add t.total fp

(* --- derived views -------------------------------------------------------- *)

let fold t fn acc =
  (* Deterministic iteration order for reproducible reports. *)
  let items = Hashtbl.fold (fun k v acc -> (k, !v) :: acc) t.cells [] in
  let items = List.sort compare items in
  List.fold_left (fun acc (k, v) -> fn acc k v) acc items

let total_ns t = ns_of_fp t.total

let cause_totals_fp t =
  let sums = Array.make ncauses 0L in
  fold t
    (fun () k v -> sums.(k.k_cause) <- Int64.add sums.(k.k_cause) v)
    ();
  sums

let cause_ns t cause = ns_of_fp (cause_totals_fp t).(cause_index cause)

let by_cause t =
  let sums = cause_totals_fp t in
  List.map (fun c -> (c, ns_of_fp sums.(cause_index c))) causes

let check t =
  let sums = cause_totals_fp t in
  let mismatch =
    List.find_opt (fun c -> sums.(cause_index c) <> t.cause_fp.(cause_index c))
      causes
  in
  match mismatch with
  | Some c ->
    let i = cause_index c in
    let delta = Int64.sub t.cause_fp.(i) sums.(i) in
    Error
      (Printf.sprintf
         "attribution ledger out of balance in bucket '%s': cells sum to %Ld \
          fp but %Ld fp were charged (unattributed remainder %Ld fp = %.6f ns)"
         (cause_name c) sums.(i) t.cause_fp.(i) delta (ns_of_fp delta))
  | None ->
    let cells_total = Array.fold_left Int64.add 0L sums in
    if Int64.equal cells_total t.total then Ok ()
    else
      let delta = Int64.sub t.total cells_total in
      Error
        (Printf.sprintf
           "attribution ledger out of balance: per-cause totals agree but the \
            grand total differs by %Ld fp = %.6f ns"
           delta (ns_of_fp delta))

let unattributed_ns t =
  let sums = cause_totals_fp t in
  let cells_total = Array.fold_left Int64.add 0L sums in
  ns_of_fp (Int64.sub t.total cells_total)

let tenant_cause_fp t ~tenant cause =
  let idx = cause_index cause in
  Hashtbl.fold
    (fun k v acc ->
      if k.k_tenant = tenant && k.k_cause = idx then Int64.add acc !v else acc)
    t.cells 0L

let tenants_seen t =
  let seen = Hashtbl.create 8 in
  Hashtbl.iter (fun k _ -> Hashtbl.replace seen k.k_tenant ()) t.cells;
  Hashtbl.fold (fun tn () acc -> tn :: acc) seen [] |> List.sort compare

let site_label site = if site < 0 then "-" else Printf.sprintf "site%d" site
let tenant_label tn = if tn < 0 then "-" else Printf.sprintf "t%d" tn

(* Group cells under an outer label, keeping per-cause fixed-point sums. *)
let grouped t label_of =
  let groups : (string, int64 array) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  fold t
    (fun () k v ->
      let label = label_of k in
      let sums =
        match Hashtbl.find_opt groups label with
        | Some sums -> sums
        | None ->
          let sums = Array.make ncauses 0L in
          Hashtbl.replace groups label sums;
          order := label :: !order;
          sums
      in
      sums.(k.k_cause) <- Int64.add sums.(k.k_cause) v)
    ();
  List.rev_map (fun label -> (label, Hashtbl.find groups label)) !order

let group_rows t label_of =
  List.map
    (fun (label, sums) ->
      let total = Array.fold_left Int64.add 0L sums in
      ( label,
        ns_of_fp total,
        List.map (fun c -> (c, ns_of_fp sums.(cause_index c))) causes ))
    (grouped t label_of)

let by_section t = group_rows t (fun k -> k.k_section)
let by_site t = group_rows t (fun k -> site_label k.k_site)
let by_function t = group_rows t (fun k -> k.k_fn)
let by_tenant t = group_rows t (fun k -> tenant_label k.k_tenant)

(* --- folded flame stacks -------------------------------------------------- *)

(* One line per [fn;site;cause], count in whole nanoseconds — the
   format FlameGraph's flamegraph.pl and speedscope both load. *)
let folded t =
  let stacks : (string, int64) Hashtbl.t = Hashtbl.create 64 in
  fold t
    (fun () k v ->
      let stack =
        Printf.sprintf "%s;%s;%s" k.k_fn (site_label k.k_site)
          (cause_name (cause_of_index k.k_cause))
      in
      let cur = Option.value ~default:0L (Hashtbl.find_opt stacks stack) in
      Hashtbl.replace stacks stack (Int64.add cur v))
    ();
  let lines =
    Hashtbl.fold
      (fun stack fp acc ->
        let ns = Int64.to_float fp /. fp_scale in
        (stack, Int64.of_float (Float.round ns)) :: acc)
      stacks []
    |> List.filter (fun (_, n) -> n > 0L)
    |> List.sort compare
  in
  String.concat ""
    (List.map (fun (stack, n) -> Printf.sprintf "%s %Ld\n" stack n) lines)

(* --- export --------------------------------------------------------------- *)

let causes_json sums_row =
  Json.Obj
    (List.map (fun (c, ns) -> (cause_name c, Json.Float ns)) sums_row)

let rows_json rows =
  Json.Obj
    (List.map
       (fun (label, total, row) ->
         ( label,
           Json.Obj
             (("total_ns", Json.Float total)
             :: List.filter_map
                  (fun (c, ns) ->
                    if ns > 0.0 then Some (cause_name c, Json.Float ns)
                    else None)
                  row) ))
       rows)

let to_json t =
  let conserved = match check t with Ok () -> true | Error _ -> false in
  Json.Obj
    [
      ("total_ns", Json.Float (total_ns t));
      ("unattributed_ns", Json.Float (unattributed_ns t));
      ("conserved", Json.Bool conserved);
      ("by_cause", causes_json (by_cause t));
      ("by_section", rows_json (by_section t));
      ("by_site", rows_json (by_site t));
      ("by_function", rows_json (by_function t));
      ("by_tenant", rows_json (by_tenant t));
    ]

let publish t reg =
  List.iter
    (fun (c, ns) ->
      Metrics.set_gauge reg (Printf.sprintf "stall.%s_ns" (cause_name c)) ns)
    (by_cause t)
