(** Cross-layer stall attribution.

    A ledger charging every simulated nanosecond of runtime stall to
    exactly one cause bucket and a [(function, alloc site, section)]
    key.  Cells are stored fixed-point (2^-16 ns units) so the
    conservation invariant — the per-cause totals sum to exactly what
    was charged — holds bit-exactly regardless of aggregation order.
    [check] performs the double-entry audit and is asserted by tests
    and at report time. *)

type cause =
  | Demand_wire  (** wire + propagation time of the successful transfer *)
  | Queueing  (** link/doorbell/window queueing ahead of the transfer *)
  | Retry  (** loss-detection timeouts and retransmission backoff *)
  | Fence  (** ordering fences (e.g. write fence before an offload RPC) *)
  | Writeback  (** synchronous writeback backpressure *)
  | Failover_recovery  (** node-failure detection and failover recovery *)
  | Reconfig  (** reconfiguration barriers between program sections *)
  | Reconstruct
      (** degraded reads served by erasure-decoding k survivor chunks
          while a far node is down *)

type t

val causes : cause list
(** All causes, in canonical (index) order. *)

val cause_name : cause -> string
(** Stable snake_case name, as used in metric names and flame stacks. *)

val create : unit -> t
(** A fresh, enabled ledger with empty context. *)

val set_enabled : t -> bool -> unit
(** When disabled, [charge] is a no-op; flipping this never touches
    simulated state. *)

val enabled : t -> bool

val set_context : t -> fn:string -> site:int -> unit
(** Set the attribution context subsequent charges are keyed under:
    the innermost profiled function and the allocation site being
    accessed ([site = -1] when not site-bound). *)

val clear_context : t -> unit
val context : t -> string * int

val charge : t -> ?section:string -> cause -> float -> unit
(** [charge t ~section cause ns] adds [ns] (simulated nanoseconds;
    non-positive amounts are ignored) under the current context.
    [section] defaults to ["-"]. *)

val charge_parts : t -> ?section:string -> (cause * float) list -> unit

val split_stall :
  stall:float ->
  wire_ns:float ->
  queue_ns:float ->
  retry_ns:float ->
  (cause * float) list
(** Split a measured await-site stall (which may be shorter than the
    request's full latency, because the CPU overlapped part of it)
    across [Demand_wire]/[Retry]/[Queueing] tail-first.  The returned
    parts sum exactly to [stall]. *)

val total_ns : t -> float
(** Everything charged since the last [reset], in ns. *)

val cause_ns : t -> cause -> float
val by_cause : t -> (cause * float) list

val by_section : t -> (string * float * (cause * float) list) list
(** Per-section rows: [(section, total_ns, per-cause breakdown)], in
    deterministic order.  Likewise [by_site] ([site<N>] labels) and
    [by_function]. *)

val by_site : t -> (string * float * (cause * float) list) list
val by_function : t -> (string * float * (cause * float) list) list

val check : t -> (unit, string) result
(** Double-entry audit: the sum over all cells must equal the online
    total accumulated by [charge]. *)

val unattributed_ns : t -> float
(** The audit remainder; exactly [0.] when [check] passes. *)

val folded : t -> string
(** Folded flame stacks: one line per [fn;site;cause count_ns], counts
    in whole nanoseconds, loadable by FlameGraph / speedscope. *)

val to_json : t -> Json.t
val publish : t -> Metrics.t -> unit
(** Publish per-cause gauges [stall.<cause>_ns]. *)

val reset : t -> unit
(** Clear all cells, the total, and the context. *)
