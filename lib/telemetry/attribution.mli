(** Cross-layer stall attribution.

    A ledger charging every simulated nanosecond of runtime stall to
    exactly one cause bucket and a [(function, alloc site, section,
    tenant)] key.  Cells are stored fixed-point (2^-16 ns units) so the
    conservation invariant — the per-cause totals sum to exactly what
    was charged — holds bit-exactly regardless of aggregation order.
    [check] performs the double-entry audit and is asserted by tests
    and at report time; on failure it names the offending bucket and
    the exact fixed-point remainder. *)

type cause =
  | Demand_wire  (** wire + propagation time of the successful transfer *)
  | Queueing  (** link/doorbell/window queueing ahead of the transfer *)
  | Retry  (** loss-detection timeouts and retransmission backoff *)
  | Fence  (** ordering fences (e.g. write fence before an offload RPC) *)
  | Writeback  (** synchronous writeback backpressure *)
  | Failover_recovery  (** node-failure detection and failover recovery *)
  | Reconfig  (** reconfiguration barriers between program sections *)
  | Reconstruct
      (** degraded reads served by erasure-decoding k survivor chunks
          while a far node is down *)

type t

val causes : cause list
(** All causes, in canonical (index) order. *)

val cause_name : cause -> string
(** Stable snake_case name, as used in metric names and flame stacks. *)

val fp_of_ns : float -> int64
(** Nanoseconds to ledger fixed point (2^-16 ns units). *)

val ns_of_fp : int64 -> float

val create : unit -> t
(** A fresh, enabled ledger with empty context. *)

val set_enabled : t -> bool -> unit
(** When disabled, [charge] is a no-op; flipping this never touches
    simulated state. *)

val enabled : t -> bool

val set_context : t -> fn:string -> site:int -> unit
(** Set the attribution context subsequent charges are keyed under:
    the innermost profiled function and the allocation site being
    accessed ([site = -1] when not site-bound).  Leaves the tenant
    untouched — tenants change on task switches, fn/site change within
    a task. *)

val set_tenant : t -> int -> unit
(** Set the tenant subsequent charges are keyed under ([-1] = not
    tenant-bound, the initial state). *)

val clear_context : t -> unit
val context : t -> string * int
val context_tenant : t -> int

val set_queue_sink :
  t -> (tenant:int -> holders:(int * int) list -> int64 -> unit) -> unit
(** Install the queue-stall observer: every [Queueing] charge that
    passes the positivity guard invokes it with the context tenant,
    the charge's [holders] list, and the {e exact} fixed-point amount
    added to the ledger — the hook the net interference matrix hangs
    off, making its row sums equal the queue-stall buckets by
    construction.  At most one sink; survives [reset]. *)

val charge :
  t -> ?section:string -> ?holders:(int * int) list -> cause -> float -> unit
(** [charge t ~section cause ns] adds [ns] (simulated nanoseconds;
    non-positive amounts are ignored) under the current context.
    [section] defaults to ["-"].  [holders] (default empty) is
    forwarded to the queue sink for [Queueing] charges: the
    [(tenant, in-flight slots)] pairs that held the net window while
    this stall accrued. *)

val charge_parts :
  t -> ?section:string -> ?holders:(int * int) list ->
  (cause * float) list -> unit

val split_stall :
  stall:float ->
  wire_ns:float ->
  queue_ns:float ->
  retry_ns:float ->
  (cause * float) list
(** Split a measured await-site stall (which may be shorter than the
    request's full latency, because the CPU overlapped part of it)
    across [Demand_wire]/[Retry]/[Queueing] tail-first.  The returned
    parts sum exactly to [stall]. *)

val unbalance_for_test : t -> cause -> int64 -> unit
(** Corrupt the online totals without touching any cell — the audit
    failure is unreachable through [charge], so tests use this to pin
    [check]'s named-bucket error message.  Never call outside tests. *)

val total_ns : t -> float
(** Everything charged since the last [reset], in ns. *)

val cause_ns : t -> cause -> float
val by_cause : t -> (cause * float) list

val tenant_cause_fp : t -> tenant:int -> cause -> int64
(** Exact fixed-point sum over all cells of one tenant and cause —
    e.g. [tenant_cause_fp t ~tenant Queueing] is the queue-stall
    bucket the interference matrix row must equal. *)

val tenants_seen : t -> int list
(** Distinct tenant keys with at least one cell, sorted ([-1] = the
    not-tenant-bound context). *)

val by_section : t -> (string * float * (cause * float) list) list
(** Per-section rows: [(section, total_ns, per-cause breakdown)], in
    deterministic order.  Likewise [by_site] ([site<N>] labels),
    [by_function], and [by_tenant] ([t<N>] labels, ["-"] for
    non-tenant-bound cells). *)

val by_site : t -> (string * float * (cause * float) list) list
val by_function : t -> (string * float * (cause * float) list) list
val by_tenant : t -> (string * float * (cause * float) list) list

val check : t -> (unit, string) result
(** Double-entry audit: the cells must sum, per cause and in total, to
    the online totals accumulated by [charge].  The error message
    names the first offending bucket and its exact fixed-point
    remainder. *)

val unattributed_ns : t -> float
(** The audit remainder; exactly [0.] when [check] passes. *)

val folded : t -> string
(** Folded flame stacks: one line per [fn;site;cause count_ns], counts
    in whole nanoseconds, loadable by FlameGraph / speedscope. *)

val to_json : t -> Json.t
val publish : t -> Metrics.t -> unit
(** Publish per-cause gauges [stall.<cause>_ns]. *)

val reset : t -> unit
(** Clear all cells, the totals, and the context (the queue sink
    survives). *)
