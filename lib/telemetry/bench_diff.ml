(* Comparison logic for the perf-regression gate: two BENCH_*.json
   documents (written by the bench harness sweep) are matched row by
   row and system by system, and simulated work times are compared
   with a relative noise tolerance.  Pure (no I/O beyond [load]) so
   the test suite can drive it on synthetic documents. *)

type outcome = Time_ms of float | Failed of string

type row = {
  r_key : string;
  r_systems : (string * outcome) list;
}

type doc = {
  d_title : string;
  d_native_work_ms : float option;
  d_rows : row list;
}

let ( let* ) = Result.bind

let rec collect f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = collect f rest in
    Ok (y :: ys)

let system_of_json j =
  match Json.member "system" j with
  | Some (Json.Str name) -> (
    match Json.member "failed" j with
    | Some (Json.Str msg) -> Ok (name, Failed msg)
    | Some _ -> Error (Printf.sprintf "system %S: non-string \"failed\"" name)
    | None -> (
      match Option.bind (Json.member "work_ms" j) Json.to_float_opt with
      | Some ms -> Ok (name, Time_ms ms)
      | None ->
        Error
          (Printf.sprintf "system %S: neither \"work_ms\" nor \"failed\"" name)))
  | _ -> Error "system entry without a string \"system\" field"

(* Two row shapes share the gate.  Sweep documents (BENCH_micro) key
   rows by local-memory ratio and nest per-system outcomes; dataplane
   and chaos documents key rows by a config string (plus a seed for
   chaos) and report a single flat [work_ms].  Both reduce to a string
   key and a [(system, outcome)] list. *)
let row_of_json j =
  match Option.bind (Json.member "ratio" j) Json.to_float_opt with
  | Some ratio -> (
    let r_key = Printf.sprintf "ratio=%g" ratio in
    match Json.member "systems" j with
    | Some (Json.List systems) ->
      let* r_systems = collect system_of_json systems in
      Ok { r_key; r_systems }
    | _ -> Error (Printf.sprintf "row %s without a \"systems\" list" r_key))
  | None -> (
    match Json.member "config" j with
    | Some (Json.Str config) -> (
      let r_key =
        match Option.bind (Json.member "seed" j) Json.to_float_opt with
        | Some seed -> Printf.sprintf "%s seed=%g" config seed
        | None -> config
      in
      match Json.member "failed" j with
      | Some (Json.Str msg) -> Ok { r_key; r_systems = [ ("work_ms", Failed msg) ] }
      | Some _ -> Error (Printf.sprintf "row %s: non-string \"failed\"" r_key)
      | None -> (
        match Option.bind (Json.member "work_ms" j) Json.to_float_opt with
        | Some ms -> Ok { r_key; r_systems = [ ("work_ms", Time_ms ms) ] }
        | None ->
          Error
            (Printf.sprintf "row %s: neither \"work_ms\" nor \"failed\"" r_key)))
    | _ -> Error "row without a numeric \"ratio\" or string \"config\" field")

let of_json j =
  let d_title =
    match Json.member "title" j with Some (Json.Str s) -> s | _ -> ""
  in
  let d_native_work_ms =
    Option.bind (Json.member "native_work_ms" j) Json.to_float_opt
  in
  match Json.member "rows" j with
  | Some (Json.List rows) ->
    let* d_rows = collect row_of_json rows in
    Ok { d_title; d_native_work_ms; d_rows }
  | _ -> Error "document without a \"rows\" list"

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents -> (
    match Json.parse contents with
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
    | Ok j -> (
      match of_json j with
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
      | Ok doc -> Ok doc))

type verdict = {
  v_regressions : string list;
  v_improvements : string list;
  v_notes : string list;
  v_compared : int;
}

let compare_time ~tolerance ~label ~base ~cand acc =
  let regressions, improvements, compared = acc in
  if base <= 0.0 then
    ( regressions,
      Printf.sprintf "%s: baseline time %g ms not comparable" label base
      :: improvements,
      compared )
  else
    let rel = (cand -. base) /. base in
    let line =
      Printf.sprintf "%s: %.3f ms -> %.3f ms (%+.1f%%, tolerance %.1f%%)" label
        base cand (100.0 *. rel) (100.0 *. tolerance)
    in
    if rel > tolerance then (line :: regressions, improvements, compared + 1)
    else if rel < -.tolerance then
      (regressions, line :: improvements, compared + 1)
    else (regressions, improvements, compared + 1)

let compare_docs ~tolerance ~baseline ~candidate =
  let regressions = ref [] and improvements = ref [] and notes = ref [] in
  let compared = ref 0 in
  let note fmt = Printf.ksprintf (fun s -> notes := s :: !notes) fmt in
  let regress fmt = Printf.ksprintf (fun s -> regressions := s :: !regressions) fmt in
  if baseline.d_title <> candidate.d_title then
    note "title mismatch: baseline %S vs candidate %S" baseline.d_title
      candidate.d_title;
  (match (baseline.d_native_work_ms, candidate.d_native_work_ms) with
  | Some b, Some c ->
    let r, i, n =
      compare_time ~tolerance ~label:"native" ~base:b ~cand:c
        (!regressions, !improvements, !compared)
    in
    regressions := r;
    improvements := i;
    compared := n
  | Some _, None -> regress "native_work_ms missing from candidate"
  | None, _ -> ());
  List.iter
    (fun brow ->
      match
        List.find_opt (fun c -> String.equal c.r_key brow.r_key)
          candidate.d_rows
      with
      | None -> regress "row %s missing from candidate" brow.r_key
      | Some crow ->
        List.iter
          (fun (name, bout) ->
            let label = Printf.sprintf "%s %s" brow.r_key name in
            match (bout, List.assoc_opt name crow.r_systems) with
            | _, None -> regress "%s missing from candidate" label
            | Time_ms b, Some (Time_ms c) ->
              let r, i, n =
                compare_time ~tolerance ~label ~base:b ~cand:c
                  (!regressions, !improvements, !compared)
              in
              regressions := r;
              improvements := i;
              compared := n
            | Time_ms b, Some (Failed msg) ->
              regress "%s: ran in %.3f ms in baseline, now fails (%s)" label b
                msg
            | Failed _, Some (Time_ms c) ->
              improvements :=
                Printf.sprintf "%s: failed in baseline, now runs in %.3f ms"
                  label c
                :: !improvements
            | Failed _, Some (Failed _) -> ())
          brow.r_systems;
        List.iter
          (fun (name, _) ->
            if not (List.mem_assoc name brow.r_systems) then
              note "%s %s: new system not in baseline" brow.r_key name)
          crow.r_systems)
    baseline.d_rows;
  List.iter
    (fun crow ->
      if
        not
          (List.exists (fun b -> String.equal b.r_key crow.r_key)
             baseline.d_rows)
      then note "row %s is new in candidate" crow.r_key)
    candidate.d_rows;
  {
    v_regressions = List.rev !regressions;
    v_improvements = List.rev !improvements;
    v_notes = List.rev !notes;
    v_compared = !compared;
  }
