(** Perf-regression gate over [BENCH_*.json] documents.

    The bench harness writes one JSON document per figure.  Sweep
    documents (BENCH_micro) key rows by local-memory ratio and nest
    per-system simulated work times; dataplane and chaos documents key
    rows by a config string (plus a seed for chaos) with one flat
    [work_ms].  This module parses either shape into string-keyed rows
    and compares two documents (a committed baseline and a fresh
    candidate) with a relative noise tolerance.  The comparison is
    pure so the test suite can exercise it on synthetic documents;
    [bin bench/mira_bench_diff] wraps it as a CLI that CI runs. *)

type outcome =
  | Time_ms of float  (** simulated work time in milliseconds *)
  | Failed of string  (** the system could not run (e.g. AIFM OOM) *)

type row = {
  r_key : string;
      (** ["ratio=<g>"] for sweep rows, ["<config>"] or
          ["<config> seed=<n>"] for dataplane/chaos rows *)
  r_systems : (string * outcome) list;
      (** per-system outcomes; flat rows get a single ["work_ms"]
          pseudo-system *)
}

type doc = {
  d_title : string;
  d_native_work_ms : float option;
  d_rows : row list;
}

val of_json : Json.t -> (doc, string) result
(** Parse a BENCH document.  [Error] names the first malformed field. *)

val load : string -> (doc, string) result
(** Read and parse a BENCH file.  [Error] covers unreadable files,
    malformed JSON, and schema violations (message includes the path). *)

type verdict = {
  v_regressions : string list;
      (** one human-readable line per regression: a system slower than
          baseline beyond tolerance, a run that now fails, or a
          baseline row/system missing from the candidate *)
  v_improvements : string list;  (** faster beyond tolerance, or fixed *)
  v_notes : string list;  (** coverage drift that is not a regression *)
  v_compared : int;  (** number of (row, system) time pairs compared *)
}

val compare_docs : tolerance:float -> baseline:doc -> candidate:doc -> verdict
(** Match rows by key and systems by name; a candidate time more
    than [tolerance] (relative, e.g. [0.05] = 5%) above baseline is a
    regression.  Rows or systems present in baseline but missing from
    the candidate are regressions (silent coverage loss); new ones are
    notes. *)
