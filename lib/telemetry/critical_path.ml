(* Critical-path analysis over causal span trees.

   Spans are reconstructed from the trace sink's async Begin/End pairs
   and arranged into containment trees (parent id 0 = root or
   flow-linked).  Each exemplar recorded by a [Metrics] histogram names
   a trace id; the analyzer walks that trace's root tree and decomposes
   the root's end-to-end duration into cause segments using self-time:

     self(s) = dur(s) - sum(dur(child) for parented children of s)

   computed in 2^-16 ns fixed point (the [Attribution] ledger's unit).
   Every non-root parented span appears exactly once as someone's
   child, so the self-times telescope: their sum equals the root's
   duration EXACTLY, as int64 arithmetic — the decomposition is audited
   by construction, never "approximately adds up". *)

(* Same fixed-point unit as [Attribution]. *)
let fp_scale = 65536.0
let fp_of_ns ns = Int64.of_float (ns *. fp_scale)
let ns_of_fp fp = Int64.to_float fp /. fp_scale

type span = {
  s_id : int;
  s_trace : int;
  s_parent : int;
  s_name : string;
  s_cat : string;
  s_lane : string;
  s_begin_ns : float;
  s_end_ns : float;
  s_args : (string * Json.t) list;  (* begin-side args *)
}

(* --- schema validation --------------------------------------------------- *)

(* Structural invariants of an emitted trace:
   - every End pairs with exactly one earlier Begin of the same span id
     and trace id, and never runs backwards in time;
   - every Begin is eventually Ended;
   - a nonzero parent names a Begin-ed span of the same trace, and the
     child's [begin, end] interval nests inside the parent's;
   - every flow start/end pair refers to a span that exists. *)
let validate evs =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let begins = Hashtbl.create 64 in
  let ended = Hashtbl.create 64 in
  List.iter
    (fun (ev : Trace.event) ->
      match ev.Trace.ev_phase with
      | Trace.Begin ->
        if ev.Trace.ev_span = 0 then err "begin %S without a span id" ev.Trace.ev_name;
        if Hashtbl.mem begins ev.Trace.ev_span then
          err "span %d begun twice" ev.Trace.ev_span
        else Hashtbl.replace begins ev.Trace.ev_span ev
      | Trace.End -> (
        match Hashtbl.find_opt begins ev.Trace.ev_span with
        | None -> err "end of span %d without a begin" ev.Trace.ev_span
        | Some b ->
          if Hashtbl.mem ended ev.Trace.ev_span then
            err "span %d ended twice" ev.Trace.ev_span;
          if b.Trace.ev_trace <> ev.Trace.ev_trace then
            err "span %d changes trace id between begin and end"
              ev.Trace.ev_span;
          if ev.Trace.ev_ts_ns < b.Trace.ev_ts_ns then
            err "span %d ends before it begins" ev.Trace.ev_span;
          Hashtbl.replace ended ev.Trace.ev_span ev)
      | _ -> ())
    evs;
  Hashtbl.iter
    (fun id _ ->
      if not (Hashtbl.mem ended id) then err "span %d never ends" id)
    begins;
  (* Parent existence and containment. *)
  Hashtbl.iter
    (fun id (b : Trace.event) ->
      let parent = b.Trace.ev_parent in
      if parent <> 0 then
        match (Hashtbl.find_opt begins parent, Hashtbl.find_opt ended id) with
        | None, _ -> err "span %d has unknown parent %d" id parent
        | Some pb, Some e -> (
          if pb.Trace.ev_trace <> b.Trace.ev_trace then
            err "span %d and parent %d are in different traces" id parent;
          match Hashtbl.find_opt ended parent with
          | None -> ()
          | Some pe ->
            if
              b.Trace.ev_ts_ns < pb.Trace.ev_ts_ns
              || e.Trace.ev_ts_ns > pe.Trace.ev_ts_ns
            then
              err "span %d [%g, %g] does not nest within parent %d [%g, %g]"
                id b.Trace.ev_ts_ns e.Trace.ev_ts_ns parent pb.Trace.ev_ts_ns
                pe.Trace.ev_ts_ns)
        | Some _, None -> ())
    begins;
  (* Flow referential integrity. *)
  let flow_starts = Hashtbl.create 16 in
  let flow_ends = Hashtbl.create 16 in
  List.iter
    (fun (ev : Trace.event) ->
      match ev.Trace.ev_phase with
      | Trace.Flow_start -> Hashtbl.replace flow_starts ev.Trace.ev_span ev
      | Trace.Flow_end -> Hashtbl.replace flow_ends ev.Trace.ev_span ev
      | _ -> ())
    evs;
  Hashtbl.iter
    (fun id _ ->
      if not (Hashtbl.mem flow_ends id) then
        err "flow %d started but never bound" id;
      if not (Hashtbl.mem begins id) then
        err "flow %d refers to an unknown span" id)
    flow_starts;
  Hashtbl.iter
    (fun id _ ->
      if not (Hashtbl.mem flow_starts id) then
        err "flow %d bound but never started" id)
    flow_ends;
  List.rev !errors

(* --- span reconstruction ------------------------------------------------- *)

let spans_of_events evs =
  let begins = Hashtbl.create 64 in
  let spans = ref [] in
  List.iter
    (fun (ev : Trace.event) ->
      match ev.Trace.ev_phase with
      | Trace.Begin -> Hashtbl.replace begins ev.Trace.ev_span ev
      | Trace.End -> (
        match Hashtbl.find_opt begins ev.Trace.ev_span with
        | None -> ()
        | Some b ->
          Hashtbl.remove begins ev.Trace.ev_span;
          spans :=
            {
              s_id = b.Trace.ev_span;
              s_trace = b.Trace.ev_trace;
              s_parent = b.Trace.ev_parent;
              s_name = b.Trace.ev_name;
              s_cat = b.Trace.ev_cat;
              s_lane = b.Trace.ev_lane;
              s_begin_ns = b.Trace.ev_ts_ns;
              s_end_ns = ev.Trace.ev_ts_ns;
              s_args = b.Trace.ev_args;
            }
            :: !spans)
      | _ -> ())
    evs;
  List.rev !spans

(* --- decomposition ------------------------------------------------------- *)

type segment = Queue | Wire | Retry | Fill | Recovery | Local

let segment_name = function
  | Queue -> "queue"
  | Wire -> "wire"
  | Retry -> "retry"
  | Fill -> "fill"
  | Recovery -> "recovery"
  | Local -> "local"

let all_segments = [ Queue; Wire; Retry; Fill; Recovery; Local ]

type decomposition = {
  d_trace : int;
  d_root : span;
  d_total_fp : int64;
  d_segments : (segment * int64) list;  (* every segment, fp units *)
  d_spans : int;  (* spans in the containment tree *)
}

let arg_float args name =
  match List.assoc_opt name args with
  | Some (Json.Float f) -> f
  | Some (Json.Int i) -> float_of_int i
  | _ -> 0.0

let dur_fp s = Int64.sub (fp_of_ns s.s_end_ns) (fp_of_ns s.s_begin_ns)

(* Decompose the containment tree rooted at [root]: walk every parented
   descendant, credit its self-time to a cause segment.  Net member
   spans split their self-time further into queue/wire/retry using the
   completion's telescoped components (retry takes the exact residual,
   so the split introduces no rounding drift). *)
let decompose spans ~root =
  let children = Hashtbl.create 16 in
  List.iter
    (fun s ->
      if s.s_parent <> 0 then
        Hashtbl.replace children s.s_parent
          (s :: Option.value ~default:[] (Hashtbl.find_opt children s.s_parent)))
    spans;
  let totals = Hashtbl.create 8 in
  let credit seg fp =
    Hashtbl.replace totals seg
      (Int64.add fp (Option.value ~default:0L (Hashtbl.find_opt totals seg)))
  in
  let count = ref 0 in
  let rec walk s =
    incr count;
    let kids = Option.value ~default:[] (Hashtbl.find_opt children s.s_id) in
    let kids_fp =
      List.fold_left (fun acc k -> Int64.add acc (dur_fp k)) 0L kids
    in
    let self = Int64.sub (dur_fp s) kids_fp in
    (if s.s_cat = "net" then begin
       let q = fp_of_ns (arg_float s.s_args "queue_ns") in
       let w = fp_of_ns (arg_float s.s_args "wire_ns") in
       (* Residual keeps the sum exact even where q + w round off. *)
       let r = Int64.sub self (Int64.add q w) in
       credit Queue q;
       credit Wire w;
       credit Retry r
     end
     else
       let seg =
         if s.s_name = "failover" then Recovery
         else if s.s_cat = "cache" then Fill
         else Local
       in
       credit seg self);
    List.iter walk kids
  in
  walk root;
  {
    d_trace = root.s_trace;
    d_root = root;
    d_total_fp = dur_fp root;
    d_segments =
      List.map
        (fun seg ->
          (seg, Option.value ~default:0L (Hashtbl.find_opt totals seg)))
        all_segments;
    d_spans = !count;
  }

(* The root of a trace's containment tree: the first-minted span with
   no parent.  Flow-linked spans of the same trace are also parentless
   but minted later (children are created while their originator runs),
   so minimum span id picks the originating deref/fault. *)
let root_of spans ~trace =
  List.fold_left
    (fun acc s ->
      if s.s_trace = trace && s.s_parent = 0 then
        match acc with
        | Some best when best.s_id <= s.s_id -> acc
        | _ -> Some s
      else acc)
    None spans

let analyze evs ~trace =
  let spans = spans_of_events evs in
  Option.map (fun root -> decompose spans ~root) (root_of spans ~trace)

(* --- exemplar reports ---------------------------------------------------- *)

type exemplar_path = {
  p_hist : string;
  p_exemplar : Metrics.exemplar;
  p_decomp : decomposition;
}

(* Every traced exemplar of every histogram in [reg], decomposed.
   Exemplars without a trace id (tracing off, or the sample predates
   enabling) and traces whose spans were dropped from the sink buffer
   are skipped. *)
let paths reg evs =
  let spans = spans_of_events evs in
  List.concat_map
    (fun name ->
      match Metrics.find reg name with
      | Some (Metrics.Hist h) ->
        List.filter_map
          (fun (ex : Metrics.exemplar) ->
            if ex.Metrics.ex_trace = 0 then None
            else
              Option.map
                (fun root ->
                  {
                    p_hist = name;
                    p_exemplar = ex;
                    p_decomp = decompose spans ~root;
                  })
                (root_of spans ~trace:ex.Metrics.ex_trace))
          (Metrics.hist_exemplars h)
      | _ -> [])
    (Metrics.names reg)

let decomposition_to_json d =
  Json.Obj
    [
      ("trace", Json.Int d.d_trace);
      ("root", Json.Int d.d_root.s_id);
      ("root_name", Json.Str d.d_root.s_name);
      ("root_lane", Json.Str d.d_root.s_lane);
      ("spans", Json.Int d.d_spans);
      ("total_ns", Json.Float (ns_of_fp d.d_total_fp));
      ("total_fp", Json.Str (Int64.to_string d.d_total_fp));
      ( "segments_ns",
        Json.Obj
          (List.map
             (fun (seg, fp) -> (segment_name seg, Json.Float (ns_of_fp fp)))
             d.d_segments) );
      ( "segments_fp",
        Json.Obj
          (List.map
             (fun (seg, fp) -> (segment_name seg, Json.Str (Int64.to_string fp)))
             d.d_segments) );
    ]

let path_to_json p =
  Json.Obj
    [
      ("hist", Json.Str p.p_hist);
      ("value_ns", Json.Float p.p_exemplar.Metrics.ex_value_ns);
      ("seq", Json.Int p.p_exemplar.Metrics.ex_seq);
      ("critical_path", decomposition_to_json p.p_decomp);
    ]

let report reg evs =
  let ps = paths reg evs in
  let errors = validate evs in
  Json.Obj
    [
      (* A capped sink truncates span groups, so validation is only
         conclusive when nothing was dropped. *)
      ("dropped_events", Json.Int (Trace.dropped ()));
      ("schema_errors", Json.List (List.map (fun e -> Json.Str e) errors));
      ("exemplars", Json.List (List.map path_to_json ps));
    ]

(* Folded text form (flamegraph-style): one line per exemplar segment,
   [hist;root_name;segment <fp>], fp = 2^-16 ns so lines for one
   exemplar sum exactly to its total. *)
let folded reg evs =
  let buf = Buffer.create 1024 in
  List.iter
    (fun p ->
      List.iter
        (fun (seg, fp) ->
          if Int64.compare fp 0L <> 0 then
            Buffer.add_string buf
              (Printf.sprintf "%s;%s;%s %Ld\n" p.p_hist p.p_decomp.d_root.s_name
                 (segment_name seg) fp))
        p.p_decomp.d_segments)
    (paths reg evs);
  Buffer.contents buf
