(** Critical-path analysis over causal span trees.

    Reconstructs spans from the trace sink's async Begin/End events,
    validates the schema (b/e pairing, parent containment, flow
    referential integrity), and decomposes each tail exemplar's
    end-to-end latency into cause segments
    (queue/wire/retry/fill/recovery/local) by self-time in the
    attribution ledger's 2^-16 ns fixed point.  Self-times telescope,
    so a decomposition's segments sum to the root span's duration
    {e exactly} (int64 equality, not within-epsilon). *)

type span = {
  s_id : int;
  s_trace : int;
  s_parent : int;  (** 0 = root or flow-linked *)
  s_name : string;
  s_cat : string;
  s_lane : string;
  s_begin_ns : float;
  s_end_ns : float;
  s_args : (string * Json.t) list;  (** begin-side args *)
}

val validate : Trace.event list -> string list
(** Schema errors (empty = well-formed): every end matches a begin of
    the same span and trace and does not precede it, every begin ends,
    nonzero parents exist in the same trace and contain their children,
    and every flow start/end pair resolves to an emitted span. *)

val spans_of_events : Trace.event list -> span list
(** Completed spans, in end order.  Unmatched begins are dropped. *)

type segment = Queue | Wire | Retry | Fill | Recovery | Local

val segment_name : segment -> string
val all_segments : segment list

type decomposition = {
  d_trace : int;
  d_root : span;
  d_total_fp : int64;  (** root duration, 2^-16 ns units *)
  d_segments : (segment * int64) list;
      (** every segment once, fp units; sums exactly to [d_total_fp] *)
  d_spans : int;  (** spans walked in the containment tree *)
}

val decompose : span list -> root:span -> decomposition

val root_of : span list -> trace:int -> span option
(** The first-minted parentless span of [trace] — the originating
    deref/fault rather than any later flow-linked child. *)

val analyze : Trace.event list -> trace:int -> decomposition option
(** [root_of] + [decompose] over reconstructed spans. *)

type exemplar_path = {
  p_hist : string;
  p_exemplar : Metrics.exemplar;
  p_decomp : decomposition;
}

val paths : Metrics.t -> Trace.event list -> exemplar_path list
(** Decompositions for every traced exemplar of every histogram in the
    registry; untraced exemplars and traces whose spans were dropped
    are skipped. *)

val decomposition_to_json : decomposition -> Json.t

val report : Metrics.t -> Trace.event list -> Json.t
(** [{dropped_events, schema_errors, exemplars: [{hist, value_ns, seq,
    critical_path}]}].  [dropped_events] is the sink's drop counter: a
    capped buffer truncates span groups, so [schema_errors] is only
    conclusive when it is zero. *)

val folded : Metrics.t -> Trace.event list -> string
(** Flamegraph-style lines [hist;root_name;segment <fp>], one per
    nonzero segment; an exemplar's lines sum exactly to its root
    duration in fp units. *)
