type t =
  | Profile_run of { iteration : int; work_ns : float }
  | Select of { iteration : int; functions : string list; sites : int list }
  | Analyze of {
      iteration : int;
      site : int;
      pattern : string;
      elem : int;
      read_only : bool;
      write_only : bool;
    }
  | Plan_section of {
      iteration : int;
      name : string;
      line : int;
      size : int;
      structure : string;
      sites : int list;
    }
  | Size_sample of { iteration : int; sec_id : int; size : int; work_ns : float }
  | Joint_sample of { iteration : int; work_ns : float }
  | Placement_sample of { iteration : int; placement : string; work_ns : float }
  | Measure of { iteration : int; work_ns : float; best_ns : float }
  | Accept of { iteration : int; work_ns : float }
  | Rollback of { iteration : int; reason : string }

let iteration = function
  | Profile_run { iteration; _ }
  | Select { iteration; _ }
  | Analyze { iteration; _ }
  | Plan_section { iteration; _ }
  | Size_sample { iteration; _ }
  | Joint_sample { iteration; _ }
  | Placement_sample { iteration; _ }
  | Measure { iteration; _ }
  | Accept { iteration; _ }
  | Rollback { iteration; _ } ->
    iteration

let name = function
  | Profile_run _ -> "profile_run"
  | Select _ -> "select"
  | Analyze _ -> "analyze"
  | Plan_section _ -> "plan_section"
  | Size_sample _ -> "size_sample"
  | Joint_sample _ -> "joint_sample"
  | Placement_sample _ -> "placement_sample"
  | Measure _ -> "measure"
  | Accept _ -> "accept"
  | Rollback _ -> "rollback"

let ints xs = String.concat "," (List.map string_of_int xs)

let render = function
  | Profile_run { iteration = 0; work_ns } ->
    Printf.sprintf "initial swap run: work=%.3f ms" (work_ns /. 1e6)
  | Profile_run { iteration; work_ns } ->
    Printf.sprintf "profile run %d: work=%.3f ms" iteration (work_ns /. 1e6)
  | Select { iteration; functions; sites } ->
    Printf.sprintf "iteration %d: functions=[%s] sites=[%s]" iteration
      (String.concat "," functions) (ints sites)
  | Analyze { site; pattern; elem; read_only; write_only; _ } ->
    Printf.sprintf "  site %d: %s elem=%dB ro=%b wo=%b" site pattern elem
      read_only write_only
  | Plan_section { name; line; size; structure; sites; _ } ->
    Printf.sprintf "  section %s line=%dB size=%dK %s sites=[%s]" name line
      (size / 1024) structure (ints sites)
  | Size_sample { sec_id; size; work_ns; _ } ->
    Printf.sprintf "  sample sec%d size=%dK work=%.2fms" sec_id (size / 1024)
      (work_ns /. 1e6)
  | Joint_sample { work_ns; _ } ->
    Printf.sprintf "  joint allocation: work=%.2fms" (work_ns /. 1e6)
  | Placement_sample { placement; work_ns; _ } ->
    Printf.sprintf "  sample placement=%s work=%.2fms" placement
      (work_ns /. 1e6)
  | Measure { iteration; work_ns; best_ns } ->
    Printf.sprintf "iteration %d: work=%.3f ms (best %.3f ms)" iteration
      (work_ns /. 1e6) (best_ns /. 1e6)
  | Accept { iteration; work_ns } ->
    Printf.sprintf "iteration %d: accepted at %.3f ms" iteration (work_ns /. 1e6)
  | Rollback { iteration; reason } ->
    Printf.sprintf "iteration %d: %s, rolling back" iteration reason

let to_json d =
  let tag n fields =
    Json.Obj (("event", Json.Str n) :: ("iteration", Json.Int (iteration d)) :: fields)
  in
  match d with
  | Profile_run { work_ns; _ } -> tag "profile_run" [ ("work_ns", Json.Float work_ns) ]
  | Select { functions; sites; _ } ->
    tag "select"
      [
        ("functions", Json.List (List.map (fun f -> Json.Str f) functions));
        ("sites", Json.List (List.map (fun s -> Json.Int s) sites));
      ]
  | Analyze { site; pattern; elem; read_only; write_only; _ } ->
    tag "analyze"
      [
        ("site", Json.Int site);
        ("pattern", Json.Str pattern);
        ("elem_bytes", Json.Int elem);
        ("read_only", Json.Bool read_only);
        ("write_only", Json.Bool write_only);
      ]
  | Plan_section { name; line; size; structure; sites; _ } ->
    tag "plan_section"
      [
        ("section", Json.Str name);
        ("line_bytes", Json.Int line);
        ("size_bytes", Json.Int size);
        ("structure", Json.Str structure);
        ("sites", Json.List (List.map (fun s -> Json.Int s) sites));
      ]
  | Size_sample { sec_id; size; work_ns; _ } ->
    tag "size_sample"
      [
        ("sec_id", Json.Int sec_id);
        ("size_bytes", Json.Int size);
        ("work_ns", Json.Float work_ns);
      ]
  | Joint_sample { work_ns; _ } ->
    tag "joint_sample" [ ("work_ns", Json.Float work_ns) ]
  | Placement_sample { placement; work_ns; _ } ->
    tag "placement_sample"
      [ ("placement", Json.Str placement); ("work_ns", Json.Float work_ns) ]
  | Measure { work_ns; best_ns; _ } ->
    tag "measure"
      [ ("work_ns", Json.Float work_ns); ("best_ns", Json.Float best_ns) ]
  | Accept { work_ns; _ } -> tag "accept" [ ("work_ns", Json.Float work_ns) ]
  | Rollback { reason; _ } -> tag "rollback" [ ("reason", Json.Str reason) ]
