(** Typed controller decision events.

    The iterative controller used to keep its decision trace as a
    [string list]; these constructors replace it with structured data
    that reports, benches, and traces can consume directly.  [render]
    is the backwards-compatible shim producing (approximately) the old
    log lines; [to_json] feeds [--json] reports and [BENCH_*.json].

    Iteration 0 is the initial swap-everything profiling run; the
    optimization rounds are 1-based, matching the paper's §3 flow:
    profile → select → analyze → plan → size → compile →
    accept/rollback. *)

type t =
  | Profile_run of { iteration : int; work_ns : float }
      (** a fully-instrumented measurement run completed *)
  | Select of { iteration : int; functions : string list; sites : int list }
      (** top-overhead functions and their largest/hottest sites *)
  | Analyze of {
      iteration : int;
      site : int;
      pattern : string;
      elem : int;
      read_only : bool;
      write_only : bool;
    }  (** merged access-pattern summary for one selected site *)
  | Plan_section of {
      iteration : int;
      name : string;
      line : int;
      size : int;
      structure : string;
      sites : int list;
    }  (** one section of the accepted plan, with its sized capacity *)
  | Size_sample of { iteration : int; sec_id : int; size : int; work_ns : float }
      (** one sampled (section, size) profiling run *)
  | Joint_sample of { iteration : int; work_ns : float }
      (** one whole-allocation candidate measurement *)
  | Placement_sample of { iteration : int; placement : string; work_ns : float }
      (** one sampled cluster data-plane layout (stripe-to-node
          placement) measurement *)
  | Measure of { iteration : int; work_ns : float; best_ns : float }
      (** the compiled candidate's measured work time vs best so far *)
  | Accept of { iteration : int; work_ns : float }
  | Rollback of { iteration : int; reason : string }

val iteration : t -> int

val name : t -> string
(** Constructor tag ([accept], [rollback], ...), as used in JSON and
    trace event names. *)

val render : t -> string
val to_json : t -> Json.t
(** [{"event": ..., "iteration": ..., ...}] — field set depends on the
    constructor; see docs/OBSERVABILITY.md. *)
