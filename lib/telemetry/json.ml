type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- writer -------------------------------------------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to buf f =
  if Float.is_nan f || f = infinity || f = neg_infinity then
    Buffer.add_string buf "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" f)
  else Buffer.add_string buf (Printf.sprintf "%.12g" f)

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> float_to buf f
  | Str s -> escape_to buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

let rec pretty buf indent = function
  | (Null | Bool _ | Int _ | Float _ | Str _) as v -> to_buffer buf v
  | List [] -> Buffer.add_string buf "[]"
  | List xs ->
    let pad = String.make (indent + 2) ' ' in
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad;
        pretty buf (indent + 2) x)
      xs;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (String.make indent ' ');
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    let pad = String.make (indent + 2) ' ' in
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad;
        escape_to buf k;
        Buffer.add_string buf ": ";
        pretty buf (indent + 2) v)
      fields;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (String.make indent ' ');
    Buffer.add_char buf '}'

let to_string_pretty v =
  let buf = Buffer.create 1024 in
  pretty buf 0 v;
  Buffer.contents buf

(* --- parser -------------------------------------------------------------- *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let error c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))
let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.src
    && match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | _ -> error c (Printf.sprintf "expected '%c'" ch)

let literal c word v =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    v
  end
  else error c ("expected " ^ word)

let hex4 c =
  if c.pos + 4 > String.length c.src then error c "truncated \\u escape";
  let v = int_of_string ("0x" ^ String.sub c.src c.pos 4) in
  c.pos <- c.pos + 4;
  v

(* UTF-8-encode a code point; surrogates collapse to U+FFFD. *)
let add_utf8 buf cp =
  let cp = if cp >= 0xD800 && cp <= 0xDFFF then 0xFFFD else cp in
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> error c "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' ->
      c.pos <- c.pos + 1;
      (match peek c with
      | Some '"' -> Buffer.add_char buf '"'; c.pos <- c.pos + 1
      | Some '\\' -> Buffer.add_char buf '\\'; c.pos <- c.pos + 1
      | Some '/' -> Buffer.add_char buf '/'; c.pos <- c.pos + 1
      | Some 'n' -> Buffer.add_char buf '\n'; c.pos <- c.pos + 1
      | Some 't' -> Buffer.add_char buf '\t'; c.pos <- c.pos + 1
      | Some 'r' -> Buffer.add_char buf '\r'; c.pos <- c.pos + 1
      | Some 'b' -> Buffer.add_char buf '\b'; c.pos <- c.pos + 1
      | Some 'f' -> Buffer.add_char buf '\012'; c.pos <- c.pos + 1
      | Some 'u' ->
        c.pos <- c.pos + 1;
        add_utf8 buf (hex4 c)
      | _ -> error c "bad escape");
      loop ()
    | Some ch ->
      Buffer.add_char buf ch;
      c.pos <- c.pos + 1;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while c.pos < String.length c.src && is_num c.src.[c.pos] do
    c.pos <- c.pos + 1
  done;
  let s = String.sub c.src start (c.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> error c "bad number")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some '{' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some '}' then begin
      c.pos <- c.pos + 1;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws c;
        let key = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          fields ((key, v) :: acc)
        | Some '}' ->
          c.pos <- c.pos + 1;
          List.rev ((key, v) :: acc)
        | _ -> error c "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some '[' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some ']' then begin
      c.pos <- c.pos + 1;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          items (v :: acc)
        | Some ']' ->
          c.pos <- c.pos + 1;
          List.rev (v :: acc)
        | _ -> error c "expected ',' or ']'"
      in
      List (items [])
    end
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> error c (Printf.sprintf "unexpected '%c'" ch)

let parse s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos <> String.length s then
      Error (Printf.sprintf "trailing garbage at offset %d" c.pos)
    else Ok v
  | exception Parse_error msg -> Error msg

(* --- accessors ----------------------------------------------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_float_opt = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None
