(** Minimal hand-rolled JSON: a value type, a writer, and a parser.

    Used for the machine-readable run reports ([Mira.Report.to_json],
    [bin/mira_compare --json]), the Chrome trace_event sink ([Trace]),
    and the [BENCH_*.json] files the bench harness emits.  The parser
    exists so tests and CI can validate that emitted documents are
    well-formed without external dependencies. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** non-finite values serialize as [null] *)
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string
(** Compact (single-line) rendering. *)

val to_string_pretty : t -> string
(** Two-space indented rendering, for files meant to be read. *)

val parse : string -> (t, string) result
(** Strict parser for the subset this module emits (full JSON minus
    surrogate-pair escapes, which decode to U+FFFD).  The whole string
    must be one document (surrounding whitespace allowed). *)

val member : string -> t -> t option
(** [member key (Obj _)] looks up a field; [None] on missing key or
    non-object. *)

val to_float_opt : t -> float option
(** Numeric accessor: accepts both [Int] and [Float]. *)
