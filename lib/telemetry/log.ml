type level = Quiet | Info | Debug

let current = ref Quiet
let set_level l = current := l
let level () = !current

let rank = function Quiet -> 0 | Info -> 1 | Debug -> 2

let emit at fmt =
  Printf.ksprintf
    (fun s -> if rank !current >= rank at then prerr_endline ("[mira] " ^ s))
    fmt

let info fmt = emit Info fmt
let debug fmt = emit Debug fmt
