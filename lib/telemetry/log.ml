type level = Quiet | Info | Debug

let current = ref Quiet
let set_level l = current := l
let level () = !current

let rank = function Quiet -> 0 | Info -> 1 | Debug -> 2

let emit at fmt =
  (* Decide before formatting: [ksprintf] renders its arguments
     eagerly, so a suppressed level must take the [ikfprintf] path or
     hot-path callers pay the formatting cost for nothing. *)
  if rank !current >= rank at then
    Printf.ksprintf (fun s -> prerr_endline ("[mira] " ^ s)) fmt
  else Printf.ikfprintf (fun () -> ()) () fmt

let info fmt = emit Info fmt
let debug fmt = emit Debug fmt
