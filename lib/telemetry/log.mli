(** Leveled diagnostic logger for the whole stack.

    Replaces the ad-hoc [prerr_endline ("[mira] " ^ s)] sprinkled
    through the controller.  [Quiet] (the default) suppresses
    everything; [Info] is what [--verbose] turns on; [Debug] adds
    high-volume detail.  Messages go to stderr so they never corrupt
    machine-readable stdout/JSON output. *)

type level = Quiet | Info | Debug

val set_level : level -> unit
val level : unit -> level

val info : ('a, unit, string, unit) format4 -> 'a
(** Printed at [Info] and [Debug]. *)

val debug : ('a, unit, string, unit) format4 -> 'a
(** Printed at [Debug] only. *)
