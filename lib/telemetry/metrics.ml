module Stats = Mira_util.Stats

(* Quarter-octave buckets: bucket i covers [2^(i/4), 2^((i+1)/4)) ns.
   176 buckets reach 2^44 ns (~4.8 hours of simulated time), far beyond
   any latency the simulator produces. *)
let buckets_per_octave = 4
let nbuckets = 176

let bucket_of v =
  if v < 1.0 then 0
  else begin
    let idx =
      int_of_float (Float.log2 v *. float_of_int buckets_per_octave)
    in
    Mira_util.Misc.clamp ~lo:0 ~hi:(nbuckets - 1) idx
  end

let bucket_lo i = Float.pow 2.0 (float_of_int i /. float_of_int buckets_per_octave)
let bucket_hi i = bucket_lo (i + 1)

type hist = {
  counts : int array;
  online : Stats.online;
  mutable h_min : float;
  mutable h_max : float;
}

let hist_create () =
  {
    counts = Array.make nbuckets 0;
    online = Stats.online_create ();
    h_min = infinity;
    h_max = neg_infinity;
  }

let hist_observe h v =
  let i = bucket_of v in
  h.counts.(i) <- h.counts.(i) + 1;
  Stats.online_add h.online v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v

let hist_count h = Stats.online_count h.online
let hist_mean h = Stats.online_mean h.online
let hist_stddev h = Stats.online_stddev h.online
let hist_min h = if hist_count h = 0 then 0.0 else h.h_min
let hist_max h = if hist_count h = 0 then 0.0 else h.h_max

let hist_percentile h p =
  let n = hist_count h in
  if n = 0 then 0.0
  else begin
    let rank = p /. 100.0 *. float_of_int n in
    let rec walk i seen =
      if i >= nbuckets then hist_max h
      else begin
        let seen' = seen + h.counts.(i) in
        if float_of_int seen' >= rank && h.counts.(i) > 0 then begin
          (* Linear interpolation inside the bucket's span. *)
          let frac =
            (rank -. float_of_int seen) /. float_of_int h.counts.(i)
          in
          let frac = Mira_util.Misc.clamp_f ~lo:0.0 ~hi:1.0 frac in
          bucket_lo i +. (frac *. (bucket_hi i -. bucket_lo i))
        end
        else walk (i + 1) seen'
      end
    in
    let est = walk 0 0 in
    Mira_util.Misc.clamp_f ~lo:(hist_min h) ~hi:(hist_max h) est
  end

let hist_reset h =
  Array.fill h.counts 0 nbuckets 0;
  Stats.online_reset h.online;
  h.h_min <- infinity;
  h.h_max <- neg_infinity

let hist_to_json h =
  Json.Obj
    [
      ("count", Json.Int (hist_count h));
      ("mean_ns", Json.Float (hist_mean h));
      ("stddev_ns", Json.Float (hist_stddev h));
      ("min_ns", Json.Float (hist_min h));
      ("max_ns", Json.Float (hist_max h));
      ("p50_ns", Json.Float (hist_percentile h 50.0));
      ("p95_ns", Json.Float (hist_percentile h 95.0));
      ("p99_ns", Json.Float (hist_percentile h 99.0));
    ]

(* --- registry ------------------------------------------------------------ *)

type value = Counter of int | Gauge of float | Hist of hist

type t = {
  table : (string, value) Hashtbl.t;
  mutable order : string list;  (* reverse publication order *)
}

let create () = { table = Hashtbl.create 64; order = [] }

let set t name v =
  if Hashtbl.mem t.table name then
    invalid_arg
      (Printf.sprintf
         "Metrics: duplicate metric name %S (two publishers claimed it)" name);
  t.order <- name :: t.order;
  Hashtbl.replace t.table name v

let set_counter t name i = set t name (Counter i)
let set_gauge t name f = set t name (Gauge f)
let set_hist t name h = set t name (Hist h)
let find t name = Hashtbl.find_opt t.table name
let names t = List.rev t.order

let to_json t =
  Json.Obj
    (List.map
       (fun name ->
         ( name,
           match Hashtbl.find t.table name with
           | Counter i -> Json.Int i
           | Gauge f -> Json.Float f
           | Hist h -> hist_to_json h ))
       (names t))
