module Stats = Mira_util.Stats

(* Quarter-octave buckets: bucket i covers [2^(i/4), 2^((i+1)/4)) ns.
   176 buckets reach 2^44 ns (~4.8 hours of simulated time), far beyond
   any latency the simulator produces. *)
let buckets_per_octave = 4
let nbuckets = 176

let bucket_of v =
  if v < 1.0 then 0
  else begin
    let idx =
      int_of_float (Float.log2 v *. float_of_int buckets_per_octave)
    in
    Mira_util.Misc.clamp ~lo:0 ~hi:(nbuckets - 1) idx
  end

let bucket_lo i = Float.pow 2.0 (float_of_int i /. float_of_int buckets_per_octave)
let bucket_hi i = bucket_lo (i + 1)

type exemplar = { ex_value_ns : float; ex_trace : int; ex_seq : int }

let exemplar_cap = 4

type hist = {
  counts : int array;
  online : Stats.online;
  mutable h_min : float;
  mutable h_max : float;
  mutable exemplars : exemplar list;  (* slowest first, at most [exemplar_cap] *)
  mutable obs_seq : int;
}

let hist_create () =
  {
    counts = Array.make nbuckets 0;
    online = Stats.online_create ();
    h_min = infinity;
    h_max = neg_infinity;
    exemplars = [];
    obs_seq = 0;
  }

(* Ranking is total (value desc, then arrival order), so the reservoir
   contents are a deterministic function of the observation stream. *)
let ex_before a b =
  a.ex_value_ns > b.ex_value_ns
  || (a.ex_value_ns = b.ex_value_ns && a.ex_seq < b.ex_seq)

let hist_observe ?(trace = 0) h v =
  let i = bucket_of v in
  h.counts.(i) <- h.counts.(i) + 1;
  Stats.online_add h.online v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  h.obs_seq <- h.obs_seq + 1;
  let ex = { ex_value_ns = v; ex_trace = trace; ex_seq = h.obs_seq } in
  let rec insert = function
    | [] -> [ ex ]
    | x :: rest -> if ex_before ex x then ex :: x :: rest else x :: insert rest
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  h.exemplars <- take exemplar_cap (insert h.exemplars)

let hist_exemplars h = h.exemplars
let hist_count h = Stats.online_count h.online
let hist_mean h = Stats.online_mean h.online
let hist_stddev h = Stats.online_stddev h.online
let hist_min h = if hist_count h = 0 then 0.0 else h.h_min
let hist_max h = if hist_count h = 0 then 0.0 else h.h_max

let hist_percentile h p =
  let n = hist_count h in
  if n = 0 then 0.0
  else begin
    let rank = p /. 100.0 *. float_of_int n in
    let rec walk i seen =
      if i >= nbuckets then hist_max h
      else begin
        let seen' = seen + h.counts.(i) in
        if float_of_int seen' >= rank && h.counts.(i) > 0 then begin
          (* Linear interpolation inside the bucket's span. *)
          let frac =
            (rank -. float_of_int seen) /. float_of_int h.counts.(i)
          in
          let frac = Mira_util.Misc.clamp_f ~lo:0.0 ~hi:1.0 frac in
          bucket_lo i +. (frac *. (bucket_hi i -. bucket_lo i))
        end
        else walk (i + 1) seen'
      end
    in
    let est = walk 0 0 in
    Mira_util.Misc.clamp_f ~lo:(hist_min h) ~hi:(hist_max h) est
  end

let hist_reset h =
  Array.fill h.counts 0 nbuckets 0;
  Stats.online_reset h.online;
  h.h_min <- infinity;
  h.h_max <- neg_infinity;
  h.exemplars <- [];
  h.obs_seq <- 0

let exemplar_to_json e =
  Json.Obj
    [
      ("value_ns", Json.Float e.ex_value_ns);
      ("trace", Json.Int e.ex_trace);
      ("seq", Json.Int e.ex_seq);
    ]

let hist_to_json h =
  let base =
    [
      ("count", Json.Int (hist_count h));
      ("mean_ns", Json.Float (hist_mean h));
      ("stddev_ns", Json.Float (hist_stddev h));
      ("min_ns", Json.Float (hist_min h));
      ("max_ns", Json.Float (hist_max h));
      ("p50_ns", Json.Float (hist_percentile h 50.0));
      ("p95_ns", Json.Float (hist_percentile h 95.0));
      ("p99_ns", Json.Float (hist_percentile h 99.0));
      ("p999_ns", Json.Float (hist_percentile h 99.9));
    ]
  in
  (* Exemplars appear only when tracing actually tagged one: untraced
     runs keep the historical JSON shape byte-for-byte. *)
  let exemplars =
    if List.exists (fun e -> e.ex_trace <> 0) h.exemplars then
      [ ("exemplars", Json.List (List.map exemplar_to_json h.exemplars)) ]
    else []
  in
  Json.Obj (base @ exemplars)

(* --- registry ------------------------------------------------------------ *)

type value = Counter of int | Gauge of float | Hist of hist

type t = {
  table : (string, value) Hashtbl.t;
  mutable order : string list;  (* reverse publication order *)
}

let create () = { table = Hashtbl.create 64; order = [] }

let set t name v =
  if Hashtbl.mem t.table name then
    invalid_arg
      (Printf.sprintf
         "Metrics: duplicate metric name %S (two publishers claimed it)" name);
  t.order <- name :: t.order;
  Hashtbl.replace t.table name v

let set_counter t name i = set t name (Counter i)
let set_gauge t name f = set t name (Gauge f)
let set_hist t name h = set t name (Hist h)
let find t name = Hashtbl.find_opt t.table name
let names t = List.rev t.order

let to_json t =
  Json.Obj
    (List.map
       (fun name ->
         ( name,
           match Hashtbl.find t.table name with
           | Counter i -> Json.Int i
           | Gauge f -> Json.Float f
           | Hist h -> hist_to_json h ))
       (names t))
