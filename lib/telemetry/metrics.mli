(** Metric types for the telemetry subsystem: counters, gauges, and
    log-scale latency histograms, plus a named registry to export them.

    Histograms are the always-on latency recorders embedded in
    [Mira_sim.Net] and the cache sections: a fixed array of
    exponentially spaced buckets (quarter-octave resolution, so
    percentile estimates are within ~19% of the true value) alongside a
    Welford accumulator ([Mira_util.Stats.online]) for exact count /
    mean / stddev and exact min / max.  Observing a sample is a handful
    of float operations on the host — it never touches the simulated
    clock, so enabling telemetry cannot perturb simulated results.

    Each histogram also keeps a small tail-exemplar reservoir: the
    slowest [exemplar_cap] observations with the trace id active when
    they were recorded, so a p99/p999 number can be chased back to a
    concrete causal trace (see [Trace] and [Critical_path]).

    The registry is pull-model: components keep their own mutable
    stats and [publish] them under hierarchical dotted names
    ([net.bytes_demand], [section.node.hits], ...) when a report is
    requested. *)

type hist

val nbuckets : int
(** Number of quarter-octave histogram buckets (bucket [i] covers
    [[2^(i/4), 2^((i+1)/4))] ns); shared by [Timeseries]' sparse
    per-window histograms so window percentiles use the same scale. *)

val bucket_of : float -> int
(** Bucket index for a sample (clamped to [[0, nbuckets-1]]). *)

val bucket_lo : int -> float
(** Lower edge of bucket [i], in ns. *)

val bucket_hi : int -> float
(** Upper edge of bucket [i] (the lower edge of bucket [i+1]). *)

type exemplar = {
  ex_value_ns : float;
  ex_trace : int;  (** trace id carried by the observation; 0 = untraced *)
  ex_seq : int;  (** 1-based arrival index within this histogram *)
}

val exemplar_cap : int
(** Reservoir size: the slowest-N observations are retained. *)

val hist_create : unit -> hist

val hist_observe : ?trace:int -> hist -> float -> unit
(** Record a sample (ns).  Non-positive samples land in the lowest
    bucket; min/max/mean remain exact.  [?trace] tags the sample with
    the trace id of the access that produced it (default 0 =
    untraced); the reservoir keeps the slowest [exemplar_cap] samples,
    breaking value ties toward the earliest arrival so contents are
    deterministic. *)

val hist_exemplars : hist -> exemplar list
(** Slowest first; at most [exemplar_cap]. *)

val hist_count : hist -> int
val hist_mean : hist -> float
val hist_stddev : hist -> float
val hist_min : hist -> float  (** 0 when empty *)

val hist_max : hist -> float  (** 0 when empty *)

val hist_percentile : hist -> float -> float
(** [hist_percentile h p] with [p] in [0,100]; bucket-interpolated,
    clamped to the exact observed min/max.  0 on an empty histogram. *)

val hist_reset : hist -> unit
(** Clears buckets, moments, and the exemplar reservoir. *)

val hist_to_json : hist -> Json.t
(** [{count, mean_ns, stddev_ns, min_ns, max_ns, p50_ns, p95_ns,
    p99_ns, p999_ns}]; an ["exemplars"] list ([{value_ns, trace,
    seq}]) is appended only when at least one exemplar carries a
    nonzero trace id, so untraced runs keep the historical shape. *)

(** {1 Registry} *)

type value = Counter of int | Gauge of float | Hist of hist
type t

val create : unit -> t

val set_counter : t -> string -> int -> unit
(** Publish a monotonic count under [name].  Names are claimed once
    per registry: publishing the same dotted name twice raises
    [Invalid_argument] — a second publisher silently shadowing the
    first is always a wiring bug.  (Applies to all [set_*].) *)

val set_gauge : t -> string -> float -> unit
val set_hist : t -> string -> hist -> unit

val find : t -> string -> value option
val names : t -> string list
(** Publication order. *)

val to_json : t -> Json.t
(** One object, publication order; histograms expand to their summary
    object. *)
