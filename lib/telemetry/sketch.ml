(* Deterministic Space-Saving top-K sketch (Metwally, Agrawal, El
   Abbadi 2005): at most [k] monitored entries; an unmonitored key
   evicts the current minimum and inherits its count as overestimation
   error.  The classic guarantees hold: every key whose true frequency
   exceeds [total/k] is present, and each reported count overestimates
   the true count by at most its recorded [err] (itself <= total/k).

   Host-side only — touching the sketch never advances a simulated
   clock — and deterministic: eviction picks the minimum count with
   ties broken by the lexicographically greatest key, so identical
   update streams produce identical sketches. *)

type entry = { e_key : string; mutable count : int64; mutable err : int64 }

type t = {
  k : int;
  tbl : (string, entry) Hashtbl.t;
  mutable total : int64;  (* total weight ever touched *)
}

let create ~k =
  if k < 1 then invalid_arg (Printf.sprintf "Sketch.create: k = %d (need >= 1)" k);
  { k; tbl = Hashtbl.create (2 * k); total = 0L }

let k t = t.k
let total t = t.total

(* Monitored-set minimum under the deterministic order: smallest count,
   ties to the greatest key (so the smallest key among equals survives
   longest — a stable, explainable rule). *)
let victim t =
  Hashtbl.fold
    (fun _ e acc ->
      match acc with
      | None -> Some e
      | Some m ->
        if e.count < m.count || (e.count = m.count && e.e_key > m.e_key) then
          Some e
        else acc)
    t.tbl None

let touch ?(weight = 1L) t key =
  if weight > 0L then begin
    t.total <- Int64.add t.total weight;
    match Hashtbl.find_opt t.tbl key with
    | Some e -> e.count <- Int64.add e.count weight
    | None ->
      if Hashtbl.length t.tbl < t.k then
        Hashtbl.replace t.tbl key { e_key = key; count = weight; err = 0L }
      else begin
        match victim t with
        | None -> ()
        | Some v ->
          Hashtbl.remove t.tbl v.e_key;
          Hashtbl.replace t.tbl key
            { e_key = key; count = Int64.add v.count weight; err = v.count }
      end
  end

let error_bound t =
  if Hashtbl.length t.tbl < t.k then 0L
  else Int64.div t.total (Int64.of_int t.k)

(* Count-descending, key-ascending — a deterministic total order. *)
let entry_order (ka, ca) (kb, cb) =
  match Int64.compare cb ca with 0 -> String.compare ka kb | c -> c

let snapshot t =
  Hashtbl.fold (fun key e acc -> (key, e.count) :: acc) t.tbl []
  |> List.sort entry_order

let top t =
  Hashtbl.fold (fun key e acc -> (key, e.count, e.err) :: acc) t.tbl []
  |> List.sort (fun (ka, ca, _) (kb, cb, _) -> entry_order (ka, ca) (kb, cb))

(* Merging two snapshots (e.g. adjacent time windows downsampling)
   sums counts per key and re-truncates; the result overestimates by
   at most the sum of the inputs' bounds, which the windowed exporter
   documents rather than tracks per key. *)
let merge_snapshots ~k a b =
  let sums = Hashtbl.create (2 * k) in
  List.iter
    (fun (key, n) ->
      let cur = Option.value ~default:0L (Hashtbl.find_opt sums key) in
      Hashtbl.replace sums key (Int64.add cur n))
    (a @ b);
  let merged =
    Hashtbl.fold (fun key n acc -> (key, n) :: acc) sums []
    |> List.sort entry_order
  in
  List.filteri (fun i _ -> i < k) merged

let reset t =
  Hashtbl.reset t.tbl;
  t.total <- 0L

let to_json t =
  Json.Obj
    [
      ("k", Json.Int t.k);
      ("total", Json.Str (Int64.to_string t.total));
      ("error_bound", Json.Str (Int64.to_string (error_bound t)));
      ( "top",
        Json.List
          (List.map
             (fun (key, count, err) ->
               Json.Obj
                 [
                   ("key", Json.Str key);
                   ("count", Json.Str (Int64.to_string count));
                   ("err", Json.Str (Int64.to_string err));
                 ])
             (top t)) );
    ]
