(** Deterministic Space-Saving top-K sketch.

    Tracks the heaviest string keys of an update stream in O(k) space:
    at most [k] entries are monitored; an unmonitored key evicts the
    entry with the minimum count and inherits that count as its
    overestimation error.  Guarantees (Metwally et al. 2005): every
    key with true frequency > [total/k] is monitored, and each
    reported count exceeds the true count by at most its [err]
    (itself bounded by [total/k] = [error_bound]).

    Used for hot keys in the serving workload and hot miss sites in
    the runtime, sampled per time window.  Deterministic by
    construction — eviction ties break on the key — and host-side
    only: touching a sketch never advances a simulated clock. *)

type t

val create : k:int -> t
(** Raises [Invalid_argument] when [k < 1]. *)

val k : t -> int

val touch : ?weight:int64 -> t -> string -> unit
(** Add [weight] (default 1; non-positive weights are ignored)
    occurrences of [key]. *)

val total : t -> int64
(** Total weight ever touched (since the last [reset]). *)

val error_bound : t -> int64
(** Max overestimation of any reported count: [total / k] once the
    monitored set is full, [0] before (all counts exact). *)

val top : t -> (string * int64 * int64) list
(** Monitored entries as [(key, count, err)], count-descending (ties
    key-ascending).  [count - err] is a guaranteed lower bound on the
    true frequency. *)

val snapshot : t -> (string * int64) list
(** [top] without the error column — the exchange format for
    per-window sampling and merging. *)

val merge_snapshots :
  k:int -> (string * int64) list -> (string * int64) list ->
  (string * int64) list
(** Sum counts per key across two snapshots and keep the heaviest [k]
    (the window-merge rule of the time-series ring). *)

val reset : t -> unit
val to_json : t -> Json.t
