(* Time-resolved telemetry: fixed-interval windows over the simulated
   clock, each recording counter deltas, gauge samples, sparse
   log-bucket histograms, and named top-K snapshots.

   The store is entirely host-side and driven from outside: whoever
   owns the simulated clock (a scheduler sampler task) calls [roll] at
   each window boundary; nothing here reads wall time or advances
   simulated time, so an instrumented run is byte-identical to an
   uninstrumented one.

   Downsampling.  Closed windows live in a bounded ring of [cap]
   slots.  When a close would exceed the cap, adjacent pairs merge
   oldest-first — counters add, gauges combine (sum/count/max, the
   later sample wins [last]), histogram buckets add, top-K snapshots
   merge by summing counts per key and re-truncating — so the ring
   always covers the whole run at a resolution that degrades by
   doubling, deterministically: the ring's contents are a pure
   function of the update/roll sequence. *)

type gauge = {
  mutable g_sum : float;
  mutable g_count : int;
  mutable g_max : float;
  mutable g_last : float;
}

(* Sparse histogram over [Metrics]' quarter-octave buckets: windows
   see a handful of distinct latencies, so a hashtable beats a
   176-slot array per window per name. *)
type whist = {
  wh_counts : (int, int ref) Hashtbl.t;
  mutable wh_n : int;
  mutable wh_max : float;
}

type window = {
  mutable w_start : float;
  mutable w_span : float;
  w_counters : (string, int64 ref) Hashtbl.t;
  w_gauges : (string, gauge) Hashtbl.t;
  w_hists : (string, whist) Hashtbl.t;
  w_tops : (string, (string * int64) list) Hashtbl.t;
}

type t = {
  interval_ns : float;
  cap : int;
  topk : int;
  mutable closed : window list;  (* newest first *)
  mutable nclosed : int;
  mutable cur : window;
  mutable merges : int;  (* pairwise-merge passes performed *)
}

let fresh_window ~start =
  {
    w_start = start;
    w_span = 0.0;
    w_counters = Hashtbl.create 8;
    w_gauges = Hashtbl.create 8;
    w_hists = Hashtbl.create 8;
    w_tops = Hashtbl.create 4;
  }

let create ?(cap = 256) ?(topk = 8) ~interval_ns () =
  if not (interval_ns > 0.0) then
    invalid_arg
      (Printf.sprintf "Timeseries.create: interval_ns = %g (need > 0)"
         interval_ns);
  if cap < 2 then
    invalid_arg (Printf.sprintf "Timeseries.create: cap = %d (need >= 2)" cap);
  {
    interval_ns;
    cap;
    topk;
    closed = [];
    nclosed = 0;
    cur = fresh_window ~start:0.0;
    merges = 0;
  }

let interval_ns t = t.interval_ns
let merges t = t.merges

(* --- recording into the current window ----------------------------------- *)

let add t name delta =
  match Hashtbl.find_opt t.cur.w_counters name with
  | Some cell -> cell := Int64.add !cell delta
  | None -> Hashtbl.replace t.cur.w_counters name (ref delta)

let sample t name v =
  match Hashtbl.find_opt t.cur.w_gauges name with
  | Some g ->
    g.g_sum <- g.g_sum +. v;
    g.g_count <- g.g_count + 1;
    if v > g.g_max then g.g_max <- v;
    g.g_last <- v
  | None ->
    Hashtbl.replace t.cur.w_gauges name
      { g_sum = v; g_count = 1; g_max = v; g_last = v }

let observe t name v =
  let h =
    match Hashtbl.find_opt t.cur.w_hists name with
    | Some h -> h
    | None ->
      let h = { wh_counts = Hashtbl.create 8; wh_n = 0; wh_max = 0.0 } in
      Hashtbl.replace t.cur.w_hists name h;
      h
  in
  let b = Metrics.bucket_of v in
  (match Hashtbl.find_opt h.wh_counts b with
  | Some c -> incr c
  | None -> Hashtbl.replace h.wh_counts b (ref 1));
  h.wh_n <- h.wh_n + 1;
  if v > h.wh_max then h.wh_max <- v

let set_top t name entries = Hashtbl.replace t.cur.w_tops name entries

(* --- the bounded ring ---------------------------------------------------- *)

(* Merge [b] (the later window) into [a] (the earlier), in place. *)
let merge_into topk a b =
  a.w_span <- a.w_span +. b.w_span;
  Hashtbl.iter
    (fun name v ->
      match Hashtbl.find_opt a.w_counters name with
      | Some cell -> cell := Int64.add !cell !v
      | None -> Hashtbl.replace a.w_counters name (ref !v))
    b.w_counters;
  Hashtbl.iter
    (fun name gb ->
      match Hashtbl.find_opt a.w_gauges name with
      | Some ga ->
        ga.g_sum <- ga.g_sum +. gb.g_sum;
        ga.g_count <- ga.g_count + gb.g_count;
        if gb.g_max > ga.g_max then ga.g_max <- gb.g_max;
        ga.g_last <- gb.g_last
      | None ->
        Hashtbl.replace a.w_gauges name
          { g_sum = gb.g_sum; g_count = gb.g_count; g_max = gb.g_max;
            g_last = gb.g_last })
    b.w_gauges;
  Hashtbl.iter
    (fun name hb ->
      match Hashtbl.find_opt a.w_hists name with
      | Some ha ->
        Hashtbl.iter
          (fun bucket c ->
            match Hashtbl.find_opt ha.wh_counts bucket with
            | Some cell -> cell := !cell + !c
            | None -> Hashtbl.replace ha.wh_counts bucket (ref !c))
          hb.wh_counts;
        ha.wh_n <- ha.wh_n + hb.wh_n;
        if hb.wh_max > ha.wh_max then ha.wh_max <- hb.wh_max
      | None -> Hashtbl.replace a.w_hists name hb)
    b.w_hists;
  Hashtbl.iter
    (fun name tb ->
      match Hashtbl.find_opt a.w_tops name with
      | Some ta ->
        Hashtbl.replace a.w_tops name (Sketch.merge_snapshots ~k:topk ta tb)
      | None -> Hashtbl.replace a.w_tops name tb)
    b.w_tops

(* Merge adjacent pairs oldest-first over the whole ring, halving the
   slot count (an odd newest window stays unpaired). *)
let downsample t =
  let oldest_first = List.rev t.closed in
  let rec pair acc = function
    | a :: b :: rest ->
      merge_into t.topk a b;
      pair (a :: acc) rest
    | [ last ] -> last :: acc
    | [] -> acc
  in
  t.closed <- pair [] oldest_first;
  t.nclosed <- List.length t.closed;
  t.merges <- t.merges + 1

let close_current t ~now_ns =
  let w = t.cur in
  w.w_span <- Float.max 0.0 (now_ns -. w.w_start);
  if t.nclosed >= t.cap then downsample t;
  t.closed <- w :: t.closed;
  t.nclosed <- t.nclosed + 1

let roll t ~now_ns =
  close_current t ~now_ns;
  t.cur <- fresh_window ~start:now_ns

let window_empty w =
  Hashtbl.length w.w_counters = 0
  && Hashtbl.length w.w_gauges = 0
  && Hashtbl.length w.w_hists = 0
  && Hashtbl.length w.w_tops = 0

let finish t ~now_ns =
  (* The trailing partial window only survives if it recorded anything
     (the sampler may have parked one boundary past the last event). *)
  if not (window_empty t.cur) then
    close_current t ~now_ns:(Float.max now_ns t.cur.w_start);
  t.cur <- fresh_window ~start:(Float.max now_ns t.cur.w_start)

(* --- export --------------------------------------------------------------- *)

type gauge_stat = { g_count : int; g_mean : float; g_max : float; g_last : float }

type hist_stat = {
  h_count : int;
  h_max_ns : float;
  h_p50_ns : float;
  h_p99_ns : float;
}

type snapshot = {
  s_start_ns : float;
  s_span_ns : float;
  s_counters : (string * int64) list;
  s_gauges : (string * gauge_stat) list;
  s_hists : (string * hist_stat) list;
  s_tops : (string * (string * int64) list) list;
}

(* Window percentile: the upper edge of the bucket holding the rank —
   conservative (never under-reports) and deterministic. *)
let whist_percentile h p =
  if h.wh_n = 0 then 0.0
  else begin
    let rank =
      let r = int_of_float (Float.ceil (p /. 100.0 *. float_of_int h.wh_n)) in
      if r < 1 then 1 else r
    in
    let buckets =
      Hashtbl.fold (fun b c acc -> (b, !c) :: acc) h.wh_counts []
      |> List.sort compare
    in
    let rec walk cum = function
      | [] -> h.wh_max
      | (b, c) :: rest ->
        let cum = cum + c in
        if cum >= rank then Float.min (Metrics.bucket_hi b) h.wh_max
        else walk cum rest
    in
    walk 0 buckets
  end

let sorted_bindings tbl f =
  Hashtbl.fold (fun name v acc -> (name, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot_of w =
  {
    s_start_ns = w.w_start;
    s_span_ns = w.w_span;
    s_counters = sorted_bindings w.w_counters (fun v -> !v);
    s_gauges =
      sorted_bindings w.w_gauges (fun g ->
          {
            g_count = g.g_count;
            g_mean =
              (if g.g_count > 0 then g.g_sum /. float_of_int g.g_count else 0.0);
            g_max = g.g_max;
            g_last = g.g_last;
          });
    s_hists =
      sorted_bindings w.w_hists (fun h ->
          {
            h_count = h.wh_n;
            h_max_ns = h.wh_max;
            h_p50_ns = whist_percentile h 50.0;
            h_p99_ns = whist_percentile h 99.0;
          });
    s_tops = sorted_bindings w.w_tops (fun entries -> entries);
  }

let snapshots t = List.rev_map snapshot_of t.closed
let nwindows t = t.nclosed
