(** Windowed time-series over the simulated clock.

    Fixed-interval windows record counter deltas, gauge samples,
    sparse log-bucket latency histograms, and named top-K snapshots.
    The store is passive and host-side: a sampler task that owns the
    simulated clock calls [roll] at each boundary; nothing here reads
    wall time or advances simulated time, so instrumented runs are
    byte-identical to uninstrumented ones.

    Closed windows live in a bounded ring: when a close would exceed
    the cap, adjacent pairs merge oldest-first (counters add, gauges
    combine, histogram buckets add, top-K snapshots merge via
    [Sketch.merge_snapshots]), halving the resolution while still
    covering the whole run.  Window spans add under merging, so each
    snapshot self-describes its coverage.  All of it is deterministic:
    ring contents are a pure function of the update/roll sequence. *)

type t

val create : ?cap:int -> ?topk:int -> interval_ns:float -> unit -> t
(** [cap] (default 256, min 2) bounds the closed-window ring; [topk]
    (default 8) is the per-name entry budget used when merging top-K
    snapshots.  Raises [Invalid_argument] on a non-positive
    [interval_ns]. *)

val interval_ns : t -> float

val add : t -> string -> int64 -> unit
(** Add a (possibly negative) delta to a named counter in the current
    window. *)

val sample : t -> string -> float -> unit
(** Record a gauge sample (mean/max/last per window). *)

val observe : t -> string -> float -> unit
(** Record a latency (ns) into the window's sparse histogram, bucketed
    on [Metrics.bucket_of]'s quarter-octave scale. *)

val set_top : t -> string -> (string * int64) list -> unit
(** Install a named top-K snapshot (replaces any prior one this
    window). *)

val roll : t -> now_ns:float -> unit
(** Close the current window at [now_ns] and open the next one
    starting there. *)

val finish : t -> now_ns:float -> unit
(** Close the trailing partial window — dropped instead if it recorded
    nothing (the sampler may park one boundary past the last event). *)

val merges : t -> int
(** Pairwise-merge passes performed so far (0 = full resolution). *)

val nwindows : t -> int

(** {1 Export} *)

type gauge_stat = {
  g_count : int;
  g_mean : float;
  g_max : float;
  g_last : float;  (** the latest sample in the window *)
}

type hist_stat = {
  h_count : int;
  h_max_ns : float;
  h_p50_ns : float;  (** upper edge of the bucket holding the rank *)
  h_p99_ns : float;
}

type snapshot = {
  s_start_ns : float;
  s_span_ns : float;  (** spans add under merging *)
  s_counters : (string * int64) list;  (** name-sorted, as are all lists *)
  s_gauges : (string * gauge_stat) list;
  s_hists : (string * hist_stat) list;
  s_tops : (string * (string * int64) list) list;
}

val snapshots : t -> snapshot list
(** Closed windows, oldest first.  Percentiles are conservative: the
    upper edge of the quarter-octave bucket containing the rank,
    clamped to the exact observed max. *)
