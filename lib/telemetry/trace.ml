type phase = Complete | Instant | Begin | End | Flow_start | Flow_end

type event = {
  ev_name : string;
  ev_cat : string;
  ev_phase : phase;
  ev_ts_ns : float;
  ev_dur_ns : float;
  ev_lane : string;
  ev_trace : int;
  ev_span : int;
  ev_parent : int;
  ev_args : (string * Json.t) list;
}

(* A span context travels with an access across layers: the runtime
   mints it at deref time, the cache fill path forwards it into the
   net request record, and the net layer stamps member spans with it
   at reap time.  [sc_flow] marks asynchronous causality (prefetch,
   detached writeback): such children are linked by flow arrows only
   and get no nesting parent, so the strict parent-containment
   invariant holds for every parented span. *)
type span_ctx = {
  sc_trace : int;
  sc_span : int;
  sc_site : int;
  sc_lane : string;
  sc_flow : bool;
}

type sink = {
  mutable on : bool;
  mutable buf : event list;  (* newest first *)
  mutable count : int;
  mutable limit : int;
  mutable ctrl_count : int;  (* controller events admitted past [limit] *)
  mutable ctrl_limit : int;
  mutable dropped : int;
  mutable next_trace : int;
  mutable next_span : int;
  mutable ctx : span_ctx option;
}

let sink =
  {
    on = false;
    buf = [];
    count = 0;
    limit = 200_000;
    ctrl_count = 0;
    ctrl_limit = 20_000;
    dropped = 0;
    next_trace = 0;
    next_span = 0;
    ctx = None;
  }

let clear () =
  sink.buf <- [];
  sink.count <- 0;
  sink.ctrl_count <- 0;
  sink.dropped <- 0;
  sink.next_trace <- 0;
  sink.next_span <- 0;
  sink.ctx <- None

let enable () =
  clear ();
  sink.on <- true

let disable () =
  sink.on <- false;
  sink.ctx <- None

let enabled () = sink.on
let set_limit n = sink.limit <- max 1 n
let set_ctrl_limit n = sink.ctrl_limit <- max 0 n
let dropped () = sink.dropped

let new_trace () =
  sink.next_trace <- sink.next_trace + 1;
  sink.next_trace

let new_span () =
  sink.next_span <- sink.next_span + 1;
  sink.next_span

let span_seq () = sink.next_span
let current_ctx () = sink.ctx
let set_ctx c = sink.ctx <- c

let push ev =
  (* Controller events are tiny and carry the decision history; keep
     them past the main cap, but under their own generous cap so a
     pathological decision loop cannot grow the buffer unboundedly. *)
  if sink.count < sink.limit then begin
    sink.buf <- ev :: sink.buf;
    sink.count <- sink.count + 1
  end
  else if String.equal ev.ev_cat "controller" && sink.ctrl_count < sink.ctrl_limit
  then begin
    sink.buf <- ev :: sink.buf;
    sink.count <- sink.count + 1;
    sink.ctrl_count <- sink.ctrl_count + 1
  end
  else sink.dropped <- sink.dropped + 1

let complete ?(args = []) ~name ~cat ~lane ~ts_ns ~dur_ns () =
  if sink.on then
    push
      {
        ev_name = name;
        ev_cat = cat;
        ev_phase = Complete;
        ev_ts_ns = ts_ns;
        ev_dur_ns = dur_ns;
        ev_lane = lane;
        ev_trace = 0;
        ev_span = 0;
        ev_parent = 0;
        ev_args = args;
      }

let instant ?(args = []) ~name ~cat ~lane ~ts_ns () =
  if sink.on then
    push
      {
        ev_name = name;
        ev_cat = cat;
        ev_phase = Instant;
        ev_ts_ns = ts_ns;
        ev_dur_ns = 0.0;
        ev_lane = lane;
        ev_trace = 0;
        ev_span = 0;
        ev_parent = 0;
        ev_args = args;
      }

let begin_span ?(args = []) ?(parent = 0) ~name ~cat ~lane ~ts_ns ~trace ~span
    () =
  if sink.on then
    push
      {
        ev_name = name;
        ev_cat = cat;
        ev_phase = Begin;
        ev_ts_ns = ts_ns;
        ev_dur_ns = 0.0;
        ev_lane = lane;
        ev_trace = trace;
        ev_span = span;
        ev_parent = parent;
        ev_args = args;
      }

let end_span ?(args = []) ~name ~cat ~lane ~ts_ns ~trace ~span () =
  if sink.on then
    push
      {
        ev_name = name;
        ev_cat = cat;
        ev_phase = End;
        ev_ts_ns = ts_ns;
        ev_dur_ns = 0.0;
        ev_lane = lane;
        ev_trace = trace;
        ev_span = span;
        ev_parent = 0;
        ev_args = args;
      }

let flow_start ~name ~cat ~lane ~ts_ns ~trace ~id () =
  if sink.on then
    push
      {
        ev_name = name;
        ev_cat = cat;
        ev_phase = Flow_start;
        ev_ts_ns = ts_ns;
        ev_dur_ns = 0.0;
        ev_lane = lane;
        ev_trace = trace;
        ev_span = id;
        ev_parent = 0;
        ev_args = [];
      }

let flow_end ~name ~cat ~lane ~ts_ns ~trace ~id () =
  if sink.on then
    push
      {
        ev_name = name;
        ev_cat = cat;
        ev_phase = Flow_end;
        ev_ts_ns = ts_ns;
        ev_dur_ns = 0.0;
        ev_lane = lane;
        ev_trace = trace;
        ev_span = id;
        ev_parent = 0;
        ev_args = [];
      }

let events () = List.rev sink.buf

(* Chrome's ts/dur are microseconds; we map 1 simulated ns -> 0.001 us. *)
let event_to_json ~lanes ev =
  let tid = match List.assoc_opt ev.ev_lane lanes with Some t -> t | None -> 0 in
  let ph =
    match ev.ev_phase with
    | Complete -> "X"
    | Instant -> "i"
    | Begin -> "b"
    | End -> "e"
    | Flow_start -> "s"
    | Flow_end -> "f"
  in
  let base =
    [
      ("name", Json.Str ev.ev_name);
      ("cat", Json.Str ev.ev_cat);
      ("ph", Json.Str ph);
      ("ts", Json.Float (ev.ev_ts_ns /. 1e3));
      ("pid", Json.Int 1);
      ("tid", Json.Int tid);
    ]
  in
  let extra =
    match ev.ev_phase with
    | Complete -> [ ("dur", Json.Float (ev.ev_dur_ns /. 1e3)) ]
    | Instant -> [ ("s", Json.Str "t") ]
    | Begin | End ->
      (* Async events pair by (cat, id); one async track per trace so
         Perfetto stacks all spans of an access together. *)
      [ ("id", Json.Str (Printf.sprintf "0x%x" ev.ev_trace)) ]
    | Flow_start -> [ ("id", Json.Str (Printf.sprintf "0x%x" ev.ev_span)) ]
    | Flow_end ->
      [
        ("id", Json.Str (Printf.sprintf "0x%x" ev.ev_span));
        ("bp", Json.Str "e");
      ]
  in
  let args =
    (* Span and parent ids ride in args so validators (and humans) can
       pair b/e records and check nesting without hex-decoding ids. *)
    let injected =
      match ev.ev_phase with
      | Begin ->
        [ ("span", Json.Int ev.ev_span); ("parent", Json.Int ev.ev_parent) ]
      | End -> [ ("span", Json.Int ev.ev_span) ]
      | _ -> []
    in
    let all = injected @ ev.ev_args in
    if all = [] then [] else [ ("args", Json.Obj all) ]
  in
  Json.Obj (base @ extra @ args)

let lanes_of evs =
  let seen = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun ev ->
      if not (Hashtbl.mem seen ev.ev_lane) then begin
        Hashtbl.replace seen ev.ev_lane ();
        order := ev.ev_lane :: !order
      end)
    evs;
  List.mapi (fun i lane -> (lane, i + 1)) (List.rev !order)

let to_jsonl () =
  let evs = events () in
  let lanes = lanes_of evs in
  let buf = Buffer.create 4096 in
  let line j =
    Json.to_buffer buf j;
    Buffer.add_char buf '\n'
  in
  List.iter
    (fun (lane, tid) ->
      line
        (Json.Obj
           [
             ("name", Json.Str "thread_name");
             ("ph", Json.Str "M");
             ("pid", Json.Int 1);
             ("tid", Json.Int tid);
             ("args", Json.Obj [ ("name", Json.Str lane) ]);
           ]))
    lanes;
  List.iter (fun ev -> line (event_to_json ~lanes ev)) evs;
  line
    (Json.Obj
       [
         ("name", Json.Str "mira_trace_summary");
         ("ph", Json.Str "M");
         ("pid", Json.Int 1);
         ("tid", Json.Int 0);
         ( "args",
           Json.Obj
             [
               ("events", Json.Int (List.length evs));
               ("dropped", Json.Int sink.dropped);
             ] );
       ]);
  Buffer.contents buf

let write_jsonl path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_jsonl ()))
