type phase = Complete | Instant

type event = {
  ev_name : string;
  ev_cat : string;
  ev_phase : phase;
  ev_ts_ns : float;
  ev_dur_ns : float;
  ev_lane : string;
  ev_args : (string * Json.t) list;
}

type sink = {
  mutable on : bool;
  mutable buf : event list;  (* newest first *)
  mutable count : int;
  mutable limit : int;
  mutable dropped : int;
}

let sink = { on = false; buf = []; count = 0; limit = 200_000; dropped = 0 }

let clear () =
  sink.buf <- [];
  sink.count <- 0;
  sink.dropped <- 0

let enable () =
  clear ();
  sink.on <- true

let disable () = sink.on <- false
let enabled () = sink.on
let set_limit n = sink.limit <- max 1 n
let dropped () = sink.dropped

let push ev =
  (* Controller events are tiny and carry the decision history; never
     drop them even when transfer spans have filled the buffer. *)
  if sink.count < sink.limit || String.equal ev.ev_cat "controller" then begin
    sink.buf <- ev :: sink.buf;
    sink.count <- sink.count + 1
  end
  else sink.dropped <- sink.dropped + 1

let complete ?(args = []) ~name ~cat ~lane ~ts_ns ~dur_ns () =
  if sink.on then
    push
      {
        ev_name = name;
        ev_cat = cat;
        ev_phase = Complete;
        ev_ts_ns = ts_ns;
        ev_dur_ns = dur_ns;
        ev_lane = lane;
        ev_args = args;
      }

let instant ?(args = []) ~name ~cat ~lane ~ts_ns () =
  if sink.on then
    push
      {
        ev_name = name;
        ev_cat = cat;
        ev_phase = Instant;
        ev_ts_ns = ts_ns;
        ev_dur_ns = 0.0;
        ev_lane = lane;
        ev_args = args;
      }

let events () = List.rev sink.buf

(* Chrome's ts/dur are microseconds; we map 1 simulated ns -> 0.001 us. *)
let event_to_json ~lanes ev =
  let tid = match List.assoc_opt ev.ev_lane lanes with Some t -> t | None -> 0 in
  let base =
    [
      ("name", Json.Str ev.ev_name);
      ("cat", Json.Str ev.ev_cat);
      ("ph", Json.Str (match ev.ev_phase with Complete -> "X" | Instant -> "i"));
      ("ts", Json.Float (ev.ev_ts_ns /. 1e3));
      ("pid", Json.Int 1);
      ("tid", Json.Int tid);
    ]
  in
  let dur =
    match ev.ev_phase with
    | Complete -> [ ("dur", Json.Float (ev.ev_dur_ns /. 1e3)) ]
    | Instant -> [ ("s", Json.Str "t") ]
  in
  let args =
    if ev.ev_args = [] then [] else [ ("args", Json.Obj ev.ev_args) ]
  in
  Json.Obj (base @ dur @ args)

let lanes_of evs =
  let seen = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun ev ->
      if not (Hashtbl.mem seen ev.ev_lane) then begin
        Hashtbl.replace seen ev.ev_lane ();
        order := ev.ev_lane :: !order
      end)
    evs;
  List.mapi (fun i lane -> (lane, i + 1)) (List.rev !order)

let to_jsonl () =
  let evs = events () in
  let lanes = lanes_of evs in
  let buf = Buffer.create 4096 in
  let line j =
    Json.to_buffer buf j;
    Buffer.add_char buf '\n'
  in
  List.iter
    (fun (lane, tid) ->
      line
        (Json.Obj
           [
             ("name", Json.Str "thread_name");
             ("ph", Json.Str "M");
             ("pid", Json.Int 1);
             ("tid", Json.Int tid);
             ("args", Json.Obj [ ("name", Json.Str lane) ]);
           ]))
    lanes;
  List.iter (fun ev -> line (event_to_json ~lanes ev)) evs;
  line
    (Json.Obj
       [
         ("name", Json.Str "mira_trace_summary");
         ("ph", Json.Str "M");
         ("pid", Json.Int 1);
         ("tid", Json.Int 0);
         ( "args",
           Json.Obj
             [
               ("events", Json.Int (List.length evs));
               ("dropped", Json.Int sink.dropped);
             ] );
       ]);
  Buffer.contents buf

let write_jsonl path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_jsonl ()))
