(** Chrome [trace_event]-format trace sink.

    A process-wide collector, disabled by default.  When enabled,
    instrumented layers ([Mira_sim.Net] transfers, cache-section demand
    fetches, controller phases and decisions) push events tagged with
    simulated-nanosecond timestamps and a [lane] — rendered as the
    trace's thread, so each section / the network / the controller get
    their own row in [chrome://tracing] or Perfetto.

    Hot paths must guard event construction with [enabled ()]; when the
    sink is disabled that is the only cost (one bool read, zero
    simulated time).  The buffer is capped ([set_limit], default
    200_000 events): once full, further events are dropped and counted,
    except [controller]-category events, which are always retained so
    decision history survives even on trace-heavy runs. *)

type phase = Complete | Instant

type event = {
  ev_name : string;
  ev_cat : string;  (** e.g. ["net"], ["cache"], ["controller"] *)
  ev_phase : phase;
  ev_ts_ns : float;  (** simulated time *)
  ev_dur_ns : float;  (** [Complete] only; 0 otherwise *)
  ev_lane : string;
  ev_args : (string * Json.t) list;
}

val enable : unit -> unit
(** Also clears any previously buffered events. *)

val disable : unit -> unit
val enabled : unit -> bool
val clear : unit -> unit

val set_limit : int -> unit
(** Buffer cap; events beyond it are dropped (controller category
    excepted). *)

val dropped : unit -> int

val complete :
  ?args:(string * Json.t) list ->
  name:string -> cat:string -> lane:string -> ts_ns:float -> dur_ns:float ->
  unit -> unit
(** Record a span.  No-op when disabled. *)

val instant :
  ?args:(string * Json.t) list ->
  name:string -> cat:string -> lane:string -> ts_ns:float -> unit -> unit

val events : unit -> event list
(** Buffered events, oldest first. *)

val event_to_json : lanes:(string * int) list -> event -> Json.t
(** One Chrome trace_event object; [lanes] maps lane names to numeric
    tids. *)

val to_jsonl : unit -> string
(** The buffered trace as JSONL: one [thread_name] metadata record per
    lane, then one event per line, and a final [mira_trace_summary]
    metadata record carrying the drop count.  Loadable by Perfetto and
    [chrome://tracing] (after wrapping in a JSON array; see
    docs/OBSERVABILITY.md). *)

val write_jsonl : string -> unit
(** [write_jsonl path] writes [to_jsonl ()] to [path]. *)
