(** Chrome [trace_event]-format trace sink.

    A process-wide collector, disabled by default.  When enabled,
    instrumented layers ([Mira_sim.Net] transfers, cache-section demand
    fetches, controller phases and decisions) push events tagged with
    simulated-nanosecond timestamps and a [lane] — rendered as the
    trace's thread, so each section / the network / the controller get
    their own row in [chrome://tracing] or Perfetto.

    Beyond flat [Complete]/[Instant] events, the sink supports causal
    spans: async begin/end pairs ([ph:"b"]/[ph:"e"]) carrying a trace
    id, a span id, and an optional parent span id, plus flow arrows
    ([ph:"s"]/[ph:"f"]) for asynchronous causality that must not imply
    nesting (prefetch, detached writeback).  A [span_ctx] is the
    propagation record: the runtime mints one per traced access and
    layers forward it (the net layer carries it inside the request
    record), so one far-memory access renders as a parent→child tree
    across lanes.

    Hot paths must guard event construction with [enabled ()]; when the
    sink is disabled that is the only cost (one bool read, zero
    simulated time).  The buffer is capped ([set_limit], default
    200_000 events): once full, further events are dropped and counted.
    [controller]-category events survive past the main cap so decision
    history is retained on trace-heavy runs, but under their own
    generous cap ([set_ctrl_limit], default 20_000) — overflow beyond
    that is counted in [dropped] like everything else. *)

type phase = Complete | Instant | Begin | End | Flow_start | Flow_end

type event = {
  ev_name : string;
  ev_cat : string;  (** e.g. ["net"], ["cache"], ["controller"] *)
  ev_phase : phase;
  ev_ts_ns : float;  (** simulated time *)
  ev_dur_ns : float;  (** [Complete] only; 0 otherwise *)
  ev_lane : string;
  ev_trace : int;  (** [Begin]/[End]/flows; 0 = none *)
  ev_span : int;  (** span id ([Begin]/[End]) or flow id; 0 = none *)
  ev_parent : int;  (** [Begin] only; 0 = root or flow-linked *)
  ev_args : (string * Json.t) list;
}

type span_ctx = {
  sc_trace : int;  (** trace id: one per traced access *)
  sc_span : int;  (** the parent span's id *)
  sc_site : int;  (** MIR site id of the deref, or -1 *)
  sc_lane : string;  (** parent span's lane (flow arrows start there) *)
  sc_flow : bool;
      (** asynchronous causality: children link with flow arrows only
          and carry no nesting parent *)
}

val enable : unit -> unit
(** Also clears any previously buffered events and resets id
    counters. *)

val disable : unit -> unit
val enabled : unit -> bool
val clear : unit -> unit

val set_limit : int -> unit
(** Buffer cap; events beyond it are dropped (controller category gets
    its own headroom, see [set_ctrl_limit]). *)

val set_ctrl_limit : int -> unit
(** Cap on controller events admitted after the main buffer is full. *)

val dropped : unit -> int

(** {1 Span contexts} *)

val new_trace : unit -> int
(** Fresh nonzero trace id (reset by [enable]/[clear]). *)

val new_span : unit -> int
(** Fresh nonzero span id (reset by [enable]/[clear]). *)

val span_seq : unit -> int
(** Current span-id high-water mark.  Snapshot before running an
    access and compare after to learn whether any child spans were
    created (used for conditional root emission). *)

val current_ctx : unit -> span_ctx option
(** Ambient context of the access being executed, if any. *)

val set_ctx : span_ctx option -> unit

(** {1 Emission} *)

val complete :
  ?args:(string * Json.t) list ->
  name:string -> cat:string -> lane:string -> ts_ns:float -> dur_ns:float ->
  unit -> unit
(** Record a span.  No-op when disabled. *)

val instant :
  ?args:(string * Json.t) list ->
  name:string -> cat:string -> lane:string -> ts_ns:float -> unit -> unit

val begin_span :
  ?args:(string * Json.t) list ->
  ?parent:int ->
  name:string -> cat:string -> lane:string -> ts_ns:float -> trace:int ->
  span:int -> unit -> unit
(** Async span open.  [parent = 0] (default) marks a root or a
    flow-linked span; a nonzero parent asserts containment within that
    span. *)

val end_span :
  ?args:(string * Json.t) list ->
  name:string -> cat:string -> lane:string -> ts_ns:float -> trace:int ->
  span:int -> unit -> unit
(** Async span close; must pair with a [begin_span] of the same
    [span] id. *)

val flow_start :
  name:string -> cat:string -> lane:string -> ts_ns:float -> trace:int ->
  id:int -> unit -> unit
(** Flow arrow tail.  [id] is the target span's id; the matching
    [flow_end] binds the head to that span. *)

val flow_end :
  name:string -> cat:string -> lane:string -> ts_ns:float -> trace:int ->
  id:int -> unit -> unit

val events : unit -> event list
(** Buffered events, oldest first. *)

val event_to_json : lanes:(string * int) list -> event -> Json.t
(** One Chrome trace_event object; [lanes] maps lane names to numeric
    tids.  [Begin]/[End] render as async [ph:"b"]/[ph:"e"] with the
    hex trace id as ["id"] and [span]/[parent] injected into [args];
    flows render as [ph:"s"]/[ph:"f"] with the hex span id. *)

val to_jsonl : unit -> string
(** The buffered trace as JSONL: one [thread_name] metadata record per
    lane, then one event per line, and a final [mira_trace_summary]
    metadata record carrying the drop count.  Loadable by Perfetto and
    [chrome://tracing] (after wrapping in a JSON array; see
    docs/OBSERVABILITY.md). *)

val write_jsonl : string -> unit
(** [write_jsonl path] writes [to_jsonl ()] to [path]. *)
