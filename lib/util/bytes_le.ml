(* Little-endian scalar access into byte buffers without a staging
   copy.  The hot access paths (section slots, swap frames, the flat
   stores) previously allocated an 8-byte scratch buffer and blitted
   through it on every load/store; these helpers read/write the value
   in place with identical semantics: [len] low-order bytes,
   little-endian, zero-extended on read, high bytes dropped on write. *)

let get data ~off ~len =
  if len = 8 then Bytes.get_int64_le data off
  else begin
    let v = ref 0L in
    for i = len - 1 downto 0 do
      v :=
        Int64.logor
          (Int64.shift_left !v 8)
          (Int64.of_int (Char.code (Bytes.get data (off + i))))
    done;
    !v
  end

let set data ~off ~len v =
  if len = 8 then Bytes.set_int64_le data off v
  else begin
    let v = ref v in
    for i = 0 to len - 1 do
      Bytes.set data (off + i) (Char.chr (Int64.to_int !v land 0xff));
      v := Int64.shift_right_logical !v 8
    done
  end
