(** Staging-free little-endian scalar access into byte buffers.

    [get]/[set] move the [len] (1-8) low-order bytes of an int64
    directly between the value and [data.[off .. off+len-1]],
    little-endian.  [get] zero-extends; [set] drops the high bytes.
    Exactly equivalent to blitting through a zeroed 8-byte scratch
    buffer — minus the allocation and double copy. *)

val get : Bytes.t -> off:int -> len:int -> int64
val set : Bytes.t -> off:int -> len:int -> int64 -> unit
