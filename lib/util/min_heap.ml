(* Array-backed binary min-heap.  The classic sift-up/sift-down pair
   over a growable array: parent of [i] is [(i-1)/2], children are
   [2i+1] and [2i+2], and the invariant is [le parent child] along
   every edge.  No per-operation allocation once the array has grown
   to the working-set size. *)

type 'a t = {
  le : 'a -> 'a -> bool;
  mutable data : 'a array;  (* elements live in [0, size) *)
  mutable size : int;
}

let create ~le = { le; data = [||]; size = 0 }
let length t = t.size
let is_empty t = t.size = 0

let grow t x =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let data = Array.make (max 8 (2 * cap)) x in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let sift_up t i0 =
  let d = t.data in
  let x = d.(i0) in
  let i = ref i0 in
  while
    !i > 0
    &&
    let p = (!i - 1) / 2 in
    if t.le x d.(p) && not (t.le d.(p) x) then begin
      d.(!i) <- d.(p);
      i := p;
      true
    end
    else false
  do
    ()
  done;
  d.(!i) <- x

let sift_down t i0 =
  let d = t.data and n = t.size in
  let x = d.(i0) in
  let i = ref i0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 in
    if l >= n then continue := false
    else begin
      let r = l + 1 in
      let c = if r < n && t.le d.(r) d.(l) && not (t.le d.(l) d.(r)) then r else l in
      if t.le d.(c) x && not (t.le x d.(c)) then begin
        d.(!i) <- d.(c);
        i := c
      end
      else continue := false
    end
  done;
  d.(!i) <- x

let push t x =
  grow t x;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some t.data.(0)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      (* Drop the stale duplicate so popped elements don't outlive the
         heap (the slot is overwritten again on the next push). *)
      t.data.(t.size) <- t.data.(0);
      sift_down t 0
    end
    else t.data <- [||];
    Some top
  end

let clear t =
  t.data <- [||];
  t.size <- 0

let iter f t =
  for i = 0 to t.size - 1 do
    f t.data.(i)
  done

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.size - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let map_monotone f t =
  for i = 0 to t.size - 1 do
    t.data.(i) <- f t.data.(i)
  done
