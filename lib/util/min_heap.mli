(** Array-backed binary min-heap over a caller-supplied ordering.

    The ordering is given at {!create} as [le a b] meaning "a comes no
    later than b".  When [le] is a strict total order (no two stored
    elements compare equal both ways — e.g. Sched's
    [(time, tenant, seqno)] keys where the seqno is globally unique),
    the pop sequence is exactly the [le]-sorted push sequence, which
    is what makes the heap a drop-in replacement for a scan-for-min
    over an unordered list.  With genuinely tied elements the pop
    order among ties is unspecified; callers that need stability must
    fold an insertion index into [le].

    [push]/[pop] are O(log n), [peek] O(1), and the backing array
    doubles on demand, so a heap that is pushed and popped in steady
    state allocates nothing per operation. *)

type 'a t

val create : le:('a -> 'a -> bool) -> 'a t
(** Empty heap ordered by [le]. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element, not removed. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)

val clear : 'a t -> unit
(** Drop every element and release the backing storage. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Visit every element in unspecified (array) order. *)

val fold : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
(** Fold over every element in unspecified (array) order. *)

val map_monotone : ('a -> 'a) -> 'a t -> unit
(** Replace every element [x] by [f x], in place, without
    re-heapifying.  Sound only when [f] is monotone with respect to
    [le] ([le a b] implies [le (f a) (f b)]) — e.g. clamping a time
    key down to a common bound — because then the heap invariant is
    preserved pointwise. *)
