let round_up x align =
  assert (align > 0);
  (x + align - 1) / align * align

let round_down x align =
  assert (align > 0);
  x / align * align

let is_pow2 x = x > 0 && x land (x - 1) = 0

let next_pow2 x =
  assert (x >= 1);
  let rec go p = if p >= x then p else go (p * 2) in
  go 1

let log2 x =
  assert (x >= 1);
  let rec go acc v = if v <= 1 then acc else go (acc + 1) (v lsr 1) in
  go 0 x

let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x
let clamp_f ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

let divide_ceil a b =
  assert (a >= 0 && b > 0);
  (a + b - 1) / b
