(** Assorted numeric helpers shared across the code base. *)

val round_up : int -> int -> int
(** [round_up x align] is the least multiple of [align] >= [x].
    Requires [align > 0]. *)

val round_down : int -> int -> int
(** [round_down x align] is the greatest multiple of [align] <= [x]. *)

val is_pow2 : int -> bool
(** True for positive powers of two. *)

val next_pow2 : int -> int
(** Least power of two >= [x]; requires [x >= 1]. *)

val log2 : int -> int
(** Floor of the base-2 log; requires [x >= 1]. *)

val clamp : lo:int -> hi:int -> int -> int
(** Clamp into [\[lo, hi\]]. *)

val clamp_f : lo:float -> hi:float -> float -> float
(** Clamp into [\[lo, hi\]]. *)

val divide_ceil : int -> int -> int
(** Ceiling division of non-negative integers. *)
