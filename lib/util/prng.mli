(** Deterministic pseudo-random number generation.

    All randomness in the repository flows through this module so that
    workload generation, sampling-based profiling, and property tests
    are reproducible from a seed.  The generator is splitmix64, which is
    fast, has a full 64-bit state, and supports cheap stream splitting. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val split : t -> t
(** [split t] derives an independent generator; advances [t]. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin flip. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)
