let sum xs = Array.fold_left ( +. ) 0.0 xs

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else sum xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (acc /. float_of_int n)
  end

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let median xs = percentile xs 50.0

let geomean xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let acc = Array.fold_left (fun a x -> a +. log x) 0.0 xs in
    exp (acc /. float_of_int n)
  end

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_max: empty array";
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0)) xs

type online = { mutable count : int; mutable m : float; mutable s : float }

let online_create () = { count = 0; m = 0.0; s = 0.0 }

let online_add o x =
  o.count <- o.count + 1;
  let delta = x -. o.m in
  o.m <- o.m +. (delta /. float_of_int o.count);
  o.s <- o.s +. (delta *. (x -. o.m))

let online_count o = o.count
let online_mean o = o.m

let online_reset o =
  o.count <- 0;
  o.m <- 0.0;
  o.s <- 0.0

let online_stddev o =
  if o.count < 2 then 0.0 else sqrt (o.s /. float_of_int o.count)
