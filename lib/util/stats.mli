(** Small statistics helpers used by the profiler and bench harness. *)

val mean : float array -> float
(** Arithmetic mean; 0 on the empty array. *)

val stddev : float array -> float
(** Population standard deviation; 0 on arrays shorter than 2. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], linear interpolation on a
    sorted copy.  Raises [Invalid_argument] on the empty array. *)

val median : float array -> float
(** 50th percentile. *)

val geomean : float array -> float
(** Geometric mean of positive values; 0 on the empty array. *)

val sum : float array -> float
(** Sum of all elements. *)

val min_max : float array -> float * float
(** Minimum and maximum.  Raises [Invalid_argument] on the empty array. *)

type online
(** Online (Welford) accumulator for mean/variance without storing samples. *)

val online_create : unit -> online
val online_add : online -> float -> unit
val online_count : online -> int
val online_mean : online -> float
val online_stddev : online -> float

val online_reset : online -> unit
(** Forget all samples (between runs). *)
