type t = { header : string list; mutable rows : string list list }

let create ~header = { header; rows = [] }

let add_row t row = t.rows <- row :: t.rows

let cell_f x = Printf.sprintf "%.3f" x
let cell_pct x = Printf.sprintf "%.1f%%" (x *. 100.0)

let pad width s =
  let len = String.length s in
  if len >= width then s else s ^ String.make (width - len) ' '

let render t =
  let rows = List.rev t.rows in
  let ncols =
    List.fold_left
      (fun acc row -> max acc (List.length row))
      (List.length t.header) rows
  in
  let normalize row =
    let len = List.length row in
    if len >= ncols then row else row @ List.init (ncols - len) (fun _ -> "")
  in
  let header = normalize t.header in
  let rows = List.map normalize rows in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  measure header;
  List.iter measure rows;
  let line row =
    String.concat "  " (List.mapi (fun i cell -> pad widths.(i) cell) row)
  in
  let sep =
    String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  String.concat "\n" (line header :: sep :: List.map line rows)

let print t =
  print_string (render t);
  print_newline ()
