(** ASCII table rendering for the bench harness and reports.

    Every figure harness prints its series through this module so that
    output is uniform and diffable. *)

type t

val create : header:string list -> t
(** New table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row; short rows are padded with empty cells. *)

val render : t -> string
(** Render with aligned columns and a header separator. *)

val print : t -> unit
(** [render] to stdout, followed by a newline. *)

val cell_f : float -> string
(** Format a float cell with 3 significant decimals ("12.345"). *)

val cell_pct : float -> string
(** Format a ratio as a percentage cell ("42.1%"). *)
