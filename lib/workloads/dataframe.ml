module Ir = Mira_mir.Ir
module B = Mira_mir.Builder
module T = Mira_mir.Types

type config = {
  rows : int;
  groups : int;
  seed : int;
  parallel_filter : bool;
  ops : [ `Full | `Agg_only ];
}

let config_default =
  { rows = 120_000; groups = 60_000; seed = 11; parallel_filter = false; ops = `Full }

let far_bytes cfg =
  (* 5 columns + result vector + group tables + filter state *)
  (5 * cfg.rows * 8) + (cfg.rows * 8) + (2 * cfg.groups * 8) + 8

let aifm_gran program site = Workload_util.chunked_gran ~chunk:4096 program site

let build cfg =
  let b = B.program "dataframe" in
  let rows = B.iconst cfg.rows in
  let col = T.Ptr T.F64 in
  let icol = T.Ptr T.I64 in
  (* init: synthetic taxi trips *)
  B.func b "init"
    [ ("pickup", icol); ("dist", col); ("fare", col); ("pass", icol); ("vendor", icol) ]
    T.Unit
    (fun fb args ->
      match args with
      | [ pickup; dist; fare; pass_; vendor ] ->
        B.for_ fb ~lo:(B.iconst 0) ~hi:rows (fun i ->
            let p = B.gep fb ~base:pickup ~index:i ~elem:T.I64 () in
            B.store fb T.I64 ~ptr:p ~value:i;
            let d_raw = B.call fb "rand_int" [ B.iconst 2000 ] in
            let d = B.i2f fb d_raw in
            let d = B.fbin fb Ir.Fdiv d (Ir.Ofloat 100.0) in
            let pd = B.gep fb ~base:dist ~index:i ~elem:T.F64 () in
            B.store fb T.F64 ~ptr:pd ~value:d;
            let f = B.fbin fb Ir.Fmul d (Ir.Ofloat 2.5) in
            let f = B.fbin fb Ir.Fadd f (Ir.Ofloat 3.0) in
            let pf = B.gep fb ~base:fare ~index:i ~elem:T.F64 () in
            B.store fb T.F64 ~ptr:pf ~value:f;
            let np = B.call fb "rand_int" [ B.iconst 6 ] in
            let np = B.bin fb Ir.Add np (B.iconst 1) in
            let pp = B.gep fb ~base:pass_ ~index:i ~elem:T.I64 () in
            B.store fb T.I64 ~ptr:pp ~value:np;
            let v = B.call fb "rand_int" [ B.iconst cfg.groups ] in
            let pv = B.gep fb ~base:vendor ~index:i ~elem:T.I64 () in
            B.store fb T.I64 ~ptr:pv ~value:v)
      | _ -> assert false);
  (* work: filter + group-by + three aggregations *)
  B.func b "work"
    [ ("dist", col); ("fare", col); ("vendor", icol); ("result", icol);
      ("fstate", icol); ("gsum", col); ("gcnt", icol) ]
    T.Unit
    (fun fb args ->
      match args with
      | [ dist; fare; vendor; result; fstate; gsum; gcnt ] ->
        if cfg.ops = `Full then begin
          (* filter: indices of trips longer than 5 miles *)
          B.store fb T.I64 ~ptr:fstate ~value:(B.iconst 0);
          let floop = if cfg.parallel_filter then B.par_for else B.for_ in
          floop fb ~lo:(B.iconst 0) ~hi:rows (fun i ->
              let pd = B.gep fb ~base:dist ~index:i ~elem:T.F64 () in
              let d = B.load fb T.F64 pd in
              let hit = B.fcmp fb Ir.Gt d (Ir.Ofloat 5.0) in
              B.if_ fb hit
                (fun () ->
                  let c = B.load fb T.I64 fstate in
                  let pr = B.gep fb ~base:result ~index:c ~elem:T.I64 () in
                  B.store fb T.I64 ~ptr:pr ~value:i;
                  let c' = B.bin fb Ir.Add c (B.iconst 1) in
                  B.store fb T.I64 ~ptr:fstate ~value:c')
                ());
          (* group-by vendor: fare sums and counts *)
          B.for_ fb ~lo:(B.iconst 0) ~hi:rows (fun i ->
              let pv = B.gep fb ~base:vendor ~index:i ~elem:T.I64 () in
              let v = B.load fb T.I64 pv in
              let pf = B.gep fb ~base:fare ~index:i ~elem:T.F64 () in
              let f = B.load fb T.F64 pf in
              let ps = B.gep fb ~base:gsum ~index:v ~elem:T.F64 () in
              let s = B.load fb T.F64 ps in
              let s' = B.fbin fb Ir.Fadd s f in
              B.store fb T.F64 ~ptr:ps ~value:s';
              let pc = B.gep fb ~base:gcnt ~index:v ~elem:T.I64 () in
              let c = B.load fb T.I64 pc in
              let c' = B.bin fb Ir.Add c (B.iconst 1) in
              B.store fb T.I64 ~ptr:pc ~value:c')
        end;
        (* three aggregations over the fare column: avg, min, max — three
           consecutive loops the batching pass fuses (Figure 23) *)
        let sum, _ = B.alloc fb ~name:"agg_sum" ~space:Ir.Stack T.F64 (B.iconst 1) in
        let mn, _ = B.alloc fb ~name:"agg_min" ~space:Ir.Stack T.F64 (B.iconst 1) in
        let mx, _ = B.alloc fb ~name:"agg_max" ~space:Ir.Stack T.F64 (B.iconst 1) in
        B.store fb T.F64 ~ptr:sum ~value:(Ir.Ofloat 0.0);
        B.store fb T.F64 ~ptr:mn ~value:(Ir.Ofloat 1e18);
        B.store fb T.F64 ~ptr:mx ~value:(Ir.Ofloat (-1e18));
        B.for_ fb ~lo:(B.iconst 0) ~hi:rows (fun i ->
            let pf = B.gep fb ~base:fare ~index:i ~elem:T.F64 () in
            let f = B.load fb T.F64 pf in
            let s = B.load fb T.F64 sum in
            let s' = B.fbin fb Ir.Fadd s f in
            B.store fb T.F64 ~ptr:sum ~value:s');
        B.for_ fb ~lo:(B.iconst 0) ~hi:rows (fun i ->
            let pf = B.gep fb ~base:fare ~index:i ~elem:T.F64 () in
            let f = B.load fb T.F64 pf in
            let m = B.load fb T.F64 mn in
            let lt = B.fcmp fb Ir.Lt f m in
            B.if_ fb lt (fun () -> B.store fb T.F64 ~ptr:mn ~value:f) ());
        B.for_ fb ~lo:(B.iconst 0) ~hi:rows (fun i ->
            let pf = B.gep fb ~base:fare ~index:i ~elem:T.F64 () in
            let f = B.load fb T.F64 pf in
            let m = B.load fb T.F64 mx in
            let gt = B.fcmp fb Ir.Gt f m in
            B.if_ fb gt (fun () -> B.store fb T.F64 ~ptr:mx ~value:f) ());
        (* publish aggregates through the group table's tail slots *)
        let s = B.load fb T.F64 sum in
        let p0 = B.gep fb ~base:gsum ~index:(B.iconst 0) ~elem:T.F64 () in
        let s0 = B.load fb T.F64 p0 in
        let s0' = B.fbin fb Ir.Fadd s0 (B.fbin fb Ir.Fmul s (Ir.Ofloat 1e-6)) in
        B.store fb T.F64 ~ptr:p0 ~value:s0'
      | _ -> assert false);
  B.func b "checksum"
    [ ("result", icol); ("fstate", icol); ("gsum", col); ("gcnt", icol) ]
    T.I64
    (fun fb args ->
      match args with
      | [ result; fstate; gsum; gcnt ] ->
        let acc, _ = B.alloc fb ~name:"ck_acc" ~space:Ir.Stack T.I64 (B.iconst 1) in
        let count = B.load fb T.I64 fstate in
        B.store fb T.I64 ~ptr:acc ~value:count;
        B.for_ fb ~lo:(B.iconst 0) ~hi:(B.iconst (min 1024 cfg.groups)) (fun v ->
            let ps = B.gep fb ~base:gsum ~index:v ~elem:T.F64 () in
            let s = B.load fb T.F64 ps in
            let si = B.f2i fb s in
            let pc = B.gep fb ~base:gcnt ~index:v ~elem:T.I64 () in
            let c = B.load fb T.I64 pc in
            let a = B.load fb T.I64 acc in
            let a = B.bin fb Ir.Add a si in
            let a = B.bin fb Ir.Add a c in
            B.store fb T.I64 ~ptr:acc ~value:a);
        (* sample a few filtered indices *)
        let step = max 1 (cfg.rows / 64) in
        let lim = B.bin fb Ir.Rem count (B.iconst (max 1 (cfg.rows / 2))) in
        ignore lim;
        B.for_ fb ~lo:(B.iconst 0) ~hi:count ~step:(B.iconst step) (fun i ->
            let pr = B.gep fb ~base:result ~index:i ~elem:T.I64 () in
            let r = B.load fb T.I64 pr in
            let a = B.load fb T.I64 acc in
            let a = B.bin fb Ir.Add a r in
            B.store fb T.I64 ~ptr:acc ~value:a);
        let final = B.load fb T.I64 acc in
        B.ret fb final
      | _ -> assert false);
  B.func b "main" [] T.I64 (fun fb _ ->
      let pickup, _ = B.alloc fb ~name:"pickup" T.I64 rows in
      let dist, _ = B.alloc fb ~name:"dist" T.F64 rows in
      let fare, _ = B.alloc fb ~name:"fare" T.F64 rows in
      let pass_, _ = B.alloc fb ~name:"pass" T.I64 rows in
      let vendor, _ = B.alloc fb ~name:"vendor" T.I64 rows in
      let result, _ = B.alloc fb ~name:"result" T.I64 rows in
      let fstate, _ = B.alloc fb ~name:"fstate" T.I64 (B.iconst 1) in
      let gsum, _ = B.alloc fb ~name:"gsum" T.F64 (B.iconst cfg.groups) in
      let gcnt, _ = B.alloc fb ~name:"gcnt" T.I64 (B.iconst cfg.groups) in
      ignore (B.call fb "init" [ pickup; dist; fare; pass_; vendor ]);
      B.for_ fb ~lo:(B.iconst 0) ~hi:(B.iconst cfg.groups) (fun v ->
          let ps = B.gep fb ~base:gsum ~index:v ~elem:T.F64 () in
          B.store fb T.F64 ~ptr:ps ~value:(Ir.Ofloat 0.0);
          let pc = B.gep fb ~base:gcnt ~index:v ~elem:T.I64 () in
          B.store fb T.I64 ~ptr:pc ~value:(B.iconst 0));
      ignore (B.call fb "work" [ dist; fare; vendor; result; fstate; gsum; gcnt ]);
      let sum = B.call fb "checksum" [ result; fstate; gsum; gcnt ] in
      B.ret fb sum);
  B.finish b ~entry:"main"
