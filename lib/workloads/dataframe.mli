(** DataFrame: columnar data analytics (the paper's §6 application,
    modelled on the NYC-taxi workload of the DataFrame library).

    The table is a set of column arrays over [rows] synthetic taxi
    trips: pickup timestamp, trip distance, fare, passenger count, and
    vendor id.  The measured job mirrors the paper's usage:

    - a {b filter} over trip distance that writes matching row indices
      to a result vector (the writable-shared multithreading study of
      Figure 25 runs this loop as a parallel loop);
    - a {b group-by} on vendor id accumulating fare sums (indirect
      writes into a small table);
    - three {b aggregations} over the fare column — avg, min, max — as
      three separate loops over the same column, which Mira's batching
      pass fuses into one (Figure 23).

    Columns are accessed sequentially and mostly read-only, so Mira
    assigns them streaming sections with large lines; the result vector
    is write-only (fetch-free stores). *)

type config = {
  rows : int;
  groups : int;  (** group-by cardinality (taxi pickup zones) *)
  seed : int;
  parallel_filter : bool;  (** run the filter as a parallel loop *)
  ops : [ `Full | `Agg_only ];
      (** [`Agg_only] runs only the avg/min/max job (Figure 23) *)
}

val config_default : config
(** 120k rows, 60k groups (the group tables are ~29% of the heap, so
    the local-memory sweep exercises real pressure). *)

val build : config -> Mira_mir.Ir.program
val far_bytes : config -> int

val aifm_gran : Mira_mir.Ir.program -> int -> int
(** AIFM's DataFrame library uses chunked remote vectors: 4 KB chunks. *)
