module Ir = Mira_mir.Ir
module B = Mira_mir.Builder
module T = Mira_mir.Types

type config = {
  layers : int;
  d_model : int;
  seq : int;
  seed : int;
  parallel : bool;
}

let config_default = { layers = 4; d_model = 24; seq = 12; seed = 3; parallel = false }

(* Per-layer weights: Wqkv (3d x d), Wproj (d x d), Wff1 (4d x d),
   Wff2 (d x 4d), all stored output-major (transposed for row-sequential
   dot products). *)
let layer_weight_bytes cfg =
  let d = cfg.d_model in
  8 * ((3 * d * d) + (d * d) + (4 * d * d) + (4 * d * d))

let scratch_bytes cfg =
  let d = cfg.d_model and s = cfg.seq in
  8 * ((s * d) + (s * 3 * d) + (s * d) + (s * 4 * d))

let kv_bytes cfg = 8 * (cfg.seq * 2 * cfg.d_model)

let far_bytes cfg =
  scratch_bytes cfg + (cfg.layers * (layer_weight_bytes cfg + kv_bytes cfg))

let aifm_gran program site = Workload_util.chunked_gran ~chunk:4096 program site

(* c[i*n+j] is produced by [emit fb acc_value i j] *)
let matmul cfg fb ~m ~n ~k ~a ~bt ~emit =
  let loop = if cfg.parallel then B.par_for else B.for_ in
  loop fb ~lo:(B.iconst 0) ~hi:(B.iconst m) (fun i ->
      let acc, _ = B.alloc fb ~name:"mm_acc" ~space:Ir.Stack T.F64 (B.iconst 1) in
      B.for_ fb ~lo:(B.iconst 0) ~hi:(B.iconst n) (fun j ->
          B.store fb T.F64 ~ptr:acc ~value:(Ir.Ofloat 0.0);
          let row_a = B.bin fb Ir.Mul i (B.iconst k) in
          let row_b = B.bin fb Ir.Mul j (B.iconst k) in
          B.for_ fb ~lo:(B.iconst 0) ~hi:(B.iconst k) (fun kk ->
              let ia = B.bin fb Ir.Add row_a kk in
              let av = B.load fb T.F64 (B.gep fb ~base:a ~index:ia ~elem:T.F64 ()) in
              let ib = B.bin fb Ir.Add row_b kk in
              let bv = B.load fb T.F64 (B.gep fb ~base:bt ~index:ib ~elem:T.F64 ()) in
              let s = B.load fb T.F64 acc in
              let s' = B.fbin fb Ir.Fadd s (B.fbin fb Ir.Fmul av bv) in
              B.store fb T.F64 ~ptr:acc ~value:s');
          let v = B.load fb T.F64 acc in
          emit fb v i j))

let build cfg =
  let b = B.program "gpt2" in
  let d = cfg.d_model and s = cfg.seq in
  let col = T.Ptr T.F64 in
  let scratch_names = [ "x"; "qkv"; "attn"; "hbuf" ] in
  let layer_names l =
    [ Printf.sprintf "w%d_qkv" l; Printf.sprintf "w%d_proj" l;
      Printf.sprintf "w%d_ff1" l; Printf.sprintf "w%d_ff2" l;
      Printf.sprintf "kv%d" l ]
  in
  let all_names =
    scratch_names @ List.concat (List.init cfg.layers layer_names)
  in
  let params = List.map (fun name -> (name, col)) all_names in
  let sizes =
    [ s * d; s * 3 * d; s * d; s * 4 * d ]
    @ List.concat
        (List.init cfg.layers (fun _ ->
             [ 3 * d * d; d * d; 4 * d * d; 4 * d * d; s * 2 * d ]))
  in
  (* init: random inputs and weights, zero KV cache *)
  B.func b "init" params T.Unit (fun fb args ->
      List.iteri
        (fun idx ptr ->
          let count = List.nth sizes idx in
          let name = List.nth all_names idx in
          let is_kv = String.length name >= 2 && String.sub name 0 2 = "kv" in
          B.for_ fb ~lo:(B.iconst 0) ~hi:(B.iconst count) (fun i ->
              let p = B.gep fb ~base:ptr ~index:i ~elem:T.F64 () in
              if is_kv then B.store fb T.F64 ~ptr:p ~value:(Ir.Ofloat 0.0)
              else begin
                let r = B.call fb "rand_int" [ B.iconst 1000 ] in
                let f = B.i2f fb r in
                let f = B.fbin fb Ir.Fdiv f (Ir.Ofloat 1000.0) in
                let f = B.fbin fb Ir.Fsub f (Ir.Ofloat 0.5) in
                let f =
                  B.fbin fb Ir.Fdiv f (Ir.Ofloat (sqrt (float_of_int d)))
                in
                B.store fb T.F64 ~ptr:p ~value:f
              end))
        args);
  (* work: the forward pass, layers unrolled at build time *)
  B.func b "work" params T.Unit (fun fb args ->
      let arg name =
        let rec find names vals =
          match (names, vals) with
          | n :: _, v :: _ when String.equal n name -> v
          | _ :: ns, _ :: vs -> find ns vs
          | _, _ -> invalid_arg ("gpt2: no arg " ^ name)
        in
        find all_names args
      in
      let x = arg "x" and qkv = arg "qkv" and attn = arg "attn" and hbuf = arg "hbuf" in
      for l = 0 to cfg.layers - 1 do
        let w name = arg (Printf.sprintf "w%d_%s" l name) in
        let kv = arg (Printf.sprintf "kv%d" l) in
        (* 1. qkv = x @ Wqkv^T *)
        matmul cfg fb ~m:s ~n:(3 * d) ~k:d ~a:x ~bt:(w "qkv")
          ~emit:(fun fb v i j ->
            let idx = B.bin fb Ir.Add (B.bin fb Ir.Mul i (B.iconst (3 * d))) j in
            B.store fb T.F64 ~ptr:(B.gep fb ~base:qkv ~index:idx ~elem:T.F64 ()) ~value:v);
        (* 2. append K and V rows to the layer's KV cache *)
        B.for_ fb ~lo:(B.iconst 0) ~hi:(B.iconst s) (fun i ->
            B.for_ fb ~lo:(B.iconst 0) ~hi:(B.iconst d) (fun j ->
                let src_k =
                  B.bin fb Ir.Add (B.bin fb Ir.Mul i (B.iconst (3 * d)))
                    (B.bin fb Ir.Add j (B.iconst d))
                in
                let kvv = B.load fb T.F64 (B.gep fb ~base:qkv ~index:src_k ~elem:T.F64 ()) in
                let dst_k = B.bin fb Ir.Add (B.bin fb Ir.Mul i (B.iconst (2 * d))) j in
                B.store fb T.F64 ~ptr:(B.gep fb ~base:kv ~index:dst_k ~elem:T.F64 ()) ~value:kvv;
                let src_v =
                  B.bin fb Ir.Add (B.bin fb Ir.Mul i (B.iconst (3 * d)))
                    (B.bin fb Ir.Add j (B.iconst (2 * d)))
                in
                let vv = B.load fb T.F64 (B.gep fb ~base:qkv ~index:src_v ~elem:T.F64 ()) in
                let dst_v =
                  B.bin fb Ir.Add (B.bin fb Ir.Mul i (B.iconst (2 * d)))
                    (B.bin fb Ir.Add j (B.iconst d))
                in
                B.store fb T.F64 ~ptr:(B.gep fb ~base:kv ~index:dst_v ~elem:T.F64 ()) ~value:vv));
        (* 3. attention: attn[i,:] = sum_j (q_i . k_j / d) * v_j *)
        let aloop = if cfg.parallel then B.par_for else B.for_ in
        aloop fb ~lo:(B.iconst 0) ~hi:(B.iconst s) (fun i ->
            B.for_ fb ~lo:(B.iconst 0) ~hi:(B.iconst d) (fun c ->
                let idx = B.bin fb Ir.Add (B.bin fb Ir.Mul i (B.iconst d)) c in
                B.store fb T.F64 ~ptr:(B.gep fb ~base:attn ~index:idx ~elem:T.F64 ())
                  ~value:(Ir.Ofloat 0.0));
            let score, _ =
              B.alloc fb ~name:"attn_score" ~space:Ir.Stack T.F64 (B.iconst 1)
            in
            B.for_ fb ~lo:(B.iconst 0) ~hi:(B.iconst s) (fun j ->
                B.store fb T.F64 ~ptr:score ~value:(Ir.Ofloat 0.0);
                B.for_ fb ~lo:(B.iconst 0) ~hi:(B.iconst d) (fun k ->
                    let qi = B.bin fb Ir.Add (B.bin fb Ir.Mul i (B.iconst (3 * d))) k in
                    let qv = B.load fb T.F64 (B.gep fb ~base:qkv ~index:qi ~elem:T.F64 ()) in
                    let ki = B.bin fb Ir.Add (B.bin fb Ir.Mul j (B.iconst (2 * d))) k in
                    let kvv = B.load fb T.F64 (B.gep fb ~base:kv ~index:ki ~elem:T.F64 ()) in
                    let sc = B.load fb T.F64 score in
                    B.store fb T.F64 ~ptr:score
                      ~value:(B.fbin fb Ir.Fadd sc (B.fbin fb Ir.Fmul qv kvv)));
                let sc = B.load fb T.F64 score in
                let sc =
                  B.fbin fb Ir.Fdiv sc (Ir.Ofloat (float_of_int (d * s)))
                in
                B.for_ fb ~lo:(B.iconst 0) ~hi:(B.iconst d) (fun c ->
                    let vi =
                      B.bin fb Ir.Add (B.bin fb Ir.Mul j (B.iconst (2 * d)))
                        (B.bin fb Ir.Add c (B.iconst d))
                    in
                    let vv = B.load fb T.F64 (B.gep fb ~base:kv ~index:vi ~elem:T.F64 ()) in
                    let ai = B.bin fb Ir.Add (B.bin fb Ir.Mul i (B.iconst d)) c in
                    let ap = B.gep fb ~base:attn ~index:ai ~elem:T.F64 () in
                    let av = B.load fb T.F64 ap in
                    B.store fb T.F64 ~ptr:ap
                      ~value:(B.fbin fb Ir.Fadd av (B.fbin fb Ir.Fmul sc vv)))));
        (* 4. x = tanh(attn @ Wproj^T + x)  (residual) *)
        matmul cfg fb ~m:s ~n:d ~k:d ~a:attn ~bt:(w "proj")
          ~emit:(fun fb v i j ->
            let idx = B.bin fb Ir.Add (B.bin fb Ir.Mul i (B.iconst d)) j in
            let xp = B.gep fb ~base:x ~index:idx ~elem:T.F64 () in
            let xv = B.load fb T.F64 xp in
            let t = B.call fb "tanh" [ B.fbin fb Ir.Fadd v xv ] in
            B.store fb T.F64 ~ptr:xp ~value:t);
        (* 5. hbuf = relu(x @ Wff1^T) *)
        matmul cfg fb ~m:s ~n:(4 * d) ~k:d ~a:x ~bt:(w "ff1")
          ~emit:(fun fb v i j ->
            let idx = B.bin fb Ir.Add (B.bin fb Ir.Mul i (B.iconst (4 * d))) j in
            let pos = B.fcmp fb Ir.Gt v (Ir.Ofloat 0.0) in
            let hp = B.gep fb ~base:hbuf ~index:idx ~elem:T.F64 () in
            B.if_ fb pos
              (fun () -> B.store fb T.F64 ~ptr:hp ~value:v)
              ~else_:(fun () -> B.store fb T.F64 ~ptr:hp ~value:(Ir.Ofloat 0.0))
              ());
        (* 6. x = tanh(hbuf @ Wff2^T + x) *)
        matmul cfg fb ~m:s ~n:d ~k:(4 * d) ~a:hbuf ~bt:(w "ff2")
          ~emit:(fun fb v i j ->
            let idx = B.bin fb Ir.Add (B.bin fb Ir.Mul i (B.iconst d)) j in
            let xp = B.gep fb ~base:x ~index:idx ~elem:T.F64 () in
            let xv = B.load fb T.F64 xp in
            let t = B.call fb "tanh" [ B.fbin fb Ir.Fadd v xv ] in
            B.store fb T.F64 ~ptr:xp ~value:t)
      done);
  B.func b "checksum" [ ("x", col) ] T.I64 (fun fb args ->
      match args with
      | [ x ] ->
        let acc, _ = B.alloc fb ~name:"gpt_acc" ~space:Ir.Stack T.F64 (B.iconst 1) in
        B.store fb T.F64 ~ptr:acc ~value:(Ir.Ofloat 0.0);
        B.for_ fb ~lo:(B.iconst 0) ~hi:(B.iconst (s * d)) (fun i ->
            let v = B.load fb T.F64 (B.gep fb ~base:x ~index:i ~elem:T.F64 ()) in
            let a = B.load fb T.F64 acc in
            B.store fb T.F64 ~ptr:acc ~value:(B.fbin fb Ir.Fadd a v));
        let a = B.load fb T.F64 acc in
        let scaled = B.fbin fb Ir.Fmul a (Ir.Ofloat 1e6) in
        B.ret fb (B.f2i fb scaled)
      | _ -> assert false);
  B.func b "main" [] T.I64 (fun fb _ ->
      let ptrs =
        List.map2
          (fun name count -> fst (B.alloc fb ~name T.F64 (B.iconst count)))
          all_names sizes
      in
      ignore (B.call fb "init" ptrs);
      ignore (B.call fb "work" ptrs);
      let sum = B.call fb "checksum" [ List.hd ptrs ] in
      B.ret fb sum);
  B.finish b ~entry:"main"
