(** GPT-2 inference (transformer blocks with a KV cache), scaled down.

    The paper runs GPT-2 on ONNX; the behaviour its evaluation hinges
    on is {e layer-by-layer lifetime}: each layer's weight matrices
    (QKV, projection, two feed-forward matrices) and KV-cache slab are
    touched exactly during that layer's computation and never again in
    the forward pass, so Mira ends their sections as layers finish and
    even a sliver of local memory sustains full throughput (Figure 17).

    We build the forward pass with the layer loop unrolled at
    construction time so every layer's weights are distinct allocation
    sites (distinct lifetimes), with real matmuls/attention over [f64]
    at reduced dimensions.  Weight reads are large and sequential
    (streaming sections, deep prefetch); activations are small and hot.

    The attention loop is a parallel loop over query rows when
    [threads] parallelism is requested (read-only sharing of weights
    and KV — the per-thread private sections of §4.6, Figure 24). *)

type config = {
  layers : int;
  d_model : int;
  seq : int;
  seed : int;
  parallel : bool;  (** parallel loops over output rows *)
}

val config_default : config
(** 4 layers, d=32, seq=16 — small enough for the simulated matmuls,
    big enough that per-layer weights dominate memory. *)

val build : config -> Mira_mir.Ir.program
val far_bytes : config -> int

val layer_weight_bytes : config -> int
(** Weights of one layer (Figure 17's x-axis is relative to this). *)

val aifm_gran : Mira_mir.Ir.program -> int -> int
