module Ir = Mira_mir.Ir
module B = Mira_mir.Builder
module T = Mira_mir.Types

type config = {
  num_edges : int;
  num_nodes : int;
  seed : int;
  with_random_array : bool;
  random_array_elems : int;
  parallel : bool;
}

let config_default =
  {
    num_edges = 100_000;
    num_nodes = 10_000;
    seed = 7;
    with_random_array = false;
    random_array_elems = 100_000;
    parallel = false;
  }

let edge_def =
  { T.s_name = "edge"; s_fields = [ ("from", T.I64); ("to", T.I64); ("weight", T.F64) ] }

(* 128-byte node entries, as in the paper's Figure 9. *)
let node_def =
  {
    T.s_name = "node";
    s_fields =
      ("value", T.F64) :: ("count", T.I64)
      :: List.init 14 (fun i -> (Printf.sprintf "pad%d" i, T.F64));
  }

let edge_bytes = T.size_of (T.Struct edge_def)
let node_bytes = T.size_of (T.Struct node_def)

let far_bytes cfg =
  (cfg.num_edges * edge_bytes)
  + (cfg.num_nodes * node_bytes)
  + if cfg.with_random_array then cfg.random_array_elems * 8 else 0

let build cfg =
  let b = B.program "graph_traversal" in
  let edge_ty = T.Struct edge_def in
  let node_ty = T.Struct node_def in
  let e = B.iconst cfg.num_edges in
  let n = B.iconst cfg.num_nodes in
  (* init: edges get random endpoints and unit weights; nodes zeroed. *)
  B.func b "init"
    [ ("edges", T.Ptr edge_ty); ("nodes", T.Ptr node_ty) ]
    T.Unit
    (fun fb args ->
      match args with
      | [ edges; nodes ] ->
        B.for_ fb ~lo:(B.iconst 0) ~hi:e (fun i ->
            let from = B.call fb "rand_int" [ n ] in
            let to_ = B.call fb "rand_int" [ n ] in
            let pf = B.field_ptr fb ~base:edges ~index:i ~def:edge_def ~field:"from" in
            B.store fb T.I64 ~ptr:pf ~value:from;
            let pt = B.field_ptr fb ~base:edges ~index:i ~def:edge_def ~field:"to" in
            B.store fb T.I64 ~ptr:pt ~value:to_;
            let pw =
              B.field_ptr fb ~base:edges ~index:i ~def:edge_def ~field:"weight"
            in
            B.store fb T.F64 ~ptr:pw ~value:(Ir.Ofloat 1.0));
        B.for_ fb ~lo:(B.iconst 0) ~hi:n (fun i ->
            let pv = B.field_ptr fb ~base:nodes ~index:i ~def:node_def ~field:"value" in
            B.store fb T.F64 ~ptr:pv ~value:(Ir.Ofloat 0.0);
            let pc = B.field_ptr fb ~base:nodes ~index:i ~def:node_def ~field:"count" in
            B.store fb T.I64 ~ptr:pc ~value:(B.iconst 0))
      | _ -> assert false);
  (* work: the traversal of Figure 4 (update_node inlined, as in the
     paper's converted-code listing). *)
  B.func b "work"
    [ ("edges", T.Ptr edge_ty); ("nodes", T.Ptr node_ty); ("rnd", T.Ptr T.I64) ]
    T.Unit
    (fun fb args ->
      match args with
      | [ edges; nodes; rnd ] ->
        let loop = if cfg.parallel then B.par_for else B.for_ in
        loop fb ~lo:(B.iconst 0) ~hi:e (fun i ->
            let pf = B.field_ptr fb ~base:edges ~index:i ~def:edge_def ~field:"from" in
            let from = B.load fb T.I64 pf in
            let pt = B.field_ptr fb ~base:edges ~index:i ~def:edge_def ~field:"to" in
            let to_ = B.load fb T.I64 pt in
            let pw =
              B.field_ptr fb ~base:edges ~index:i ~def:edge_def ~field:"weight"
            in
            let w = B.load fb T.F64 pw in
            (* nodes[from].value += w; nodes[from].count += 1 *)
            let pv =
              B.field_ptr fb ~base:nodes ~index:from ~def:node_def ~field:"value"
            in
            let v = B.load fb T.F64 pv in
            let v' = B.fbin fb Ir.Fadd v w in
            B.store fb T.F64 ~ptr:pv ~value:v';
            let pc =
              B.field_ptr fb ~base:nodes ~index:from ~def:node_def ~field:"count"
            in
            let c = B.load fb T.I64 pc in
            let c' = B.bin fb Ir.Add c (B.iconst 1) in
            B.store fb T.I64 ~ptr:pc ~value:c';
            (* nodes[to].value -= w *)
            let pv2 =
              B.field_ptr fb ~base:nodes ~index:to_ ~def:node_def ~field:"value"
            in
            let v2 = B.load fb T.F64 pv2 in
            let v2' = B.fbin fb Ir.Fsub v2 w in
            B.store fb T.F64 ~ptr:pv2 ~value:v2');
        if cfg.with_random_array then begin
          let r = B.iconst cfg.random_array_elems in
          B.for_ fb ~lo:(B.iconst 0) ~hi:e (fun i ->
              (* Deterministic pseudo-random index: an LCG of i, opaque to
                 the affine analysis (classified Random). *)
              let x = B.bin fb Ir.Mul i (B.iconst 1103515245) in
              let x = B.bin fb Ir.Add x (B.iconst 12345) in
              let x = B.bin fb Ir.Land x (Ir.Oint 0x7FFFFFFFL) in
              let j = B.bin fb Ir.Rem x r in
              let p = B.gep fb ~base:rnd ~index:j ~elem:T.I64 () in
              let v = B.load fb T.I64 p in
              let v' = B.bin fb Ir.Add v (B.iconst 1) in
              B.store fb T.I64 ~ptr:p ~value:v')
        end
      | _ -> assert false);
  (* checksum over a prefix of the node array *)
  B.func b "checksum"
    [ ("nodes", T.Ptr node_ty) ]
    T.I64
    (fun fb args ->
      match args with
      | [ nodes ] ->
        let acc, _ = B.alloc fb ~name:"acc" ~space:Ir.Stack T.I64 (B.iconst 1) in
        B.store fb T.I64 ~ptr:acc ~value:(B.iconst 0);
        let limit = B.iconst (min 1000 cfg.num_nodes) in
        B.for_ fb ~lo:(B.iconst 0) ~hi:limit (fun i ->
            let pc = B.field_ptr fb ~base:nodes ~index:i ~def:node_def ~field:"count" in
            let c = B.load fb T.I64 pc in
            let pv = B.field_ptr fb ~base:nodes ~index:i ~def:node_def ~field:"value" in
            let v = B.load fb T.F64 pv in
            let vi = B.f2i fb v in
            let a = B.load fb T.I64 acc in
            let a = B.bin fb Ir.Add a c in
            let a = B.bin fb Ir.Add a vi in
            B.store fb T.I64 ~ptr:acc ~value:a);
        let final = B.load fb T.I64 acc in
        B.ret fb final
      | _ -> assert false);
  B.func b "main" [] T.I64 (fun fb _ ->
      let edges, _ = B.alloc fb ~name:"edges" edge_ty e in
      let nodes, _ = B.alloc fb ~name:"nodes" node_ty n in
      let rnd, _ =
        B.alloc fb ~name:"rnd" T.I64
          (B.iconst (if cfg.with_random_array then cfg.random_array_elems else 1))
      in
      ignore (B.call fb "init" [ edges; nodes ]);
      ignore (B.call fb "work" [ edges; nodes; rnd ]);
      let sum = B.call fb "checksum" [ nodes ] in
      B.ret fb sum);
  B.finish b ~entry:"main"
