(** The paper's running example (Figure 4): graph traversal.

    An edge array is scanned sequentially; each edge updates its source
    and destination entries in a node array, i.e. the node array is
    accessed indirectly through values read from the edge array —
    exactly the [B[A[i]]] pattern Mira's analysis-guided prefetching
    targets and history-based prefetchers cannot capture.

    Conventions shared by all workloads: the program's entry [main]
    initializes inputs and then calls the measured function [work];
    [main] returns an [i64] checksum so results can be compared across
    memory systems. *)

type config = {
  num_edges : int;
  num_nodes : int;
  seed : int;
  with_random_array : bool;
      (** add a third, uniformly-randomly accessed array (the §4.3
          section-sizing study, Figures 11/12) *)
  random_array_elems : int;
  parallel : bool;  (** use a parallel edge loop (multithread studies) *)
}

val config_default : config
(** 100k edges (24 B each), 10k nodes (128 B each). *)

val edge_bytes : int
val node_bytes : int

val build : config -> Mira_mir.Ir.program

val far_bytes : config -> int
(** Total heap footprint (for local-memory-ratio sweeps). *)
