module Clock = Mira_sim.Clock
module Sched = Mira_sim.Sched
module Runtime = Mira_runtime.Runtime
module Memsys = Mira_runtime.Memsys
module Section = Mira_cache.Section
module Manager = Mira_cache.Manager
module Metrics = Mira_telemetry.Metrics
module Trace = Mira_telemetry.Trace
module Json = Mira_telemetry.Json
module Prng = Mira_util.Prng
module Stats = Mira_util.Stats
module Timeseries = Mira_telemetry.Timeseries
module Sketch = Mira_telemetry.Sketch
module Attribution = Mira_telemetry.Attribution
module Net = Mira_sim.Net

type config = {
  tenants : int;
  requests : int;
  keys : int;
  value_bytes : int;
  zipf_s : float;
  arrival_ns : float;
  get_fraction : float;
  slo_ns : float;
  local_ratio : float;
  line : int;
  seed : int;
}

let config_default =
  {
    tenants = 4;
    requests = 20_000;
    keys = 8192;
    value_bytes = 128;
    zipf_s = 0.99;
    arrival_ns = 8_000.0;
    get_fraction = 0.95;
    slo_ns = 50_000.0;
    local_ratio = 0.5;
    line = 256;
    seed = 42;
  }

let fail fmt = Printf.ksprintf invalid_arg ("Kv_serving: " ^^ fmt)

let validate cfg =
  if cfg.tenants < 1 then fail "tenants must be >= 1 (got %d)" cfg.tenants;
  if cfg.requests < 1 then fail "requests must be >= 1 (got %d)" cfg.requests;
  if cfg.keys < 1 then fail "keys must be >= 1 (got %d)" cfg.keys;
  if cfg.value_bytes < 8 || cfg.value_bytes mod 8 <> 0 then
    fail "value_bytes must be a positive multiple of 8 (got %d)" cfg.value_bytes;
  if cfg.line < 8 || cfg.line mod 8 <> 0 then
    fail "line must be a positive multiple of 8 (got %d)" cfg.line;
  if not (cfg.zipf_s >= 0.0) then fail "zipf_s must be >= 0 (got %g)" cfg.zipf_s;
  if not (cfg.arrival_ns > 0.0) then
    fail "arrival_ns must be > 0 (got %g)" cfg.arrival_ns;
  if not (cfg.get_fraction >= 0.0 && cfg.get_fraction <= 1.0) then
    fail "get_fraction must be in [0,1] (got %g)" cfg.get_fraction;
  if not (cfg.slo_ns > 0.0) then fail "slo_ns must be > 0 (got %g)" cfg.slo_ns;
  if not (cfg.local_ratio > 0.0 && cfg.local_ratio <= 1.0) then
    fail "local_ratio must be in (0,1] (got %g)" cfg.local_ratio

type tenant_report = {
  tenant : int;
  completed : int;
  mean_ns : float;
  p50_ns : float;
  p99_ns : float;
  p999_ns : float;
  max_ns : float;
  slo_miss : int;
  slo_miss_frac : float;
  lat_hist : Metrics.hist;
}

type report = {
  r_cfg : config;
  per_tenant : tenant_report array;
  elapsed_ns : float;
  throughput_rps : float;
  agg_p50_ns : float;
  agg_p99_ns : float;
  agg_p999_ns : float;
  agg_slo_miss_frac : float;
  checksum : int64;
}

(* Sizing.  Per-tenant data is one contiguous far allocation of
   [keys * value_bytes]; the section caches [local_ratio] of it. *)
let data_bytes cfg = cfg.keys * cfg.value_bytes

let round_up n m = (n + m - 1) / m * m

let sec_bytes cfg =
  let want = int_of_float (cfg.local_ratio *. float_of_int (data_bytes cfg)) in
  max (4 * cfg.line) (round_up want cfg.line)

let page = 4096
let site_of_tenant i = 9100 + i
let sec_id_of_tenant i = 7000 + i

let runtime_config cfg =
  let local_budget = (cfg.tenants * sec_bytes cfg) + (4 * page) in
  let far_capacity =
    (2 * page) + (cfg.tenants * (round_up (data_bytes cfg) page + page))
  in
  Runtime.Config.make ~local_budget ~far_capacity
  |> Runtime.Config.with_tenants cfg.tenants

(* Zipfian popularity: rank r (0-based) has weight (r+1)^-s.  Ranks are
   mapped onto key indices through a seed-deterministic permutation so
   the hot set is scattered over the keyspace (and thus over cache
   lines) instead of sitting in the first few lines. *)
type generator = { cum : float array; perm : int array }

let make_generator cfg rng =
  let cum = Array.make cfg.keys 0.0 in
  let total = ref 0.0 in
  for r = 0 to cfg.keys - 1 do
    total := !total +. (1.0 /. Float.pow (float_of_int (r + 1)) cfg.zipf_s);
    cum.(r) <- !total
  done;
  let perm = Array.init cfg.keys (fun i -> i) in
  Prng.shuffle rng perm;
  { cum; perm }

let draw_key g rng =
  let n = Array.length g.cum in
  let u = Prng.float rng g.cum.(n - 1) in
  (* first rank with cum > u *)
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if g.cum.(mid) > u then hi := mid else lo := mid + 1
  done;
  g.perm.(!lo)

let draw_interarrival rng mean =
  let u = Prng.float rng 1.0 in
  -.mean *. Float.log (1.0 -. u)

let mix64 x =
  let ( ^^^ ) a b = Int64.logxor a b in
  let x = x ^^^ Int64.shift_right_logical x 33 in
  let x = Int64.mul x 0xff51afd7ed558ccdL in
  let x = x ^^^ Int64.shift_right_logical x 33 in
  let x = Int64.mul x 0xc4ceb9fe1a85ec53L in
  x ^^^ Int64.shift_right_logical x 33

let value_of ~tenant ~key ~req ~word =
  mix64
    (Int64.of_int
       ((tenant * 0x1000003) lxor (key * 8191) lxor (req * 131) lxor word))

(* Mutable per-tenant run state, written by the task, read afterwards. *)
type tenant_state = {
  ts_lats : float array;
  mutable ts_checksum : int64;
  ts_hist : Metrics.hist;
  mutable ts_slo_miss : int;
}

let serving_lane i = Printf.sprintf "serving.t%d" i

(* --- time-resolved telemetry --------------------------------------------- *)

(* Windowed observability over a serving run: a sampler task on the
   scheduler rolls a [Timeseries] at fixed simulated-time boundaries,
   and the per-request path records into the current window.  Entirely
   host-side — the sampler only reads shared state, and its clock is a
   scheduler clock outside the runtime's registry — so a run with a
   timeline attached is byte-identical (checksum, latencies, report)
   to one without. *)
module Timeline = struct
  type t = {
    interval : float;
    burn_threshold : float;  (* a window "burns" when miss_frac exceeds it *)
    topk : int;
    ts : Timeseries.t;
    keys : Sketch.t;  (* hot keys of the current window; reset per boundary *)
    (* wired by [attach], before the sampler runs *)
    mutable net : Net.t option;
    mutable miss_sites : Sketch.t option;
    mutable bandwidth : float;  (* bytes/ns, for the wire-busy fraction *)
    mutable window_cap : int;
    mutable ntenants : int;
    (* cumulative snapshots diffed at each boundary *)
    mutable prev_bytes : int;
    mutable prev_miss_sites : (string * int64) list;
    prev_ifr : (int * int, int64) Hashtbl.t;
  }

  let make ?(interval_ns = 250_000.0) ?(cap = 256) ?(burn_threshold = 0.01)
      ?(topk = 8) () =
    if not (burn_threshold >= 0.0) then
      fail "Timeline: burn_threshold must be >= 0 (got %g)" burn_threshold;
    {
      interval = interval_ns;
      burn_threshold;
      topk;
      ts = Timeseries.create ~cap ~topk ~interval_ns ();
      keys = Sketch.create ~k:topk;
      net = None;
      miss_sites = None;
      bandwidth = 0.0;
      window_cap = 0;
      ntenants = 0;
      prev_bytes = 0;
      prev_miss_sites = [];
      prev_ifr = Hashtbl.create 16;
    }

  let interval_ns t = t.interval

  let attach t rt cfg =
    t.net <- Some (Runtime.net rt);
    t.miss_sites <- Some (Runtime.miss_sites rt);
    t.bandwidth <- (Runtime.params rt).Mira_sim.Params.bandwidth_bytes_per_ns;
    t.window_cap <- (Net.dataplane (Runtime.net rt)).Net.window;
    t.ntenants <- cfg.tenants

  (* Per-request instrumentation, called from the serving loop. *)
  let on_request t ~tenant ~key ~lat ~miss =
    Timeseries.add t.ts (Printf.sprintf "t%d.requests" tenant) 1L;
    Timeseries.observe t.ts (Printf.sprintf "t%d.lat" tenant) lat;
    if miss then Timeseries.add t.ts (Printf.sprintf "t%d.slo_miss" tenant) 1L;
    Sketch.touch t.keys (Printf.sprintf "t%d:k%d" tenant key)

  let entry_order (ka, ca) (kb, cb) =
    match Int64.compare cb ca with 0 -> String.compare ka kb | c -> c

  (* Per-window view of a cumulative sketch snapshot: count deltas of
     the currently monitored keys (keys evicted between boundaries are
     lost — the usual sketch approximation, still deterministic). *)
  let diff_snapshot prev cur =
    let tbl = Hashtbl.create 16 in
    List.iter (fun (k, c) -> Hashtbl.replace tbl k c) prev;
    List.filter_map
      (fun (k, c) ->
        let p = Option.value ~default:0L (Hashtbl.find_opt tbl k) in
        if Int64.compare c p > 0 then Some (k, Int64.sub c p) else None)
      cur
    |> List.sort entry_order

  (* Close the window ending at [now]: sample the net, convert the
     cumulative counters (bytes, interference cells, miss sites) into
     per-window deltas, install the top-K snapshots, and roll. *)
  let boundary t ~now =
    (match t.net with
    | None -> ()
    | Some net ->
      Timeseries.sample t.ts "net.inflight"
        (float_of_int (Net.in_flight net ~now));
      let s = Net.stats net in
      let bytes = s.Net.bytes_in + s.Net.bytes_out in
      Timeseries.add t.ts "net.bytes" (Int64.of_int (bytes - t.prev_bytes));
      t.prev_bytes <- bytes;
      List.iter
        (fun (w, h, fp) ->
          let prev =
            Option.value ~default:0L (Hashtbl.find_opt t.prev_ifr (w, h))
          in
          let d = Int64.sub fp prev in
          if d > 0L then begin
            Timeseries.add t.ts (Printf.sprintf "ifr.%d.%d" w h) d;
            Hashtbl.replace t.prev_ifr (w, h) fp
          end)
        (Net.Interference.cells (Net.interference net)));
    (match t.miss_sites with
    | None -> ()
    | Some sk ->
      let cur = Sketch.snapshot sk in
      let delta = diff_snapshot t.prev_miss_sites cur in
      if delta <> [] then Timeseries.set_top t.ts "miss_sites" delta;
      t.prev_miss_sites <- cur);
    let keys = Sketch.snapshot t.keys in
    if keys <> [] then Timeseries.set_top t.ts "keys" keys;
    Sketch.reset t.keys;
    Timeseries.roll t.ts ~now_ns:now

  (* End of run: flush whatever accumulated past the last boundary.
     The net/interference flush only happens when the partial window
     actually served requests (the key sketch is non-empty), so an
     idle tail never resurrects an empty window. *)
  let finish t ~now =
    let keys = Sketch.snapshot t.keys in
    if keys <> [] then begin
      Timeseries.set_top t.ts "keys" keys;
      Sketch.reset t.keys;
      (match t.miss_sites with
      | None -> ()
      | Some sk ->
        let cur = Sketch.snapshot sk in
        let delta = diff_snapshot t.prev_miss_sites cur in
        if delta <> [] then Timeseries.set_top t.ts "miss_sites" delta;
        t.prev_miss_sites <- cur);
      (match t.net with
      | None -> ()
      | Some net ->
        Timeseries.sample t.ts "net.inflight"
          (float_of_int (Net.in_flight net ~now));
        let s = Net.stats net in
        let bytes = s.Net.bytes_in + s.Net.bytes_out in
        Timeseries.add t.ts "net.bytes" (Int64.of_int (bytes - t.prev_bytes));
        t.prev_bytes <- bytes;
        List.iter
          (fun (w, h, fp) ->
            let prev =
              Option.value ~default:0L (Hashtbl.find_opt t.prev_ifr (w, h))
            in
            let d = Int64.sub fp prev in
            if d > 0L then begin
              Timeseries.add t.ts (Printf.sprintf "ifr.%d.%d" w h) d;
              Hashtbl.replace t.prev_ifr (w, h) fp
            end)
          (Net.Interference.cells (Net.interference net)))
    end;
    Timeseries.finish t.ts ~now_ns:now

  (* --- per-window derived figures ---------------------------------------- *)

  let counter s name =
    Option.value ~default:0L (List.assoc_opt name s.Timeseries.s_counters)

  let window_requests t s =
    let req = ref 0L and miss = ref 0L in
    for i = 0 to t.ntenants - 1 do
      req := Int64.add !req (counter s (Printf.sprintf "t%d.requests" i));
      miss := Int64.add !miss (counter s (Printf.sprintf "t%d.slo_miss" i))
    done;
    (!req, !miss)

  let miss_frac t s =
    let req, miss = window_requests t s in
    if req = 0L then 0.0 else Int64.to_float miss /. Int64.to_float req

  let burning t s = miss_frac t s > t.burn_threshold

  let wire_busy t s =
    if t.bandwidth > 0.0 && s.Timeseries.s_span_ns > 0.0 then
      Int64.to_float (counter s "net.bytes")
      /. t.bandwidth /. s.Timeseries.s_span_ns
    else 0.0

  (* Saturation: with a bounded in-flight window, occupancy pinned at
     the cap; with an unbounded window, the wire >= 95% busy. *)
  let saturated t s =
    if t.window_cap > 0 then
      match List.assoc_opt "net.inflight" s.Timeseries.s_gauges with
      | Some g -> g.Timeseries.g_max >= float_of_int t.window_cap
      | None -> false
    else wire_busy t s >= 0.95

  let first_start p t =
    List.find_map
      (fun s -> if p t s then Some s.Timeseries.s_start_ns else None)
      (Timeseries.snapshots t.ts)

  let saturation_onset_ns t = first_start saturated t
  let first_burn_ns t = first_start burning t

  (* --- JSONL export ------------------------------------------------------- *)

  let tenant_label w = if w < 0 then "-" else Printf.sprintf "t%d" w

  let top_json entries =
    Json.List
      (List.map
         (fun (k, c) ->
           Json.Obj
             [ ("key", Json.Str k); ("count", Json.Str (Int64.to_string c)) ])
         entries)

  (* Regroup the flat "ifr.<w>.<h>" window counters into nested rows;
     fixed-point values export as decimal strings (int64-exact). *)
  let interference_json s =
    let cells =
      List.filter_map
        (fun (name, v) ->
          match String.split_on_char '.' name with
          | [ "ifr"; w; h ] ->
            (try Some (int_of_string w, int_of_string h, v)
             with Failure _ -> None)
          | _ -> None)
        s.Timeseries.s_counters
      |> List.sort compare
    in
    let waiters = List.sort_uniq compare (List.map (fun (w, _, _) -> w) cells) in
    Json.Obj
      (List.map
         (fun w ->
           ( tenant_label w,
             Json.Obj
               (List.filter_map
                  (fun (w', h, v) ->
                    if w' = w then
                      Some (tenant_label h, Json.Str (Int64.to_string v))
                    else None)
                  cells) ))
         waiters)

  let window_json t s =
    let tenant_json i =
      let h = List.assoc_opt (Printf.sprintf "t%d.lat" i) s.Timeseries.s_hists in
      ( Printf.sprintf "t%d" i,
        Json.Obj
          [
            ( "requests",
              Json.Int (Int64.to_int (counter s (Printf.sprintf "t%d.requests" i))) );
            ( "slo_miss",
              Json.Int (Int64.to_int (counter s (Printf.sprintf "t%d.slo_miss" i))) );
            ( "p50_ns",
              Json.Float
                (match h with Some h -> h.Timeseries.h_p50_ns | None -> 0.0) );
            ( "p99_ns",
              Json.Float
                (match h with Some h -> h.Timeseries.h_p99_ns | None -> 0.0) );
          ] )
    in
    let inflight =
      match List.assoc_opt "net.inflight" s.Timeseries.s_gauges with
      | Some g -> [ ("inflight_max", Json.Float g.Timeseries.g_max);
                    ("inflight_last", Json.Float g.Timeseries.g_last) ]
      | None -> []
    in
    Json.Obj
      [
        ("type", Json.Str "window");
        ("start_ns", Json.Float s.Timeseries.s_start_ns);
        ("span_ns", Json.Float s.Timeseries.s_span_ns);
        ( "net",
          Json.Obj
            (inflight
            @ [
                ("bytes", Json.Str (Int64.to_string (counter s "net.bytes")));
                ("wire_busy", Json.Float (wire_busy t s));
              ]) );
        ( "tenants",
          Json.Obj (List.init t.ntenants tenant_json) );
        ( "burn",
          Json.Obj
            [
              ("miss_frac", Json.Float (miss_frac t s));
              ("burning", Json.Bool (burning t s));
            ] );
        ("saturated", Json.Bool (saturated t s));
        ( "top_keys",
          top_json
            (Option.value ~default:[]
               (List.assoc_opt "keys" s.Timeseries.s_tops)) );
        ( "top_miss_sites",
          top_json
            (Option.value ~default:[]
               (List.assoc_opt "miss_sites" s.Timeseries.s_tops)) );
        ("interference", interference_json s);
      ]

  (* Trailing summary line: onset figures plus the exact fixed-point
     row-sum audit material (interference rows vs queue-stall ledger
     buckets), so a consumer can assert the invariant from the JSONL
     alone. *)
  let summary_json t ~rt =
    let attr = Runtime.attribution rt in
    let rows =
      match t.net with
      | None -> []
      | Some net ->
        List.map
          (fun (w, fp) ->
            ( tenant_label w,
              Json.Obj
                [
                  ("interference_fp", Json.Str (Int64.to_string fp));
                  ( "queueing_fp",
                    Json.Str
                      (Int64.to_string
                         (Attribution.tenant_cause_fp attr ~tenant:w
                            Attribution.Queueing)) );
                ] ))
          (Net.Interference.rows (Net.interference net))
    in
    let opt_ns = function Some v -> Json.Float v | None -> Json.Null in
    Json.Obj
      [
        ("type", Json.Str "summary");
        ("interval_ns", Json.Float t.interval);
        ("nwindows", Json.Int (Timeseries.nwindows t.ts));
        ("merges", Json.Int (Timeseries.merges t.ts));
        ("window_cap", Json.Int t.window_cap);
        ("burn_threshold", Json.Float t.burn_threshold);
        ("sat_onset_ns", opt_ns (saturation_onset_ns t));
        ("first_burn_ns", opt_ns (first_burn_ns t));
        ("tenant_rows", Json.Obj rows);
      ]

  let jsonl t ~rt =
    List.map (window_json t) (Timeseries.snapshots t.ts) @ [ summary_json t ~rt ]
end

(* One tenant's open-loop serving task.  Runs as a scheduler task; every
   clock movement inside (waits, access costs, net stalls) yields to the
   globally earliest tenant. *)
let run_tenant ?timeline cfg (ms : Memsys.t) ~base ~tenant:i rng gen st =
  let c = ms.Memsys.clock ~tid:i in
  let site = site_of_tenant i in
  let fn = Printf.sprintf "kv_t%d" i in
  let words = cfg.value_bytes / 8 in
  ms.Memsys.enter ~tid:i fn;
  let arrival = ref 0.0 in
  for r = 0 to cfg.requests - 1 do
    arrival := !arrival +. draw_interarrival rng cfg.arrival_ns;
    if Clock.now c < !arrival then ignore (Clock.wait_until c !arrival);
    let key = draw_key gen rng in
    let addr = base + (key * cfg.value_bytes) in
    let is_get = Prng.float rng 1.0 < cfg.get_fraction in
    (* Request span, emitted retroactively and only for requests that
       stalled (missed, waited on a fill/fence): hit-only requests cost
       one bool read, and trace volume stays proportional to
       interesting events — the convention every layer follows. *)
    let traced = Trace.enabled () in
    let saved = if traced then Trace.current_ctx () else None in
    let trace = if traced then Trace.new_trace () else 0 in
    let span = if traced then Trace.new_span () else 0 in
    let stall0 = Clock.stalled_ns c in
    if traced then
      Trace.set_ctx
        (Some
           {
             Trace.sc_trace = trace;
             sc_span = span;
             sc_site = site;
             sc_lane = serving_lane i;
             sc_flow = false;
           });
    let ptr w =
      { Memsys.space = Memsys.Far; addr = addr + (8 * w); site }
    in
    if is_get then begin
      let acc = ref 0L in
      for w = 0 to words - 1 do
        acc :=
          Int64.add !acc (ms.Memsys.load ~tid:i ~ptr:(ptr w) ~len:8 ~native:false)
      done;
      st.ts_checksum <- mix64 (Int64.add st.ts_checksum !acc)
    end
    else
      for w = 0 to words - 1 do
        ms.Memsys.store ~tid:i ~ptr:(ptr w) ~len:8 ~native:false
          ~value:(value_of ~tenant:i ~key ~req:r ~word:w)
      done;
    let finish = Clock.now c in
    let emitted = traced && Clock.stalled_ns c > stall0 in
    if traced then begin
      Trace.set_ctx saved;
      if emitted then begin
        Trace.begin_span
          ~args:
            [
              ("tenant", Json.Int i);
              ("key", Json.Int key);
              ("op", Json.Str (if is_get then "get" else "put"));
            ]
          ~name:"request" ~cat:"serving" ~lane:(serving_lane i)
          ~ts_ns:!arrival ~trace ~span ();
        Trace.end_span ~name:"request" ~cat:"serving" ~lane:(serving_lane i)
          ~ts_ns:finish ~trace ~span ()
      end
    end;
    let lat = finish -. !arrival in
    st.ts_lats.(r) <- lat;
    Metrics.hist_observe ~trace:(if emitted then trace else 0) st.ts_hist lat;
    let miss = lat > cfg.slo_ns in
    if miss then st.ts_slo_miss <- st.ts_slo_miss + 1;
    (match timeline with
    | Some tl -> Timeline.on_request tl ~tenant:i ~key ~lat ~miss
    | None -> ())
  done;
  ms.Memsys.exit_ ~tid:i fn

let run_on ?timeline rt cfg =
  validate cfg;
  if Runtime.tenants rt <> cfg.tenants then
    fail "runtime has %d tenants but config wants %d" (Runtime.tenants rt)
      cfg.tenants;
  let ms = Runtime.memsys rt in
  let mgr = Runtime.manager rt in
  let sched = Runtime.sched rt in
  ms.Memsys.set_nthreads cfg.tenants;
  (* Setup: per-tenant far data and private section, then zero the
     clocks so measurement starts at t=0 for every tenant. *)
  let bases = Array.make cfg.tenants 0 in
  for i = 0 to cfg.tenants - 1 do
    let p =
      ms.Memsys.alloc ~tid:i ~site:(site_of_tenant i) ~bytes:(data_bytes cfg)
        ~heap:true
    in
    bases.(i) <- p.Memsys.addr;
    let sc =
      Section.config_default ~sec_id:(sec_id_of_tenant i)
        ~name:(Printf.sprintf "kv%d" i) ~line:cfg.line ~size:(sec_bytes cfg)
    in
    (match Manager.add_section mgr ~clock:(ms.Memsys.clock ~tid:i) sc with
    | Ok _ -> ()
    | Error e -> fail "section for tenant %d: %s" i e);
    Manager.assign_site mgr ~site:(site_of_tenant i)
      ~sec_id:(sec_id_of_tenant i)
  done;
  ms.Memsys.reset_timing ();
  let master = Prng.create cfg.seed in
  let gen = make_generator cfg master in
  let states =
    Array.init cfg.tenants (fun i ->
        ignore i;
        {
          ts_lats = Array.make cfg.requests 0.0;
          ts_checksum = 0L;
          ts_hist = Metrics.hist_create ();
          ts_slo_miss = 0;
        })
  in
  let rngs = Array.init cfg.tenants (fun _ -> Prng.split master) in
  for i = 0 to cfg.tenants - 1 do
    Sched.spawn sched ~tenant:i (fun () ->
        run_tenant ?timeline cfg ms ~base:bases.(i) ~tenant:i rngs.(i) gen
          states.(i))
  done;
  (* The window sampler: one extra task, one tenant id past the real
     ones, on a scheduler clock that is NOT in the runtime's clock
     registry — so [elapsed]/[clock_stall_ns] and every reported
     figure are untouched by its presence.  It wakes at each window
     boundary (after all earlier events have dispatched — the
     scheduler is earliest-first), flushes the closing window, and
     exits once every serving task has returned; the trailing partial
     window is flushed below at the run's true elapsed time. *)
  (match timeline with
  | None -> ()
  | Some tl ->
    Timeline.attach tl rt cfg;
    let sc = Sched.clock sched ~tenant:cfg.tenants in
    Sched.spawn sched ~tenant:cfg.tenants (fun () ->
        let k = ref 1 in
        while Sched.live sched > 1 do
          let b = float_of_int !k *. Timeline.interval_ns tl in
          ignore (Clock.wait_until sc b);
          if Sched.live sched > 1 then Timeline.boundary tl ~now:(Clock.now sc);
          incr k
        done));
  Sched.run sched;
  let elapsed = ms.Memsys.elapsed () in
  (match timeline with
  | Some tl -> Timeline.finish tl ~now:elapsed
  | None -> ());
  let per_tenant =
    Array.mapi
      (fun i st ->
        let lats = st.ts_lats in
        {
          tenant = i;
          completed = cfg.requests;
          mean_ns = Stats.mean lats;
          p50_ns = Stats.percentile lats 50.0;
          p99_ns = Stats.percentile lats 99.0;
          p999_ns = Stats.percentile lats 99.9;
          max_ns = snd (Stats.min_max lats);
          slo_miss = st.ts_slo_miss;
          slo_miss_frac = float_of_int st.ts_slo_miss /. float_of_int cfg.requests;
          lat_hist = st.ts_hist;
        })
      states
  in
  let all = Array.concat (Array.to_list (Array.map (fun s -> s.ts_lats) states)) in
  let total = cfg.tenants * cfg.requests in
  let misses = Array.fold_left (fun a s -> a + s.ts_slo_miss) 0 states in
  let checksum =
    Array.fold_left (fun a s -> mix64 (Int64.add a s.ts_checksum)) 0L states
  in
  {
    r_cfg = cfg;
    per_tenant;
    elapsed_ns = elapsed;
    throughput_rps =
      (if elapsed > 0.0 then float_of_int total /. (elapsed *. 1e-9) else 0.0);
    agg_p50_ns = Stats.percentile all 50.0;
    agg_p99_ns = Stats.percentile all 99.0;
    agg_p999_ns = Stats.percentile all 99.9;
    agg_slo_miss_frac = float_of_int misses /. float_of_int total;
    checksum;
  }

let run cfg =
  validate cfg;
  run_on (Runtime.create (runtime_config cfg)) cfg

let publish r m =
  let total = Array.fold_left (fun a t -> a + t.completed) 0 r.per_tenant in
  let misses = Array.fold_left (fun a t -> a + t.slo_miss) 0 r.per_tenant in
  Metrics.set_counter m "serving.requests" total;
  Metrics.set_counter m "serving.slo_miss" misses;
  Array.iter
    (fun t ->
      Metrics.set_hist m
        (Printf.sprintf "serving.tenant%d.latency" t.tenant)
        t.lat_hist;
      Metrics.set_counter m
        (Printf.sprintf "serving.tenant%d.slo_miss" t.tenant)
        t.slo_miss)
    r.per_tenant

let report_json r =
  let tenant_json t =
    Json.Obj
      [
        ("tenant", Json.Int t.tenant);
        ("completed", Json.Int t.completed);
        ("mean_ns", Json.Float t.mean_ns);
        ("p50_ns", Json.Float t.p50_ns);
        ("p99_ns", Json.Float t.p99_ns);
        ("p999_ns", Json.Float t.p999_ns);
        ("max_ns", Json.Float t.max_ns);
        ("slo_miss", Json.Int t.slo_miss);
        ("slo_miss_frac", Json.Float t.slo_miss_frac);
      ]
  in
  Json.Obj
    [
      ("tenants", Json.Int r.r_cfg.tenants);
      ("requests_per_tenant", Json.Int r.r_cfg.requests);
      ("elapsed_ns", Json.Float r.elapsed_ns);
      ("throughput_rps", Json.Float r.throughput_rps);
      ("p50_ns", Json.Float r.agg_p50_ns);
      ("p99_ns", Json.Float r.agg_p99_ns);
      ("p999_ns", Json.Float r.agg_p999_ns);
      ("slo_ns", Json.Float r.r_cfg.slo_ns);
      ("slo_miss_frac", Json.Float r.agg_slo_miss_frac);
      ("checksum", Json.Str (Printf.sprintf "%016Lx" r.checksum));
      ("per_tenant", Json.List (Array.to_list (Array.map tenant_json r.per_tenant)));
    ]
