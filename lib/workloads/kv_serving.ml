module Clock = Mira_sim.Clock
module Sched = Mira_sim.Sched
module Runtime = Mira_runtime.Runtime
module Memsys = Mira_runtime.Memsys
module Section = Mira_cache.Section
module Manager = Mira_cache.Manager
module Metrics = Mira_telemetry.Metrics
module Trace = Mira_telemetry.Trace
module Json = Mira_telemetry.Json
module Prng = Mira_util.Prng
module Stats = Mira_util.Stats

type config = {
  tenants : int;
  requests : int;
  keys : int;
  value_bytes : int;
  zipf_s : float;
  arrival_ns : float;
  get_fraction : float;
  slo_ns : float;
  local_ratio : float;
  line : int;
  seed : int;
}

let config_default =
  {
    tenants = 4;
    requests = 20_000;
    keys = 8192;
    value_bytes = 128;
    zipf_s = 0.99;
    arrival_ns = 8_000.0;
    get_fraction = 0.95;
    slo_ns = 50_000.0;
    local_ratio = 0.5;
    line = 256;
    seed = 42;
  }

let fail fmt = Printf.ksprintf invalid_arg ("Kv_serving: " ^^ fmt)

let validate cfg =
  if cfg.tenants < 1 then fail "tenants must be >= 1 (got %d)" cfg.tenants;
  if cfg.requests < 1 then fail "requests must be >= 1 (got %d)" cfg.requests;
  if cfg.keys < 1 then fail "keys must be >= 1 (got %d)" cfg.keys;
  if cfg.value_bytes < 8 || cfg.value_bytes mod 8 <> 0 then
    fail "value_bytes must be a positive multiple of 8 (got %d)" cfg.value_bytes;
  if cfg.line < 8 || cfg.line mod 8 <> 0 then
    fail "line must be a positive multiple of 8 (got %d)" cfg.line;
  if not (cfg.zipf_s >= 0.0) then fail "zipf_s must be >= 0 (got %g)" cfg.zipf_s;
  if not (cfg.arrival_ns > 0.0) then
    fail "arrival_ns must be > 0 (got %g)" cfg.arrival_ns;
  if not (cfg.get_fraction >= 0.0 && cfg.get_fraction <= 1.0) then
    fail "get_fraction must be in [0,1] (got %g)" cfg.get_fraction;
  if not (cfg.slo_ns > 0.0) then fail "slo_ns must be > 0 (got %g)" cfg.slo_ns;
  if not (cfg.local_ratio > 0.0 && cfg.local_ratio <= 1.0) then
    fail "local_ratio must be in (0,1] (got %g)" cfg.local_ratio

type tenant_report = {
  tenant : int;
  completed : int;
  mean_ns : float;
  p50_ns : float;
  p99_ns : float;
  p999_ns : float;
  max_ns : float;
  slo_miss : int;
  slo_miss_frac : float;
  lat_hist : Metrics.hist;
}

type report = {
  r_cfg : config;
  per_tenant : tenant_report array;
  elapsed_ns : float;
  throughput_rps : float;
  agg_p50_ns : float;
  agg_p99_ns : float;
  agg_p999_ns : float;
  agg_slo_miss_frac : float;
  checksum : int64;
}

(* Sizing.  Per-tenant data is one contiguous far allocation of
   [keys * value_bytes]; the section caches [local_ratio] of it. *)
let data_bytes cfg = cfg.keys * cfg.value_bytes

let round_up n m = (n + m - 1) / m * m

let sec_bytes cfg =
  let want = int_of_float (cfg.local_ratio *. float_of_int (data_bytes cfg)) in
  max (4 * cfg.line) (round_up want cfg.line)

let page = 4096
let site_of_tenant i = 9100 + i
let sec_id_of_tenant i = 7000 + i

let runtime_config cfg =
  let local_budget = (cfg.tenants * sec_bytes cfg) + (4 * page) in
  let far_capacity =
    (2 * page) + (cfg.tenants * (round_up (data_bytes cfg) page + page))
  in
  Runtime.Config.make ~local_budget ~far_capacity
  |> Runtime.Config.with_tenants cfg.tenants

(* Zipfian popularity: rank r (0-based) has weight (r+1)^-s.  Ranks are
   mapped onto key indices through a seed-deterministic permutation so
   the hot set is scattered over the keyspace (and thus over cache
   lines) instead of sitting in the first few lines. *)
type generator = { cum : float array; perm : int array }

let make_generator cfg rng =
  let cum = Array.make cfg.keys 0.0 in
  let total = ref 0.0 in
  for r = 0 to cfg.keys - 1 do
    total := !total +. (1.0 /. Float.pow (float_of_int (r + 1)) cfg.zipf_s);
    cum.(r) <- !total
  done;
  let perm = Array.init cfg.keys (fun i -> i) in
  Prng.shuffle rng perm;
  { cum; perm }

let draw_key g rng =
  let n = Array.length g.cum in
  let u = Prng.float rng g.cum.(n - 1) in
  (* first rank with cum > u *)
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if g.cum.(mid) > u then hi := mid else lo := mid + 1
  done;
  g.perm.(!lo)

let draw_interarrival rng mean =
  let u = Prng.float rng 1.0 in
  -.mean *. Float.log (1.0 -. u)

let mix64 x =
  let ( ^^^ ) a b = Int64.logxor a b in
  let x = x ^^^ Int64.shift_right_logical x 33 in
  let x = Int64.mul x 0xff51afd7ed558ccdL in
  let x = x ^^^ Int64.shift_right_logical x 33 in
  let x = Int64.mul x 0xc4ceb9fe1a85ec53L in
  x ^^^ Int64.shift_right_logical x 33

let value_of ~tenant ~key ~req ~word =
  mix64
    (Int64.of_int
       ((tenant * 0x1000003) lxor (key * 8191) lxor (req * 131) lxor word))

(* Mutable per-tenant run state, written by the task, read afterwards. *)
type tenant_state = {
  ts_lats : float array;
  mutable ts_checksum : int64;
  ts_hist : Metrics.hist;
  mutable ts_slo_miss : int;
}

let serving_lane i = Printf.sprintf "serving.t%d" i

(* One tenant's open-loop serving task.  Runs as a scheduler task; every
   clock movement inside (waits, access costs, net stalls) yields to the
   globally earliest tenant. *)
let run_tenant cfg (ms : Memsys.t) ~base ~tenant:i rng gen st =
  let c = ms.Memsys.clock ~tid:i in
  let site = site_of_tenant i in
  let fn = Printf.sprintf "kv_t%d" i in
  let words = cfg.value_bytes / 8 in
  ms.Memsys.enter ~tid:i fn;
  let arrival = ref 0.0 in
  for r = 0 to cfg.requests - 1 do
    arrival := !arrival +. draw_interarrival rng cfg.arrival_ns;
    if Clock.now c < !arrival then ignore (Clock.wait_until c !arrival);
    let key = draw_key gen rng in
    let addr = base + (key * cfg.value_bytes) in
    let is_get = Prng.float rng 1.0 < cfg.get_fraction in
    (* Request span, emitted retroactively and only for requests that
       stalled (missed, waited on a fill/fence): hit-only requests cost
       one bool read, and trace volume stays proportional to
       interesting events — the convention every layer follows. *)
    let traced = Trace.enabled () in
    let saved = if traced then Trace.current_ctx () else None in
    let trace = if traced then Trace.new_trace () else 0 in
    let span = if traced then Trace.new_span () else 0 in
    let stall0 = Clock.stalled_ns c in
    if traced then
      Trace.set_ctx
        (Some
           {
             Trace.sc_trace = trace;
             sc_span = span;
             sc_site = site;
             sc_lane = serving_lane i;
             sc_flow = false;
           });
    let ptr w =
      { Memsys.space = Memsys.Far; addr = addr + (8 * w); site }
    in
    if is_get then begin
      let acc = ref 0L in
      for w = 0 to words - 1 do
        acc :=
          Int64.add !acc (ms.Memsys.load ~tid:i ~ptr:(ptr w) ~len:8 ~native:false)
      done;
      st.ts_checksum <- mix64 (Int64.add st.ts_checksum !acc)
    end
    else
      for w = 0 to words - 1 do
        ms.Memsys.store ~tid:i ~ptr:(ptr w) ~len:8 ~native:false
          ~value:(value_of ~tenant:i ~key ~req:r ~word:w)
      done;
    let finish = Clock.now c in
    let emitted = traced && Clock.stalled_ns c > stall0 in
    if traced then begin
      Trace.set_ctx saved;
      if emitted then begin
        Trace.begin_span
          ~args:
            [
              ("tenant", Json.Int i);
              ("key", Json.Int key);
              ("op", Json.Str (if is_get then "get" else "put"));
            ]
          ~name:"request" ~cat:"serving" ~lane:(serving_lane i)
          ~ts_ns:!arrival ~trace ~span ();
        Trace.end_span ~name:"request" ~cat:"serving" ~lane:(serving_lane i)
          ~ts_ns:finish ~trace ~span ()
      end
    end;
    let lat = finish -. !arrival in
    st.ts_lats.(r) <- lat;
    Metrics.hist_observe ~trace:(if emitted then trace else 0) st.ts_hist lat;
    if lat > cfg.slo_ns then st.ts_slo_miss <- st.ts_slo_miss + 1
  done;
  ms.Memsys.exit_ ~tid:i fn

let run_on rt cfg =
  validate cfg;
  if Runtime.tenants rt <> cfg.tenants then
    fail "runtime has %d tenants but config wants %d" (Runtime.tenants rt)
      cfg.tenants;
  let ms = Runtime.memsys rt in
  let mgr = Runtime.manager rt in
  let sched = Runtime.sched rt in
  ms.Memsys.set_nthreads cfg.tenants;
  (* Setup: per-tenant far data and private section, then zero the
     clocks so measurement starts at t=0 for every tenant. *)
  let bases = Array.make cfg.tenants 0 in
  for i = 0 to cfg.tenants - 1 do
    let p =
      ms.Memsys.alloc ~tid:i ~site:(site_of_tenant i) ~bytes:(data_bytes cfg)
        ~heap:true
    in
    bases.(i) <- p.Memsys.addr;
    let sc =
      Section.config_default ~sec_id:(sec_id_of_tenant i)
        ~name:(Printf.sprintf "kv%d" i) ~line:cfg.line ~size:(sec_bytes cfg)
    in
    (match Manager.add_section mgr ~clock:(ms.Memsys.clock ~tid:i) sc with
    | Ok _ -> ()
    | Error e -> fail "section for tenant %d: %s" i e);
    Manager.assign_site mgr ~site:(site_of_tenant i)
      ~sec_id:(sec_id_of_tenant i)
  done;
  ms.Memsys.reset_timing ();
  let master = Prng.create cfg.seed in
  let gen = make_generator cfg master in
  let states =
    Array.init cfg.tenants (fun i ->
        ignore i;
        {
          ts_lats = Array.make cfg.requests 0.0;
          ts_checksum = 0L;
          ts_hist = Metrics.hist_create ();
          ts_slo_miss = 0;
        })
  in
  let rngs = Array.init cfg.tenants (fun _ -> Prng.split master) in
  for i = 0 to cfg.tenants - 1 do
    Sched.spawn sched ~tenant:i (fun () ->
        run_tenant cfg ms ~base:bases.(i) ~tenant:i rngs.(i) gen states.(i))
  done;
  Sched.run sched;
  let elapsed = ms.Memsys.elapsed () in
  let per_tenant =
    Array.mapi
      (fun i st ->
        let lats = st.ts_lats in
        {
          tenant = i;
          completed = cfg.requests;
          mean_ns = Stats.mean lats;
          p50_ns = Stats.percentile lats 50.0;
          p99_ns = Stats.percentile lats 99.0;
          p999_ns = Stats.percentile lats 99.9;
          max_ns = snd (Stats.min_max lats);
          slo_miss = st.ts_slo_miss;
          slo_miss_frac = float_of_int st.ts_slo_miss /. float_of_int cfg.requests;
          lat_hist = st.ts_hist;
        })
      states
  in
  let all = Array.concat (Array.to_list (Array.map (fun s -> s.ts_lats) states)) in
  let total = cfg.tenants * cfg.requests in
  let misses = Array.fold_left (fun a s -> a + s.ts_slo_miss) 0 states in
  let checksum =
    Array.fold_left (fun a s -> mix64 (Int64.add a s.ts_checksum)) 0L states
  in
  {
    r_cfg = cfg;
    per_tenant;
    elapsed_ns = elapsed;
    throughput_rps =
      (if elapsed > 0.0 then float_of_int total /. (elapsed *. 1e-9) else 0.0);
    agg_p50_ns = Stats.percentile all 50.0;
    agg_p99_ns = Stats.percentile all 99.0;
    agg_p999_ns = Stats.percentile all 99.9;
    agg_slo_miss_frac = float_of_int misses /. float_of_int total;
    checksum;
  }

let run cfg =
  validate cfg;
  run_on (Runtime.create (runtime_config cfg)) cfg

let publish r m =
  let total = Array.fold_left (fun a t -> a + t.completed) 0 r.per_tenant in
  let misses = Array.fold_left (fun a t -> a + t.slo_miss) 0 r.per_tenant in
  Metrics.set_counter m "serving.requests" total;
  Metrics.set_counter m "serving.slo_miss" misses;
  Array.iter
    (fun t ->
      Metrics.set_hist m
        (Printf.sprintf "serving.tenant%d.latency" t.tenant)
        t.lat_hist;
      Metrics.set_counter m
        (Printf.sprintf "serving.tenant%d.slo_miss" t.tenant)
        t.slo_miss)
    r.per_tenant

let report_json r =
  let tenant_json t =
    Json.Obj
      [
        ("tenant", Json.Int t.tenant);
        ("completed", Json.Int t.completed);
        ("mean_ns", Json.Float t.mean_ns);
        ("p50_ns", Json.Float t.p50_ns);
        ("p99_ns", Json.Float t.p99_ns);
        ("p999_ns", Json.Float t.p999_ns);
        ("max_ns", Json.Float t.max_ns);
        ("slo_miss", Json.Int t.slo_miss);
        ("slo_miss_frac", Json.Float t.slo_miss_frac);
      ]
  in
  Json.Obj
    [
      ("tenants", Json.Int r.r_cfg.tenants);
      ("requests_per_tenant", Json.Int r.r_cfg.requests);
      ("elapsed_ns", Json.Float r.elapsed_ns);
      ("throughput_rps", Json.Float r.throughput_rps);
      ("p50_ns", Json.Float r.agg_p50_ns);
      ("p99_ns", Json.Float r.agg_p99_ns);
      ("p999_ns", Json.Float r.agg_p999_ns);
      ("slo_ns", Json.Float r.r_cfg.slo_ns);
      ("slo_miss_frac", Json.Float r.agg_slo_miss_frac);
      ("checksum", Json.Str (Printf.sprintf "%016Lx" r.checksum));
      ("per_tenant", Json.List (Array.to_list (Array.map tenant_json r.per_tenant)));
    ]
