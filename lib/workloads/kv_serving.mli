(** Many-tenant key-value serving workload (tail latency vs SLO).

    Unlike the MIR-program workloads ([Graph_traversal], [Dataframe],
    ...), which the interpreter executes single-tenant, this workload
    drives the section-based runtime directly: it spawns one task per
    tenant on the runtime's discrete-event scheduler
    ([Mira_sim.Sched]), so N independent serving loops interleave on
    simulated time and contend for the shared section cache, the net
    in-flight window, and the far cluster.

    Each tenant owns a private keyspace in far memory, a private cache
    section sized to [local_ratio] of its data, and an open-loop
    request generator: Poisson arrivals with mean [arrival_ns],
    Zipfian key popularity with exponent [zipf_s], a [get_fraction]
    get/put mix.  Request latency is measured from the {e arrival}
    time, so queueing delay when the tenant falls behind its arrival
    process counts against the SLO — the open-loop tail-latency
    methodology.

    Per tenant, the run reports p50/p99/p999/max latency against
    [slo_ns] and keeps a latency histogram whose tail exemplars carry
    trace ids when tracing is enabled; every request then renders as a
    span containing its cache/net child spans, so the critical-path
    analyzer decomposes tail requests out of the box.  Tenants appear
    in the flame stacks and the attribution ledger under their own
    function key ([kv_t<N>]).

    Determinism: all randomness flows from [seed] through per-tenant
    split [Mira_util.Prng] streams, and the scheduler interleaving is
    a pure function of clock movements — identical configs replay
    byte-identically ([checksum] is the fingerprint). *)

type config = {
  tenants : int;  (** serving loops interleaved on the scheduler (>= 1) *)
  requests : int;  (** requests per tenant *)
  keys : int;  (** per-tenant keyspace size *)
  value_bytes : int;  (** value size; multiple of 8 *)
  zipf_s : float;  (** Zipf popularity exponent (0 = uniform) *)
  arrival_ns : float;  (** mean inter-arrival time per tenant (open loop) *)
  get_fraction : float;  (** fraction of gets (rest are puts), in [0,1] *)
  slo_ns : float;  (** per-request latency objective *)
  local_ratio : float;  (** cached fraction of each tenant's data, (0,1] *)
  line : int;  (** section line size; multiple of 8 *)
  seed : int;
}

val config_default : config
(** 4 tenants, 20_000 requests each, 8192 keys of 128 B, [zipf_s] 0.99,
    8 us mean inter-arrival, 95% gets, 50 us SLO, half the data cached,
    256 B lines.  The per-tenant offered load is ~25% of the shared
    system's capacity, so a tenant sweep crosses saturation around 4
    tenants — the interesting region for tail latency. *)

val validate : config -> unit
(** Raises [Invalid_argument] with a descriptive message on a bad
    configuration (non-positive counts, [value_bytes] not a multiple
    of 8, out-of-range fractions, NaN rates, ...). *)

type tenant_report = {
  tenant : int;
  completed : int;
  mean_ns : float;
  p50_ns : float;
  p99_ns : float;
  p999_ns : float;
  max_ns : float;
  slo_miss : int;  (** requests with latency > [slo_ns] *)
  slo_miss_frac : float;
  lat_hist : Mira_telemetry.Metrics.hist;
      (** per-request latency; tail exemplars carry trace ids when
          tracing was enabled during the run *)
}

type report = {
  r_cfg : config;
  per_tenant : tenant_report array;
  elapsed_ns : float;  (** max over tenant clocks, setup excluded *)
  throughput_rps : float;  (** completed requests per simulated second *)
  agg_p50_ns : float;
  agg_p99_ns : float;
  agg_p999_ns : float;
  agg_slo_miss_frac : float;
  checksum : int64;  (** order-sensitive digest of every observed value *)
}

(** Time-resolved telemetry over a serving run.

    A [Timeline] attaches a windowed {!Mira_telemetry.Timeseries} to
    the run: a sampler task on the scheduler wakes at every
    [interval_ns] boundary of simulated time and closes the window —
    per-tenant request/SLO-miss counters and latency percentiles, net
    in-flight occupancy and wire bytes, per-window interference-matrix
    deltas, and top-K hot keys / hot miss sites.  The sampler only
    reads shared state and its clock lives outside the runtime's
    registry, so a run with a timeline attached is byte-identical
    (checksum, latencies, report JSON) to one without.

    Derived per window: the SLO {e burn rate} (window miss fraction vs
    [burn_threshold]) and a {e saturation} flag — occupancy pinned at
    the in-flight cap when a bounded window is configured, wire >= 95%
    busy otherwise.  [saturation_onset_ns]/[first_burn_ns] are the
    starts of the first such windows. *)
module Timeline : sig
  type t

  val make :
    ?interval_ns:float -> ?cap:int -> ?burn_threshold:float -> ?topk:int ->
    unit -> t
  (** Defaults: 250 us windows, a 256-window ring (older windows merge
      pairwise when it fills — see {!Mira_telemetry.Timeseries}), burn
      threshold 0.01, top-8 sketches. *)

  val interval_ns : t -> float

  val saturation_onset_ns : t -> float option
  (** Start of the first saturated window (after the run). *)

  val first_burn_ns : t -> float option
  (** Start of the first window whose miss fraction exceeded the burn
      threshold. *)

  val jsonl : t -> rt:Mira_runtime.Runtime.t -> Mira_telemetry.Json.t list
  (** One object per window (type ["window"]) plus a trailing summary
      (type ["summary"]) carrying onset figures and, per tenant, the
      exact fixed-point interference row total next to the queue-stall
      ledger bucket — equal by construction, so consumers can audit
      the invariant from the JSONL alone.  All fixed-point values are
      decimal strings (int64-exact). *)
end

val runtime_config : config -> Mira_runtime.Runtime.config
(** The runtime sizing [run] uses: per-tenant section bytes
    ([local_ratio] of the data, line-rounded) plus slack as the local
    budget, page-rounded per-tenant far allocations as the capacity,
    and the config's tenant count.  Exposed so drivers can create the
    runtime themselves ([run_on]) and keep access to its telemetry
    (ledger, trace, metrics) after the run. *)

val run : config -> report
(** Build a runtime sized for the config (per-tenant sections carved
    from the local budget), run the serving loops to completion on the
    scheduler, and report.  Setup (allocation, section creation) is
    excluded from the measured window via [reset_timing]. *)

val run_on : ?timeline:Timeline.t -> Mira_runtime.Runtime.t -> config -> report
(** Same, on a caller-provided runtime — the runtime's tenant count
    must match [config.tenants] (raises [Invalid_argument] otherwise).
    The caller is responsible for sizing [local_budget]/[far_capacity]
    and may pre-configure the data plane or cluster spec; sections and
    site routes are still created here.  [timeline] attaches the
    window sampler (tenant id [config.tenants], one past the serving
    tasks) for the duration of the run. *)

val publish : report -> Mira_telemetry.Metrics.t -> unit
(** Export [serving.requests], [serving.slo_miss], and per tenant
    [serving.tenant<N>.latency] / [serving.tenant<N>.slo_miss]. *)

val report_json : report -> Mira_telemetry.Json.t
(** Stable JSON shape for the bench harness and tests. *)
