module Ir = Mira_mir.Ir
module B = Mira_mir.Builder
module T = Mira_mir.Types

type config = { num_nodes : int; num_arcs : int; rounds : int; seed : int }

let config_default = { num_nodes = 8_000; num_arcs = 60_000; rounds = 3; seed = 5 }

let rec node_def =
  {
    T.s_name = "mcf_node";
    s_fields =
      [
        ("potential", T.I64);
        ("parent", T.Ptr (T.Struct node_def));
        ("child", T.Ptr (T.Struct node_def));
        ("sibling", T.Ptr (T.Struct node_def));
        ("orientation", T.I64);
        ("flow", T.I64);
        ("mark", T.I64);
        ("pad", T.I64);
      ];
  }

let arc_def =
  {
    T.s_name = "mcf_arc";
    s_fields =
      [
        ("tail", T.I64);
        ("head", T.I64);
        ("cost", T.I64);
        ("flow", T.I64);
        ("state", T.I64);
        ("pad0", T.I64);
        ("pad1", T.I64);
        ("pad2", T.I64);
      ];
  }

let node_bytes = T.size_of (T.Struct node_def)
let arc_bytes = T.size_of (T.Struct arc_def)

let far_bytes cfg = (cfg.num_nodes * node_bytes) + (cfg.num_arcs * arc_bytes) + 16

let aifm_gran program site = Workload_util.elem_gran program site

let null = Ir.Oint 0L

let build cfg =
  let b = B.program "mcf" in
  let node_ty = T.Struct node_def in
  let arc_ty = T.Struct arc_def in
  let nptr = T.Ptr node_ty in
  let n = B.iconst cfg.num_nodes in
  let m = B.iconst cfg.num_arcs in
  let fld fb base i name = B.field_ptr fb ~base ~index:i ~def:node_def ~field:name in
  let afld fb base i name = B.field_ptr fb ~base ~index:i ~def:arc_def ~field:name in
  (* init: random spanning tree over the nodes, random arcs *)
  B.func b "init" [ ("nodes", nptr); ("arcs", T.Ptr arc_ty) ] T.Unit
    (fun fb args ->
      match args with
      | [ nodes; arcs ] ->
        B.for_ fb ~lo:(B.iconst 0) ~hi:n (fun i ->
            let pot = B.call fb "rand_int" [ B.iconst 1000 ] in
            B.store fb T.I64 ~ptr:(fld fb nodes i "potential") ~value:pot;
            B.store fb nptr ~ptr:(fld fb nodes i "parent") ~value:null;
            B.store fb nptr ~ptr:(fld fb nodes i "child") ~value:null;
            B.store fb nptr ~ptr:(fld fb nodes i "sibling") ~value:null;
            let orient = B.call fb "rand_int" [ B.iconst 7 ] in
            let orient = B.bin fb Ir.Add orient (B.iconst 1) in
            B.store fb T.I64 ~ptr:(fld fb nodes i "orientation") ~value:orient;
            B.store fb T.I64 ~ptr:(fld fb nodes i "flow") ~value:(B.iconst 0);
            B.store fb T.I64 ~ptr:(fld fb nodes i "mark") ~value:(B.iconst 0));
        (* random tree: node i attaches under a random earlier node *)
        B.for_ fb ~lo:(B.iconst 1) ~hi:n (fun i ->
            let p = B.call fb "rand_int" [ i ] in
            let child_of_p = B.load fb nptr (fld fb nodes p "child") in
            let self = B.gep fb ~base:nodes ~index:i ~elem:node_ty () in
            let parent_ptr = B.gep fb ~base:nodes ~index:p ~elem:node_ty () in
            B.store fb nptr ~ptr:(fld fb nodes i "parent") ~value:parent_ptr;
            B.store fb nptr ~ptr:(fld fb nodes i "sibling") ~value:child_of_p;
            B.store fb nptr ~ptr:(fld fb nodes p "child") ~value:self);
        B.for_ fb ~lo:(B.iconst 0) ~hi:m (fun a ->
            let t = B.call fb "rand_int" [ n ] in
            let h = B.call fb "rand_int" [ n ] in
            let c = B.call fb "rand_int" [ B.iconst 1000 ] in
            B.store fb T.I64 ~ptr:(afld fb arcs a "tail") ~value:t;
            B.store fb T.I64 ~ptr:(afld fb arcs a "head") ~value:h;
            B.store fb T.I64 ~ptr:(afld fb arcs a "cost") ~value:c;
            B.store fb T.I64 ~ptr:(afld fb arcs a "flow") ~value:(B.iconst 0);
            B.store fb T.I64 ~ptr:(afld fb arcs a "state") ~value:(B.iconst 0))
      | _ -> assert false);
  (* refresh_potential: pre-order tree walk via pointer chasing *)
  B.func b "refresh_potential" [ ("nodes", nptr) ] T.Unit (fun fb args ->
      match args with
      | [ nodes ] ->
        let cur, _ =
          B.alloc fb ~name:"walk_cursor" ~space:Ir.Stack nptr (B.iconst 1)
        in
        let root_child = B.load fb nptr (fld fb nodes (B.iconst 0) "child") in
        B.store fb nptr ~ptr:cur ~value:root_child;
        B.while_ fb
          ~cond:(fun () ->
            let c = B.load fb nptr cur in
            B.cmp fb Ir.Ne c null)
          ~body:(fun () ->
            let c = B.load fb nptr cur in
            (* potential = parent.potential + orientation *)
            let par = B.load fb nptr (B.gep fb ~base:c ~index:(B.iconst 0) ~elem:node_ty ~field_off:(T.field_offset node_def "parent") ()) in
            let ppot = B.load fb T.I64 (B.gep fb ~base:par ~index:(B.iconst 0) ~elem:node_ty ~field_off:(T.field_offset node_def "potential") ()) in
            let orient = B.load fb T.I64 (B.gep fb ~base:c ~index:(B.iconst 0) ~elem:node_ty ~field_off:(T.field_offset node_def "orientation") ()) in
            let newpot = B.bin fb Ir.Add ppot orient in
            B.store fb T.I64
              ~ptr:(B.gep fb ~base:c ~index:(B.iconst 0) ~elem:node_ty ~field_off:(T.field_offset node_def "potential") ())
              ~value:newpot;
            (* descend to child if any, else climb until a sibling *)
            let child = B.load fb nptr (B.gep fb ~base:c ~index:(B.iconst 0) ~elem:node_ty ~field_off:(T.field_offset node_def "child") ()) in
            let has_child = B.cmp fb Ir.Ne child null in
            B.if_ fb has_child
              (fun () -> B.store fb nptr ~ptr:cur ~value:child)
              ~else_:(fun () ->
                B.while_ fb
                  ~cond:(fun () ->
                    let c2 = B.load fb nptr cur in
                    let alive = B.cmp fb Ir.Ne c2 null in
                    let sib =
                      B.load fb nptr (B.gep fb ~base:c2 ~index:(B.iconst 0) ~elem:node_ty ~field_off:(T.field_offset node_def "sibling") ())
                    in
                    let no_sib = B.cmp fb Ir.Eq sib null in
                    let both = B.bin fb Ir.Land (B.mov fb alive) (B.mov fb no_sib) in
                    B.cmp fb Ir.Ne both (B.iconst 0))
                  ~body:(fun () ->
                    let c2 = B.load fb nptr cur in
                    let up = B.load fb nptr (B.gep fb ~base:c2 ~index:(B.iconst 0) ~elem:node_ty ~field_off:(T.field_offset node_def "parent") ()) in
                    B.store fb nptr ~ptr:cur ~value:up);
                let c3 = B.load fb nptr cur in
                let alive = B.cmp fb Ir.Ne c3 null in
                B.if_ fb alive
                  (fun () ->
                    let sib =
                      B.load fb nptr (B.gep fb ~base:c3 ~index:(B.iconst 0) ~elem:node_ty ~field_off:(T.field_offset node_def "sibling") ())
                    in
                    B.store fb nptr ~ptr:cur ~value:sib)
                  ())
              ())
      | _ -> assert false);
  (* price_scan: sequential arc scan with indirect endpoint reads *)
  B.func b "price_scan"
    [ ("nodes", nptr); ("arcs", T.Ptr arc_ty); ("stats", T.Ptr T.I64) ]
    T.Unit
    (fun fb args ->
      match args with
      | [ nodes; arcs; stats ] ->
        B.for_ fb ~lo:(B.iconst 0) ~hi:m (fun a ->
            let t = B.load fb T.I64 (afld fb arcs a "tail") in
            let h = B.load fb T.I64 (afld fb arcs a "head") in
            let c = B.load fb T.I64 (afld fb arcs a "cost") in
            let pt = B.load fb T.I64 (fld fb nodes t "potential") in
            let ph = B.load fb T.I64 (fld fb nodes h "potential") in
            let red = B.bin fb Ir.Sub (B.bin fb Ir.Add c ph) pt in
            let neg = B.cmp fb Ir.Lt red (B.iconst 0) in
            B.if_ fb neg
              (fun () ->
                let pf = afld fb arcs a "flow" in
                let f = B.load fb T.I64 pf in
                let f' = B.bin fb Ir.Add f (B.iconst 1) in
                B.store fb T.I64 ~ptr:pf ~value:f';
                B.store fb T.I64 ~ptr:(afld fb arcs a "state") ~value:(B.iconst 1);
                let cnt = B.load fb T.I64 stats in
                let cnt' = B.bin fb Ir.Add cnt (B.iconst 1) in
                B.store fb T.I64 ~ptr:stats ~value:cnt')
              ~else_:(fun () ->
                B.store fb T.I64 ~ptr:(afld fb arcs a "state") ~value:(B.iconst 0))
              ())
      | _ -> assert false);
  B.func b "work"
    [ ("nodes", nptr); ("arcs", T.Ptr arc_ty); ("stats", T.Ptr T.I64) ]
    T.Unit
    (fun fb args ->
      match args with
      | [ nodes; arcs; stats ] ->
        B.for_ fb ~lo:(B.iconst 0) ~hi:(B.iconst cfg.rounds) (fun _r ->
            ignore (B.call fb "refresh_potential" [ nodes ]);
            ignore (B.call fb "price_scan" [ nodes; arcs; stats ]))
      | _ -> assert false);
  B.func b "checksum"
    [ ("nodes", nptr); ("arcs", T.Ptr arc_ty); ("stats", T.Ptr T.I64) ]
    T.I64
    (fun fb args ->
      match args with
      | [ nodes; arcs; stats ] ->
        let acc, _ = B.alloc fb ~name:"mcf_acc" ~space:Ir.Stack T.I64 (B.iconst 1) in
        let cnt = B.load fb T.I64 stats in
        B.store fb T.I64 ~ptr:acc ~value:cnt;
        let nstep = max 1 (cfg.num_nodes / 256) in
        B.for_ fb ~lo:(B.iconst 0) ~hi:n ~step:(B.iconst nstep) (fun i ->
            let p = B.load fb T.I64 (fld fb nodes i "potential") in
            let a = B.load fb T.I64 acc in
            B.store fb T.I64 ~ptr:acc ~value:(B.bin fb Ir.Add a p));
        let astep = max 1 (cfg.num_arcs / 256) in
        B.for_ fb ~lo:(B.iconst 0) ~hi:m ~step:(B.iconst astep) (fun a ->
            let f = B.load fb T.I64 (afld fb arcs a "flow") in
            let x = B.load fb T.I64 acc in
            B.store fb T.I64 ~ptr:acc ~value:(B.bin fb Ir.Add x f));
        let final = B.load fb T.I64 acc in
        B.ret fb final
      | _ -> assert false);
  B.func b "main" [] T.I64 (fun fb _ ->
      let nodes, _ = B.alloc fb ~name:"nodes" node_ty n in
      let arcs, _ = B.alloc fb ~name:"arcs" arc_ty m in
      let stats, _ = B.alloc fb ~name:"stats" T.I64 (B.iconst 2) in
      B.store fb T.I64 ~ptr:stats ~value:(B.iconst 0);
      ignore (B.call fb "init" [ nodes; arcs ]);
      ignore (B.call fb "work" [ nodes; arcs; stats ]);
      let sum = B.call fb "checksum" [ nodes; arcs; stats ] in
      B.ret fb sum);
  B.finish b ~entry:"main"
