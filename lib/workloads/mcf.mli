(** MCF: simplified single-depot vehicle-scheduling kernel (SPEC-2006
    429.mcf / network simplex).

    Two far-memory objects mirror MCF's memory behaviour:

    - a {b node array} (64 B entries) organized as a spanning tree via
      [parent]/[child]/[sibling] pointers — traversed by pointer
      chasing in [refresh_potential], the value-dependent access that
      defeats purely static analysis (§6.1: Mira falls back to swap at
      large memory and switches to a set-associative section with
      pointer-following prefetch when memory is scarce);
    - an {b arc array} (64 B entries) scanned sequentially by the
      pricing loop, with indirect reads of the endpoint nodes'
      potentials ([B[A[i]]] again, at struct granularity).

    [work] alternates [rounds] of potential refresh and arc pricing,
    like the simplex iterations of the original benchmark. *)

type config = {
  num_nodes : int;
  num_arcs : int;
  rounds : int;
  seed : int;
}

val config_default : config
(** 8k nodes, 60k arcs, 3 rounds. *)

val node_bytes : int
val arc_bytes : int

val build : config -> Mira_mir.Ir.program
val far_bytes : config -> int

val aifm_gran : Mira_mir.Ir.program -> int -> int
(** AIFM's array library: one remoteable pointer per element (the
    metadata weight that makes AIFM fail below full memory, Fig. 18). *)
