module Ir = Mira_mir.Ir
module B = Mira_mir.Builder
module T = Mira_mir.Types

type config = { elems : int; stride : int; seed : int }

let config_default = { elems = 200_000; stride = 1; seed = 17 }

let far_bytes cfg = 8 * cfg.elems

let build cfg =
  assert (cfg.stride >= 1);
  let b = B.program "micro_sum" in
  let n = B.iconst cfg.elems in
  B.func b "init" [ ("a", T.Ptr T.I64) ] T.Unit (fun fb args ->
      match args with
      | [ a ] ->
        B.for_ fb ~lo:(B.iconst 0) ~hi:n (fun i ->
            let p = B.gep fb ~base:a ~index:i ~elem:T.I64 () in
            B.store fb T.I64 ~ptr:p ~value:(B.bin fb Ir.Land i (B.iconst 1023)))
      | _ -> assert false);
  B.func b "work" [ ("a", T.Ptr T.I64); ("out", T.Ptr T.I64) ] T.Unit
    (fun fb args ->
      match args with
      | [ a; out ] ->
        let acc, _ = B.alloc fb ~name:"sum_acc" ~space:Ir.Stack T.I64 (B.iconst 1) in
        B.store fb T.I64 ~ptr:acc ~value:(B.iconst 0);
        B.for_ fb ~lo:(B.iconst 0) ~hi:n ~step:(B.iconst cfg.stride) (fun i ->
            let p = B.gep fb ~base:a ~index:i ~elem:T.I64 () in
            let v = B.load fb T.I64 p in
            let s = B.load fb T.I64 acc in
            B.store fb T.I64 ~ptr:acc ~value:(B.bin fb Ir.Add s v));
        let s = B.load fb T.I64 acc in
        B.store fb T.I64 ~ptr:out ~value:s
      | _ -> assert false);
  B.func b "main" [] T.I64 (fun fb _ ->
      let a, _ = B.alloc fb ~name:"array" T.I64 n in
      let out, _ = B.alloc fb ~name:"out" T.I64 (B.iconst 1) in
      ignore (B.call fb "init" [ a ]);
      ignore (B.call fb "work" [ a; out ]);
      let v = B.load fb T.I64 out in
      B.ret fb v);
  B.finish b ~entry:"main"
