(** The paper's micro-benchmarks (§6.1, Figures 19/20): a simple loop
    summing a far-memory array, and a strided variant.  Used to isolate
    the runtime's per-access overhead from application behaviour. *)

type config = { elems : int; stride : int; seed : int }

val config_default : config
(** 200k 8-byte elements, stride 1. *)

val build : config -> Mira_mir.Ir.program
val far_bytes : config -> int
