module Ir = Mira_mir.Ir
module T = Mira_mir.Types

let site_id program name =
  match
    List.find_opt (fun s -> String.equal s.Ir.si_name name) program.Ir.p_sites
  with
  | Some s -> s.Ir.si_id
  | None -> raise Not_found

let elem_gran program site =
  match Ir.find_site program site with
  | info -> max 8 (T.size_of info.Ir.si_elem)
  | exception Not_found -> 8

let chunked_gran ~chunk _program _site = chunk
