(** Helpers shared by the workload builders and the bench harness. *)

val site_id : Mira_mir.Ir.program -> string -> int
(** Allocation-site id by name.  Raises [Not_found]. *)

val elem_gran : Mira_mir.Ir.program -> int -> int
(** Element size of a site (>= 8 bytes); the default AIFM caching
    granularity (its array library keeps one remoteable pointer per
    element). *)

val chunked_gran : chunk:int -> Mira_mir.Ir.program -> int -> int
(** Fixed-chunk granularity (AIFM libraries with chunked remote
    vectors, e.g. its DataFrame). *)
