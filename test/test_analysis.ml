(* Tests for scalar evolution and the pattern/lifetime/offload analyses. *)
module Scev = Mira_analysis.Scev
module Pattern = Mira_analysis.Pattern
module Lifetime = Mira_analysis.Lifetime
module Flow = Mira_analysis.Remotable_flow
module Offload = Mira_analysis.Offload_analysis
module T = Mira_mir.Types
module Ir = Mira_mir.Ir
module B = Mira_mir.Builder

let test_scev_algebra () =
  let a = Scev.const 3L in
  let b = Scev.const 4L in
  Alcotest.(check bool) "const add" true
    (Scev.const_value (Scev.add a b) = Some 7L);
  Alcotest.(check bool) "const mul" true
    (Scev.const_value (Scev.mul a b) = Some 12L);
  let iv = Scev.iv ~depth:0 ~lo:(Scev.const 0L) ~step:(Scev.const 1L) in
  let off = Scev.add (Scev.mul iv (Scev.const 24L)) (Scev.const 8L) in
  Alcotest.(check bool) "coeff" true (Scev.coeff off ~depth:0 = Some 24L);
  Alcotest.(check bool) "no dep on 1" true (Scev.coeff off ~depth:1 = Some 0L);
  Alcotest.(check bool) "unknown mul" true
    (Scev.mul iv iv = Scev.Unknown)

let test_scev_iv_with_bounds () =
  let iv = Scev.iv ~depth:2 ~lo:(Scev.const 5L) ~step:(Scev.const 3L) in
  Alcotest.(check bool) "step as coeff" true (Scev.coeff iv ~depth:2 = Some 3L);
  Alcotest.(check bool) "depends" true (Scev.depends_on iv ~depth:2);
  Alcotest.(check bool) "not on others" false (Scev.depends_on iv ~depth:0)

let qcheck_scev_linearity =
  (* Evaluate symbolic affine forms on random iv assignments and compare
     with direct arithmetic. *)
  QCheck.Test.make ~name:"scev affine evaluation" ~count:300
    QCheck.(triple (int_range (-100) 100) (int_range (-50) 50) (int_range (-50) 50))
    (fun (c, k0, k1) ->
      let iv0 = Scev.iv ~depth:0 ~lo:(Scev.const 0L) ~step:(Scev.const 1L) in
      let iv1 = Scev.iv ~depth:1 ~lo:(Scev.const 0L) ~step:(Scev.const 1L) in
      let expr =
        Scev.add
          (Scev.add
             (Scev.mul iv0 (Scev.const (Int64.of_int k0)))
             (Scev.mul iv1 (Scev.const (Int64.of_int k1))))
          (Scev.const (Int64.of_int c))
      in
      Scev.coeff expr ~depth:0 = Some (Int64.of_int k0)
      && Scev.coeff expr ~depth:1 = Some (Int64.of_int k1))

(* A function with the paper's access patterns. *)
let graph_like () =
  let edge = { T.s_name = "e2"; s_fields = [ ("from", T.I64); ("w", T.F64) ] } in
  let node = { T.s_name = "n2"; s_fields = [ ("v", T.F64); ("c", T.I64) ] } in
  let b = B.program "p" in
  B.func b "main" [] T.I64 (fun fb _ ->
      let edges, _ = B.alloc fb ~name:"edges" (T.Struct edge) (B.iconst 100) in
      let nodes, _ = B.alloc fb ~name:"nodes" (T.Struct node) (B.iconst 10) in
      B.for_ fb ~lo:(B.iconst 0) ~hi:(B.iconst 100) (fun i ->
          let pf = B.field_ptr fb ~base:edges ~index:i ~def:edge ~field:"from" in
          let f = B.load fb T.I64 pf in
          let pv = B.field_ptr fb ~base:nodes ~index:f ~def:node ~field:"v" in
          let v = B.load fb T.F64 pv in
          B.store fb T.F64 ~ptr:pv ~value:v);
      B.ret fb (B.iconst 0));
  B.finish b ~entry:"main"

let analyze prog name =
  let f = Ir.find_func prog name in
  Pattern.analyze prog f ~site_of_ty:(Flow.site_of_ty prog) ()

let test_pattern_sequential_and_indirect () =
  let prog = graph_like () in
  let r = analyze prog "main" in
  let edges = Option.get (Pattern.summary_for r 0) in
  let nodes = Option.get (Pattern.summary_for r 1) in
  (match edges.Pattern.ss_kind with
  | Pattern.Sequential s -> Alcotest.(check int) "edge stride" 16 s
  | k -> Alcotest.failf "edges should be sequential, got %s" (Pattern.kind_to_string k));
  (match nodes.Pattern.ss_kind with
  | Pattern.Indirect via -> Alcotest.(check int) "indirect via edges" 0 via
  | k -> Alcotest.failf "nodes should be indirect, got %s" (Pattern.kind_to_string k));
  Alcotest.(check bool) "edges read-only" true edges.Pattern.ss_read_only;
  Alcotest.(check bool) "nodes read+write" false nodes.Pattern.ss_read_only

let test_pattern_loop_tree () =
  let prog = graph_like () in
  let r = analyze prog "main" in
  Alcotest.(check int) "one top loop" 1 (List.length r.Pattern.r_loops);
  let l = List.hd r.Pattern.r_loops in
  Alcotest.(check (option int)) "trip count" (Some 100) l.Pattern.l_trip;
  Alcotest.(check bool) "has accesses" true (List.length l.Pattern.l_accesses >= 3)

let test_pattern_affine_shape () =
  (* a[i*8 + j] must be recognized as an affine gep shape. *)
  let b = B.program "mm" in
  B.func b "main" [] T.I64 (fun fb _ ->
      let a, _ = B.alloc fb ~name:"mat" T.F64 (B.iconst 64) in
      B.for_ fb ~lo:(B.iconst 0) ~hi:(B.iconst 8) (fun i ->
          B.for_ fb ~lo:(B.iconst 0) ~hi:(B.iconst 8) (fun j ->
              let row = B.bin fb Ir.Mul i (B.iconst 8) in
              let idx = B.bin fb Ir.Add row j in
              let p = B.gep fb ~base:a ~index:idx ~elem:T.F64 () in
              ignore (B.load fb T.F64 p)));
      B.ret fb (B.iconst 0));
  let prog = B.finish b ~entry:"main" in
  let r = analyze prog "main" in
  let outer = List.hd r.Pattern.r_loops in
  let inner = List.hd outer.Pattern.l_children in
  let acc = List.hd inner.Pattern.l_accesses in
  (match acc.Pattern.a_gep with
  | Some { Pattern.g_index = Pattern.Idx_affine { terms; _ }; _ } ->
    Alcotest.(check bool) "i coeff 8" true (List.assoc_opt 0 terms = Some 8L);
    Alcotest.(check bool) "j coeff 1" true (List.assoc_opt 1 terms = Some 1L)
  | Some _ | None -> Alcotest.fail "expected affine gep shape");
  Alcotest.(check bool) "stride 8 bytes" true (acc.Pattern.a_stride = Some 8L)

let test_pattern_pointer_chase () =
  let rec node = { T.s_name = "cn"; s_fields = [ ("v", T.I64); ("next", T.Ptr (T.Struct node)) ] } in
  let nptr = T.Ptr (T.Struct node) in
  let b = B.program "chase" in
  B.func b "main" [] T.I64 (fun fb _ ->
      let arr, _ = B.alloc fb ~name:"chnodes" (T.Struct node) (B.iconst 8) in
      let cur, _ = B.alloc fb ~name:"cur" ~space:Ir.Stack nptr (B.iconst 1) in
      let head = B.gep fb ~base:arr ~index:(B.iconst 0) ~elem:(T.Struct node) () in
      B.store fb nptr ~ptr:cur ~value:head;
      B.while_ fb
        ~cond:(fun () ->
          let c = B.load fb nptr cur in
          B.cmp fb Ir.Ne c (Ir.Oint 0L))
        ~body:(fun () ->
          let c = B.load fb nptr cur in
          let pv = B.gep fb ~base:c ~index:(B.iconst 0) ~elem:(T.Struct node) () in
          ignore (B.load fb T.I64 pv);
          let pn =
            B.gep fb ~base:c ~index:(B.iconst 0) ~elem:(T.Struct node)
              ~field_off:(T.field_offset node "next") ()
          in
          let n = B.load fb nptr pn in
          B.store fb nptr ~ptr:cur ~value:n);
      B.ret fb (B.iconst 0));
  let prog = B.finish b ~entry:"main" in
  let r = analyze prog "main" in
  let nodes = Option.get (Pattern.summary_for r 0) in
  match nodes.Pattern.ss_kind with
  | Pattern.Pointer_chase -> ()
  | k -> Alcotest.failf "expected pointer-chase, got %s" (Pattern.kind_to_string k)

let phased_program () =
  let b = B.program "phases" in
  B.func b "main" [] T.I64 (fun fb _ ->
      let a, _ = B.alloc fb ~name:"pa" T.I64 (B.iconst 64) in
      let c, _ = B.alloc fb ~name:"pc" T.I64 (B.iconst 64) in
      B.for_ fb ~lo:(B.iconst 0) ~hi:(B.iconst 64) (fun i ->
          let p = B.gep fb ~base:a ~index:i ~elem:T.I64 () in
          B.store fb T.I64 ~ptr:p ~value:i);
      B.for_ fb ~lo:(B.iconst 0) ~hi:(B.iconst 64) (fun i ->
          let p = B.gep fb ~base:a ~index:i ~elem:T.I64 () in
          let v = B.load fb T.I64 p in
          let q = B.gep fb ~base:c ~index:i ~elem:T.I64 () in
          B.store fb T.I64 ~ptr:q ~value:v);
      B.for_ fb ~lo:(B.iconst 0) ~hi:(B.iconst 64) (fun i ->
          let q = B.gep fb ~base:c ~index:i ~elem:T.I64 () in
          ignore (B.load fb T.I64 q));
      B.ret fb (B.iconst 0));
  B.finish b ~entry:"main"

let test_lifetime_phases () =
  let prog = phased_program () in
  let r = analyze prog "main" in
  Alcotest.(check int) "phase count" 3 (Lifetime.phases_count r);
  let phases = Lifetime.site_phases r in
  let a = List.assoc 0 phases and c = List.assoc 1 phases in
  Alcotest.(check int) "a first" 0 a.Lifetime.first_phase;
  Alcotest.(check int) "a last" 1 a.Lifetime.last_phase;
  Alcotest.(check int) "c first" 1 c.Lifetime.first_phase;
  Alcotest.(check int) "c last" 2 c.Lifetime.last_phase;
  Alcotest.(check (list int)) "a dead after phase 1" [ 0 ]
    (Lifetime.dead_after r ~phase:1)

let test_site_of_ty_unique () =
  let prog = graph_like () in
  let edge_ty = T.Struct { T.s_name = "e2"; s_fields = [] } in
  Alcotest.(check (option int)) "edge site" (Some 0) (Flow.site_of_ty prog edge_ty);
  Alcotest.(check (option int)) "unknown type" None (Flow.site_of_ty prog T.F64)

let test_param_sites () =
  let b = B.program "pp" in
  B.func b "use" [ ("p", T.Ptr T.I64) ] T.Unit (fun fb args ->
      match args with
      | [ p ] ->
        let q = B.gep fb ~base:p ~index:(B.iconst 0) ~elem:T.I64 () in
        ignore (B.load fb T.I64 q)
      | _ -> assert false);
  B.func b "main" [] T.I64 (fun fb _ ->
      let a, _ = B.alloc fb ~name:"only" T.I64 (B.iconst 8) in
      let b1, _ = B.alloc fb ~name:"other" T.I64 (B.iconst 8) in
      ignore b1;
      ignore (B.call fb "use" [ a ]);
      B.ret fb (B.iconst 0));
  let prog = B.finish b ~entry:"main" in
  let bindings = Flow.param_sites_of_program prog in
  let use_bindings = List.assoc "use" bindings in
  Alcotest.(check (option int)) "param bound to site 0" (Some 0)
    (List.assoc_opt 0 use_bindings)

let test_remotable_functions () =
  let prog = graph_like () in
  (* main is the entry: never remotable *)
  Alcotest.(check (list string)) "entry excluded" []
    (Flow.remotable_functions prog)

let test_offload_scoring () =
  let b = B.program "offl" in
  (* communication-heavy candidate: touches lots of far data per op *)
  B.func b "scan" [ ("a", T.Ptr T.I64) ] T.I64 (fun fb args ->
      match args with
      | [ a ] ->
        let acc, _ = B.alloc fb ~name:"sacc" ~space:Ir.Stack T.I64 (B.iconst 1) in
        B.store fb T.I64 ~ptr:acc ~value:(B.iconst 0);
        B.for_ fb ~lo:(B.iconst 0) ~hi:(B.iconst 100000) (fun i ->
            let p = B.gep fb ~base:a ~index:i ~elem:T.I64 () in
            let v = B.load fb T.I64 p in
            let x = B.load fb T.I64 acc in
            B.store fb T.I64 ~ptr:acc ~value:(B.bin fb Ir.Add x v));
        let v = B.load fb T.I64 acc in
        B.ret fb v
      | _ -> assert false);
  B.func b "main" [] T.I64 (fun fb _ ->
      let a, _ = B.alloc fb ~name:"data" T.I64 (B.iconst 100000) in
      let v = B.call fb "scan" [ a ] in
      B.ret fb v);
  let prog = B.finish b ~entry:"main" in
  let scores = Offload.analyze prog ~params:Mira_sim.Params.default () in
  match List.find_opt (fun s -> s.Offload.o_name = "scan") scores with
  | Some s ->
    Alcotest.(check bool) "scan is offload-worthy" true (Offload.should_offload s);
    Alcotest.(check bool) "sites recorded" true (List.mem 1 s.Offload.o_sites)
  | None -> Alcotest.fail "scan not scored"

let suite =
  [
    Alcotest.test_case "scev algebra" `Quick test_scev_algebra;
    Alcotest.test_case "scev iv" `Quick test_scev_iv_with_bounds;
    QCheck_alcotest.to_alcotest qcheck_scev_linearity;
    Alcotest.test_case "pattern seq+indirect" `Quick test_pattern_sequential_and_indirect;
    Alcotest.test_case "pattern loop tree" `Quick test_pattern_loop_tree;
    Alcotest.test_case "pattern affine" `Quick test_pattern_affine_shape;
    Alcotest.test_case "pattern pointer chase" `Quick test_pattern_pointer_chase;
    Alcotest.test_case "lifetime phases" `Quick test_lifetime_phases;
    Alcotest.test_case "type-based sites" `Quick test_site_of_ty_unique;
    Alcotest.test_case "param sites" `Quick test_param_sites;
    Alcotest.test_case "remotable functions" `Quick test_remotable_functions;
    Alcotest.test_case "offload scoring" `Quick test_offload_scoring;
  ]
