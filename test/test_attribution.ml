(* The stall-attribution ledger: fixed-point exactness and the
   double-entry conservation audit, the tail-first stall split, the
   folded flame export, duplicate metric-name rejection, the profiler's
   mismatched enter/exit handling, the BENCH diff gate's comparison
   logic, and a doc-drift guard keeping docs/OBSERVABILITY.md's metric
   table in sync with what the code publishes. *)
module Attribution = Mira_telemetry.Attribution
module Metrics = Mira_telemetry.Metrics
module Json = Mira_telemetry.Json
module Diff = Mira_telemetry.Bench_diff
module Profile = Mira_runtime.Profile
module Runtime = Mira_runtime.Runtime
module Cluster = Mira_sim.Cluster
module Machine = Mira_interp.Machine
module C = Mira.Controller

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

(* --- ledger basics -------------------------------------------------------- *)

let test_charge_and_check () =
  let a = Attribution.create () in
  Alcotest.(check (float 0.0)) "empty total" 0.0 (Attribution.total_ns a);
  Attribution.set_context a ~fn:"work" ~site:3;
  Attribution.charge a ~section:"sec1" Attribution.Demand_wire 100.0;
  Attribution.charge a ~section:"sec1" Attribution.Demand_wire 50.0;
  Attribution.charge a Attribution.Queueing 25.0;
  Attribution.clear_context a;
  Attribution.charge a Attribution.Writeback 12.5;
  Alcotest.(check (float 1e-9)) "total" 187.5 (Attribution.total_ns a);
  Alcotest.(check (float 1e-9)) "demand bucket" 150.0
    (Attribution.cause_ns a Attribution.Demand_wire);
  Alcotest.(check (float 1e-9)) "writeback bucket" 12.5
    (Attribution.cause_ns a Attribution.Writeback);
  (match Attribution.check a with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  Alcotest.(check (float 0.0)) "no unattributed remainder" 0.0
    (Attribution.unattributed_ns a);
  (* by_cause always lists all eight buckets and sums to the total *)
  let by_cause = Attribution.by_cause a in
  Alcotest.(check int) "eight buckets" 8 (List.length by_cause);
  let sum = List.fold_left (fun acc (_, ns) -> acc +. ns) 0.0 by_cause in
  Alcotest.(check (float 0.0)) "buckets sum to total exactly"
    (Attribution.total_ns a) sum;
  (* negative and zero charges are ignored, not subtracted *)
  Attribution.charge a Attribution.Retry 0.0;
  Attribution.charge a Attribution.Retry (-5.0);
  Alcotest.(check (float 1e-9)) "non-positive charges ignored" 187.5
    (Attribution.total_ns a);
  Attribution.reset a;
  Alcotest.(check (float 0.0)) "reset clears" 0.0 (Attribution.total_ns a);
  Alcotest.(check bool) "reset clears context" true
    (Attribution.context a = ("(runtime)", -1))

let test_disabled_no_charge () =
  let a = Attribution.create () in
  Attribution.set_enabled a false;
  Attribution.charge a Attribution.Demand_wire 100.0;
  Alcotest.(check (float 0.0)) "disabled ledger stays empty" 0.0
    (Attribution.total_ns a);
  Attribution.set_enabled a true;
  Attribution.charge a Attribution.Demand_wire 100.0;
  Alcotest.(check bool) "re-enabled charges land" true
    (Attribution.total_ns a > 0.0)

let test_split_stall () =
  let parts_sum parts = List.fold_left (fun a (_, ns) -> a +. ns) 0.0 parts in
  let find c parts = List.assoc c parts in
  (* stall longer than wire: wire capped, retry next, queue residual *)
  let p =
    Attribution.split_stall ~stall:100.0 ~wire_ns:40.0 ~queue_ns:999.0
      ~retry_ns:35.0
  in
  Alcotest.(check (float 1e-12)) "parts sum to stall" 100.0 (parts_sum p);
  Alcotest.(check (float 1e-12)) "wire" 40.0 (find Attribution.Demand_wire p);
  Alcotest.(check (float 1e-12)) "retry" 35.0 (find Attribution.Retry p);
  Alcotest.(check (float 1e-12)) "queue residual" 25.0
    (find Attribution.Queueing p);
  (* stall shorter than wire (CPU overlapped the head): all wire *)
  let p =
    Attribution.split_stall ~stall:10.0 ~wire_ns:40.0 ~queue_ns:0.0
      ~retry_ns:35.0
  in
  Alcotest.(check (float 1e-12)) "tail-first: all wire" 10.0
    (find Attribution.Demand_wire p);
  Alcotest.(check (float 1e-12)) "short stall sums" 10.0 (parts_sum p);
  (* non-positive stall: nothing to attribute *)
  Alcotest.(check bool) "zero stall empty" true
    (Attribution.split_stall ~stall:0.0 ~wire_ns:1.0 ~queue_ns:1.0
       ~retry_ns:1.0
    = []);
  (* negative component inputs are clamped, never uncharged *)
  let p =
    Attribution.split_stall ~stall:5.0 ~wire_ns:(-1.0) ~queue_ns:0.0
      ~retry_ns:(-2.0)
  in
  Alcotest.(check (float 1e-12)) "clamped inputs still conserve" 5.0
    (parts_sum p)

let test_folded_format () =
  let a = Attribution.create () in
  Attribution.set_context a ~fn:"work" ~site:2;
  Attribution.charge a ~section:"sec1" Attribution.Demand_wire 1000.5;
  Attribution.set_context a ~fn:"scan" ~site:(-1);
  Attribution.charge a Attribution.Writeback 250.0;
  (* sub-ns cells round to zero and are dropped from the export *)
  Attribution.charge a Attribution.Retry 0.2;
  let lines =
    String.split_on_char '\n' (Attribution.folded a)
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check (list string)) "folded lines"
    [ "scan;-;writeback 250"; "work;site2;demand_wire 1001" ]
    lines

let test_attribution_json () =
  let a = Attribution.create () in
  Attribution.set_context a ~fn:"work" ~site:1;
  Attribution.charge a ~section:"s" Attribution.Demand_wire 100.0;
  Attribution.charge a ~section:"s" Attribution.Fence 30.0;
  match Json.parse (Json.to_string (Attribution.to_json a)) with
  | Error e -> Alcotest.failf "attribution json invalid: %s" e
  | Ok doc ->
    Alcotest.(check (option (float 1e-9))) "total" (Some 130.0)
      (Option.bind (Json.member "total_ns" doc) Json.to_float_opt);
    Alcotest.(check (option (float 0.0))) "unattributed" (Some 0.0)
      (Option.bind (Json.member "unattributed_ns" doc) Json.to_float_opt);
    (match Json.member "conserved" doc with
    | Some (Json.Bool true) -> ()
    | _ -> Alcotest.fail "conserved flag missing or false");
    (match Json.member "by_cause" doc with
    | Some (Json.Obj fields) ->
      Alcotest.(check int) "all eight causes in json" 8 (List.length fields)
    | _ -> Alcotest.fail "by_cause missing")

(* --- duplicate metric names ----------------------------------------------- *)

let test_duplicate_metric_rejected () =
  let reg = Metrics.create () in
  Metrics.set_counter reg "a.count" 1;
  Metrics.set_gauge reg "a.gauge" 1.0;
  (match Metrics.set_counter reg "a.count" 2 with
  | () -> Alcotest.fail "duplicate counter name accepted"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "error names the metric" true
      (contains msg "a.count"));
  (* a kind collision under the same name is equally rejected *)
  (match Metrics.set_hist reg "a.gauge" (Metrics.hist_create ()) with
  | () -> Alcotest.fail "duplicate name across kinds accepted"
  | exception Invalid_argument _ -> ());
  (* a fresh registry starts clean: per-report registries can re-claim *)
  let reg2 = Metrics.create () in
  Metrics.set_counter reg2 "a.count" 3;
  match Metrics.find reg2 "a.count" with
  | Some (Metrics.Counter 3) -> ()
  | _ -> Alcotest.fail "fresh registry lookup"

(* --- profiler mismatched enter/exit --------------------------------------- *)

let test_profile_strict_mismatch () =
  let p = Profile.create () in
  Profile.set_strict p true;
  Profile.enter p ~tid:0 ~now:0.0 "a";
  Profile.enter p ~tid:0 ~now:1.0 "b";
  (match Profile.exit_ p ~tid:0 ~now:2.0 "a" with
  | () -> Alcotest.fail "strict mode accepted a mismatched exit"
  | exception Profile.Mismatched_exit { name; tid; stack } ->
    Alcotest.(check string) "offending name" "a" name;
    Alcotest.(check int) "thread" 0 tid;
    Alcotest.(check (list string)) "stack snapshot" [ "b"; "a" ] stack);
  (* a well-nested exit still works in strict mode *)
  Profile.exit_ p ~tid:0 ~now:2.0 "b";
  Profile.exit_ p ~tid:0 ~now:3.0 "a";
  Alcotest.(check (option string)) "stack drained" None (Profile.current p ~tid:0)

let test_profile_pop_to_match () =
  let p = Profile.create () in
  Profile.enter p ~tid:0 ~now:0.0 "outer";
  Profile.enter p ~tid:0 ~now:10.0 "inner";
  (* non-strict: exiting [outer] closes [inner] too, charging it as if
     it exited now — no leaked frame to misattribute later time *)
  Profile.exit_ p ~tid:0 ~now:50.0 "outer";
  Alcotest.(check (option string)) "stack empty" None (Profile.current p ~tid:0);
  let stats = Profile.fn_stats p in
  let total name = (List.assoc name stats).Profile.total_ns in
  Alcotest.(check (float 1e-9)) "outer charged" 50.0 (total "outer");
  Alcotest.(check (float 1e-9)) "skipped inner charged" 40.0 (total "inner");
  (* an exit with no matching enter anywhere is dropped, not unwound *)
  Profile.enter p ~tid:0 ~now:60.0 "outer";
  Profile.exit_ p ~tid:0 ~now:70.0 "never-entered";
  Alcotest.(check (option string)) "unrelated frame untouched" (Some "outer")
    (Profile.current p ~tid:0);
  Profile.exit_ p ~tid:0 ~now:80.0 "outer"

let test_profile_recursion () =
  let p = Profile.create () in
  Profile.set_strict p true;
  (* recursive enter/exit of the same name must match innermost-first
     and never raise *)
  Profile.enter p ~tid:0 ~now:0.0 "f";
  Profile.enter p ~tid:0 ~now:10.0 "f";
  Profile.exit_ p ~tid:0 ~now:30.0 "f";
  Alcotest.(check (option string)) "outer frame remains" (Some "f")
    (Profile.current p ~tid:0);
  Profile.exit_ p ~tid:0 ~now:100.0 "f";
  Alcotest.(check (option string)) "drained" None (Profile.current p ~tid:0);
  let stats = Profile.fn_stats p in
  let s = List.assoc "f" stats in
  Alcotest.(check int) "two calls" 2 s.Profile.calls;
  (* inner 20 + outer 100 *)
  Alcotest.(check (float 1e-9)) "nested self-times accumulate" 120.0
    s.Profile.total_ns

(* --- conservation over random workload/fault/cluster configs -------------- *)

let micro_cfg =
  { Mira_workloads.Micro_sum.config_default with
    Mira_workloads.Micro_sum.elems = 20_000; stride = 8 }

let run_workload spec =
  let far = Mira_workloads.Micro_sum.far_bytes micro_cfg in
  let far_capacity = Mira_util.Misc.round_up (4 * far) 4096 in
  let prog = Mira_workloads.Micro_sum.build micro_cfg in
  let rt =
    Runtime.create
      Runtime.Config.(
        make ~local_budget:(far / 4) ~far_capacity |> with_cluster spec)
  in
  let ms = Runtime.memsys rt in
  let measured =
    Mira_passes.Instrument.run_only prog ~names:[ C.work_function prog ]
  in
  let machine = Machine.create ~seed:42 ms measured in
  let _, work_ns = C.measure_work ms machine in
  (work_ns, rt)

let qcheck_conservation =
  QCheck.Test.make
    ~name:"ledger conserves: cause buckets sum exactly to total stall"
    ~count:10
    QCheck.(int_bound 10_000)
    (fun seed ->
      (* random failure domain: sometimes quiet, sometimes a replicated
         pair with crashes, sometimes an unreplicated crash (degraded) *)
      let nodes = 1 + (seed mod 2) in
      let schedule =
        if seed mod 3 = 0 then []
        else
          Cluster.schedule_of_seed ~overlap:false ~seed ~nodes
            ~crashes:(1 + (seed mod 2))
            ~horizon_ns:2e5 ~down_ns:2e4
      in
      let work_ns, rt =
        run_workload (Cluster.mirror ~nodes ~copies:nodes schedule)
      in
      let attr = Runtime.attribution rt in
      let total = Attribution.total_ns attr in
      let sum =
        List.fold_left (fun a (_, ns) -> a +. ns) 0.0
          (Attribution.by_cause attr)
      in
      let clock = Runtime.clock_stall_ns rt in
      Attribution.check attr = Ok ()
      && Attribution.unattributed_ns attr = 0.0
      && sum = total
      (* single-threaded micro_sum has no app-level joins, so the
         ledger accounts for (essentially) every stalled clock ns;
         the slack covers fixed-point truncation, < 2^-16 ns/charge *)
      && total <= clock +. 1.0
      && clock -. total <= 1.0 +. (1e-6 *. clock)
      && work_ns > 0.0)

let test_attribution_off_identical () =
  (* the ledger observes, never steers: disabling it must not change
     simulated results *)
  let run attr_on =
    let far = Mira_workloads.Micro_sum.far_bytes micro_cfg in
    let far_capacity = Mira_util.Misc.round_up (4 * far) 4096 in
    let prog = Mira_workloads.Micro_sum.build micro_cfg in
    let rt =
      Runtime.create Runtime.Config.(make ~local_budget:(far / 4) ~far_capacity)
    in
    Attribution.set_enabled (Runtime.attribution rt) attr_on;
    let ms = Runtime.memsys rt in
    let measured =
      Mira_passes.Instrument.run_only prog ~names:[ C.work_function prog ]
    in
    let machine = Machine.create ~seed:42 ms measured in
    snd (C.measure_work ms machine)
  in
  Alcotest.(check (float 0.0)) "identical simulated time" (run false) (run true)

(* --- doc drift guard ------------------------------------------------------ *)

(* docs/OBSERVABILITY.md's publisher table compresses families with
   slashes (net.bytes_in/out) and placeholders (section.<name>.hits,
   site<N>).  Expand the doc's tokens, normalize the published names,
   and require every published metric to be documented. *)
let doc_metric_names doc_text =
  let is_tok c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '.' || c = '_' || c = '/' || c = '<' || c = '>'
  in
  let tokens = ref [] in
  let buf = Buffer.create 32 in
  let flush () =
    if Buffer.length buf > 0 then begin
      tokens := Buffer.contents buf :: !tokens;
      Buffer.clear buf
    end
  in
  String.iter (fun c -> if is_tok c then Buffer.add_char buf c else flush ())
    doc_text;
  flush ();
  let strip_dots s =
    let n = String.length s in
    let i = if n > 0 && s.[0] = '.' then 1 else 0 in
    let j = if n > i && s.[n - 1] = '.' then n - 1 else n in
    String.sub s i (j - i)
  in
  let expand tok =
    match String.split_on_char '/' tok with
    | [] | [ _ ] -> [ tok ]
    | first :: rest ->
      (* the doc compresses families as net.bytes_in/out and
         section.<name>.hits/misses: an alternative replaces the
         trailing segment of [first], but "trailing segment" may start
         at a dot or an underscore — generate a candidate at every
         separator (over-generation is harmless, the guard only tests
         membership) *)
      let prefixes = ref [ "" ] in
      String.iteri
        (fun i c ->
          if c = '.' || c = '_' then
            prefixes := String.sub first 0 (i + 1) :: !prefixes)
        first;
      first
      :: List.concat_map
           (fun alt -> List.map (fun p -> p ^ alt) !prefixes)
           rest
  in
  !tokens
  |> List.map strip_dots
  |> List.filter (fun t -> String.contains t '.')
  |> List.concat_map expand

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let test_doc_drift_guard () =
  let doc_text =
    In_channel.with_open_bin "../docs/OBSERVABILITY.md" In_channel.input_all
  in
  let documented = doc_metric_names doc_text in
  let _, rt = run_workload Cluster.spec_default in
  let reg = Mira.Report.runtime_metrics rt in
  let section_names =
    List.map
      (fun s -> (Mira_cache.Section.config s).Mira_cache.Section.sec_name)
      (Mira_cache.Manager.sections (Runtime.manager rt))
  in
  let normalize name =
    let name =
      List.fold_left
        (fun n sec ->
          let p = "section." ^ sec ^ "." in
          if starts_with ~prefix:p n then
            "section.<name>."
            ^ String.sub n (String.length p) (String.length n - String.length p)
          else n)
        name section_names
    in
    if starts_with ~prefix:"runtime.lost_bytes.site" name then
      "runtime.lost_bytes.site<N>"
    else if starts_with ~prefix:"sched.block." name then "sched.block.<event>"
    else if starts_with ~prefix:"serving.tenant" name then
      "serving.tenant<N>." ^ List.nth (String.split_on_char '.' name) 2
    else name
  in
  let missing =
    Metrics.names reg
    |> List.map normalize
    |> List.sort_uniq compare
    |> List.filter (fun n -> not (List.mem n documented))
  in
  if missing <> [] then
    Alcotest.failf
      "metrics published but absent from docs/OBSERVABILITY.md: %s"
      (String.concat ", " missing);
  (* the stall gauges specifically must stay documented *)
  List.iter
    (fun c ->
      let n = Printf.sprintf "stall.%s_ns" (Attribution.cause_name c) in
      Alcotest.(check bool) (n ^ " documented") true (List.mem n documented))
    Attribution.causes

(* --- bench diff gate ------------------------------------------------------ *)

let mk_doc ?(title = "micro") ?(native = Some 2.0) rows =
  { Diff.d_title = title; d_native_work_ms = native; d_rows = rows }

let row ratio systems =
  { Diff.r_key = Printf.sprintf "ratio=%g" ratio; r_systems = systems }

let baseline_doc =
  mk_doc
    [
      row 0.2 [ ("fastswap", Diff.Time_ms 4.0); ("mira", Diff.Time_ms 3.0) ];
      row 0.5 [ ("fastswap", Diff.Time_ms 3.0); ("mira", Diff.Time_ms 2.5) ];
    ]

let test_diff_identical_passes () =
  let v =
    Diff.compare_docs ~tolerance:0.05 ~baseline:baseline_doc
      ~candidate:baseline_doc
  in
  Alcotest.(check (list string)) "no regressions" [] v.Diff.v_regressions;
  Alcotest.(check (list string)) "no improvements" [] v.Diff.v_improvements;
  Alcotest.(check int) "five pairs (incl native)" 5 v.Diff.v_compared

let test_diff_catches_regression () =
  let cand =
    mk_doc
      [
        row 0.2 [ ("fastswap", Diff.Time_ms 4.0); ("mira", Diff.Time_ms 4.5) ];
        row 0.5 [ ("fastswap", Diff.Time_ms 3.0); ("mira", Diff.Time_ms 2.5) ];
      ]
  in
  let v =
    Diff.compare_docs ~tolerance:0.05 ~baseline:baseline_doc ~candidate:cand
  in
  Alcotest.(check int) "one regression" 1 (List.length v.Diff.v_regressions);
  Alcotest.(check bool) "regression names the cell" true
    (contains (List.hd v.Diff.v_regressions) "ratio=0.2 mira");
  (* within tolerance: a 4% slowdown under a 5% gate passes *)
  let cand_ok =
    mk_doc
      [
        row 0.2 [ ("fastswap", Diff.Time_ms 4.0); ("mira", Diff.Time_ms 3.12) ];
        row 0.5 [ ("fastswap", Diff.Time_ms 3.0); ("mira", Diff.Time_ms 2.5) ];
      ]
  in
  let v =
    Diff.compare_docs ~tolerance:0.05 ~baseline:baseline_doc ~candidate:cand_ok
  in
  Alcotest.(check (list string)) "within tolerance" [] v.Diff.v_regressions

let test_diff_failures_and_coverage () =
  (* a system that ran in baseline but fails in candidate regresses *)
  let cand =
    mk_doc
      [
        row 0.2
          [ ("fastswap", Diff.Time_ms 4.0); ("mira", Diff.Failed "OOM") ];
      ]
  in
  let v =
    Diff.compare_docs ~tolerance:0.05 ~baseline:baseline_doc ~candidate:cand
  in
  (* mira fails at 0.2, and row 0.5 vanished: two regressions *)
  Alcotest.(check int) "fail + missing row" 2 (List.length v.Diff.v_regressions);
  (* a missing system is a regression; a new one is only a note *)
  let cand2 =
    mk_doc
      [
        row 0.2 [ ("fastswap", Diff.Time_ms 4.0); ("leap", Diff.Time_ms 9.9) ];
        row 0.5 [ ("fastswap", Diff.Time_ms 3.0); ("mira", Diff.Time_ms 2.5) ];
      ]
  in
  let v =
    Diff.compare_docs ~tolerance:0.05 ~baseline:baseline_doc ~candidate:cand2
  in
  Alcotest.(check int) "missing system regresses" 1
    (List.length v.Diff.v_regressions);
  Alcotest.(check bool) "new system noted" true
    (List.exists (fun n -> contains n "leap") v.Diff.v_notes);
  (* a fixed failure is an improvement, not a regression *)
  let base3 = mk_doc [ row 0.2 [ ("aifm", Diff.Failed "OOM") ] ] in
  let cand3 = mk_doc [ row 0.2 [ ("aifm", Diff.Time_ms 5.0) ] ] in
  let v = Diff.compare_docs ~tolerance:0.05 ~baseline:base3 ~candidate:cand3 in
  Alcotest.(check (list string)) "fix is not a regression" []
    v.Diff.v_regressions;
  Alcotest.(check int) "fix is an improvement" 1
    (List.length v.Diff.v_improvements)

let test_diff_of_json () =
  let doc =
    Json.Obj
      [
        ("title", Json.Str "micro");
        ("native_work_ms", Json.Float 2.0);
        ( "rows",
          Json.List
            [
              Json.Obj
                [
                  ("ratio", Json.Float 0.2);
                  ( "systems",
                    Json.List
                      [
                        Json.Obj
                          [
                            ("system", Json.Str "mira");
                            ("work_ms", Json.Float 3.0);
                          ];
                        Json.Obj
                          [
                            ("system", Json.Str "aifm");
                            ("failed", Json.Str "OOM");
                          ];
                      ] );
                ];
            ] );
      ]
  in
  (match Diff.of_json doc with
  | Error e -> Alcotest.failf "well-formed doc rejected: %s" e
  | Ok d ->
    Alcotest.(check string) "title" "micro" d.Diff.d_title;
    Alcotest.(check int) "one row" 1 (List.length d.Diff.d_rows);
    let r = List.hd d.Diff.d_rows in
    Alcotest.(check bool) "outcomes parsed" true
      (List.assoc "mira" r.Diff.r_systems = Diff.Time_ms 3.0
      && List.assoc "aifm" r.Diff.r_systems = Diff.Failed "OOM"));
  (* malformed documents are errors, not crashes *)
  List.iter
    (fun bad ->
      match Diff.of_json bad with
      | Ok _ -> Alcotest.fail "malformed doc accepted"
      | Error _ -> ())
    [
      Json.Obj [ ("title", Json.Str "x") ];
      Json.Obj [ ("rows", Json.List [ Json.Obj [ ("ratio", Json.Str "x") ] ]) ];
      Json.Obj
        [
          ( "rows",
            Json.List
              [
                Json.Obj
                  [
                    ("ratio", Json.Float 0.1);
                    ("systems", Json.List [ Json.Obj [] ]);
                  ];
              ] );
        ];
    ]

let suite =
  [
    Alcotest.test_case "charge + conservation audit" `Quick test_charge_and_check;
    Alcotest.test_case "disabled ledger" `Quick test_disabled_no_charge;
    Alcotest.test_case "tail-first stall split" `Quick test_split_stall;
    Alcotest.test_case "folded flame export" `Quick test_folded_format;
    Alcotest.test_case "attribution json" `Quick test_attribution_json;
    Alcotest.test_case "duplicate metric rejected" `Quick
      test_duplicate_metric_rejected;
    Alcotest.test_case "profile strict mismatch" `Quick
      test_profile_strict_mismatch;
    Alcotest.test_case "profile pop-to-match" `Quick test_profile_pop_to_match;
    Alcotest.test_case "profile recursion" `Quick test_profile_recursion;
    QCheck_alcotest.to_alcotest qcheck_conservation;
    Alcotest.test_case "attribution off: identical results" `Slow
      test_attribution_off_identical;
    Alcotest.test_case "doc drift guard" `Slow test_doc_drift_guard;
    Alcotest.test_case "diff: identical passes" `Quick test_diff_identical_passes;
    Alcotest.test_case "diff: catches regression" `Quick
      test_diff_catches_regression;
    Alcotest.test_case "diff: failures and coverage" `Quick
      test_diff_failures_and_coverage;
    Alcotest.test_case "diff: json parsing" `Quick test_diff_of_json;
  ]
