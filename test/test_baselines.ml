(* Baseline memory systems: correctness on every system plus the
   behavioural properties each baseline models. *)
module Machine = Mira_interp.Machine
module Value = Mira_interp.Value
module W = Mira_workloads.Graph_traversal

let small_cfg = { W.config_default with W.num_edges = 3000; num_nodes = 400 }
let prog () = W.build small_cfg
let far_capacity = 1 lsl 22

let run ms p = Machine.run (Machine.create ms p)

let test_all_systems_agree () =
  let p = prog () in
  let expected = run (Mira_baselines.Native.create ~capacity:far_capacity ()) p in
  let budget = W.far_bytes small_cfg / 2 in
  let systems =
    [
      ("fastswap", Mira_baselines.Fastswap.create ~local_budget:budget ~far_capacity ());
      ("leap", Mira_baselines.Leap.create ~local_budget:budget ~far_capacity ());
      ( "aifm",
        Mira_baselines.Aifm.create
          ~gran:(fun _ -> 256)
          ~local_budget:budget ~far_capacity () );
      ( "mira-swap",
        Mira_runtime.Runtime.(
          memsys (create (Config.make ~local_budget:budget ~far_capacity))) );
    ]
  in
  List.iter
    (fun (name, ms) ->
      Alcotest.(check bool) (name ^ " matches native") true
        (Value.equal expected (run ms p)))
    systems

let test_far_memory_slower_than_native () =
  let p = prog () in
  let time ms = snd (Machine.run_timed (Machine.create ms p)) in
  let native = time (Mira_baselines.Native.create ~capacity:far_capacity ()) in
  let budget = W.far_bytes small_cfg / 4 in
  let fs = time (Mira_baselines.Fastswap.create ~local_budget:budget ~far_capacity ()) in
  Alcotest.(check bool) "fastswap slower than native" true (fs > native)

let test_fastswap_degrades_with_less_memory () =
  let p = prog () in
  let time budget =
    let ms = Mira_baselines.Fastswap.create ~local_budget:budget ~far_capacity () in
    snd (Machine.run_timed (Machine.create ms p))
  in
  let big = time (W.far_bytes small_cfg) in
  let small = time (W.far_bytes small_cfg / 8) in
  Alcotest.(check bool) "less memory, more time" true (small > big)

let test_leap_majority_prefetch () =
  (* A pure sequential scan: Leap must detect the stride and its swap
     section must see readahead pages. *)
  let module B = Mira_mir.Builder in
  let module T = Mira_mir.Types in
  let b = B.program "seq" in
  B.func b "main" [] T.I64 (fun fb _ ->
      let n = 64 * 512 in
      let arr, _ = B.alloc fb ~name:"seqarr" T.I64 (B.iconst n) in
      let acc, _ = B.alloc fb ~name:"seqacc" ~space:Mira_mir.Ir.Stack T.I64 (B.iconst 1) in
      B.store fb T.I64 ~ptr:acc ~value:(B.iconst 0);
      B.for_ fb ~lo:(B.iconst 0) ~hi:(B.iconst n) (fun i ->
          let p = B.gep fb ~base:arr ~index:i ~elem:T.I64 () in
          let v = B.load fb T.I64 p in
          let a = B.load fb T.I64 acc in
          B.store fb T.I64 ~ptr:acc ~value:(B.bin fb Mira_mir.Ir.Add a v));
      let v = B.load fb T.I64 acc in
      B.ret fb v);
  let p = B.finish b ~entry:"main" in
  let leap = Mira_baselines.Leap.create ~local_budget:(1 lsl 16) ~far_capacity () in
  let fs_time =
    let ms = Mira_baselines.Fastswap.create ~local_budget:(1 lsl 16) ~far_capacity () in
    snd (Machine.run_timed (Machine.create ms p))
  in
  let v, leap_time = Machine.run_timed (Machine.create leap p) in
  Alcotest.(check bool) "correct" true (Value.equal v (Value.Vint 0L));
  (* Leap's trend prefetch keeps it within ~2x of cluster readahead on a
     pure stream (it pays its data-path penalty but hides latency). *)
  Alcotest.(check bool) "leap competitive on streams" true
    (leap_time < 3.0 *. fs_time)

let test_aifm_oom_on_fine_granularity () =
  let p = prog () in
  let far_bytes = W.far_bytes small_cfg in
  (* Per-element metadata (8B granules, 16B metadata each) must exceed a
     half-sized local memory: AIFM fails to execute (paper Fig. 18). *)
  let ms =
    Mira_baselines.Aifm.create ~gran:(fun _ -> 8) ~local_budget:(far_bytes / 2)
      ~far_capacity ()
  in
  Alcotest.(check bool) "oom raised" true
    (try
       ignore (run ms p);
       false
     with Mira_baselines.Aifm.Oom _ -> true)

let test_aifm_deref_overhead_at_full_memory () =
  let p = prog () in
  let native = Mira_baselines.Native.create ~capacity:far_capacity () in
  let native_t = snd (Machine.run_timed (Machine.create native p)) in
  let aifm =
    Mira_baselines.Aifm.create
      ~gran:(fun _ -> 4096)
      ~local_budget:(2 * W.far_bytes small_cfg)
      ~far_capacity ()
  in
  let aifm_t = snd (Machine.run_timed (Machine.create aifm p)) in
  (* Even with all data cached, AIFM pays per-dereference overhead. *)
  Alcotest.(check bool) "aifm slower even at full memory" true
    (aifm_t > 1.5 *. native_t)

let test_fastswap_thread_contention () =
  let pcfg = { small_cfg with W.parallel = true } in
  let p = W.build pcfg in
  let budget = W.far_bytes pcfg / 4 in
  let time threads =
    let ms = Mira_baselines.Fastswap.create ~local_budget:budget ~far_capacity () in
    snd (Machine.run_timed (Machine.create ~nthreads:threads ms p))
  in
  let t1 = time 1 in
  let t8 = time 8 in
  (* swap-lock contention must erode scaling: 8 threads cannot be 8x *)
  Alcotest.(check bool) "sublinear scaling" true (t8 > t1 /. 8.0)

let test_leap_majority_vote () =
  let module L = Mira_baselines.Leap in
  (* steady stride of 1 (newest first: 9,8,7,...) *)
  Alcotest.(check (option int)) "stride 1" (Some 1)
    (L.majority_delta [ 9; 8; 7; 6; 5; 4 ]);
  Alcotest.(check (option int)) "stride 3" (Some 3)
    (L.majority_delta [ 30; 27; 24; 21; 18 ]);
  Alcotest.(check (option int)) "no trend" None
    (L.majority_delta [ 5; 90; 2; 77; 30; 1 ]);
  Alcotest.(check (option int)) "too short" None (L.majority_delta [ 4 ]);
  (* majority with noise: 1,1,17,1,1 deltas *)
  Alcotest.(check (option int)) "noisy majority" (Some 1)
    (L.majority_delta [ 25; 24; 23; 6; 5; 4 ])

let suite =
  [
    Alcotest.test_case "leap majority vote" `Quick test_leap_majority_vote;
    Alcotest.test_case "all systems agree" `Quick test_all_systems_agree;
    Alcotest.test_case "far memory slower" `Quick test_far_memory_slower_than_native;
    Alcotest.test_case "fastswap degrades" `Quick test_fastswap_degrades_with_less_memory;
    Alcotest.test_case "leap stream prefetch" `Quick test_leap_majority_prefetch;
    Alcotest.test_case "aifm metadata oom" `Quick test_aifm_oom_on_fine_granularity;
    Alcotest.test_case "aifm deref overhead" `Quick test_aifm_deref_overhead_at_full_memory;
    Alcotest.test_case "fastswap contention" `Quick test_fastswap_thread_contention;
  ]
