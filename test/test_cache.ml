(* Tests for cache sections, the swap section, the manager and the
   sizing solver — including the central coherence property: any
   access sequence through any section configuration must read the same
   data as a flat reference memory. *)
module Params = Mira_sim.Params
module Clock = Mira_sim.Clock
module Net = Mira_sim.Net
module Far_store = Mira_sim.Far_store
module Cluster = Mira_sim.Cluster
module Section = Mira_cache.Section
module Swap = Mira_cache.Swap_section
module Manager = Mira_cache.Manager
module Sizing = Mira_cache.Sizing

let make_env () =
  let net = Net.create Params.default in
  let far = Cluster.of_store (Far_store.create ~capacity:(1 lsl 20)) in
  (net, far, Clock.create ())

let cfg_of structure ~line ~size =
  { (Section.config_default ~sec_id:1 ~name:"t" ~line ~size) with
    Section.structure }

let test_section_basic structure () =
  let net, far, clock = make_env () in
  let s = Section.create net far (cfg_of structure ~line:64 ~size:1024) in
  Section.store s ~clock ~addr:128 ~len:8 42L;
  Alcotest.(check int64) "read back" 42L (Section.load s ~clock ~addr:128 ~len:8);
  Alcotest.(check bool) "resident" true (Section.resident s ~addr:128);
  let st = Section.stats s in
  Alcotest.(check bool) "counted" true (st.Section.hits + st.Section.misses >= 2)

let test_section_writeback_on_evict () =
  let net, far, clock = make_env () in
  (* Two-line direct section: address 0 and 128 conflict (line 64, 2 slots:
     lines 0 and 2 map to slot 0). *)
  let s = Section.create net far (cfg_of Section.Direct ~line:64 ~size:128) in
  Section.store s ~clock ~addr:0 ~len:8 7L;
  (* line index 2 -> slot 0: evicts line 0, forcing writeback *)
  Section.store s ~clock ~addr:128 ~len:8 9L;
  Alcotest.(check int64) "evicted data persisted" 7L (Cluster.read_i64 far ~addr:0);
  Alcotest.(check int64) "reload" 7L (Section.load s ~clock ~addr:0 ~len:8)

let test_section_prefetch_ready_time () =
  let net, far, clock = make_env () in
  let s = Section.create net far (cfg_of Section.Full_assoc ~line:64 ~size:1024) in
  Cluster.write_i64 far ~addr:256 5L;
  Section.prefetch s ~clock ~addr:256 ~len:8;
  let before = Clock.now clock in
  let v = Section.load s ~clock ~addr:256 ~len:8 in
  Alcotest.(check int64) "prefetched value" 5L v;
  let st = Section.stats s in
  Alcotest.(check int) "late prefetch stalled" 1 st.Section.late_prefetch;
  Alcotest.(check bool) "clock moved to ready" true (Clock.now clock > before)

let test_section_flush_evict_priority () =
  let net, far, clock = make_env () in
  let s = Section.create net far (cfg_of Section.Full_assoc ~line:64 ~size:256) in
  (* Fill the 4 slots. *)
  List.iter (fun a -> Section.store s ~clock ~addr:a ~len:8 1L) [ 0; 64; 128; 192 ];
  Section.flush_evict s ~clock ~addr:64 ~len:8;
  (* Next insertion should evict the hinted line (64). *)
  Section.store s ~clock ~addr:512 ~len:8 2L;
  let st = Section.stats s in
  Alcotest.(check int) "hinted victim" 1 st.Section.hinted_evictions;
  Alcotest.(check bool) "hinted line gone" false (Section.resident s ~addr:64)

let test_section_dont_evict () =
  let net, far, clock = make_env () in
  let s = Section.create net far (cfg_of Section.Full_assoc ~line:64 ~size:128) in
  Section.store s ~clock ~addr:0 ~len:8 1L;
  Section.mark_dont_evict s ~addr:0 ~len:8 ~pinned:true;
  Section.store s ~clock ~addr:64 ~len:8 2L;
  Section.store s ~clock ~addr:128 ~len:8 3L;
  Section.store s ~clock ~addr:192 ~len:8 4L;
  Alcotest.(check bool) "pinned survives" true (Section.resident s ~addr:0)

let test_section_native_fallback () =
  let net, far, clock = make_env () in
  let s = Section.create net far (cfg_of Section.Direct ~line:64 ~size:256) in
  Cluster.write_i64 far ~addr:0 77L;
  (* native load on an absent line must still return correct data *)
  Alcotest.(check int64) "fallback correct" 77L
    (Section.load_native s ~clock ~addr:0 ~len:8)

let test_section_no_meta_cheap_hits () =
  let net, far, clock = make_env () in
  let cfg = { (cfg_of Section.Direct ~line:64 ~size:256) with Section.no_meta = true } in
  let s = Section.create net far cfg in
  Section.store s ~clock ~addr:0 ~len:8 1L;
  let t0 = Clock.now clock in
  ignore (Section.load s ~clock ~addr:0 ~len:8);
  let hit_cost = Clock.now clock -. t0 in
  Alcotest.(check bool) "hit is native cost" true
    (hit_cost <= Params.default.Params.native_mem_ns +. 0.001);
  Alcotest.(check int) "no metadata" 0 (Section.metadata_bytes s)

let test_section_discard_range () =
  let net, far, clock = make_env () in
  let s = Section.create net far (cfg_of Section.Full_assoc ~line:64 ~size:256) in
  Cluster.write_i64 far ~addr:0 10L;
  ignore (Section.load s ~clock ~addr:0 ~len:8);
  Section.store s ~clock ~addr:0 ~len:8 99L;
  (* Simulate a far-side mutation, then discard the stale line. *)
  Section.discard_range s ~addr:0 ~len:8;
  Cluster.write_i64 far ~addr:0 55L;
  Alcotest.(check int64) "fresh data after discard" 55L
    (Section.load s ~clock ~addr:0 ~len:8)

let test_swap_basic () =
  let net, far, clock = make_env () in
  let sw = Swap.create net far { Swap.page = 4096; capacity = 16384; side = Net.One_sided } in
  Swap.store sw ~clock ~addr:100 ~len:8 13L;
  Alcotest.(check int64) "read" 13L (Swap.load sw ~clock ~addr:100 ~len:8);
  let st = Swap.stats sw in
  Alcotest.(check int) "one fault" 1 st.Swap.faults;
  Alcotest.(check int) "one hit" 1 st.Swap.hits

let test_swap_eviction_and_writeback () =
  let net, far, clock = make_env () in
  let sw = Swap.create net far { Swap.page = 4096; capacity = 8192; side = Net.One_sided } in
  Swap.store sw ~clock ~addr:0 ~len:8 1L;
  Swap.store sw ~clock ~addr:4096 ~len:8 2L;
  Swap.store sw ~clock ~addr:8192 ~len:8 3L;  (* evicts a dirty page *)
  Alcotest.(check int64) "data survives eviction" 1L
    (Swap.load sw ~clock ~addr:0 ~len:8)

let test_swap_readahead () =
  let net, far, clock = make_env () in
  let sw = Swap.create net far { Swap.page = 4096; capacity = 65536; side = Net.One_sided } in
  Swap.set_readahead sw (fun pno -> [ pno + 1; pno + 2 ]);
  ignore (Swap.load sw ~clock ~addr:0 ~len:8);
  Alcotest.(check bool) "readahead pages present" true
    (Swap.resident sw ~addr:4096 && Swap.resident sw ~addr:8192);
  let st = Swap.stats sw in
  Alcotest.(check int) "readahead count" 2 st.Swap.readahead_pages

let test_swap_resize () =
  let net, far, clock = make_env () in
  let sw = Swap.create net far { Swap.page = 4096; capacity = 65536; side = Net.One_sided } in
  Swap.store sw ~clock ~addr:0 ~len:8 9L;
  Swap.resize sw ~capacity:8192 ~clock;
  Alcotest.(check int) "capacity updated" 8192 (Swap.capacity_bytes sw);
  Alcotest.(check int64) "data survives resize" 9L (Swap.load sw ~clock ~addr:0 ~len:8)

let test_manager_budget () =
  let net, far, clock = make_env () in
  let m = Manager.create net far ~budget:65536 ~page:4096 ~side:Net.One_sided in
  let cfg = cfg_of Section.Direct ~line:64 ~size:16384 in
  (match Manager.add_section m ~clock cfg with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "swap shrank" (65536 - 16384)
    (Swap.capacity_bytes (Manager.swap m));
  let too_big = { (cfg_of Section.Direct ~line:64 ~size:65536) with Section.sec_id = 2 } in
  Alcotest.(check bool) "over budget rejected" true
    (Result.is_error (Manager.add_section m ~clock too_big));
  Manager.end_section m ~clock ~id:1;
  Alcotest.(check int) "swap restored" 65536 (Swap.capacity_bytes (Manager.swap m))

let test_manager_routing () =
  let net, far, clock = make_env () in
  let m = Manager.create net far ~budget:65536 ~page:4096 ~side:Net.One_sided in
  (match Manager.add_section m ~clock (cfg_of Section.Direct ~line:64 ~size:8192) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Manager.assign_site m ~site:3 ~sec_id:1;
  Alcotest.(check bool) "routed" true (Manager.route m ~site:3 <> None);
  Alcotest.(check bool) "unrouted" true (Manager.route m ~site:9 = None);
  Manager.unassign_site m ~site:3;
  Alcotest.(check bool) "unassigned" true (Manager.route m ~site:3 = None)

(* --- the coherence property ---------------------------------------------- *)

type op = Load of int | Store of int * int64 | Pf of int | Flush of int | Evict of int

let op_gen space =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun a -> Load (a * 8 mod space)) (int_bound (space / 8)));
        ( 4,
          map2
            (fun a v -> Store (a * 8 mod space, Int64.of_int v))
            (int_bound (space / 8))
            (int_bound 1_000_000) );
        (1, map (fun a -> Pf (a * 8 mod space)) (int_bound (space / 8)));
        (1, map (fun a -> Flush (a * 8 mod space)) (int_bound (space / 8)));
        (1, map (fun a -> Evict (a * 8 mod space)) (int_bound (space / 8)));
      ])

let coherence_for structure line size =
  let space = 8192 in
  QCheck.Test.make
    ~name:
      (Printf.sprintf "coherence %s line=%d size=%d"
         (match structure with
         | Section.Direct -> "direct"
         | Section.Set_assoc k -> Printf.sprintf "set%d" k
         | Section.Full_assoc -> "full")
         line size)
    ~count:60
    QCheck.(make (QCheck.Gen.list_size (QCheck.Gen.int_bound 200) (op_gen space)))
    (fun ops ->
      let net, far, clock = make_env () in
      let cfg = cfg_of structure ~line ~size in
      let s = Section.create net far cfg in
      let reference = Hashtbl.create 64 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Load addr ->
            let expect =
              match Hashtbl.find_opt reference addr with Some v -> v | None -> 0L
            in
            let got = Section.load s ~clock ~addr ~len:8 in
            if got <> expect then ok := false
          | Store (addr, v) ->
            Hashtbl.replace reference addr v;
            Section.store s ~clock ~addr ~len:8 v
          | Pf addr -> Section.prefetch s ~clock ~addr ~len:8
          | Flush addr -> Section.flush_evict s ~clock ~addr ~len:8
          | Evict addr -> Section.flush_range s ~clock ~addr ~len:8)
        ops;
      (* Final drain: everything must land in the far store. *)
      Section.drop_all s ~clock;
      Hashtbl.iter
        (fun addr v -> if Cluster.read_i64 far ~addr <> v then ok := false)
        reference;
      !ok)

let coherence_swap =
  QCheck.Test.make ~name:"coherence swap section" ~count:60
    QCheck.(make (QCheck.Gen.list_size (QCheck.Gen.int_bound 200) (op_gen 65536)))
    (fun ops ->
      let net, far, clock = make_env () in
      let sw =
        Swap.create net far { Swap.page = 4096; capacity = 16384; side = Net.One_sided }
      in
      let reference = Hashtbl.create 64 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Load addr ->
            let expect =
              match Hashtbl.find_opt reference addr with Some v -> v | None -> 0L
            in
            if Swap.load sw ~clock ~addr ~len:8 <> expect then ok := false
          | Store (addr, v) ->
            Hashtbl.replace reference addr v;
            Swap.store sw ~clock ~addr ~len:8 v
          | Pf addr -> Swap.prefetch_page sw ~clock ~page:(addr / 4096)
          | Flush addr -> Swap.evict_hint sw ~clock ~addr ~len:8
          | Evict addr -> Swap.flush_range sw ~clock ~addr ~len:8)
        ops;
      Swap.drop_all sw ~clock;
      Hashtbl.iter
        (fun addr v -> if Cluster.read_i64 far ~addr <> v then ok := false)
        reference;
      !ok)

(* --- sizing --------------------------------------------------------------- *)

let test_sizing_simple () =
  let candidates =
    [
      { Sizing.cand_id = 1; options = [| (100, 10.0); (200, 4.0) |];
        live_from = 0; live_to = 1 };
      { Sizing.cand_id = 2; options = [| (100, 8.0); (200, 2.0) |];
        live_from = 0; live_to = 1 };
    ]
  in
  (* (200,4)+(200,2) would be 6 but needs 400 > 300; the optimum mixes
     one large and one small section at total overhead 12. *)
  match Sizing.solve ~budget:300 candidates with
  | Ok { Sizing.assignment; total_overhead } ->
    Alcotest.(check (float 1e-9)) "optimal" 12.0 total_overhead;
    Alcotest.(check int) "fits budget" 300
      (List.fold_left (fun acc (_, s) -> acc + s) 0 assignment)
  | Error e -> Alcotest.fail e

let test_sizing_lifetime_overlap () =
  (* Disjoint lifetimes can both take the whole budget. *)
  let candidates =
    [
      { Sizing.cand_id = 1; options = [| (100, 5.0); (300, 1.0) |];
        live_from = 0; live_to = 0 };
      { Sizing.cand_id = 2; options = [| (100, 5.0); (300, 1.0) |];
        live_from = 1; live_to = 1 };
    ]
  in
  match Sizing.solve ~budget:300 candidates with
  | Ok { Sizing.total_overhead; _ } ->
    Alcotest.(check (float 1e-9)) "both get max" 2.0 total_overhead
  | Error e -> Alcotest.fail e

let test_sizing_infeasible () =
  let candidates =
    [ { Sizing.cand_id = 1; options = [| (500, 1.0) |]; live_from = 0; live_to = 0 } ]
  in
  Alcotest.(check bool) "infeasible" true
    (Result.is_error (Sizing.solve ~budget:100 candidates))

let qcheck_sizing_matches_brute =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 4 in
      let* budget = int_range 100 600 in
      let* cands =
        list_repeat n
          (let* k = int_range 1 4 in
           let* opts =
             list_repeat k (pair (int_range 10 300) (float_bound_exclusive 100.0))
           in
           let* lo = int_range 0 2 in
           let* len = int_range 0 2 in
           return (Array.of_list opts, lo, lo + len))
      in
      return (budget, cands))
  in
  QCheck.Test.make ~name:"sizing branch&bound == brute force" ~count:200
    (QCheck.make gen)
    (fun (budget, cands) ->
      let candidates =
        List.mapi
          (fun i (options, lo, hi) ->
            { Sizing.cand_id = i; options; live_from = lo; live_to = hi })
          cands
      in
      match (Sizing.solve ~budget candidates, Sizing.solve_brute ~budget candidates) with
      | Ok a, Ok b -> Float.abs (a.Sizing.total_overhead -. b.Sizing.total_overhead) < 1e-9
      | Error _, Error _ -> true
      | Ok _, Error _ | Error _, Ok _ -> false)

let test_interpolate () =
  let curve = [| (100, 10.0); (200, 4.0); (400, 2.0) |] in
  Alcotest.(check (float 1e-9)) "below" 10.0 (Sizing.interpolate curve 50);
  Alcotest.(check (float 1e-9)) "above" 2.0 (Sizing.interpolate curve 500);
  Alcotest.(check (float 1e-9)) "between" 7.0 (Sizing.interpolate curve 150);
  Alcotest.(check (float 1e-9)) "exact" 4.0 (Sizing.interpolate curve 200)

let suite =
  [
    Alcotest.test_case "section basic direct" `Quick (test_section_basic Section.Direct);
    Alcotest.test_case "section basic set4" `Quick (test_section_basic (Section.Set_assoc 4));
    Alcotest.test_case "section basic full" `Quick (test_section_basic Section.Full_assoc);
    Alcotest.test_case "section writeback" `Quick test_section_writeback_on_evict;
    Alcotest.test_case "section prefetch ready" `Quick test_section_prefetch_ready_time;
    Alcotest.test_case "section evict hint" `Quick test_section_flush_evict_priority;
    Alcotest.test_case "section dont-evict" `Quick test_section_dont_evict;
    Alcotest.test_case "section native fallback" `Quick test_section_native_fallback;
    Alcotest.test_case "section no_meta" `Quick test_section_no_meta_cheap_hits;
    Alcotest.test_case "section discard" `Quick test_section_discard_range;
    Alcotest.test_case "swap basic" `Quick test_swap_basic;
    Alcotest.test_case "swap eviction" `Quick test_swap_eviction_and_writeback;
    Alcotest.test_case "swap readahead" `Quick test_swap_readahead;
    Alcotest.test_case "swap resize" `Quick test_swap_resize;
    Alcotest.test_case "manager budget" `Quick test_manager_budget;
    Alcotest.test_case "manager routing" `Quick test_manager_routing;
    QCheck_alcotest.to_alcotest (coherence_for Section.Direct 64 512);
    QCheck_alcotest.to_alcotest (coherence_for (Section.Set_assoc 4) 64 1024);
    QCheck_alcotest.to_alcotest (coherence_for Section.Full_assoc 128 1024);
    QCheck_alcotest.to_alcotest (coherence_for Section.Direct 256 512);
    QCheck_alcotest.to_alcotest coherence_swap;
    Alcotest.test_case "sizing simple" `Quick test_sizing_simple;
    Alcotest.test_case "sizing lifetimes" `Quick test_sizing_lifetime_overlap;
    Alcotest.test_case "sizing infeasible" `Quick test_sizing_infeasible;
    QCheck_alcotest.to_alcotest qcheck_sizing_matches_brute;
    Alcotest.test_case "sizing interpolate" `Quick test_interpolate;
  ]
