(* Tests for the far-memory failure domain: the striped (k, m)
   erasure-coded [Cluster], seeded crash schedules (serialized and
   genuinely overlapping), quorum-rule failover, parity fan-out, and
   degraded-mode operation.  The central property: under any schedule
   that keeps at most m nodes of a (k, m) scheme concurrently down, a
   workload's output is bit-identical to the no-fault run — crashes
   cost time, never data. *)
module Clock = Mira_sim.Clock
module Net = Mira_sim.Net
module Far_store = Mira_sim.Far_store
module Cluster = Mira_sim.Cluster
module Manager = Mira_cache.Manager
module Section = Mira_cache.Section
module Runtime = Mira_runtime.Runtime
module Machine = Mira_interp.Machine
module C = Mira.Controller

(* --- spec validation and schedules -------------------------------------- *)

let rejects name spec =
  match Cluster.validate_spec spec with
  | () -> Alcotest.failf "%s: expected Invalid_argument" name
  | exception Invalid_argument _ -> ()

let test_validate_spec () =
  let ok spec = Cluster.validate_spec spec in
  ok Cluster.spec_default;
  ok (Cluster.mirror ~nodes:3 ~copies:2 []);
  ok (Cluster.ec ~nodes:6 ~k:4 ~m:2 []);
  ok (Cluster.ec ~chunk:64 ~placement:Cluster.Flat ~nodes:3 ~k:2 ~m:1 []);
  rejects "no nodes" { Cluster.spec_default with Cluster.nodes = 0 };
  rejects "zero data chunks" { Cluster.spec_default with Cluster.k = 0 };
  rejects "m out of range"
    { (Cluster.ec ~nodes:8 ~k:4 ~m:2 []) with Cluster.m = 3 };
  rejects "scheme wider than cluster" (Cluster.ec ~nodes:5 ~k:4 ~m:2 []);
  rejects "chunk not multiple of 8"
    { Cluster.spec_default with Cluster.chunk = 100 };
  rejects "bad node index"
    (Cluster.mirror ~nodes:2 ~copies:2
       [ { Cluster.ev_node = 2; ev_at = 1.0; ev_down_for = 1.0 } ]);
  rejects "negative time"
    (Cluster.mirror ~nodes:1 ~copies:1
       [ { Cluster.ev_node = 0; ev_at = -1.0; ev_down_for = 1.0 } ]);
  rejects "nan time"
    (Cluster.mirror ~nodes:1 ~copies:1
       [ { Cluster.ev_node = 0; ev_at = Float.nan; ev_down_for = 1.0 } ]);
  (* Satellite: non-finite values are rejected, not just NaN. *)
  rejects "infinite time"
    (Cluster.mirror ~nodes:1 ~copies:1
       [ { Cluster.ev_node = 0; ev_at = Float.infinity; ev_down_for = 1.0 } ]);
  rejects "infinite outage"
    (Cluster.mirror ~nodes:1 ~copies:1
       [ { Cluster.ev_node = 0; ev_at = 1.0; ev_down_for = Float.infinity } ]);
  rejects "non-positive outage"
    (Cluster.mirror ~nodes:1 ~copies:1
       [ { Cluster.ev_node = 0; ev_at = 1.0; ev_down_for = 0.0 } ])

let expect_invalid name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  | exception Invalid_argument _ -> ()

let test_schedule_of_seed () =
  let mk ?(overlap = false) seed =
    Cluster.schedule_of_seed ~overlap ~seed ~nodes:3 ~crashes:8 ~horizon_ns:1e6
      ~down_ns:1e4
  in
  (* Deterministic: same seed, same schedule — in both modes. *)
  Alcotest.(check bool) "deterministic" true (mk 7 = mk 7);
  Alcotest.(check bool) "deterministic overlap" true
    (mk ~overlap:true 7 = mk ~overlap:true 7);
  Alcotest.(check bool) "seed-sensitive" true (mk 7 <> mk 8);
  let sched = mk 7 in
  Alcotest.(check int) "count" 8 (List.length sched);
  (* Serialized: each crash begins only after the previous node has
     recovered, so at most one node is ever down. *)
  let rec check_serial = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "no overlapping outages" true
        (b.Cluster.ev_at >= a.Cluster.ev_at +. a.Cluster.ev_down_for);
      check_serial rest
    | _ -> ()
  in
  check_serial sched;
  List.iter
    (fun e ->
      Alcotest.(check bool) "node in range" true
        (e.Cluster.ev_node >= 0 && e.Cluster.ev_node < 3);
      Alcotest.(check bool) "positive outage" true (e.Cluster.ev_down_for > 0.0))
    sched;
  (* Overlap mode keeps the raw times: sorted, inside the horizon, and
     (with 8 outages of >= 2e4 ns packed into a 1e5 ns horizon, by
     pigeonhole) at least one outage starts while another is still
     running — the regime the quorum rules exist for. *)
  let raw =
    Cluster.schedule_of_seed ~overlap:true ~seed:7 ~nodes:3 ~crashes:8
      ~horizon_ns:1e5 ~down_ns:4e4
  in
  let sorted = List.sort (fun a b -> compare a.Cluster.ev_at b.Cluster.ev_at) raw in
  Alcotest.(check bool) "overlap times sorted" true (raw = sorted);
  List.iter
    (fun e ->
      Alcotest.(check bool) "inside horizon" true
        (e.Cluster.ev_at >= 0.0 && e.Cluster.ev_at <= 1e5))
    raw;
  let rec any_overlap = function
    | a :: (b :: _ as rest) ->
      b.Cluster.ev_at < a.Cluster.ev_at +. a.Cluster.ev_down_for
      || any_overlap rest
    | _ -> false
  in
  Alcotest.(check bool) "outages genuinely overlap" true (any_overlap raw);
  (* Satellite: bad arguments raise Invalid_argument (never an
     assertion, so the checks survive release builds). *)
  expect_invalid "negative crashes" (fun () ->
      Cluster.schedule_of_seed ~overlap:false ~seed:1 ~nodes:2 ~crashes:(-1)
        ~horizon_ns:1e6 ~down_ns:1e4);
  expect_invalid "zero nodes" (fun () ->
      Cluster.schedule_of_seed ~overlap:false ~seed:1 ~nodes:0 ~crashes:1
        ~horizon_ns:1e6 ~down_ns:1e4);
  expect_invalid "infinite horizon" (fun () ->
      Cluster.schedule_of_seed ~overlap:false ~seed:1 ~nodes:2 ~crashes:1
        ~horizon_ns:Float.infinity ~down_ns:1e4);
  expect_invalid "nan outage" (fun () ->
      Cluster.schedule_of_seed ~overlap:true ~seed:1 ~nodes:2 ~crashes:1
        ~horizon_ns:1e6 ~down_ns:Float.nan)

(* --- crash/failover state machine ---------------------------------------- *)

let test_failover_epoch () =
  let t =
    Cluster.create ~capacity:65536
      (Cluster.mirror ~nodes:2 ~copies:2
         [ { Cluster.ev_node = 0; ev_at = 100.0; ev_down_for = 50.0 } ])
  in
  Cluster.write_i64 t ~addr:0 42L;
  Alcotest.(check int) "epoch 0" 0 (Cluster.epoch t);
  Alcotest.(check bool) "redundant" true (Cluster.redundant t);
  Alcotest.(check (pair int int)) "scheme" (1, 1) (Cluster.scheme t);
  Alcotest.(check int) "node 0 serving" 0 (Cluster.serving_node t);
  (* Before the crash is due, poll is a no-op. *)
  Alcotest.(check int) "no early incidents" 0 (List.length (Cluster.poll t ~now:99.0));
  let incidents = Cluster.poll t ~now:120.0 in
  (match incidents with
  | [ Cluster.Failover { failed; epoch; down; _ } ] ->
    Alcotest.(check int) "failed node" 0 failed;
    Alcotest.(check int) "epoch bumped" 1 epoch;
    Alcotest.(check int) "one down" 1 down
  | _ -> Alcotest.fail "expected exactly one Failover");
  Alcotest.(check int) "epoch accessor" 1 (Cluster.epoch t);
  Alcotest.(check int) "service moved" 1 (Cluster.serving_node t);
  Alcotest.(check (float 0.0)) "node outage window" 150.0
    (Cluster.node_down_until t ~node:0);
  (* The surviving copy decodes the data: failover lost nothing. *)
  Alcotest.(check int64) "data survived" 42L (Cluster.read_i64 t ~addr:0);
  Alcotest.(check bool) "reconstruction counted" true
    ((Cluster.stats t).Cluster.reconstructions > 0);
  (* The crashed node returns at t=150 and is rebuilt from survivors. *)
  (match Cluster.poll t ~now:200.0 with
  | [ Cluster.Recovered { node; whole; resync_bytes; _ } ] ->
    Alcotest.(check int) "node 0 back" 0 node;
    Alcotest.(check bool) "cluster whole again" true whole;
    Alcotest.(check bool) "resynced bytes" true (resync_bytes > 0)
  | _ -> Alcotest.fail "expected exactly one Recovered");
  Alcotest.(check int) "node 0 serving again" 0 (Cluster.serving_node t);
  Alcotest.(check int64) "rebuilt data" 42L (Cluster.read_i64 t ~addr:0);
  Alcotest.(check bool) "never degraded" false (Cluster.degraded t)

(* Directed overlapping-two-node-outage test for m = 2: with two nodes
   of an EC(4,2) group down at once, every read still decodes the
   exact written bytes (double-erasure Reed-Solomon recovery), writes
   made during the outage survive, and nothing is ever lost. *)
let test_overlapping_outages_m2 () =
  let v a = Int64.of_int ((a * 7) + 1) in
  let cap = 8192 in
  let t =
    Cluster.create ~capacity:cap
      (Cluster.ec ~chunk:64 ~nodes:6 ~k:4 ~m:2
         [
           { Cluster.ev_node = 1; ev_at = 100.0; ev_down_for = 500.0 };
           { Cluster.ev_node = 2; ev_at = 150.0; ev_down_for = 500.0 };
         ])
  in
  let addrs = List.init (cap / 8) (fun i -> i * 8) in
  List.iter (fun a -> Cluster.write_i64 t ~addr:a (v a)) addrs;
  (match Cluster.poll t ~now:200.0 with
  | [ Cluster.Failover { down = 1; _ }; Cluster.Failover { down = 2; _ } ] -> ()
  | _ -> Alcotest.fail "expected two quorum-holding Failovers");
  Alcotest.(check int) "two down" 2 (Cluster.down_count t);
  Alcotest.(check (float 0.0)) "within quorum" 0.0 (Cluster.down_until t);
  (* Every read decodes bit-identically while both nodes are down. *)
  List.iter
    (fun a ->
      Alcotest.(check int64)
        (Printf.sprintf "decode addr %d" a)
        (v a) (Cluster.read_i64 t ~addr:a))
    addrs;
  Alcotest.(check bool) "double-erasure decodes counted" true
    ((Cluster.stats t).Cluster.reconstructions > 0);
  (* Decode debt is drained by the cache layer; here we drain manually. *)
  Alcotest.(check bool) "survivor read debt" true
    (Cluster.take_reconstruction t > 0);
  Alcotest.(check int) "debt drained" 0 (Cluster.take_reconstruction t);
  (* Writes during the outage update surviving parity incrementally. *)
  List.iter
    (fun a -> Cluster.write_i64 t ~addr:a (Int64.neg (v a)))
    (List.filteri (fun i _ -> i mod 5 = 0) addrs);
  (match Cluster.poll t ~now:1000.0 with
  | [ Cluster.Recovered _; Cluster.Recovered { whole = true; _ } ] -> ()
  | _ -> Alcotest.fail "expected two Recovered, cluster whole");
  List.iter
    (fun a ->
      let expect = if a / 8 mod 5 = 0 then Int64.neg (v a) else v a in
      Alcotest.(check int64)
        (Printf.sprintf "post-recovery addr %d" a)
        expect (Cluster.read_i64 t ~addr:a))
    addrs;
  Alcotest.(check bool) "never degraded" false (Cluster.degraded t);
  Alcotest.(check int) "nothing lost" 0 (Cluster.stats t).Cluster.lost_bytes

(* Past-quorum data loss is exact: only the crashed node's data chunks
   in over-quorum stripe groups are lost; chunks decodable at crash
   time (the first down node's) are materialized and keep serving. *)
let test_past_quorum_loss_accounting () =
  let v a = Int64.of_int ((a * 13) + 5) in
  let cap = 4096 in
  let t =
    Cluster.create ~capacity:cap
      (Cluster.ec ~chunk:64 ~nodes:3 ~k:2 ~m:1
         [
           { Cluster.ev_node = 0; ev_at = 100.0; ev_down_for = 1000.0 };
           { Cluster.ev_node = 1; ev_at = 200.0; ev_down_for = 1000.0 };
         ])
  in
  let addrs = List.init (cap / 8) (fun i -> i * 8) in
  List.iter (fun a -> Cluster.write_i64 t ~addr:a (v a)) addrs;
  (match Cluster.poll t ~now:150.0 with
  | [ Cluster.Failover { failed = 0; _ } ] -> ()
  | _ -> Alcotest.fail "first crash holds quorum");
  (* One down of m = 1: reads still decode. *)
  List.iter
    (fun a -> Alcotest.(check int64) "decode ok" (v a) (Cluster.read_i64 t ~addr:a))
    addrs;
  let lost_bytes =
    match Cluster.poll t ~now:250.0 with
    | [ Cluster.Data_lost { node = 1; lost_bytes; down = 2; _ } ] -> lost_bytes
    | _ -> Alcotest.fail "second crash loses data"
  in
  Alcotest.(check bool) "bytes lost" true (lost_bytes > 0);
  Alcotest.(check bool) "degraded" true (Cluster.degraded t);
  Alcotest.(check (float 0.0)) "outage window until first recovery" 1100.0
    (Cluster.down_until t);
  let extents = Cluster.take_lost_extents t in
  Alcotest.(check int) "extent sum matches lost_bytes" lost_bytes
    (List.fold_left (fun acc (_, l) -> acc + l) 0 extents);
  Alcotest.(check int) "drained" 0 (List.length (Cluster.take_lost_extents t));
  let in_lost a = List.exists (fun (ea, el) -> a >= ea && a < ea + el) extents in
  List.iter
    (fun a ->
      if in_lost a then
        Alcotest.(check int64)
          (Printf.sprintf "lost addr %d reads zero" a)
          0L (Cluster.read_i64 t ~addr:a)
      else
        Alcotest.(check int64)
          (Printf.sprintf "surviving addr %d intact" a)
          (v a) (Cluster.read_i64 t ~addr:a))
    addrs;
  Alcotest.(check int) "stats agree" lost_bytes (Cluster.stats t).Cluster.lost_bytes

(* The scheme's bytes-on-wire: EC(4,2) pays two parity-row updates of
   one chunk each per full-stripe write; a 3-way mirror pays two full
   copies.  Equal fault tolerance (both survive any two concurrent
   failures), >= 30% less redundancy traffic — the acceptance bar. *)
let test_bytes_on_wire_scheme () =
  let mirror3 =
    Cluster.create ~capacity:65536 (Cluster.mirror ~nodes:3 ~copies:3 [])
  in
  let ec42 = Cluster.create ~capacity:65536 (Cluster.ec ~nodes:6 ~k:4 ~m:2 []) in
  let wire t =
    List.fold_left (fun a (_, b) -> a + b) 0
      (Cluster.replica_payloads t ~addr:0 ~len:4096)
  in
  Alcotest.(check int) "mirror pays two full copies" (2 * 4096) (wire mirror3);
  Alcotest.(check int) "ec pays two chunk rows" 2048 (wire ec42);
  Alcotest.(check bool) "ec cuts bytes-on-wire >= 30%" true
    (float_of_int (wire ec42) <= 0.7 *. float_of_int (wire mirror3));
  (* The data-plane write accounts exactly the advertised payloads. *)
  let buf = Bytes.make 4096 'x' in
  Cluster.write ec42 ~addr:0 ~len:4096 ~src:buf ~src_off:0;
  Alcotest.(check int) "write stats match payloads" 2048
    (Cluster.stats ec42).Cluster.replication_bytes

(* Satellite: [clear] resets the sticky degraded flag and all per-run
   stats, so a reused cluster never reports a previous run's damage. *)
let test_clear_resets_degraded () =
  let t =
    Cluster.create ~capacity:4096
      { Cluster.spec_default with
        Cluster.schedule =
          [ { Cluster.ev_node = 0; ev_at = 100.0; ev_down_for = 50.0 } ]
      }
  in
  Cluster.write_i64 t ~addr:0 9L;
  ignore (Cluster.poll t ~now:120.0);
  Cluster.observe_recovery t 123.0;
  Alcotest.(check bool) "degraded after loss" true (Cluster.degraded t);
  Alcotest.(check bool) "stats dirty" true ((Cluster.stats t).Cluster.crashes > 0);
  Cluster.clear t;
  Alcotest.(check bool) "degraded reset" false (Cluster.degraded t);
  let st = Cluster.stats t in
  Alcotest.(check int) "crashes reset" 0 st.Cluster.crashes;
  Alcotest.(check int) "failovers reset" 0 st.Cluster.failovers;
  Alcotest.(check int) "lost reset" 0 st.Cluster.lost_bytes;
  Alcotest.(check int) "replication reset" 0 st.Cluster.replication_bytes;
  Alcotest.(check int) "reconstructions reset" 0 st.Cluster.reconstructions;
  Alcotest.(check int) "recovery hist reset" 0
    (Mira_telemetry.Metrics.hist_count st.Cluster.recovery);
  Alcotest.(check int) "lost extents drained" 0
    (List.length (Cluster.take_lost_extents t));
  Alcotest.(check int64) "stores zeroed" 0L (Cluster.read_i64 t ~addr:0)

let test_of_store_passthrough () =
  let far = Far_store.create ~capacity:4096 in
  let t = Cluster.of_store far in
  Cluster.write_i64 t ~addr:8 5L;
  Alcotest.(check int64) "shared store" 5L (Far_store.read_i64 far ~addr:8);
  Alcotest.(check bool) "no events ever" true (Cluster.next_event_at t = infinity);
  Alcotest.(check int) "no incidents" 0 (List.length (Cluster.poll t ~now:1e12))

(* --- crash during Manager.end_section ------------------------------------ *)

let test_crash_during_end_section () =
  (* A failover due exactly when [end_section] runs must be processed
     before the rebudget: the manager recovers (dirty lines re-issued,
     recovery time charged) and then tears the section down normally. *)
  let net = Net.create Mira_sim.Params.default in
  let cluster =
    Cluster.create ~capacity:(1 lsl 20)
      (Cluster.mirror ~nodes:2 ~copies:2
         [ { Cluster.ev_node = 0; ev_at = 10.0; ev_down_for = 1e4 } ])
  in
  let mgr =
    Manager.create net cluster ~budget:65536 ~page:4096 ~side:Net.One_sided
  in
  let clock = Clock.create () in
  let cfg = Section.config_default ~sec_id:1 ~name:"s" ~line:64 ~size:4096 in
  (match Manager.add_section mgr ~clock cfg with
  | Ok s ->
    (* Dirty a few lines, then advance past the scheduled crash so the
       failover fires inside end_section. *)
    Section.store s ~clock ~addr:0 ~len:8 1L;
    Section.store s ~clock ~addr:64 ~len:8 2L;
    Clock.advance clock 1e6;
    Manager.end_section mgr ~clock ~id:1
  | Error m -> Alcotest.fail m);
  let st = Cluster.stats cluster in
  Alcotest.(check int) "failover happened" 1 st.Cluster.failovers;
  Alcotest.(check bool) "recovery time charged" true
    (Mira_telemetry.Metrics.hist_count st.Cluster.recovery = 1);
  Alcotest.(check int) "section gone" 0 (List.length (Manager.sections mgr));
  (* Post-failover state is coherent: survivors decode the written
     data. *)
  Alcotest.(check int64) "data survived teardown" 1L (Cluster.read_i64 cluster ~addr:0);
  Alcotest.(check int64) "second line too" 2L (Cluster.read_i64 cluster ~addr:64);
  Alcotest.(check bool) "never degraded" false (Cluster.degraded cluster)

(* --- end-to-end: bit-identical while within quorum ------------------------ *)

let micro_cfg =
  { Mira_workloads.Micro_sum.config_default with
    Mira_workloads.Micro_sum.elems = 20_000; stride = 8 }

let run_workload spec =
  let far = Mira_workloads.Micro_sum.far_bytes micro_cfg in
  let far_capacity = Mira_util.Misc.round_up (4 * far) 4096 in
  let prog = Mira_workloads.Micro_sum.build micro_cfg in
  let rt =
    Runtime.create
      Runtime.Config.(
        make ~local_budget:(far / 4) ~far_capacity |> with_cluster spec)
  in
  let ms = Runtime.memsys rt in
  let measured =
    Mira_passes.Instrument.run_only prog ~names:[ C.work_function prog ]
  in
  let machine = Machine.create ~seed:42 ms measured in
  let v, work_ns = C.measure_work ms machine in
  (v, work_ns, rt)

(* Satellite: the quorum property over random overlapping schedules.
   Any (k, m) scheme from the pool, any seeded schedule of up to m
   genuinely concurrent outages (so at most m nodes are ever down at
   once): the workload's output is bit-identical to the no-fault run
   and nothing is lost.  Generalizes the old replication-2 property. *)
let qcheck_quorum_bit_identical =
  let baseline = lazy (let v, _, _ = run_workload Cluster.spec_default in v) in
  QCheck.Test.make
    ~name:"(k,m) quorum: output bit-identical while <= m down (overlapping)"
    ~count:10
    QCheck.(int_bound 10_000)
    (fun seed ->
      let nodes, k, m =
        match seed mod 4 with
        | 0 -> (2, 1, 1)  (* classic primary + mirror *)
        | 1 -> (3, 2, 1)  (* XOR stripe *)
        | 2 -> (6, 4, 2)  (* RAID-6-style double parity *)
        | _ -> (3, 1, 2)  (* 3-way mirror *)
      in
      let schedule =
        Cluster.schedule_of_seed ~overlap:true ~seed ~nodes ~crashes:m
          ~horizon_ns:2e5 ~down_ns:2e4
      in
      let v, work_ns, rt =
        run_workload (Cluster.ec ~chunk:1024 ~nodes ~k ~m schedule)
      in
      let st = Cluster.stats (Runtime.cluster rt) in
      Mira_interp.Value.equal v (Lazy.force baseline)
      && st.Cluster.lost_bytes = 0
      && Runtime.lost_bytes_total rt = 0
      && work_ns > 0.0)

let test_degraded_run_completes () =
  (* Redundancy off, the only node crashes mid-run: the workload still
     completes (no exception), lost bytes are accounted per object, and
     the report says degraded. *)
  let schedule =
    Cluster.schedule_of_seed ~overlap:false ~seed:3 ~nodes:1 ~crashes:1
      ~horizon_ns:1e5 ~down_ns:3e4
  in
  let v, _, rt =
    run_workload { Cluster.spec_default with Cluster.schedule }
  in
  ignore v;
  Alcotest.(check bool) "degraded" true (Cluster.degraded (Runtime.cluster rt));
  Alcotest.(check bool) "lost bytes accounted" true
    (Runtime.lost_bytes_total rt > 0);
  Alcotest.(check bool) "per-site attribution" true
    (Runtime.lost_bytes_by_site rt <> []);
  (* The metrics registry carries the same accounting. *)
  let reg = Mira_telemetry.Metrics.create () in
  Runtime.publish rt reg;
  (match Mira_telemetry.Metrics.find reg "runtime.degraded" with
  | Some (Mira_telemetry.Metrics.Counter 1) -> ()
  | _ -> Alcotest.fail "runtime.degraded not published");
  match Mira_telemetry.Metrics.find reg "node.crashes" with
  | Some (Mira_telemetry.Metrics.Counter n) ->
    Alcotest.(check bool) "crashes counted" true (n >= 1)
  | _ -> Alcotest.fail "node.crashes not published"

let test_replication_traffic_modeled () =
  (* With redundancy on, writebacks produce extra outbound messages
     (the parity updates ride detached writes) and the cluster counts
     the bytes-on-wire. *)
  let run spec =
    let _, _, rt = run_workload spec in
    let net = Net.stats (Runtime.net rt) in
    (net.Net.bytes_writeback, Cluster.stats (Runtime.cluster rt))
  in
  let wb1, _ = run Cluster.spec_default in
  let wb2, st2 = run (Cluster.mirror ~nodes:2 ~copies:2 []) in
  Alcotest.(check bool) "replica traffic on the wire" true (wb2 >= wb1);
  Alcotest.(check bool) "no crashes, no resync" true
    (st2.Cluster.resync_bytes = 0);
  (* EC metrics are exported for non-trivial clusters. *)
  let _, _, rt = run_workload (Cluster.ec ~nodes:6 ~k:4 ~m:2 []) in
  let reg = Mira_telemetry.Metrics.create () in
  Runtime.publish rt reg;
  (match Mira_telemetry.Metrics.find reg "ec.k" with
  | Some (Mira_telemetry.Metrics.Counter 4) -> ()
  | _ -> Alcotest.fail "ec.k not published");
  match Mira_telemetry.Metrics.find reg "ec.node0.served_bytes" with
  | Some (Mira_telemetry.Metrics.Counter n) ->
    Alcotest.(check bool) "node 0 served traffic" true (n > 0)
  | _ -> Alcotest.fail "ec.node0.served_bytes not published"

(* --- doc drift guard ------------------------------------------------------ *)

(* docs/FAULT_TOLERANCE.md must keep describing the fault-tolerance
   vocabulary the code exports: incident names, placement names, the
   quorum/epoch rules, and the reconstruction attribution cause.
   Rename any of these and this test fails until the doc catches up —
   the same pattern as the OBSERVABILITY.md metric guard. *)
let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_fault_doc_guard () =
  let doc =
    In_channel.with_open_bin "../docs/FAULT_TOLERANCE.md" In_channel.input_all
  in
  let required =
    [
      "Failover"; "Data_lost"; "Recovered";  (* incident constructors *)
      Cluster.placement_name Cluster.Flat;
      Cluster.placement_name Cluster.Rotate;
      "quorum"; "epoch"; "stripe"; "parity"; "placement";
      Mira_telemetry.Attribution.cause_name Mira_telemetry.Attribution.Reconstruct;
      "take_lost_extents"; "schedule_of_seed"; "overlap";
    ]
  in
  List.iter
    (fun tok ->
      if not (contains_sub doc tok) then
        Alcotest.failf "docs/FAULT_TOLERANCE.md no longer mentions %S" tok)
    required

let suite =
  [
    Alcotest.test_case "spec validation" `Quick test_validate_spec;
    Alcotest.test_case "seeded schedule" `Quick test_schedule_of_seed;
    Alcotest.test_case "failover + epoch" `Quick test_failover_epoch;
    Alcotest.test_case "overlapping outages (m=2)" `Quick
      test_overlapping_outages_m2;
    Alcotest.test_case "past-quorum loss accounting" `Quick
      test_past_quorum_loss_accounting;
    Alcotest.test_case "bytes-on-wire per scheme" `Quick
      test_bytes_on_wire_scheme;
    Alcotest.test_case "clear resets degraded + stats" `Quick
      test_clear_resets_degraded;
    Alcotest.test_case "of_store passthrough" `Quick test_of_store_passthrough;
    Alcotest.test_case "crash during end_section" `Quick
      test_crash_during_end_section;
    Alcotest.test_case "fault-tolerance doc guard" `Quick test_fault_doc_guard;
    QCheck_alcotest.to_alcotest qcheck_quorum_bit_identical;
    Alcotest.test_case "degraded run completes" `Slow test_degraded_run_completes;
    Alcotest.test_case "replication traffic" `Slow test_replication_traffic_modeled;
  ]
