(* Tests for the far-memory failure domain: the [Cluster] node array,
   seeded crash schedules, epoch-fenced failover, replicated writeback,
   and degraded-mode operation.  The central property: with replication
   2 and any seeded single-node crash schedule, a workload's output is
   bit-identical to the no-fault run — crashes cost time, never data. *)
module Clock = Mira_sim.Clock
module Net = Mira_sim.Net
module Far_store = Mira_sim.Far_store
module Cluster = Mira_sim.Cluster
module Manager = Mira_cache.Manager
module Section = Mira_cache.Section
module Runtime = Mira_runtime.Runtime
module Machine = Mira_interp.Machine
module C = Mira.Controller

(* --- spec validation and schedules -------------------------------------- *)

let test_validate_spec () =
  let ok spec = Cluster.validate_spec spec in
  ok Cluster.spec_default;
  ok { Cluster.nodes = 3; replication = 2; schedule = [] };
  let rejects name spec =
    match Cluster.validate_spec spec with
    | () -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument _ -> ()
  in
  rejects "no nodes" { Cluster.nodes = 0; replication = 1; schedule = [] };
  rejects "zero replication" { Cluster.nodes = 2; replication = 0; schedule = [] };
  rejects "replication > nodes"
    { Cluster.nodes = 1; replication = 2; schedule = [] };
  rejects "bad node index"
    { Cluster.nodes = 2; replication = 1;
      schedule = [ { Cluster.ev_node = 2; ev_at = 1.0; ev_down_for = 1.0 } ] };
  rejects "negative time"
    { Cluster.nodes = 1; replication = 1;
      schedule = [ { Cluster.ev_node = 0; ev_at = -1.0; ev_down_for = 1.0 } ] };
  rejects "nan time"
    { Cluster.nodes = 1; replication = 1;
      schedule = [ { Cluster.ev_node = 0; ev_at = Float.nan; ev_down_for = 1.0 } ] };
  rejects "non-positive outage"
    { Cluster.nodes = 1; replication = 1;
      schedule = [ { Cluster.ev_node = 0; ev_at = 1.0; ev_down_for = 0.0 } ] }

let test_schedule_of_seed () =
  let mk seed =
    Cluster.schedule_of_seed ~seed ~nodes:3 ~crashes:8 ~horizon_ns:1e6
      ~down_ns:1e4
  in
  (* Deterministic: same seed, same schedule. *)
  Alcotest.(check bool) "deterministic" true (mk 7 = mk 7);
  Alcotest.(check bool) "seed-sensitive" true (mk 7 <> mk 8);
  let sched = mk 7 in
  Alcotest.(check int) "count" 8 (List.length sched);
  (* Serialized: each crash begins only after the previous node has
     recovered, so one in-sync replica always survives. *)
  let rec check_serial = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "no overlapping outages" true
        (b.Cluster.ev_at >= a.Cluster.ev_at +. a.Cluster.ev_down_for);
      check_serial rest
    | _ -> ()
  in
  check_serial sched;
  List.iter
    (fun e ->
      Alcotest.(check bool) "node in range" true
        (e.Cluster.ev_node >= 0 && e.Cluster.ev_node < 3);
      Alcotest.(check bool) "positive outage" true (e.Cluster.ev_down_for > 0.0))
    sched

(* --- crash/failover state machine ---------------------------------------- *)

let test_failover_epoch () =
  let t =
    Cluster.create ~capacity:65536
      { Cluster.nodes = 2; replication = 2;
        schedule = [ { Cluster.ev_node = 0; ev_at = 100.0; ev_down_for = 50.0 } ] }
  in
  Cluster.write_i64 t ~addr:0 42L;
  Alcotest.(check int) "epoch 0" 0 (Cluster.epoch t);
  Alcotest.(check bool) "replicated" true (Cluster.replicated t);
  Alcotest.(check int) "primary is node 0" 0 (Cluster.primary_index t);
  (* Before the crash is due, poll is a no-op. *)
  Alcotest.(check int) "no early incidents" 0 (List.length (Cluster.poll t ~now:99.0));
  let incidents = Cluster.poll t ~now:120.0 in
  (match incidents with
  | [ Cluster.Failover { failed; new_primary; epoch; _ } ] ->
    Alcotest.(check int) "failed node" 0 failed;
    Alcotest.(check int) "promoted backup" 1 new_primary;
    Alcotest.(check int) "epoch bumped" 1 epoch
  | _ -> Alcotest.fail "expected exactly one Failover");
  Alcotest.(check int) "epoch accessor" 1 (Cluster.epoch t);
  (* The promoted backup has the data: failover lost nothing. *)
  Alcotest.(check int64) "data survived" 42L (Cluster.read_i64 t ~addr:0);
  Alcotest.(check bool) "under-replicated now" false (Cluster.replicated t);
  (* The crashed node returns at t=150 and resyncs as the new backup. *)
  (match Cluster.poll t ~now:200.0 with
  | [ Cluster.Recovered { node; now_backup; resync_bytes; _ } ] ->
    Alcotest.(check int) "node 0 back" 0 node;
    Alcotest.(check bool) "rejoined as backup" true now_backup;
    Alcotest.(check bool) "resynced bytes" true (resync_bytes > 0)
  | _ -> Alcotest.fail "expected exactly one Recovered");
  Alcotest.(check bool) "replication whole again" true (Cluster.replicated t);
  Alcotest.(check bool) "never degraded" false (Cluster.degraded t)

let test_degraded_loss () =
  let t =
    Cluster.create ~capacity:65536
      { Cluster.nodes = 1; replication = 1;
        schedule = [ { Cluster.ev_node = 0; ev_at = 100.0; ev_down_for = 50.0 } ] }
  in
  Cluster.write_i64 t ~addr:128 7L;
  (match Cluster.poll t ~now:110.0 with
  | [ Cluster.Primary_lost { lost_bytes; _ } ] ->
    Alcotest.(check bool) "bytes lost" true (lost_bytes > 0)
  | _ -> Alcotest.fail "expected Primary_lost");
  Alcotest.(check bool) "degraded" true (Cluster.degraded t);
  Alcotest.(check bool) "outage window" true (Cluster.down_until t = 150.0);
  (* Reads of the wiped extent see zeros — the run continues. *)
  Alcotest.(check int64) "wiped reads zero" 0L (Cluster.read_i64 t ~addr:128);
  let extents = Cluster.take_lost_extents t in
  Alcotest.(check bool) "lost extent reported" true (extents <> []);
  Alcotest.(check int) "drained" 0 (List.length (Cluster.take_lost_extents t))

let test_of_store_passthrough () =
  let far = Far_store.create ~capacity:4096 in
  let t = Cluster.of_store far in
  Cluster.write_i64 t ~addr:8 5L;
  Alcotest.(check int64) "shared store" 5L (Far_store.read_i64 far ~addr:8);
  Alcotest.(check bool) "no events ever" true (Cluster.next_event_at t = infinity);
  Alcotest.(check int) "no incidents" 0 (List.length (Cluster.poll t ~now:1e12))

(* --- crash during Manager.end_section ------------------------------------ *)

let test_crash_during_end_section () =
  (* A failover due exactly when [end_section] runs must be processed
     before the rebudget: the manager recovers (dirty lines re-issued,
     recovery time charged) and then tears the section down normally. *)
  let net = Net.create Mira_sim.Params.default in
  let cluster =
    Cluster.create ~capacity:(1 lsl 20)
      { Cluster.nodes = 2; replication = 2;
        schedule = [ { Cluster.ev_node = 0; ev_at = 10.0; ev_down_for = 1e4 } ] }
  in
  let mgr =
    Manager.create net cluster ~budget:65536 ~page:4096 ~side:Net.One_sided
  in
  let clock = Clock.create () in
  let cfg = Section.config_default ~sec_id:1 ~name:"s" ~line:64 ~size:4096 in
  (match Manager.add_section mgr ~clock cfg with
  | Ok s ->
    (* Dirty a few lines, then advance past the scheduled crash so the
       failover fires inside end_section. *)
    Section.store s ~clock ~addr:0 ~len:8 1L;
    Section.store s ~clock ~addr:64 ~len:8 2L;
    Clock.advance clock 1e6;
    Manager.end_section mgr ~clock ~id:1
  | Error m -> Alcotest.fail m);
  let st = Cluster.stats cluster in
  Alcotest.(check int) "failover happened" 1 st.Cluster.failovers;
  Alcotest.(check bool) "recovery time charged" true
    (Mira_telemetry.Metrics.hist_count st.Cluster.recovery = 1);
  Alcotest.(check int) "section gone" 0 (List.length (Manager.sections mgr));
  (* Post-failover state is coherent: the promoted node serves the
     written data. *)
  Alcotest.(check int64) "data survived teardown" 1L (Cluster.read_i64 cluster ~addr:0);
  Alcotest.(check int64) "second line too" 2L (Cluster.read_i64 cluster ~addr:64);
  Alcotest.(check bool) "never degraded" false (Cluster.degraded cluster)

(* --- end-to-end: bit-identical under replication 2 ------------------------ *)

let micro_cfg =
  { Mira_workloads.Micro_sum.config_default with
    Mira_workloads.Micro_sum.elems = 20_000; stride = 8 }

let run_workload spec =
  let far = Mira_workloads.Micro_sum.far_bytes micro_cfg in
  let far_capacity = Mira_util.Misc.round_up (4 * far) 4096 in
  let prog = Mira_workloads.Micro_sum.build micro_cfg in
  let rt =
    Runtime.create
      Runtime.Config.(
        make ~local_budget:(far / 4) ~far_capacity |> with_cluster spec)
  in
  let ms = Runtime.memsys rt in
  let measured =
    Mira_passes.Instrument.run_only prog ~names:[ C.work_function prog ]
  in
  let machine = Machine.create ~seed:42 ms measured in
  let v, work_ns = C.measure_work ms machine in
  (v, work_ns, rt)

let qcheck_bit_identical_replicated =
  let baseline = lazy (let v, _, _ = run_workload Cluster.spec_default in v) in
  QCheck.Test.make ~name:"replication 2: output bit-identical under crashes"
    ~count:12
    QCheck.(int_bound 10_000)
    (fun seed ->
      let schedule =
        Cluster.schedule_of_seed ~seed ~nodes:2 ~crashes:2 ~horizon_ns:2e5
          ~down_ns:2e4
      in
      let v, work_ns, rt =
        run_workload { Cluster.nodes = 2; replication = 2; schedule }
      in
      let st = Cluster.stats (Runtime.cluster rt) in
      Mira_interp.Value.equal v (Lazy.force baseline)
      && st.Cluster.lost_bytes = 0
      && Runtime.lost_bytes_total rt = 0
      && work_ns > 0.0)

let test_degraded_run_completes () =
  (* Replication off, primary crashes mid-run: the workload still
     completes (no exception), lost bytes are accounted per object, and
     the report says degraded. *)
  let schedule =
    Cluster.schedule_of_seed ~seed:3 ~nodes:1 ~crashes:1 ~horizon_ns:1e5
      ~down_ns:3e4
  in
  let v, _, rt =
    run_workload { Cluster.nodes = 1; replication = 1; schedule }
  in
  ignore v;
  Alcotest.(check bool) "degraded" true (Cluster.degraded (Runtime.cluster rt));
  Alcotest.(check bool) "lost bytes accounted" true
    (Runtime.lost_bytes_total rt > 0);
  Alcotest.(check bool) "per-site attribution" true
    (Runtime.lost_bytes_by_site rt <> []);
  (* The metrics registry carries the same accounting. *)
  let reg = Mira_telemetry.Metrics.create () in
  Runtime.publish rt reg;
  (match Mira_telemetry.Metrics.find reg "runtime.degraded" with
  | Some (Mira_telemetry.Metrics.Counter 1) -> ()
  | _ -> Alcotest.fail "runtime.degraded not published");
  match Mira_telemetry.Metrics.find reg "node.crashes" with
  | Some (Mira_telemetry.Metrics.Counter n) ->
    Alcotest.(check bool) "crashes counted" true (n >= 1)
  | _ -> Alcotest.fail "node.crashes not published"

let test_replication_traffic_modeled () =
  (* With replication on, writebacks produce extra outbound messages
     (the backup copies ride detached writes) and the cluster counts the
     mirrored bytes. *)
  let run spec =
    let _, _, rt = run_workload spec in
    let net = Net.stats (Runtime.net rt) in
    (net.Net.bytes_writeback, Cluster.stats (Runtime.cluster rt))
  in
  let wb1, _ = run Cluster.spec_default in
  let wb2, st2 = run { Cluster.nodes = 2; replication = 2; schedule = [] } in
  Alcotest.(check bool) "replica traffic on the wire" true (wb2 >= wb1);
  Alcotest.(check bool) "no crashes, no resync" true
    (st2.Cluster.resync_bytes = 0)

let suite =
  [
    Alcotest.test_case "spec validation" `Quick test_validate_spec;
    Alcotest.test_case "seeded schedule" `Quick test_schedule_of_seed;
    Alcotest.test_case "failover + epoch" `Quick test_failover_epoch;
    Alcotest.test_case "degraded loss" `Quick test_degraded_loss;
    Alcotest.test_case "of_store passthrough" `Quick test_of_store_passthrough;
    Alcotest.test_case "crash during end_section" `Quick
      test_crash_during_end_section;
    QCheck_alcotest.to_alcotest qcheck_bit_identical_replicated;
    Alcotest.test_case "degraded run completes" `Slow test_degraded_run_completes;
    Alcotest.test_case "replication traffic" `Slow test_replication_traffic_modeled;
  ]
