(* The iterative controller: section planning, end-to-end optimization,
   the rollback guarantee, and result preservation. *)
module C = Mira.Controller
module SP = Mira.Section_planner
module Pattern = Mira_analysis.Pattern
module Section = Mira_cache.Section
module Machine = Mira_interp.Machine
module Value = Mira_interp.Value
module G = Mira_workloads.Graph_traversal

let params = Mira_sim.Params.default

let summary ~site ~kind ~elem ~ro ~wo =
  {
    Pattern.ss_site = site;
    ss_kind = kind;
    ss_reads = (if wo then 0 else 4);
    ss_writes = (if ro then 0 else 4);
    ss_fields_read = (if wo then [] else [ 0 ]);
    ss_fields_written = (if ro then [] else [ 0 ]);
    ss_elem = elem;
    ss_read_only = ro;
    ss_write_only = wo;
  }

let test_planner_sequential_stream () =
  let specs =
    SP.plan ~params
      ~summaries:[ (summary ~site:0 ~kind:(Pattern.Sequential 24) ~elem:24 ~ro:true ~wo:false, (0, 0)) ]
      ~site_bytes:(fun _ -> 1 lsl 20)
      ~first_id:1
  in
  match specs with
  | [ s ] ->
    Alcotest.(check bool) "direct" true
      (s.SP.sp_cfg.Section.structure = Section.Direct);
    Alcotest.(check bool) "big line" true (s.SP.sp_cfg.Section.line >= 1024);
    Alcotest.(check bool) "no metadata" true s.SP.sp_cfg.Section.no_meta;
    Alcotest.(check bool) "streaming" true s.SP.sp_seq;
    Alcotest.(check bool) "read discard" true s.SP.sp_cfg.Section.read_discard
  | _ -> Alcotest.failf "expected 1 spec, got %d" (List.length specs)

let test_planner_indirect () =
  let specs =
    SP.plan ~params
      ~summaries:[ (summary ~site:1 ~kind:(Pattern.Indirect 0) ~elem:128 ~ro:false ~wo:false, (0, 0)) ]
      ~site_bytes:(fun _ -> 1 lsl 20)
      ~first_id:1
  in
  match specs with
  | [ s ] ->
    Alcotest.(check bool) "set assoc" true
      (match s.SP.sp_cfg.Section.structure with Section.Set_assoc _ -> true | _ -> false);
    Alcotest.(check int) "element line" 128 s.SP.sp_cfg.Section.line;
    Alcotest.(check bool) "not streaming" false s.SP.sp_seq
  | _ -> Alcotest.fail "expected 1 spec"

let test_planner_random_full () =
  let specs =
    SP.plan ~params
      ~summaries:[ (summary ~site:1 ~kind:Pattern.Random ~elem:8 ~ro:false ~wo:false, (0, 0)) ]
      ~site_bytes:(fun _ -> 4096)
      ~first_id:1
  in
  match specs with
  | [ s ] ->
    Alcotest.(check bool) "full assoc" true
      (s.SP.sp_cfg.Section.structure = Section.Full_assoc)
  | _ -> Alcotest.fail "expected 1 spec"

let test_planner_selective_transmission () =
  (* 128B element, only one 8B field touched: two-sided partial payload *)
  let ss = summary ~site:2 ~kind:(Pattern.Indirect 0) ~elem:128 ~ro:false ~wo:false in
  let specs =
    SP.plan ~params ~summaries:[ (ss, (0, 0)) ] ~site_bytes:(fun _ -> 4096) ~first_id:1
  in
  match specs with
  | [ s ] ->
    Alcotest.(check bool) "two sided" true
      (s.SP.sp_cfg.Section.side = Mira_sim.Net.Two_sided);
    Alcotest.(check (option int)) "partial payload" (Some 8)
      s.SP.sp_cfg.Section.payload
  | _ -> Alcotest.fail "expected 1 spec"

let test_planner_grouping () =
  (* identical streaming decisions merge even across disjoint lifetimes;
     identical non-streaming ones merge only when lifetimes overlap *)
  let stream site interval =
    (summary ~site ~kind:(Pattern.Sequential 8) ~elem:8 ~ro:true ~wo:false, interval)
  in
  let rw site interval =
    (summary ~site ~kind:Pattern.Random ~elem:8 ~ro:false ~wo:false, interval)
  in
  let specs =
    SP.plan ~params
      ~summaries:[ stream 0 (0, 0); stream 1 (5, 5); rw 2 (0, 0); rw 3 (5, 5) ]
      ~site_bytes:(fun _ -> 4096)
      ~first_id:1
  in
  Alcotest.(check int) "streams merge, rw stay apart" 3 (List.length specs)

let test_planner_line_rule () =
  let small = SP.seq_line_bytes ~params ~elem:8 in
  Alcotest.(check bool) "network sweet spot" true (small >= 1024 && small <= 8192);
  let sized = SP.seq_section_bytes ~params ~line:2048 ~body_ops:64 in
  Alcotest.(check bool) "window at least a few lines" true (sized >= 8 * 2048)

let optimize_graph ?(budget_frac = 0.3) ?(iters = 3) () =
  let cfg = { G.config_default with G.num_edges = 8_000; num_nodes = 800 } in
  let prog = G.build cfg in
  let far = G.far_bytes cfg in
  let opts =
    { (C.options_default ~local_budget:(int_of_float (float_of_int far *. budget_frac))
         ~far_capacity:(4 * far))
      with C.max_iterations = iters }
  in
  (prog, opts, C.optimize opts prog)

let test_controller_improves_graph () =
  let _, _, compiled = optimize_graph () in
  Alcotest.(check bool) "created sections" true
    (List.length compiled.C.c_assignments >= 1);
  (* the measured best must not be worse than the initial swap run:
     the rollback guarantee *)
  Alcotest.(check bool) "iterations ran" true (compiled.C.c_iterations >= 0);
  Alcotest.(check bool) "log kept" true (List.length compiled.C.c_log > 0)

let test_controller_rollback_guarantee () =
  (* With sections disabled the result must equal the swap-only run;
     with them enabled the final time can never exceed it. *)
  let prog, opts, compiled = optimize_graph () in
  let swap_only = C.optimize { opts with C.feat_sections = false } prog in
  Alcotest.(check bool) "never worse than swap" true
    (compiled.C.c_work_ns <= swap_only.C.c_work_ns *. 1.001)

let test_controller_result_preserved () =
  let prog, _, compiled = optimize_graph () in
  let native = Mira_baselines.Native.create ~capacity:(1 lsl 24) () in
  let expected = Machine.run (Machine.create native prog) in
  let v, _ = C.run compiled in
  Alcotest.(check bool) "checksum preserved" true (Value.equal expected v)

let test_controller_ablation_flags () =
  let cfg = { G.config_default with G.num_edges = 3_000; num_nodes = 300 } in
  let prog = G.build cfg in
  let far = G.far_bytes cfg in
  let base =
    { (C.options_default ~local_budget:(far / 4) ~far_capacity:(4 * far)) with
      C.max_iterations = 2 }
  in
  (* all-off must behave like plain swap (no sections assigned) *)
  let off =
    C.optimize
      { base with
        C.feat_sections = false; feat_prefetch = false; feat_evict = false;
        feat_fusion = false; feat_native = false }
      prog
  in
  Alcotest.(check int) "no sections" 0 (List.length off.C.c_assignments);
  let v, _ = C.run off in
  let native = Mira_baselines.Native.create ~capacity:(4 * far) () in
  Alcotest.(check bool) "all-off correct" true
    (Value.equal (Machine.run (Machine.create native prog)) v)

let test_report () =
  let _, _, compiled = optimize_graph () in
  let text = Mira.Report.describe compiled in
  Alcotest.(check bool) "mentions iterations" true
    (String.length text > 40);
  let rt, _ = C.instantiate compiled in
  let _ = C.run compiled in
  let stats = Mira.Report.runtime_stats rt in
  Alcotest.(check bool) "stats render" true (String.length stats > 40)

let test_rollback_under_faults () =
  (* A lossy link with tight timeouts punishes the sectioned
     configuration (many small line fetches) more than the swap-only
     baseline (fewer, page-sized transfers): the regression must yield
     a [Decision.Rollback] and the returned configuration must be the
     previous best, not the regressed one. *)
  let cfg = { G.config_default with G.num_edges = 8_000; num_nodes = 800 } in
  let prog = G.build cfg in
  let far = G.far_bytes cfg in
  let fault =
    { Mira_sim.Net.Fault.default with
      Mira_sim.Net.Fault.drop_prob = 0.35; seed = 11; timeout_ns = 3_000.0;
      backoff_ns = 6_000.0; max_retries = 3 }
  in
  let opts =
    { (C.options_default ~local_budget:(far / 4) ~far_capacity:(4 * far)) with
      C.max_iterations = 2;
      dataplane =
        { Mira_sim.Net.dp_default with Mira_sim.Net.fault = Some fault } }
  in
  let compiled = C.optimize opts prog in
  let measures =
    List.filter_map
      (function
        | Mira_telemetry.Decision.Measure { work_ns; _ } -> Some work_ns
        | _ -> None)
      compiled.C.c_log
  in
  let rollbacks =
    List.filter_map
      (function
        | Mira_telemetry.Decision.Rollback { reason; _ } -> Some reason
        | _ -> None)
      compiled.C.c_log
  in
  Alcotest.(check bool) "a regression was rolled back" true
    (List.exists (fun r -> r = "regression") rollbacks);
  (* Restored, not kept: the final work time is the best measure, and
     every other measured configuration was no better. *)
  List.iter
    (fun m ->
      Alcotest.(check bool) "final config is the best measured" true
        (compiled.C.c_work_ns <= m +. 1e-6))
    measures;
  (* The rolled-back configuration still computes the right answer. *)
  let native = Mira_baselines.Native.create ~capacity:(4 * far) () in
  let expected = Machine.run (Machine.create native prog) in
  let v, _ = C.run compiled in
  Alcotest.(check bool) "result preserved under faults" true
    (Value.equal expected v)

let test_work_function () =
  let prog = G.build { G.config_default with G.num_edges = 100; num_nodes = 16 } in
  Alcotest.(check string) "work" "work" (C.work_function prog)

let suite =
  [
    Alcotest.test_case "planner stream" `Quick test_planner_sequential_stream;
    Alcotest.test_case "planner indirect" `Quick test_planner_indirect;
    Alcotest.test_case "planner random" `Quick test_planner_random_full;
    Alcotest.test_case "planner selective" `Quick test_planner_selective_transmission;
    Alcotest.test_case "planner grouping" `Quick test_planner_grouping;
    Alcotest.test_case "planner line rule" `Quick test_planner_line_rule;
    Alcotest.test_case "controller improves" `Slow test_controller_improves_graph;
    Alcotest.test_case "controller rollback" `Slow test_controller_rollback_guarantee;
    Alcotest.test_case "controller preserves result" `Slow test_controller_result_preserved;
    Alcotest.test_case "controller ablation" `Slow test_controller_ablation_flags;
    Alcotest.test_case "rollback under faults" `Slow test_rollback_under_faults;
    Alcotest.test_case "work function" `Quick test_work_function;
    Alcotest.test_case "report" `Slow test_report;
  ]
