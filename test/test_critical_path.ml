(* The critical-path analyzer: span reconstruction and schema
   validation over the trace sink's async begin/end events, exact
   fixed-point decomposition of tail exemplars, and the folded export.

   The exactness claim under test is the one the analyzer's design
   leans on: self-times telescope over the containment tree, so an
   exemplar's queue/wire/retry/fill/recovery/local segments sum to its
   end-to-end duration with int64 equality, not within-epsilon. *)
module Trace = Mira_telemetry.Trace
module Metrics = Mira_telemetry.Metrics
module CP = Mira_telemetry.Critical_path
module Runtime = Mira_runtime.Runtime
module R = Test_random_programs

(* A fixed recipe with enough far traffic to populate every access
   histogram: sequential and strided reads (prefetchable), an indirect
   RMW (demand faults), and writes (writeback traffic). *)
let fixed_recipe =
  {
    R.arrays = [ { R.a_elems = 512 }; { R.a_elems = 256 }; { R.a_elems = 320 } ];
    loops =
      [
        (96, [ R.Seq_read 0; R.Indirect_rmw (0, 1) ]);
        (64, [ R.Strided_read (2, 3); R.Seq_write 0 ]);
        (48, [ R.Rev_read 1; R.Seq_read 2 ]);
      ];
  }

(* Run [recipe] on a fresh Mira runtime under tracing; returns the
   runtime (whose metrics registry holds the run's exemplars), the
   buffered events, and the drop count. *)
let traced_run recipe =
  let prog = R.build_program recipe in
  Trace.enable ();
  let rt =
    Runtime.create
      (Runtime.Config.make ~local_budget:(16 * 4096)
         ~far_capacity:R.far_capacity)
  in
  let _v = R.run_on (Runtime.memsys rt) prog in
  let evs = Trace.events () in
  let dropped = Trace.dropped () in
  Trace.disable ();
  Trace.clear ();
  (rt, evs, dropped)

let test_seeded_exemplars () =
  let rt, evs, dropped = traced_run fixed_recipe in
  Alcotest.(check int) "nothing dropped" 0 dropped;
  Alcotest.(check (list string)) "schema well-formed" [] (CP.validate evs);
  let reg = Mira.Report.runtime_metrics rt in
  let ps = CP.paths reg evs in
  Alcotest.(check bool) "at least one exemplar path" true (ps <> []);
  (* every histogram that recorded traced exemplars gets >= 1
     decomposition — the p99 a report shows always links to a trace *)
  List.iter
    (fun name ->
      match Metrics.find reg name with
      | Some (Metrics.Hist h)
        when List.exists
               (fun e -> e.Metrics.ex_trace <> 0)
               (Metrics.hist_exemplars h) ->
        Alcotest.(check bool)
          (name ^ " has a decomposed exemplar")
          true
          (List.exists (fun p -> p.CP.p_hist = name) ps)
      | _ -> ())
    (Metrics.names reg);
  let hists = List.map (fun p -> p.CP.p_hist) ps in
  Alcotest.(check bool) "covers swap faults" true
    (List.mem "swap.fault_latency" hists);
  Alcotest.(check bool) "covers net fetches" true
    (List.mem "net.fetch_latency" hists);
  (* exact fixed-point telescoping, per exemplar *)
  List.iter
    (fun p ->
      let d = p.CP.p_decomp in
      let sum =
        List.fold_left (fun acc (_, fp) -> Int64.add acc fp) 0L d.CP.d_segments
      in
      Alcotest.(check int64)
        (Printf.sprintf "%s trace %d segments telescope" p.CP.p_hist
           d.CP.d_trace)
        d.CP.d_total_fp sum;
      Alcotest.(check bool) "walked at least the root" true (d.CP.d_spans >= 1);
      Alcotest.(check bool) "every segment present once" true
        (List.length d.CP.d_segments = List.length CP.all_segments))
    ps;
  (* the folded export carries the same exact sums: every line is
     [hist;root;segment <fp>] with a positive integer weight *)
  let folded = CP.folded reg evs in
  let lines =
    String.split_on_char '\n' folded |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check bool) "folded non-empty" true (lines <> []);
  List.iter
    (fun l ->
      match String.rindex_opt l ' ' with
      | None -> Alcotest.failf "folded line without weight: %s" l
      | Some i ->
        let stack = String.sub l 0 i in
        let weight =
          String.sub l (i + 1) (String.length l - i - 1) |> Int64.of_string
        in
        Alcotest.(check bool)
          (Printf.sprintf "folded weight positive: %s" l)
          true (weight > 0L);
        Alcotest.(check int)
          (Printf.sprintf "folded stack has 3 frames: %s" l)
          2
          (String.fold_left
             (fun acc c -> if c = ';' then acc + 1 else acc)
             0 stack))
    lines

(* The analyzer roots a decomposition at the access's originating span
   (the first-minted parentless span of the trace), not at any later
   flow-linked child. *)
let test_root_selection () =
  let rt, evs, _ = traced_run fixed_recipe in
  let reg = Mira.Report.runtime_metrics rt in
  List.iter
    (fun p ->
      let root = p.CP.p_decomp.CP.d_root in
      Alcotest.(check int) "root is parentless" 0 root.CP.s_parent;
      Alcotest.(check string) "root lives on the runtime lane" "runtime"
        root.CP.s_lane)
    (CP.paths reg evs)

(* --- validator ----------------------------------------------------------- *)

let ev ?(args = []) ?(parent = 0) ?(cat = "net") ~phase ~trace ~span ~ts name =
  {
    Trace.ev_name = name;
    ev_cat = cat;
    ev_phase = phase;
    ev_ts_ns = ts;
    ev_dur_ns = 0.0;
    ev_lane = "net";
    ev_trace = trace;
    ev_span = span;
    ev_parent = parent;
    ev_args = args;
  }

(* A minimal well-formed trace: root span 1 containing child span 2,
   plus a flow arrow into the child. *)
let well_formed =
  [
    ev ~cat:"runtime" ~phase:Trace.Begin ~trace:7 ~span:1 ~ts:0.0 "load";
    ev ~phase:Trace.Flow_start ~trace:7 ~span:2 ~ts:0.5 "net.link";
    ev ~phase:Trace.Begin ~trace:7 ~span:2 ~parent:1 ~ts:1.0 "net.read";
    ev ~phase:Trace.Flow_end ~trace:7 ~span:2 ~ts:1.0 "net.link";
    ev ~phase:Trace.End ~trace:7 ~span:2 ~ts:2.0 "net.read";
    ev ~cat:"runtime" ~phase:Trace.End ~trace:7 ~span:1 ~ts:3.0 "load";
  ]

let check_rejects what evs =
  Alcotest.(check bool) what true (CP.validate evs <> [])

let test_validator_tampering () =
  Alcotest.(check (list string)) "well-formed passes" [] (CP.validate well_formed);
  check_rejects "unended span rejected"
    (List.filter
       (fun e -> not (e.Trace.ev_phase = Trace.End && e.Trace.ev_span = 2))
       well_formed);
  check_rejects "end without begin rejected"
    (List.filter
       (fun e -> not (e.Trace.ev_phase = Trace.Begin && e.Trace.ev_span = 2))
       well_formed);
  check_rejects "child escaping its parent rejected"
    (List.map
       (fun e ->
         if e.Trace.ev_phase = Trace.End && e.Trace.ev_span = 2 then
           { e with Trace.ev_ts_ns = 9.0 }
         else e)
       well_formed);
  check_rejects "end preceding begin rejected"
    (List.map
       (fun e ->
         if e.Trace.ev_phase = Trace.End && e.Trace.ev_span = 2 then
           { e with Trace.ev_ts_ns = 0.25 }
         else e)
       well_formed);
  check_rejects "unknown parent rejected"
    (List.map
       (fun e ->
         if e.Trace.ev_phase = Trace.Begin && e.Trace.ev_span = 2 then
           { e with Trace.ev_parent = 99 }
         else e)
       well_formed);
  check_rejects "dangling flow end rejected"
    (List.filter (fun e -> e.Trace.ev_phase <> Trace.Flow_start) well_formed);
  check_rejects "flow into a never-emitted span rejected"
    (List.map
       (fun e ->
         match e.Trace.ev_phase with
         | Trace.Flow_start | Trace.Flow_end -> { e with Trace.ev_span = 42 }
         | _ -> e)
       well_formed)

(* Decomposition of the synthetic trace: the net child's queue/wire
   args split its self-time, the root keeps the rest as local time,
   and everything telescopes. *)
let test_decompose_synthetic () =
  let q = Mira_telemetry.Json.Float 0.25 and w = Mira_telemetry.Json.Float 0.5 in
  let evs =
    List.map
      (fun e ->
        if e.Trace.ev_phase = Trace.Begin && e.Trace.ev_span = 2 then
          { e with Trace.ev_args = [ ("queue_ns", q); ("wire_ns", w) ] }
        else e)
      well_formed
  in
  match CP.analyze evs ~trace:7 with
  | None -> Alcotest.fail "no decomposition for trace 7"
  | Some d ->
    let fp ns = Int64.of_float (ns *. 65536.0) in
    Alcotest.(check int64) "total is the root duration" (fp 3.0) d.CP.d_total_fp;
    Alcotest.(check int) "two spans walked" 2 d.CP.d_spans;
    let seg s = List.assoc s d.CP.d_segments in
    Alcotest.(check int64) "queue from args" (fp 0.25) (seg CP.Queue);
    Alcotest.(check int64) "wire from args" (fp 0.5) (seg CP.Wire);
    (* child self = 1.0; residual after queue+wire lands in retry *)
    Alcotest.(check int64) "retry takes the residual" (fp 0.25) (seg CP.Retry);
    Alcotest.(check int64) "root keeps local time" (fp 2.0) (seg CP.Local);
    let sum =
      List.fold_left (fun acc (_, v) -> Int64.add acc v) 0L d.CP.d_segments
    in
    Alcotest.(check int64) "telescopes" d.CP.d_total_fp sum

(* --- doc drift guard ----------------------------------------------------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* docs/OBSERVABILITY.md must keep up with the causal-tracing surface:
   every span name a traced run emits, every segment, and the report's
   field names have to appear in the doc. *)
let test_doc_drift_guard () =
  let doc =
    In_channel.with_open_bin "../docs/OBSERVABILITY.md" In_channel.input_all
  in
  let _, evs, _ = traced_run fixed_recipe in
  let span_names =
    List.filter_map
      (fun e ->
        match e.Trace.ev_phase with
        | Trace.Begin | Trace.Instant -> Some e.Trace.ev_name
        | _ -> None)
      evs
    |> List.sort_uniq compare
  in
  Alcotest.(check bool) "traced run emits spans to document" true
    (span_names <> []);
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "span %S documented" n)
        true (contains doc n))
    span_names;
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "segment %S documented" (CP.segment_name s))
        true
        (contains doc (CP.segment_name s)))
    CP.all_segments;
  List.iter
    (fun key ->
      Alcotest.(check bool)
        (Printf.sprintf "%S documented" key)
        true (contains doc key))
    [
      "--critical-path"; "span_ctx"; "dropped_events"; "schema_errors";
      "exemplars"; "total_fp"; "segments_fp"; "value_ns"; "set_ctrl_limit";
      "ph:\"b\""; "ph:\"s\"";
    ]

(* --- property: random programs ------------------------------------------- *)

let qcheck_span_trees =
  QCheck.Test.make ~name:"span trees well-formed across random programs"
    ~count:15
    (QCheck.make ~print:R.pp_recipe R.gen_recipe)
    (fun recipe ->
      let _rt, evs, dropped = traced_run recipe in
      (* a capped sink truncates span groups; validation is only
         meaningful when nothing was dropped (never the case for these
         small programs, but don't let the property hinge on it) *)
      dropped > 0 || CP.validate evs = [])

let suite =
  [
    Alcotest.test_case "seeded exemplars decompose exactly" `Quick
      test_seeded_exemplars;
    Alcotest.test_case "roots at the originating span" `Quick
      test_root_selection;
    Alcotest.test_case "validator catches tampering" `Quick
      test_validator_tampering;
    Alcotest.test_case "synthetic decomposition" `Quick test_decompose_synthetic;
    Alcotest.test_case "doc drift guard" `Quick test_doc_drift_guard;
    QCheck_alcotest.to_alcotest qcheck_span_trees;
  ]
