(* Tests for the asynchronous network data plane: submission/completion
   queues, the bounded in-flight window, doorbell batching, seeded fault
   injection, and the [fence] barrier. *)
module Params = Mira_sim.Params
module Clock = Mira_sim.Clock
module Net = Mira_sim.Net
module Far_store = Mira_sim.Far_store
module Swap = Mira_cache.Swap_section

let p = Params.default

(* The pre-dataplane synchronous model, reimplemented inline: each
   message starts when both the caller and the link are free, occupies
   the wire for bytes/bandwidth, then pays the side's latency. *)
let old_model ~side requests =
  let link = ref 0.0 in
  List.map
    (fun (now, bytes) ->
      let wire = float_of_int bytes /. p.Params.bandwidth_bytes_per_ns in
      let s = Float.max now !link in
      link := s +. wire;
      let latency, extra =
        match side with
        | Net.One_sided -> (p.Params.one_sided_rtt_ns, 0.0)
        | Net.Two_sided ->
          ( p.Params.two_sided_rtt_ns,
            p.Params.remote_copy_ns_per_byte *. float_of_int bytes )
      in
      s +. wire +. latency +. extra)
    requests

(* Blocking demand read on the data plane (what the retired fetch
   veneer did): urgent submit + await. *)
let sync_read net ~side ~now bytes =
  let sq =
    Net.submit net ~now ~urgent:true
      (Net.Request.read ~side ~purpose:Net.Demand bytes)
  in
  let c = Net.await net ~now ~id:sq.Net.id in
  (sq, c)

let test_identity_no_faults () =
  (* With dp_default the new data plane must reproduce the old blocking
     model bit-for-bit, for both sides and mixed payload sizes. *)
  List.iter
    (fun side ->
      let net = Net.create p in
      let requests = [ (0.0, 64); (0.0, 4096); (100.0, 256); (9_000.0, 64) ] in
      let expected = old_model ~side requests in
      List.iter2
        (fun (now, bytes) want ->
          let sq, c = sync_read net ~side ~now bytes in
          Alcotest.(check (float 0.0)) "done_at identical" want c.Net.done_at;
          Alcotest.(check (float 0.0))
            "sync post cost" p.Params.msg_cpu_ns sq.Net.issue_cpu_ns)
        requests expected)
    [ Net.One_sided; Net.Two_sided ]

let test_window1_matches_sync () =
  (* A blocking caller (awaits every transfer before the next submit)
     sees identical times under window=1 and the unbounded legacy
     window. *)
  let drive dp =
    let net = Net.create ~dp p in
    let now = ref 0.0 in
    let times = ref [] in
    List.iter
      (fun bytes ->
        let sq =
          Net.submit net ~now:!now ~urgent:true
            (Net.Request.read ~side:Net.One_sided ~purpose:Net.Demand bytes)
        in
        let c = Net.await net ~now:!now ~id:sq.Net.id in
        now := c.Net.done_at;
        times := c.Net.done_at :: !times)
      [ 64; 1024; 64; 4096; 256 ];
    List.rev !times
  in
  let sync = drive Net.dp_default in
  let windowed = drive { Net.dp_default with Net.window = 1 } in
  List.iter2
    (fun a b -> Alcotest.(check (float 0.0)) "window=1 == sync" a b)
    sync windowed

let test_window_saturation_ordering () =
  (* Five async reads posted back-to-back at t=0.  Under a window of 2
     the third message cannot start before the first completes, so the
     batch finishes strictly later than unbounded; completions drain in
     submission order with monotonic done_at. *)
  let last_done dp =
    let net = Net.create ~dp p in
    let ids =
      List.init 5 (fun _ ->
          (Net.submit net ~now:0.0
             (Net.Request.read ~side:Net.One_sided ~purpose:Net.Prefetch 4096))
            .Net.id)
    in
    let comps = Net.poll net ~now:1e12 in
    Alcotest.(check int) "all completions drained" 5 (List.length comps);
    Alcotest.(check (list int)) "completion order = submission order" ids
      (List.map (fun (c : Net.completion) -> c.Net.id) comps);
    let rec monotonic = function
      | (a : Net.completion) :: (b : Net.completion) :: tl ->
        Alcotest.(check bool) "done_at monotonic" true (b.Net.done_at >= a.Net.done_at);
        monotonic (b :: tl)
      | _ -> ()
    in
    monotonic comps;
    (List.nth comps 4).Net.done_at
  in
  let unbounded = last_done Net.dp_default in
  let windowed = last_done { Net.dp_default with Net.window = 2 } in
  Alcotest.(check bool) "window serializes the tail" true (windowed > unbounded)

let test_in_flight_counter () =
  let net = Net.create p in
  Alcotest.(check int) "idle" 0 (Net.in_flight net ~now:0.0);
  let sq =
    Net.submit net ~now:0.0
      (Net.Request.read ~side:Net.One_sided ~purpose:Net.Prefetch 64)
  in
  Alcotest.(check int) "one posted" 1 (Net.in_flight net ~now:0.0);
  let c = Net.await net ~now:0.0 ~id:sq.Net.id in
  Alcotest.(check int) "complete after done_at" 0
    (Net.in_flight net ~now:(c.Net.done_at +. 1.0))

let test_coalescing () =
  let dp = { Net.dp_default with Net.coalesce = true } in
  let net = Net.create ~dp p in
  let submit bytes =
    Net.submit net ~now:0.0
      (Net.Request.read ~side:Net.One_sided ~purpose:Net.Prefetch bytes)
  in
  let a = submit 100 and b = submit 200 and c = submit 300 in
  (* First member pays the async doorbell cost, merged members are free. *)
  Alcotest.(check (float 0.0)) "head pays" p.Params.async_post_ns a.Net.issue_cpu_ns;
  Alcotest.(check (float 0.0)) "member free" 0.0 b.Net.issue_cpu_ns;
  Alcotest.(check (float 0.0)) "member free" 0.0 c.Net.issue_cpu_ns;
  Net.ring net ~now:0.0;
  let s = Net.stats net in
  Alcotest.(check int) "one wire message" 1 s.Net.msg_count;
  Alcotest.(check int) "one doorbell" 1 s.Net.doorbells;
  Alcotest.(check int) "two riders" 2 s.Net.coalesced;
  Alcotest.(check int) "bytes summed" 600 s.Net.bytes_in;
  let comps = Net.poll net ~now:1e12 in
  Alcotest.(check int) "three completions" 3 (List.length comps);
  let d0 = (List.hd comps).Net.done_at in
  List.iter
    (fun (cc : Net.completion) ->
      Alcotest.(check (float 0.0)) "batch completes together" d0 cc.Net.done_at;
      Alcotest.(check bool) "flagged coalesced" true cc.Net.coalesced)
    comps

let test_coalescing_key_change_rings () =
  (* A different request kind must flush the open batch: a write after
     two reads yields two doorbells, not one. *)
  let dp = { Net.dp_default with Net.coalesce = true } in
  let net = Net.create ~dp p in
  ignore
    (Net.submit net ~now:0.0
       (Net.Request.read ~side:Net.One_sided ~purpose:Net.Prefetch 64));
  ignore
    (Net.submit net ~now:0.0
       (Net.Request.read ~side:Net.One_sided ~purpose:Net.Prefetch 64));
  ignore
    (Net.submit net ~now:0.0
       (Net.Request.write ~side:Net.One_sided ~purpose:Net.Writeback 64));
  Net.ring net ~now:0.0;
  let s = Net.stats net in
  Alcotest.(check int) "two doorbells" 2 s.Net.doorbells;
  Alcotest.(check int) "one rider" 1 s.Net.coalesced

let test_coalesce_limit () =
  let dp = { Net.dp_default with Net.coalesce = true; Net.coalesce_limit = 2 } in
  let net = Net.create ~dp p in
  for _ = 1 to 5 do
    ignore
      (Net.submit net ~now:0.0
         (Net.Request.read ~side:Net.One_sided ~purpose:Net.Prefetch 64))
  done;
  Net.ring net ~now:0.0;
  (* 5 submissions at limit 2 -> batches of 2/2/1. *)
  Alcotest.(check int) "three doorbells" 3 (Net.stats net).Net.doorbells

let faulty ?(drop = 0.3) ?(seed = 11) ?(max_retries = 3) () =
  { Net.dp_default with
    Net.fault =
      Some { Net.Fault.default with Net.Fault.seed; drop_prob = drop; max_retries } }

let test_faults_deterministic () =
  (* The same seed must reproduce the exact same completion times and
     attempt counts, run after run. *)
  let run () =
    let net = Net.create ~dp:(faulty ()) p in
    List.init 20 (fun i ->
        let sq =
          Net.submit net ~now:(float_of_int i *. 10.0) ~urgent:true
            (Net.Request.read ~side:Net.One_sided ~purpose:Net.Demand 256)
        in
        let c = Net.await net ~now:(float_of_int i *. 10.0) ~id:sq.Net.id in
        (c.Net.done_at, c.Net.attempts))
  in
  let a = run () and b = run () in
  List.iter2
    (fun (da, aa) (db, ab) ->
      Alcotest.(check (float 0.0)) "same done_at" da db;
      Alcotest.(check int) "same attempts" aa ab)
    a b;
  let retried = List.exists (fun (_, att) -> att > 1) a in
  Alcotest.(check bool) "drop rate actually exercised retries" true retried

let test_bounded_retries_then_failure () =
  (* 100% loss: the request retries [max_retries] times, then fails
     cleanly with a finite detection time instead of hanging. *)
  let net = Net.create ~dp:(faulty ~drop:1.0 ~max_retries:2 ()) p in
  let sq =
    Net.submit net ~now:0.0 ~urgent:true
      (Net.Request.read ~side:Net.One_sided ~purpose:Net.Demand 64)
  in
  let c = Net.await net ~now:0.0 ~id:sq.Net.id in
  Alcotest.(check bool) "timed out" true (c.Net.status = Net.Timed_out);
  Alcotest.(check int) "initial + 2 retries" 3 c.Net.attempts;
  let s = Net.stats net in
  Alcotest.(check int) "retries counted" 2 s.Net.retries;
  Alcotest.(check int) "timeout counted" 1 s.Net.timeouts;
  Alcotest.(check bool) "finite detection time" true
    (Float.is_finite c.Net.done_at && c.Net.done_at > 0.0);
  (* timeout + exponential backoff: detection strictly after 3 timers *)
  let f = Net.Fault.default in
  Alcotest.(check bool) "after three timeout windows" true
    (c.Net.done_at >= 3.0 *. f.Net.Fault.timeout_ns)

let test_fence_directions () =
  let net = Net.create p in
  ignore
    (Net.submit net ~now:0.0 ~detached:true
       (Net.Request.write ~side:Net.One_sided ~purpose:Net.Writeback 4096));
  let rd =
    Net.submit net ~now:0.0
      (Net.Request.read ~side:Net.One_sided ~purpose:Net.Prefetch 64)
  in
  let wfence = Net.fence ~dir:Net.Request.Write net ~now:0.0 in
  let full = Net.fence net ~now:0.0 in
  Alcotest.(check bool) "write fence waits for writeback" true (wfence > 0.0);
  Alcotest.(check bool) "full fence covers both" true (full >= wfence);
  let c = Net.await net ~now:0.0 ~id:rd.Net.id in
  Alcotest.(check bool) "fence covers the read too" true (full >= c.Net.done_at);
  (* after everything lands the fence degenerates to now *)
  let later = full +. 10.0 in
  Alcotest.(check (float 0.0)) "quiescent fence = now" later
    (Net.fence net ~now:later)

let test_await_unknown_raises () =
  let net = Net.create p in
  Alcotest.check_raises "unknown id"
    (Invalid_argument "Net.await: unknown or detached request id") (fun () ->
      ignore (Net.await net ~now:0.0 ~id:42));
  ignore
    (Net.submit net ~now:0.0 ~detached:true
       (Net.Request.write ~side:Net.One_sided ~purpose:Net.Writeback 64));
  Alcotest.check_raises "detached id invisible"
    (Invalid_argument "Net.await: unknown or detached request id") (fun () ->
      ignore (Net.await net ~now:0.0 ~id:0))

let test_swap_readahead_coalesces () =
  (* End-to-end through the cache layer: a strided scan over the swap
     section with cluster readahead rides coalesced doorbells — fewer
     doorbell rings for the same data, and no worse caller-observed
     fetch latency (queueing drops when 7 posts become 1). *)
  let run dp =
    let net = Net.create ~dp p in
    let far = Mira_sim.Cluster.of_store (Far_store.create ~capacity:(1 lsl 20)) in
    let swap =
      Swap.create net far
        { Swap.page = 4096; capacity = 8 * 4096; side = Net.One_sided }
    in
    Swap.set_readahead swap (fun pno -> List.init 7 (fun i -> pno + i + 1));
    let clock = Clock.create () in
    for i = 0 to 255 do
      ignore (Swap.load swap ~clock ~addr:(i * 512) ~len:8)
    done;
    let s = Net.stats net in
    (Mira_telemetry.Metrics.hist_percentile s.Net.lat_fetch 50.0, s)
  in
  let p50_plain, s_plain = run Net.dp_default in
  let p50_batched, s =
    run { Net.dp_default with Net.window = 8; Net.coalesce = true }
  in
  Alcotest.(check bool) "readahead coalesced" true (s.Net.coalesced > 0);
  Alcotest.(check bool) "fewer doorbells" true
    (s.Net.doorbells < s_plain.Net.doorbells);
  Alcotest.(check bool) "fetch p50 no worse" true (p50_batched <= p50_plain)

(* --- fault-model validation ---------------------------------------------- *)

let test_fault_validate () =
  Net.Fault.validate Net.Fault.default;
  let rejects name f =
    match Net.Fault.validate f with
    | () -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument _ -> ()
  in
  let d = Net.Fault.default in
  rejects "negative drop_prob" { d with Net.Fault.drop_prob = -0.1 };
  rejects "drop_prob > 1" { d with Net.Fault.drop_prob = 1.5 };
  rejects "NaN drop_prob" { d with Net.Fault.drop_prob = Float.nan };
  rejects "negative delay_prob" { d with Net.Fault.delay_prob = -1.0 };
  rejects "NaN delay_prob" { d with Net.Fault.delay_prob = Float.nan };
  rejects "negative delay" { d with Net.Fault.delay_ns = -5.0 };
  rejects "zero timeout" { d with Net.Fault.timeout_ns = 0.0 };
  rejects "negative timeout" { d with Net.Fault.timeout_ns = -1.0 };
  rejects "zero backoff" { d with Net.Fault.backoff_ns = 0.0 };
  rejects "negative retries" { d with Net.Fault.max_retries = -1 };
  (* Wired into configuration entry points: both reject too. *)
  let bad =
    { Net.dp_default with Net.fault = Some { d with Net.Fault.drop_prob = 2.0 } }
  in
  (match Net.create ~dp:bad p with
  | _ -> Alcotest.fail "create: expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  let net = Net.create p in
  match Net.set_dataplane net bad with
  | () -> Alcotest.fail "set_dataplane: expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* --- node failures -------------------------------------------------------- *)

let test_fail_inflight_node_down () =
  (* A crash fails every in-flight transfer immediately, with status
     [Node_down] at the crash time — never [Timed_out], which is
     reserved for lossy-link retry exhaustion. *)
  let net = Net.create p in
  let sq1 =
    Net.submit net ~now:0.0 (Net.Request.read ~side:Net.One_sided
                               ~purpose:Net.Demand 4096)
  in
  let sq2 =
    Net.submit net ~now:0.0 (Net.Request.read ~side:Net.One_sided
                               ~purpose:Net.Demand 4096)
  in
  let crash_at = 50.0 in
  let failed = Net.fail_inflight net ~now:crash_at in
  Alcotest.(check int) "both failed" 2 failed;
  List.iter
    (fun id ->
      let c = Net.await net ~now:crash_at ~id in
      (match c.Net.status with
      | Net.Node_down -> ()
      | Net.Done -> Alcotest.fail "still Done after crash"
      | Net.Timed_out -> Alcotest.fail "crash conflated with timeout");
      Alcotest.(check (float 0.0)) "failed at crash detection" crash_at
        c.Net.done_at)
    [ sq1.Net.id; sq2.Net.id ];
  let s = Net.stats net in
  Alcotest.(check int) "node_down counted" 2 s.Net.node_down;
  Alcotest.(check int) "never counted as timeouts" 0 s.Net.timeouts;
  (* The link is idle again: a post after the crash completes normally. *)
  let _, c = sync_read net ~side:Net.One_sided ~now:100.0 64 in
  Alcotest.(check bool) "link drained" true (c.Net.done_at < 100.0 +. 1e5)

let test_fail_inflight_spares_landed () =
  (* A transfer that already completed before the crash stays [Done]. *)
  let net = Net.create p in
  let sq =
    Net.submit net ~now:0.0 (Net.Request.read ~side:Net.One_sided
                               ~purpose:Net.Demand 64)
  in
  ignore (Net.fail_inflight net ~now:1e9);
  let c = Net.await net ~now:1e9 ~id:sq.Net.id in
  (match c.Net.status with
  | Net.Done -> ()
  | _ -> Alcotest.fail "landed transfer must stay Done");
  Alcotest.(check int) "nothing to fail" 0 (Net.stats net).Net.node_down

let test_set_down_window () =
  (* Posts during a declared outage complete [Node_down] after the
     loss-detection timer, without touching the wire. *)
  let net = Net.create p in
  Net.set_down net ~until:10_000.0;
  let before = (Net.stats net).Net.msg_count in
  let sq =
    Net.submit net ~now:100.0 (Net.Request.read ~side:Net.One_sided
                                 ~purpose:Net.Demand 4096)
  in
  let c = Net.await net ~now:100.0 ~id:sq.Net.id in
  (match c.Net.status with
  | Net.Node_down -> ()
  | _ -> Alcotest.fail "expected Node_down during outage");
  Alcotest.(check bool) "failed after detection timer" true
    (c.Net.done_at > 100.0);
  Alcotest.(check int) "no wire traffic" before (Net.stats net).Net.msg_count;
  Alcotest.(check int) "no timeout counted" 0 (Net.stats net).Net.timeouts;
  (* After the node returns, posts flow normally again. *)
  let _, c2 = sync_read net ~side:Net.One_sided ~now:20_000.0 64 in
  Alcotest.(check bool) "post-outage transfer completes" true
    (c2.Net.done_at > 20_000.0)

let suite =
  [
    Alcotest.test_case "identity no faults" `Quick test_identity_no_faults;
    Alcotest.test_case "window=1 == sync" `Quick test_window1_matches_sync;
    Alcotest.test_case "saturated window ordering" `Quick
      test_window_saturation_ordering;
    Alcotest.test_case "in-flight counter" `Quick test_in_flight_counter;
    Alcotest.test_case "coalescing" `Quick test_coalescing;
    Alcotest.test_case "coalescing key change" `Quick
      test_coalescing_key_change_rings;
    Alcotest.test_case "coalesce limit" `Quick test_coalesce_limit;
    Alcotest.test_case "faults deterministic" `Quick test_faults_deterministic;
    Alcotest.test_case "bounded retries" `Quick test_bounded_retries_then_failure;
    Alcotest.test_case "fence directions" `Quick test_fence_directions;
    Alcotest.test_case "await unknown raises" `Quick test_await_unknown_raises;
    Alcotest.test_case "swap readahead coalesces" `Quick
      test_swap_readahead_coalesces;
    Alcotest.test_case "fault validate" `Quick test_fault_validate;
    Alcotest.test_case "fail_inflight -> Node_down" `Quick
      test_fail_inflight_node_down;
    Alcotest.test_case "fail_inflight spares landed" `Quick
      test_fail_inflight_spares_landed;
    Alcotest.test_case "set_down window" `Quick test_set_down_window;
  ]
