(* Interpreter semantics: values, arithmetic, control flow, memory,
   parallel loops, offloaded calls — all against the native baseline
   (timing-free correctness). *)
module T = Mira_mir.Types
module Ir = Mira_mir.Ir
module B = Mira_mir.Builder
module Machine = Mira_interp.Machine
module Value = Mira_interp.Value
module Memsys = Mira_runtime.Memsys

let native_ms () = Mira_baselines.Native.create ~capacity:(1 lsl 22) ()

let run_main prog = Machine.run (Machine.create (native_ms ()) prog)

let expect_int name prog expected =
  match run_main prog with
  | Value.Vint v -> Alcotest.(check int64) name expected v
  | other -> Alcotest.failf "%s: expected int, got %s" name
               (Format.asprintf "%a" Value.pp other)

let test_value_roundtrip () =
  let cases =
    [ (T.I64, Value.Vint 42L); (T.F64, Value.Vfloat 3.25);
      (T.Bool, Value.Vbool true) ]
  in
  List.iter
    (fun (ty, v) ->
      let bits = Value.encode ty v in
      Alcotest.(check bool) "roundtrip" true (Value.equal v (Value.decode ty bits)))
    cases

let qcheck_ptr_bits =
  QCheck.Test.make ~name:"pointer bits roundtrip" ~count:500
    QCheck.(triple bool (int_bound ((1 lsl 30) - 1)) (int_range (-1) 1000))
    (fun (far, addr, site) ->
      let p =
        { Memsys.space = (if far then Memsys.Far else Memsys.Local); addr; site }
      in
      Value.bits_ptr (Value.ptr_bits p) = p)

let test_null_pointer_is_zero () =
  Alcotest.(check int64) "null encodes to 0" 0L
    (Value.encode (T.Ptr T.I64) Value.null);
  Alcotest.(check bool) "0 decodes to null" true
    (Value.is_null (Value.decode (T.Ptr T.I64) 0L))

let test_arith () =
  let b = B.program "arith" in
  B.func b "main" [] T.I64 (fun fb _ ->
      let x = B.bin fb Ir.Add (B.iconst 40) (B.iconst 2) in
      let y = B.bin fb Ir.Mul x (B.iconst 10) in
      let z = B.bin fb Ir.Rem y (B.iconst 13) in  (* 420 mod 13 = 4 *)
      let w = B.bin fb Ir.Shl z (B.iconst 3) in  (* 32 *)
      let f = B.i2f fb w in
      let g = B.fbin fb Ir.Fdiv f (Ir.Ofloat 2.0) in
      let h = B.f2i fb g in
      B.ret fb h);
  expect_int "arith" (B.finish b ~entry:"main") 16L

let test_control_flow () =
  let b = B.program "cf" in
  B.func b "main" [] T.I64 (fun fb _ ->
      let acc, _ = B.alloc fb ~name:"acc" ~space:Ir.Stack T.I64 (B.iconst 1) in
      B.store fb T.I64 ~ptr:acc ~value:(B.iconst 0);
      B.for_ fb ~lo:(B.iconst 0) ~hi:(B.iconst 10) (fun i ->
          let even = B.bin fb Ir.Rem i (B.iconst 2) in
          let is_even = B.cmp fb Ir.Eq even (B.iconst 0) in
          B.if_ fb is_even
            (fun () ->
              let a = B.load fb T.I64 acc in
              B.store fb T.I64 ~ptr:acc ~value:(B.bin fb Ir.Add a i))
            ());
      let v = B.load fb T.I64 acc in
      B.ret fb v);
  (* 0+2+4+6+8 = 20 *)
  expect_int "if/for" (B.finish b ~entry:"main") 20L

let test_while_loop () =
  let b = B.program "wl" in
  B.func b "main" [] T.I64 (fun fb _ ->
      let n, _ = B.alloc fb ~name:"n" ~space:Ir.Stack T.I64 (B.iconst 1) in
      let acc, _ = B.alloc fb ~name:"acc2" ~space:Ir.Stack T.I64 (B.iconst 1) in
      B.store fb T.I64 ~ptr:n ~value:(B.iconst 10);
      B.store fb T.I64 ~ptr:acc ~value:(B.iconst 0);
      B.while_ fb
        ~cond:(fun () ->
          let v = B.load fb T.I64 n in
          B.cmp fb Ir.Gt v (B.iconst 0))
        ~body:(fun () ->
          let v = B.load fb T.I64 n in
          let a = B.load fb T.I64 acc in
          B.store fb T.I64 ~ptr:acc ~value:(B.bin fb Ir.Add a v);
          B.store fb T.I64 ~ptr:n ~value:(B.bin fb Ir.Sub v (B.iconst 1)));
      let v = B.load fb T.I64 acc in
      B.ret fb v);
  expect_int "while" (B.finish b ~entry:"main") 55L

let test_calls_and_args () =
  let b = B.program "calls" in
  B.func b "addmul" [ ("x", T.I64); ("y", T.I64) ] T.I64 (fun fb args ->
      match args with
      | [ x; y ] ->
        let s = B.bin fb Ir.Add x y in
        let m = B.bin fb Ir.Mul s (B.iconst 2) in
        B.ret fb m
      | _ -> assert false);
  B.func b "main" [] T.I64 (fun fb _ ->
      let v = B.call fb "addmul" [ B.iconst 3; B.iconst 4 ] in
      B.ret fb v);
  expect_int "call" (B.finish b ~entry:"main") 14L

let test_pointer_fields () =
  let def = { T.s_name = "pair"; s_fields = [ ("a", T.I64); ("b", T.I64) ] } in
  let b = B.program "ptrs" in
  B.func b "main" [] T.I64 (fun fb _ ->
      let arr, _ = B.alloc fb ~name:"pairs" (T.Struct def) (B.iconst 4) in
      B.for_ fb ~lo:(B.iconst 0) ~hi:(B.iconst 4) (fun i ->
          let pa = B.field_ptr fb ~base:arr ~index:i ~def ~field:"a" in
          B.store fb T.I64 ~ptr:pa ~value:i;
          let pb = B.field_ptr fb ~base:arr ~index:i ~def ~field:"b" in
          B.store fb T.I64 ~ptr:pb ~value:(B.bin fb Ir.Mul i (B.iconst 10)));
      let p = B.field_ptr fb ~base:arr ~index:(B.iconst 3) ~def ~field:"b" in
      let v = B.load fb T.I64 p in
      B.ret fb v);
  expect_int "struct fields" (B.finish b ~entry:"main") 30L

let test_stored_pointers () =
  (* Store a pointer into memory, load it back, dereference. *)
  let rec node = { T.s_name = "tnode"; s_fields = [ ("v", T.I64); ("next", T.Ptr (T.Struct node)) ] } in
  let nptr = T.Ptr (T.Struct node) in
  let b = B.program "linked" in
  B.func b "main" [] T.I64 (fun fb _ ->
      let arr, _ = B.alloc fb ~name:"tnodes" (T.Struct node) (B.iconst 3) in
      (* chain 0 -> 1 -> 2 -> null, values 5,6,7 *)
      B.for_ fb ~lo:(B.iconst 0) ~hi:(B.iconst 3) (fun i ->
          let pv = B.field_ptr fb ~base:arr ~index:i ~def:node ~field:"v" in
          B.store fb T.I64 ~ptr:pv ~value:(B.bin fb Ir.Add i (B.iconst 5)));
      B.for_ fb ~lo:(B.iconst 0) ~hi:(B.iconst 2) (fun i ->
          let pn = B.field_ptr fb ~base:arr ~index:i ~def:node ~field:"next" in
          let succ = B.bin fb Ir.Add i (B.iconst 1) in
          let target = B.gep fb ~base:arr ~index:succ ~elem:(T.Struct node) () in
          B.store fb nptr ~ptr:pn ~value:target);
      let last = B.field_ptr fb ~base:arr ~index:(B.iconst 2) ~def:node ~field:"next" in
      B.store fb nptr ~ptr:last ~value:(Ir.Oint 0L);
      (* walk the chain summing values *)
      let cur, _ = B.alloc fb ~name:"cur" ~space:Ir.Stack nptr (B.iconst 1) in
      let acc, _ = B.alloc fb ~name:"acc3" ~space:Ir.Stack T.I64 (B.iconst 1) in
      let head = B.gep fb ~base:arr ~index:(B.iconst 0) ~elem:(T.Struct node) () in
      B.store fb nptr ~ptr:cur ~value:head;
      B.store fb T.I64 ~ptr:acc ~value:(B.iconst 0);
      B.while_ fb
        ~cond:(fun () ->
          let c = B.load fb nptr cur in
          B.cmp fb Ir.Ne c (Ir.Oint 0L))
        ~body:(fun () ->
          let c = B.load fb nptr cur in
          let pv = B.gep fb ~base:c ~index:(B.iconst 0) ~elem:(T.Struct node) () in
          let v = B.load fb T.I64 pv in
          let a = B.load fb T.I64 acc in
          B.store fb T.I64 ~ptr:acc ~value:(B.bin fb Ir.Add a v);
          let pn =
            B.gep fb ~base:c ~index:(B.iconst 0) ~elem:(T.Struct node)
              ~field_off:(T.field_offset node "next") ()
          in
          let nxt = B.load fb nptr pn in
          B.store fb nptr ~ptr:cur ~value:nxt);
      let v = B.load fb T.I64 acc in
      B.ret fb v);
  expect_int "pointer chase" (B.finish b ~entry:"main") 18L

let par_sum_program () =
  let b = B.program "psum" in
  B.func b "main" [] T.I64 (fun fb _ ->
      let n = 1000 in
      let arr, _ = B.alloc fb ~name:"parr" T.I64 (B.iconst n) in
      B.for_ fb ~lo:(B.iconst 0) ~hi:(B.iconst n) (fun i ->
          let p = B.gep fb ~base:arr ~index:i ~elem:T.I64 () in
          B.store fb T.I64 ~ptr:p ~value:i);
      let out, _ = B.alloc fb ~name:"pout" T.I64 (B.iconst n) in
      B.par_for fb ~lo:(B.iconst 0) ~hi:(B.iconst n) (fun i ->
          let p = B.gep fb ~base:arr ~index:i ~elem:T.I64 () in
          let v = B.load fb T.I64 p in
          let q = B.gep fb ~base:out ~index:i ~elem:T.I64 () in
          B.store fb T.I64 ~ptr:q ~value:(B.bin fb Ir.Mul v (B.iconst 2)));
      let acc, _ = B.alloc fb ~name:"pacc" ~space:Ir.Stack T.I64 (B.iconst 1) in
      B.store fb T.I64 ~ptr:acc ~value:(B.iconst 0);
      B.for_ fb ~lo:(B.iconst 0) ~hi:(B.iconst n) (fun i ->
          let q = B.gep fb ~base:out ~index:i ~elem:T.I64 () in
          let v = B.load fb T.I64 q in
          let a = B.load fb T.I64 acc in
          B.store fb T.I64 ~ptr:acc ~value:(B.bin fb Ir.Add a v));
      let v = B.load fb T.I64 acc in
      B.ret fb v);
  B.finish b ~entry:"main"

let test_parfor_result_independent_of_threads () =
  let prog = par_sum_program () in
  let expected = Int64.of_int (1000 * 999) in
  List.iter
    (fun threads ->
      let m = Machine.create ~nthreads:threads (native_ms ()) prog in
      match Machine.run m with
      | Value.Vint v ->
        Alcotest.(check int64) (Printf.sprintf "threads=%d" threads) expected v
      | other -> Alcotest.failf "bad value %s" (Format.asprintf "%a" Value.pp other))
    [ 1; 2; 4; 8 ]

let test_parfor_speedup () =
  let prog = par_sum_program () in
  let time threads =
    let ms =
      Mira_runtime.Runtime.(
        memsys (create (Config.make ~local_budget:(1 lsl 20) ~far_capacity:(1 lsl 22))))
    in
    let m = Machine.create ~nthreads:threads ms prog in
    snd (Machine.run_timed m)
  in
  let t1 = time 1 and t4 = time 4 in
  Alcotest.(check bool) "parallel faster" true (t4 < t1)

let test_offload_rpc () =
  (* An offloaded function must see flushed data and its writes must be
     visible to the caller afterwards. *)
  let b = B.program "off" in
  B.func b "bump" [ ("arr", T.Ptr T.I64) ] T.I64 (fun fb args ->
      match args with
      | [ arr ] ->
        let acc, _ = B.alloc fb ~name:"oacc" ~space:Ir.Stack T.I64 (B.iconst 1) in
        B.store fb T.I64 ~ptr:acc ~value:(B.iconst 0);
        B.for_ fb ~lo:(B.iconst 0) ~hi:(B.iconst 16) (fun i ->
            let p = B.gep fb ~base:arr ~index:i ~elem:T.I64 () in
            let v = B.load fb T.I64 p in
            B.store fb T.I64 ~ptr:p ~value:(B.bin fb Ir.Add v (B.iconst 1));
            let a = B.load fb T.I64 acc in
            B.store fb T.I64 ~ptr:acc ~value:(B.bin fb Ir.Add a v));
        let v = B.load fb T.I64 acc in
        B.ret fb v
      | _ -> assert false);
  B.func b "main" [] T.I64 (fun fb _ ->
      let arr, _ = B.alloc fb ~name:"oarr" T.I64 (B.iconst 16) in
      B.for_ fb ~lo:(B.iconst 0) ~hi:(B.iconst 16) (fun i ->
          let p = B.gep fb ~base:arr ~index:i ~elem:T.I64 () in
          B.store fb T.I64 ~ptr:p ~value:i);
      let sum = B.call fb "bump" [ arr ] in
      (* after the call, arr[i] = i+1; read one back *)
      let p = B.gep fb ~base:arr ~index:(B.iconst 5) ~elem:T.I64 () in
      let v = B.load fb T.I64 p in
      let r = B.bin fb Ir.Add sum v in
      B.ret fb r);
  let prog = B.finish b ~entry:"main" in
  (* mark bump offloaded by hand *)
  let bump = Ir.find_func prog "bump" in
  let prog =
    Ir.replace_func prog { bump with Ir.f_offloaded = true; f_offload_sites = [ 1 ] }
  in
  (* Note: site of oarr discovered below; sites are numbered in builder
     order (oacc=0, oarr=1). Run on the Mira runtime with offload honored. *)
  let ms =
    Mira_runtime.Runtime.(
      memsys (create (Config.make ~local_budget:(1 lsl 16) ~far_capacity:(1 lsl 20))))
  in
  let m = Machine.create ~honor_offload:true ms prog in
  (match Machine.run m with
  | Value.Vint v -> Alcotest.(check int64) "offloaded result" 126L v
  | other -> Alcotest.failf "bad %s" (Format.asprintf "%a" Value.pp other));
  (* and identical result without offloading *)
  let m2 = Machine.create ~honor_offload:false (native_ms ()) prog in
  match Machine.run m2 with
  | Value.Vint v -> Alcotest.(check int64) "same un-offloaded" 126L v
  | other -> Alcotest.failf "bad %s" (Format.asprintf "%a" Value.pp other)

let test_intrinsics () =
  let b = B.program "intr" in
  B.func b "main" [] T.I64 (fun fb _ ->
      let e = B.call fb "exp" [ Ir.Ofloat 0.0 ] in
      let s = B.call fb "sqrt" [ Ir.Ofloat 16.0 ] in
      let t = B.fbin fb Ir.Fadd e s in
      let v = B.f2i fb t in
      B.ret fb v);
  expect_int "exp(0)+sqrt(16)" (B.finish b ~entry:"main") 5L

let test_rand_deterministic () =
  let b = B.program "rnd" in
  B.func b "main" [] T.I64 (fun fb _ ->
      let acc, _ = B.alloc fb ~name:"racc" ~space:Ir.Stack T.I64 (B.iconst 1) in
      B.store fb T.I64 ~ptr:acc ~value:(B.iconst 0);
      B.for_ fb ~lo:(B.iconst 0) ~hi:(B.iconst 100) (fun _ ->
          let r = B.call fb "rand_int" [ B.iconst 1000 ] in
          let a = B.load fb T.I64 acc in
          B.store fb T.I64 ~ptr:acc ~value:(B.bin fb Ir.Add a r));
      let v = B.load fb T.I64 acc in
      B.ret fb v);
  let prog = B.finish b ~entry:"main" in
  let v1 = Machine.run (Machine.create ~seed:9 (native_ms ()) prog) in
  let v2 = Machine.run (Machine.create ~seed:9 (native_ms ()) prog) in
  let v3 = Machine.run (Machine.create ~seed:10 (native_ms ()) prog) in
  Alcotest.(check bool) "same seed same result" true (Value.equal v1 v2);
  Alcotest.(check bool) "different seed differs" false (Value.equal v1 v3)

let suite =
  [
    Alcotest.test_case "value roundtrip" `Quick test_value_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_ptr_bits;
    Alcotest.test_case "null pointer" `Quick test_null_pointer_is_zero;
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "control flow" `Quick test_control_flow;
    Alcotest.test_case "while loop" `Quick test_while_loop;
    Alcotest.test_case "calls" `Quick test_calls_and_args;
    Alcotest.test_case "struct fields" `Quick test_pointer_fields;
    Alcotest.test_case "stored pointers" `Quick test_stored_pointers;
    Alcotest.test_case "parfor thread-count invariant" `Quick
      test_parfor_result_independent_of_threads;
    Alcotest.test_case "parfor speedup" `Quick test_parfor_speedup;
    Alcotest.test_case "offload rpc" `Quick test_offload_rpc;
    Alcotest.test_case "intrinsics" `Quick test_intrinsics;
    Alcotest.test_case "rand deterministic" `Quick test_rand_deterministic;
  ]
