let () =
  Alcotest.run "mira"
    [
      ("util", Test_util.suite);
      ("min-heap", Test_min_heap.suite);
      ("sim", Test_sim.suite);
      ("sched", Test_sched.suite);
      ("dataplane", Test_dataplane.suite);
      ("mir", Test_mir.suite);
      ("cache", Test_cache.suite);
      ("cluster", Test_cluster.suite);
      ("runtime", Test_runtime.suite);
      ("interp", Test_interp.suite);
      ("analysis", Test_analysis.suite);
      ("passes", Test_passes.suite);
      ("baselines", Test_baselines.suite);
      ("workloads", Test_workloads.suite);
      ("controller", Test_controller.suite);
      ("telemetry", Test_telemetry.suite);
      ("critical-path", Test_critical_path.suite);
      ("attribution", Test_attribution.suite);
      ("timeline", Test_timeline.suite);
      ("random-programs", Test_random_programs.suite);
    ]
