(* Tests for the Mira_util.Min_heap hot-path structure and for the
   determinism contract the scheduler builds on it:

   - pop sequence = le-sorted push sequence (QCheck, random int lists);
   - stable under duplicate keys once the caller folds an insertion
     index into [le] (the Sched recipe);
   - interleaved push/pop agrees with a sorted-list reference model;
   - differential: Sched dispatch order on random N-tenant programs is
     byte-identical to the old scan-for-min over an unordered list
     (the implementation the heap replaced).

   docs/PERFORMANCE.md has a drift guard here too: it documents these
   structures and must keep naming them. *)

module Heap = Mira_util.Min_heap
module Clock = Mira_sim.Clock
module Sched = Mira_sim.Sched

(* --- basic shape --------------------------------------------------------- *)

let test_empty () =
  let h = Heap.create ~le:(fun (a : int) b -> a <= b) in
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check int) "length" 0 (Heap.length h);
  Alcotest.(check (option int)) "peek" None (Heap.peek h);
  Alcotest.(check (option int)) "pop" None (Heap.pop h);
  Heap.push h 3;
  Heap.push h 1;
  Heap.push h 2;
  Alcotest.(check (option int)) "peek min" (Some 1) (Heap.peek h);
  Alcotest.(check int) "length 3" 3 (Heap.length h);
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h);
  Alcotest.(check (option int)) "pop after clear" None (Heap.pop h)

let test_map_monotone () =
  (* Clamp-to-bound is the monotone rewrite Net.fail_inflight uses:
     min-clamping every key preserves the heap order pointwise. *)
  let h = Heap.create ~le:(fun (a : int) b -> a <= b) in
  List.iter (Heap.push h) [ 9; 2; 14; 5; 5; 31; 0 ];
  Heap.map_monotone (fun x -> min x 5) h;
  let rec drain acc = match Heap.pop h with
    | None -> List.rev acc
    | Some x -> drain (x :: acc)
  in
  Alcotest.(check (list int)) "clamped drain sorted"
    [ 0; 2; 5; 5; 5; 5; 5 ] (drain [])

(* --- QCheck properties --------------------------------------------------- *)

let drain_heap h =
  let rec go acc = match Heap.pop h with
    | None -> List.rev acc
    | Some x -> go (x :: acc)
  in
  go []

let qcheck_pop_is_sorted_push =
  QCheck.Test.make ~name:"pop sequence = sorted push sequence" ~count:300
    QCheck.(list small_int)
    (fun xs ->
      let h = Heap.create ~le:(fun (a : int) b -> a <= b) in
      List.iter (Heap.push h) xs;
      drain_heap h = List.sort compare xs)

let qcheck_stable_with_index =
  (* Duplicate-heavy keys; folding the insertion index into [le] makes
     the pop order the stable sort of the push order — exactly how
     Sched's seqno and Profile.stable_top_k recover determinism. *)
  QCheck.Test.make ~name:"duplicate keys stable via insertion index" ~count:300
    QCheck.(list (int_bound 7))
    (fun keys ->
      let le (ka, ia) (kb, ib) = ka < kb || (ka = kb && ia <= ib) in
      let h = Heap.create ~le in
      List.iteri (fun i k -> Heap.push h (k, i)) keys;
      let expect =
        List.mapi (fun i k -> (k, i)) keys
        |> List.stable_sort (fun (ka, _) (kb, _) -> compare ka kb)
      in
      drain_heap h = expect)

type op = Push of int | Pop

let ops_gen =
  QCheck.Gen.(
    list_size (int_range 0 120)
      (frequency [ (3, map (fun x -> Push x) (int_bound 50)); (2, return Pop) ]))

let ops_arb =
  QCheck.make ops_gen ~print:(fun ops ->
      String.concat ";"
        (List.map (function Push x -> "push " ^ string_of_int x | Pop -> "pop") ops))

let qcheck_interleaved_model =
  (* Reference model: a sorted list popped from the front.  Every pop
     must agree, as must the final drains. *)
  QCheck.Test.make ~name:"interleaved push/pop matches list model" ~count:300
    ops_arb
    (fun ops ->
      let h = Heap.create ~le:(fun (a : int) b -> a <= b) in
      let model = ref [] in
      let ok = ref true in
      List.iter
        (function
          | Push x ->
            Heap.push h x;
            model := List.sort compare (x :: !model)
          | Pop ->
            let expect = match !model with
              | [] -> None
              | x :: rest -> model := rest; Some x
            in
            if Heap.pop h <> expect then ok := false;
            if Heap.length h <> List.length !model then ok := false)
        ops;
      !ok && drain_heap h = !model)

(* --- differential: Sched dispatch vs the old scan ------------------------ *)

(* The scheduler's park queue used to be an unordered list scanned with
   List.fold_left for the earliest entry and List.filter to remove it.
   The reference below replays a random N-tenant Advance program under
   exactly that discipline — keys are the same (time ticks, tenant,
   seqno) triples Sched uses — and the resulting dispatch log must be
   byte-identical to what the heap-based Sched produces. *)

type ref_entry = {
  at : int64;  (* ticks, 2^-16 ns *)
  tenant : int;
  seq : int;
  now : float;  (* tenant clock after the advance that parked it *)
  pending_log : bool;  (* emit (tenant, now) when dispatched *)
  remaining : float list;
}

let entry_before a b =
  (* verbatim ordering of the old scan-based scheduler *)
  match Int64.compare a.at b.at with
  | 0 -> (match compare a.tenant b.tenant with
          | 0 -> compare a.seq b.seq < 0
          | c -> c < 0)
  | c -> c < 0

let scan_pop entries =
  match entries with
  | [] -> None
  | first :: rest ->
    let best =
      List.fold_left (fun acc e -> if entry_before e acc then e else acc)
        first rest
    in
    Some (best, List.filter (fun e -> e != best) entries)

let reference_log progs =
  let log = ref [] in
  let next_seq = ref 0 in
  let fresh_seq () = let s = !next_seq in incr next_seq; s in
  let entries =
    ref
      (List.mapi
         (fun tenant steps ->
           { at = 0L; tenant; seq = fresh_seq (); now = 0.0;
             pending_log = false; remaining = steps })
         progs)
  in
  let running = ref true in
  while !running do
    match scan_pop !entries with
    | None -> running := false
    | Some (e, rest) ->
      entries := rest;
      if e.pending_log then
        log := (e.tenant, Int64.bits_of_float e.now) :: !log;
      (match e.remaining with
      | [] -> ()  (* task body returned; nothing re-parks *)
      | dt :: more ->
        let now = e.now +. dt in
        entries :=
          { at = Sched.ticks_of_ns now; tenant = e.tenant;
            seq = fresh_seq (); now; pending_log = true; remaining = more }
          :: !entries)
  done;
  List.rev !log

let sched_log progs =
  let s = Sched.create () in
  let log = ref [] in
  List.iteri
    (fun tenant steps ->
      Sched.spawn s ~tenant (fun () ->
          let c = Sched.clock s ~tenant in
          List.iter
            (fun dt ->
              Clock.advance c dt;
              log := (tenant, Int64.bits_of_float (Clock.now c)) :: !log)
            steps))
    progs;
  Sched.run s;
  List.rev !log

let advance_progs_gen =
  QCheck.Gen.(
    int_range 2 6 >>= fun tenants ->
    list_repeat tenants
      (list_size (int_range 1 25)
         (* small range with zero included: maximizes tick collisions,
            the case where tenant/seqno tie-breaks carry the order *)
         (frequency [ (4, float_range 0.0 12.0); (1, return 0.0) ])))

let advance_progs_arb =
  QCheck.make advance_progs_gen ~print:(fun progs ->
      String.concat " | "
        (List.map
           (fun p -> String.concat "," (List.map string_of_float p))
           progs))

let qcheck_sched_matches_scan =
  QCheck.Test.make
    ~name:"Sched dispatch order = old scan-based implementation" ~count:80
    advance_progs_arb
    (fun progs -> sched_log progs = reference_log progs)

(* --- docs/PERFORMANCE.md drift guard ------------------------------------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let read_doc name =
  let candidates = [ "../docs/" ^ name; "docs/" ^ name ] in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> In_channel.with_open_bin p In_channel.input_all
  | None -> Alcotest.failf "doc %s not found" name

(* docs/PERFORMANCE.md must keep naming the hot-path structures, the
   determinism argument, and the self-benchmark entry points. *)
let test_performance_doc_guard () =
  let doc = read_doc "PERFORMANCE.md" in
  let must =
    [
      "Min_heap"; "O(log n)"; "(time, tenant id, seqno)"; "total order";
      "map_monotone"; "window"; "Bytes_le"; "stable_top_k"; "Regions";
      "dune exec bench/main.exe"; "--only micro";
      "sched dispatch (8 tenants)"; "net saturated window"; "host kevt/s";
      "byte-identical";
    ]
  in
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "%S documented" n)
        true (contains doc n))
    must

let suite =
  [
    Alcotest.test_case "empty/push/peek/clear" `Quick test_empty;
    Alcotest.test_case "map_monotone clamp" `Quick test_map_monotone;
    Alcotest.test_case "PERFORMANCE.md drift guard" `Quick
      test_performance_doc_guard;
    QCheck_alcotest.to_alcotest qcheck_pop_is_sorted_push;
    QCheck_alcotest.to_alcotest qcheck_stable_with_index;
    QCheck_alcotest.to_alcotest qcheck_interleaved_model;
    QCheck_alcotest.to_alcotest qcheck_sched_matches_scan;
  ]
