(* Tests for the IR: types, builder, printer, verifier. *)
module T = Mira_mir.Types
module Ir = Mira_mir.Ir
module B = Mira_mir.Builder
module Printer = Mira_mir.Printer
module Verifier = Mira_mir.Verifier

let edge_def =
  { T.s_name = "edge"; s_fields = [ ("from", T.I64); ("to", T.I64); ("w", T.F64) ] }

let test_type_sizes () =
  Alcotest.(check int) "i64" 8 (T.size_of T.I64);
  Alcotest.(check int) "f64" 8 (T.size_of T.F64);
  Alcotest.(check int) "ptr" 8 (T.size_of (T.Ptr T.I64));
  Alcotest.(check int) "unit" 0 (T.size_of T.Unit);
  Alcotest.(check int) "struct" 24 (T.size_of (T.Struct edge_def))

let test_field_offsets () =
  Alcotest.(check int) "from" 0 (T.field_offset edge_def "from");
  Alcotest.(check int) "to" 8 (T.field_offset edge_def "to");
  Alcotest.(check int) "w" 16 (T.field_offset edge_def "w");
  Alcotest.(check int) "index" 2 (T.field_index edge_def "w");
  Alcotest.(check bool) "missing" true
    (try
       ignore (T.field_offset edge_def "nope");
       false
     with Not_found -> true)

let test_type_equal_nominal () =
  let other = { T.s_name = "edge"; s_fields = [] } in
  Alcotest.(check bool) "nominal equal" true
    (T.equal (T.Struct edge_def) (T.Struct other));
  Alcotest.(check bool) "ptr equal" true
    (T.equal (T.Ptr T.I64) (T.Ptr T.I64));
  Alcotest.(check bool) "distinct" false (T.equal T.I64 T.F64)

let test_recursive_type_safe () =
  (* Nominal equality must terminate on recursive node types. *)
  let rec node =
    { T.s_name = "node"; s_fields = [ ("next", T.Ptr (T.Struct node)) ] }
  in
  Alcotest.(check bool) "self equal" true
    (T.equal (T.Struct node) (T.Struct node));
  Alcotest.(check int) "size" 8 (T.size_of (T.Struct node))

let simple_program () =
  let b = B.program "t" in
  B.func b "main" [] T.I64 (fun fb _ ->
      let arr, _ = B.alloc fb ~name:"arr" T.I64 (B.iconst 10) in
      B.for_ fb ~lo:(B.iconst 0) ~hi:(B.iconst 10) (fun i ->
          let p = B.gep fb ~base:arr ~index:i ~elem:T.I64 () in
          B.store fb T.I64 ~ptr:p ~value:i);
      let p = B.gep fb ~base:arr ~index:(B.iconst 5) ~elem:T.I64 () in
      let v = B.load fb T.I64 p in
      B.ret fb v);
  B.finish b ~entry:"main"

let test_builder_verifies () =
  let p = simple_program () in
  match Verifier.verify p with
  | Ok () -> ()
  | Error es -> Alcotest.fail (String.concat "; " es)

let test_builder_missing_entry () =
  let b = B.program "t" in
  B.func b "foo" [] T.Unit (fun _ _ -> ());
  Alcotest.(check bool) "missing entry" true
    (try
       ignore (B.finish b ~entry:"main");
       false
     with Invalid_argument _ -> true)

let test_builder_appends_ret () =
  let b = B.program "t" in
  B.func b "f" [] T.Unit (fun _ _ -> ());
  let p = B.finish b ~entry:"f" in
  let f = Ir.find_func p "f" in
  Alcotest.(check bool) "trailing ret" true
    (match List.rev f.Ir.f_body with Ir.Ret _ :: _ -> true | _ -> false)

let test_verifier_catches_use_before_def () =
  let bad =
    {
      Ir.f_name = "bad";
      f_params = [];
      f_ret = T.I64;
      f_body = [ Ir.Bin (1, Ir.Add, Ir.Oreg 0, Ir.Oint 1L); Ir.Ret (Ir.Oreg 1) ];
      f_nregs = 2;
      f_remotable = false;
      f_offloaded = false;
      f_offload_sites = [];
    }
  in
  let p = { Ir.p_name = "t"; p_funcs = [ ("bad", bad) ]; p_entry = "bad"; p_sites = [] } in
  match Verifier.verify p with
  | Ok () -> Alcotest.fail "should reject use before def"
  | Error es ->
    Alcotest.(check bool) "mentions %0" true
      (List.exists (fun e -> String.length e > 0) es)

let test_verifier_catches_double_def () =
  let bad =
    {
      Ir.f_name = "bad";
      f_params = [];
      f_ret = T.I64;
      f_body =
        [
          Ir.Mov (0, Ir.Oint 1L);
          Ir.Mov (0, Ir.Oint 2L);
          Ir.Ret (Ir.Oreg 0);
        ];
      f_nregs = 1;
      f_remotable = false;
      f_offloaded = false;
      f_offload_sites = [];
    }
  in
  let p = { Ir.p_name = "t"; p_funcs = [ ("bad", bad) ]; p_entry = "bad"; p_sites = [] } in
  Alcotest.(check bool) "double assignment rejected" true
    (Result.is_error (Verifier.verify p))

let test_verifier_scope_leak () =
  (* A register defined inside a loop body must not be usable after it. *)
  let bad =
    {
      Ir.f_name = "bad";
      f_params = [];
      f_ret = T.I64;
      f_body =
        [
          Ir.For
            { iv = 0; lo = Ir.Oint 0L; hi = Ir.Oint 4L; step = Ir.Oint 1L;
              body = [ Ir.Mov (1, Ir.Oreg 0) ] };
          Ir.Ret (Ir.Oreg 1);
        ];
      f_nregs = 2;
      f_remotable = false;
      f_offloaded = false;
      f_offload_sites = [];
    }
  in
  let p = { Ir.p_name = "t"; p_funcs = [ ("bad", bad) ]; p_entry = "bad"; p_sites = [] } in
  Alcotest.(check bool) "scope leak rejected" true
    (Result.is_error (Verifier.verify p))

let test_verifier_bad_callee () =
  let b = B.program "t" in
  B.func b "main" [] T.I64 (fun fb _ ->
      let v = B.call fb "nonexistent" [] in
      B.ret fb v);
  let p = B.finish b ~entry:"main" in
  Alcotest.(check bool) "bad callee rejected" true
    (Result.is_error (Verifier.verify p))

let test_verifier_intrinsics_ok () =
  let b = B.program "t" in
  B.func b "main" [] T.I64 (fun fb _ ->
      let v = B.call fb "rand_int" [ B.iconst 10 ] in
      B.ret fb v);
  let p = B.finish b ~entry:"main" in
  Alcotest.(check bool) "intrinsic accepted" true (Result.is_ok (Verifier.verify p))

let test_verifier_bad_step () =
  let b = B.program "t" in
  B.func b "main" [] T.Unit (fun fb _ ->
      B.for_ fb ~lo:(B.iconst 0) ~hi:(B.iconst 4) ~step:(Ir.Oint 0L) (fun _ -> ()));
  let p = B.finish b ~entry:"main" in
  Alcotest.(check bool) "zero step rejected" true
    (Result.is_error (Verifier.verify p))

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_printer_output () =
  let p = simple_program () in
  let s = Printer.program_to_string p in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) (Printf.sprintf "contains %s" fragment) true
        (contains s fragment))
    [ "module @t"; "remotable.alloc"; "scf.for"; "memref.gep"; "func.return" ]

let test_map_and_count () =
  let p = simple_program () in
  let f = Ir.find_func p "main" in
  let n = Ir.op_count f.Ir.f_body in
  Alcotest.(check bool) "has ops" true (n > 5);
  (* identity map preserves structure *)
  let f' = Ir.map_blocks (Ir.map_ops (fun op -> op)) f in
  Alcotest.(check int) "identity map" n (Ir.op_count f'.Ir.f_body);
  (* expand to double every Mov *)
  let doubled =
    Ir.expand_ops
      (fun op -> match op with Ir.Mov _ -> [ op; op ] | _ -> [ op ])
      f.Ir.f_body
  in
  Alcotest.(check bool) "expand" true (Ir.op_count doubled >= n)

let suite =
  [
    Alcotest.test_case "type sizes" `Quick test_type_sizes;
    Alcotest.test_case "field offsets" `Quick test_field_offsets;
    Alcotest.test_case "nominal equality" `Quick test_type_equal_nominal;
    Alcotest.test_case "recursive types" `Quick test_recursive_type_safe;
    Alcotest.test_case "builder verifies" `Quick test_builder_verifies;
    Alcotest.test_case "builder missing entry" `Quick test_builder_missing_entry;
    Alcotest.test_case "builder appends ret" `Quick test_builder_appends_ret;
    Alcotest.test_case "verifier use-before-def" `Quick test_verifier_catches_use_before_def;
    Alcotest.test_case "verifier double def" `Quick test_verifier_catches_double_def;
    Alcotest.test_case "verifier scope leak" `Quick test_verifier_scope_leak;
    Alcotest.test_case "verifier bad callee" `Quick test_verifier_bad_callee;
    Alcotest.test_case "verifier intrinsics" `Quick test_verifier_intrinsics_ok;
    Alcotest.test_case "verifier bad step" `Quick test_verifier_bad_step;
    Alcotest.test_case "printer output" `Quick test_printer_output;
    Alcotest.test_case "map/expand/count" `Quick test_map_and_count;
  ]
